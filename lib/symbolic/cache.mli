(** Result cache for generated test packets (§6.3).

    Keys are content digests of (program, entries, goals); values are the
    serialised generation results. The cache can live purely in memory or
    be backed by a directory of files, in which case results survive
    across processes (the nightly-run use case). *)

type t

val in_memory : unit -> t

val on_disk : string -> t
(** The directory (and any missing parents) is created on first store if
    needed; creation is race-tolerant, so parallel workers may share one
    directory. *)

val find : t -> key:string -> string option
(** Raw serialised payload, if present. Unreadable, truncated, or
    otherwise corrupt on-disk entries are reported as misses (counted in
    the [cache.corrupt_dropped] telemetry counter), never raised. *)

val store : t -> key:string -> string -> unit
(** Crash-safe on disk: the payload is written to a temporary file and
    [rename]d into place, so a reader never observes a partial write. *)

val hits : t -> int
val misses : t -> int
