(** Result cache for generated test packets (§6.3).

    Keys are content digests of (program, entries, goals); values are the
    serialised generation results. The cache can live purely in memory or
    be backed by a directory of files, in which case results survive
    across processes (the nightly-run use case). *)

type t

val in_memory : unit -> t

val on_disk : string -> t
(** The directory is created on first store if needed. *)

val find : t -> key:string -> string option
(** Raw serialised payload, if present. *)

val store : t -> key:string -> string -> unit

val hits : t -> int
val misses : t -> int
