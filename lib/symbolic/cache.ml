module Telemetry = Switchv_telemetry.Telemetry

type backend = Memory | Disk of string

type t = {
  backend : backend;
  table : (string, string) Hashtbl.t;
  mutable n_hits : int;
  mutable n_misses : int;
}

let in_memory () = { backend = Memory; table = Hashtbl.create 16; n_hits = 0; n_misses = 0 }

let on_disk dir = { backend = Disk dir; table = Hashtbl.create 16; n_hits = 0; n_misses = 0 }

let path dir key = Filename.concat dir (key ^ ".cache")

let find t ~key =
  let result =
    match Hashtbl.find_opt t.table key with
    | Some v -> Some v
    | None -> (
        match t.backend with
        | Memory -> None
        | Disk dir -> (
            let file = path dir key in
            if Sys.file_exists file then begin
              let ic = open_in_bin file in
              let n = in_channel_length ic in
              let payload = really_input_string ic n in
              close_in ic;
              Hashtbl.replace t.table key payload;
              Some payload
            end
            else None))
  in
  (match result with
  | Some _ ->
      t.n_hits <- t.n_hits + 1;
      Telemetry.incr (Telemetry.get ()) "cache.hits"
  | None ->
      t.n_misses <- t.n_misses + 1;
      Telemetry.incr (Telemetry.get ()) "cache.misses");
  result

let store t ~key payload =
  Hashtbl.replace t.table key payload;
  match t.backend with
  | Memory -> ()
  | Disk dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let oc = open_out_bin (path dir key) in
      output_string oc payload;
      close_out oc

let hits t = t.n_hits
let misses t = t.n_misses
