module Telemetry = Switchv_telemetry.Telemetry

type backend = Memory | Disk of string

type t = {
  backend : backend;
  table : (string, string) Hashtbl.t;
  mutable n_hits : int;
  mutable n_misses : int;
}

let in_memory () = { backend = Memory; table = Hashtbl.create 16; n_hits = 0; n_misses = 0 }

let on_disk dir = { backend = Disk dir; table = Hashtbl.create 16; n_hits = 0; n_misses = 0 }

let path dir key = Filename.concat dir (key ^ ".cache")

(* On-disk entries carry a tiny header — "swvc1 <payload-length>\n" — so a
   torn write (crash mid-write, or a reader racing a non-atomic writer from
   an older binary) is detectable: a file whose body is not exactly the
   declared length is treated as absent. *)
let magic = "swvc1"

let encode payload =
  Printf.sprintf "%s %d\n%s" magic (String.length payload) payload

let decode raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl -> (
      match String.split_on_char ' ' (String.sub raw 0 nl) with
      | [ m; len ] when String.equal m magic -> (
          match int_of_string_opt len with
          | Some n when n >= 0 && String.length raw = nl + 1 + n ->
              Some (String.sub raw (nl + 1) n)
          | _ -> None)
      | _ -> None)

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corrupt_dropped () =
  Telemetry.incr (Telemetry.get ()) "cache.corrupt_dropped"

let find t ~key =
  let result =
    match Hashtbl.find_opt t.table key with
    | Some v -> Some v
    | None -> (
        match t.backend with
        | Memory -> None
        | Disk dir -> (
            (* An unreadable or corrupt file is a miss, never a failure: a
               crash may leave garbage behind, and parallel workers share
               this directory. *)
            let file = path dir key in
            match (if Sys.file_exists file then Some (read_file file) else None) with
            | exception _ ->
                corrupt_dropped ();
                None
            | None -> None
            | Some raw -> (
                match decode raw with
                | Some payload ->
                    Hashtbl.replace t.table key payload;
                    Some payload
                | None ->
                    corrupt_dropped ();
                    None)))
  in
  (match result with
  | Some _ ->
      t.n_hits <- t.n_hits + 1;
      Telemetry.incr (Telemetry.get ()) "cache.hits"
  | None ->
      t.n_misses <- t.n_misses + 1;
      Telemetry.incr (Telemetry.get ()) "cache.misses");
  result

(* [Sys.mkdir] is neither recursive nor race-tolerant: two workers creating
   the cache directory simultaneously would crash the loser. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
  end

let store t ~key payload =
  Hashtbl.replace t.table key payload;
  match t.backend with
  | Memory -> ()
  | Disk dir ->
      mkdir_p dir;
      let final = path dir key in
      (* Write-to-temp then rename: readers only ever observe a complete
         file (rename is atomic within a directory), and concurrent writers
         of the same key each publish a complete value, last one wins. The
         pid suffix keeps the temp names of racing writers distinct. *)
      let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
      let oc = open_out_bin tmp in
      (try
         output_string oc (encode payload);
         close_out oc
       with e ->
         close_out_noerr oc;
         (try Sys.remove tmp with Sys_error _ -> ());
         raise e);
      Sys.rename tmp final

let hits t = t.n_hits
let misses t = t.n_misses
