module Ast = Switchv_p4ir.Ast
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Header = Switchv_packet.Header
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Term = Switchv_smt.Term
module Telemetry = Switchv_telemetry.Telemetry

let field_var ~header ~field = Printf.sprintf "in.%s.%s" header field
let validity_var ~header = "valid." ^ header
let ingress_port_var = "in.std.ingress_port"

(* The model-extraction variables of a program, in a canonical order fixed
   by the program text alone: per header (program order) the validity bit
   then each field, then the ingress port. Packet generation uses this as
   the lexicographic preference order for canonical models, so the order —
   like the names — must not depend on entries, goals, or solver state. *)
let model_input_vars (program : Ast.program) =
  List.concat_map
    (fun (h : Header.t) ->
      `Bool (validity_var ~header:h.name)
      :: List.map
           (fun (f : Header.field) ->
             `Bv (field_var ~header:h.name ~field:f.f_name, f.f_width))
           h.fields)
    program.p_headers
  @ [ `Bv (ingress_port_var, 16) ]

type trace_point = {
  tp_table : string;
  tp_label : string;
  tp_guard : Term.boolean;
}

type encoding = {
  enc_program : Ast.program;
  enc_wellformed : Term.boolean;
  enc_trace : trace_point list;
  enc_egress : Term.bv;
  enc_dropped : Term.boolean;
  enc_punted : Term.boolean;
}

(* Symbolic machine state. *)
type sym = {
  program : Ast.program;
  entries : State.t;
  fields : (string, Term.bv) Hashtbl.t;       (* "hdr.field" -> value *)
  valid : (string, Term.boolean) Hashtbl.t;   (* header -> validity *)
  mutable trace : trace_point list;
  mutable fresh_counter : int;
  mutable branch_counter : int;
}

let fkey hdr field = hdr ^ "." ^ field

let fresh_var sym prefix width =
  sym.fresh_counter <- sym.fresh_counter + 1;
  Term.var (Printf.sprintf "%s.%d" prefix sym.fresh_counter) width

let read_field sym (fr : Ast.field_ref) =
  match Hashtbl.find_opt sym.fields (fkey fr.fr_header fr.fr_field) with
  | Some v -> v
  | None -> Term.of_int ~width:(Ast.field_width sym.program fr) 0

let write_field sym (fr : Ast.field_ref) v =
  Hashtbl.replace sym.fields (fkey fr.fr_header fr.fr_field) v

let read_validity sym hdr =
  match Hashtbl.find_opt sym.valid hdr with Some b -> b | None -> Term.fls

(* --- expression evaluation ---------------------------------------------------- *)

let rec eval_expr sym params (e : Ast.expr) : Term.bv =
  match e with
  | E_const c -> Term.const c
  | E_field fr -> read_field sym fr
  | E_param name -> (
      match List.assoc_opt name params with
      | Some v -> v
      | None -> invalid_arg ("Symexec: unbound action parameter " ^ name))
  | E_not a -> Term.bvnot (eval_expr sym params a)
  | E_and (a, b) -> Term.bvand (eval_expr sym params a) (eval_expr sym params b)
  | E_or (a, b) -> Term.bvor (eval_expr sym params a) (eval_expr sym params b)
  | E_xor (a, b) -> Term.bvxor (eval_expr sym params a) (eval_expr sym params b)
  | E_add (a, b) -> Term.bvadd (eval_expr sym params a) (eval_expr sym params b)
  | E_sub (a, b) -> Term.bvsub (eval_expr sym params a) (eval_expr sym params b)
  | E_slice (hi, lo, a) -> Term.extract ~hi ~lo (eval_expr sym params a)
  | E_concat (a, b) -> Term.concat (eval_expr sym params a) (eval_expr sym params b)
  | E_hash (name, _args) ->
      (* Free hash (§5): unconstrained fresh variable. *)
      fresh_var sym ("hash." ^ name) 16

let rec eval_bexpr sym params (b : Ast.bexpr) : Term.boolean =
  match b with
  | B_true -> Term.tru
  | B_false -> Term.fls
  | B_is_valid h -> read_validity sym h
  | B_eq (a, b) -> Term.eq (eval_expr sym params a) (eval_expr sym params b)
  | B_ne (a, b) -> Term.neq (eval_expr sym params a) (eval_expr sym params b)
  | B_ult (a, b) -> Term.ult (eval_expr sym params a) (eval_expr sym params b)
  | B_ule (a, b) -> Term.ule (eval_expr sym params a) (eval_expr sym params b)
  | B_not a -> Term.not_ (eval_bexpr sym params a)
  | B_and (a, b) -> Term.and_ (eval_bexpr sym params a) (eval_bexpr sym params b)
  | B_or (a, b) -> Term.or_ (eval_bexpr sym params a) (eval_bexpr sym params b)

(* --- parser well-formedness ----------------------------------------------------- *)

(* Evaluate a parser select expression over the raw input variables (on the
   path where this select runs, the involved headers are extracted). *)
let rec eval_parser_expr program (e : Ast.expr) : Term.bv =
  match e with
  | E_const c -> Term.const c
  | E_field fr -> Term.var (field_var ~header:fr.fr_header ~field:fr.fr_field)
                    (Ast.field_width program fr)
  | E_slice (hi, lo, a) -> Term.extract ~hi ~lo (eval_parser_expr program a)
  | E_concat (a, b) -> Term.concat (eval_parser_expr program a) (eval_parser_expr program b)
  | E_not a -> Term.bvnot (eval_parser_expr program a)
  | E_and (a, b) -> Term.bvand (eval_parser_expr program a) (eval_parser_expr program b)
  | E_or (a, b) -> Term.bvor (eval_parser_expr program a) (eval_parser_expr program b)
  | E_xor (a, b) -> Term.bvxor (eval_parser_expr program a) (eval_parser_expr program b)
  | E_add (a, b) -> Term.bvadd (eval_parser_expr program a) (eval_parser_expr program b)
  | E_sub (a, b) -> Term.bvsub (eval_parser_expr program a) (eval_parser_expr program b)
  | E_param _ | E_hash _ -> invalid_arg "Symexec: unsupported parser expression"

(* Enumerate parser paths: (path condition, extracted headers). *)
let parser_paths (program : Ast.program) =
  let find_state name =
    List.find_opt
      (fun (s : Ast.parser_state) -> String.equal s.ps_name name)
      program.p_parser.states
  in
  let rec go state_name cond extracted fuel =
    if fuel = 0 then []
    else if String.equal state_name "accept" then [ (cond, extracted) ]
    else
      match find_state state_name with
      | None -> []
      | Some state -> (
          let extracted =
            match state.ps_extract with
            | Some h -> h :: extracted
            | None -> extracted
          in
          match state.ps_next with
          | T_accept -> [ (cond, extracted) ]
          | T_select (e, cases, default) ->
              let sel = eval_parser_expr program e in
              let case_paths =
                List.concat_map
                  (fun (c, target) ->
                    go target (Term.and_ cond (Term.eq sel (Term.const c))) extracted
                      (fuel - 1))
                  cases
              in
              let default_cond =
                List.fold_left
                  (fun acc (c, _) -> Term.and_ acc (Term.neq sel (Term.const c)))
                  cond cases
              in
              case_paths @ go default (Term.and_ cond default_cond) extracted (fuel - 1))
  in
  go program.p_parser.start Term.tru [] 64

let wellformedness program =
  let paths = parser_paths program in
  List.fold_left
    (fun acc (h : Header.t) ->
      let v = Term.bvar (validity_var ~header:h.name) in
      let reachable =
        Term.disj
          (List.filter_map
             (fun (cond, extracted) ->
               if List.mem h.name extracted then Some cond else None)
             paths)
      in
      Term.and_ acc (Term.iff v reachable))
    Term.tru program.p_headers

(* --- tables ----------------------------------------------------------------------- *)

let match_condition sym (table : Ast.table) key_values (e : Entry.t) =
  Term.conj
    (List.map
       (fun (k : Ast.key) ->
         let kv = List.assoc k.k_name key_values in
         match Entry.find_match e k.k_name with
         | None -> Term.tru
         | Some (Entry.M_exact v) -> Term.eq kv (Term.const v)
         | Some (Entry.M_lpm p) -> Term.matches_prefix kv p
         | Some (Entry.M_ternary tn) ->
             Term.matches_ternary kv ~value:(Ternary.value tn) ~mask:(Ternary.mask tn)
         | Some (Entry.M_optional (Some v)) -> Term.eq kv (Term.const v)
         | Some (Entry.M_optional None) -> Term.tru)
       table.t_keys)
  |> fun c -> ignore sym; c

let exec_stmt sym params guard = function
  | Ast.S_nop -> ()
  | Ast.S_assign (fr, e) ->
      let v = eval_expr sym params e in
      write_field sym fr (Term.ite guard v (read_field sym fr))
  | Ast.S_set_valid (h, b) ->
      let old = read_validity sym h in
      Hashtbl.replace sym.valid h
        (Term.bite guard (if b then Term.tru else Term.fls) old)

let exec_action sym guard (action : Ast.action) args =
  let params =
    List.map2 (fun (p : Ast.param) arg -> (p.p_name, Term.const arg)) action.a_params args
  in
  List.iter (exec_stmt sym params guard) action.a_body

let exec_invocation sym guard (ai : Entry.action_invocation) =
  let action = Ast.find_action_exn sym.program ai.ai_name in
  exec_action sym guard action ai.ai_args

let apply_table sym context table_name =
  let table = Ast.find_table_exn sym.program table_name in
  let key_values =
    List.map (fun (k : Ast.key) -> (k.k_name, eval_expr sym [] k.k_expr)) table.t_keys
  in
  let ordered = Interp.ordered_entries table (State.entries_of sym.entries table_name) in
  (* nm = "no higher-precedence entry matched so far". *)
  let nm = ref Term.tru in
  List.iter
    (fun (e : Entry.t) ->
      let m = match_condition sym table key_values e in
      let guard = Term.and_ context (Term.and_ !nm m) in
      sym.trace <-
        { tp_table = table_name; tp_label = Entry.match_key e; tp_guard = guard }
        :: sym.trace;
      (match e.e_action with
      | Entry.Single ai -> exec_invocation sym guard ai
      | Entry.Weighted members ->
          (* Free selector hash: a fresh variable picks the member; member 0
             also absorbs out-of-range values so selection is total. *)
          let sel = fresh_var sym (Printf.sprintf "sel.%s" table_name) 8 in
          let n = List.length members in
          List.iteri
            (fun k ((ai : Entry.action_invocation), _w) ->
              let cond =
                if k = 0 then
                  Term.not_
                    (Term.disj
                       (List.init (n - 1) (fun j ->
                            Term.eq sel (Term.of_int ~width:8 (j + 1)))))
                else Term.eq sel (Term.of_int ~width:8 k)
              in
              exec_invocation sym (Term.and_ guard cond) ai)
            members);
      nm := Term.and_ !nm (Term.not_ m))
    ordered;
  (* Default action. *)
  let default_guard = Term.and_ context !nm in
  sym.trace <-
    { tp_table = table_name; tp_label = "<default>"; tp_guard = default_guard }
    :: sym.trace;
  let dname, dargs = table.t_default_action in
  exec_action sym default_guard (Ast.find_action_exn sym.program dname) dargs

let rec exec_control sym context = function
  | Ast.C_nop -> ()
  | Ast.C_stmt s -> exec_stmt sym [] context s
  | Ast.C_seq (a, b) ->
      exec_control sym context a;
      exec_control sym context b
  | Ast.C_table name -> apply_table sym context name
  | Ast.C_if (cond, a, b) ->
      sym.branch_counter <- sym.branch_counter + 1;
      let id = sym.branch_counter in
      let c = eval_bexpr sym [] cond in
      let then_guard = Term.and_ context c in
      let else_guard = Term.and_ context (Term.not_ c) in
      sym.trace <-
        { tp_table = "<if>"; tp_label = Printf.sprintf "branch.%d.then" id;
          tp_guard = then_guard }
        :: { tp_table = "<if>"; tp_label = Printf.sprintf "branch.%d.else" id;
             tp_guard = else_guard }
        :: sym.trace;
      exec_control sym then_guard a;
      exec_control sym else_guard b

(* --- top level ---------------------------------------------------------------------- *)

let encode (program : Ast.program) entries =
  Telemetry.with_span (Telemetry.get ()) "symbolic.encode"
    ~attrs:[ ("program", program.p_name) ]
  @@ fun () ->
  let state = State.create () in
  List.iter (fun e -> ignore (State.insert state e)) entries;
  let sym =
    { program;
      entries = state;
      fields = Hashtbl.create 128;
      valid = Hashtbl.create 16;
      trace = [];
      fresh_counter = 0;
      branch_counter = 0 }
  in
  (* Initial symbolic state: header fields are input variables masked by
     validity (reads of unparsed headers yield 0, matching the concrete
     interpreter); metadata starts zeroed; the ingress port is free. *)
  List.iter
    (fun (h : Header.t) ->
      let v = Term.bvar (validity_var ~header:h.name) in
      Hashtbl.replace sym.valid h.name v;
      List.iter
        (fun (f : Header.field) ->
          let input = Term.var (field_var ~header:h.name ~field:f.f_name) f.f_width in
          Hashtbl.replace sym.fields (fkey h.name f.f_name)
            (Term.ite v input (Term.of_int ~width:f.f_width 0)))
        h.fields)
    program.p_headers;
  List.iter
    (fun (n, w) -> Hashtbl.replace sym.fields (fkey "meta" n) (Term.of_int ~width:w 0))
    program.p_metadata;
  List.iter
    (fun (n, w) -> Hashtbl.replace sym.fields (fkey "std" n) (Term.of_int ~width:w 0))
    Ast.standard_metadata;
  Hashtbl.replace sym.fields (fkey "std" "ingress_port") (Term.var ingress_port_var 16);
  exec_control sym Term.tru program.p_ingress;
  exec_control sym Term.tru program.p_egress;
  let std name = Hashtbl.find sym.fields (fkey "std" name) in
  let egress = std "egress_port" in
  let dropped =
    Term.or_
      (Term.eq (std "drop") (Term.of_int ~width:1 1))
      (Term.eq egress (Term.of_int ~width:16 0))
  in
  let punted = Term.eq (std "punt") (Term.of_int ~width:1 1) in
  { enc_program = program;
    enc_wellformed = wellformedness program;
    enc_trace = List.rev sym.trace;
    enc_egress = egress;
    enc_dropped = dropped;
    enc_punted = punted }
