(** p4-symbolic's symbolic executor (§5).

    Performs a {e single pass} over the P4 program, executing all branches
    against one shared symbolic state with guarded effects (Dijkstra-style
    guarded commands) rather than enumerating traces — the paper's key
    design choice for scaling to hundreds of table entries.

    The symbolic input X is one unconstrained bitvector variable per
    packet-header field, plus a boolean validity variable per header and a
    free ingress port. Parser semantics are captured as a well-formedness
    constraint relating validity variables to the select conditions along
    parser paths. Installed table entries are concrete; each (table, entry)
    pair and each pipeline branch contributes a guard to the symbolic
    trace T. Hashes — explicit [E_hash] and the implicit WCMP selector —
    are "free" (§5 "Hashing"): fresh unconstrained variables. *)

module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module Term = Switchv_smt.Term

(** Input variable naming scheme: header fields are ["in.<hdr>.<field>"],
    validity booleans ["valid.<hdr>"], the ingress port
    ["in.std.ingress_port"]. *)

val field_var : header:string -> field:string -> string
val validity_var : header:string -> string
val ingress_port_var : string

val model_input_vars :
  Switchv_p4ir.Ast.program -> [ `Bool of string | `Bv of string * int ] list
(** The variables a witness model is read from, in a canonical order fixed
    by the program text alone: per header (program order) the validity bit
    then each field, then the ingress port. Packet generation uses this as
    the lexicographic preference order for canonical models. *)

type trace_point = {
  tp_table : string;               (** table name, or ["<if>"] for branches *)
  tp_label : string;               (** entry match-key, ["<default>"], or branch id *)
  tp_guard : Term.boolean;         (** true iff this point is executed/matched *)
}

type encoding = {
  enc_program : Ast.program;
  enc_wellformed : Term.boolean;   (** parser-derived validity constraints *)
  enc_trace : trace_point list;    (** the symbolic trace T, in pipeline order *)
  enc_egress : Term.bv;            (** Y: final egress port *)
  enc_dropped : Term.boolean;
  enc_punted : Term.boolean;
}

val encode : Ast.program -> Entry.t list -> encoding
(** Symbolically execute the program against the given installed entries.
    The entries are assumed valid for the program (install them through
    {!Switchv_p4runtime.Validate} first). *)
