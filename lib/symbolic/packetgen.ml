module Ast = Switchv_p4ir.Ast
module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Packet = Switchv_packet.Packet
module Entry = Switchv_p4runtime.Entry
module P4info = Switchv_p4ir.P4info
module Term = Switchv_smt.Term
module Solver = Switchv_smt.Solver
module Telemetry = Switchv_telemetry.Telemetry

type goal_kind =
  | G_entry of { ge_table : string; ge_label : string }
  | G_branch of string
  | G_trace of string
  | G_custom of string

type goal = {
  goal_id : string;
  goal_kind : goal_kind;
  goal_cond : Term.boolean;
  goal_prefer : Term.boolean;
  goal_desc : string;
}

let entry_coverage_goals ?(prefer = Term.tru) (enc : Symexec.encoding) =
  List.filter_map
    (fun (tp : Symexec.trace_point) ->
      if String.equal tp.tp_table "<if>" then None
      else
        Some
          { goal_id = Printf.sprintf "entry:%s:%s" tp.tp_table tp.tp_label;
            goal_kind = G_entry { ge_table = tp.tp_table; ge_label = tp.tp_label };
            goal_cond = tp.tp_guard;
            goal_prefer = prefer;
            goal_desc = Printf.sprintf "hit %s in table %s" tp.tp_label tp.tp_table })
    enc.enc_trace

let branch_coverage_goals ?(prefer = Term.tru) (enc : Symexec.encoding) =
  List.filter_map
    (fun (tp : Symexec.trace_point) ->
      if String.equal tp.tp_table "<if>" then
        Some
          { goal_id = "branch:" ^ tp.tp_label;
            goal_kind = G_branch tp.tp_label;
            goal_cond = tp.tp_guard;
            goal_prefer = prefer;
            goal_desc = "cover pipeline " ^ tp.tp_label }
      else None)
    enc.enc_trace

let custom_goal ?(prefer = Term.tru) ~id ~desc cond =
  { goal_id = id; goal_kind = G_custom id; goal_cond = cond; goal_prefer = prefer;
    goal_desc = desc }

let trace_coverage_goals ?(prefer = Term.tru) ?(max_goals = 512) (enc : Symexec.encoding)
    ~tables =
  let points_of table =
    List.filter (fun (tp : Symexec.trace_point) -> String.equal tp.tp_table table)
      enc.enc_trace
  in
  let combos =
    List.fold_left
      (fun acc table ->
        let points = points_of table in
        if points = [] then acc
        else
          List.concat_map
            (fun combo -> List.map (fun tp -> tp :: combo) points)
            acc)
      [ [] ] tables
  in
  let goals =
    List.filter_map
      (fun combo ->
        match combo with
        | [] -> None
        | _ ->
            let combo = List.rev combo in
            let cond =
              Term.conj (List.map (fun (tp : Symexec.trace_point) -> tp.tp_guard) combo)
            in
            let label =
              String.concat " & "
                (List.map
                   (fun (tp : Symexec.trace_point) -> tp.tp_table ^ ":" ^ tp.tp_label)
                   combo)
            in
            Some
              { goal_id = "trace:" ^ label;
                goal_kind = G_trace label;
                goal_cond = cond;
                goal_prefer = prefer;
                goal_desc = "cover the trace combination " ^ label })
      combos
  in
  List.filteri (fun i _ -> i < max_goals) goals

let prune_goals (facts : Switchv_analysis.Analysis.facts) goals =
  let dead_tables =
    (* Unapplied tables produce no trace points (hence no goals), but
       callers may hand-build goals over them; treat both as dead. *)
    facts.f_dead_tables @ facts.f_unapplied_tables
  in
  let dead_table t = List.mem t dead_tables in
  let dead_component label =
    (* trace labels are "table:entry & table:entry & ..."; match against
       the known dead names rather than parsing at ':' (table names may
       contain one) *)
    let components =
      List.map String.trim (String.split_on_char '&' label)
    in
    List.exists
      (fun d ->
        let prefix = d ^ ":" in
        let plen = String.length prefix in
        List.exists
          (fun component ->
            String.length component >= plen
            && String.equal (String.sub component 0 plen) prefix)
          components)
      dead_tables
  in
  let live g =
    match g.goal_kind with
    | G_entry { ge_table; _ } -> not (dead_table ge_table)
    | G_branch label -> not (List.mem label facts.f_dead_branch_labels)
    | G_trace label -> not (dead_component label)
    | G_custom _ -> true
  in
  let kept = List.filter live goals in
  Telemetry.incr (Telemetry.get ())
    ~n:(List.length goals - List.length kept)
    "analysis.goals_pruned";
  kept

let prune_tainted_goals (taint : Switchv_analysis.Taint.summary) goals =
  (* Only branch goals are dropped: a branch whose path condition crosses a
     tainted conditional constrains a hash-chosen value, so the SMT witness
     pins a hash outcome the concrete run is free to ignore — solving it
     buys no reliable coverage. Entry goals over tainted-key tables are
     kept: their packets still exercise the table (some member handles
     them), and the set-valued oracle judges the outcome. *)
  let tainted g =
    match g.goal_kind with
    | G_branch label -> List.mem label taint.Switchv_analysis.Taint.s_branch_labels
    | G_entry _ | G_trace _ | G_custom _ -> false
  in
  let kept = List.filter (fun g -> not (tainted g)) goals in
  Telemetry.incr (Telemetry.get ())
    ~n:(List.length goals - List.length kept)
    "analysis.tainted_goals";
  kept

let prune_concretely_covered ~covered goals =
  (* Greybox shortcut: a branch arm the campaign's own probe packets
     already drove concretely needs no SMT witness — the coverage it would
     buy is in hand. Only branch goals are dropped: they map 1:1 onto a
     [cov.branch.<id>.<arm>] edge. Entry goals share their action edges
     with other entries of the table, so "edge covered" would not imply
     "this entry exercised" — they are kept as the primary divergence
     detectors. *)
  let keep g =
    match g.goal_kind with
    | G_branch label -> not (covered ("cov." ^ label))
    | G_entry _ | G_trace _ | G_custom _ -> true
  in
  let kept = List.filter keep goals in
  Telemetry.incr (Telemetry.get ())
    ~n:(List.length goals - List.length kept)
    "analysis.concretely_covered_skipped";
  kept

type test_packet = {
  tp_goal : string;
  tp_kind : goal_kind;
  tp_port : int;
  tp_bytes : string option;
}

type result = {
  packets : test_packet list;
  covered : int;
  uncoverable : int;
  solver_stats : (string * int) list;
  from_cache : bool;
}

(* --- model -> packet ------------------------------------------------------------ *)

let packet_of_model (enc : Symexec.encoding) (m : Solver.model) =
  let program = enc.enc_program in
  let headers =
    List.filter_map
      (fun (h : Header.t) ->
        let valid =
          Option.value ~default:false (m.Solver.bool (Symexec.validity_var ~header:h.name))
        in
        if not valid then None
        else
          Some
            (Packet.instance h
               (List.map
                  (fun (f : Header.field) ->
                    let name = Symexec.field_var ~header:h.name ~field:f.f_name in
                    let v =
                      match m.Solver.bv name with
                      | Some v -> v
                      | None -> Bitvec.zero f.f_width
                    in
                    (f.f_name, v))
                  h.fields)))
      program.p_headers
  in
  let packet = { Packet.headers; payload = "" } in
  Packet.to_bytes packet

let port_of_model (m : Solver.model) ports =
  match m.Solver.bv Symexec.ingress_port_var with
  | Some v -> (
      match Bitvec.to_int v with
      | Some p when List.mem p ports -> p
      | _ -> List.hd ports)
  | None -> List.hd ports

(* --- cache serialisation --------------------------------------------------------- *)

(* test packets are tuples of primitives (goal_kind is a variant of
   strings), safe for Marshal round-trips within this program. *)
let serialize (packets : test_packet list) =
  Marshal.to_string
    (List.map (fun p -> (p.tp_goal, p.tp_kind, p.tp_port, p.tp_bytes)) packets)
    []

let deserialize payload : test_packet list =
  let tuples : (string * goal_kind * int * string option) list =
    Marshal.from_string payload 0
  in
  List.map
    (fun (g, k, p, b) -> { tp_goal = g; tp_kind = k; tp_port = p; tp_bytes = b })
    tuples

let cache_key (enc : Symexec.encoding) goals ~ports ~index_offset =
  let buf = Buffer.create 4096 in
  (* Version tag: bump whenever the serialised payload layout changes, so
     stale on-disk payloads from older binaries can never be deserialised
     into the new shape. *)
  Buffer.add_string buf "packetgen-v3;";
  (* The offset shifts the preferred-port cycle, so the same goal list
     solved as a different slice of a larger campaign yields different
     packets — it must be part of the key. *)
  Buffer.add_string buf (Printf.sprintf "off:%d;" index_offset);
  Buffer.add_string buf (P4info.digest (P4info.of_program enc.enc_program));
  List.iter
    (fun (tp : Symexec.trace_point) ->
      Buffer.add_string buf tp.tp_table;
      Buffer.add_char buf '/';
      Buffer.add_string buf tp.tp_label;
      Buffer.add_char buf ';')
    enc.enc_trace;
  List.iter (fun g -> Buffer.add_string buf g.goal_id) goals;
  (* Goal preferences change which packet a goal yields; fold the set of
     distinct preference terms (usually one, shared across all goals) into
     the key. Marshal keeps sharing, so this stays cheap on DAG terms. *)
  let distinct_prefers =
    List.fold_left
      (fun acc g -> if List.memq g.goal_prefer acc then acc else g.goal_prefer :: acc)
      [] goals
  in
  List.iter
    (fun p -> Buffer.add_string buf (Digest.string (Marshal.to_string p [])))
    distinct_prefers;
  List.iter (fun p -> Buffer.add_string buf (string_of_int p)) ports;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- generation -------------------------------------------------------------------- *)

(* Canonical model order: both the incremental and the scratch pipeline
   extract the lexicographically minimal witness over the program's input
   variables, so the packet a goal yields is a pure function of the
   encoding and the goal — not of solver state, goal grouping, or what was
   learned from earlier goals. That invariant is what keeps cached, sharded
   (--jobs N), and incremental-vs-scratch campaigns byte-identical. *)
let canonical_vars (enc : Symexec.encoding) =
  List.map
    (function
      | `Bool name -> Solver.C_bool name
      | `Bv (name, _) -> Solver.C_bv name)
    (Symexec.model_input_vars enc.enc_program)

let assert_base solver (enc : Symexec.encoding) ports =
  Solver.assert_formula solver enc.enc_wellformed;
  let port_constraint =
    Term.disj
      (List.map
         (fun p ->
           Term.eq (Term.var Symexec.ingress_port_var 16) (Term.of_int ~width:16 p))
         ports)
  in
  Solver.assert_formula solver port_constraint

(* Solve one goal's soft-constraint cascade, weakest-last: the goal
   condition plus the preferred outcome plus a cycled ingress port, then
   progressively relaxed. [cond_conjuncts] are always assumed; [prefer] and
   [pport] are the soft extras. Unsat cores prune the cascade: an attempt
   whose assumption set contains a core reported by an earlier attempt is
   unsat without solving — and because only provably-unsat attempts are
   skipped, the first satisfiable attempt (and hence the canonical witness)
   is the same whether or not any skipping happened. *)
let solve_cascade solver ~canonical ~cond_conjuncts ~prefer ~pport =
  let tele = Telemetry.get () in
  let n = List.length cond_conjuncts in
  (* Universe ids: conjunct i -> i, prefer -> n, pport -> n + 1. *)
  let attempts =
    [ (cond_conjuncts @ [ prefer; pport ], [ n; n + 1 ]);
      (cond_conjuncts @ [ prefer ], [ n ]);
      (cond_conjuncts @ [ pport ], [ n + 1 ]);
      (cond_conjuncts, []) ]
  in
  let known_cores = ref [] in
  let rec go = function
    | [] -> None
    | (assumptions, extra_ids) :: rest ->
        let ids = List.init n (fun i -> i) @ extra_ids in
        let covered_by core = List.for_all (fun c -> List.mem c ids) core in
        if List.exists covered_by !known_cores then begin
          Telemetry.incr tele "symbolic.attempts_skipped";
          go rest
        end
        else begin
          match Solver.check_verdict ~assumptions ~canonical solver with
          | Solver.V_sat model -> Some model
          | Solver.V_unsat core_positions ->
              (* Map positions in this attempt's assumption list back to
                 universe ids. *)
              let core =
                List.map
                  (fun p -> if p < n then p else List.nth extra_ids (p - n))
                  core_positions
              in
              known_cores := core :: !known_cores;
              go rest
        end
  in
  go attempts

(* Group consecutive goals sharing a common prefix of top-level conjuncts
   (physical equality — symexec builds all guards of one table onto the
   same shared context/mismatch chain). Consecutive-only grouping preserves
   goal order, which [prune_goals] and the --jobs shard slicer rely on.
   Each group's prefix is asserted once inside a push scope; members then
   differ only in their assumption suffix. *)
type 'a group = { gr_prefix : Term.boolean list; gr_members : 'a list }

let common_prefix xs ys =
  let rec go acc = function
    | x :: xs, y :: ys when x == y -> go (x :: acc) (xs, ys)
    | _ -> List.rev acc
  in
  go [] (xs, ys)

let group_goals goals =
  let close (prefix, members) = { gr_prefix = prefix; gr_members = List.rev members } in
  let rec go groups current = function
    | [] -> List.rev (match current with None -> groups | Some c -> close c :: groups)
    | ((_, _, conjuncts) as item) :: rest -> (
        match current with
        | None -> go groups (Some (conjuncts, [ item ])) rest
        | Some (prefix, members) -> (
            match common_prefix prefix conjuncts with
            | [] -> go (close (prefix, members) :: groups) (Some (conjuncts, [ item ])) rest
            | lcp -> go groups (Some (lcp, item :: members)) rest))
  in
  go [] None goals

let sum_stats acc stats =
  List.fold_left
    (fun acc (name, v) ->
      match List.assoc_opt name acc with
      | Some v0 -> (name, v0 + v) :: List.remove_assoc name acc
      | None -> acc @ [ (name, v) ])
    acc stats

let generate ?(ports = [ 1; 2; 3; 4 ]) ?(index_offset = 0) ?cache ?(incremental = true)
    (enc : Symexec.encoding) goals =
  let tele = Telemetry.get () in
  Telemetry.with_span tele "symbolic.generate"
    ~attrs:[ ("goals", string_of_int (List.length goals)) ]
  @@ fun () ->
  let key = cache_key enc goals ~ports ~index_offset in
  let cached =
    match cache with
    | None -> None
    | Some c -> (
        match Cache.find c ~key with
        | None -> None
        | Some raw -> (
            (* The cache layer already rejects torn files; this guards the
               residual case of a well-framed payload whose Marshal bytes
               are garbage. Falling through regenerates and overwrites. *)
            match deserialize raw with
            | packets -> Some packets
            | exception _ ->
                Telemetry.incr tele "cache.corrupt_dropped";
                None))
  in
  match cached with
  | Some packets ->
      let covered = List.length (List.filter (fun p -> p.tp_bytes <> None) packets) in
      { packets;
        covered;
        uncoverable = List.length packets - covered;
        solver_stats = [];
        from_cache = true }
  | None ->
      let canonical = canonical_vars enc in
      let nports = List.length ports in
      let port_term = Term.var Symexec.ingress_port_var 16 in
      let preferred_port i =
        Term.eq port_term
          (Term.of_int ~width:16 (List.nth ports ((index_offset + i) mod nports)))
      in
      let packet_of goal model =
        match model with
        | Some m ->
            Telemetry.incr tele "symbolic.goals_covered";
            { tp_goal = goal.goal_id;
              tp_kind = goal.goal_kind;
              tp_port = port_of_model m ports;
              tp_bytes = Some (packet_of_model enc m) }
        | None ->
            Telemetry.incr tele "symbolic.goals_uncoverable";
            { tp_goal = goal.goal_id;
              tp_kind = goal.goal_kind;
              tp_port = List.hd ports;
              tp_bytes = None }
      in
      let solve_member solver goal ~cond_conjuncts ~pport =
        let model =
          Telemetry.with_span tele "symbolic.goal"
            ~attrs:[ ("goal", goal.goal_id) ]
            (fun () ->
              solve_cascade solver ~canonical ~cond_conjuncts
                ~prefer:goal.goal_prefer ~pport)
        in
        packet_of goal model
      in
      let packets, solver_stats =
        if incremental then begin
          (* One solver for the whole goal list: the encoding bit-blasts
             once, learned clauses persist across goals, and each group's
             shared guard prefix is asserted once in a push scope.

             The shared solver accumulates Tseitin gates for every goal's
             unique guard structure, and a solve assigns every variable in
             the database — so an unboundedly shared solver makes each
             check dearer than the last (quadratic over a long campaign).
             Re-seeding a fresh solver once the variable count outgrows the
             base encoding bounds the accumulation; canonical witness
             extraction makes the reset points invisible in the results. *)
          let solver = ref (Solver.create ()) in
          assert_base !solver enc ports;
          let sat_vars s =
            Option.value ~default:0 (List.assoc_opt "sat_vars" (Solver.stats s))
          in
          let base_vars = sat_vars !solver in
          let retired = ref [] in
          let reseed_if_grown () =
            if sat_vars !solver > 3 * base_vars + 512 then begin
              Telemetry.incr tele "smt.solver_reseeds";
              retired := sum_stats !retired (Solver.stats !solver);
              solver := Solver.create ();
              assert_base !solver enc ports
            end
          in
          let items =
            List.mapi (fun i goal -> (i, goal, Term.flatten_conj goal.goal_cond)) goals
          in
          let packets =
            List.concat_map
              (fun { gr_prefix; gr_members } ->
                reseed_if_grown ();
                let solver = !solver in
                Solver.push solver;
                Fun.protect
                  ~finally:(fun () -> Solver.pop solver)
                  (fun () ->
                    Solver.assert_formula solver (Term.conj gr_prefix);
                    List.map
                      (fun (i, goal, conjuncts) ->
                        let suffix =
                          (* The group prefix may be shorter than this
                             goal's own: the rest rides as assumptions. *)
                          let rec drop n l =
                            if n = 0 then l
                            else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
                          in
                          drop (List.length gr_prefix) conjuncts
                        in
                        solve_member solver goal ~cond_conjuncts:suffix
                          ~pport:(preferred_port i))
                      gr_members))
              (group_goals items)
          in
          (packets, sum_stats !retired (Solver.stats !solver))
        end
        else begin
          (* Scratch mode (the bench baseline, and the reference for the
             equivalence gate): every goal re-bit-blasts the encoding into
             a fresh solver and solves with nothing learned. *)
          let stats = ref [] in
          let packets =
            List.mapi
              (fun i goal ->
                let solver = Solver.create () in
                assert_base solver enc ports;
                let packet =
                  solve_member solver goal ~cond_conjuncts:[ goal.goal_cond ]
                    ~pport:(preferred_port i)
                in
                stats := sum_stats !stats (Solver.stats solver);
                packet)
              goals
          in
          (packets, !stats)
        end
      in
      (match cache with
      | Some c -> Cache.store c ~key (serialize packets)
      | None -> ());
      let covered = List.length (List.filter (fun p -> p.tp_bytes <> None) packets) in
      { packets;
        covered;
        uncoverable = List.length packets - covered;
        solver_stats;
        from_cache = false }
