(** Test-packet generation from coverage goals (§5 "Coverage Constraints").

    The symbolic encoding is asserted once; each coverage goal is posed as
    an {e assumption} to the shared SMT solver (the clause database and all
    learned facts are reused across the |T| queries). Satisfiable goals
    yield concrete test packets; unsatisfiable goals are reported as
    uncoverable (e.g. shadowed table entries).

    Generation results are cached (§6.3 "Caching") under a digest of the
    program, the installed entries, and the goal set: nightly runs whose
    specification did not change skip the SMT stage entirely. *)

module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module Term = Switchv_smt.Term

(** What a goal covers, as structured data. Consumers (e.g. {!module}
    [Switchv_core.Metrics]) must match on this rather than re-parse
    [goal_id] — table names may contain arbitrary characters, including
    the [':'] the id string uses as a separator. *)
type goal_kind =
  | G_entry of { ge_table : string; ge_label : string }
      (** One installed entry, or the table default when [ge_label] is
          ["<default>"]. *)
  | G_branch of string             (** one side of a pipeline conditional *)
  | G_trace of string              (** a cross-product trace combination *)
  | G_custom of string             (** caller-defined (exploratory goals) *)

type goal = {
  goal_id : string;                (** unique, stable across runs *)
  goal_kind : goal_kind;
  goal_cond : Term.boolean;
  goal_prefer : Term.boolean;
      (** A soft constraint: tried first, dropped if it makes the goal
          unsatisfiable. Campaigns prefer packets that are {e forwarded}
          (hitting an entry with a TTL-0 packet that both sides drop is
          poor differential coverage). *)
  goal_desc : string;
}

val entry_coverage_goals : ?prefer:Term.boolean -> Symexec.encoding -> goal list
(** One goal per (table, installed entry) and per table default — the
    paper's "hit every reachable input table entry at least once". *)

val branch_coverage_goals : ?prefer:Term.boolean -> Symexec.encoding -> goal list
(** One goal per side of every pipeline conditional. *)

val custom_goal : ?prefer:Term.boolean -> id:string -> desc:string -> Term.boolean -> goal

val trace_coverage_goals :
  ?prefer:Term.boolean ->
  ?max_goals:int ->
  Symexec.encoding ->
  tables:string list ->
  goal list
(** The paper's "practical middle ground" between branch and trace
    coverage (§5): full trace coverage is combinatorial in the number of
    entries, so testers select a subset of important tables and cover the
    {e cross-product} of their trace points (every combination of entries
    across the selected tables, one goal per combination). Truncated at
    [max_goals] (default 512); combinations whose guards conflict are
    reported as uncoverable by [generate]. *)

val prune_goals : Switchv_analysis.Analysis.facts -> goal list -> goal list
(** Drop goals the static analysis proved uncoverable before they reach
    the solver: entry goals of tables applied only on dead paths, branch
    goals whose [branch.N.then]/[.else] label the analysis decided can
    never execute, and trace combinations involving a dead table.
    [G_custom] goals are never pruned. Sound because a pruned goal's guard
    is statically false — the solver would classify it uncoverable, at a
    query's cost. Increments the [analysis.goals_pruned] counter by the
    number of goals dropped (creating it at 0 either way). *)

val prune_tainted_goals :
  Switchv_analysis.Taint.summary -> goal list -> goal list
(** Classify goals whose path condition crosses a taint-carrying branch
    ({!Switchv_analysis.Taint.summary.s_branch_labels}) as [Tainted] and
    drop them before they reach the solver: the SMT witness would pin a
    hash outcome the concrete run is free to ignore, so solving buys no
    reliable coverage. Only [G_branch] goals are affected — entry goals
    over tainted-key tables still exercise the table (the set-valued
    oracle judges which member handled them). Increments the
    [analysis.tainted_goals] counter by the number of goals dropped
    (creating it at 0 either way). *)

val prune_concretely_covered :
  covered:(string -> bool) -> goal list -> goal list
(** Greybox shortcut: drop [G_branch] goals whose coverage edge
    ([cov.<label>]) the campaign already drove concretely — the coverage
    an SMT witness would buy is in hand. Only branch goals map 1:1 onto an
    edge; entry goals share action edges across a table's entries and are
    kept as the primary divergence detectors. Increments the
    [analysis.concretely_covered_skipped] counter by the number of goals
    dropped (creating it at 0 either way). *)

type test_packet = {
  tp_goal : string;
  tp_kind : goal_kind;
  tp_port : int;                   (** ingress port to inject on *)
  tp_bytes : string option;        (** [None]: the goal is unsatisfiable *)
}

type result = {
  packets : test_packet list;
  covered : int;
  uncoverable : int;
  solver_stats : (string * int) list;
  from_cache : bool;
}

val generate :
  ?ports:int list ->
  ?index_offset:int ->
  ?cache:Cache.t ->
  ?incremental:bool ->
  Symexec.encoding ->
  goal list ->
  result
(** [ports] restricts the free ingress port (default [[1; 2; 3; 4]]).

    [index_offset] (default 0) is the position of [goals] within a larger
    campaign-wide goal list: the preferred-port soft constraint cycles by
    global goal index, so a sharded campaign that solves slice
    [\[off, off+n)] passes [~index_offset:off] and gets exactly the
    packets the unsliced campaign would produce for those goals. The
    offset participates in the cache key.

    [incremental] (default [true]) selects the solving pipeline. When on,
    one solver instance serves the whole goal list: consecutive goals are
    grouped by their longest shared prefix of guard conjuncts (symexec
    builds every guard of a table onto one physically shared context), the
    prefix is asserted once inside a push scope, and each goal solves as an
    assumption delta with learned clauses carried across goals; unsat cores
    prune the soft-constraint cascade. When off, every goal re-bit-blasts
    the encoding into a fresh solver (the bench baseline). Both pipelines
    extract {e canonical} (lexicographically minimal) witness models, so
    they return identical packets and identical verdicts — [incremental]
    is deliberately absent from the cache key. *)

val cache_key :
  Symexec.encoding -> goal list -> ports:int list -> index_offset:int -> string
