(* A MiniSat-style CDCL solver. Literal encoding: literal = 2*var for the
   positive phase, 2*var+1 for the negative phase. *)

module Lit = struct
  type t = int

  let make v sign = (v lsl 1) lor (if sign then 0 else 1)
  let var l = l lsr 1
  let sign l = l land 1 = 0
  let neg l = l lxor 1
  let pp fmt l = Format.fprintf fmt "%s%d" (if sign l then "" else "-") (var l)
end

(* Growable int/float vectors; OCaml arrays with doubling. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

  let create dummy = { data = Array.make 16 dummy; size = 0; dummy }

  let push t x =
    if t.size = Array.length t.data then begin
      let data = Array.make (2 * Array.length t.data) t.dummy in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1

  let get t i = t.data.(i)
  let set t i x = t.data.(i) <- x
  let size t = t.size
  let shrink t n = t.size <- n
end

type clause = { lits : int array; learned : bool; mutable activity : float }

(* Variable order: binary max-heap on activity, with position index. *)
module Heap = struct
  type t = {
    mutable heap : int array;       (* heap of variable indices *)
    mutable size : int;
    mutable pos : int array;        (* pos.(v) = index in heap, or -1 *)
  }

  let create () = { heap = Array.make 16 0; size = 0; pos = Array.make 16 (-1) }

  let ensure_var t v =
    if v >= Array.length t.pos then begin
      let pos = Array.make (max (2 * Array.length t.pos) (v + 1)) (-1) in
      Array.blit t.pos 0 pos 0 (Array.length t.pos);
      t.pos <- pos
    end

  let in_heap t v = v < Array.length t.pos && t.pos.(v) >= 0

  let swap t i j =
    let vi = t.heap.(i) and vj = t.heap.(j) in
    t.heap.(i) <- vj; t.heap.(j) <- vi;
    t.pos.(vj) <- i; t.pos.(vi) <- j

  let rec up t act i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if act.(t.heap.(i)) > act.(t.heap.(p)) then begin
        swap t i p; up t act p
      end
    end

  let rec down t act i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < t.size && act.(t.heap.(l)) > act.(t.heap.(!best)) then best := l;
    if r < t.size && act.(t.heap.(r)) > act.(t.heap.(!best)) then best := r;
    if !best <> i then begin swap t i !best; down t act !best end

  let insert t act v =
    ensure_var t v;
    if not (in_heap t v) then begin
      if t.size = Array.length t.heap then begin
        let heap = Array.make (2 * Array.length t.heap) 0 in
        Array.blit t.heap 0 heap 0 t.size;
        t.heap <- heap
      end;
      t.heap.(t.size) <- v;
      t.pos.(v) <- t.size;
      t.size <- t.size + 1;
      up t act t.pos.(v)
    end

  let decrease t act v = if in_heap t v then up t act t.pos.(v)

  let pop_max t act =
    let v = t.heap.(0) in
    t.size <- t.size - 1;
    t.pos.(v) <- -1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(0) <- last;
      t.pos.(last) <- 0;
      down t act 0
    end;
    v

  let is_empty t = t.size = 0
end

type t = {
  mutable nvars : int;
  mutable assigns : int array;      (* -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;       (* saved phase *)
  mutable activity : float array;
  mutable watches : clause Vec.t array;  (* indexed by literal *)
  clauses : clause Vec.t;
  trail : int Vec.t;                (* literal trail *)
  trail_lim : int Vec.t;            (* decision level boundaries *)
  mutable qhead : int;
  order : Heap.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable seen : bool array;
  mutable ok : bool;                (* false once a top-level conflict found *)
  (* statistics *)
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learned : int;
}

let dummy_clause = { lits = [||]; learned = false; activity = 0.0 }

let create () =
  { nvars = 0;
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 None;
    phase = Array.make 16 false;
    activity = Array.make 16 0.0;
    watches = Array.init 32 (fun _ -> Vec.create dummy_clause);
    clauses = Vec.create dummy_clause;
    trail = Vec.create 0;
    trail_lim = Vec.create 0;
    qhead = 0;
    order = Heap.create ();
    var_inc = 1.0;
    cla_inc = 1.0;
    seen = Array.make 16 false;
    ok = true;
    n_conflicts = 0;
    n_decisions = 0;
    n_propagations = 0;
    n_restarts = 0;
    n_learned = 0 }

let num_vars t = t.nvars

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  let n = Array.length t.assigns in
  if v >= n then begin
    let grow a fill =
      let b = Array.make (2 * n) fill in
      Array.blit a 0 b 0 n; b
    in
    t.assigns <- grow t.assigns (-1);
    t.level <- grow t.level 0;
    t.reason <- grow t.reason None;
    t.phase <- grow t.phase false;
    t.activity <- grow t.activity 0.0;
    t.seen <- grow t.seen false;
    let w = Array.init (4 * n) (fun _ -> Vec.create dummy_clause) in
    Array.blit t.watches 0 w 0 (2 * n);
    t.watches <- w
  end;
  Heap.insert t.order t.activity v;
  v

let lit_value t l =
  let a = t.assigns.(Lit.var l) in
  if a < 0 then -1
  else if Lit.sign l then a
  else 1 - a

let decision_level t = Vec.size t.trail_lim

let enqueue t l reason =
  t.assigns.(Lit.var l) <- (if Lit.sign l then 1 else 0);
  t.level.(Lit.var l) <- decision_level t;
  t.reason.(Lit.var l) <- reason;
  Vec.push t.trail l

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Heap.decrease t.order t.activity v

let var_decay t = t.var_inc <- t.var_inc /. 0.95

let watch t l c = Vec.push t.watches.(l) c

let attach_clause t c =
  (* Watch the first two literals. *)
  watch t (Lit.neg c.lits.(0)) c;
  watch t (Lit.neg c.lits.(1)) c

let add_clause t lits =
  if t.ok then begin
    (* Simplify: drop duplicate/false literals, detect tautologies. Only
       sound at level 0; callers add clauses before/between solves, where we
       restart from level 0 anyway, but literal values at level > 0 must be
       ignored. *)
    let at_top = decision_level t = 0 in
    let tbl = Hashtbl.create 8 in
    let taut = ref false in
    let lits =
      List.filter
        (fun l ->
          if Hashtbl.mem tbl (Lit.neg l) then taut := true;
          if Hashtbl.mem tbl l then false
          else begin
            Hashtbl.add tbl l ();
            not (at_top && lit_value t l = 0)
          end)
        (lits :> int list)
    in
    if not !taut then begin
      let already_sat = at_top && List.exists (fun l -> lit_value t l = 1) lits in
      if not already_sat then
        match lits with
        | [] -> t.ok <- false
        | [ l ] ->
            if at_top then begin
              match lit_value t l with
              | 1 -> ()
              | 0 -> t.ok <- false
              | _ -> enqueue t l None
            end
            else begin
              (* Shouldn't happen in our usage; store as a clause with a
                 duplicated watch to stay safe. *)
              let c = { lits = [| l; l |]; learned = false; activity = 0.0 } in
              Vec.push t.clauses c;
              attach_clause t c
            end
        | l1 :: l2 :: _ ->
            let c = { lits = Array.of_list lits; learned = false; activity = 0.0 } in
            ignore l1; ignore l2;
            Vec.push t.clauses c;
            attach_clause t c
    end
  end

(* Propagate all enqueued facts. Returns the conflicting clause if any. *)
let propagate t =
  let conflict = ref None in
  while !conflict = None && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let ws = t.watches.(p) in
    let n = Vec.size ws in
    let j = ref 0 in
    (let i = ref 0 in
     while !i < n do
       let c = Vec.get ws !i in
       incr i;
       if !conflict <> None then begin
         (* Copy the remaining watchers unchanged. *)
         Vec.set ws !j c;
         incr j
       end
       else begin
         (* Make sure the false literal is lits.(1). *)
         let falsel = Lit.neg p in
         if c.lits.(0) = falsel then begin
           c.lits.(0) <- c.lits.(1);
           c.lits.(1) <- falsel
         end;
         if lit_value t c.lits.(0) = 1 then begin
           (* Clause already satisfied; keep watching. *)
           Vec.set ws !j c;
           incr j
         end
         else begin
           (* Look for a new literal to watch. *)
           let len = Array.length c.lits in
           let rec find k =
             if k >= len then None
             else if lit_value t c.lits.(k) <> 0 then Some k
             else find (k + 1)
           in
           match find 2 with
           | Some k ->
               c.lits.(1) <- c.lits.(k);
               c.lits.(k) <- falsel;
               watch t (Lit.neg c.lits.(1)) c
           | None ->
               (* Unit or conflicting. *)
               Vec.set ws !j c;
               incr j;
               if lit_value t c.lits.(0) = 0 then conflict := Some c
               else enqueue t c.lits.(0) (Some c)
         end
       end
     done);
    Vec.shrink ws !j
  done;
  !conflict

(* First-UIP conflict analysis. Returns (learned clause lits, backjump level).
   learned.(0) is the asserting literal. *)
let analyze t confl =
  let learnt = ref [] in
  let seen = t.seen in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref (Some confl) in
  let idx = ref (Vec.size t.trail - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    (match !confl with
    | None -> assert false
    | Some c ->
        if c.learned then c.activity <- c.activity +. t.cla_inc;
        let start = if !p = -1 then 0 else 1 in
        for k = start to Array.length c.lits - 1 do
          let q = c.lits.(k) in
          let v = Lit.var q in
          if (not seen.(v)) && t.level.(v) > 0 then begin
            var_bump t v;
            seen.(v) <- true;
            if t.level.(v) >= decision_level t then incr path
            else begin
              learnt := q :: !learnt;
              if t.level.(v) > !btlevel then btlevel := t.level.(v)
            end
          end
        done);
    (* Select next literal to look at. *)
    let rec next () =
      let l = Vec.get t.trail !idx in
      decr idx;
      if seen.(Lit.var l) then l else next ()
    in
    let l = next () in
    p := l;
    confl := t.reason.(Lit.var l);
    seen.(Lit.var l) <- false;
    decr path;
    if !path <= 0 then continue := false
  done;
  let learnt = Lit.neg !p :: !learnt in
  (* Clear seen flags. *)
  List.iter (fun l -> t.seen.(Lit.var l) <- false) learnt;
  (Array.of_list learnt, !btlevel)

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.phase.(v) <- Lit.sign l;
      t.assigns.(v) <- -1;
      t.reason.(v) <- None;
      Heap.insert t.order t.activity v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

let new_decision_level t = Vec.push t.trail_lim (Vec.size t.trail)

let pick_branch_var t =
  let rec go () =
    if Heap.is_empty t.order then None
    else begin
      let v = Heap.pop_max t.order t.activity in
      if t.assigns.(v) < 0 then Some v else go ()
    end
  in
  go ()

(* Luby sequence (1 1 2 1 1 2 4 ...): luby i with i >= 1. *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

type result = Sat | Unsat
type assumption_result = A_sat | A_unsat of Lit.t list

exception Unsat_exn
exception Restart

(* MiniSat's analyzeFinal: [p] is an assumption literal found falsified at
   its decision point. Walk the trail above level 0 backwards from the
   (already enqueued) implication of [~p], expanding propagation reasons and
   collecting the decision literals reached — under assumption solving every
   decision at those levels is itself an assumption — into the unsat core.
   Literals implied at level 0 do not depend on assumptions and are skipped.
   Must run before [cancel_until]: it reads the live trail. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    let seen = t.seen in
    seen.(Lit.var p) <- true;
    let bound = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      if seen.(v) then begin
        (match t.reason.(v) with
        | None ->
            (* A decision above level 0: an assumption literal (possibly the
               negation of [p] itself when assumptions directly conflict). *)
            if l <> p then core := l :: !core
        | Some c ->
            Array.iter
              (fun q ->
                if t.level.(Lit.var q) > 0 then seen.(Lit.var q) <- true)
              c.lits);
        seen.(v) <- false
      end
    done;
    seen.(Lit.var p) <- false
  end;
  !core

(* Find the first literal in [order] whose variable is still unassigned.
   Decisions taken from [order] always use the literal's own polarity (no
   saved-phase override): together with the fixed scan order this makes the
   model found a pure function of the clause set's meaning — the
   lexicographically preferred model w.r.t. [order] — independent of learned
   clauses, VSIDS state, and restart timing. *)
let pick_ordered t order =
  let n = Array.length order in
  let rec go i =
    if i >= n then None
    else
      let l = order.(i) in
      if t.assigns.(Lit.var l) < 0 then Some l else go (i + 1)
  in
  go 0

let solve_with_assumptions ?order t assumptions =
  if not t.ok then A_unsat []
  else begin
    cancel_until t 0;
    let assumptions = Array.of_list (assumptions :> int list) in
    let order = match order with None -> [||] | Some o -> (o : Lit.t array) in
    let core = ref [] in
    try
      (match propagate t with
      | Some _ -> t.ok <- false; raise Unsat_exn
      | None -> ());
      let restart_n = ref 0 in
      let rec search_forever () =
        incr restart_n;
        let budget = 100 * luby !restart_n in
        let conflicts_here = ref 0 in
        (try
           while true do
             match propagate t with
             | Some confl ->
                 t.n_conflicts <- t.n_conflicts + 1;
                 incr conflicts_here;
                 if decision_level t = 0 then begin
                   t.ok <- false;
                   raise Unsat_exn
                 end;
                 let learnt, btlevel = analyze t confl in
                 cancel_until t btlevel;
                 (if Array.length learnt = 1 then enqueue t learnt.(0) None
                  else begin
                    let c = { lits = learnt; learned = true; activity = t.cla_inc } in
                    Vec.push t.clauses c;
                    t.n_learned <- t.n_learned + 1;
                    attach_clause t c;
                    enqueue t learnt.(0) (Some c)
                  end);
                 var_decay t;
                 if !conflicts_here >= budget then begin
                   t.n_restarts <- t.n_restarts + 1;
                   cancel_until t 0;
                   raise Restart
                 end
             | None ->
                 (* Decide next: assumptions first, then the canonical order
                    if given, then VSIDS. *)
                 if decision_level t < Array.length assumptions then begin
                   let p = assumptions.(decision_level t) in
                   match lit_value t p with
                   | 1 -> new_decision_level t
                   | 0 ->
                       (* Conflicts with the assumptions: report which. *)
                       core := analyze_final t p;
                       raise Unsat_exn
                   | _ ->
                       t.n_decisions <- t.n_decisions + 1;
                       new_decision_level t;
                       enqueue t p None
                 end
                 else begin
                   match pick_ordered t order with
                   | Some l ->
                       t.n_decisions <- t.n_decisions + 1;
                       new_decision_level t;
                       enqueue t l None
                   | None -> (
                       match pick_branch_var t with
                       | None -> raise Exit (* all assigned: SAT *)
                       | Some v ->
                           t.n_decisions <- t.n_decisions + 1;
                           new_decision_level t;
                           enqueue t (Lit.make v t.phase.(v)) None)
                 end
           done
         with Restart -> ());
        search_forever ()
      in
      (try search_forever () with Exit -> ());
      A_sat
    with Unsat_exn ->
      cancel_until t 0;
      (* Distinguish global unsat from assumption-relative unsat: if [ok]
         was cleared, the instance is globally unsat (empty core); otherwise
         only the assumptions failed and the solver stays usable. *)
      A_unsat !core
  end

let solve ?(assumptions = []) t =
  match solve_with_assumptions t assumptions with
  | A_sat -> Sat
  | A_unsat _ -> Unsat

let value t v = if t.assigns.(v) >= 0 then t.assigns.(v) = 1 else t.phase.(v)
let num_learned t = t.n_learned
let cancel_to_root t = cancel_until t 0

let stats t =
  [ ("conflicts", t.n_conflicts);
    ("decisions", t.n_decisions);
    ("propagations", t.n_propagations);
    ("restarts", t.n_restarts);
    ("learned", t.n_learned) ]
