module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix

type bv =
  | Bv_const of Bitvec.t
  | Bv_var of string * int
  | Bv_not of bv
  | Bv_neg of bv
  | Bv_and of bv * bv
  | Bv_or of bv * bv
  | Bv_xor of bv * bv
  | Bv_add of bv * bv
  | Bv_sub of bv * bv
  | Bv_mul of bv * bv
  | Bv_concat of bv * bv
  | Bv_extract of int * int * bv
  | Bv_zero_ext of int * bv
  | Bv_ite of boolean * bv * bv

and boolean =
  | B_true
  | B_false
  | B_var of string
  | B_eq of bv * bv
  | B_ult of bv * bv
  | B_ule of bv * bv
  | B_not of boolean
  | B_and of boolean * boolean
  | B_or of boolean * boolean
  | B_ite of boolean * boolean * boolean

let rec bv_width = function
  | Bv_const c -> Bitvec.width c
  | Bv_var (_, w) -> w
  | Bv_not a | Bv_neg a -> bv_width a
  | Bv_and (a, _) | Bv_or (a, _) | Bv_xor (a, _)
  | Bv_add (a, _) | Bv_sub (a, _) | Bv_mul (a, _) -> bv_width a
  | Bv_concat (a, b) -> bv_width a + bv_width b
  | Bv_extract (hi, lo, _) -> hi - lo + 1
  | Bv_zero_ext (w, _) -> w
  | Bv_ite (_, a, _) -> bv_width a

let const c = Bv_const c
let var name w =
  if w < 1 then invalid_arg "Term.var: width must be >= 1";
  Bv_var (name, w)
let of_int ~width n = Bv_const (Bitvec.of_int ~width n)

let check2 name a b =
  if bv_width a <> bv_width b then
    invalid_arg (Printf.sprintf "Term.%s: width mismatch (%d vs %d)" name
                   (bv_width a) (bv_width b))

let bvnot = function
  | Bv_const c -> Bv_const (Bitvec.lognot c)
  | Bv_not a -> a
  | a -> Bv_not a

let bvneg = function
  | Bv_const c -> Bv_const (Bitvec.neg c)
  | a -> Bv_neg a

let bvand a b =
  check2 "bvand" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.logand x y)
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_zero c ->
      ignore o; Bv_const c
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_ones c -> o
  | _ -> Bv_and (a, b)

let bvor a b =
  check2 "bvor" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.logor x y)
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_zero c -> o
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_ones c ->
      ignore o; Bv_const c
  | _ -> Bv_or (a, b)

let bvxor a b =
  check2 "bvxor" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.logxor x y)
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_zero c -> o
  | _ -> Bv_xor (a, b)

let bvadd a b =
  check2 "bvadd" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.add x y)
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_zero c -> o
  | _ -> Bv_add (a, b)

let bvsub a b =
  check2 "bvsub" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.sub x y)
  | o, Bv_const c when Bitvec.is_zero c -> o
  | _ -> Bv_sub (a, b)

let bvmul a b =
  check2 "bvmul" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.mul x y)
  | (Bv_const c, o | o, Bv_const c) when Bitvec.is_zero c ->
      ignore o; Bv_const c
  | (Bv_const c, o | o, Bv_const c)
    when Bitvec.equal c (Bitvec.of_int ~width:(Bitvec.width c) 1) -> o
  | _ -> Bv_mul (a, b)

let concat a b =
  match (a, b) with
  | Bv_const x, Bv_const y -> Bv_const (Bitvec.concat x y)
  | _ -> Bv_concat (a, b)

let extract ~hi ~lo a =
  let w = bv_width a in
  if lo < 0 || hi >= w || hi < lo then invalid_arg "Term.extract: bad range";
  if lo = 0 && hi = w - 1 then a
  else match a with
    | Bv_const c -> Bv_const (Bitvec.extract ~hi ~lo c)
    | _ -> Bv_extract (hi, lo, a)

let zero_ext w a =
  let wa = bv_width a in
  if w < wa then invalid_arg "Term.zero_ext: narrower target";
  if w = wa then a
  else match a with
    | Bv_const c -> Bv_const (Bitvec.zero_extend w c)
    | _ -> Bv_zero_ext (w, a)

let tru = B_true
let fls = B_false
let bvar name = B_var name

let rec not_ = function
  | B_true -> B_false
  | B_false -> B_true
  | B_not b -> b
  | B_ite (c, a, b) -> B_ite (c, not_ a, not_ b)
  | b -> B_not b

let eq a b =
  check2 "eq" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> if Bitvec.equal x y then B_true else B_false
  | _ -> if a == b then B_true else B_eq (a, b)

let ult a b =
  check2 "ult" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> if Bitvec.ult x y then B_true else B_false
  | _ -> B_ult (a, b)

let ule a b =
  check2 "ule" a b;
  match (a, b) with
  | Bv_const x, Bv_const y -> if Bitvec.ule x y then B_true else B_false
  | _ -> if a == b then B_true else B_ule (a, b)

let ugt a b = ult b a
let uge a b = ule b a
let neq a b = not_ (eq a b)

let and_ a b =
  match (a, b) with
  | B_false, _ | _, B_false -> B_false
  | B_true, o | o, B_true -> o
  | _ -> if a == b then a else B_and (a, b)

let or_ a b =
  match (a, b) with
  | B_true, _ | _, B_true -> B_true
  | B_false, o | o, B_false -> o
  | _ -> if a == b then a else B_or (a, b)

let implies a b = or_ (not_ a) b

let iff a b =
  match (a, b) with
  | B_true, o | o, B_true -> o
  | B_false, o | o, B_false -> not_ o
  | _ -> if a == b then B_true else B_ite (a, b, not_ b)

let bite c a b =
  match c with
  | B_true -> a
  | B_false -> b
  | _ -> if a == b then a else B_ite (c, a, b)

let ite c a b =
  check2 "ite" a b;
  match c with
  | B_true -> a
  | B_false -> b
  | _ -> (match (a, b) with
          | Bv_const x, Bv_const y when Bitvec.equal x y -> a
          | _ -> if a == b then a else Bv_ite (c, a, b))

let conj l = List.fold_left and_ B_true l
let disj l = List.fold_left or_ B_false l

let matches_ternary key ~value ~mask =
  eq (bvand key (const mask)) (const (Bitvec.logand value mask))

let matches_prefix key p =
  let mask = Bitvec.prefix_mask ~width:(Prefix.width p) (Prefix.len p) in
  matches_ternary key ~value:(Prefix.value p) ~mask

type env = { bv_of : string -> Bitvec.t; bool_of : string -> bool }

let rec eval_bv env = function
  | Bv_const c -> c
  | Bv_var (name, w) ->
      let v = env.bv_of name in
      if Bitvec.width v <> w then
        invalid_arg (Printf.sprintf "Term.eval_bv: %s width mismatch" name);
      v
  | Bv_not a -> Bitvec.lognot (eval_bv env a)
  | Bv_neg a -> Bitvec.neg (eval_bv env a)
  | Bv_and (a, b) -> Bitvec.logand (eval_bv env a) (eval_bv env b)
  | Bv_or (a, b) -> Bitvec.logor (eval_bv env a) (eval_bv env b)
  | Bv_xor (a, b) -> Bitvec.logxor (eval_bv env a) (eval_bv env b)
  | Bv_add (a, b) -> Bitvec.add (eval_bv env a) (eval_bv env b)
  | Bv_sub (a, b) -> Bitvec.sub (eval_bv env a) (eval_bv env b)
  | Bv_mul (a, b) -> Bitvec.mul (eval_bv env a) (eval_bv env b)
  | Bv_concat (a, b) -> Bitvec.concat (eval_bv env a) (eval_bv env b)
  | Bv_extract (hi, lo, a) -> Bitvec.extract ~hi ~lo (eval_bv env a)
  | Bv_zero_ext (w, a) -> Bitvec.zero_extend w (eval_bv env a)
  | Bv_ite (c, a, b) -> if eval_bool env c then eval_bv env a else eval_bv env b

and eval_bool env = function
  | B_true -> true
  | B_false -> false
  | B_var name -> env.bool_of name
  | B_eq (a, b) -> Bitvec.equal (eval_bv env a) (eval_bv env b)
  | B_ult (a, b) -> Bitvec.ult (eval_bv env a) (eval_bv env b)
  | B_ule (a, b) -> Bitvec.ule (eval_bv env a) (eval_bv env b)
  | B_not a -> not (eval_bool env a)
  | B_and (a, b) -> eval_bool env a && eval_bool env b
  | B_or (a, b) -> eval_bool env a || eval_bool env b
  | B_ite (c, a, b) -> if eval_bool env c then eval_bool env a else eval_bool env b

let bv_vars formula =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let add name w =
    match Hashtbl.find_opt tbl name with
    | None ->
        Hashtbl.add tbl name w;
        order := (name, w) :: !order
    | Some w' ->
        if w <> w' then
          invalid_arg (Printf.sprintf "Term.bv_vars: %s used at widths %d and %d" name w w')
  in
  (* Memoize on physical identity to avoid exponential traversal of shared
     DAGs. *)
  let module Phys = Hashtbl.Make (struct
    type t = Obj.t
    let equal = ( == )
    let hash = Hashtbl.hash
  end) in
  let seen_bv = Phys.create 64 in
  let seen_bool = Phys.create 64 in
  let rec go_bv t =
    let key = Obj.repr t in
    if not (Phys.mem seen_bv key) then begin
      Phys.add seen_bv key ();
      match t with
      | Bv_const _ -> ()
      | Bv_var (name, w) -> add name w
      | Bv_not a | Bv_neg a | Bv_extract (_, _, a) | Bv_zero_ext (_, a) -> go_bv a
      | Bv_and (a, b) | Bv_or (a, b) | Bv_xor (a, b) | Bv_add (a, b)
      | Bv_sub (a, b) | Bv_mul (a, b) | Bv_concat (a, b) -> go_bv a; go_bv b
      | Bv_ite (c, a, b) -> go_bool c; go_bv a; go_bv b
    end
  and go_bool t =
    let key = Obj.repr t in
    if not (Phys.mem seen_bool key) then begin
      Phys.add seen_bool key ();
      match t with
      | B_true | B_false | B_var _ -> ()
      | B_eq (a, b) | B_ult (a, b) | B_ule (a, b) -> go_bv a; go_bv b
      | B_not a -> go_bool a
      | B_and (a, b) | B_or (a, b) -> go_bool a; go_bool b
      | B_ite (c, a, b) -> go_bool c; go_bool a; go_bool b
    end
  in
  go_bool formula;
  List.rev !order

module Phys = Hashtbl.Make (struct
  type t = Obj.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let bool_vars formula =
  let tbl : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let add name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.add tbl name ();
      order := name :: !order
    end
  in
  let seen = Phys.create 64 in
  let rec go_bv t =
    let key = Obj.repr t in
    if not (Phys.mem seen key) then begin
      Phys.add seen key ();
      match t with
      | Bv_const _ | Bv_var _ -> ()
      | Bv_not a | Bv_neg a | Bv_extract (_, _, a) | Bv_zero_ext (_, a) -> go_bv a
      | Bv_and (a, b) | Bv_or (a, b) | Bv_xor (a, b) | Bv_add (a, b)
      | Bv_sub (a, b) | Bv_mul (a, b) | Bv_concat (a, b) -> go_bv a; go_bv b
      | Bv_ite (c, a, b) -> go_bool c; go_bv a; go_bv b
    end
  and go_bool t =
    let key = Obj.repr t in
    if not (Phys.mem seen key) then begin
      Phys.add seen key ();
      match t with
      | B_true | B_false -> ()
      | B_var name -> add name
      | B_eq (a, b) | B_ult (a, b) | B_ule (a, b) -> go_bv a; go_bv b
      | B_not a -> go_bool a
      | B_and (a, b) | B_or (a, b) -> go_bool a; go_bool b
      | B_ite (c, a, b) -> go_bool c; go_bool a; go_bool b
    end
  in
  go_bool formula;
  List.rev !order

(* Distinct physical nodes reachable from [formula]; the DAG size that the
   bit-blaster's memo tables see. *)
let size formula =
  let seen = Phys.create 64 in
  let n = ref 0 in
  let visit key = if Phys.mem seen key then false else (Phys.add seen key (); incr n; true) in
  let rec go_bv t =
    if visit (Obj.repr t) then
      match t with
      | Bv_const _ | Bv_var _ -> ()
      | Bv_not a | Bv_neg a | Bv_extract (_, _, a) | Bv_zero_ext (_, a) -> go_bv a
      | Bv_and (a, b) | Bv_or (a, b) | Bv_xor (a, b) | Bv_add (a, b)
      | Bv_sub (a, b) | Bv_mul (a, b) | Bv_concat (a, b) -> go_bv a; go_bv b
      | Bv_ite (c, a, b) -> go_bool c; go_bv a; go_bv b
  and go_bool t =
    if visit (Obj.repr t) then
      match t with
      | B_true | B_false | B_var _ -> ()
      | B_eq (a, b) | B_ult (a, b) | B_ule (a, b) -> go_bv a; go_bv b
      | B_not a -> go_bool a
      | B_and (a, b) | B_or (a, b) -> go_bool a; go_bool b
      | B_ite (c, a, b) -> go_bool c; go_bool a; go_bool b
  in
  go_bool formula;
  !n

let flatten_conj formula =
  let rec go acc = function
    | B_and (a, b) -> go (go acc a) b
    | B_true -> acc
    | t -> t :: acc
  in
  List.rev (go [] formula)

(* --- preprocessing ---------------------------------------------------------------- *)

(* Lift a comparison against a constant through an if-then-else mux:
   [ite(c,a,b) OP k] becomes [if c then a OP k else b OP k], which folds
   whenever a branch is constant. p4-symbolic's match guards compare
   [ite(valid, field, 0)] muxes against entry constants, so this is the
   transformation that lets the constant entry data reach the folding smart
   constructors before bit-blasting spends mux gates on it. Only fires when
   one side is a constant, so no subterm is duplicated. *)
let rec lift_cmp mk a b =
  match (a, b) with
  | Bv_ite (c, x, y), Bv_const _ -> bite c (lift_cmp mk x b) (lift_cmp mk y b)
  | Bv_const _, Bv_ite (c, x, y) -> bite c (lift_cmp mk a x) (lift_cmp mk a y)
  | _ -> mk a b

let needs_lift a b =
  match (a, b) with
  | Bv_ite _, Bv_const _ | Bv_const _, Bv_ite _ -> true
  | _ -> false

(* Rebuild a term bottom-up through the smart constructors, substituting
   bound variables and lifting constant comparisons. Physically shared
   subterms are rewritten once (memo on identity, shared across all terms
   passed to the returned function), and a node whose children are unchanged
   is returned as-is, so sharing survives the pass — the blaster's memo
   tables keep hitting across formulas that share structure. *)
let rewriter ~bv_bind ~bool_bind =
  let memo_bv = Phys.create 64 in
  let memo_bool = Phys.create 64 in
  let rec rw_bv t =
    let key = Obj.repr t in
    match Phys.find_opt memo_bv key with
    | Some r -> r
    | None ->
        let r =
          match t with
          | Bv_const _ -> t
          | Bv_var (name, w) -> (
              match bv_bind name with
              | Some c when Bitvec.width c = w -> Bv_const c
              | _ -> t)
          | Bv_not a -> let a' = rw_bv a in if a' == a then t else bvnot a'
          | Bv_neg a -> let a' = rw_bv a in if a' == a then t else bvneg a'
          | Bv_and (a, b) -> bin t bvand a b
          | Bv_or (a, b) -> bin t bvor a b
          | Bv_xor (a, b) -> bin t bvxor a b
          | Bv_add (a, b) -> bin t bvadd a b
          | Bv_sub (a, b) -> bin t bvsub a b
          | Bv_mul (a, b) -> bin t bvmul a b
          | Bv_concat (a, b) -> bin t concat a b
          | Bv_extract (hi, lo, a) ->
              let a' = rw_bv a in
              if a' == a then t else extract ~hi ~lo a'
          | Bv_zero_ext (w, a) ->
              let a' = rw_bv a in
              if a' == a then t else zero_ext w a'
          | Bv_ite (c, a, b) ->
              let c' = rw_bool c and a' = rw_bv a and b' = rw_bv b in
              if c' == c && a' == a && b' == b then t else ite c' a' b'
        in
        Phys.add memo_bv key r;
        r
  and bin t mk a b =
    let a' = rw_bv a and b' = rw_bv b in
    if a' == a && b' == b then t else mk a' b'
  and cmp t mk a b =
    let a' = rw_bv a and b' = rw_bv b in
    if a' == a && b' == b && not (needs_lift a' b') then t
    else lift_cmp mk a' b'
  and rw_bool t =
    let key = Obj.repr t in
    match Phys.find_opt memo_bool key with
    | Some r -> r
    | None ->
        let r =
          match t with
          | B_true | B_false -> t
          | B_var name -> (
              match bool_bind name with
              | Some v -> if v then B_true else B_false
              | None -> t)
          | B_eq (a, b) -> cmp t eq a b
          | B_ult (a, b) -> cmp t ult a b
          | B_ule (a, b) -> cmp t ule a b
          | B_not a -> let a' = rw_bool a in if a' == a then t else not_ a'
          | B_and (a, b) ->
              let a' = rw_bool a and b' = rw_bool b in
              if a' == a && b' == b then t else and_ a' b'
          | B_or (a, b) ->
              let a' = rw_bool a and b' = rw_bool b in
              if a' == a && b' == b then t else or_ a' b'
          | B_ite (c, a, b) ->
              let c' = rw_bool c and a' = rw_bool a and b' = rw_bool b in
              if c' == c && a' == a && b' == b then t else bite c' a' b'
        in
        Phys.add memo_bool key r;
        r
  in
  rw_bool

(* Top-level conjuncts of the forms [x = const] / [b] / [!b] define their
   variable. The defining conjunct is kept verbatim (so models are
   preserved) while every other occurrence of the variable is replaced by
   the constant. Conflicting definitions keep the first; the substituted
   second then folds to [false] on its own. *)
let collect_bindings conjuncts =
  let bv_tbl : (string, Bitvec.t) Hashtbl.t = Hashtbl.create 8 in
  let bool_tbl : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let definers = Phys.create 8 in
  let define_bv name c definer =
    if not (Hashtbl.mem bv_tbl name) then begin
      Hashtbl.add bv_tbl name c;
      Phys.replace definers (Obj.repr definer) ()
    end
  in
  let define_bool name v definer =
    if not (Hashtbl.mem bool_tbl name) then begin
      Hashtbl.add bool_tbl name v;
      Phys.replace definers (Obj.repr definer) ()
    end
  in
  List.iter
    (fun conjunct ->
      match conjunct with
      | B_eq (Bv_var (name, w), Bv_const c) | B_eq (Bv_const c, Bv_var (name, w)) ->
          if Bitvec.width c = w then define_bv name c conjunct
      | B_var name -> define_bool name true conjunct
      | B_not (B_var name) -> define_bool name false conjunct
      | _ -> ())
    conjuncts;
  (bv_tbl, bool_tbl, definers)

(* Cone-of-influence: drop top-level conjuncts whose variable-connectivity
   component is disjoint from [roots]. Sound for models and for SAT
   verdicts only when every dropped conjunct group is independently
   satisfiable (e.g. constraints over auxiliary free variables); the caller
   owns that invariant — packet generation never passes [roots] for the
   formulas it extracts models from. *)
let restrict_cone ~roots conjuncts =
  let n = List.length conjuncts in
  let arr = Array.of_list conjuncts in
  let vars_of i =
    List.map fst (bv_vars arr.(i)) @ bool_vars arr.(i)
  in
  (* Union-find over conjunct indices, joined through shared variable names. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j = let ri = find i and rj = find j in if ri <> rj then parent.(ri) <- rj in
  let owner : (string, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i _ ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt owner v with
          | None -> Hashtbl.add owner v i
          | Some j -> union i j)
        (vars_of i))
    arr;
  let live = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt owner r with
      | Some i -> Hashtbl.replace live (find i) ()
      | None -> ())
    roots;
  let kept = ref [] and dropped = ref 0 in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem live (find i) then kept := c :: !kept else incr dropped)
    arr;
  (List.rev !kept, !dropped)

let preprocess ?roots formula =
  let before = size formula in
  let conjuncts = flatten_conj formula in
  let bv_tbl, bool_tbl, definers = collect_bindings conjuncts in
  let rw =
    rewriter ~bv_bind:(Hashtbl.find_opt bv_tbl)
      ~bool_bind:(Hashtbl.find_opt bool_tbl)
  in
  let conjuncts =
    List.map
      (fun conjunct ->
        if Phys.mem definers (Obj.repr conjunct) then conjunct else rw conjunct)
      conjuncts
  in
  let conjuncts, dropped =
    match roots with
    | None -> (conjuncts, 0)
    | Some roots -> restrict_cone ~roots conjuncts
  in
  let result = conj conjuncts in
  let eliminated = max 0 (before - size result) + dropped in
  (result, eliminated)

let rec pp_bv fmt = function
  | Bv_const c -> Bitvec.pp fmt c
  | Bv_var (name, w) -> Format.fprintf fmt "%s:%d" name w
  | Bv_not a -> Format.fprintf fmt "~%a" pp_bv a
  | Bv_neg a -> Format.fprintf fmt "-%a" pp_bv a
  | Bv_and (a, b) -> Format.fprintf fmt "(%a & %a)" pp_bv a pp_bv b
  | Bv_or (a, b) -> Format.fprintf fmt "(%a | %a)" pp_bv a pp_bv b
  | Bv_xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp_bv a pp_bv b
  | Bv_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_bv a pp_bv b
  | Bv_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_bv a pp_bv b
  | Bv_mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_bv a pp_bv b
  | Bv_concat (a, b) -> Format.fprintf fmt "(%a ++ %a)" pp_bv a pp_bv b
  | Bv_extract (hi, lo, a) -> Format.fprintf fmt "%a[%d:%d]" pp_bv a hi lo
  | Bv_zero_ext (w, a) -> Format.fprintf fmt "zext%d(%a)" w pp_bv a
  | Bv_ite (c, a, b) ->
      Format.fprintf fmt "(if %a then %a else %a)" pp_bool c pp_bv a pp_bv b

and pp_bool fmt = function
  | B_true -> Format.pp_print_string fmt "true"
  | B_false -> Format.pp_print_string fmt "false"
  | B_var name -> Format.pp_print_string fmt name
  | B_eq (a, b) -> Format.fprintf fmt "(%a = %a)" pp_bv a pp_bv b
  | B_ult (a, b) -> Format.fprintf fmt "(%a < %a)" pp_bv a pp_bv b
  | B_ule (a, b) -> Format.fprintf fmt "(%a <= %a)" pp_bv a pp_bv b
  | B_not a -> Format.fprintf fmt "!%a" pp_bool a
  | B_and (a, b) -> Format.fprintf fmt "(%a && %a)" pp_bool a pp_bool b
  | B_or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_bool a pp_bool b
  | B_ite (c, a, b) ->
      Format.fprintf fmt "(if %a then %a else %a)" pp_bool c pp_bool a pp_bool b
