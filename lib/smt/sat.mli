(** CDCL SAT solver.

    A MiniSat-style conflict-driven clause-learning solver with two-watched
    literals, 1-UIP conflict analysis, VSIDS branching, phase saving, and
    Luby restarts. It supports solving under unit {e assumptions}, which the
    bitvector layer uses to pose many coverage queries against a single
    clause database (one query per coverage goal, as in p4-symbolic).

    Variables are dense non-negative integers allocated by [new_var].
    Literals pair a variable with a sign. *)

type t

module Lit : sig
  type t = private int

  val make : int -> bool -> t
  (** [make v sign]: positive literal of variable [v] when [sign]. *)

  val var : t -> int
  val sign : t -> bool
  val neg : t -> t
  val pp : Format.formatter -> t -> unit
end

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable, returning its index. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a clause. Adding the empty clause (or clauses that are already
    falsified at level 0) makes the instance unsatisfiable. *)

type result = Sat | Unsat

type assumption_result =
  | A_sat
  | A_unsat of Lit.t list
      (** The unsat core: a subset of the assumption literals whose
          conjunction with the clause database is already unsatisfiable
          (computed by final-conflict analysis; not guaranteed minimal).
          Empty iff the clause database itself is unsatisfiable. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under the given assumption literals. The solver may be re-used:
    further clauses can be added and [solve] called again. *)

val solve_with_assumptions :
  ?order:Lit.t array -> t -> Lit.t list -> assumption_result
(** Incremental entry point: like [solve], but learned clauses and VSIDS
    activity persist across calls (they always did — this entry point
    additionally reports {e why} the assumptions failed). Assumptions are
    injected as pseudo-decisions below all search decisions; on failure the
    returned core is the subset implicated by final-conflict analysis.

    When [order] is given, decisions outside the assumptions are taken from
    [order] first: the first literal whose variable is unassigned is decided
    with the polarity written in the array (saved phases are not consulted).
    A [Sat] answer then yields the unique lexicographically preferred model
    w.r.t. [order] — for each position, the literal holds unless the clauses
    plus earlier positions force its negation. This makes the model a pure
    function of the formula's meaning, independent of learned clauses,
    restart timing, and heuristic state, which is what lets incremental and
    from-scratch solving produce bit-identical witnesses. Variables not in
    [order] are decided by VSIDS afterwards as usual. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer. Unconstrained variables
    report their saved phase (defaults to [false]). *)

val num_learned : t -> int
(** Learned clauses currently retained in the clause database. *)

val cancel_to_root : t -> unit
(** Backtrack to decision level 0, discarding the current assignment (a
    model read via [value] beforehand is unaffected by later calls). Clause
    additions between solves should happen at level 0 so [add_clause]'s
    simplifications see only root-level facts. *)

val stats : t -> (string * int) list
(** Counters: conflicts, decisions, propagations, restarts, learned. *)
