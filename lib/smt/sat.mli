(** CDCL SAT solver.

    A MiniSat-style conflict-driven clause-learning solver with two-watched
    literals, 1-UIP conflict analysis, VSIDS branching, phase saving, and
    Luby restarts. It supports solving under unit {e assumptions}, which the
    bitvector layer uses to pose many coverage queries against a single
    clause database (one query per coverage goal, as in p4-symbolic).

    Variables are dense non-negative integers allocated by [new_var].
    Literals pair a variable with a sign. *)

type t

module Lit : sig
  type t = private int

  val make : int -> bool -> t
  (** [make v sign]: positive literal of variable [v] when [sign]. *)

  val var : t -> int
  val sign : t -> bool
  val neg : t -> t
  val pp : Format.formatter -> t -> unit
end

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable, returning its index. *)

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a clause. Adding the empty clause (or clauses that are already
    falsified at level 0) makes the instance unsatisfiable. *)

type result = Sat | Unsat

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under the given assumption literals. The solver may be re-used:
    further clauses can be added and [solve] called again. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer. Unconstrained variables
    report their saved phase (defaults to [false]). *)

val stats : t -> (string * int) list
(** Counters: conflicts, decisions, propagations, restarts, learned. *)
