(** Quantifier-free bitvector terms.

    This is the formula language produced by p4-symbolic and consumed by
    {!Solver}. Terms are pure ADTs; the smart constructors perform width
    checking and aggressive constant folding (p4-symbolic's guards over
    concrete table entries fold substantially, which keeps the CNF small).

    Physically shared subterms are preserved by construction and exploited
    by the bit-blaster's memo tables, so building terms incrementally (as
    the symbolic interpreter does) yields DAG-sized, not tree-sized, CNF. *)

module Bitvec = Switchv_bitvec.Bitvec

type bv =
  | Bv_const of Bitvec.t
  | Bv_var of string * int                (* name, width *)
  | Bv_not of bv
  | Bv_neg of bv
  | Bv_and of bv * bv
  | Bv_or of bv * bv
  | Bv_xor of bv * bv
  | Bv_add of bv * bv
  | Bv_sub of bv * bv
  | Bv_mul of bv * bv
  | Bv_concat of bv * bv
  | Bv_extract of int * int * bv          (* hi, lo *)
  | Bv_zero_ext of int * bv               (* target width *)
  | Bv_ite of boolean * bv * bv

and boolean =
  | B_true
  | B_false
  | B_var of string
  | B_eq of bv * bv
  | B_ult of bv * bv
  | B_ule of bv * bv
  | B_not of boolean
  | B_and of boolean * boolean
  | B_or of boolean * boolean
  | B_ite of boolean * boolean * boolean

val bv_width : bv -> int

(** {1 Smart constructors (fold constants, check widths)} *)

val const : Bitvec.t -> bv
val var : string -> int -> bv
val of_int : width:int -> int -> bv

val bvnot : bv -> bv
val bvneg : bv -> bv
val bvand : bv -> bv -> bv
val bvor : bv -> bv -> bv
val bvxor : bv -> bv -> bv
val bvadd : bv -> bv -> bv
val bvsub : bv -> bv -> bv
val bvmul : bv -> bv -> bv
val concat : bv -> bv -> bv
val extract : hi:int -> lo:int -> bv -> bv
val zero_ext : int -> bv -> bv
val ite : boolean -> bv -> bv -> bv

val tru : boolean
val fls : boolean
val bvar : string -> boolean
val eq : bv -> bv -> boolean
val ult : bv -> bv -> boolean
val ule : bv -> bv -> boolean
val ugt : bv -> bv -> boolean
val uge : bv -> bv -> boolean
val neq : bv -> bv -> boolean
val not_ : boolean -> boolean
val and_ : boolean -> boolean -> boolean
val or_ : boolean -> boolean -> boolean
val implies : boolean -> boolean -> boolean
val iff : boolean -> boolean -> boolean
val bite : boolean -> boolean -> boolean -> boolean
val conj : boolean list -> boolean
val disj : boolean list -> boolean

val matches_ternary :
  bv -> value:Bitvec.t -> mask:Bitvec.t -> boolean
(** [(key land mask) = value] — the TCAM match condition. *)

val matches_prefix : bv -> Switchv_bitvec.Prefix.t -> boolean

(** {1 Evaluation}

    Reference semantics used by tests and by model validation. *)

type env = { bv_of : string -> Bitvec.t; bool_of : string -> bool }

val eval_bv : env -> bv -> Bitvec.t
val eval_bool : env -> boolean -> bool

(** {1 Variable collection} *)

val bv_vars : boolean -> (string * int) list
(** All bitvector variables (name, width), each reported once. Raises
    [Invalid_argument] if one name occurs at two widths. *)

val bool_vars : boolean -> string list
(** All boolean variables, each reported once, in first-occurrence order. *)

val size : boolean -> int
(** Distinct physical nodes reachable from the formula — the DAG size the
    bit-blaster's memo tables see, not the tree size. *)

val flatten_conj : boolean -> boolean list
(** Top-level conjuncts of a (nested) conjunction, left to right, with
    [tru] units dropped. [conj (flatten_conj f)] is logically [f]. *)

(** {1 Preprocessing}

    A semantics-preserving simplification pass run before bit-blasting:
    constant folding (terms are rebuilt through the folding smart
    constructors), if-lifting of comparisons against constants (so entry
    constants reach the folder through [ite(valid, field, 0)] muxes), and
    equality propagation (a top-level conjunct [x = const] substitutes the
    constant for [x] everywhere else; the defining conjunct itself is kept,
    so the model set is unchanged). *)

val preprocess : ?roots:string list -> boolean -> boolean * int
(** [preprocess f] returns the simplified formula and the number of DAG
    nodes (plus dropped conjuncts) eliminated. Without [roots] the result
    is logically equivalent to [f] — same models, bit for bit.

    With [roots], a cone-of-influence restriction additionally drops
    top-level conjuncts whose variable-connectivity component does not reach
    any root name. Dropping weakens the formula: it preserves satisfiability
    and models over the root cone only when every dropped component is
    independently satisfiable — the caller owns that invariant, so the
    packet-generation pipeline never passes [roots] for formulas it
    extracts witness models from. *)

val pp_bv : Format.formatter -> bv -> unit
val pp_bool : Format.formatter -> boolean -> unit
