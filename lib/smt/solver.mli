(** SMT solver frontend for QF_BV.

    Formulas built with {!Term} are bit-blasted (Tseitin encoding) into the
    {!Sat} CDCL core. The solver is incremental in the style p4-symbolic
    needs: assert the program encoding once with [assert_formula], then pose
    each coverage goal as an {e assumption} to [check] — the clause database
    (and everything the SAT solver learned) is reused across goals. *)

module Bitvec = Switchv_bitvec.Bitvec

type t

val create : unit -> t

val assert_formula : t -> Term.boolean -> unit
(** Constrain the instance. Formulas are preprocessed ({!Term.preprocess})
    before bit-blasting. Inside a {!push} scope the constraint lives until
    the matching {!pop}; at the root it is permanent. *)

val push : t -> unit
(** Open a scope. Formulas asserted until the matching [pop] are guarded by
    a fresh selector literal and retractable. The Tseitin environment is
    persistent across scopes: subterms shared with anything blasted earlier
    are not re-blasted. *)

val pop : t -> unit
(** Close the innermost scope, retracting its assertions (and disabling the
    clauses learned from them). Raises [Invalid_argument] when no scope is
    open. *)

val scope_depth : t -> int

type model = {
  bv : string -> Bitvec.t option;   (** value of a bitvector variable *)
  bool : string -> bool option;     (** value of a boolean variable *)
}

type result = Sat of model | Unsat

type verdict =
  | V_sat of model
  | V_unsat of int list
      (** Positions (0-based) into the [assumptions] list implicated by
          final-conflict analysis: the conjunction of the asserted state
          with just those assumptions is already unsatisfiable. Not
          guaranteed minimal. Empty when the asserted state alone is
          unsatisfiable — every superset of assumptions is then unsat
          too. *)

type canonical_var =
  | C_bool of string
  | C_bv of string
      (** A variable position in the canonical model order; see [check]. *)

val check :
  ?assumptions:Term.boolean list -> ?canonical:canonical_var list -> t -> result
(** Satisfiability of asserted formulas plus the given assumptions. On
    [Sat], the model covers every variable that appears in asserted or
    assumed formulas; variables the SAT core left unconstrained get
    arbitrary (but fixed) values.

    With [canonical], a [Sat] answer additionally canonicalizes the model:
    the named variables take the lexicographically minimal values (booleans
    false-first, bitvectors numerically minimal, earlier list positions
    outrank later ones) among all models of the current constraints. The
    canonical model depends only on the {e meaning} of the constraints —
    not on learned clauses, heuristic state, or how the constraints were
    split into assertions and assumptions — which is what makes incremental
    and from-scratch solving produce identical witnesses. *)

val check_verdict :
  ?assumptions:Term.boolean list -> ?canonical:canonical_var list -> t -> verdict
(** Like [check], but an unsat answer reports the assumption subset that
    failed, enabling callers to skip queries whose assumption set contains
    a known-unsat core. *)

val check_models : bool ref
(** Self-check mode (off by default; tests switch it on): every model
    returned by [check]/[check_verdict] is re-evaluated against the
    original, pre-preprocessing asserted and assumed formulas, and a
    mismatch raises {!Model_mismatch} — preprocessing or blasting bugs fail
    loudly instead of corrupting generated packets. *)

exception Model_mismatch of string

val stats : t -> (string * int) list
(** SAT-core statistics plus CNF size counters. *)
