(** SMT solver frontend for QF_BV.

    Formulas built with {!Term} are bit-blasted (Tseitin encoding) into the
    {!Sat} CDCL core. The solver is incremental in the style p4-symbolic
    needs: assert the program encoding once with [assert_formula], then pose
    each coverage goal as an {e assumption} to [check] — the clause database
    (and everything the SAT solver learned) is reused across goals. *)

module Bitvec = Switchv_bitvec.Bitvec

type t

val create : unit -> t

val assert_formula : t -> Term.boolean -> unit
(** Permanently constrain the instance. *)

type model = {
  bv : string -> Bitvec.t option;   (** value of a bitvector variable *)
  bool : string -> bool option;     (** value of a boolean variable *)
}

type result = Sat of model | Unsat

val check : ?assumptions:Term.boolean list -> t -> result
(** Satisfiability of asserted formulas plus the given assumptions. On
    [Sat], the model covers every variable that appears in asserted or
    assumed formulas; variables the SAT core left unconstrained get
    arbitrary (but fixed) values. *)

val stats : t -> (string * int) list
(** SAT-core statistics plus CNF size counters. *)
