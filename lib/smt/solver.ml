module Bitvec = Switchv_bitvec.Bitvec
module Telemetry = Switchv_telemetry.Telemetry
module Lit = Sat.Lit

module Phys = Hashtbl.Make (struct
  type t = Obj.t
  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  sat : Sat.t;
  true_lit : Lit.t;
  bv_vars : (string, Lit.t array) Hashtbl.t;
  bool_vars : (string, Lit.t) Hashtbl.t;
  bv_memo : Lit.t array Phys.t;
  bool_memo : Lit.t Phys.t;
  gate_memo : (string * int * int * int, Lit.t) Hashtbl.t;
  mutable n_gates : int;
}

let create () =
  let sat = Sat.create () in
  let v0 = Sat.new_var sat in
  let true_lit = Lit.make v0 true in
  Sat.add_clause sat [ true_lit ];
  { sat; true_lit;
    bv_vars = Hashtbl.create 64;
    bool_vars = Hashtbl.create 16;
    bv_memo = Phys.create 1024;
    bool_memo = Phys.create 1024;
    gate_memo = Hashtbl.create 4096;
    n_gates = 0 }

let lit_true t = t.true_lit
let lit_false t = Lit.neg t.true_lit
let is_true t l = l = lit_true t
let is_false t l = l = lit_false t
let of_bool t b = if b then lit_true t else lit_false t

let fresh t = Lit.make (Sat.new_var t.sat) true

let gate t key mk =
  match Hashtbl.find_opt t.gate_memo key with
  | Some l -> l
  | None ->
      let l = mk () in
      t.n_gates <- t.n_gates + 1;
      Hashtbl.add t.gate_memo key l;
      l

let li l = (l : Lit.t :> int)

let and_gate t a b =
  if is_false t a || is_false t b then lit_false t
  else if is_true t a then b
  else if is_true t b then a
  else if a = b then a
  else if a = Lit.neg b then lit_false t
  else begin
    let x, y = if li a < li b then (a, b) else (b, a) in
    gate t ("and", li x, li y, 0) (fun () ->
        let o = fresh t in
        Sat.add_clause t.sat [ Lit.neg o; x ];
        Sat.add_clause t.sat [ Lit.neg o; y ];
        Sat.add_clause t.sat [ o; Lit.neg x; Lit.neg y ];
        o)
  end

let or_gate t a b = Lit.neg (and_gate t (Lit.neg a) (Lit.neg b))

let xor_gate t a b =
  if is_false t a then b
  else if is_false t b then a
  else if is_true t a then Lit.neg b
  else if is_true t b then Lit.neg a
  else if a = b then lit_false t
  else if a = Lit.neg b then lit_true t
  else begin
    let x, y = if li a < li b then (a, b) else (b, a) in
    gate t ("xor", li x, li y, 0) (fun () ->
        let o = fresh t in
        Sat.add_clause t.sat [ Lit.neg o; x; y ];
        Sat.add_clause t.sat [ Lit.neg o; Lit.neg x; Lit.neg y ];
        Sat.add_clause t.sat [ o; Lit.neg x; y ];
        Sat.add_clause t.sat [ o; x; Lit.neg y ];
        o)
  end

let xnor_gate t a b = Lit.neg (xor_gate t a b)

(* mux c a b = if c then a else b *)
let mux_gate t c a b =
  if is_true t c then a
  else if is_false t c then b
  else if a = b then a
  else if is_true t a && is_false t b then c
  else if is_false t a && is_true t b then Lit.neg c
  else
    gate t ("mux", li c, li a, li b) (fun () ->
        let o = fresh t in
        Sat.add_clause t.sat [ Lit.neg c; Lit.neg a; o ];
        Sat.add_clause t.sat [ Lit.neg c; a; Lit.neg o ];
        Sat.add_clause t.sat [ c; Lit.neg b; o ];
        Sat.add_clause t.sat [ c; b; Lit.neg o ];
        (* Redundant but propagation-strengthening clauses. *)
        Sat.add_clause t.sat [ Lit.neg a; Lit.neg b; o ];
        Sat.add_clause t.sat [ a; b; Lit.neg o ];
        o)

let and_reduce t lits = Array.fold_left (and_gate t) (lit_true t) lits

(* Vectors are LSB-first literal arrays. *)

let bv_var_lits t name width =
  match Hashtbl.find_opt t.bv_vars name with
  | Some lits ->
      if Array.length lits <> width then
        invalid_arg (Printf.sprintf "Solver: variable %s blasted at two widths" name);
      lits
  | None ->
      let lits = Array.init width (fun _ -> fresh t) in
      Hashtbl.add t.bv_vars name lits;
      lits

let bool_var_lit t name =
  match Hashtbl.find_opt t.bool_vars name with
  | Some l -> l
  | None ->
      let l = fresh t in
      Hashtbl.add t.bool_vars name l;
      l

let const_lits t c =
  Array.init (Bitvec.width c) (fun i -> of_bool t (Bitvec.bit c i))

let add_lits t ?(carry_in = None) a b =
  let w = Array.length a in
  let out = Array.make w (lit_false t) in
  let carry = ref (match carry_in with Some c -> c | None -> lit_false t) in
  for i = 0 to w - 1 do
    let axb = xor_gate t a.(i) b.(i) in
    out.(i) <- xor_gate t axb !carry;
    carry := or_gate t (and_gate t a.(i) b.(i)) (and_gate t axb !carry)
  done;
  out

let not_lits a = Array.map Lit.neg a

let neg_lits t a =
  let w = Array.length a in
  let zero = Array.make w (lit_false t) in
  add_lits t ~carry_in:(Some (lit_true t)) zero (not_lits a)

let sub_lits t a b = add_lits t ~carry_in:(Some (lit_true t)) a (not_lits b)

let mul_lits t a b =
  let w = Array.length a in
  let acc = ref (Array.make w (lit_false t)) in
  for i = 0 to w - 1 do
    (* addend = (a << i) masked by b.(i) *)
    let addend =
      Array.init w (fun j -> if j < i then lit_false t else and_gate t a.(j - i) b.(i))
    in
    acc := add_lits t !acc addend
  done;
  !acc

let eq_lits t a b =
  and_reduce t (Array.init (Array.length a) (fun i -> xnor_gate t a.(i) b.(i)))

(* Unsigned a < b: the borrow out of a - b. *)
let ult_lits t a b =
  let borrow = ref (lit_false t) in
  for i = 0 to Array.length a - 1 do
    let nab = and_gate t (Lit.neg a.(i)) b.(i) in
    let same = xnor_gate t a.(i) b.(i) in
    borrow := or_gate t nab (and_gate t same !borrow)
  done;
  !borrow

let mux_lits t c a b = Array.init (Array.length a) (fun i -> mux_gate t c a.(i) b.(i))

let rec blast_bv t (term : Term.bv) : Lit.t array =
  match term with
  | Term.Bv_const c -> const_lits t c
  | Term.Bv_var (name, w) -> bv_var_lits t name w
  | _ ->
      let key = Obj.repr term in
      (match Phys.find_opt t.bv_memo key with
      | Some lits -> lits
      | None ->
          let lits =
            match term with
            | Term.Bv_const _ | Term.Bv_var _ -> assert false
            | Term.Bv_not a -> not_lits (blast_bv t a)
            | Term.Bv_neg a -> neg_lits t (blast_bv t a)
            | Term.Bv_and (a, b) ->
                let a = blast_bv t a and b = blast_bv t b in
                Array.init (Array.length a) (fun i -> and_gate t a.(i) b.(i))
            | Term.Bv_or (a, b) ->
                let a = blast_bv t a and b = blast_bv t b in
                Array.init (Array.length a) (fun i -> or_gate t a.(i) b.(i))
            | Term.Bv_xor (a, b) ->
                let a = blast_bv t a and b = blast_bv t b in
                Array.init (Array.length a) (fun i -> xor_gate t a.(i) b.(i))
            | Term.Bv_add (a, b) -> add_lits t (blast_bv t a) (blast_bv t b)
            | Term.Bv_sub (a, b) -> sub_lits t (blast_bv t a) (blast_bv t b)
            | Term.Bv_mul (a, b) -> mul_lits t (blast_bv t a) (blast_bv t b)
            | Term.Bv_concat (hi, lo) ->
                let hi = blast_bv t hi and lo = blast_bv t lo in
                Array.append lo hi
            | Term.Bv_extract (hi, lo, a) ->
                let a = blast_bv t a in
                Array.sub a lo (hi - lo + 1)
            | Term.Bv_zero_ext (w, a) ->
                let a = blast_bv t a in
                Array.init w (fun i -> if i < Array.length a then a.(i) else lit_false t)
            | Term.Bv_ite (c, a, b) ->
                let c = blast_bool t c in
                mux_lits t c (blast_bv t a) (blast_bv t b)
          in
          Phys.add t.bv_memo key lits;
          lits)

and blast_bool t (term : Term.boolean) : Lit.t =
  match term with
  | Term.B_true -> lit_true t
  | Term.B_false -> lit_false t
  | Term.B_var name -> bool_var_lit t name
  | _ ->
      let key = Obj.repr term in
      (match Phys.find_opt t.bool_memo key with
      | Some l -> l
      | None ->
          let l =
            match term with
            | Term.B_true | Term.B_false | Term.B_var _ -> assert false
            | Term.B_eq (a, b) -> eq_lits t (blast_bv t a) (blast_bv t b)
            | Term.B_ult (a, b) -> ult_lits t (blast_bv t a) (blast_bv t b)
            | Term.B_ule (a, b) -> Lit.neg (ult_lits t (blast_bv t b) (blast_bv t a))
            | Term.B_not a -> Lit.neg (blast_bool t a)
            | Term.B_and (a, b) -> and_gate t (blast_bool t a) (blast_bool t b)
            | Term.B_or (a, b) -> or_gate t (blast_bool t a) (blast_bool t b)
            | Term.B_ite (c, a, b) ->
                mux_gate t (blast_bool t c) (blast_bool t a) (blast_bool t b)
          in
          Phys.add t.bool_memo key l;
          l)

let assert_formula t formula =
  let l = blast_bool t formula in
  Sat.add_clause t.sat [ l ]

type model = {
  bv : string -> Bitvec.t option;
  bool : string -> bool option;
}

type result = Sat of model | Unsat

let lit_model_value t l =
  let v = Sat.value t.sat (Lit.var l) in
  if Lit.sign l then v else not v

let extract_model t =
  (* Snapshot values now: the SAT solver's assignment is transient. *)
  let bvs = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name lits ->
      let w = Array.length lits in
      let v = ref (Bitvec.zero w) in
      Array.iteri
        (fun i l ->
          if lit_model_value t l then
            v := Bitvec.logor !v (Bitvec.shift_left (Bitvec.of_int ~width:w 1) i))
        lits;
      Hashtbl.replace bvs name !v)
    t.bv_vars;
  let bools = Hashtbl.create 16 in
  Hashtbl.iter (fun name l -> Hashtbl.replace bools name (lit_model_value t l)) t.bool_vars;
  { bv = Hashtbl.find_opt bvs; bool = Hashtbl.find_opt bools }

(* Solver effort is accounted per [check] call: the SAT core's cumulative
   counters are diffed around the solve and published as telemetry, so the
   inner CDCL loops stay free of instrumentation. *)
let publish_effort before after =
  let tele = Telemetry.get () in
  if Telemetry.enabled tele then
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name before with
        | Some v0 -> Telemetry.incr ~n:(v - v0) tele ("smt." ^ name)
        | None -> ())
      after

let check ?(assumptions = []) t =
  let tele = Telemetry.get () in
  Telemetry.with_span tele "smt.check" (fun () ->
      let assumption_lits = List.map (blast_bool t) assumptions in
      let before = Sat.stats t.sat in
      let result =
        match Sat.solve ~assumptions:assumption_lits t.sat with
        | Sat.Sat -> Sat (extract_model t)
        | Sat.Unsat -> Unsat
      in
      publish_effort before (Sat.stats t.sat);
      Telemetry.incr tele "smt.checks";
      Telemetry.incr tele (match result with Sat _ -> "smt.sat" | Unsat -> "smt.unsat");
      result)

let stats t =
  ("gates", t.n_gates) :: ("sat_vars", Sat.num_vars t.sat) :: Sat.stats t.sat
