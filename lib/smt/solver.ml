module Bitvec = Switchv_bitvec.Bitvec
module Telemetry = Switchv_telemetry.Telemetry
module Lit = Sat.Lit

module Phys = Hashtbl.Make (struct
  type t = Obj.t
  let equal = ( == )
  let hash = Hashtbl.hash
end)

(* A push scope: formulas asserted while the scope is active are guarded by
   its selector literal (clause [~sel \/ lit]), and every [check] assumes the
   selectors of all active scopes. [pop] retires the scope by asserting the
   unit [~sel], which permanently satisfies the guarded clauses — and any
   clauses learned from them, since those must mention [~sel] too. The
   Tseitin environment (variable maps, structural memos, gate table) is
   never rolled back: shared subterms bit-blast exactly once for the life of
   the solver. [originals] keeps the pre-preprocessing source formulas for
   the self-check mode. *)
type scope = { sel : Lit.t; mutable originals : Term.boolean list }

type t = {
  sat : Sat.t;
  true_lit : Lit.t;
  bv_vars : (string, Lit.t array) Hashtbl.t;
  bool_vars : (string, Lit.t) Hashtbl.t;
  bv_memo : Lit.t array Phys.t;
  bool_memo : Lit.t Phys.t;
  gate_memo : (string * int * int * int, Lit.t) Hashtbl.t;
  mutable n_gates : int;
  mutable scopes : scope list;           (* innermost first *)
  mutable root_originals : Term.boolean list;
}

let check_models = ref false

exception Model_mismatch of string

let create () =
  let sat = Sat.create () in
  let v0 = Sat.new_var sat in
  let true_lit = Lit.make v0 true in
  Sat.add_clause sat [ true_lit ];
  { sat; true_lit;
    bv_vars = Hashtbl.create 64;
    bool_vars = Hashtbl.create 16;
    bv_memo = Phys.create 1024;
    bool_memo = Phys.create 1024;
    gate_memo = Hashtbl.create 4096;
    n_gates = 0;
    scopes = [];
    root_originals = [] }

let lit_true t = t.true_lit
let lit_false t = Lit.neg t.true_lit
let is_true t l = l = lit_true t
let is_false t l = l = lit_false t
let of_bool t b = if b then lit_true t else lit_false t

let fresh t = Lit.make (Sat.new_var t.sat) true

let gate t key mk =
  match Hashtbl.find_opt t.gate_memo key with
  | Some l -> l
  | None ->
      let l = mk () in
      t.n_gates <- t.n_gates + 1;
      Hashtbl.add t.gate_memo key l;
      l

let li l = (l : Lit.t :> int)

let and_gate t a b =
  if is_false t a || is_false t b then lit_false t
  else if is_true t a then b
  else if is_true t b then a
  else if a = b then a
  else if a = Lit.neg b then lit_false t
  else begin
    let x, y = if li a < li b then (a, b) else (b, a) in
    gate t ("and", li x, li y, 0) (fun () ->
        let o = fresh t in
        Sat.add_clause t.sat [ Lit.neg o; x ];
        Sat.add_clause t.sat [ Lit.neg o; y ];
        Sat.add_clause t.sat [ o; Lit.neg x; Lit.neg y ];
        o)
  end

let or_gate t a b = Lit.neg (and_gate t (Lit.neg a) (Lit.neg b))

let xor_gate t a b =
  if is_false t a then b
  else if is_false t b then a
  else if is_true t a then Lit.neg b
  else if is_true t b then Lit.neg a
  else if a = b then lit_false t
  else if a = Lit.neg b then lit_true t
  else begin
    let x, y = if li a < li b then (a, b) else (b, a) in
    gate t ("xor", li x, li y, 0) (fun () ->
        let o = fresh t in
        Sat.add_clause t.sat [ Lit.neg o; x; y ];
        Sat.add_clause t.sat [ Lit.neg o; Lit.neg x; Lit.neg y ];
        Sat.add_clause t.sat [ o; Lit.neg x; y ];
        Sat.add_clause t.sat [ o; x; Lit.neg y ];
        o)
  end

let xnor_gate t a b = Lit.neg (xor_gate t a b)

(* mux c a b = if c then a else b *)
let mux_gate t c a b =
  if is_true t c then a
  else if is_false t c then b
  else if a = b then a
  else if is_true t a && is_false t b then c
  else if is_false t a && is_true t b then Lit.neg c
  else
    gate t ("mux", li c, li a, li b) (fun () ->
        let o = fresh t in
        Sat.add_clause t.sat [ Lit.neg c; Lit.neg a; o ];
        Sat.add_clause t.sat [ Lit.neg c; a; Lit.neg o ];
        Sat.add_clause t.sat [ c; Lit.neg b; o ];
        Sat.add_clause t.sat [ c; b; Lit.neg o ];
        (* Redundant but propagation-strengthening clauses. *)
        Sat.add_clause t.sat [ Lit.neg a; Lit.neg b; o ];
        Sat.add_clause t.sat [ a; b; Lit.neg o ];
        o)

let and_reduce t lits = Array.fold_left (and_gate t) (lit_true t) lits

(* Vectors are LSB-first literal arrays. *)

let bv_var_lits t name width =
  match Hashtbl.find_opt t.bv_vars name with
  | Some lits ->
      if Array.length lits <> width then
        invalid_arg (Printf.sprintf "Solver: variable %s blasted at two widths" name);
      lits
  | None ->
      let lits = Array.init width (fun _ -> fresh t) in
      Hashtbl.add t.bv_vars name lits;
      lits

let bool_var_lit t name =
  match Hashtbl.find_opt t.bool_vars name with
  | Some l -> l
  | None ->
      let l = fresh t in
      Hashtbl.add t.bool_vars name l;
      l

let const_lits t c =
  Array.init (Bitvec.width c) (fun i -> of_bool t (Bitvec.bit c i))

let add_lits t ?(carry_in = None) a b =
  let w = Array.length a in
  let out = Array.make w (lit_false t) in
  let carry = ref (match carry_in with Some c -> c | None -> lit_false t) in
  for i = 0 to w - 1 do
    let axb = xor_gate t a.(i) b.(i) in
    out.(i) <- xor_gate t axb !carry;
    carry := or_gate t (and_gate t a.(i) b.(i)) (and_gate t axb !carry)
  done;
  out

let not_lits a = Array.map Lit.neg a

let neg_lits t a =
  let w = Array.length a in
  let zero = Array.make w (lit_false t) in
  add_lits t ~carry_in:(Some (lit_true t)) zero (not_lits a)

let sub_lits t a b = add_lits t ~carry_in:(Some (lit_true t)) a (not_lits b)

let mul_lits t a b =
  let w = Array.length a in
  let acc = ref (Array.make w (lit_false t)) in
  for i = 0 to w - 1 do
    (* addend = (a << i) masked by b.(i) *)
    let addend =
      Array.init w (fun j -> if j < i then lit_false t else and_gate t a.(j - i) b.(i))
    in
    acc := add_lits t !acc addend
  done;
  !acc

let eq_lits t a b =
  and_reduce t (Array.init (Array.length a) (fun i -> xnor_gate t a.(i) b.(i)))

(* Unsigned a < b: the borrow out of a - b. *)
let ult_lits t a b =
  let borrow = ref (lit_false t) in
  for i = 0 to Array.length a - 1 do
    let nab = and_gate t (Lit.neg a.(i)) b.(i) in
    let same = xnor_gate t a.(i) b.(i) in
    borrow := or_gate t nab (and_gate t same !borrow)
  done;
  !borrow

let mux_lits t c a b = Array.init (Array.length a) (fun i -> mux_gate t c a.(i) b.(i))

let rec blast_bv t (term : Term.bv) : Lit.t array =
  match term with
  | Term.Bv_const c -> const_lits t c
  | Term.Bv_var (name, w) -> bv_var_lits t name w
  | _ ->
      let key = Obj.repr term in
      (match Phys.find_opt t.bv_memo key with
      | Some lits -> lits
      | None ->
          let lits =
            match term with
            | Term.Bv_const _ | Term.Bv_var _ -> assert false
            | Term.Bv_not a -> not_lits (blast_bv t a)
            | Term.Bv_neg a -> neg_lits t (blast_bv t a)
            | Term.Bv_and (a, b) ->
                let a = blast_bv t a and b = blast_bv t b in
                Array.init (Array.length a) (fun i -> and_gate t a.(i) b.(i))
            | Term.Bv_or (a, b) ->
                let a = blast_bv t a and b = blast_bv t b in
                Array.init (Array.length a) (fun i -> or_gate t a.(i) b.(i))
            | Term.Bv_xor (a, b) ->
                let a = blast_bv t a and b = blast_bv t b in
                Array.init (Array.length a) (fun i -> xor_gate t a.(i) b.(i))
            | Term.Bv_add (a, b) -> add_lits t (blast_bv t a) (blast_bv t b)
            | Term.Bv_sub (a, b) -> sub_lits t (blast_bv t a) (blast_bv t b)
            | Term.Bv_mul (a, b) -> mul_lits t (blast_bv t a) (blast_bv t b)
            | Term.Bv_concat (hi, lo) ->
                let hi = blast_bv t hi and lo = blast_bv t lo in
                Array.append lo hi
            | Term.Bv_extract (hi, lo, a) ->
                let a = blast_bv t a in
                Array.sub a lo (hi - lo + 1)
            | Term.Bv_zero_ext (w, a) ->
                let a = blast_bv t a in
                Array.init w (fun i -> if i < Array.length a then a.(i) else lit_false t)
            | Term.Bv_ite (c, a, b) ->
                let c = blast_bool t c in
                mux_lits t c (blast_bv t a) (blast_bv t b)
          in
          Phys.add t.bv_memo key lits;
          lits)

and blast_bool t (term : Term.boolean) : Lit.t =
  match term with
  | Term.B_true -> lit_true t
  | Term.B_false -> lit_false t
  | Term.B_var name -> bool_var_lit t name
  | _ ->
      let key = Obj.repr term in
      (match Phys.find_opt t.bool_memo key with
      | Some l -> l
      | None ->
          let l =
            match term with
            | Term.B_true | Term.B_false | Term.B_var _ -> assert false
            | Term.B_eq (a, b) -> eq_lits t (blast_bv t a) (blast_bv t b)
            | Term.B_ult (a, b) -> ult_lits t (blast_bv t a) (blast_bv t b)
            | Term.B_ule (a, b) -> Lit.neg (ult_lits t (blast_bv t b) (blast_bv t a))
            | Term.B_not a -> Lit.neg (blast_bool t a)
            | Term.B_and (a, b) -> and_gate t (blast_bool t a) (blast_bool t b)
            | Term.B_or (a, b) -> or_gate t (blast_bool t a) (blast_bool t b)
            | Term.B_ite (c, a, b) ->
                mux_gate t (blast_bool t c) (blast_bool t a) (blast_bool t b)
          in
          Phys.add t.bool_memo key l;
          l)

let preprocess_counted formula =
  let pre, eliminated = Term.preprocess formula in
  if eliminated > 0 then begin
    let tele = Telemetry.get () in
    Telemetry.incr ~n:eliminated tele "smt.preprocess_eliminated"
  end;
  pre

let assert_formula t formula =
  Sat.cancel_to_root t.sat;
  let l = blast_bool t (preprocess_counted formula) in
  match t.scopes with
  | [] ->
      Sat.add_clause t.sat [ l ];
      t.root_originals <- formula :: t.root_originals
  | scope :: _ ->
      Sat.add_clause t.sat [ Lit.neg scope.sel; l ];
      scope.originals <- formula :: scope.originals

let push t =
  Sat.cancel_to_root t.sat;
  t.scopes <- { sel = fresh t; originals = [] } :: t.scopes

let pop t =
  match t.scopes with
  | [] -> invalid_arg "Solver.pop: no open scope"
  | scope :: rest ->
      Sat.cancel_to_root t.sat;
      Sat.add_clause t.sat [ Lit.neg scope.sel ];
      t.scopes <- rest

let scope_depth t = List.length t.scopes

type model = {
  bv : string -> Bitvec.t option;
  bool : string -> bool option;
}

type result = Sat of model | Unsat

let lit_model_value t l =
  let v = Sat.value t.sat (Lit.var l) in
  if Lit.sign l then v else not v

let extract_model t =
  (* Snapshot values now: the SAT solver's assignment is transient. *)
  let bvs = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name lits ->
      let w = Array.length lits in
      let v = ref (Bitvec.zero w) in
      Array.iteri
        (fun i l ->
          if lit_model_value t l then
            v := Bitvec.logor !v (Bitvec.shift_left (Bitvec.of_int ~width:w 1) i))
        lits;
      Hashtbl.replace bvs name !v)
    t.bv_vars;
  let bools = Hashtbl.create 16 in
  Hashtbl.iter (fun name l -> Hashtbl.replace bools name (lit_model_value t l)) t.bool_vars;
  { bv = Hashtbl.find_opt bvs; bool = Hashtbl.find_opt bools }

(* Solver effort is accounted per [check] call: the SAT core's cumulative
   counters are diffed around the solve and published as telemetry, so the
   inner CDCL loops stay free of instrumentation. *)
let publish_effort before after =
  let tele = Telemetry.get () in
  if Telemetry.enabled tele then
    List.iter
      (fun (name, v) ->
        match List.assoc_opt name before with
        | Some v0 -> Telemetry.incr ~n:(v - v0) tele ("smt." ^ name)
        | None -> ())
      after

type verdict = V_sat of model | V_unsat of int list

type canonical_var = C_bool of string | C_bv of string

(* Decision order realizing the lexicographically minimal model over the
   named variables: booleans prefer false, bitvectors prefer 0 with the most
   significant bit decided first. Names the solver has never blasted are
   skipped — such variables are unconstrained and read back as absent, which
   extraction treats as zero, so the skip agrees with the preference. *)
let canonical_order t canonical =
  let lits = ref [] in
  List.iter
    (fun c ->
      match c with
      | C_bool name -> (
          match Hashtbl.find_opt t.bool_vars name with
          | Some l -> lits := Lit.neg l :: !lits
          | None -> ())
      | C_bv name -> (
          match Hashtbl.find_opt t.bv_vars name with
          | Some arr ->
              (* Bit 0 is the least significant: deciding high bits first
                 makes "lexicographically minimal" numerically minimal. *)
              for i = Array.length arr - 1 downto 0 do
                lits := Lit.neg arr.(i) :: !lits
              done
          | None -> ()))
    canonical;
  Array.of_list (List.rev !lits)

(* Evaluate an original (pre-preprocessing) formula under a model, reading
   absent variables as zero/false — the same completion extraction uses. *)
let eval_original model formula =
  let widths = Hashtbl.create 16 in
  List.iter (fun (name, w) -> Hashtbl.replace widths name w) (Term.bv_vars formula);
  let env =
    { Term.bv_of =
        (fun name ->
          match model.bv name with
          | Some v -> v
          | None -> Bitvec.zero (try Hashtbl.find widths name with Not_found -> 1));
      bool_of = (fun name -> match model.bool name with Some b -> b | None -> false) }
  in
  Term.eval_bool env formula

let self_check t model assumptions =
  let check_one what formula =
    if not (eval_original model formula) then
      raise
        (Model_mismatch
           (Format.asprintf "%s not satisfied by returned model: %a" what
              Term.pp_bool formula))
  in
  List.iter (check_one "asserted formula") t.root_originals;
  List.iter
    (fun scope -> List.iter (check_one "scoped formula") scope.originals)
    t.scopes;
  List.iter (check_one "assumption") assumptions

let check_verdict ?(assumptions = []) ?canonical t =
  let tele = Telemetry.get () in
  Telemetry.with_span tele "smt.check" (fun () ->
      Sat.cancel_to_root t.sat;
      Telemetry.incr ~n:(Sat.num_learned t.sat) tele "smt.clauses_reused";
      let vars_before = Sat.num_vars t.sat in
      (* Assumptions are blasted as-is, without the preprocessing pass:
         the Tseitin environment memoizes by physical identity, so a
         conjunct already seen by an earlier check (or by an asserted
         formula) costs a hash lookup here, while preprocessing would
         re-walk its whole DAG on every query. Folding only ever pays
         off on the big asserted formulas. *)
      let assumption_lits = List.map (fun a -> blast_bool t a) assumptions in
      if Sat.num_vars t.sat = vars_before then
        Telemetry.incr tele "smt.incremental_hits";
      let selector_lits = List.rev_map (fun s -> s.sel) t.scopes in
      let sat_assumptions = List.rev_append selector_lits assumption_lits in
      let before = Sat.stats t.sat in
      let result =
        match Sat.solve_with_assumptions t.sat sat_assumptions with
        | Sat.A_sat ->
            (match canonical with
            | None -> ()
            | Some canonical ->
                let order = canonical_order t canonical in
                (match
                   Sat.solve_with_assumptions ~order t.sat sat_assumptions
                 with
                | Sat.A_sat -> ()
                | Sat.A_unsat _ ->
                    (* The same assumptions just solved SAT. *)
                    assert false));
            let model = extract_model t in
            if !check_models then self_check t model assumptions;
            V_sat model
        | Sat.A_unsat core ->
            (* Report which of the caller's assumptions were implicated;
               scope selectors are part of the asserted state, not of the
               query, so they are filtered out. An empty list means the
               asserted state alone (or the clause database) is unsat. *)
            let core_indices =
              List.mapi (fun i l -> (i, l)) assumption_lits
              |> List.filter_map (fun (i, l) ->
                     if List.memq l core then Some i else None)
            in
            V_unsat core_indices
      in
      publish_effort before (Sat.stats t.sat);
      Telemetry.incr tele "smt.checks";
      Telemetry.incr tele
        (match result with V_sat _ -> "smt.sat" | V_unsat _ -> "smt.unsat");
      result)

let check ?(assumptions = []) ?canonical t =
  match check_verdict ~assumptions ?canonical t with
  | V_sat model -> Sat model
  | V_unsat _ -> Unsat

let stats t =
  ("gates", t.n_gates) :: ("sat_vars", Sat.num_vars t.sat)
  :: ("scopes", List.length t.scopes) :: Sat.stats t.sat
