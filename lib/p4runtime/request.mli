(** P4Runtime RPC shapes: Write (batched updates), Read, and packet I/O.

    A Write carries a batch of updates; per the specification the switch
    may execute a batch's updates {e in any order} (§4, Example 2), and
    must report a per-update status vector. *)

type op = Insert | Modify | Delete

type update = { op : op; entry : Entry.t }

type write_request = { updates : update list }

type write_response = { statuses : Status.t list }
(** One status per update, in request order. *)

type read_response = { entries : Entry.t list }

(** Packet I/O between controller and switch (PacketIn = switch-to-
    controller punt; PacketOut = controller-injected packet). *)
type packet_out = { po_payload : Switchv_packet.Packet.t; po_egress_port : int option }
(** [po_egress_port = None] requests submit-to-ingress processing. *)

type packet_in = { pi_payload : Switchv_packet.Packet.t; pi_ingress_port : int }

val op_to_string : op -> string
val pp_update : Format.formatter -> update -> unit
val write_ok : write_response -> bool
val insert : Entry.t -> update
val modify : Entry.t -> update
val delete : Entry.t -> update
