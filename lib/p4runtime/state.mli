(** Installed-entry state: the forwarding state of a switch (or of the
    oracle's mirror of it). Entries are identified by their match key
    (table, field matches, priority); insertion order is preserved per
    table, which downstream matching uses as a deterministic tie-breaker. *)

module Bitvec = Switchv_bitvec.Bitvec
module Match = Switchv_match.Index
module P4info = Switchv_p4ir.P4info

type t

val create : unit -> t
val copy : t -> t
val clear : t -> unit

val insert : t -> Entry.t -> (unit, Status.t) result
(** [Already_exists] if an entry with the same match key is installed. *)

val modify : t -> Entry.t -> (unit, Status.t) result
(** Replace the action of the installed entry with the same match key;
    [Not_found] if absent. *)

val delete : t -> Entry.t -> (unit, Status.t) result
(** Remove by match key; [Not_found] if absent. *)

val find : t -> Entry.t -> Entry.t option
(** Installed entry with the same match key. *)

val entries_of : t -> string -> Entry.t list
(** Entries of a table, in insertion order. *)

val all : t -> Entry.t list
val count : t -> string -> int
val total : t -> int

val exists_value : t -> table:string -> key:string -> Bitvec.t -> bool
(** Does some installed entry of [table] match exactly [value] on [key]?
    (The [@refers_to] existence check.) *)

val is_referenced : t -> P4info.t -> Entry.t -> bool
(** Is [entry] the target of a [@refers_to] reference from any other
    installed entry? Used to refuse deletions that would dangle. *)

val reference_index : t -> P4info.t -> table:string -> key:string -> Bitvec.t -> bool
(** Precompute the set of referenced (table, key, value) targets and return
    a membership test — an O(1)-per-query equivalent of the scan behind
    {!is_referenced}, for callers that test many entries against one state
    snapshot (fuzzer delete selection, oracle batch judgement). *)

val is_referenced_by :
  (table:string -> key:string -> Bitvec.t -> bool) -> Entry.t -> bool
(** [is_referenced_by index entry]: does [entry] provide any value the
    index reports as referenced? *)

type key_spec = { ks_name : string; ks_width : int; ks_kind : Match.kind }
(** An evaluator's description of one table key: the field-match name
    entries use, plus the width and match kind of the key. *)

val index_lookup :
  t -> table:string -> keys:key_spec array -> Bitvec.t array -> Entry.t option
(** The winning entry of [table] for the given key values (in [keys]
    order) under the interpreter's match-precedence order, served from an
    indexed view ({!Switchv_match.Index}). The first call against a table
    builds its index from the installed entries; every subsequent
    {!insert} / {!modify} / {!delete} maintains it incrementally (a
    table's index keeps the first schema it was queried with; {!copy}
    rebuilds lazily on the copy). *)

val equal : t -> t -> bool
(** Same set of installed entries (order-insensitive), with equal
    actions. *)

val diff : t -> t -> string list
(** Human-readable differences, for incident reports. *)
