(** Canonical RPC status codes, mirroring the gRPC codes the P4Runtime
    specification uses for Write/Read responses. *)

type code =
  | Ok
  | Invalid_argument     (** malformed request (syntactically invalid) *)
  | Not_found            (** e.g. deleting a non-existent entry *)
  | Already_exists       (** inserting a duplicate entry *)
  | Resource_exhausted   (** table full beyond its guaranteed size *)
  | Failed_precondition  (** constraint violation or dangling reference *)
  | Unimplemented
  | Internal
  | Unavailable
  | Unknown

type t = { code : code; message : string }

val ok : t
val make : code -> string -> t
val makef : code -> ('a, unit, string, t) format4 -> 'a

val is_ok : t -> bool
val code_to_string : code -> string
val equal_code : code -> code -> bool
val pp : Format.formatter -> t -> unit
