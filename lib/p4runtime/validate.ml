module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Constraint_lang = Switchv_p4constraints.Constraint_lang

let ( let* ) = Result.bind

let err code fmt = Printf.ksprintf (fun m -> Error (Status.make code m)) fmt

let check_invocation (ti : P4info.table) (ai : Entry.action_invocation) =
  match P4info.find_action ti ai.Entry.ai_name with
  | None ->
      err Status.Invalid_argument "table %s does not permit action %s" ti.ti_name
        ai.Entry.ai_name
  | Some ar ->
      let expected = List.length ar.ar_params in
      let got = List.length ai.Entry.ai_args in
      if expected <> got then
        err Status.Invalid_argument "action %s expects %d args, got %d" ai.Entry.ai_name
          expected got
      else begin
        let bad =
          List.find_opt
            (fun ((p : Ast.param), arg) -> Bitvec.width arg <> p.p_width)
            (List.combine ar.ar_params ai.Entry.ai_args)
        in
        match bad with
        | Some (p, arg) ->
            err Status.Invalid_argument "action %s arg %s has width %d, expected %d"
              ai.Entry.ai_name p.p_name (Bitvec.width arg) p.p_width
        | None -> Ok ()
      end

let check_match (ti : P4info.table) (fm : Entry.field_match) =
  match P4info.find_match_field ti fm.Entry.fm_field with
  | None ->
      err Status.Invalid_argument "table %s has no match field %s" ti.ti_name
        fm.Entry.fm_field
  | Some mf -> (
      let w_err got =
        err Status.Invalid_argument "match field %s has width %d, expected %d"
          fm.Entry.fm_field got mf.mf_width
      in
      match (mf.mf_kind, fm.Entry.fm_value) with
      | Ast.Exact, Entry.M_exact v ->
          if Bitvec.width v <> mf.mf_width then w_err (Bitvec.width v) else Ok ()
      | Ast.Lpm, Entry.M_lpm p ->
          if Prefix.width p <> mf.mf_width then w_err (Prefix.width p)
          else if Prefix.len p = 0 then
            err Status.Invalid_argument
              "match field %s: zero-length LPM prefixes must be omitted"
              fm.Entry.fm_field
          else Ok ()
      | Ast.Ternary, Entry.M_ternary t ->
          if Ternary.width t <> mf.mf_width then w_err (Ternary.width t)
          else if Ternary.is_wildcard t then
            err Status.Invalid_argument
              "match field %s: wildcard ternary matches must be omitted"
              fm.Entry.fm_field
          else Ok ()
      | Ast.Optional, Entry.M_optional (Some v) ->
          if Bitvec.width v <> mf.mf_width then w_err (Bitvec.width v) else Ok ()
      | Ast.Optional, Entry.M_optional None ->
          err Status.Invalid_argument
            "match field %s: unset optional matches must be omitted" fm.Entry.fm_field
      | (Ast.Exact | Ast.Lpm | Ast.Ternary | Ast.Optional), _ ->
          err Status.Invalid_argument "match field %s has the wrong match kind"
            fm.Entry.fm_field)

let syntactic info (e : Entry.t) =
  match P4info.find_table info e.e_table with
  | None -> err Status.Invalid_argument "unknown table %s" e.e_table
  | Some ti ->
      (* No duplicate field matches. *)
      let* () =
        let seen = Hashtbl.create 8 in
        List.fold_left
          (fun acc (fm : Entry.field_match) ->
            let* () = acc in
            if Hashtbl.mem seen fm.fm_field then
              err Status.Invalid_argument "duplicate match on field %s" fm.fm_field
            else begin
              Hashtbl.add seen fm.fm_field ();
              Ok ()
            end)
          (Ok ()) e.e_matches
      in
      (* Each present match is well-formed. *)
      let* () =
        List.fold_left
          (fun acc fm ->
            let* () = acc in
            check_match ti fm)
          (Ok ()) e.e_matches
      in
      (* All exact keys must be present. *)
      let* () =
        List.fold_left
          (fun acc (mf : P4info.match_field) ->
            let* () = acc in
            if mf.mf_kind = Ast.Exact && Entry.find_match e mf.mf_name = None then
              err Status.Invalid_argument "missing mandatory exact match field %s"
                mf.mf_name
            else Ok ())
          (Ok ()) ti.ti_match_fields
      in
      (* Priority discipline. *)
      let* () =
        if P4info.requires_priority ti then
          if e.e_priority <= 0 then
            err Status.Invalid_argument "table %s requires a positive priority" ti.ti_name
          else Ok ()
        else if e.e_priority <> 0 then
          err Status.Invalid_argument "table %s does not take a priority" ti.ti_name
        else Ok ()
      in
      (* Action choice fits the table implementation. *)
      (match (ti.ti_selector, e.e_action) with
      | false, Entry.Single ai -> check_invocation ti ai
      | true, Entry.Weighted ais ->
          if ais = [] then
            err Status.Invalid_argument "empty action set for selector table %s" ti.ti_name
          else
            List.fold_left
              (fun acc (ai, w) ->
                let* () = acc in
                if w <= 0 then
                  err Status.Invalid_argument
                    "non-positive weight %d in action set for table %s" w ti.ti_name
                else check_invocation ti ai)
              (Ok ()) ais
      | false, Entry.Weighted _ ->
          err Status.Invalid_argument "table %s is not an action-selector table" ti.ti_name
      | true, Entry.Single _ ->
          err Status.Invalid_argument "table %s requires a one-shot action set" ti.ti_name)

let lookup_of_entry (ti : P4info.table) (e : Entry.t) key =
  match P4info.find_match_field ti key with
  | None -> None
  | Some mf -> (
      match Entry.find_match e key with
      | Some (Entry.M_exact v) -> Some (Constraint_lang.K_exact v)
      | Some (Entry.M_lpm p) -> Some (Constraint_lang.K_lpm p)
      | Some (Entry.M_ternary t) -> Some (Constraint_lang.K_ternary t)
      | Some (Entry.M_optional v) -> Some (Constraint_lang.K_optional v)
      | None -> (
          (* Omitted keys act as wildcards of the declared kind. *)
          match mf.mf_kind with
          | Ast.Exact -> None
          | Ast.Lpm -> Some (Constraint_lang.K_lpm (Prefix.any mf.mf_width))
          | Ast.Ternary -> Some (Constraint_lang.K_ternary (Ternary.wildcard mf.mf_width))
          | Ast.Optional -> Some (Constraint_lang.K_optional None)))

let constraint_compliant (ti : P4info.table) (e : Entry.t) =
  match ti.ti_restriction with
  | None -> Ok true
  | Some c -> Constraint_lang.eval c (lookup_of_entry ti e)

let check_entry info e =
  let* () = syntactic info e in
  let ti = Option.get (P4info.find_table info e.Entry.e_table) in
  match constraint_compliant ti e with
  | Ok true -> Ok ()
  | Ok false ->
      err Status.Invalid_argument "entry violates @entry_restriction of table %s"
        ti.ti_name
  | Error msg ->
      err Status.Invalid_argument "entry restriction evaluation failed: %s" msg

type reference = { ref_table : string; ref_key : string; ref_value : Bitvec.t }

let invocation_references (ar : P4info.action_ref) (ai : Entry.action_invocation) =
  if List.length ar.ar_params <> List.length ai.ai_args then []
  else
    List.filter_map
      (fun ((p : Ast.param), arg) ->
        match p.p_refers_to with
        | None -> None
        | Some (tbl, key) -> Some { ref_table = tbl; ref_key = key; ref_value = arg })
      (List.combine ar.ar_params ai.ai_args)

let references info (e : Entry.t) =
  match P4info.find_table info e.e_table with
  | None -> []
  | Some ti ->
      let from_matches =
        List.filter_map
          (fun (fm : Entry.field_match) ->
            match P4info.find_match_field ti fm.fm_field with
            | Some { mf_refers_to = Some (tbl, key); _ } -> (
                match fm.fm_value with
                | Entry.M_exact v | Entry.M_optional (Some v) ->
                    Some { ref_table = tbl; ref_key = key; ref_value = v }
                | Entry.M_lpm _ | Entry.M_ternary _ | Entry.M_optional None -> None)
            | _ -> None)
          e.e_matches
      in
      let from_actions =
        let of_invocation ai =
          match P4info.find_action ti ai.Entry.ai_name with
          | None -> []
          | Some ar -> invocation_references ar ai
        in
        match e.e_action with
        | Entry.Single ai -> of_invocation ai
        | Entry.Weighted ais -> List.concat_map (fun (ai, _) -> of_invocation ai) ais
      in
      from_matches @ from_actions

let check_references info e ~exists =
  List.fold_left
    (fun acc r ->
      let* () = acc in
      if exists ~table:r.ref_table ~key:r.ref_key r.ref_value then Ok ()
      else
        err Status.Failed_precondition "dangling reference: %s.%s = 0x%s does not exist"
          r.ref_table r.ref_key (Bitvec.to_hex_string r.ref_value))
    (Ok ()) (references info e)
