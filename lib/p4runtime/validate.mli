(** Entry validation against a P4Info schema.

    Implements the paper's validity taxonomy (§4): an entry is
    {e syntactically valid} if it conforms to the P4 program's format per
    the P4Runtime specification, {e constraint compliant} if it satisfies
    the table's [@entry_restriction], and its [@refers_to] references are a
    {e state-dependent} requirement checked against the currently installed
    entries. This module is shared by the simulated PINS P4Runtime server
    (enforcement) and by SwitchV's oracle (judging) — bugs seeded into the
    switch perturb the switch's use of it, never the oracle's. *)

module Bitvec = Switchv_bitvec.Bitvec
module P4info = Switchv_p4ir.P4info

val syntactic : P4info.t -> Entry.t -> (unit, Status.t) result
(** Table exists; every field match names a declared key with the declared
    kind and width; no duplicate or wildcard-redundant matches; all exact
    keys present; priority present exactly when the table has ternary or
    optional keys; the action choice fits the table kind (single-action vs
    one-shot selector), is permitted, and has well-formed arguments with
    strictly positive selector weights. *)

val constraint_compliant : P4info.table -> Entry.t -> (bool, string) result
(** Evaluate the table's [@entry_restriction] (vacuously true when
    absent). [Error] reports an evaluation failure (e.g. unknown key),
    which can only happen for entries that are not syntactically valid. *)

val check_entry : P4info.t -> Entry.t -> (unit, Status.t) result
(** Syntactic validity plus constraint compliance — the state-independent
    part of validity. *)

type reference = { ref_table : string; ref_key : string; ref_value : Bitvec.t }

val references : P4info.t -> Entry.t -> reference list
(** All values this entry requires to exist elsewhere, from [@refers_to]
    annotations on match fields and on action parameters. Returns [[]] for
    entries that fail syntactic validation. *)

val check_references :
  P4info.t ->
  Entry.t ->
  exists:(table:string -> key:string -> Bitvec.t -> bool) ->
  (unit, Status.t) result
(** Verify referential integrity against the installed state. *)
