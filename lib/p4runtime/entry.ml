module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary

type match_value =
  | M_exact of Bitvec.t
  | M_lpm of Prefix.t
  | M_ternary of Ternary.t
  | M_optional of Bitvec.t option

type field_match = { fm_field : string; fm_value : match_value }

type action_invocation = { ai_name : string; ai_args : Bitvec.t list }

type action_choice =
  | Single of action_invocation
  | Weighted of (action_invocation * int) list

type t = {
  e_table : string;
  e_matches : field_match list;
  e_action : action_choice;
  e_priority : int;
}

let make ?(priority = 0) ~table ~matches action =
  { e_table = table; e_matches = matches; e_action = action; e_priority = priority }

let find_match t name =
  List.find_opt (fun fm -> String.equal fm.fm_field name) t.e_matches
  |> Option.map (fun fm -> fm.fm_value)

let match_value_to_string = function
  | M_exact v -> Printf.sprintf "exact:%s" (Bitvec.to_hex_string v)
  | M_lpm p -> Printf.sprintf "lpm:%s/%d" (Bitvec.to_hex_string (Prefix.value p)) (Prefix.len p)
  | M_ternary tn ->
      Printf.sprintf "ternary:%s&%s"
        (Bitvec.to_hex_string (Ternary.value tn))
        (Bitvec.to_hex_string (Ternary.mask tn))
  | M_optional (Some v) -> Printf.sprintf "optional:%s" (Bitvec.to_hex_string v)
  | M_optional None -> "optional:*"

let match_key t =
  let matches =
    List.sort (fun a b -> String.compare a.fm_field b.fm_field) t.e_matches
  in
  let parts =
    List.map
      (fun fm -> Printf.sprintf "%s=%s" fm.fm_field (match_value_to_string fm.fm_value))
      matches
  in
  Printf.sprintf "%s[%d]{%s}" t.e_table t.e_priority (String.concat ";" parts)

let equal_key a b = String.equal (match_key a) (match_key b)

let equal_invocation a b =
  String.equal a.ai_name b.ai_name
  && List.length a.ai_args = List.length b.ai_args
  && List.for_all2 Bitvec.equal a.ai_args b.ai_args

let equal_action a b =
  match (a, b) with
  | Single x, Single y -> equal_invocation x y
  | Weighted xs, Weighted ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (x, wx) (y, wy) -> wx = wy && equal_invocation x y)
           xs ys
  | Single _, Weighted _ | Weighted _, Single _ -> false

let equal a b = equal_key a b && equal_action a.e_action b.e_action

let pp_match_value fmt mv = Format.pp_print_string fmt (match_value_to_string mv)

let pp_invocation fmt ai =
  Format.fprintf fmt "%s(%s)" ai.ai_name
    (String.concat ", " (List.map Bitvec.to_hex_string ai.ai_args))

let pp fmt t =
  Format.fprintf fmt "@[<h>%s" t.e_table;
  if t.e_priority <> 0 then Format.fprintf fmt " prio=%d" t.e_priority;
  List.iter
    (fun fm -> Format.fprintf fmt " %s=%a" fm.fm_field pp_match_value fm.fm_value)
    t.e_matches;
  Format.fprintf fmt " => ";
  (match t.e_action with
  | Single ai -> pp_invocation fmt ai
  | Weighted ais ->
      Format.fprintf fmt "{";
      List.iter (fun (ai, w) -> Format.fprintf fmt " %a*%d" pp_invocation ai w) ais;
      Format.fprintf fmt " }");
  Format.fprintf fmt "@]"
