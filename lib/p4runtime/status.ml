type code =
  | Ok
  | Invalid_argument
  | Not_found
  | Already_exists
  | Resource_exhausted
  | Failed_precondition
  | Unimplemented
  | Internal
  | Unavailable
  | Unknown

type t = { code : code; message : string }

let ok = { code = Ok; message = "" }
let make code message = { code; message }
let makef code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

let is_ok t = t.code = Ok

let code_to_string = function
  | Ok -> "OK"
  | Invalid_argument -> "INVALID_ARGUMENT"
  | Not_found -> "NOT_FOUND"
  | Already_exists -> "ALREADY_EXISTS"
  | Resource_exhausted -> "RESOURCE_EXHAUSTED"
  | Failed_precondition -> "FAILED_PRECONDITION"
  | Unimplemented -> "UNIMPLEMENTED"
  | Internal -> "INTERNAL"
  | Unavailable -> "UNAVAILABLE"
  | Unknown -> "UNKNOWN"

let equal_code (a : code) (b : code) = a = b

let pp fmt t =
  if t.message = "" then Format.pp_print_string fmt (code_to_string t.code)
  else Format.fprintf fmt "%s: %s" (code_to_string t.code) t.message
