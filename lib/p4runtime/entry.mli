(** P4Runtime table entries — the payload of control-plane Write requests
    (Figure 3 of the paper shows these in human-readable form). *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary

type match_value =
  | M_exact of Bitvec.t
  | M_lpm of Prefix.t
  | M_ternary of Ternary.t
  | M_optional of Bitvec.t option
      (** [None] encodes an omitted optional match (wildcard). Omitted
          ternary matches are encoded as a present wildcard or simply left
          out of [matches]. *)

type field_match = { fm_field : string; fm_value : match_value }

type action_invocation = { ai_name : string; ai_args : Bitvec.t list }

type action_choice =
  | Single of action_invocation
  | Weighted of (action_invocation * int) list
      (** One-shot action selector: weighted action set (WCMP, §4.2). *)

type t = {
  e_table : string;
  e_matches : field_match list;
  e_action : action_choice;
  e_priority : int;
      (** Strictly positive for tables with ternary/optional matches
          (higher wins); must be 0 for purely exact/LPM tables. *)
}

val make :
  ?priority:int -> table:string -> matches:field_match list -> action_choice -> t

val find_match : t -> string -> match_value option

val match_key : t -> string
(** Canonical string for the entry's identity — table, matches, priority —
    as used for duplicate detection. Insensitive to match order, blind to
    the action (per P4Runtime, two entries with the same key are the "same
    entry" even with different actions). *)

val equal_key : t -> t -> bool
(** Same identity (table, matches, priority). *)

val equal : t -> t -> bool
(** Full structural equality including action and args. *)

val pp : Format.formatter -> t -> unit
val pp_match_value : Format.formatter -> match_value -> unit
