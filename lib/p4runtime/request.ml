type op = Insert | Modify | Delete

type update = { op : op; entry : Entry.t }

type write_request = { updates : update list }

type write_response = { statuses : Status.t list }

type read_response = { entries : Entry.t list }

type packet_out = { po_payload : Switchv_packet.Packet.t; po_egress_port : int option }

type packet_in = { pi_payload : Switchv_packet.Packet.t; pi_ingress_port : int }

let op_to_string = function Insert -> "INSERT" | Modify -> "MODIFY" | Delete -> "DELETE"

let pp_update fmt u = Format.fprintf fmt "%s %a" (op_to_string u.op) Entry.pp u.entry

let write_ok r = List.for_all Status.is_ok r.statuses

let insert entry = { op = Insert; entry }
let modify entry = { op = Modify; entry }
let delete entry = { op = Delete; entry }
