module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Match = Switchv_match.Index
module P4info = Switchv_p4ir.P4info

(* Per-table association from match key to entry, plus a sequence number to
   preserve insertion order. *)
type slot = { entry : Entry.t; seq : int }

(* An evaluator (lib/bmv2/compile.ml) describes a table's keys with a
   [key_spec] array; the first [index_lookup] against a table builds an
   indexed view ({!Switchv_match.Index}) which every subsequent insert /
   modify / delete maintains incrementally — including writes arriving
   through fault-injected sync paths, which all funnel through these
   functions. *)
type key_spec = { ks_name : string; ks_width : int; ks_kind : Match.kind }

type table_index = { ti_keys : key_spec array; ti_ix : slot Match.t }

type t = {
  tables : (string, (string, slot) Hashtbl.t) Hashtbl.t;
  mutable next_seq : int;
  indexes : (string, table_index) Hashtbl.t;
}

let create () =
  { tables = Hashtbl.create 16; next_seq = 0; indexes = Hashtbl.create 8 }

let table_tbl t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.add t.tables name tbl;
      tbl

let copy t =
  (* Indexes hold mutable structure; the copy rebuilds its own lazily. *)
  let fresh =
    { tables = Hashtbl.create 16; next_seq = t.next_seq; indexes = Hashtbl.create 8 }
  in
  Hashtbl.iter (fun name tbl -> Hashtbl.add fresh.tables name (Hashtbl.copy tbl)) t.tables;
  fresh

let clear t =
  Hashtbl.reset t.tables;
  Hashtbl.reset t.indexes;
  t.next_seq <- 0

(* --- index maintenance --------------------------------------------------- *)

let mv_of_match = function
  | Entry.M_exact v -> Match.Mexact v
  | Entry.M_lpm p -> Match.Mlpm (Prefix.value p, Prefix.len p)
  | Entry.M_ternary tn -> Match.Mternary (Ternary.value tn, Ternary.mask tn)
  | Entry.M_optional o -> Match.Moptional o

let mvs_of_entry keys (e : Entry.t) =
  Array.map (fun ks -> Option.map mv_of_match (Entry.find_match e ks.ks_name)) keys

let index_add t table slot =
  match Hashtbl.find_opt t.indexes table with
  | None -> ()
  | Some ti ->
      Match.insert ti.ti_ix
        ~mvs:(mvs_of_entry ti.ti_keys slot.entry)
        ~priority:slot.entry.Entry.e_priority ~seq:slot.seq slot

let index_drop t table slot =
  match Hashtbl.find_opt t.indexes table with
  | None -> ()
  | Some ti ->
      Match.remove ti.ti_ix ~mvs:(mvs_of_entry ti.ti_keys slot.entry) ~seq:slot.seq

(* Winner under the interpreter's precedence order, served from the
   indexed view; built from the current entries on first use. A table's
   index is keyed by the first schema it was queried with. *)
let index_lookup t ~table ~keys values =
  let ti =
    match Hashtbl.find_opt t.indexes table with
    | Some ti -> ti
    | None ->
        let ix =
          Match.create
            (Array.map
               (fun ks -> { Match.key_width = ks.ks_width; key_kind = ks.ks_kind })
               keys)
        in
        let ti = { ti_keys = keys; ti_ix = ix } in
        Hashtbl.add t.indexes table ti;
        (match Hashtbl.find_opt t.tables table with
        | None -> ()
        | Some tbl -> Hashtbl.iter (fun _ slot -> index_add t table slot) tbl);
        ti
  in
  Match.lookup ti.ti_ix values |> Option.map (fun s -> s.entry)

let insert t entry =
  let tbl = table_tbl t entry.Entry.e_table in
  let key = Entry.match_key entry in
  if Hashtbl.mem tbl key then
    Error (Status.makef Status.Already_exists "entry already exists: %s" key)
  else begin
    let slot = { entry; seq = t.next_seq } in
    Hashtbl.add tbl key slot;
    t.next_seq <- t.next_seq + 1;
    index_add t entry.Entry.e_table slot;
    Ok ()
  end

let modify t entry =
  let tbl = table_tbl t entry.Entry.e_table in
  let key = Entry.match_key entry in
  match Hashtbl.find_opt tbl key with
  | None -> Error (Status.makef Status.Not_found "no such entry: %s" key)
  | Some slot ->
      let slot' = { slot with entry } in
      Hashtbl.replace tbl key slot';
      index_drop t entry.Entry.e_table slot;
      index_add t entry.Entry.e_table slot';
      Ok ()

let delete t entry =
  let tbl = table_tbl t entry.Entry.e_table in
  let key = Entry.match_key entry in
  match Hashtbl.find_opt tbl key with
  | Some slot ->
      Hashtbl.remove tbl key;
      index_drop t entry.Entry.e_table slot;
      Ok ()
  | None -> Error (Status.makef Status.Not_found "no such entry: %s" key)

let find t entry =
  let tbl = table_tbl t entry.Entry.e_table in
  Hashtbl.find_opt tbl (Entry.match_key entry) |> Option.map (fun s -> s.entry)

let entries_of t name =
  match Hashtbl.find_opt t.tables name with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun _ slot acc -> slot :: acc) tbl []
      |> List.sort (fun a b -> Int.compare a.seq b.seq)
      |> List.map (fun s -> s.entry)

let all t =
  Hashtbl.fold
    (fun _ tbl acc -> Hashtbl.fold (fun _ slot acc -> slot :: acc) tbl acc)
    t.tables []
  |> List.sort (fun a b -> Int.compare a.seq b.seq)
  |> List.map (fun s -> s.entry)

let count t name =
  match Hashtbl.find_opt t.tables name with None -> 0 | Some tbl -> Hashtbl.length tbl

let total t = Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.tables 0

let entry_has_key_value (e : Entry.t) ~key value =
  match Entry.find_match e key with
  | Some (Entry.M_exact v) | Some (Entry.M_optional (Some v)) -> Bitvec.equal v value
  | _ -> false

let exists_value t ~table ~key value =
  List.exists (fun e -> entry_has_key_value e ~key value) (entries_of t table)

let reference_index t info =
  let tbl = Hashtbl.create 512 in
  List.iter
    (fun e ->
      List.iter
        (fun (r : Validate.reference) ->
          Hashtbl.replace tbl
            (r.ref_table ^ "/" ^ r.ref_key ^ "/" ^ Bitvec.to_hex_string r.ref_value)
            ())
        (Validate.references info e))
    (all t);
  fun ~table ~key value ->
    Hashtbl.mem tbl (table ^ "/" ^ key ^ "/" ^ Bitvec.to_hex_string value)

let is_referenced_by index (entry : Entry.t) =
  List.exists
    (fun (fm : Entry.field_match) ->
      match fm.fm_value with
      | Entry.M_exact v | Entry.M_optional (Some v) ->
          index ~table:entry.e_table ~key:fm.fm_field v
      | _ -> false)
    entry.e_matches

let is_referenced t info (entry : Entry.t) =
  (* The values under which this entry can be referenced: its exact match
     values keyed by name, in its own table. *)
  let candidate_targets =
    List.filter_map
      (fun (fm : Entry.field_match) ->
        match fm.fm_value with
        | Entry.M_exact v | Entry.M_optional (Some v) -> Some (fm.fm_field, v)
        | _ -> None)
      entry.e_matches
  in
  candidate_targets <> []
  && List.exists
       (fun other ->
         (not (Entry.equal_key other entry))
         && List.exists
              (fun (r : Validate.reference) ->
                String.equal r.ref_table entry.e_table
                && List.exists
                     (fun (k, v) -> String.equal k r.ref_key && Bitvec.equal v r.ref_value)
                     candidate_targets)
              (Validate.references info other))
       (all t)

let equal a b =
  let keyset t =
    all t
    |> List.map (fun e -> (Entry.match_key e, e))
    |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2)
  in
  let ka = keyset a and kb = keyset b in
  List.length ka = List.length kb
  && List.for_all2
       (fun (k1, e1) (k2, e2) -> String.equal k1 k2 && Entry.equal e1 e2)
       ka kb

let diff a b =
  let index t =
    let tbl = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace tbl (Entry.match_key e) e) (all t);
    tbl
  in
  let ia = index a and ib = index b in
  let out = ref [] in
  Hashtbl.iter
    (fun k e ->
      match Hashtbl.find_opt ib k with
      | None -> out := Format.asprintf "only in first: %a" Entry.pp e :: !out
      | Some e' ->
          if not (Entry.equal e e') then
            out :=
              Format.asprintf "differs: %a vs %a" Entry.pp e Entry.pp e' :: !out)
    ia;
  Hashtbl.iter
    (fun k e ->
      if not (Hashtbl.mem ia k) then
        out := Format.asprintf "only in second: %a" Entry.pp e :: !out)
    ib;
  List.sort String.compare !out
