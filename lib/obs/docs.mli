(** The metric catalog: every instrumented counter/histogram name (or
    stable dotted prefix for dynamic families) with a one-line help
    string, surfaced as [# HELP] in the Prometheus exposition. *)

val catalog : (string * string) list

val install : unit -> unit
(** Register the catalog with {!Switchv_telemetry.Telemetry.document}.
    Idempotent; called by the exposition renderer and the test suite. *)

val undocumented : Switchv_telemetry.Telemetry.snapshot -> string list
(** Metric names present in the snapshot that resolve to no catalog entry
    (after [install]). The obs test fails when this is non-empty. *)
