(** Periodic one-line stderr progress for a running campaign: goals
    solved, packets injected, incidents, live coverage, and an ETA
    extrapolated from goal completion. *)

val render :
  Switchv_telemetry.Telemetry.t ->
  coverage:(unit -> (int * int) option) ->
  elapsed:float ->
  string
(** The line itself (no trailing newline) — exposed for tests. *)

type t

val start :
  ?interval:float ->
  ?out:out_channel ->
  Switchv_telemetry.Telemetry.t ->
  coverage:(unit -> (int * int) option) ->
  unit ->
  t
(** Emit a line every [interval] (default 2s) seconds on a background
    thread until [stop]. *)

val stop : t -> unit
