module Telemetry = Switchv_telemetry.Telemetry
module Json = Switchv_telemetry.Telemetry.Json
module Jsonp = Switchv_telemetry.Jsonp

(* --- atomic trace file sink -------------------------------------------------- *)

(* Drop a torn final line (no terminating newline) left by a write that
   was interrupted mid-event, so a published trace file is always whole
   JSONL. Scans backwards in blocks; the file is truncated to just after
   the last newline (or to empty). *)
let truncate_to_last_newline path =
  match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size > 0 then begin
        let block = 4096 in
        let buf = Bytes.create block in
        let rec find_end pos =
          (* [pos] is the exclusive upper bound still unscanned. *)
          if pos = 0 then 0
          else begin
            let lo = max 0 (pos - block) in
            let len = pos - lo in
            ignore (Unix.lseek fd lo Unix.SEEK_SET);
            let rec fill off =
              if off < len then begin
                let r = Unix.read fd buf off (len - off) in
                if r > 0 then fill (off + r) else off
              end
              else off
            in
            let got = fill 0 in
            let rec scan i =
              if i < 0 then find_end lo
              else if Bytes.get buf i = '\n' then lo + i + 1
              else scan (i - 1)
            in
            scan (got - 1)
          end
        in
        let keep = find_end size in
        if keep <> size then Unix.ftruncate fd keep
      end

(* Stream trace events to a pid-unique temp file, and on the way out —
   normal return, exception, or Sys.Break from SIGINT — flush, drop any
   torn final line, and atomically rename into place. An interrupted
   campaign therefore leaves either no trace file or a whole one, never a
   file ending mid-event; concurrent runs pointed at the same --trace
   never clobber each other's temp mid-write. *)
let with_file_sink tele path f =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  let publish () =
    (try close_out oc with Sys_error _ -> ());
    truncate_to_last_newline tmp;
    Sys.rename tmp path
  in
  match Telemetry.with_trace_channel tele oc f with
  | v ->
      publish ();
      v
  | exception e ->
      publish ();
      raise e

(* --- reading a stitched trace ------------------------------------------------ *)

type event = {
  e_ev : string;                 (* "b" | "e" | "i" *)
  e_span : string;
  e_ts : float;
  e_sid : int option;
  e_psid : int option;
  e_seq : int option;
}

let parse_line line =
  match Jsonp.parse line with
  | Error _ -> None
  | Ok j ->
      let str name = Option.bind (Jsonp.member name j) Jsonp.to_str in
      let int name = Option.bind (Jsonp.member name j) Jsonp.to_int in
      let num name = Option.bind (Jsonp.member name j) Jsonp.to_num in
      (match (str "ev", str "span", num "ts") with
      | Some ev, Some span, Some ts ->
          Some
            { e_ev = ev;
              e_span = span;
              e_ts = ts;
              e_sid = int "sid";
              e_psid = int "psid";
              e_seq = int "seq" }
      | _ -> None)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let events = ref [] in
  let skipped = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match parse_line line with
         | Some e -> events := e :: !events
         | None -> Stdlib.incr skipped
     done
   with End_of_file -> ());
  (List.rev !events, !skipped)

(* --- stitching --------------------------------------------------------------- *)

type stitch = {
  st_spans : int;    (* "b" events *)
  st_roots : int;    (* spans with no parent *)
  st_orphans : int;  (* spans whose psid resolves to no sid in the file *)
  st_blocks : int;   (* distinct sid blocks = 1 parent + workers seen *)
}

let stitch events =
  let sids = Hashtbl.create 256 in
  let blocks = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Option.iter
        (fun sid ->
          if e.e_ev = "b" then Hashtbl.replace sids sid ();
          Hashtbl.replace blocks (Telemetry.sid_block sid) ())
        e.e_sid)
    events;
  let spans = List.filter (fun e -> e.e_ev = "b") events in
  let roots = List.filter (fun e -> e.e_psid = None) spans in
  let orphans =
    List.filter
      (fun e ->
        match e.e_psid with Some p -> not (Hashtbl.mem sids p) | None -> false)
      spans
  in
  { st_spans = List.length spans;
    st_roots = List.length roots;
    st_orphans = List.length orphans;
    st_blocks = Hashtbl.length blocks }

(* --- Chrome trace-event conversion ------------------------------------------- *)

(* chrome://tracing / Perfetto "JSON Array Format": duration events (B/E)
   plus instants, timestamps in microseconds. The process is one campaign
   (pid 0); the thread id is the span-id block, i.e. 0 for the parent and
   the worker ordinal for forked shards — which is exactly how execution
   was laid out across processes. *)
let to_chrome events =
  let items =
    List.filter_map
      (fun e ->
        let tid =
          match e.e_sid with Some s -> Telemetry.sid_block s | None -> 0
        in
        let args =
          [ ( "args",
              Json.obj
                ((match e.e_sid with
                 | Some s -> [ ("sid", Json.int s) ]
                 | None -> [])
                @
                match e.e_psid with
                | Some p -> [ ("psid", Json.int p) ]
                | None -> []) ) ]
        in
        let common ph =
          Json.obj
            ([ ("name", Json.str e.e_span); ("ph", Json.str ph);
               ("pid", Json.int 0); ("tid", Json.int tid);
               ("ts", Json.num (e.e_ts *. 1e6)) ]
            @ (if ph = "i" then [ ("s", Json.str "t") ] else [])
            @ args)
        in
        match e.e_ev with
        | "b" -> Some (common "B")
        | "e" -> Some (common "E")
        | "i" -> Some (common "i")
        | _ -> None)
      events
  in
  Json.arr items
