(** Edge-coverage accounting over the program CFG.

    The bmv2 interpreter bumps a telemetry counter per CFG edge it takes
    (condition arms keyed by the Symexec branch-id numbering, table-action
    edges keyed by table/role/action). This module turns those counters
    plus {!Switchv_analysis.Cfg} — which knows the {e full} edge space,
    including edges never taken — into a coverage map: the observability
    prerequisite for FP4-style coverage-guided feedback.

    Coverage counters are ordinary counters, so they merge across forked
    shards like everything else; because shard decomposition is
    jobs-invariant, [to_string] is byte-identical for any [--jobs]. *)

type t = {
  entries : (string * int) list;  (** full edge key space, sorted; 0 = unhit *)
  covered : int;
  total : int;
}

val branch_key : int -> string -> string
(** [branch_key id arm] = ["cov.branch.<id>.<arm>"], [arm] in
    {["then"; "else"]} — the counter key the interpreter bumps. *)

val action_key : string -> Switchv_analysis.Cfg.action_role -> string -> string

val edge_keys : Switchv_p4ir.Ast.program -> string list
(** Every edge key the program can ever produce, sorted, deduplicated. *)

val of_registry :
  ?prefix:string -> Switchv_telemetry.Telemetry.t -> Switchv_p4ir.Ast.program -> t
(** Fold the registry's coverage counters over the program's edge space.
    [?prefix] (default [""]) reads each key as [prefix ^ key] — used for
    per-switch fabric coverage, whose counters are re-emitted under
    [topo.sw.<i>.]; the resulting map still carries canonical unprefixed
    keys. *)

val percent : t -> float
(** 100 for an empty edge space. *)

val to_string : t -> string
(** Canonical text form ("key count" lines under two header comments);
    deterministic across jobs counts — what [--coverage-out] writes and
    [make check-obs] byte-compares. *)

val write_file : t -> string -> unit
(** Write [to_string] atomically (temp file + rename). *)

val to_json : t -> string
val pp : Format.formatter -> t -> unit
