module Telemetry = Switchv_telemetry.Telemetry

(* --- rendering (exposition format 0.0.4) ----------------------------------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let metric_name name =
  let b = Bytes.of_string name in
  Bytes.iteri (fun i c -> if not (is_name_char c) then Bytes.set b i '_') b;
  "switchv_" ^ Bytes.to_string b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

type gauge = {
  g_name : string;   (* already in Prometheus form, e.g. switchv_edges_covered *)
  g_help : string;
  g_value : float;
}

let header buf name help typ =
  Printf.bprintf buf "# HELP %s %s\n" name (escape_help help);
  Printf.bprintf buf "# TYPE %s %s\n" name typ

let help_for raw_name =
  Option.value ~default:"(undocumented)" (Telemetry.doc_for raw_name)

(* Render the registry (plus computed gauges, e.g. live coverage) in the
   Prometheus text exposition format. Counters keep their dotted name
   mapped through [metric_name]; span histograms get a [_seconds] suffix
   and explicit [le] bucket edges from the shared bounds. *)
let render ?(gauges = []) tele =
  Docs.install ();
  let buf = Buffer.create 4096 in
  List.iter
    (fun g ->
      header buf g.g_name g.g_help "gauge";
      Printf.bprintf buf "%s %s\n" g.g_name (float_str g.g_value))
    gauges;
  let ex = Telemetry.export tele in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      header buf m (help_for name) "counter";
      Printf.bprintf buf "%s %d\n" m v)
    ex.Telemetry.ex_counters;
  let bounds = Telemetry.default_bounds in
  List.iter
    (fun (name, (d : Telemetry.histogram_dump)) ->
      let m = metric_name name ^ "_seconds" in
      header buf m (help_for name) "histogram";
      let cum = ref 0 in
      Array.iteri
        (fun i bound ->
          if i < Array.length d.hd_buckets then cum := !cum + d.hd_buckets.(i);
          Printf.bprintf buf "%s_bucket{le=\"%g\"} %d\n" m bound !cum)
        bounds;
      Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" m d.hd_count;
      Printf.bprintf buf "%s_sum %s\n" m (float_str d.hd_sum);
      Printf.bprintf buf "%s_count %d\n" m d.hd_count)
    ex.Telemetry.ex_histograms;
  Buffer.contents buf

(* --- linting ---------------------------------------------------------------- *)

(* A small validity checker for the exposition format, used by
   [make check-obs] and the test suite: metric names well-formed, every
   sample preceded by its family's # TYPE, every family documented with a
   # HELP, families contiguous and not redefined, label syntax and sample
   values parseable, histogram suffixes used consistently, and the text
   ending in a newline. *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all is_name_char s

let strip_suffix name =
  let try_one suffix =
    let ls = String.length suffix and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suffix then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  match try_one "_bucket" with
  | Some base -> Some (base, `Bucket)
  | None -> (
      match try_one "_sum" with
      | Some base -> Some (base, `Sum)
      | None -> (
          match try_one "_count" with
          | Some base -> Some (base, `Count)
          | None -> None))

(* Parse [name{labels} value] into (name, labels, value-string). Returns
   an error message on malformed label syntax. *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do Stdlib.incr i done;
  let name = String.sub line 0 !i in
  let labels = ref [] in
  let err = ref None in
  (if !i < n && line.[!i] = '{' then begin
     Stdlib.incr i;
     let fine = ref true in
     while !fine && !i < n && line.[!i] <> '}' do
       let ls = !i in
       while !i < n && is_name_char line.[!i] do Stdlib.incr i done;
       let lname = String.sub line ls (!i - ls) in
       if lname = "" || !i >= n || line.[!i] <> '=' then begin
         err := Some "malformed label name";
         fine := false
       end
       else begin
         Stdlib.incr i;
         if !i >= n || line.[!i] <> '"' then begin
           err := Some "label value must be quoted";
           fine := false
         end
         else begin
           Stdlib.incr i;
           let b = Buffer.create 8 in
           let closed = ref false in
           while (not !closed) && !fine && !i < n do
             (match line.[!i] with
             | '"' -> closed := true
             | '\\' ->
                 Stdlib.incr i;
                 if !i >= n || not (List.mem line.[!i] [ '\\'; '"'; 'n' ]) then begin
                   err := Some "bad escape in label value";
                   fine := false
                 end
                 else Buffer.add_char b line.[!i]
             | c -> Buffer.add_char b c);
             Stdlib.incr i
           done;
           if not !closed then begin
             err := Some "unterminated label value";
             fine := false
           end
           else begin
             labels := (lname, Buffer.contents b) :: !labels;
             if !i < n && line.[!i] = ',' then Stdlib.incr i
           end
         end
       end
     done;
     if !fine then
       if !i < n && line.[!i] = '}' then Stdlib.incr i
       else err := Some "unterminated label set"
   end);
  match !err with
  | Some e -> Error e
  | None ->
      let rest = String.trim (String.sub line !i (n - !i)) in
      Ok (name, List.rev !labels, rest)

let parse_value s =
  (* value [timestamp]; Prometheus allows +Inf/-Inf/NaN. *)
  match String.split_on_char ' ' s |> List.filter (fun x -> x <> "") with
  | [] -> Error "missing sample value"
  | value :: rest ->
      if List.length rest > 1 then Error "trailing tokens after timestamp"
      else if
        (match value with "+Inf" | "-Inf" | "NaN" -> true | _ -> false)
        || float_of_string_opt value <> None
      then
        match rest with
        | [] -> Ok ()
        | [ ts ] ->
            if float_of_string_opt ts <> None then Ok ()
            else Error "malformed timestamp"
        | _ -> Error "trailing tokens after timestamp"
      else Error (Printf.sprintf "malformed sample value %S" value)

let lint text =
  let errors = ref [] in
  let add lineno msg = errors := Printf.sprintf "line %d: %s" lineno msg :: !errors in
  if text = "" then errors := [ "empty exposition" ]
  else begin
    if text.[String.length text - 1] <> '\n' then
      errors := [ "exposition must end with a newline" ];
    let helped = Hashtbl.create 32 in
    let typed = Hashtbl.create 32 in
    let finished = Hashtbl.create 32 in
    let current = ref None in
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        if line = "" then ()
        else if String.length line >= 1 && line.[0] = '#' then begin
          let meta kind =
            let prefix = "# " ^ kind ^ " " in
            let lp = String.length prefix in
            if String.length line > lp && String.sub line 0 lp = prefix then
              let rest = String.sub line lp (String.length line - lp) in
              match String.index_opt rest ' ' with
              | Some i ->
                  Some (String.sub rest 0 i,
                        String.sub rest (i + 1) (String.length rest - i - 1))
              | None -> Some (rest, "")
            else None
          in
          match meta "HELP" with
          | Some (name, help) ->
              if not (valid_name name) then
                add lineno (Printf.sprintf "invalid metric name %S in HELP" name);
              if help = "" then add lineno (name ^ ": empty HELP text");
              if Hashtbl.mem helped name then
                add lineno (name ^ ": duplicate HELP")
              else Hashtbl.replace helped name ()
          | None -> (
              match meta "TYPE" with
              | Some (name, typ) ->
                  if not (valid_name name) then
                    add lineno (Printf.sprintf "invalid metric name %S in TYPE" name);
                  if
                    not
                      (List.mem typ
                         [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
                  then add lineno (name ^ ": unknown type " ^ typ);
                  if Hashtbl.mem typed name then
                    add lineno (name ^ ": duplicate TYPE")
                  else Hashtbl.replace typed name typ;
                  if Hashtbl.mem finished name then
                    add lineno (name ^ ": TYPE after the family's samples ended")
              | None -> () (* free-form comment *))
        end
        else begin
          match parse_sample line with
          | Error e -> add lineno e
          | Ok (name, labels, rest) ->
              if not (valid_name name) then
                add lineno (Printf.sprintf "invalid metric name %S" name)
              else begin
                (match parse_value rest with
                | Ok () -> ()
                | Error e -> add lineno (name ^ ": " ^ e));
                let family, role =
                  match strip_suffix name with
                  | Some (base, role)
                    when Hashtbl.find_opt typed base = Some "histogram" ->
                      (base, Some role)
                  | _ -> (name, None)
                in
                (match role with
                | Some `Bucket when not (List.mem_assoc "le" labels) ->
                    add lineno (name ^ ": _bucket sample without an le label")
                | _ -> ());
                if not (Hashtbl.mem typed family) then
                  add lineno (family ^ ": sample without a preceding TYPE");
                if not (Hashtbl.mem helped family) then
                  add lineno (family ^ ": sample without a preceding HELP");
                (match !current with
                | Some f when f = family -> ()
                | Some f ->
                    Hashtbl.replace finished f ();
                    if Hashtbl.mem finished family then
                      add lineno (family ^ ": family not contiguous");
                    current := Some family
                | None -> current := Some family)
              end
        end)
      lines
  end;
  List.rev !errors
