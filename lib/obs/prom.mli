(** Prometheus text exposition (format 0.0.4): rendering a telemetry
    registry for the [/metrics] endpoint, and a small linter the CI gate
    and test suite run over the rendered text. *)

val metric_name : string -> string
(** Map a dotted telemetry name to a Prometheus metric name:
    ["smt.checks"] -> ["switchv_smt_checks"]. *)

type gauge = {
  g_name : string;   (** already in Prometheus form *)
  g_help : string;
  g_value : float;
}

val render : ?gauges:gauge list -> Switchv_telemetry.Telemetry.t -> string
(** Gauges (e.g. live coverage) first, then counters, then histograms
    with explicit [le] bucket edges. [# HELP] text comes from the
    {!Docs} catalog via {!Switchv_telemetry.Telemetry.doc_for};
    undocumented metrics render as ["(undocumented)"] (and fail the
    hygiene test). *)

val lint : string -> string list
(** Validity errors (empty = clean): name syntax, TYPE/HELP present and
    preceding samples, families contiguous and not redefined, label
    syntax, parseable sample values, [le] on histogram buckets, trailing
    newline. *)
