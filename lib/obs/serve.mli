(** Dependency-free HTTP exposition: the [--metrics-port] listener
    ([/metrics], [/healthz], [/snapshot.json]) and the GET client behind
    [switchv top] and the CI gate.

    The listener runs on one systhread and renders from in-memory
    registry state; forked campaign workers inherit the socket fd but not
    the thread, so only the parent answers. *)

type handler = unit -> string * string
(** Returns (content-type, body); exceptions become a 500. *)

type t

val start : ?host:string -> port:int -> (string * handler) list -> t
(** Bind (default 127.0.0.1; port 0 picks an ephemeral port), listen, and
    answer on a background thread. Routes are exact paths ("/metrics");
    anything else is a 404. *)

val port : t -> int
(** The bound port — useful with [~port:0]. *)

val stop : t -> unit
(** Close the socket and join the serving thread. *)

val fetch : ?host:string -> port:int -> string -> (string, string) result
(** One HTTP/1.0 GET; [Ok body] on a 200, [Error message] otherwise. *)
