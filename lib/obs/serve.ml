(* A dependency-free HTTP/1.0 listener for live campaign state. One
   systhread accepts and answers requests sequentially — requests are
   tiny, handlers render from in-memory registry state, and systhreads
   interleave with the campaign at safepoints, so no locking is needed
   (a snapshot taken mid-update is merely slightly stale, never corrupt).
   Forked campaign workers inherit the listening fd but not the accept
   thread, so only the parent ever answers. *)

type handler = unit -> string * string  (* content-type, body *)

type t = {
  sock : Unix.file_descr;
  port : int;
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let http_response ?(status = "200 OK") ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  (try go 0 with Unix.Unix_error _ -> ())

let request_path fd =
  (* Read enough for the request line; we never need the headers. *)
  let buf = Bytes.create 2048 in
  match Unix.read fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error _ -> None
  | 0 -> None
  | n -> (
      let req = Bytes.sub_string buf 0 n in
      match String.index_opt req '\n' with
      | None -> None
      | Some eol -> (
          let line = String.trim (String.sub req 0 eol) in
          match String.split_on_char ' ' line with
          | "GET" :: path :: _ ->
              (* Strip any query string. *)
              Some
                (match String.index_opt path '?' with
                | Some q -> String.sub path 0 q
                | None -> path)
          | _ -> None))

let answer routes fd =
  (match request_path fd with
  | None -> send_all fd (http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n")
  | Some path -> (
      match List.assoc_opt path routes with
      | None ->
          send_all fd (http_response ~status:"404 Not Found" ~content_type:"text/plain" "not found\n")
      | Some handler -> (
          match handler () with
          | content_type, body -> send_all fd (http_response ~content_type body)
          | exception e ->
              send_all fd
                (http_response ~status:"500 Internal Server Error"
                   ~content_type:"text/plain"
                   (Printexc.to_string e ^ "\n")))));
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ?(host = "127.0.0.1") ~port routes =
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (addr, port));
  Unix.listen sock 16;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t = { sock; port; stopped = false; thread = None } in
  let loop () =
    let rec go () =
      match Unix.accept t.sock with
      | client, _ ->
          answer routes client;
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> if not t.stopped then go ()
      | exception _ -> ()
    in
    go ()
  in
  t.thread <- Some (Thread.create loop ());
  t

let port t = t.port

let stop t =
  t.stopped <- true;
  (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  Option.iter Thread.join t.thread

(* --- client ------------------------------------------------------------------ *)

(* Minimal HTTP GET, used by [switchv top] and `make check-obs` so the
   gate needs no curl in the container. *)
let fetch ?(host = "127.0.0.1") ~port path =
  match Unix.inet_addr_of_string host with
  | exception _ -> Error (Printf.sprintf "bad host %S" host)
  | addr -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let finally () = try Unix.close sock with Unix.Unix_error _ -> () in
      match
        Fun.protect ~finally @@ fun () ->
        Unix.connect sock (Unix.ADDR_INET (addr, port));
        send_all sock
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\nConnection: close\r\n\r\n"
             path host);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Buffer.contents buf
      with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | raw -> (
          let sep = "\r\n\r\n" in
          let split_at i =
            ( String.sub raw 0 i,
              String.sub raw (i + String.length sep)
                (String.length raw - i - String.length sep) )
          in
          let rec find i =
            if i + String.length sep > String.length raw then None
            else if String.sub raw i (String.length sep) = sep then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> Error "malformed HTTP response"
          | Some i -> (
              let head, body = split_at i in
              match String.split_on_char ' ' head with
              | _ :: code :: _ ->
                  if code = "200" then Ok body
                  else Error (Printf.sprintf "HTTP %s: %s" code (String.trim body))
              | _ -> Error "malformed HTTP status line")))
