(** Trace-file plumbing: the atomic [--trace FILE] sink, a reader for the
    stitched JSONL format, stitch diagnostics, and the
    [chrome://tracing]/Perfetto converter behind
    [switchv trace-export --chrome]. *)

val truncate_to_last_newline : string -> unit
(** Drop a torn final line (missing [\n]) from a file, in place. No-op on
    missing files. *)

val with_file_sink :
  Switchv_telemetry.Telemetry.t -> string -> (unit -> 'a) -> 'a
(** Stream the registry's trace events to [path ^ ".tmp"] for the
    duration of the thunk, then — on return, exception, or [Sys.Break] —
    flush, drop any torn final line, and atomically rename to [path]. *)

type event = {
  e_ev : string;                 (** ["b"], ["e"], or ["i"] *)
  e_span : string;
  e_ts : float;
  e_sid : int option;
  e_psid : int option;
  e_seq : int option;
}

val parse_line : string -> event option

val read_file : string -> event list * int
(** Events in file order, plus the count of unparseable lines. *)

type stitch = {
  st_spans : int;    (** begin events *)
  st_roots : int;    (** spans with no parent — 1 for a stitched campaign *)
  st_orphans : int;  (** spans whose parent id is absent from the file *)
  st_blocks : int;   (** distinct span-id blocks (parent + workers) *)
}

val stitch : event list -> stitch

val to_chrome : event list -> string
(** Chrome trace-event JSON array: B/E duration events and instants,
    microsecond timestamps, pid 0, tid = span-id block (0 = parent,
    N = worker N). *)
