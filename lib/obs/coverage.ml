module Ast = Switchv_p4ir.Ast
module Cfg = Switchv_analysis.Cfg
module Telemetry = Switchv_telemetry.Telemetry
module Json = Switchv_telemetry.Telemetry.Json

type t = {
  entries : (string * int) list;
  covered : int;
  total : int;
}

let branch_key id arm = Printf.sprintf "cov.branch.%d.%s" id arm

let action_key table role aname =
  Printf.sprintf "cov.action.%s.%s.%s" table
    (match role with Cfg.Hit -> "hit" | Cfg.Miss -> "miss")
    aname

(* The full edge key space of a program, from the same CFG the analyses
   use: two keys per condition node (branch ids match Symexec/Interp
   numbering) and one per table-action edge. Sorted and deduplicated — a
   table applied from several places contributes one set of action edges,
   which is also what the interpreter's counters observe.

   Memoized by physical equality on the program value: fabric campaigns
   call [of_registry] once per switch per report over the same shared
   program, and the greybox scheduler snapshots the key list around every
   injection — rebuilding the CFG each time made both O(calls * |CFG|).
   The cache is small and bounded; a new program value evicts the
   oldest entry. *)
let edge_keys_cache : (Ast.program * string list) list ref = ref []

let compute_edge_keys program =
  let cfg = Cfg.build program in
  let keys = ref [] in
  Cfg.iter
    (fun n ->
      match n.Cfg.n_kind with
      | Cfg.N_cond (id, _) ->
          keys := branch_key id "then" :: branch_key id "else" :: !keys
      | Cfg.N_action (t, aname, role) ->
          keys := action_key t.Ast.t_name role aname :: !keys
      | _ -> ())
    cfg;
  List.sort_uniq String.compare !keys

let edge_keys program =
  match List.find_opt (fun (p, _) -> p == program) !edge_keys_cache with
  | Some (_, keys) -> keys
  | None ->
      let keys = compute_edge_keys program in
      edge_keys_cache :=
        (program, keys)
        :: List.filteri (fun i _ -> i < 7) !edge_keys_cache;
      keys

let of_registry ?(prefix = "") tele program =
  (* [prefix] reads a namespaced copy of the counters (e.g. a fabric
     campaign's per-switch [topo.sw.<i>.] re-emission) while keeping the
     canonical unprefixed keys in the map, so per-switch maps render and
     compare in the same format as the global one. *)
  let entries =
    List.map
      (fun k -> (k, Telemetry.counter tele (prefix ^ k)))
      (edge_keys program)
  in
  let covered = List.length (List.filter (fun (_, c) -> c > 0) entries) in
  { entries; covered; total = List.length entries }

let percent t =
  if t.total = 0 then 100. else 100. *. float_of_int t.covered /. float_of_int t.total

(* Canonical text form: sorted "key count" lines. Counts come from shard
   decomposition that depends only on the workload, never on --jobs, so
   this renders byte-identically for any jobs count — `make check-obs`
   cmp-gates exactly this. *)
let to_string t =
  let b = Buffer.create 512 in
  Buffer.add_string b "# switchv coverage map v1\n";
  Printf.bprintf b "# edges %d/%d\n" t.covered t.total;
  List.iter (fun (k, c) -> Printf.bprintf b "%s %d\n" k c) t.entries;
  Buffer.contents b

(* pid-unique temp name (same convention as the cache store): two
   concurrent runs pointed at the same --coverage-out must not clobber
   each other's half-written temp file. *)
let write_file t path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

let to_json t =
  Json.obj
    [ ("edges_covered", Json.int t.covered);
      ("edges_total", Json.int t.total);
      ( "edges",
        Json.obj (List.map (fun (k, c) -> (k, Json.int c)) t.entries) ) ]

let pp fmt t =
  Format.fprintf fmt "coverage: %d/%d edges (%.1f%%)" t.covered t.total (percent t)
