module Telemetry = Switchv_telemetry.Telemetry

(* The periodic stderr heartbeat of a running campaign: one line with the
   numbers an operator actually watches (PAPER.md §6 ran SwitchV as a
   monitored service). Reads the ambient registry; the coverage closure
   is injected so this module stays program-agnostic. *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* [campaign.incidents] counts every incident the campaigns record
   (including oracle-flagged ones, so adding the two would double-count);
   the per-kind oracle counters stand in when only the oracle ran. *)
let incident_total tele =
  let snap = Telemetry.snapshot tele in
  let oracle =
    List.fold_left
      (fun acc (name, v) ->
        if has_prefix ~prefix:"oracle.incidents." name then acc + v else acc)
      0 snap.Telemetry.snap_counters
  in
  max (Telemetry.counter tele "campaign.incidents") oracle

let render tele ~coverage ~elapsed =
  let c name = Telemetry.counter tele name in
  let goals_total = c "goals.total" in
  let goals_done = c "symbolic.goals_covered" + c "symbolic.goals_uncoverable" in
  let packets = c "switch.packets_injected" in
  let incidents = incident_total tele in
  let b = Buffer.create 128 in
  Printf.bprintf b "[switchv] %6.1fs" elapsed;
  if goals_total > 0 then Printf.bprintf b " | goals %d/%d" goals_done goals_total
  else if goals_done > 0 then Printf.bprintf b " | goals %d" goals_done;
  Printf.bprintf b " | packets %d | incidents %d" packets incidents;
  (match coverage () with
  | Some (covered, total) when total > 0 ->
      Printf.bprintf b " | coverage %d/%d (%.1f%%)" covered total
        (100. *. float_of_int covered /. float_of_int total)
  | _ -> ());
  if goals_total > 0 && goals_done > 0 && goals_done < goals_total then
    Printf.bprintf b " | eta %.0fs"
      (elapsed /. float_of_int goals_done *. float_of_int (goals_total - goals_done));
  Buffer.contents b

type t = { mutable stopped : bool }

let start ?(interval = 2.0) ?(out = stderr) tele ~coverage () =
  let started = Telemetry.Clock.now () in
  let state = { stopped = false } in
  let loop () =
    while not state.stopped do
      Thread.delay interval;
      if not state.stopped then begin
        let elapsed = Telemetry.Clock.duration ~since:started in
        output_string out (render tele ~coverage ~elapsed ^ "\n");
        flush out
      end
    done
  in
  ignore (Thread.create loop ());
  state

let stop t =
  t.stopped <- true
  (* No join: the thread wakes at the next interval tick and exits; the
     final report should not wait on it. *)
