module Telemetry = Switchv_telemetry.Telemetry

(* One entry per metric name, or per stable dotted prefix for dynamic
   families (fault ids, coverage edges, per-kind incident counters,
   solver-internal stat deltas). [Telemetry.doc_for] resolves a concrete
   name through its longest documented prefix, so [fault.PINS-042] is
   covered by the ["fault"] entry. The obs test suite fails when a counter
   observed during a campaign resolves to no entry here — add the metric
   to this table when you instrument a new one. *)
let catalog =
  [ ("analysis.run", "Duration of one static analysis pass.");
    ("analysis.runs", "Static analysis passes executed.");
    ("analysis.dead_tables_skipped", "Tables skipped by fuzzing because analysis proved them unreachable.");
    ("analysis.diagnostics_error", "Error-severity diagnostics from static analysis.");
    ("analysis.diagnostics_warning", "Warning-severity diagnostics from static analysis.");
    ("analysis.diagnostics_info", "Info-severity diagnostics from static analysis.");
    ("analysis.goals_pruned", "Symbolic goals discharged statically (dead-branch pruning) instead of solved.");
    ("analysis.concretely_covered_skipped", "Branch goals skipped before SMT because greybox probes already covered their edge concretely.");
    ("analysis.tainted_goals", "Branch goals classified tainted (path crosses a hash/selector-tainted branch) and excluded from SMT solving.");
    ("cache.hits", "Packet-cache lookups answered without solving.");
    ("cache.misses", "Packet-cache lookups that required a solver call.");
    ("cache.corrupt_dropped", "Cache entries dropped because their on-disk form failed to parse.");
    ("campaign.control", "Duration of the control-plane (fuzzing) campaign.");
    ("campaign.incidents", "Incidents recorded by the campaigns (miscompares before triage dedup).");
    ("campaign.generation", "Duration of symbolic test-packet generation.");
    ("campaign.testing", "Duration of the packet injection/comparison phase.");
    ("cov.branch", "Edge coverage: executions of a pipeline conditional arm (branch id matches symbolic goal labels).");
    ("cov.action", "Edge coverage: executions of a table action edge (hit or default/miss).");
    ("fault", "Times the named injected fault perturbed switch behaviour.");
    ("fuzzer.batches", "Update batches produced by the control-plane fuzzer.");
    ("fuzzer.updates", "Total updates produced by the control-plane fuzzer.");
    ("fuzzer.mutated_updates", "Fuzzer updates that went through a mutation pass.");
    ("fuzzer.greybox.probes", "Probe packets injected after control batches to harvest coverage deltas.");
    ("fuzzer.greybox.novel_edges", "Coverage edges first reached by a shard's greybox observations (summed over shards).");
    ("fuzzer.greybox.corpus_admitted", "Coverage-novel inputs (batches and packets) admitted to greybox corpora.");
    ("fuzzer.greybox.energy_assigned", "Energy units credited to tables whose state reached novel edges.");
    ("fuzzer.greybox.weighted_picks", "Valid-insert table choices made by the energy-weighted power schedule.");
    ("fuzzer.greybox.seeded_bases", "Mutation bases drawn from the greybox corpus instead of generated fresh.");
    ("goals.total", "Symbolic coverage goals planned for this campaign.");
    ("harness.validate", "End-to-end duration of one validation run.");
    ("oracle.batches_judged", "Update batches compared against the P4Runtime reference oracle.");
    ("oracle.updates_judged", "Individual updates compared against the reference oracle.");
    ("oracle.incidents", "Oracle incidents detected, by kind.");
    ("oracle.dataplane_fast", "Data-plane verdicts settled by the fast deterministic equality check.");
    ("oracle.dataplane_set_admits", "Data-plane verdicts admitted by taint-masked set-valued comparison (no hash-round enumeration).");
    ("oracle.dataplane_escalations", "Data-plane verdicts that escalated to exhaustive hash-round enumeration.");
    ("oracle.enum_rounds_saved", "Hash-round model executions avoided by fast or set-valued data-plane verdicts.");
    ("parallel.workers_failed", "Forked campaign workers that crashed, errored, or went silent.");
    ("parallel.pool", "Duration of one worker-pool run (fork to last frame).");
    ("parallel.shard", "Duration of one campaign shard inside a worker.");
    ("smt", "Solver-internal statistic deltas accumulated per check.");
    ("smt.check", "Duration of one SMT check.");
    ("smt.checks", "SMT checks issued.");
    ("smt.sat", "SMT checks that returned sat.");
    ("smt.unsat", "SMT checks that returned unsat.");
    ("smt.clauses_reused", "Learned clauses carried across incremental checks.");
    ("smt.incremental_hits", "Checks served from an incrementally-reused solver state.");
    ("smt.preprocess_eliminated", "Clauses eliminated by solver preprocessing.");
    ("smt.solver_reseeds", "Solver restarts after an incremental state went stale.");
    ("switch.inject", "Duration of injecting one packet into the switch stack.");
    ("switch.packets_injected", "Test packets injected into the switch stack.");
    ("switch.packet_out", "Duration of one controller packet-out.");
    ("switch.server.validate", "Duration of P4Runtime server-side validation of one request.");
    ("switch.syncd.sync", "Duration of one syncd state synchronisation.");
    ("switch.write", "Duration of one P4Runtime write request.");
    ("symbolic.attempts_skipped", "Goal attempts skipped because a cached packet already covered the goal.");
    ("topo.campaign", "Duration of one fabric campaign (setup to merged report).");
    ("topo.flows", "End-to-end fabric flows executed (edge injections and packet-outs).");
    ("topo.hops", "Switch-side hops traversed by fabric flows.");
    ("topo.delivered", "Fabric flows the switch side delivered at an edge port.");
    ("topo.dropped", "Fabric flows the switch side dropped, punted, lost at a dead hop, or looped.");
    ("topo.loops_detected", "Fabric traces cut by the hop budget (forwarding loop).");
    ("topo.crashed_hops", "Fabric traces that reached a crashed switch (dead hop).");
    ("topo.localized", "Fabric incidents attributed to one switch by hop-differential triage.");
    ("topo.nondet_admits", "End-to-end mismatches admitted because a hop consulted a hash (set-valued verdict).");
    ("topo.sw", "Per-switch fabric namespace: coverage counters re-emitted as topo.sw.<i>.cov.*.");
    ("symbolic.encode", "Duration of symbolic encoding of the program.");
    ("symbolic.generate", "Duration of the whole packet-generation pass.");
    ("symbolic.goal", "Duration of solving one coverage goal.");
    ("symbolic.goals_covered", "Coverage goals for which a witness packet was generated.");
    ("symbolic.goals_uncoverable", "Coverage goals proven unsatisfiable.");
    ("triage.ddmin_probes", "Delta-debugging replay probes executed during minimization.");
    ("triage.duplicates_collapsed", "Incidents collapsed into an existing cluster by fingerprint.");
    ("triage.minimize", "Duration of minimizing one reproducer.");
    ("triage.updates_removed", "Updates removed from reproducers by minimization.") ]

let install () = List.iter (fun (n, h) -> Telemetry.document n h) catalog

let undocumented (snap : Telemetry.snapshot) =
  install ();
  let names =
    List.map fst snap.Telemetry.snap_counters
    @ List.map fst snap.Telemetry.snap_histograms
  in
  List.sort_uniq String.compare
    (List.filter (fun n -> not (Telemetry.documented n)) names)
