module Stack = Switchv_switch.Stack
module Oracle = Switchv_oracle.Oracle
module Interp = Switchv_bmv2.Interp
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Validate = Switchv_p4runtime.Validate
module Workload = Switchv_sai.Workload
module Json = Switchv_telemetry.Telemetry.Json

type record = {
  c_program : string;
  c_detector : string;
  c_kind : string;
  c_fingerprint : Fingerprint.t;
  c_faults : string list;
  c_repro : Repro.t;
}

let record_to_json r =
  Json.obj
    [ ("program", Json.str r.c_program); ("detector", Json.str r.c_detector);
      ("kind", Json.str r.c_kind); ("fingerprint", Json.str r.c_fingerprint);
      ("faults", Json.arr (List.map Json.str r.c_faults));
      ("repro", Repro.to_json r.c_repro) ]

let record_of_json line =
  let ( let* ) = Result.bind in
  let* j = Jsonp.parse line in
  let str name =
    match Option.bind (Jsonp.member name j) Jsonp.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or bad field %S" name)
  in
  let* program = str "program" in
  let* detector = str "detector" in
  let* kind = str "kind" in
  let* fingerprint = str "fingerprint" in
  let* faults =
    match Option.bind (Jsonp.member "faults" j) Jsonp.to_arr with
    | None -> Error "missing or bad field \"faults\""
    | Some xs -> (
        match List.map Jsonp.to_str xs with
        | ids when List.for_all Option.is_some ids ->
            Ok (List.filter_map Fun.id ids)
        | _ -> Error "non-string fault id")
  in
  let* repro =
    match Jsonp.member "repro" j with
    | None -> Error "missing field \"repro\""
    | Some r -> Repro.of_json r
  in
  Ok
    { c_program = program; c_detector = detector; c_kind = kind;
      c_fingerprint = fingerprint; c_faults = faults; c_repro = repro }

let save ?(append = true) path records =
  let flags =
    [ Open_wronly; Open_creat; (if append then Open_append else Open_trunc) ]
  in
  let oc = open_out_gen flags 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun r ->
          output_string oc (record_to_json r);
          output_char oc '\n')
        records)

let load path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> go (n + 1) acc rest
    | line :: rest -> (
        match record_of_json line with
        | Ok r -> go (n + 1) (r :: acc) rest
        | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
  in
  go 1 [] lines

(* --- replay ---------------------------------------------------------------- *)

type outcome = {
  o_reproduced : bool;
  o_incidents : int;
  o_detail : string;
}

(* Group consecutive same-table entries into batches, as the data campaign
   does on install: recorded order is dependency-consistent (references
   precede referents chronologically), and a batch never mixes tables, so
   no batch carries internal @refers_to dependencies. *)
let table_batches entries =
  List.fold_left
    (fun acc (e : Entry.t) ->
      match acc with
      | (table, batch) :: rest when String.equal table e.e_table ->
          (table, e :: batch) :: rest
      | _ -> (e.e_table, [ e ]) :: acc)
    [] entries
  |> List.rev_map (fun (_, batch) -> List.rev batch)

let replay_control stack (c : Repro.control) note =
  let s = Stack.push_p4info stack in
  if not (Status.is_ok s) then
    note (Format.asprintf "p4info rejected: Set P4Info failed: %a" Status.pp s)
  else begin
    let oracle = Oracle.create (Stack.info stack) in
    let send updates =
      if updates <> [] && not (Stack.crashed stack) then begin
        let resp = Stack.write stack { Request.updates } in
        let read_back = Stack.read stack in
        List.iter
          (fun (i : Oracle.incident) ->
            let kind =
              match i.inc_kind with
              | `Status_violation -> "status violation"
              | `State_divergence -> "state divergence"
              | `Unresponsive -> "unresponsive"
              | `P4info_rejected -> "p4info rejected"
            in
            note (kind ^ ": " ^ i.inc_detail))
          (Oracle.judge_batch oracle updates resp ~read_back)
      end
    in
    List.iter
      (fun batch -> send (List.map Request.insert batch))
      (table_batches c.cr_prefix);
    send c.cr_batch
  end

let pp_behavior_set fmt bs =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Interp.pp_behavior)
    bs

let replay_data stack (d : Repro.data) note =
  let s = Stack.push_p4info stack in
  if not (Status.is_ok s) then
    note (Format.asprintf "p4info rejected: Set P4Info failed: %a" Status.pp s)
  else begin
    (* The campaign's workload is spec-valid by construction; an archived
       (or ddmin-shrunk) entry set need not be. The reference model covers
       only the spec-valid subset, and only a spec-valid entry's rejection
       is an observation — a switch refusing a dangling reference is
       correct, not a divergence. *)
    let info = Stack.info stack in
    let model_state = State.create () in
    let spec_valid e =
      Validate.check_entry info e = Ok ()
      && Validate.check_references info e ~exists:(fun ~table ~key value ->
             State.exists_value model_state ~table ~key value)
         = Ok ()
    in
    let model_entries =
      List.filter
        (fun e ->
          spec_valid e
          &&
          match State.insert model_state e with Ok () -> true | Error _ -> false)
        d.dr_entries
    in
    let is_model_entry e = List.exists (Entry.equal e) model_entries in
    List.iter
      (fun batch ->
        let updates = List.map Request.insert batch in
        let resp = Stack.write stack { Request.updates } in
        List.iter2
          (fun (u : Request.update) (st : Status.t) ->
            if (not (Status.is_ok st)) && is_model_entry u.entry then
              note
                (Format.asprintf "entry rejected during replay setup: %a: %a"
                   Status.pp st Entry.pp u.entry))
          updates resp.statuses)
      (table_batches d.dr_entries);
    let model_cfg =
      { Interp.program = Stack.program stack;
        state = model_state;
        hash_mode = Interp.Fixed 0;
        mirror_map = Workload.mirror_map model_entries }
    in
    let switch_b = Stack.inject stack ~ingress_port:d.dr_port d.dr_bytes in
    match
      Interp.enumerate_behaviors model_cfg ~ingress_port:d.dr_port d.dr_bytes
    with
    | exception Interp.Parse_failure msg ->
        note (Printf.sprintf "model parse failure: %s" msg)
    | model_bs ->
        if not (List.exists (Interp.behavior_equal switch_b) model_bs) then
          note
            (Format.asprintf
               "behavior divergence (port %d): switch behaved %a, model admits %a"
               d.dr_port Interp.pp_behavior switch_b pp_behavior_set model_bs)
  end

let replay_repro stack repro =
  let observations = ref [] in
  let note s = observations := s :: !observations in
  (match repro with
  | Repro.Control c -> replay_control stack c note
  | Repro.Data d -> replay_data stack d note);
  let obs = List.rev !observations in
  { o_reproduced = obs <> [];
    o_incidents = List.length obs;
    o_detail = (match obs with [] -> "clean" | first :: _ -> first) }

let replay ~mk_stack record = replay_repro (mk_stack ()) record.c_repro
