module Telemetry = Switchv_telemetry.Telemetry

exception Out_of_probes

(* Split [xs] into [n] contiguous chunks of near-equal length (the first
   [len mod n] chunks get the extra element). *)
let split xs n =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs chunk =
    if k = 0 then (List.rev chunk, xs)
    else
      match xs with
      | x :: rest -> take (k - 1) rest (x :: chunk)
      | [] -> (List.rev chunk, [])
  in
  let rec go i xs acc =
    if i >= n then List.rev acc
    else begin
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs [] in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 xs []

let run_stats ?(max_probes = 512) ~check xs =
  let tele = Telemetry.get () in
  Telemetry.incr ~n:0 tele "triage.ddmin_probes";
  let probes = ref 0 in
  (* Smallest input observed to fail; the answer if the budget runs dry. *)
  let best = ref xs in
  let test ys =
    if !probes >= max_probes then raise Out_of_probes;
    incr probes;
    Telemetry.incr tele "triage.ddmin_probes";
    let fails = check ys in
    if fails && List.length ys < List.length !best then best := ys;
    fails
  in
  let minimized =
    try
      if not (test xs) then xs (* flaky/vacuous reproducer: do not touch *)
      else if test [] then []
      else begin
        let cur = ref xs and len = ref (List.length xs) and n = ref 2 in
        let adopt ys next_n =
          cur := ys;
          len := List.length ys;
          n := max 2 (min next_n !len)
        in
        (try
           while !len >= 2 do
             let chunks = split !cur !n in
             let rec subsets = function
               | [] -> false
               | c :: rest -> if test c then (adopt c 2; true) else subsets rest
             in
             let complements () =
               let rec go i =
                 if i >= !n then false
                 else begin
                   let comp =
                     List.concat (List.filteri (fun j _ -> j <> i) chunks)
                   in
                   if test comp then (adopt comp (!n - 1); true) else go (i + 1)
                 end
               in
               (* At n = 2 the complements are the chunks just tested. *)
               !n > 2 && go 0
             in
             if not (subsets chunks || complements ()) then
               if !n >= !len then raise Exit else n := min !len (2 * !n)
           done
         with Exit -> ());
        !cur
      end
    with Out_of_probes -> !best
  in
  (minimized, !probes)

let run ?max_probes ~check xs = fst (run_stats ?max_probes ~check xs)
