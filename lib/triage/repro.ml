module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Json = Switchv_telemetry.Telemetry.Json

type control = {
  cr_seed : int;
  cr_prefix : Entry.t list;
  cr_batch : Request.update list;
}

type data = {
  dr_entries : Entry.t list;
  dr_port : int;
  dr_bytes : string;
}

type t = Control of control | Data of data

let size = function
  | Control c -> List.length c.cr_prefix + List.length c.cr_batch
  | Data d -> List.length d.dr_entries

let equal_update (a : Request.update) (b : Request.update) =
  a.op = b.op && Entry.equal a.entry b.entry

let equal a b =
  match (a, b) with
  | Control a, Control b ->
      a.cr_seed = b.cr_seed
      && List.equal Entry.equal a.cr_prefix b.cr_prefix
      && List.equal equal_update a.cr_batch b.cr_batch
  | Data a, Data b ->
      a.dr_port = b.dr_port
      && String.equal a.dr_bytes b.dr_bytes
      && List.equal Entry.equal a.dr_entries b.dr_entries
  | Control _, Data _ | Data _, Control _ -> false

let pp fmt = function
  | Control c ->
      Format.fprintf fmt "control repro: %d-entry prefix + %d-update batch (seed %d)"
        (List.length c.cr_prefix) (List.length c.cr_batch) c.cr_seed
  | Data d ->
      Format.fprintf fmt "data repro: %d entries, %d-byte packet on port %d"
        (List.length d.dr_entries) (String.length d.dr_bytes) d.dr_port

(* --- hex ------------------------------------------------------------------- *)

let hex_of_bytes s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let bytes_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let buf = Buffer.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Buffer.contents buf)
      else
        match (nibble h.[i], nibble h.[i + 1]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "bad hex at offset %d" i)
    in
    go 0

(* --- emit ------------------------------------------------------------------ *)

(* Bitvectors are "width:hex" strings — compact, and width round-trips
   exactly (the hex alone loses leading-zero width information). *)
let bv_to_json v =
  Json.str (Printf.sprintf "%d:%s" (Bitvec.width v) (Bitvec.to_hex_string v))

(* Rendered as (key, fragment) field lists so they can be spliced into the
   enclosing field-match object. *)
let match_value_fields = function
  | Entry.M_exact v -> [ ("kind", Json.str "exact"); ("v", bv_to_json v) ]
  | Entry.M_lpm p ->
      [ ("kind", Json.str "lpm"); ("v", bv_to_json (Prefix.value p));
        ("len", Json.int (Prefix.len p)) ]
  | Entry.M_ternary t ->
      [ ("kind", Json.str "ternary"); ("v", bv_to_json (Ternary.value t));
        ("mask", bv_to_json (Ternary.mask t)) ]
  | Entry.M_optional None -> [ ("kind", Json.str "optional") ]
  | Entry.M_optional (Some v) ->
      [ ("kind", Json.str "optional"); ("v", bv_to_json v) ]

let invocation_to_json (ai : Entry.action_invocation) =
  [ ("name", Json.str ai.ai_name);
    ("args", Json.arr (List.map bv_to_json ai.ai_args)) ]

let action_to_json = function
  | Entry.Single ai -> Json.obj (("kind", Json.str "single") :: invocation_to_json ai)
  | Entry.Weighted buckets ->
      Json.obj
        [ ("kind", Json.str "weighted");
          ( "buckets",
            Json.arr
              (List.map
                 (fun (ai, w) ->
                   Json.obj (invocation_to_json ai @ [ ("weight", Json.int w) ]))
                 buckets) ) ]

let entry_to_json (e : Entry.t) =
  Json.obj
    [ ("table", Json.str e.e_table); ("priority", Json.int e.e_priority);
      ( "matches",
        Json.arr
          (List.map
             (fun (fm : Entry.field_match) ->
               Json.obj
                 (("field", Json.str fm.fm_field)
                 :: match_value_fields fm.fm_value))
             e.e_matches) );
      ("action", action_to_json e.e_action) ]

let update_to_json (u : Request.update) =
  Json.obj
    [ ("op", Json.str (Request.op_to_string u.op)); ("entry", entry_to_json u.entry) ]

let to_json = function
  | Control c ->
      Json.obj
        [ ("type", Json.str "control"); ("seed", Json.int c.cr_seed);
          ("prefix", Json.arr (List.map entry_to_json c.cr_prefix));
          ("batch", Json.arr (List.map update_to_json c.cr_batch)) ]
  | Data d ->
      Json.obj
        [ ("type", Json.str "data"); ("port", Json.int d.dr_port);
          ("bytes", Json.str (hex_of_bytes d.dr_bytes));
          ("entries", Json.arr (List.map entry_to_json d.dr_entries)) ]

(* --- parse ----------------------------------------------------------------- *)

(* A tiny result-monad layer over Jsonp accessors: every shape error names
   the field it occurred under, which is all the debugging a corrupt corpus
   line needs. *)
let ( let* ) r f = Result.bind r f

let field name conv j =
  match Jsonp.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" name))

let map_all f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok y -> go (y :: acc) rest | Error _ as e -> e)
  in
  go [] xs

let bv_of_json j =
  match Jsonp.to_str j with
  | None -> Error "bitvector is not a string"
  | Some s -> (
      match String.index_opt s ':' with
      | None -> Error (Printf.sprintf "bitvector %S lacks width prefix" s)
      | Some i -> (
          let w = String.sub s 0 i in
          let hex = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt w with
          | Some width when width >= 1 -> (
              match Bitvec.of_hex_string ~width hex with
              | v -> Ok v
              | exception _ -> Error (Printf.sprintf "bad bitvector %S" s))
          | _ -> Error (Printf.sprintf "bad bitvector width in %S" s)))

let bv_field name j =
  match Jsonp.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> bv_of_json v

let match_value_of_json j =
  let* kind = field "kind" Jsonp.to_str j in
  match kind with
  | "exact" ->
      let* v = bv_field "v" j in
      Ok (Entry.M_exact v)
  | "lpm" ->
      let* v = bv_field "v" j in
      let* len = field "len" Jsonp.to_int j in
      if len < 0 || len > Bitvec.width v then Error "bad lpm length"
      else Ok (Entry.M_lpm (Prefix.make v len))
  | "ternary" ->
      let* v = bv_field "v" j in
      let* mask = bv_field "mask" j in
      if Bitvec.width v <> Bitvec.width mask then Error "ternary width mismatch"
      else Ok (Entry.M_ternary (Ternary.make ~value:v ~mask))
  | "optional" -> (
      match Jsonp.member "v" j with
      | None -> Ok (Entry.M_optional None)
      | Some v ->
          let* v = bv_of_json v in
          Ok (Entry.M_optional (Some v)))
  | other -> Error (Printf.sprintf "unknown match kind %S" other)

let invocation_of_json j =
  let* name = field "name" Jsonp.to_str j in
  let* args = field "args" Jsonp.to_arr j in
  let* args = map_all bv_of_json args in
  Ok { Entry.ai_name = name; ai_args = args }

let action_of_json j =
  let* kind = field "kind" Jsonp.to_str j in
  match kind with
  | "single" ->
      let* ai = invocation_of_json j in
      Ok (Entry.Single ai)
  | "weighted" ->
      let* buckets = field "buckets" Jsonp.to_arr j in
      let* buckets =
        map_all
          (fun b ->
            let* ai = invocation_of_json b in
            let* w = field "weight" Jsonp.to_int b in
            Ok (ai, w))
          buckets
      in
      Ok (Entry.Weighted buckets)
  | other -> Error (Printf.sprintf "unknown action kind %S" other)

let entry_of_json j =
  let* table = field "table" Jsonp.to_str j in
  let* priority = field "priority" Jsonp.to_int j in
  let* matches = field "matches" Jsonp.to_arr j in
  let* matches =
    map_all
      (fun m ->
        let* f = field "field" Jsonp.to_str m in
        let* mv = match_value_of_json m in
        Ok { Entry.fm_field = f; fm_value = mv })
      matches
  in
  let* action =
    match Jsonp.member "action" j with
    | None -> Error "missing field \"action\""
    | Some a -> action_of_json a
  in
  Ok (Entry.make ~priority ~table ~matches action)

let update_of_json j =
  let* op = field "op" Jsonp.to_str j in
  let* op =
    match op with
    | "INSERT" -> Ok Request.Insert
    | "MODIFY" -> Ok Request.Modify
    | "DELETE" -> Ok Request.Delete
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  let* entry =
    match Jsonp.member "entry" j with
    | None -> Error "missing field \"entry\""
    | Some e -> entry_of_json e
  in
  Ok { Request.op; entry }

let of_json j =
  let* typ = field "type" Jsonp.to_str j in
  match typ with
  | "control" ->
      let* seed = field "seed" Jsonp.to_int j in
      let* prefix = field "prefix" Jsonp.to_arr j in
      let* prefix = map_all entry_of_json prefix in
      let* batch = field "batch" Jsonp.to_arr j in
      let* batch = map_all update_of_json batch in
      Ok (Control { cr_seed = seed; cr_prefix = prefix; cr_batch = batch })
  | "data" ->
      let* port = field "port" Jsonp.to_int j in
      let* bytes = field "bytes" Jsonp.to_str j in
      let* bytes = bytes_of_hex bytes in
      let* entries = field "entries" Jsonp.to_arr j in
      let* entries = map_all entry_of_json entries in
      Ok (Data { dr_entries = entries; dr_port = port; dr_bytes = bytes })
  | other -> Error (Printf.sprintf "unknown repro type %S" other)
