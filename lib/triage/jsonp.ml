(* The parser moved to lib/telemetry so that observability code (trace
   stitching, [switchv top]) can read JSON without depending on triage;
   this shim keeps [Switchv_triage.Jsonp] working for existing callers. *)
include Switchv_telemetry.Jsonp
