(** Re-export of {!Switchv_telemetry.Jsonp}.

    The dependency-free JSON parser originally lived here for the corpus
    loader; it moved to [lib/telemetry] (the bottom of the dependency DAG)
    when the observability layer also needed to read JSON. This module
    keeps the historical [Switchv_triage.Jsonp] path alive. *)

type t = Switchv_telemetry.Jsonp.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val member : string -> t -> t option
val to_str : t -> string option
val to_int : t -> int option
val to_num : t -> float option
val to_bool : t -> bool option
val to_arr : t -> t list option
val to_string : t -> string
