(** Structured, serializable reproducers (the triage subsystem's core
    artifact).

    §6 of the paper reports that {e reproducing} a miscompare is the
    dominant human cost of a finding. A reproducer captures, at the
    incident site, exactly the inputs needed to re-trigger the divergence
    against a freshly provisioned stack:

    - control plane: the installed-entry prefix (the switch state the
      campaign had built up), the triggering Write batch, and the campaign
      seed;
    - data plane: the installed entry set, the ingress port, and the exact
      wire bytes of the test packet.

    Reproducers are plain data — serializable to the hand-rolled JSON the
    corpus stores, minimizable by {!Ddmin}, replayable by {!Corpus}. *)

module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request

type control = {
  cr_seed : int;            (** campaign RNG seed (provenance) *)
  cr_prefix : Entry.t list; (** switch state before the failing batch *)
  cr_batch : Request.update list;  (** the triggering Write batch *)
}

type data = {
  dr_entries : Entry.t list;  (** full installed entry set *)
  dr_port : int;              (** ingress port the packet arrived on *)
  dr_bytes : string;          (** exact wire bytes injected *)
}

type t = Control of control | Data of data

val size : t -> int
(** Number of minimizable elements: prefix + batch updates for control,
    entries for data. The triage bench's shrinkage factor is
    [size raw / size minimized]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** One-line summary (sizes, not contents). *)

val to_json : t -> string
(** JSON object fragment (see DESIGN.md "Triage" for the schema). *)

val of_json : Jsonp.t -> (t, string) result

(** {1 Wire-byte helpers} (shared with tests) *)

val hex_of_bytes : string -> string
val bytes_of_hex : string -> (string, string) result
