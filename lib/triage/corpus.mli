(** The replayable regression corpus: an append-only JSONL archive of
    reproducers.

    Every line is one archived incident: the model it was found on, the
    detector and kind, the fingerprint, the catalogue fault ids that were
    seeded when it was found (provenance metadata), and the full
    {!Repro.t}. The format is hand-rolled JSON like [Report.to_json];
    {!Jsonp} reads it back.

    Replay is the regression contract (after P4Testgen's deterministic
    test-artifact discipline): [replay] re-runs a record's reproducer
    against a freshly provisioned stack and reports whether the archived
    divergence still occurs. A fixed switch stack replays clean; a
    regressed one does not. *)

module Stack = Switchv_switch.Stack

type record = {
  c_program : string;        (** model name, e.g. ["middleblock"] *)
  c_detector : string;       (** ["p4-fuzzer"] or ["p4-symbolic"] *)
  c_kind : string;           (** incident kind *)
  c_fingerprint : Fingerprint.t;
  c_faults : string list;    (** catalogue fault ids seeded at capture *)
  c_repro : Repro.t;
}

val record_to_json : record -> string
(** One JSONL line (no trailing newline). *)

val record_of_json : string -> (record, string) result

val save : ?append:bool -> string -> record list -> unit
(** Write records to the file, one JSON object per line. [append]
    (default true — the corpus is append-only) adds to an existing file. *)

val load : string -> (record list, string) result
(** Parse every non-empty line; the first malformed line fails the whole
    load (a corrupt corpus should be loud, not silently shorter). *)

(** {1 Replay} *)

type outcome = {
  o_reproduced : bool;   (** the archived divergence happened again *)
  o_incidents : int;     (** distinct replay observations (>= 1 if reproduced) *)
  o_detail : string;     (** first observation, for the replay report *)
}

val replay_repro : Stack.t -> Repro.t -> outcome
(** Re-run one reproducer on a freshly created stack (caller provisions
    faults; the stack must not have had its P4Info pushed yet).

    Control reproducers re-push the P4Info, re-install the prefix, then
    submit the triggering batch — every step judged by a fresh
    {!Switchv_oracle.Oracle}. Data reproducers re-install the entry set
    and inject the archived bytes, comparing the stack's behaviour against
    the reference interpreter over the same entries. *)

val replay : mk_stack:(unit -> Stack.t) -> record -> outcome
(** [replay ~mk_stack record] = [replay_repro (mk_stack ()) record.c_repro]. *)
