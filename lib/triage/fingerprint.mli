(** Stable incident signatures and clustering.

    The paper's Table 1 distinguishes {e miscompares} (one per failing
    probe — hundreds per night) from {e bugs} (root causes — a handful).
    A fingerprint is a deterministic signature of an incident's root-cause
    surface: the detector, the incident kind, and whichever structured
    context is available (table, mutation, goal), with volatile material —
    hex values, packet bytes, entry indices, port numbers — normalized
    out. Two miscompares of the same underlying fault fingerprint
    identically across runs, seeds, and workloads, so dedup collapses a
    night's incident flood into per-bug clusters. *)

type t = string
(** Rendered signature, e.g.
    ["p4-symbolic|behavior divergence|t=ipv4_table"]. Opaque but stable:
    corpus records archive it verbatim. *)

val make :
  detector:string ->
  kind:string ->
  ?table:string ->
  ?goal:string ->
  ?mutation:string ->
  ?hop:string ->
  detail:string ->
  unit ->
  t
(** Build a signature from the structured context when present; the
    normalized goal id (for custom goals with no table) or the normalized
    detail string is used only as a last resort, so enriching an incident
    with context strictly improves dedup quality. [hop] is the fabric hop
    dimension (["sw<k>"], the switch an incident was localized to by
    hop-differential triage); it is embedded raw — digits intact — so
    incidents on different switches never cluster together. *)

val normalize : string -> string
(** Replace volatile substrings with ["#"]: hex runs of length >= 4
    containing a decimal digit, [0x]-prefixed literals, and standalone
    decimal runs (ones not embedded in an identifier, so ["ipv4_table"]
    survives but ["port 3"] becomes ["port #"]). Idempotent. *)

val cluster : ('a -> t) -> 'a list -> ('a * t * int) list
(** [cluster fp xs] groups [xs] by fingerprint, preserving first-seen
    order; each group is reported as (first member, fingerprint, size). *)
