type t = string

let is_dec c = c >= '0' && c <= '9'
let is_hex c = is_dec c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident c = is_hex c || c = '_' || (c >= 'g' && c <= 'z') || (c >= 'G' && c <= 'Z')

let normalize s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let prev_ident = !i > 0 && is_ident s.[!i - 1] in
    if (not prev_ident) && c = '0' && !i + 1 < n && s.[!i + 1] = 'x' then begin
      (* 0x literal: swallow the hex run whatever its length *)
      let j = ref (!i + 2) in
      while !j < n && is_hex s.[!j] do incr j done;
      Buffer.add_char buf '#';
      i := !j
    end
    else if (not prev_ident) && is_hex c then begin
      let j = ref !i in
      let has_dec = ref false in
      while !j < n && is_hex s.[!j] do
        if is_dec s.[!j] then has_dec := true;
        incr j
      done;
      let run_len = !j - !i in
      let followed_by_ident = !j < n && is_ident s.[!j] in
      let all_dec =
        let rec go k = k >= !j || (is_dec s.[k] && go (k + 1)) in
        go !i
      in
      (* A volatile token is a maximal run not glued to an identifier:
         either a pure decimal (any length — batch indices, ports) or a
         hex blob of length >= 4 that contains a digit (addresses, MACs,
         digests). "deadbeef" without the digit rule would false-match
         words like "cafe"; requiring a digit keeps English alone. *)
      if (not followed_by_ident) && (all_dec || (run_len >= 4 && !has_dec)) then begin
        Buffer.add_char buf '#';
        (* collapse "#:#:#..." sequences from MACs/IPv6 into one mark *)
        i := !j
      end
      else begin
        Buffer.add_string buf (String.sub s !i run_len);
        i := !j
      end
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  (* Collapse runs of #-separated-by-punctuation ("#.#.#.#", "#:#") so
     address shape differences do not split clusters. *)
  let s = Buffer.contents buf in
  let out = Buffer.create (String.length s) in
  let k = ref 0 in
  let len = String.length s in
  while !k < len do
    if
      s.[!k] = '#'
      && !k + 2 < len
      && (s.[!k + 1] = '.' || s.[!k + 1] = ':')
      && s.[!k + 2] = '#'
    then begin
      (* skip the ".#" / ":#"; the leading '#' is emitted once *)
      Buffer.add_char out '#';
      k := !k + 3;
      while
        !k + 1 < len && (s.[!k] = '.' || s.[!k] = ':') && s.[!k + 1] = '#'
      do
        k := !k + 2
      done
    end
    else begin
      Buffer.add_char out s.[!k];
      incr k
    end
  done;
  Buffer.contents out

let make ~detector ~kind ?table ?goal ?mutation ?hop ~detail () =
  let parts =
    [ detector; kind ]
    @ (match table with Some t -> [ "t=" ^ t ] | None -> [])
    @ (match mutation with Some m -> [ "m=" ^ m ] | None -> [])
    (* The hop is raw, not normalized: "sw1" must keep its digit — the
       whole point of the hop dimension is that incidents localized to
       different switches land in different clusters. *)
    @ (match hop with Some h -> [ "h=" ^ h ] | None -> [])
    @
    (* Structured context pins the cluster; free text only as fallback. *)
    match (table, goal) with
    | Some _, _ -> []
    | None, Some g -> [ "g=" ^ normalize g ]
    | None, None -> [ "d=" ^ normalize detail ]
  in
  String.concat "|" parts

let cluster fp xs =
  let order = ref [] in
  let counts : (t, 'a * int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let f = fp x in
      match Hashtbl.find_opt counts f with
      | Some (_, n) -> incr n
      | None ->
          Hashtbl.add counts f (x, ref 1);
          order := f :: !order)
    xs;
  List.rev_map
    (fun f ->
      let x, n = Hashtbl.find counts f in
      (x, f, !n))
    !order
