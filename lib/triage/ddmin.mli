(** Delta-debugging minimization (Zeller & Hildebrandt's ddmin).

    SwitchV's raw reproducers are whatever the campaign happened to be
    doing when the oracle fired: a 50-update Write batch, a workload of
    hundreds of entries. Most of that is noise; the human debugging the
    incident wants the two updates that actually interact. [run] shrinks a
    failing input to a 1-minimal sublist — removing any single remaining
    element makes the failure disappear — by binary-search-style partition
    testing, probing the predicate O(k·log n) times in the common case
    (worst case O(n²), bounded by [max_probes]).

    The predicate is expected to be {e deterministic}: triage replays run
    against freshly provisioned simulated stacks with fixed seeds, so a
    probe's verdict never flips between calls. *)

val run : ?max_probes:int -> check:('a list -> bool) -> 'a list -> 'a list
(** [run ~check xs] with [check xs = true] ("still fails") returns a
    sublist [ys] of [xs], in original order, with [check ys = true].

    If the probe budget ([max_probes], default 512) runs out, the best
    failing sublist found so far is returned — still failing, possibly not
    1-minimal. If [check xs] is [false] (the caller's reproducer is flaky
    or vacuous), [xs] is returned unchanged and no minimization happens.

    Every probe increments the [triage.ddmin_probes] telemetry counter;
    the counter is registered (created at 0) even when no probe runs. *)

val run_stats :
  ?max_probes:int -> check:('a list -> bool) -> 'a list -> 'a list * int
(** Like {!run}, also returning the number of probes spent. *)
