(** Deterministic per-switch route programming for fabric campaigns.

    Addressing plan: host [i] hangs off switch [i]'s {!Topo.edge_port}
    with address [10.i.0.1] (prefix [10.i.0.0/24]) and MAC {!host_mac};
    switch [i]'s router MAC is {!router_mac}. Every switch gets one VRF,
    one router-interface/neighbor/nexthop triple per forwarding target
    (its own host plus each fabric neighbor), an L3-admit entry for its
    own router MAC, a mirror session pointed at the edge port (with an
    ingress-ACL mirror rule for DSCP {!mirror_dscp} traffic when the model
    has a [dscp] ACL key), and one [ipv4_table] route per host prefix
    pointing at the BFS next hop from {!Topo.next_hop}.

    Entries are emitted in dependency order (references precede
    referents), so installing them sequentially never dangles, and are a
    pure function of (topology, program, switch) — fabric campaigns stay
    byte-deterministic. Tables absent from the program are skipped. *)

module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix

val router_mac : int -> Bitvec.t
(** 48-bit MAC owned by switch [i]; routed traffic must be addressed to
    it to pass the L3-admit table. *)

val host_mac : int -> Bitvec.t
(** 48-bit MAC of the host behind switch [i]'s edge port. *)

val router_mac_string : int -> string
val host_mac_string : int -> string
(** The same MACs as ["aa:bb:..."] strings for packet builders. *)

val host_ip : int -> string
(** ["10.<i>.0.1"] (dotted quad). *)

val host_prefix : int -> Prefix.t
(** [10.<i>.0.0/24]. *)

val mirror_dscp : int
(** DSCP value (46) whose IPv4 traffic the ingress ACL mirrors to the
    edge port, when the model supports it. *)

val entries : Topo.t -> Ast.program -> switch:int -> Entry.t list
