(** The fabric forwarding loop.

    A fabric is an array of {!node}s (one per switch) plus a {!Topo.t}
    link table. {!forward} injects raw bytes at one (switch, port) and
    carries each switch's {!Interp.behavior} output across links until the
    packet leaves the fabric, is dropped, reaches a crashed switch, or
    exhausts the hop budget (which turns forwarding loops into a reported
    disposition instead of divergence).

    Nodes abstract over the two sides of a differential campaign: a
    {!stack_node} wraps a simulated {!Stack.t} (the "switch under test"),
    a {!model_node} wraps a P4 interpreter config (the reference). Both
    traverse the same link table, so per-hop traces line up
    hop-for-hop. *)

module Interp = Switchv_bmv2.Interp
module Stack = Switchv_switch.Stack

type node = {
  n_id : int;
  n_crashed : unit -> bool;
  n_inject : ingress_port:int -> string -> Interp.behavior;
}

val stack_node : ?coverage:bool -> int -> Stack.t -> node
(** Wraps [Stack.inject]. When [coverage] (default true), each injection
    runs under a scratch telemetry registry whose contents are absorbed
    into the ambient registry unchanged, and additionally every [cov.*]
    counter is re-emitted under [topo.sw.<id>.] — the per-switch coverage
    namespace folded into the obs report. *)

val model_node : ?compile:bool -> int -> Interp.config -> node
(** Wraps the evaluator; never crashed; a parse failure becomes a drop.
    [compile] (default [true]) serves the node from the staged evaluator;
    [false] is the interpreted reference path ([--no-compile]). *)

type hop = {
  h_switch : int;
  h_ingress : int;  (** ingress port at this switch; 0 for packet-out *)
  h_bytes_in : string;  (** the bytes as they arrived at this switch *)
  h_behavior : Interp.behavior;
}

type disposition =
  | Delivered of { d_switch : int; d_port : int; d_bytes : string }
      (** Egressed on an unlinked (edge) port — left the fabric. *)
  | Dropped of { d_switch : int; d_punted : bool }
  | Dead_hop of int  (** Reached a crashed switch; dropped there. *)
  | Budget_exhausted of int
      (** Hop budget ran out at this switch — a forwarding loop. *)

type trace = { t_hops : hop list; t_disposition : disposition }

val default_budget : Topo.t -> int
(** [4 * switches + 8] — generous for any shortest path, small enough to
    cut loops quickly. *)

val forward :
  ?budget:int -> Topo.t -> node array -> switch:int -> port:int -> string ->
  trace
(** Inject bytes at [switch]'s [port] and follow the link table. *)

val forward_from :
  ?budget:int -> Topo.t -> node array -> switch:int -> ingress_port:int ->
  bytes:string -> Interp.behavior -> trace
(** Continue from a precomputed first-hop behavior (e.g. a packet-out
    processed by [Stack.packet_out]); the first hop is recorded with the
    given [ingress_port] and [bytes]. *)

val pp_disposition : Format.formatter -> disposition -> unit
val pp_trace : Format.formatter -> trace -> unit
