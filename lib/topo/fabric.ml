module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module Stack = Switchv_switch.Stack
module Telemetry = Switchv_telemetry.Telemetry

type node = {
  n_id : int;
  n_crashed : unit -> bool;
  n_inject : ingress_port:int -> string -> Interp.behavior;
}

let drop_behavior bytes =
  { Interp.b_egress = None; b_punted = false; b_mirrors = [];
    b_packet = bytes; b_trace = [ ("<fabric>", "parse-failure: dropped") ] }

let cov_prefix = "cov."

let stack_node ?(coverage = true) id stack =
  let inject ~ingress_port bytes =
    if not coverage then Stack.inject stack ~ingress_port bytes
    else begin
      (* Run under a scratch registry so this hop's counters can be both
         absorbed unchanged (global totals stay additive and fork-delta
         compatible) and re-emitted under the per-switch namespace. *)
      let ambient = Telemetry.get () in
      let scratch = Telemetry.create () in
      let b =
        Telemetry.with_registry scratch (fun () ->
            Stack.inject stack ~ingress_port bytes)
      in
      let ex = Telemetry.export scratch in
      Telemetry.absorb ambient ex;
      List.iter
        (fun (name, n) ->
          let pl = String.length cov_prefix in
          if String.length name > pl && String.sub name 0 pl = cov_prefix then
            Telemetry.incr ~n ambient
              (Printf.sprintf "topo.sw.%d.%s" id name))
        ex.Telemetry.ex_counters;
      b
    end
  in
  { n_id = id; n_crashed = (fun () -> Stack.crashed stack); n_inject = inject }

let model_node ?(compile = true) id cfg =
  let run = if compile then Compile.run else Interp.run in
  let inject ~ingress_port bytes =
    try run cfg ~ingress_port bytes
    with Interp.Parse_failure _ -> drop_behavior bytes
  in
  { n_id = id; n_crashed = (fun () -> false); n_inject = inject }

type hop = {
  h_switch : int;
  h_ingress : int;
  h_bytes_in : string;
  h_behavior : Interp.behavior;
}

type disposition =
  | Delivered of { d_switch : int; d_port : int; d_bytes : string }
  | Dropped of { d_switch : int; d_punted : bool }
  | Dead_hop of int
  | Budget_exhausted of int

type trace = { t_hops : hop list; t_disposition : disposition }

let default_budget topo = (4 * Topo.switches topo) + 8

(* [enter] processes arrival at a switch; [leave] follows the behavior's
   egress through the link table. The budget counts processed hops. *)
let run_loop topo (nodes : node array) ~start =
  let rec enter acc remaining sw port bytes =
    if nodes.(sw).n_crashed () then
      { t_hops = List.rev acc; t_disposition = Dead_hop sw }
    else if remaining <= 0 then
      { t_hops = List.rev acc; t_disposition = Budget_exhausted sw }
    else
      let b = nodes.(sw).n_inject ~ingress_port:port bytes in
      let hop =
        { h_switch = sw; h_ingress = port; h_bytes_in = bytes; h_behavior = b }
      in
      leave (hop :: acc) (remaining - 1) sw b
  and leave acc remaining sw (b : Interp.behavior) =
    match b.Interp.b_egress with
    | None ->
        { t_hops = List.rev acc;
          t_disposition = Dropped { d_switch = sw; d_punted = b.Interp.b_punted } }
    | Some out -> (
        match Topo.peer topo ~switch:sw ~port:out with
        | None ->
            { t_hops = List.rev acc;
              t_disposition =
                Delivered { d_switch = sw; d_port = out; d_bytes = b.Interp.b_packet } }
        | Some (next_sw, next_port) ->
            enter acc remaining next_sw next_port b.Interp.b_packet)
  in
  start enter leave

let forward ?budget topo nodes ~switch ~port bytes =
  let budget = match budget with Some b -> b | None -> default_budget topo in
  run_loop topo nodes ~start:(fun enter _leave ->
      enter [] budget switch port bytes)

let forward_from ?budget topo nodes ~switch ~ingress_port ~bytes behavior =
  let budget = match budget with Some b -> b | None -> default_budget topo in
  run_loop topo nodes ~start:(fun _enter leave ->
      if nodes.(switch).n_crashed () then
        { t_hops = []; t_disposition = Dead_hop switch }
      else
        let hop =
          { h_switch = switch; h_ingress = ingress_port; h_bytes_in = bytes;
            h_behavior = behavior }
        in
        leave [ hop ] (budget - 1) switch behavior)

let pp_disposition ppf = function
  | Delivered { d_switch; d_port; d_bytes } ->
      Format.fprintf ppf "delivered at sw%d port %d (%d bytes)" d_switch
        d_port (String.length d_bytes)
  | Dropped { d_switch; d_punted } ->
      Format.fprintf ppf "dropped at sw%d%s" d_switch
        (if d_punted then " (punted)" else "")
  | Dead_hop sw -> Format.fprintf ppf "dead hop at crashed sw%d" sw
  | Budget_exhausted sw ->
      Format.fprintf ppf "hop budget exhausted at sw%d (forwarding loop)" sw

let pp_trace ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun h ->
      Format.fprintf ppf "sw%d in:%d -> %a@," h.h_switch h.h_ingress
        Interp.pp_behavior h.h_behavior)
    t.t_hops;
  Format.fprintf ppf "%a@]" pp_disposition t.t_disposition
