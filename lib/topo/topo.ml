type shape = Line | Star | Mesh | Leaf_spine

let shape_to_string = function
  | Line -> "line"
  | Star -> "star"
  | Mesh -> "mesh"
  | Leaf_spine -> "leaf_spine"

let shape_of_string s =
  match String.lowercase_ascii s with
  | "line" -> Ok Line
  | "star" -> Ok Star
  | "mesh" -> Ok Mesh
  | "leaf_spine" | "leaf-spine" | "leafspine" -> Ok Leaf_spine
  | other -> Error (Printf.sprintf "unknown topology shape %S" other)

let all_shapes = [ Line; Star; Mesh; Leaf_spine ]

type t = {
  t_shape : shape;
  t_switches : int;
  t_spines : int;
  t_neighbors : int list array;          (* ascending, per switch *)
  t_links : ((int * int) * (int * int)) list;
}

let edge_port = 100

(* Undirected adjacency pairs (a, b) with a < b, sorted. *)
let adjacency shape ~spines n =
  match shape with
  | Line -> List.init (max 0 (n - 1)) (fun i -> (i, i + 1))
  | Star -> List.init (max 0 (n - 1)) (fun i -> (0, i + 1))
  | Mesh ->
      List.concat
        (List.init n (fun a -> List.init (n - a - 1) (fun k -> (a, a + 1 + k))))
  | Leaf_spine ->
      List.concat
        (List.init spines (fun s ->
             List.init (n - spines) (fun l -> (s, spines + l))))

let build ?spines shape n =
  if n < 1 || n > 64 then
    invalid_arg (Printf.sprintf "Topo.build: switch count %d out of [1, 64]" n);
  let spines =
    match shape with
    | Leaf_spine ->
        let s =
          match spines with Some s -> s | None -> if n >= 4 then 2 else 1
        in
        if s < 1 || s >= n then
          invalid_arg
            (Printf.sprintf
               "Topo.build: %d spines leaves no leaves among %d switches" s n)
        else s
    | Line | Star | Mesh -> 0
  in
  let pairs = adjacency shape ~spines n in
  let neigh = Array.make n [] in
  List.iter
    (fun (a, b) ->
      neigh.(a) <- b :: neigh.(a);
      neigh.(b) <- a :: neigh.(b))
    pairs;
  Array.iteri (fun i l -> neigh.(i) <- List.sort_uniq compare l) neigh;
  let port sw peer_sw =
    let rec rank k = function
      | [] -> invalid_arg "Topo.build: internal port allocation"
      | x :: _ when x = peer_sw -> 1 + k
      | _ :: tl -> rank (k + 1) tl
    in
    rank 0 neigh.(sw)
  in
  let links =
    List.sort compare
      (List.map (fun (a, b) -> ((a, port a b), (b, port b a))) pairs)
  in
  { t_shape = shape; t_switches = n; t_spines = spines;
    t_neighbors = neigh; t_links = links }

let shape t = t.t_shape
let switches t = t.t_switches
let spines t = t.t_spines
let links t = t.t_links
let link_count t = List.length t.t_links

let neighbors t sw =
  if sw < 0 || sw >= t.t_switches then
    invalid_arg (Printf.sprintf "Topo.neighbors: switch %d" sw)
  else t.t_neighbors.(sw)

let link_port t ~src ~dst =
  let rec rank k = function
    | [] -> None
    | x :: _ when x = dst -> Some (1 + k)
    | _ :: tl -> rank (k + 1) tl
  in
  if src < 0 || src >= t.t_switches then None else rank 0 t.t_neighbors.(src)

let peer t ~switch ~port =
  List.find_map
    (fun ((a, pa), (b, pb)) ->
      if a = switch && pa = port then Some (b, pb)
      else if b = switch && pb = port then Some (a, pa)
      else None)
    t.t_links

(* Deterministic BFS: the queue is processed in insertion order and each
   frontier expands its neighbors in ascending index order, so the parent
   of every node is stable and ties break toward lower switch indices. *)
let bfs_parents t src =
  let n = t.t_switches in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.add v q
        end)
      t.t_neighbors.(u)
  done;
  parent

let path t ~src ~dst =
  if src < 0 || src >= t.t_switches || dst < 0 || dst >= t.t_switches then None
  else if src = dst then Some [ src ]
  else
    let parent = bfs_parents t src in
    if parent.(dst) < 0 then None
    else
      let rec walk acc v = if v = src then v :: acc else walk (v :: acc) parent.(v) in
      Some (walk [] dst)

let next_hop t ~src ~dst =
  match path t ~src ~dst with
  | Some (_ :: hop :: _) -> Some hop
  | Some _ | None -> None

let pp ppf t =
  Format.fprintf ppf "@[<v>%s fabric: %d switches, %d links"
    (shape_to_string t.t_shape) t.t_switches (link_count t);
  List.iter
    (fun ((a, pa), (b, pb)) ->
      Format.fprintf ppf "@,  sw%d.%d <-> sw%d.%d" a pa b pb)
    t.t_links;
  Format.fprintf ppf "@]"
