(** Declarative multi-switch topologies.

    A topology wires [n] switches together through a link table mapping
    (switch, port) to (peer switch, peer port). Ports are allocated
    deterministically: each switch numbers its fabric-facing ports
    [1 .. degree] in ascending order of the peer's switch index, and every
    switch additionally exposes one host-facing {!edge_port} that is never
    part of the link table — packets egressing there leave the fabric.

    The same builder is used for the simulated stacks and for the P4 model
    references, so both sides of a differential fabric campaign see an
    identical wiring. *)

type shape =
  | Line        (** switch [i] links to [i+1] *)
  | Star        (** switch 0 is the hub; every other switch links to it *)
  | Mesh        (** every pair of switches is linked *)
  | Leaf_spine  (** spines [0..s-1], leaves [s..n-1], full bipartite *)

val shape_to_string : shape -> string

val shape_of_string : string -> (shape, string) result
(** Accepts ["line"], ["star"], ["mesh"], ["leaf_spine"]/["leaf-spine"]. *)

val all_shapes : shape list

type t

val edge_port : int
(** The host-facing port present on every switch (100). Never linked. *)

val build : ?spines:int -> shape -> int -> t
(** [build shape n] wires [n] switches (indices [0..n-1]).
    [?spines] only applies to {!Leaf_spine} (default: 2 when [n >= 4],
    else 1). Raises [Invalid_argument] when [n < 1], [n > 64], or the
    spine count does not leave at least one leaf. *)

val shape : t -> shape
val switches : t -> int
val spines : t -> int
(** 0 for non-leaf-spine shapes. *)

val links : t -> ((int * int) * (int * int)) list
(** Undirected links as [((sw_a, port_a), (sw_b, port_b))] with
    [sw_a < sw_b], sorted. *)

val link_count : t -> int

val neighbors : t -> int -> int list
(** Ascending switch indices adjacent to the given switch. *)

val link_port : t -> src:int -> dst:int -> int option
(** The port on [src] that faces [dst], when they are adjacent. *)

val peer : t -> switch:int -> port:int -> (int * int) option
(** Link-table lookup: [None] means the port is unlinked (an edge port),
    so an egress there is a delivery out of the fabric. *)

val next_hop : t -> src:int -> dst:int -> int option
(** First switch on the deterministic shortest path (BFS, ascending
    neighbor order, so ties break toward the lowest switch index).
    [None] when [dst] is unreachable or [src = dst]. *)

val path : t -> src:int -> dst:int -> int list option
(** Inclusive switch sequence [src; ...; dst] along the same deterministic
    shortest path. [Some [src]] when [src = dst]. *)

val pp : Format.formatter -> t -> unit
