module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary

let mac_of_int64 base i =
  Bitvec.of_int64 ~width:48 (Int64.add base (Int64.of_int (i + 1)))

let router_mac i = mac_of_int64 0x0210_0000_0000L i
let host_mac i = mac_of_int64 0x0220_0000_0000L i

let mac_string bv =
  let hex = Bitvec.to_hex_string bv in
  let hex = String.make (12 - String.length hex) '0' ^ hex in
  String.concat ":"
    (List.init 6 (fun i -> String.sub hex (2 * i) 2))

let router_mac_string i = mac_string (router_mac i)
let host_mac_string i = mac_string (host_mac i)

let host_ip i = Printf.sprintf "10.%d.0.1" (i land 0xff)

let host_prefix i =
  Prefix.make
    (Bitvec.of_int ~width:32 ((10 lsl 24) lor ((i land 0xff) lsl 16)))
    24

let mirror_dscp = 46

(* Forwarding targets of one switch: its own host plus each neighbor.
   The shared object id doubles as RIF/neighbor/nexthop id. *)
type target = { tg_id : int; tg_port : int; tg_mac : Bitvec.t }

let entries topo program ~switch =
  let info = P4info.of_program program in
  let has t = P4info.find_table info t <> None in
  let bv16 n = Bitvec.of_int ~width:16 n in
  let exact16 n = Entry.M_exact (bv16 n) in
  let single name args = Entry.Single { Entry.ai_name = name; ai_args = args } in
  let fm field value = { Entry.fm_field = field; fm_value = value } in
  let tern1 v = Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 v)) in
  let out = ref [] in
  let emit e = out := e :: !out in
  let neighbors = Topo.neighbors topo switch in
  let host_target =
    { tg_id = 1; tg_port = Topo.edge_port; tg_mac = host_mac switch }
  in
  let via_targets =
    List.mapi
      (fun rank peer ->
        (peer, { tg_id = 2 + rank; tg_port = 1 + rank; tg_mac = router_mac peer }))
      neighbors
  in
  let targets = host_target :: List.map snd via_targets in
  let routing =
    has "vrf_table" && has "router_interface_table" && has "neighbor_table"
    && has "nexthop_table" && has "ipv4_table"
  in
  if routing then begin
    emit
      (Entry.make ~table:"vrf_table"
         ~matches:[ fm "vrf_id" (exact16 1) ]
         (single "no_action" []));
    List.iter
      (fun tg ->
        emit
          (Entry.make ~table:"router_interface_table"
             ~matches:[ fm "router_interface_id" (exact16 tg.tg_id) ]
             (single "set_port_and_src_mac" [ bv16 tg.tg_port; router_mac switch ]));
        emit
          (Entry.make ~table:"neighbor_table"
             ~matches:
               [ fm "router_interface_id" (exact16 tg.tg_id);
                 fm "neighbor_id" (exact16 tg.tg_id) ]
             (single "set_dst_mac" [ tg.tg_mac ]));
        emit
          (Entry.make ~table:"nexthop_table"
             ~matches:[ fm "nexthop_id" (exact16 tg.tg_id) ]
             (single "set_ip_nexthop" [ bv16 tg.tg_id; bv16 tg.tg_id ])))
      targets
  end;
  if has "mirror_session_table" then
    emit
      (Entry.make ~table:"mirror_session_table"
         ~matches:[ fm "mirror_session_id" (exact16 1) ]
         (single "set_port_and_src_mac" [ bv16 Topo.edge_port; router_mac switch ]));
  if routing && has "acl_pre_ingress_table" then
    emit
      (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
         ~matches:[ fm "is_ipv4" (tern1 1) ]
         (single "set_vrf" [ bv16 1 ]));
  (match P4info.find_table info "acl_ingress_table" with
  | Some ti
    when has "mirror_session_table"
         && P4info.find_match_field ti "dscp" <> None ->
      emit
        (Entry.make ~table:"acl_ingress_table" ~priority:1
           ~matches:
             [ fm "is_ipv4" (tern1 1);
               fm "dscp"
                 (Entry.M_ternary
                    (Ternary.exact (Bitvec.of_int ~width:6 mirror_dscp))) ]
           (single "acl_mirror" [ bv16 1 ]))
  | Some _ | None -> ());
  if has "l3_admit_table" then
    emit
      (Entry.make ~table:"l3_admit_table" ~priority:1
         ~matches:[ fm "dst_mac" (Entry.M_ternary (Ternary.exact (router_mac switch))) ]
         (single "l3_admit" []));
  if routing then
    for dst = 0 to Topo.switches topo - 1 do
      let target_id =
        if dst = switch then Some host_target.tg_id
        else
          match Topo.next_hop topo ~src:switch ~dst with
          | None -> None
          | Some hop -> (
              match List.assoc_opt hop via_targets with
              | Some tg -> Some tg.tg_id
              | None -> None)
      in
      match target_id with
      | None -> ()
      | Some id ->
          emit
            (Entry.make ~table:"ipv4_table"
               ~matches:
                 [ fm "vrf_id" (exact16 1);
                   fm "ipv4_dst" (Entry.M_lpm (host_prefix dst)) ]
               (single "set_nexthop_id" [ bv16 id ]))
    done;
  List.rev !out
