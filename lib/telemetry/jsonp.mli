(** A minimal, dependency-free JSON {e parser} — the inverse of the
    hand-rolled emitter in {!Telemetry.Json}.

    The triage corpus was the first JSON reader; the observability layer
    (trace stitching, [switchv top]) now reads JSON too, which is why the
    parser lives here at the bottom of the dependency DAG rather than in
    [lib/triage] (which keeps a re-exporting shim). The parser accepts the
    full JSON grammar (RFC 8259) minus exotic number forms the emitter
    never produces; [\uXXXX] escapes outside the ASCII range are decoded
    as UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing garbage (other than whitespace) is an
    error. Error strings carry a byte offset. *)

(** {1 Accessors}

    Total accessors used by the corpus loader; each returns [None] on a
    shape mismatch so record parsing can fail with one message instead of
    raising mid-structure. *)

val member : string -> t -> t option
(** Field of an object ([None] for absent fields or non-objects). *)

val to_str : t -> string option
val to_int : t -> int option

val to_num : t -> float option
(** Any numeric value, as a float — use for durations and other
    measurements where fractional values are expected. *)

val to_bool : t -> bool option
val to_arr : t -> t list option

val to_string : t -> string
(** Serialize back to compact JSON (integral floats print as integers).
    [parse] ∘ [to_string] is the identity on parsed values. *)
