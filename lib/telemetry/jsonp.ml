type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub input !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf code =
    (* Encode one code point (surrogate pairs already combined). *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let code = hex4 () in
              let code =
                if code >= 0xD800 && code <= 0xDBFF then begin
                  (* high surrogate: must be followed by \uDC00-\uDFFF *)
                  if
                    !pos + 2 <= n && input.[!pos] = '\\' && input.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let low = hex4 () in
                    0x10000 + (((code - 0xD800) lsl 10) lor (low - 0xDC00))
                  end
                  else fail "lone high surrogate"
                end
                else code
              in
              utf8 buf code
          | _ -> fail "bad escape");
          go ())
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            expect '"';
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '"' ->
        advance ();
        Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (off, msg) -> Error (Printf.sprintf "at byte %d: %s" off msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
      Some (int_of_float f)
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_arr = function Arr xs -> Some xs | _ -> None

let rec to_string = function
  | Null -> "null"
  | Bool b -> Telemetry.Json.bool b
  | Num f ->
      if Float.is_integer f && Float.abs f <= 2. ** 52. then
        string_of_int (int_of_float f)
      else Telemetry.Json.num f
  | Str s -> Telemetry.Json.str s
  | Arr xs -> Telemetry.Json.arr (List.map to_string xs)
  | Obj fields ->
      Telemetry.Json.obj (List.map (fun (k, v) -> (k, to_string v)) fields)
