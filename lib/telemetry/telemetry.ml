type clock = unit -> float

(* --- monotonic-ish wall clock ------------------------------------------------ *)

(* [Unix.gettimeofday] is a wall clock: NTP steps (or an operator touching
   the clock) can move it backwards mid-campaign, which used to surface as
   negative durations in reports and bench JSON. The stdlib exposes no
   monotonic clock without C stubs, so we settle for monotonic-ish: never
   return a timestamp smaller than one already handed out. A forked worker
   inherits the floor, which only tightens the guarantee. *)
module Clock = struct
  let last = ref neg_infinity

  let now () =
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

  let duration ~since =
    let d = now () -. since in
    if d > 0. then d else 0.
end

(* --- histograms ------------------------------------------------------------ *)

(* Log-spaced latency buckets in seconds (1µs .. 10s); observations above
   the last bound land in an implicit overflow bucket whose effective upper
   edge is the maximum observed value. *)
let default_bounds =
  [| 1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3;
     5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10. |]

type histogram = {
  bounds : float array;
  buckets : int array;               (* length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_max : float;
}

let make_histogram () =
  { bounds = default_bounds;
    buckets = Array.make (Array.length default_bounds + 1) 0;
    h_count = 0;
    h_sum = 0.;
    h_max = neg_infinity }

let histogram_observe h v =
  let n = Array.length h.bounds in
  let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v > h.h_max then h.h_max <- v

(* Rank-based estimate with linear interpolation inside the target bucket:
   a quantile whose rank falls exactly on a cumulative bucket edge returns
   that bucket's upper bound exactly (deterministic for tests). *)
let histogram_quantile h p =
  if h.h_count = 0 then None
  else begin
    let target = p *. float_of_int h.h_count in
    let nb = Array.length h.buckets in
    let rec go i cum =
      if i >= nb then h.h_max
      else begin
        let c = h.buckets.(i) in
        let cum' = cum +. float_of_int c in
        if c > 0 && cum' >= target then begin
          let lo = if i = 0 then 0. else h.bounds.(i - 1) in
          let hi = if i < Array.length h.bounds then h.bounds.(i) else h.h_max in
          let frac = (target -. cum) /. float_of_int c in
          let frac = if frac < 0. then 0. else if frac > 1. then 1. else frac in
          lo +. ((hi -. lo) *. frac)
        end
        else go (i + 1) cum'
      end
    in
    Some (go 0 0.)
  end

(* --- registry --------------------------------------------------------------- *)

type sink = string -> unit

(* Span ids are partitioned into blocks so ids allocated in forked workers
   never collide with the parent's: the parent allocates a fresh block per
   worker ([alloc_sid_block]) and the worker seeds its registry from it
   ([seed_spans]). Block 0 belongs to the process that created the
   registry; [sid_block] recovers the block (= worker number) from any id,
   which the trace tooling uses as a thread id. *)
let sid_block_bits = 30

let sid_block sid = sid lsr sid_block_bits

type t = {
  mutable clock : clock;
  mutable on : bool;
  mutable sink : sink option;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable span_stack : (string * int) list;  (* innermost first: name, sid *)
  mutable seq : int;
  mutable next_sid : int;
  mutable sid_base : int;        (* first sid of this registry's block *)
  mutable next_block : int;      (* next worker block to hand out *)
  mutable root_psid : int option;(* parent sid for spans opened at depth 0 *)
  mutable tick : (unit -> unit) option;
  mutable in_tick : bool;
}

let create ?(clock = Unix.gettimeofday) () =
  { clock;
    on = true;
    sink = None;
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 32;
    span_stack = [];
    seq = 0;
    next_sid = 1;
    sid_base = 1;
    next_block = 1;
    root_psid = None;
    tick = None;
    in_tick = false }

let default = create ()

let current = ref default

let get () = !current

let with_registry t f =
  let previous = !current in
  current := t;
  Fun.protect ~finally:(fun () -> current := previous) f

let set_clock t clock = t.clock <- clock
let set_enabled t on = t.on <- on
let enabled t = t.on

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms;
  t.span_stack <- [];
  t.seq <- 0;
  t.next_sid <- t.sid_base

(* --- span-id plumbing (fork stitching) --------------------------------------- *)

let alloc_sid_block t =
  let b = t.next_block in
  t.next_block <- b + 1;
  b lsl sid_block_bits

let seed_spans t ~sid_base ~root_psid =
  t.sid_base <- sid_base;
  t.next_sid <- sid_base;
  t.root_psid <- root_psid

let current_sid t =
  match t.span_stack with (_, sid) :: _ -> Some sid | [] -> t.root_psid

let set_tick t tick = t.tick <- tick

let run_tick t =
  match t.tick with
  | Some f when not t.in_tick ->
      t.in_tick <- true;
      Fun.protect ~finally:(fun () -> t.in_tick <- false) f
  | _ -> ()

(* --- counters --------------------------------------------------------------- *)

let incr ?(n = 1) t name =
  if t.on then begin
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.counters name (ref n)
  end

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* --- histograms (registry level) --------------------------------------------- *)

let observe t name v =
  if t.on then begin
    let h =
      match Hashtbl.find_opt t.histograms name with
      | Some h -> h
      | None ->
          let h = make_histogram () in
          Hashtbl.replace t.histograms name h;
          h
    in
    histogram_observe h v
  end

let quantile t name p =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> histogram_quantile h p
  | None -> None

(* --- JSON ------------------------------------------------------------------- *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""

  let num f =
    match Float.classify_float f with
    | FP_nan | FP_infinite -> "null"
    | _ ->
        (* Shortest representation that round-trips: %.12g covers most
           values compactly; fall back to %.17g (always exact) when it
           loses precision — absolute wall-clock timestamps need it. *)
        let s = Printf.sprintf "%.12g" f in
        let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
        (* "1e-06" is valid JSON; "1." is not. *)
        if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s

  let int i = string_of_int i
  let bool b = if b then "true" else "false"

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

  let arr items = "[" ^ String.concat "," items ^ "]"

  (* Minimal validity parser for smoke tests (no construction of values). *)
  let check s =
    let n = String.length s in
    let pos = ref 0 in
    let error msg = failwith (Printf.sprintf "%s at offset %d" msg !pos) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do advance () done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> error (Printf.sprintf "expected %C" c)
    in
    let literal word =
      String.iter (fun c -> expect c) word
    in
    let parse_string () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> error "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
            advance ();
            (match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance (); go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> error "bad \\u escape"
                done;
                go ()
            | _ -> error "bad escape")
        | Some _ -> advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let digits () =
        let saw = ref false in
        while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
          saw := true;
          advance ()
        done;
        if not !saw then error "expected digit"
      in
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' -> advance (); digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then advance ()
          else begin
            let rec members () =
              skip_ws ();
              parse_string ();
              skip_ws ();
              expect ':';
              parse_value ();
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ()
              | Some '}' -> advance ()
              | _ -> error "expected ',' or '}'"
            in
            members ()
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then advance ()
          else begin
            let rec elements () =
              parse_value ();
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elements ()
              | Some ']' -> advance ()
              | _ -> error "expected ',' or ']'"
            in
            elements ()
          end
      | Some '"' -> parse_string ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> parse_number ()
      | _ -> error "expected a JSON value"
    in
    match
      parse_value ();
      skip_ws ();
      if !pos <> n then error "trailing input"
    with
    | () -> Ok ()
    | exception Failure msg -> Error msg
end

(* --- spans / trace events ----------------------------------------------------- *)

let set_sink t sink = t.sink <- sink
let tracing t = t.on && t.sink <> None

let attrs_field attrs =
  match attrs with
  | [] -> []
  | attrs -> [ ("attrs", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) attrs)) ]

let emit_raw t line =
  match t.sink with
  | None -> ()
  | Some write -> write line

let emit t fields = emit_raw t (Json.obj fields)

let parent_field t =
  match t.span_stack with
  | [] -> "null"
  | (parent, _) :: _ -> Json.str parent

let psid_field t =
  match current_sid t with None -> "null" | Some sid -> Json.int sid

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let next_sid t =
  let s = t.next_sid in
  t.next_sid <- s + 1;
  s

let with_span ?(attrs = []) t name f =
  if not t.on then f ()
  else begin
    let depth = List.length t.span_stack in
    let start = t.clock () in
    let sid = next_sid t in
    if tracing t then
      emit t
        ([ ("ev", Json.str "b"); ("span", Json.str name); ("ts", Json.num start);
           ("sid", Json.int sid); ("psid", psid_field t);
           ("depth", Json.int depth); ("parent", parent_field t);
           ("seq", Json.int (next_seq t)) ]
        @ attrs_field attrs);
    t.span_stack <- (name, sid) :: t.span_stack;
    let finish () =
      (match t.span_stack with _ :: rest -> t.span_stack <- rest | [] -> ());
      let stop = t.clock () in
      let dur = stop -. start in
      observe t name dur;
      if tracing t then
        emit t
          [ ("ev", Json.str "e"); ("span", Json.str name); ("ts", Json.num stop);
            ("sid", Json.int sid); ("dur_s", Json.num dur);
            ("depth", Json.int depth); ("seq", Json.int (next_seq t)) ];
      run_tick t
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let event ?(attrs = []) t name =
  if tracing t then
    emit t
      ([ ("ev", Json.str "i"); ("span", Json.str name); ("ts", Json.num (t.clock ()));
         ("sid", Json.int (next_sid t)); ("psid", psid_field t);
         ("depth", Json.int (List.length t.span_stack)); ("parent", parent_field t);
         ("seq", Json.int (next_seq t)) ]
      @ attrs_field attrs)

let with_trace_channel t oc f =
  let previous = t.sink in
  set_sink t
    (Some
       (fun line ->
         output_string oc line;
         output_char oc '\n'));
  Fun.protect
    ~finally:(fun () ->
      flush oc;
      set_sink t previous)
    f

(* --- snapshots ---------------------------------------------------------------- *)

type histogram_summary = {
  hs_count : int;
  hs_sum : float;
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_max : float;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_histograms : (string * histogram_summary) list;
}

let snapshot t =
  let counters =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        if h.h_count = 0 then acc
        else begin
          let q p = Option.value ~default:0. (histogram_quantile h p) in
          ( name,
            { hs_count = h.h_count;
              hs_sum = h.h_sum;
              hs_p50 = q 0.5;
              hs_p90 = q 0.9;
              hs_p99 = q 0.99;
              hs_max = h.h_max } )
          :: acc
        end)
      t.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { snap_counters = counters; snap_histograms = histograms }

let pp_duration fmt s =
  if s < 1e-3 then Format.fprintf fmt "%.0fµs" (s *. 1e6)
  else if s < 1. then Format.fprintf fmt "%.2fms" (s *. 1e3)
  else Format.fprintf fmt "%.2fs" s

let pp_snapshot fmt snap =
  Format.fprintf fmt "@[<v>";
  if snap.snap_counters <> [] then begin
    Format.fprintf fmt "telemetry counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %-40s %12d@," name v)
      snap.snap_counters
  end;
  if snap.snap_histograms <> [] then begin
    Format.fprintf fmt "telemetry latency (count / p50 / p90 / p99 / max / total):@,";
    List.iter
      (fun (name, h) ->
        Format.fprintf fmt "  %-40s %8d  %a %a %a %a %a@," name h.hs_count pp_duration
          h.hs_p50 pp_duration h.hs_p90 pp_duration h.hs_p99 pp_duration h.hs_max
          pp_duration h.hs_sum)
      snap.snap_histograms
  end;
  Format.fprintf fmt "@]"

(* --- export / absorb (fork merge) --------------------------------------------- *)

type histogram_dump = {
  hd_buckets : int array;
  hd_count : int;
  hd_sum : float;
  hd_max : float;
}

type export = {
  ex_counters : (string * int) list;
  ex_histograms : (string * histogram_dump) list;
}

let export t =
  let counters =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        if h.h_count = 0 then acc
        else
          ( name,
            { hd_buckets = Array.copy h.buckets;
              hd_count = h.h_count;
              hd_sum = h.h_sum;
              hd_max = h.h_max } )
          :: acc)
      t.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { ex_counters = counters; ex_histograms = histograms }

let absorb t ex =
  List.iter (fun (name, n) -> incr ~n t name) ex.ex_counters;
  if t.on then
    List.iter
      (fun (name, d) ->
        if d.hd_count > 0 then begin
          let h =
            match Hashtbl.find_opt t.histograms name with
            | Some h -> h
            | None ->
                let h = make_histogram () in
                Hashtbl.replace t.histograms name h;
                h
          in
          (* Bucket layouts agree (both sides use [default_bounds]); the
             [min] only guards against a future bounds change racing an
             old worker. *)
          let nb = min (Array.length h.buckets) (Array.length d.hd_buckets) in
          for i = 0 to nb - 1 do
            h.buckets.(i) <- h.buckets.(i) + d.hd_buckets.(i)
          done;
          h.h_count <- h.h_count + d.hd_count;
          h.h_sum <- h.h_sum +. d.hd_sum;
          if d.hd_max > h.h_max then h.h_max <- d.hd_max
        end)
      ex.ex_histograms

(* Subtract a previously-taken export from the registry's current state.
   Because counters and histogram buckets are monotonic, the difference is
   itself a valid export; a stream of diffs absorbed in order sums to
   exactly the full export, which is what lets workers stream telemetry
   heartbeats mid-shard without double counting. *)
let diff_export t ~base =
  let cur = export t in
  let counters =
    List.filter_map
      (fun (name, v) ->
        let v0 =
          Option.value ~default:0 (List.assoc_opt name base.ex_counters)
        in
        if v - v0 <> 0 then Some (name, v - v0) else None)
      cur.ex_counters
  in
  let histograms =
    List.filter_map
      (fun (name, d) ->
        match List.assoc_opt name base.ex_histograms with
        | None -> Some (name, d)
        | Some d0 ->
            let dc = d.hd_count - d0.hd_count in
            if dc <= 0 then None
            else begin
              let buckets = Array.copy d.hd_buckets in
              let nb = min (Array.length buckets) (Array.length d0.hd_buckets) in
              for i = 0 to nb - 1 do
                buckets.(i) <- buckets.(i) - d0.hd_buckets.(i)
              done;
              Some
                ( name,
                  { hd_buckets = buckets;
                    hd_count = dc;
                    hd_sum = d.hd_sum -. d0.hd_sum;
                    hd_max = d.hd_max } )
            end)
      cur.ex_histograms
  in
  { ex_counters = counters; ex_histograms = histograms }

(* --- metric documentation ------------------------------------------------------ *)

(* A process-wide (not per-registry) name -> help-string table: metric
   names are global vocabulary, so their documentation is too. Dynamic
   families ([fault.PINS-042], [cov.branch.7.then]) are documented once
   under their stable dotted prefix; [doc_for] falls back to the longest
   documented prefix. *)
let docs : (string, string) Hashtbl.t = Hashtbl.create 64

let document name help = Hashtbl.replace docs name help

let doc_for name =
  match Hashtbl.find_opt docs name with
  | Some h -> Some h
  | None ->
      let rec up s =
        match String.rindex_opt s '.' with
        | None -> None
        | Some i -> (
            let s = String.sub s 0 i in
            match Hashtbl.find_opt docs s with
            | Some h -> Some h
            | None -> up s)
      in
      up name

let documented name = doc_for name <> None

let snapshot_to_json snap =
  Json.obj
    [ ( "counters",
        Json.obj (List.map (fun (name, v) -> (name, Json.int v)) snap.snap_counters) );
      ( "histograms",
        Json.obj
          (List.map
             (fun (name, h) ->
               ( name,
                 Json.obj
                   [ ("count", Json.int h.hs_count); ("sum_s", Json.num h.hs_sum);
                     ("p50_s", Json.num h.hs_p50); ("p90_s", Json.num h.hs_p90);
                     ("p99_s", Json.num h.hs_p99); ("max_s", Json.num h.hs_max) ] ))
             snap.snap_histograms) ) ]
