(** Always-on observability for the validation pipeline.

    SwitchV ran at Google as a continuous service whose coverage, latency,
    and solver cost were monitored across nightly campaigns (§6–7). This
    library is the measurement substrate for our reproduction: monotonic
    {e counters}, fixed-bucket latency {e histograms} with quantile
    estimation, and nestable timed {e spans} emitted as structured JSONL
    trace events.

    Everything hangs off a registry. A global default registry exists so
    instrumented libraries need no API changes ("global but injectable"):
    they call [Telemetry.get ()] at the instrumentation point, and tests or
    embedders swap the registry with [with_registry] (and the clock with
    [set_clock]) for determinism.

    Cost model — what is safe on a hot path:
    - counters and histogram observations are a hashtable lookup plus an
      integer/float update; disabled registries short-circuit on one bool;
    - spans read the clock twice and observe one histogram; JSON is only
      formatted when a trace sink is installed ([tracing] is the cheap
      enabled check);
    - the innermost SAT loops carry no telemetry calls at all: solver
      effort is recorded as per-[check] counter deltas in {!Solver}. *)

type clock = unit -> float
(** Seconds, as an absolute wall-clock timestamp. Injectable for tests. *)

(** Monotonic-ish time for campaign/CLI duration measurement.

    [Unix.gettimeofday] can step backwards (NTP); every duration in a
    report or bench artifact should come from this helper instead, which
    never returns a timestamp smaller than one it already returned, and
    clamps durations at zero. *)
module Clock : sig
  val now : unit -> float
  (** Wall clock with a process-wide floor: never decreases. *)

  val duration : since:float -> float
  (** [duration ~since] = [max 0 (now () - since)]. *)
end

type t
(** A registry of counters, histograms, and the active span stack. *)

val create : ?clock:clock -> unit -> t
(** Fresh, empty, enabled registry. Default clock is [Unix.gettimeofday]. *)

val default : t
(** The process-wide registry used by all instrumented libraries unless
    overridden with [with_registry]. *)

val get : unit -> t
(** The currently-installed registry (the default unless inside
    [with_registry]). Instrumentation sites call this at event time, never
    at module-init time, so injection always wins. *)

val with_registry : t -> (unit -> 'a) -> 'a
(** Run the thunk with [t] installed as the current registry; restores the
    previous registry afterwards (also on exceptions). *)

val set_clock : t -> clock -> unit
val set_enabled : t -> bool -> unit

val enabled : t -> bool
(** When false, every operation on the registry is a no-op behind a single
    bool check. *)

val reset : t -> unit
(** Drop all counters, histograms, and any in-flight span state. Trace
    sink, clock, and enabledness are kept. Tests call this between cases. *)

(** {1 Span identity across forks}

    Every span (and instant event) carries a numeric id ([sid]) and its
    parent's id ([psid]) in trace output, so a trace file is a forest that
    tooling can stitch into one causal tree. Ids are allocated from
    per-process {e blocks}: the parent allocates a block per forked worker
    with [alloc_sid_block] and the worker seeds its fresh registry with
    [seed_spans], making every id in the campaign unique without any
    parent-side rewriting. [sid_block] recovers the block number — 0 for
    the parent, the worker's ordinal otherwise — which the Chrome trace
    converter uses as a thread id. *)

val sid_block : int -> int
(** The block (worker ordinal) a span id was allocated from. *)

val alloc_sid_block : t -> int
(** Reserve the next id block; returns its first id. Call in the parent
    before forking and pass the result to the worker. *)

val seed_spans : t -> sid_base:int -> root_psid:int option -> unit
(** Point a (worker) registry at its own id block, and set the parent id
    that its depth-0 spans report — the parent's span open at fork time —
    so worker trees hang off the campaign tree without rewriting. *)

val current_sid : t -> int option
(** Id of the innermost open span ([root_psid] when the stack is empty;
    [None] outside any span in a non-seeded registry). *)

val set_tick : t -> (unit -> unit) option -> unit
(** Install a hook called after every span finishes (even without a trace
    sink). Used by forked workers to piggy-back periodic trace/telemetry
    flushes on instrumentation already present on hot paths; re-entrant
    calls are suppressed, so the hook itself may open spans. *)

(** {1 Counters} *)

val incr : ?n:int -> t -> string -> unit
(** Add [n] (default 1) to the named monotonic counter, creating it at 0
    on first use. *)

val counter : t -> string -> int
(** Current value; 0 for a counter never incremented. *)

(** {1 Histograms}

    Fixed log-spaced latency buckets (1µs .. 10s plus overflow). Values are
    in seconds. Quantiles are estimated by linear interpolation inside the
    bucket containing the requested rank — exact at bucket boundaries. *)

val observe : t -> string -> float -> unit

val quantile : t -> string -> float -> float option
(** [quantile t name p] for [p] in [0,1]; [None] if the histogram is empty
    or absent. *)

(** {1 Spans and trace events}

    Spans nest: the registry tracks the active stack, so every event
    carries its depth and parent. With a sink installed, each span emits a
    begin and an end JSONL event; with no sink, the span still feeds the
    histogram named after it (that is how "Generation"/"Testing" latency
    tables are produced without tracing). *)

type sink = string -> unit
(** Receives one JSON object per call, without the trailing newline. *)

val set_sink : t -> sink option -> unit

val tracing : t -> bool
(** Whether a sink is installed — the guard instrumentation uses before
    doing any per-event string formatting. *)

val emit_raw : t -> string -> unit
(** Hand one already-rendered trace line to the sink (no-op without one).
    The parent side of the worker pool uses this to splice worker trace
    events — which carry their own span ids — into the campaign's file. *)

val with_span : ?attrs:(string * string) list -> t -> string -> (unit -> 'a) -> 'a
(** Time the thunk as a span named [name]. Observes the duration into the
    histogram of the same name; emits begin/end trace events when tracing.
    Exception-safe: the span is closed (and emitted) on raise. *)

val event : ?attrs:(string * string) list -> t -> string -> unit
(** An instant (zero-duration) trace event at the current depth. No-op
    unless tracing. *)

val with_trace_channel : t -> out_channel -> (unit -> 'a) -> 'a
(** Install a line-writing sink over the channel for the duration of the
    thunk, restoring the previous sink (and flushing) afterwards. *)

(** {1 Snapshots} *)

type histogram_summary = {
  hs_count : int;
  hs_sum : float;            (** total observed seconds *)
  hs_p50 : float;
  hs_p90 : float;
  hs_p99 : float;
  hs_max : float;
}

type snapshot = {
  snap_counters : (string * int) list;                 (** sorted by name *)
  snap_histograms : (string * histogram_summary) list; (** sorted by name *)
}

val snapshot : t -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable two-section table (counters, then latency quantiles). *)

val snapshot_to_json : snapshot -> string
(** One-line JSON object: [{"counters":{...},"histograms":{...}}]. *)

(** {1 Export / absorb}

    Raw (not summarized) registry contents, for merging measurements made
    in a forked worker back into the parent's registry: the worker runs
    under a fresh registry, so its export is a pure delta; the parent
    [absorb]s counters additively and histograms bucket-wise. *)

type histogram_dump = {
  hd_buckets : int array;   (** same layout as the registry's buckets *)
  hd_count : int;
  hd_sum : float;
  hd_max : float;
}

type export = {
  ex_counters : (string * int) list;                 (** sorted by name *)
  ex_histograms : (string * histogram_dump) list;    (** sorted by name; empty histograms omitted *)
}

val export : t -> export

val absorb : t -> export -> unit
(** Add the exported deltas into [t] (no-op when [t] is disabled). *)

val diff_export : t -> base:export -> export
(** The registry's current contents minus a previously-taken export.
    Counters and buckets are monotonic, so the result is a valid export;
    absorbing a stream of consecutive diffs reproduces the full export
    exactly — the contract behind worker telemetry heartbeats. *)

val default_bounds : float array
(** The histogram bucket upper bounds (seconds), exposed for exposition
    formats that need explicit bucket edges (Prometheus [le] labels). *)

(** {1 Metric documentation}

    A process-wide registry of metric name -> one-line help string,
    surfaced as [# HELP] in the Prometheus exposition and enforced by the
    obs test suite (an instrumented counter without documentation fails
    CI). Dynamic metric families are documented once under their stable
    dotted prefix ([fault], [cov.branch], ...). *)

val document : string -> string -> unit
(** [document name help] registers (or replaces) the help string for a
    metric name or dotted prefix. *)

val doc_for : string -> string option
(** Exact-name lookup, then longest documented dotted-prefix fallback. *)

val documented : string -> bool

(** {1 JSON helpers}

    A hand-rolled, dependency-free JSON emitter (and a validity checker for
    smoke tests) shared by the trace sink, [snapshot_to_json], and
    [Report.to_json]. Emitter values are already-rendered JSON fragments. *)

module Json : sig
  val str : string -> string
  (** Quoted and escaped JSON string literal. *)

  val num : float -> string
  (** Finite floats; NaN/infinities are rendered as [null]. *)

  val int : int -> string
  val bool : bool -> string
  val obj : (string * string) list -> string
  val arr : string list -> string

  val check : string -> (unit, string) result
  (** Minimal recursive-descent validator: is the input one well-formed
      JSON value? Used to smoke-test emitted documents without a JSON
      dependency. *)
end
