(* Bitvectors are stored as little-endian arrays of 16-bit limbs. A 16-bit
   limb keeps every operation (including long multiplication) comfortably
   within OCaml's native int range. The top limb is always masked to the
   declared width, so structural equality of the limb arrays coincides with
   value equality. *)

let limb_bits = 16
let limb_mask = 0xFFFF

type t = { width : int; limbs : int array }

let width t = t.width

let limbs_for w = (w + limb_bits - 1) / limb_bits

(* Mask the top limb so unused high bits are zero. *)
let normalize width limbs =
  let n = limbs_for width in
  let top_bits = width - ((n - 1) * limb_bits) in
  let top_mask = if top_bits >= limb_bits then limb_mask else (1 lsl top_bits) - 1 in
  limbs.(n - 1) <- limbs.(n - 1) land top_mask;
  { width; limbs }

let check_width name w = if w < 1 then invalid_arg (name ^ ": width must be >= 1")

let zero w =
  check_width "Bitvec.zero" w;
  { width = w; limbs = Array.make (limbs_for w) 0 }

let ones w =
  check_width "Bitvec.ones" w;
  normalize w (Array.make (limbs_for w) limb_mask)

let of_int ~width:w n =
  check_width "Bitvec.of_int" w;
  if n < 0 then invalid_arg "Bitvec.of_int: negative";
  let limbs = Array.make (limbs_for w) 0 in
  let rec fill i n = if n <> 0 && i < Array.length limbs then begin
      limbs.(i) <- n land limb_mask;
      fill (i + 1) (n lsr limb_bits)
    end
  in
  fill 0 n;
  normalize w limbs

let of_int64 ~width:w n =
  check_width "Bitvec.of_int64" w;
  let limbs = Array.make (limbs_for w) 0 in
  let rec fill i n =
    if not (Int64.equal n 0L) && i < Array.length limbs then begin
      limbs.(i) <- Int64.to_int (Int64.logand n 0xFFFFL);
      fill (i + 1) (Int64.shift_right_logical n limb_bits)
    end
  in
  fill 0 n;
  normalize w limbs

let of_bool b = of_int ~width:1 (if b then 1 else 0)

let bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bitvec.bit: index out of range";
  t.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set_bit limbs i b =
  let j = i / limb_bits and k = i mod limb_bits in
  if b then limbs.(j) <- limbs.(j) lor (1 lsl k)
  else limbs.(j) <- limbs.(j) land lnot (1 lsl k)

let of_bin_string s =
  let w = String.length s in
  check_width "Bitvec.of_bin_string" w;
  let limbs = Array.make (limbs_for w) 0 in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set_bit limbs (w - 1 - i) true
      | _ -> invalid_arg "Bitvec.of_bin_string: not a binary digit")
    s;
  normalize w limbs

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bitvec.of_hex_string: not a hex digit"

let of_hex_string ~width:w s =
  check_width "Bitvec.of_hex_string" w;
  let limbs = Array.make (limbs_for w) 0 in
  let n = String.length s in
  for i = 0 to n - 1 do
    let d = hex_digit s.[n - 1 - i] in
    for b = 0 to 3 do
      let pos = (i * 4) + b in
      if pos < w && d lsr b land 1 = 1 then set_bit limbs pos true
    done
  done;
  normalize w limbs

let to_int t =
  (* An OCaml int holds 62 value bits safely. *)
  let max_limbs = 62 / limb_bits in
  let n = Array.length t.limbs in
  let rec all_zero i = i >= n || (t.limbs.(i) = 0 && all_zero (i + 1)) in
  if not (all_zero max_limbs) then None
  else begin
    let v = ref 0 in
    for i = min n max_limbs - 1 downto 0 do
      v := (!v lsl limb_bits) lor t.limbs.(i)
    done;
    Some !v
  end

let to_int_exn t =
  match to_int t with
  | Some n -> n
  | None -> invalid_arg "Bitvec.to_int_exn: does not fit in int"

let to_int64 t =
  let n = Array.length t.limbs in
  let rec all_zero i = i >= n || (t.limbs.(i) = 0 && all_zero (i + 1)) in
  if not (all_zero 4) then None
  else begin
    let v = ref 0L in
    for i = min n 4 - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v limb_bits) (Int64.of_int t.limbs.(i))
    done;
    Some !v
  end

let is_zero t = Array.for_all (fun l -> l = 0) t.limbs

let is_ones t =
  let rec go i = i >= t.width || (bit t i && go (i + 1)) in
  go 0

let to_bin_string t = String.init t.width (fun i -> if bit t (t.width - 1 - i) then '1' else '0')

let to_hex_string t =
  let ndigits = (t.width + 3) / 4 in
  String.init ndigits (fun i ->
      let pos = (ndigits - 1 - i) * 4 in
      let d = ref 0 in
      for b = 3 downto 0 do
        d := !d lsl 1;
        if pos + b < t.width && bit t (pos + b) then incr d
      done;
      "0123456789abcdef".[!d])

let popcount t =
  Array.fold_left
    (fun acc l ->
      let rec pc l acc = if l = 0 then acc else pc (l lsr 1) (acc + (l land 1)) in
      pc l acc)
    0 t.limbs

let equal a b = a.width = b.width && a.limbs = b.limbs

let compare a b =
  if a.width <> b.width then invalid_arg "Bitvec.compare: width mismatch";
  let rec go i = if i < 0 then 0 else
      let c = Int.compare a.limbs.(i) b.limbs.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (Array.length a.limbs - 1)

let ult a b = compare a b < 0
let ule a b = compare a b <= 0

let hash t = Hashtbl.hash (t.width, t.limbs)

let map2 name f a b =
  if a.width <> b.width then invalid_arg ("Bitvec." ^ name ^ ": width mismatch");
  normalize a.width (Array.init (Array.length a.limbs) (fun i -> f a.limbs.(i) b.limbs.(i)))

let logand a b = map2 "logand" ( land ) a b
let logor a b = map2 "logor" ( lor ) a b
let logxor a b = map2 "logxor" ( lxor ) a b
let lognot a = normalize a.width (Array.map (fun l -> lnot l land limb_mask) a.limbs)

let shift_left t k =
  if k < 0 then invalid_arg "Bitvec.shift_left: negative shift";
  let limbs = Array.make (Array.length t.limbs) 0 in
  for i = t.width - 1 downto k do
    if bit t (i - k) then set_bit limbs i true
  done;
  normalize t.width limbs

let shift_right t k =
  if k < 0 then invalid_arg "Bitvec.shift_right: negative shift";
  let limbs = Array.make (Array.length t.limbs) 0 in
  for i = 0 to t.width - 1 - k do
    if bit t (i + k) then set_bit limbs i true
  done;
  normalize t.width limbs

let add a b =
  if a.width <> b.width then invalid_arg "Bitvec.add: width mismatch";
  let n = Array.length a.limbs in
  let limbs = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize a.width limbs

let lognot' = lognot

let neg a = add (lognot' a) (of_int ~width:a.width 1)
let sub a b = add a (neg b)
let succ a = add a (of_int ~width:a.width 1)

let mul a b =
  if a.width <> b.width then invalid_arg "Bitvec.mul: width mismatch";
  let n = Array.length a.limbs in
  let acc = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.limbs.(i) <> 0 then begin
      let carry = ref 0 in
      for j = 0 to n - 1 - i do
        let s = acc.(i + j) + (a.limbs.(i) * b.limbs.(j)) + !carry in
        acc.(i + j) <- s land limb_mask;
        carry := s lsr limb_bits
      done
    end
  done;
  normalize a.width acc

let concat hi lo =
  let w = hi.width + lo.width in
  let limbs = Array.make (limbs_for w) 0 in
  for i = 0 to lo.width - 1 do
    if bit lo i then set_bit limbs i true
  done;
  for i = 0 to hi.width - 1 do
    if bit hi i then set_bit limbs (lo.width + i) true
  done;
  normalize w limbs

let extract ~hi ~lo t =
  if lo < 0 || hi >= t.width || hi < lo then invalid_arg "Bitvec.extract: bad range";
  let w = hi - lo + 1 in
  let limbs = Array.make (limbs_for w) 0 in
  for i = 0 to w - 1 do
    if bit t (lo + i) then set_bit limbs i true
  done;
  normalize w limbs

let zero_extend w t =
  if w < t.width then invalid_arg "Bitvec.zero_extend: narrower target";
  if w = t.width then t
  else begin
    let limbs = Array.make (limbs_for w) 0 in
    Array.blit t.limbs 0 limbs 0 (Array.length t.limbs);
    normalize w limbs
  end

let truncate w t =
  if w > t.width then invalid_arg "Bitvec.truncate: wider target";
  if w = t.width then t else extract ~hi:(w - 1) ~lo:0 t

let resize w t = if w >= t.width then zero_extend w t else truncate w t

let prefix_mask ~width:w len =
  check_width "Bitvec.prefix_mask" w;
  if len < 0 || len > w then invalid_arg "Bitvec.prefix_mask: bad prefix length";
  let limbs = Array.make (limbs_for w) 0 in
  for i = w - len to w - 1 do
    set_bit limbs i true
  done;
  normalize w limbs

let fold_bits f t init =
  let acc = ref init in
  for i = 0 to t.width - 1 do
    acc := f i (bit t i) !acc
  done;
  !acc

let random rand_int w =
  check_width "Bitvec.random" w;
  let limbs = Array.init (limbs_for w) (fun _ -> rand_int (limb_mask + 1)) in
  normalize w limbs

let pp fmt t = Format.fprintf fmt "0x%s#%d" (to_hex_string t) t.width
let pp_bin fmt t = Format.fprintf fmt "0b%s#%d" (to_bin_string t) t.width

let of_bytes_be s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bitvec.of_bytes_be: empty";
  let w = 8 * n in
  let limbs = Array.make (limbs_for w) 0 in
  for i = 0 to n - 1 do
    let byte = Char.code s.[n - 1 - i] in
    for b = 0 to 7 do
      if byte lsr b land 1 = 1 then set_bit limbs ((i * 8) + b) true
    done
  done;
  normalize w limbs

let to_bytes_be t =
  if t.width mod 8 <> 0 then invalid_arg "Bitvec.to_bytes_be: width not a byte multiple";
  let n = t.width / 8 in
  String.init n (fun i ->
      let lo = (n - 1 - i) * 8 in
      let byte = ref 0 in
      for b = 7 downto 0 do
        byte := (!byte lsl 1) lor (if bit t (lo + b) then 1 else 0)
      done;
      Char.chr !byte)
