type t = { value : Bitvec.t; len : int }

let canonicalize v len =
  Bitvec.logand v (Bitvec.prefix_mask ~width:(Bitvec.width v) len)

let make v len =
  if len < 0 || len > Bitvec.width v then invalid_arg "Prefix.make: bad length";
  { value = canonicalize v len; len }

let width t = Bitvec.width t.value
let value t = t.value
let len t = t.len

let matches t v =
  Bitvec.equal t.value (canonicalize v t.len)

let is_canonical v len = Bitvec.equal v (canonicalize v len)

let full v = { value = v; len = Bitvec.width v }
let any w = make (Bitvec.zero w) 0

let subsumes a b =
  a.len <= b.len && matches a b.value

let equal a b = a.len = b.len && Bitvec.equal a.value b.value

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else Bitvec.compare a.value b.value

let pp fmt t = Format.fprintf fmt "%a/%d" Bitvec.pp t.value t.len

let of_ipv4_string s =
  let base, plen =
    match String.index_opt s '/' with
    | Some i ->
        ( String.sub s 0 i,
          int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, -1)
  in
  let octets = String.split_on_char '.' base in
  if List.length octets <> 4 then invalid_arg "Prefix.of_ipv4_string: need 4 octets";
  (* Wildcard octets ("*") determine the prefix length when no /len given. *)
  let value = ref (Bitvec.zero 32) in
  let inferred_len = ref 32 in
  List.iteri
    (fun i oct ->
      if oct = "*" then begin
        if !inferred_len > i * 8 then inferred_len := i * 8
      end
      else begin
        let n = int_of_string oct in
        if n < 0 || n > 255 then invalid_arg "Prefix.of_ipv4_string: octet out of range";
        value :=
          Bitvec.logor !value
            (Bitvec.shift_left (Bitvec.of_int ~width:32 n) ((3 - i) * 8))
      end)
    octets;
  let plen = if plen >= 0 then plen else !inferred_len in
  make !value plen

let to_ipv4_string t =
  let octet i = Bitvec.to_int_exn (Bitvec.extract ~hi:(i + 7) ~lo:i t.value) in
  Printf.sprintf "%d.%d.%d.%d/%d" (octet 24) (octet 16) (octet 8) (octet 0) t.len
