(** Arbitrary-width unsigned bitvectors.

    The foundation type for packet fields, table keys, and SMT terms.
    Values are immutable; all operations return fresh vectors. A bitvector
    has an explicit [width] in bits (>= 1); operations over two vectors
    require equal widths and raise [Invalid_argument] otherwise. *)

type t

val width : t -> int

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the all-zeros vector of width [w]. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of [n]
    to [width] bits. [n] must be non-negative. *)

val of_int64 : width:int -> int64 -> t

val of_bin_string : string -> t
(** Parse a binary string, e.g. ["1010"] has width 4. *)

val of_hex_string : width:int -> string -> t
(** Parse a hex string (without ["0x"] prefix), truncated/zero-extended to
    [width]. *)

val of_bool : bool -> t
(** Width-1 vector: [true] is 1, [false] is 0. *)

(** {1 Observation} *)

val to_int : t -> int option
(** [Some n] if the value fits in a non-negative OCaml [int]. *)

val to_int_exn : t -> int

val to_int64 : t -> int64 option

val bit : t -> int -> bool
(** [bit v i] is bit [i], with bit 0 the least significant.
    Raises [Invalid_argument] when out of range. *)

val is_zero : t -> bool
val is_ones : t -> bool

val to_bin_string : t -> string
val to_hex_string : t -> string

val popcount : t -> int

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned comparison. Widths must match. *)

val ult : t -> t -> bool
val ule : t -> t -> bool

val hash : t -> int

(** {1 Bitwise operations} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical shifts; bits shifted out are dropped, zeros shifted in. *)

(** {1 Arithmetic (modulo 2^width)} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val succ : t -> t

(** {1 Structure} *)

val concat : t -> t -> t
(** [concat hi lo] has width [width hi + width lo] with [hi] in the most
    significant bits. *)

val extract : hi:int -> lo:int -> t -> t
(** [extract ~hi ~lo v] is bits [hi..lo] inclusive, width [hi - lo + 1]. *)

val zero_extend : int -> t -> t
(** [zero_extend w v] pads [v] with zero bits up to total width [w];
    [w >= width v]. *)

val truncate : int -> t -> t
(** [truncate w v] keeps the [w] low bits; [w <= width v]. *)

val resize : int -> t -> t
(** Zero-extend or truncate to exactly the given width. *)

val prefix_mask : width:int -> int -> t
(** [prefix_mask ~width len] has the [len] most significant of [width] bits
    set — the netmask of a length-[len] prefix. *)

val fold_bits : (int -> bool -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over bit indices 0 .. width-1 (LSB first). *)

val random : (int -> int) -> int -> t
(** [random rand_int w]: uniformly random vector of width [w] using
    [rand_int bound] as the entropy source. *)

val pp : Format.formatter -> t -> unit
(** Hex with width annotation, e.g. [0x0a000001#32]. *)

val pp_bin : Format.formatter -> t -> unit

(** {1 Byte conversion} *)

val of_bytes_be : string -> t
(** Big-endian bytes to bitvector; width is [8 * String.length]. *)

val to_bytes_be : t -> string
(** Big-endian bytes; width must be a multiple of 8. *)
