type t = { value : Bitvec.t; mask : Bitvec.t }

let make ~value ~mask =
  if Bitvec.width value <> Bitvec.width mask then
    invalid_arg "Ternary.make: width mismatch";
  { value = Bitvec.logand value mask; mask }

let width t = Bitvec.width t.value
let value t = t.value
let mask t = t.mask

let matches t v = Bitvec.equal t.value (Bitvec.logand v t.mask)

let is_canonical ~value ~mask = Bitvec.equal value (Bitvec.logand value mask)

let exact v = { value = v; mask = Bitvec.ones (Bitvec.width v) }
let wildcard w = { value = Bitvec.zero w; mask = Bitvec.zero w }
let is_wildcard t = Bitvec.is_zero t.mask

let of_prefix p =
  let mask = Bitvec.prefix_mask ~width:(Prefix.width p) (Prefix.len p) in
  { value = Prefix.value p; mask }

let equal a b = Bitvec.equal a.value b.value && Bitvec.equal a.mask b.mask

let compare a b =
  let c = Bitvec.compare a.mask b.mask in
  if c <> 0 then c else Bitvec.compare a.value b.value

let pp fmt t = Format.fprintf fmt "%a &&& %a" Bitvec.pp t.value Bitvec.pp t.mask
