type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = next t

let split t =
  { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Use the top bits; reject nothing since modulo bias is negligible for
     our fuzzing purposes but we still fold 62 bits for quality. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let bool t = Int64.logand (next t) 1L = 1L

let bitvec t w = Bitvec.random (fun bound -> int t bound) w

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choose_weighted t xs =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 xs in
  if total <= 0 then invalid_arg "Rng.choose_weighted: no positive weights";
  let k = int t total in
  let rec pick k = function
    | [] -> invalid_arg "Rng.choose_weighted: empty"
    | (x, w) :: rest -> if k < w then x else pick (k - w) rest
  in
  pick k (List.filter (fun (_, w) -> w > 0) xs)

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
