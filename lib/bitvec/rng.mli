(** Deterministic pseudo-random number generator (splitmix64).

    Fuzzing campaigns and workload generators must be reproducible from a
    seed, independent of OCaml's global [Random] state; every component
    that needs entropy threads one of these explicitly. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator (for parallel sub-campaigns). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> bool

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bitvec : t -> int -> Bitvec.t
(** Uniformly random bitvector of the given width. *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val choose_weighted : t -> ('a * int) list -> 'a
(** Choice proportional to the (positive) integer weights. *)

val shuffle : t -> 'a list -> 'a list
