(** Ternary match values: (value, mask) pairs as used by ACL (TCAM) table
    keys. A bit of the key participates in the match iff the corresponding
    mask bit is set. Canonical form zeroes value bits where the mask is 0. *)

type t = private { value : Bitvec.t; mask : Bitvec.t }

val make : value:Bitvec.t -> mask:Bitvec.t -> t
(** Canonicalises by masking the value. Widths must agree. *)

val width : t -> int
val value : t -> Bitvec.t
val mask : t -> Bitvec.t

val matches : t -> Bitvec.t -> bool

val is_canonical : value:Bitvec.t -> mask:Bitvec.t -> bool

val exact : Bitvec.t -> t
(** Full mask: matches only the given value. *)

val wildcard : int -> t
(** Empty mask of the given width: matches everything. *)

val is_wildcard : t -> bool

val of_prefix : Prefix.t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
