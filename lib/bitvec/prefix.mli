(** Longest-prefix-match values: a bitvector with a significant-prefix
    length, as used for LPM table keys (e.g. IPv4 routes). The value is kept
    canonical: bits beyond the prefix are forced to zero. *)

type t = private { value : Bitvec.t; len : int }

val make : Bitvec.t -> int -> t
(** [make v len] canonicalises [v] by zeroing its low [width - len] bits.
    Raises [Invalid_argument] if [len] is outside [0 .. width v]. *)

val width : t -> int
val value : t -> Bitvec.t
val len : t -> int

val matches : t -> Bitvec.t -> bool
(** [matches p v] holds when the top [len p] bits of [v] equal the prefix. *)

val is_canonical : Bitvec.t -> int -> bool
(** Whether a raw (value, length) pair already has zeros past the prefix. *)

val full : Bitvec.t -> t
(** Exact-match prefix: length = width. *)

val any : int -> t
(** Zero-length prefix of the given width; matches everything. *)

val subsumes : t -> t -> bool
(** [subsumes a b]: every value matched by [b] is matched by [a]
    (i.e. [a] is a shorter-or-equal prefix of [b]). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val of_ipv4_string : string -> t
(** Parse dotted-quad with optional "/len", e.g. "10.0.0.0/8". Wildcard
    octets as in the paper's Figure 3 ("10.*.*.*") are also accepted. *)

val to_ipv4_string : t -> string
