(** A textual frontend for the P4 model IR.

    Parses the P4-16-flavoured dialect emitted by {!Pretty} (and written by
    hand in tests and examples), so that models can live as source files —
    the paper's "living documentation" role — rather than only as OCaml
    constructors. The dialect is the IR's exact feature set: header and
    metadata declarations, a linear parser state machine, actions over
    bit-vector fields, match-action tables with [@id], [@name],
    [@refers_to] and [@entry_restriction] annotations, and ingress/egress
    apply blocks.

    Declarations must appear in dependency order (headers and metadata
    before anything that references their fields), which {!Pretty} already
    guarantees. [parse] does {e not} run {!Typecheck}; callers should. *)

val parse : name:string -> string -> (Ast.program, string) result
(** [parse ~name source] — [name] becomes [p_name]. Errors include a line
    number. *)

val parse_exn : name:string -> string -> Ast.program

val roundtrip : Ast.program -> (Ast.program, string) result
(** [parse ~name (Pretty.program_to_string p)] — the self-test used by the
    test suite: pretty-printing and re-parsing must reproduce the
    program. *)
