(** Pretty-printing of P4 models as P4-16-flavoured source text.

    The output is the "living documentation" role of the P4 models (§1):
    engineers read it to understand the switch contract. It is not meant to
    be re-parsed by p4c — our IR is already the canonical representation —
    but it follows P4-16 surface syntax closely (tables, keys with match
    kinds, [@refers_to] / [@entry_restriction] annotations, apply blocks). *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_bexpr : Format.formatter -> Ast.bexpr -> unit
val pp_action : Format.formatter -> Ast.action -> unit
val pp_table : Ast.program -> Format.formatter -> Ast.table -> unit
val pp_control : Format.formatter -> Ast.control -> unit
val pp_parser : Format.formatter -> Ast.parser -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
