module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Constraint_lang = Switchv_p4constraints.Constraint_lang

type field_ref = { fr_header : string; fr_field : string }

let field fr_header fr_field = { fr_header; fr_field }
let meta fr_field = { fr_header = "meta"; fr_field }
let std fr_field = { fr_header = "std"; fr_field }

let field_ref_to_string fr = fr.fr_header ^ "." ^ fr.fr_field

let field_ref_of_string s =
  match String.index_opt s '.' with
  | None -> invalid_arg ("Ast.field_ref_of_string: no dot in " ^ s)
  | Some i when i = 0 || i = String.length s - 1 ->
      invalid_arg ("Ast.field_ref_of_string: empty component in " ^ s)
  | Some i ->
      { fr_header = String.sub s 0 i;
        fr_field = String.sub s (i + 1) (String.length s - i - 1) }

let standard_metadata =
  [ ("ingress_port", 16);
    ("egress_port", 16);
    ("drop", 1);
    ("punt", 1);
    ("submit_to_ingress", 1);
    ("mirror_session", 16);
    ("vrf_action_taken", 1) ]

type expr =
  | E_const of Bitvec.t
  | E_field of field_ref
  | E_param of string
  | E_not of expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_xor of expr * expr
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_slice of int * int * expr
  | E_concat of expr * expr
  | E_hash of string * expr list

type bexpr =
  | B_true
  | B_false
  | B_is_valid of string
  | B_eq of expr * expr
  | B_ne of expr * expr
  | B_ult of expr * expr
  | B_ule of expr * expr
  | B_not of bexpr
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr

type stmt =
  | S_assign of field_ref * expr
  | S_set_valid of string * bool
  | S_nop

type param = {
  p_name : string;
  p_width : int;
  p_refers_to : (string * string) option;
}

let param ?refers_to p_name p_width = { p_name; p_width; p_refers_to = refers_to }

type action = {
  a_name : string;
  a_params : param list;
  a_body : stmt list;
}

let find_param a name = List.find_opt (fun p -> String.equal p.p_name name) a.a_params

type match_kind = Exact | Lpm | Ternary | Optional

type key = {
  k_name : string;
  k_expr : expr;
  k_kind : match_kind;
  k_refers_to : (string * string) option;
}

type table = {
  t_name : string;
  t_id : int;
  t_keys : key list;
  t_actions : string list;
  t_default_action : string * Bitvec.t list;
  t_size : int;
  t_entry_restriction : Constraint_lang.t option;
  t_selector : bool;
}

type transition =
  | T_accept
  | T_select of expr * (Bitvec.t * string) list * string

type parser_state = {
  ps_name : string;
  ps_extract : string option;
  ps_next : transition;
}

type parser = { start : string; states : parser_state list }

type control =
  | C_nop
  | C_seq of control * control
  | C_table of string
  | C_if of bexpr * control * control
  | C_stmt of stmt

type program = {
  p_name : string;
  p_headers : Header.t list;
  p_metadata : (string * int) list;
  p_parser : parser;
  p_actions : action list;
  p_tables : table list;
  p_ingress : control;
  p_egress : control;
}

let find_table p name = List.find_opt (fun t -> String.equal t.t_name name) p.p_tables

let find_table_exn p name =
  match find_table p name with
  | Some t -> t
  | None -> invalid_arg ("Ast.find_table_exn: no table " ^ name)

let find_action p name = List.find_opt (fun a -> String.equal a.a_name name) p.p_actions

let find_action_exn p name =
  match find_action p name with
  | Some a -> a
  | None -> invalid_arg ("Ast.find_action_exn: no action " ^ name)

let find_header p name =
  List.find_opt (fun h -> String.equal h.Header.name name) p.p_headers

let find_key t name = List.find_opt (fun k -> String.equal k.k_name name) t.t_keys

let field_width p fr =
  match fr.fr_header with
  | "std" -> List.assoc fr.fr_field standard_metadata
  | "meta" -> List.assoc fr.fr_field p.p_metadata
  | h -> (
      match find_header p h with
      | None -> raise Not_found
      | Some hdr -> Header.field_width hdr fr.fr_field)

let rec tables_in_control = function
  | C_nop | C_stmt _ -> []
  | C_seq (a, b) -> tables_in_control a @ tables_in_control b
  | C_table name -> [ name ]
  | C_if (_, a, b) -> tables_in_control a @ tables_in_control b

let rec expr_width p action e =
  match e with
  | E_const c -> Bitvec.width c
  | E_field fr -> field_width p fr
  | E_param name -> (
      match action with
      | None -> invalid_arg "Ast.expr_width: parameter outside an action"
      | Some a -> (
          match find_param a name with
          | Some p -> p.p_width
          | None -> raise Not_found))
  | E_not a -> expr_width p action a
  | E_and (a, _) | E_or (a, _) | E_xor (a, _) | E_add (a, _) | E_sub (a, _) ->
      expr_width p action a
  | E_slice (hi, lo, _) -> hi - lo + 1
  | E_concat (a, b) -> expr_width p action a + expr_width p action b
  | E_hash _ -> 16

let key_width p _t k = expr_width p None k.k_expr

let seq controls = List.fold_right (fun c acc -> C_seq (c, acc)) controls C_nop

let normalize_control control =
  let rec flatten = function
    | C_nop -> []
    | C_seq (a, b) -> flatten a @ flatten b
    | C_table _ as c -> [ c ]
    | C_stmt _ as c -> [ c ]
    | C_if (cond, a, b) -> [ C_if (cond, normalize a, normalize b) ]
  and normalize c = seq (flatten c) in
  normalize control
