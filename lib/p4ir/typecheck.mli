(** Static well-formedness checking of P4 model programs.

    A program that passes [check] has the invariants every downstream
    component relies on: all field references resolve at consistent widths,
    all action/table/parser-state references resolve, [@refers_to] targets
    exist with matching key widths, entry restrictions mention only the
    table's own keys, and no table is applied more than once across the
    ingress and egress pipelines (the fixed-function/BMv2 restriction the
    paper discusses in §3). *)

val check : Ast.program -> (unit, string list) result
(** [Error msgs] lists every problem found (not just the first),
    deduplicated, in first-occurrence order. *)

val check_exn : Ast.program -> unit
(** Raises [Invalid_argument] with all messages joined. *)
