(** The P4 model intermediate representation.

    This IR plays the role the P4-16 program plays in the paper: the single
    machine-readable specification of (a) the control-plane API — which
    tables exist, their keys, actions, sizes and constraints — and (b) the
    data-plane forwarding behaviour — parser, match-action pipeline,
    actions. It deliberately covers the language fragment the paper found
    sufficient for modeling fixed-function SAI pipelines: match-action
    tables (exact/LPM/ternary/optional keys), actions with bit-vector
    parameters, conditionals over header/metadata fields, header validity,
    black-box hashes, clone/punt primitives — and none of the constructs
    the paper excluded (header stacks, unions, registers, named
    calculations). *)

module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Constraint_lang = Switchv_p4constraints.Constraint_lang

(** {1 Field references}

    [fr_header] is either a header name (e.g. ["ipv4"]), the user metadata
    pseudo-header ["meta"], or the standard metadata pseudo-header
    ["std"]. *)

type field_ref = { fr_header : string; fr_field : string }

val field : string -> string -> field_ref
(** [field "ipv4" "dst_addr"]. *)

val meta : string -> field_ref
val std : string -> field_ref

val field_ref_to_string : field_ref -> string
(** Dotted form, e.g. ["ipv4.dst_addr"]. *)

val field_ref_of_string : string -> field_ref
(** Inverse of {!field_ref_to_string}: splits at the {e first} ['.'], so
    field names may contain dots but header names may not (none of the
    standard headers do). Raises [Invalid_argument] when the string has no
    dot or either component is empty. *)

(** {1 Standard metadata}

    Every program implicitly carries these intrinsic fields under ["std"]:
    - [ingress_port : 16] — set by the environment before ingress
    - [egress_port : 16] — selected output port
    - [drop : 1] — packet is dropped when set at end of pipeline
    - [punt : 1] — packet is sent to the controller (packet-in)
    - [submit_to_ingress : 1] — controller-injected packet (packet-out)
    - [mirror_session : 16] — nonzero requests a mirror/clone
    - [vrf_action_taken : 1] — scratch bit used by no-op allocation tables *)

val standard_metadata : (string * int) list

(** {1 Expressions} *)

type expr =
  | E_const of Bitvec.t
  | E_field of field_ref
  | E_param of string                    (** action parameter, inside actions only *)
  | E_not of expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_xor of expr * expr
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_slice of int * int * expr          (** hi, lo *)
  | E_concat of expr * expr
  | E_hash of string * expr list
      (** Black-box hash (§3 "Hashing"): identified by name; the concrete
          interpreter applies a pluggable algorithm, the symbolic engine
          treats the result as a free variable. Result width 16. *)

type bexpr =
  | B_true
  | B_false
  | B_is_valid of string                 (** header validity *)
  | B_eq of expr * expr
  | B_ne of expr * expr
  | B_ult of expr * expr
  | B_ule of expr * expr
  | B_not of bexpr
  | B_and of bexpr * bexpr
  | B_or of bexpr * bexpr

(** {1 Actions} *)

type stmt =
  | S_assign of field_ref * expr
  | S_set_valid of string * bool         (** add/remove a header (encap/decap) *)
  | S_nop

type param = {
  p_name : string;
  p_width : int;
  p_refers_to : (string * string) option;
      (** [@refers_to (table, key)] on an action parameter: the supplied
          argument must name an existing entry of that table (e.g. a
          nexthop id passed to [set_nexthop_id]). *)
}

val param : ?refers_to:string * string -> string -> int -> param

type action = {
  a_name : string;
  a_params : param list;
  a_body : stmt list;
}

val find_param : action -> string -> param option

(** {1 Tables} *)

type match_kind = Exact | Lpm | Ternary | Optional

type key = {
  k_name : string;          (** control-plane name, e.g. ["vrf_id"] *)
  k_expr : expr;            (** what the data plane matches on *)
  k_kind : match_kind;
  k_refers_to : (string * string) option;
      (** [@refers_to (table, key)]: referential-integrity annotation. *)
}

type table = {
  t_name : string;
  t_id : int;               (** control-plane table id (unique per program) *)
  t_keys : key list;
  t_actions : string list;  (** permitted action names *)
  t_default_action : string * Bitvec.t list;
  t_size : int;             (** guaranteed minimum number of entries (§3) *)
  t_entry_restriction : Constraint_lang.t option;
  t_selector : bool;
      (** One-shot action-selector table (WCMP): entries carry weighted
          action sets rather than a single action. *)
}

(** {1 Parser}

    A linear state machine, reflecting the paper's semi-hardcoded parser
    support: each state optionally extracts one header and transitions by
    selecting on a field of the packet parsed so far. *)

type transition =
  | T_accept
  | T_select of expr * (Bitvec.t * string) list * string
      (** selector expression, (constant -> state) cases, default state.
          The special state name ["accept"] terminates parsing. *)

type parser_state = {
  ps_name : string;
  ps_extract : string option;            (** header name to extract *)
  ps_next : transition;
}

type parser = { start : string; states : parser_state list }

(** {1 Pipelines} *)

type control =
  | C_nop
  | C_seq of control * control
  | C_table of string
  | C_if of bexpr * control * control
  | C_stmt of stmt
      (** A direct statement in the apply block (metadata computation,
          header validity manipulation). *)

type program = {
  p_name : string;
  p_headers : Header.t list;
  p_metadata : (string * int) list;       (** user metadata fields *)
  p_parser : parser;
  p_actions : action list;
  p_tables : table list;
  p_ingress : control;
  p_egress : control;
}

(** {1 Lookup helpers} *)

val find_table : program -> string -> table option
val find_table_exn : program -> string -> table
val find_action : program -> string -> action option
val find_action_exn : program -> string -> action
val find_header : program -> string -> Header.t option
val find_key : table -> string -> key option

val field_width : program -> field_ref -> int
(** Width of a header field, user metadata field, or standard metadata
    field. Raises [Not_found] for unknown references. *)

val tables_in_control : control -> string list
(** Table names applied, in application order (both branches of an [if]
    are included, condition-first order). *)

val key_width : program -> table -> key -> int
(** Width of the key expression. *)

val expr_width : program -> action option -> expr -> int
(** Width of an expression; [action] supplies parameter widths when the
    expression appears in an action body. *)

val seq : control list -> control
(** Right-nested sequence of controls. *)

val normalize_control : control -> control
(** Canonical form: right-nested sequences with no nested [C_seq] heads and
    no [C_nop] links; [C_if] branches normalised recursively. Two controls
    with equal normal forms execute identically. *)
