(** P4Info: the control-plane view of a P4 model.

    This is the artifact the P4Runtime protocol calls "P4Info" — the schema
    a controller (and SwitchV's fuzzer and oracle) needs to form and judge
    control-plane requests: table ids and names, match fields with kinds
    and bit widths, permitted actions with parameter signatures, size
    guarantees, and whether entry restrictions / reference annotations are
    present. It contains no data-plane behaviour. *)

type match_field = {
  mf_name : string;
  mf_kind : Ast.match_kind;
  mf_width : int;
  mf_refers_to : (string * string) option;
}

type action_ref = {
  ar_name : string;
  ar_params : Ast.param list;
}

type table = {
  ti_name : string;
  ti_id : int;
  ti_match_fields : match_field list;
  ti_actions : action_ref list;
  ti_default_action : string;
  ti_size : int;
  ti_restriction : Switchv_p4constraints.Constraint_lang.t option;
  ti_selector : bool;
}

type t = {
  pi_program : string;
  pi_tables : table list;
}

val of_program : Ast.program -> t

val find_table : t -> string -> table option
val find_table_by_id : t -> int -> table option
val find_match_field : table -> string -> match_field option
val find_action : table -> string -> action_ref option

val requires_priority : table -> bool
(** True when any match field is ternary or optional — such tables take an
    explicit entry priority, per the P4Runtime specification. *)

val digest : t -> string
(** Stable content digest, used as a cache key by p4-symbolic. *)

val pp : Format.formatter -> t -> unit
