module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Constraint_lang = Switchv_p4constraints.Constraint_lang
open Ast

(* --- lexer ------------------------------------------------------------------- *)

type token =
  | T_id of string            (* possibly dotted: headers.ipv4.isValid *)
  | T_int of int
  | T_bv of Bitvec.t          (* width literal: 8w0xff / 8w255 *)
  | T_str of string
  | T_punct of string         (* {}()[];:,=@<> and multi-char ops *)
  | T_eof

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let tokenize source =
  let n = String.length source in
  let line = ref 1 in
  let toks = ref [] in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some source.[!i + k] else None in
  let is_id_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  let is_digit c = c >= '0' && c <= '9' in
  let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') in
  while !i < n do
    let c = source.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && source.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (source.[!i] = '*' && source.[!i + 1] = '/') do
        if source.[!i] = '\n' then incr line;
        incr i
      done;
      i := !i + 2
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && source.[!i] <> '"' do incr i done;
      push (T_str (String.sub source start (!i - start)));
      incr i
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit source.[!i] do incr i done;
      if peek 0 = Some 'w' then begin
        (* width literal *)
        let width = int_of_string (String.sub source start (!i - start)) in
        incr i;
        if peek 0 = Some '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
          i := !i + 2;
          let hstart = !i in
          while !i < n && is_hex source.[!i] do incr i done;
          push (T_bv (Bitvec.of_hex_string ~width (String.sub source hstart (!i - hstart))))
        end
        else begin
          let dstart = !i in
          while !i < n && is_digit source.[!i] do incr i done;
          if !i = dstart then error "line %d: malformed width literal" !line;
          push (T_bv (Bitvec.of_int ~width (int_of_string (String.sub source dstart (!i - dstart)))))
        end
      end
      else push (T_int (int_of_string (String.sub source start (!i - start))))
    end
    else if is_id_char c && c <> '.' then begin
      let start = !i in
      while !i < n && is_id_char source.[!i] do incr i done;
      push (T_id (String.sub source start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub source !i 2 else "" in
      match two with
      | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "++" ->
          push (T_punct two);
          i := !i + 2
      | _ ->
          (match c with
          | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ':' | ',' | '=' | '@' | '<'
          | '>' | '!' | '~' | '&' | '|' | '^' | '+' | '-' ->
              push (T_punct (String.make 1 c))
          | _ -> error "line %d: unexpected character %C" !line c);
          incr i
    end
  done;
  push T_eof;
  Array.of_list (List.rev !toks)

(* --- token stream with backtracking -------------------------------------------- *)

type stream = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1
let save st = st.pos
let restore st p = st.pos <- p

let expect_punct st p =
  match peek st with
  | T_punct q when q = p -> advance st
  | _ -> error "line %d: expected %S" (line st) p

let expect_id st =
  match peek st with
  | T_id s -> advance st; s
  | _ -> error "line %d: expected an identifier" (line st)

let expect_kw st kw =
  match peek st with
  | T_id s when s = kw -> advance st
  | _ -> error "line %d: expected %S" (line st) kw

let expect_int st =
  match peek st with
  | T_int v -> advance st; v
  | _ -> error "line %d: expected an integer" (line st)

let expect_str st =
  match peek st with
  | T_str s -> advance st; s
  | _ -> error "line %d: expected a string literal" (line st)

let accept_punct st p =
  match peek st with
  | T_punct q when q = p -> advance st; true
  | _ -> false

let accept_kw st kw =
  match peek st with
  | T_id s when s = kw -> advance st; true
  | _ -> false

(* --- parsing context ------------------------------------------------------------ *)

(* [headers], [actions], and [tables] accumulate in reverse declaration
   order (cons, not append — appending one element per declaration made
   parsing O(n²) on large models); the program constructor reverses them
   once. *)
type ctx = {
  mutable headers : Header.t list;
  mutable meta_fields : (string * int) list;
  mutable parser_ : Ast.parser option;
  mutable actions : action list;
  mutable tables : table list;
  mutable ingress : control option;
  mutable egress : control option;
}

(* A dotted identifier as a field reference: "a.b" (the "headers." prefix,
   if present, is dropped). *)
let field_ref_of_path line path =
  match String.split_on_char '.' path with
  | [ h; f ] -> { fr_header = h; fr_field = f }
  | [ "headers"; h; f ] -> { fr_header = h; fr_field = f }
  | _ -> error "line %d: %S is not a field reference" line path

(* --- expressions ------------------------------------------------------------------ *)

let binop_of = function
  | "&" -> Some (fun a b -> E_and (a, b))
  | "|" -> Some (fun a b -> E_or (a, b))
  | "^" -> Some (fun a b -> E_xor (a, b))
  | "+" -> Some (fun a b -> E_add (a, b))
  | "-" -> Some (fun a b -> E_sub (a, b))
  | "++" -> Some (fun a b -> E_concat (a, b))
  | _ -> None

(* [in_action] decides whether bare identifiers are action parameters. *)
let rec parse_expr st ~in_action =
  let e =
    match peek st with
    | T_bv v -> advance st; E_const v
    | T_punct "~" ->
        advance st;
        E_not (parse_expr st ~in_action)
    | T_punct "(" ->
        advance st;
        let a = parse_expr st ~in_action in
        let op =
          match peek st with
          | T_punct p -> (
              match binop_of p with
              | Some f -> advance st; f
              | None -> error "line %d: expected a binary operator, got %S" (line st) p)
          | _ -> error "line %d: expected a binary operator" (line st)
        in
        let b = parse_expr st ~in_action in
        expect_punct st ")";
        op a b
    | T_id "hash" ->
        advance st;
        expect_punct st "<";
        let name = expect_id st in
        expect_punct st ">";
        expect_punct st "(";
        let args = ref [] in
        if not (accept_punct st ")") then begin
          let rec go () =
            args := parse_expr st ~in_action :: !args;
            if accept_punct st "," then go () else expect_punct st ")"
          in
          go ()
        end;
        E_hash (name, List.rev !args)
    | T_id path ->
        advance st;
        if String.contains path '.' then E_field (field_ref_of_path (line st) path)
        else if in_action then E_param path
        else error "line %d: bare identifier %S outside an action" (line st) path
    | _ -> error "line %d: expected an expression" (line st)
  in
  (* postfix slices *)
  let rec slices e =
    if accept_punct st "[" then begin
      let hi = expect_int st in
      expect_punct st ":";
      let lo = expect_int st in
      expect_punct st "]";
      slices (E_slice (hi, lo, e))
    end
    else e
  in
  slices e

let is_valid_path path =
  match String.split_on_char '.' path with
  | [ "headers"; h; "isValid" ] -> Some h
  | _ -> None

let rec parse_bexpr st =
  match peek st with
  | T_id "true" -> advance st; B_true
  | T_id "false" -> advance st; B_false
  | T_punct "!" ->
      advance st;
      B_not (parse_bexpr st)
  | T_id path when is_valid_path path <> None ->
      advance st;
      expect_punct st "(";
      expect_punct st ")";
      B_is_valid (Option.get (is_valid_path path))
  | T_punct "(" -> (
      (* Either a parenthesised boolean (b && b) or a parenthesised
         arithmetic operand of a comparison: backtrack on failure. *)
      let mark = save st in
      advance st;
      match parse_bool_tail st with
      | Some b -> b
      | None ->
          restore st mark;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_bool_tail st =
  (* Already past '('. Try: bexpr ('&&'|'||') bexpr ')' *)
  match parse_bexpr st with
  | exception Error _ -> None
  | a -> (
      match peek st with
      | T_punct "&&" ->
          advance st;
          let b = parse_bexpr st in
          expect_punct st ")";
          Some (B_and (a, b))
      | T_punct "||" ->
          advance st;
          let b = parse_bexpr st in
          expect_punct st ")";
          Some (B_or (a, b))
      | _ -> None)

and parse_comparison st =
  let a = parse_expr st ~in_action:false in
  match peek st with
  | T_punct "==" -> advance st; B_eq (a, parse_expr st ~in_action:false)
  | T_punct "!=" -> advance st; B_ne (a, parse_expr st ~in_action:false)
  | T_punct "<" -> advance st; B_ult (a, parse_expr st ~in_action:false)
  | T_punct "<=" -> advance st; B_ule (a, parse_expr st ~in_action:false)
  | _ -> error "line %d: expected a comparison operator" (line st)

(* --- statements --------------------------------------------------------------------- *)

let set_valid_path path =
  match String.split_on_char '.' path with
  | [ "headers"; h; "setValid" ] -> Some (h, true)
  | [ "headers"; h; "setInvalid" ] -> Some (h, false)
  | _ -> None

let parse_stmt st ~in_action =
  match peek st with
  | T_punct ";" -> advance st; S_nop
  | T_id path when set_valid_path path <> None ->
      advance st;
      expect_punct st "(";
      expect_punct st ")";
      expect_punct st ";";
      let h, v = Option.get (set_valid_path path) in
      S_set_valid (h, v)
  | T_id path when String.contains path '.' ->
      advance st;
      let fr = field_ref_of_path (line st) path in
      expect_punct st "=";
      let e = parse_expr st ~in_action in
      expect_punct st ";";
      S_assign (fr, e)
  | _ -> error "line %d: expected a statement" (line st)

(* --- declarations ------------------------------------------------------------------- *)

let parse_bit_field st =
  expect_kw st "bit";
  expect_punct st "<";
  let w = expect_int st in
  expect_punct st ">";
  let name = expect_id st in
  expect_punct st ";";
  (name, w)

let strip_t name =
  if String.length name > 2 && String.sub name (String.length name - 2) 2 = "_t" then
    String.sub name 0 (String.length name - 2)
  else name

let parse_header ctx st =
  let name = strip_t (expect_id st) in
  expect_punct st "{";
  let fields = ref [] in
  while not (accept_punct st "}") do
    fields := parse_bit_field st :: !fields
  done;
  ctx.headers <- Header.make name (List.rev !fields) :: ctx.headers

let parse_metadata ctx st =
  ignore (expect_id st) (* struct name *);
  expect_punct st "{";
  let fields = ref [] in
  while not (accept_punct st "}") do
    fields := parse_bit_field st :: !fields
  done;
  ctx.meta_fields <- List.rev !fields

let extract_path line path =
  match String.split_on_char '.' path with
  | [ "headers"; h ] -> h
  | _ -> error "line %d: expected headers.<name>, got %S" line path

let parse_parser ctx st =
  expect_punct st "(";
  expect_kw st "start";
  expect_punct st "=";
  let start = expect_id st in
  expect_punct st ")";
  expect_punct st "{";
  let states = ref [] in
  while not (accept_punct st "}") do
    expect_kw st "state";
    let ps_name = expect_id st in
    expect_punct st "{";
    let ps_extract =
      if accept_kw st "packet.extract" then begin
        expect_punct st "(";
        let h = extract_path (line st) (expect_id st) in
        expect_punct st ")";
        expect_punct st ";";
        Some h
      end
      else None
    in
    expect_kw st "transition";
    let ps_next =
      if accept_kw st "accept" then begin
        expect_punct st ";";
        T_accept
      end
      else begin
        expect_kw st "select";
        expect_punct st "(";
        let sel = parse_expr st ~in_action:false in
        expect_punct st ")";
        expect_punct st "{";
        let cases = ref [] in
        let default = ref "accept" in
        while not (accept_punct st "}") do
          match peek st with
          | T_id "default" ->
              advance st;
              expect_punct st ":";
              default := expect_id st;
              expect_punct st ";"
          | T_bv c ->
              advance st;
              expect_punct st ":";
              let target = expect_id st in
              expect_punct st ";";
              cases := (c, target) :: !cases
          | _ -> error "line %d: expected a select case" (line st)
        done;
        T_select (sel, List.rev !cases, !default)
      end
    in
    expect_punct st "}";
    states := { ps_name; ps_extract; ps_next } :: !states
  done;
  ctx.parser_ <- Some { start; states = List.rev !states }

let parse_action ctx st =
  let a_name = expect_id st in
  expect_punct st "(";
  let params = ref [] in
  if not (accept_punct st ")") then begin
    let rec go () =
      let refers_to =
        if accept_punct st "@" then begin
          expect_kw st "refers_to";
          expect_punct st "(";
          let tbl = expect_id st in
          expect_punct st ",";
          let key = expect_id st in
          expect_punct st ")";
          Some (tbl, key)
        end
        else None
      in
      expect_kw st "bit";
      expect_punct st "<";
      let w = expect_int st in
      expect_punct st ">";
      let name = expect_id st in
      params := param ?refers_to name w :: !params;
      if accept_punct st "," then go () else expect_punct st ")"
    in
    go ()
  end;
  expect_punct st "{";
  let body = ref [] in
  while not (accept_punct st "}") do
    body := parse_stmt st ~in_action:true :: !body
  done;
  ctx.actions <-
    { a_name; a_params = List.rev !params; a_body = List.rev !body } :: ctx.actions

let kind_of_string line = function
  | "exact" -> Exact
  | "lpm" -> Lpm
  | "ternary" -> Ternary
  | "optional" -> Optional
  | other -> error "line %d: unknown match kind %S" line other

let parse_table ctx st ~restriction ~id =
  let t_name = expect_id st in
  let t_id =
    match id with
    | Some id -> id
    | None -> List.length ctx.tables + 1
  in
  expect_punct st "{";
  expect_kw st "key";
  expect_punct st "=";
  expect_punct st "{";
  let keys = ref [] in
  while not (accept_punct st "}") do
    let k_expr = parse_expr st ~in_action:false in
    expect_punct st ":";
    let k_kind = kind_of_string (line st) (expect_id st) in
    let k_refers_to = ref None in
    let k_name = ref None in
    while accept_punct st "@" do
      match expect_id st with
      | "refers_to" ->
          expect_punct st "(";
          let tbl = expect_id st in
          expect_punct st ",";
          let key = expect_id st in
          expect_punct st ")";
          k_refers_to := Some (tbl, key)
      | "name" ->
          expect_punct st "(";
          k_name := Some (expect_str st);
          expect_punct st ")"
      | other -> error "line %d: unknown key annotation @%s" (line st) other
    done;
    expect_punct st ";";
    let k_name =
      match (!k_name, k_expr) with
      | Some n, _ -> n
      | None, E_field fr -> fr.fr_field
      | None, _ -> error "line %d: key needs a @name annotation" (line st)
    in
    keys := { k_name; k_expr; k_kind; k_refers_to = !k_refers_to } :: !keys
  done;
  expect_kw st "actions";
  expect_punct st "=";
  expect_punct st "{";
  let actions = ref [] in
  let rec go_actions () =
    actions := expect_id st :: !actions;
    if accept_punct st ";" then
      if accept_punct st "}" then () else go_actions ()
    else expect_punct st "}"
  in
  go_actions ();
  expect_kw st "const";
  expect_kw st "default_action";
  expect_punct st "=";
  let dname = expect_id st in
  expect_punct st "(";
  let dargs = ref [] in
  if not (accept_punct st ")") then begin
    let rec go () =
      (match peek st with
      | T_bv v -> advance st; dargs := v :: !dargs
      | _ -> error "line %d: default-action arguments must be width literals" (line st));
      if accept_punct st "," then go () else expect_punct st ")"
    in
    go ()
  end;
  expect_punct st ";";
  let t_selector =
    if accept_kw st "implementation" then begin
      expect_punct st "=";
      expect_kw st "action_selector";
      expect_punct st ";";
      true
    end
    else false
  in
  expect_kw st "size";
  expect_punct st "=";
  let t_size = expect_int st in
  expect_punct st ";";
  expect_punct st "}";
  ctx.tables <-
    { t_name; t_id; t_keys = List.rev !keys; t_actions = List.rev !actions;
      t_default_action = (dname, List.rev !dargs); t_size;
      t_entry_restriction = restriction; t_selector }
    :: ctx.tables

let apply_path path =
  match String.split_on_char '.' path with
  | [ tbl; "apply" ] -> Some tbl
  | _ -> None

let rec parse_control_body st =
  let items = ref [] in
  let rec go () =
    match peek st with
    | T_punct "}" -> advance st
    | T_id "if" ->
        advance st;
        expect_punct st "(";
        let cond = parse_bexpr st in
        expect_punct st ")";
        expect_punct st "{";
        let then_ = parse_control_body st in
        let else_ =
          if accept_kw st "else" then begin
            expect_punct st "{";
            parse_control_body st
          end
          else C_nop
        in
        items := C_if (cond, then_, else_) :: !items;
        go ()
    | T_id path when apply_path path <> None ->
        advance st;
        expect_punct st "(";
        expect_punct st ")";
        expect_punct st ";";
        items := C_table (Option.get (apply_path path)) :: !items;
        go ()
    | _ ->
        items := C_stmt (parse_stmt st ~in_action:false) :: !items;
        go ()
  in
  go ();
  Ast.seq (List.rev !items)

(* --- program ---------------------------------------------------------------------- *)

let parse ~name source =
  try
    let st = { toks = tokenize source; pos = 0 } in
    let ctx =
      { headers = []; meta_fields = []; parser_ = None; actions = []; tables = [];
        ingress = None; egress = None }
    in
    let pending_restriction = ref None in
    let pending_id = ref None in
    let rec go () =
      match peek st with
      | T_eof -> ()
      | T_punct "@" ->
          advance st;
          (match expect_id st with
          | "entry_restriction" ->
              expect_punct st "(";
              let text = expect_str st in
              expect_punct st ")";
              (match Constraint_lang.parse text with
              | Ok c -> pending_restriction := Some c
              | Error msg -> error "line %d: bad entry restriction: %s" (line st) msg)
          | "id" ->
              expect_punct st "(";
              pending_id := Some (expect_int st);
              expect_punct st ")"
          | other -> error "line %d: unknown annotation @%s" (line st) other);
          go ()
      | T_id "header" -> advance st; parse_header ctx st; go ()
      | T_id "struct" -> advance st; parse_metadata ctx st; go ()
      | T_id "parser" -> advance st; parse_parser ctx st; go ()
      | T_id "action" -> advance st; parse_action ctx st; go ()
      | T_id "table" ->
          advance st;
          parse_table ctx st ~restriction:!pending_restriction ~id:!pending_id;
          pending_restriction := None;
          pending_id := None;
          go ()
      | T_id "control" -> (
          advance st;
          let which = expect_id st in
          expect_punct st "{";
          let body = parse_control_body st in
          (match which with
          | "ingress" -> ctx.ingress <- Some body
          | "egress" -> ctx.egress <- Some body
          | other -> error "line %d: unknown control %S" (line st) other);
          go ())
      | T_id other -> error "line %d: unexpected declaration %S" (line st) other
      | _ -> error "line %d: unexpected token" (line st)
    in
    go ();
    let parser_ =
      match ctx.parser_ with
      | Some p -> p
      | None -> error "missing parser declaration"
    in
    Ok
      { p_name = name;
        p_headers = List.rev ctx.headers;
        p_metadata = ctx.meta_fields;
        p_parser = parser_;
        p_actions = List.rev ctx.actions;
        p_tables = List.rev ctx.tables;
        p_ingress = Option.value ~default:C_nop ctx.ingress;
        p_egress = Option.value ~default:C_nop ctx.egress }
  with Error msg -> Result.error msg

let parse_exn ~name source =
  match parse ~name source with
  | Ok p -> p
  | Error msg -> invalid_arg ("P4parser: " ^ msg)

let roundtrip p = parse ~name:p.p_name (Pretty.program_to_string p)
