open Ast
module Bitvec = Switchv_bitvec.Bitvec
module Constraint_lang = Switchv_p4constraints.Constraint_lang

let pp_const fmt c =
  Format.fprintf fmt "%dw0x%s" (Bitvec.width c) (Bitvec.to_hex_string c)

let rec pp_expr fmt = function
  | E_const c -> pp_const fmt c
  | E_field fr -> Format.pp_print_string fmt (field_ref_to_string fr)
  | E_param name -> Format.pp_print_string fmt name
  | E_not a -> Format.fprintf fmt "~%a" pp_expr a
  | E_and (a, b) -> Format.fprintf fmt "(%a & %a)" pp_expr a pp_expr b
  | E_or (a, b) -> Format.fprintf fmt "(%a | %a)" pp_expr a pp_expr b
  | E_xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp_expr a pp_expr b
  | E_add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | E_sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | E_slice (hi, lo, a) -> Format.fprintf fmt "%a[%d:%d]" pp_expr a hi lo
  | E_concat (a, b) -> Format.fprintf fmt "(%a ++ %a)" pp_expr a pp_expr b
  | E_hash (name, args) ->
      Format.fprintf fmt "hash<%s>(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_expr)
        args

let rec pp_bexpr fmt = function
  | B_true -> Format.pp_print_string fmt "true"
  | B_false -> Format.pp_print_string fmt "false"
  | B_is_valid h -> Format.fprintf fmt "headers.%s.isValid()" h
  | B_eq (a, b) -> Format.fprintf fmt "%a == %a" pp_expr a pp_expr b
  | B_ne (a, b) -> Format.fprintf fmt "%a != %a" pp_expr a pp_expr b
  | B_ult (a, b) -> Format.fprintf fmt "%a < %a" pp_expr a pp_expr b
  | B_ule (a, b) -> Format.fprintf fmt "%a <= %a" pp_expr a pp_expr b
  | B_not a -> Format.fprintf fmt "!(%a)" pp_bexpr a
  | B_and (a, b) -> Format.fprintf fmt "(%a && %a)" pp_bexpr a pp_bexpr b
  | B_or (a, b) -> Format.fprintf fmt "(%a || %a)" pp_bexpr a pp_bexpr b

let pp_stmt fmt = function
  | S_nop -> Format.pp_print_string fmt "/* no-op */;"
  | S_assign (fr, e) ->
      Format.fprintf fmt "%s = %a;" (field_ref_to_string fr) pp_expr e
  | S_set_valid (h, true) -> Format.fprintf fmt "headers.%s.setValid();" h
  | S_set_valid (h, false) -> Format.fprintf fmt "headers.%s.setInvalid();" h

let pp_action fmt a =
  let param_to_string p =
    let ann =
      match p.p_refers_to with
      | None -> ""
      | Some (tbl, key) -> Printf.sprintf "@refers_to(%s, %s) " tbl key
    in
    Printf.sprintf "%sbit<%d> %s" ann p.p_width p.p_name
  in
  Format.fprintf fmt "@[<v 2>action %s(%s) {@," a.a_name
    (String.concat ", " (List.map param_to_string a.a_params));
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt fmt a.a_body;
  Format.fprintf fmt "@]@,}"

let kind_to_string = function
  | Exact -> "exact"
  | Lpm -> "lpm"
  | Ternary -> "ternary"
  | Optional -> "optional"

let pp_table p fmt t =
  (match t.t_entry_restriction with
  | Some c ->
      Format.fprintf fmt "@entry_restriction(\"%s\")@," (Constraint_lang.to_string c)
  | None -> ());
  Format.fprintf fmt "@id(%d)@," t.t_id;
  Format.fprintf fmt "@[<v 2>table %s {@," t.t_name;
  Format.fprintf fmt "@[<v 2>key = {@,";
  List.iter
    (fun k ->
      Format.fprintf fmt "%a : %s%s @name(\"%s\");@," pp_expr k.k_expr
        (kind_to_string k.k_kind)
        (match k.k_refers_to with
        | None -> ""
        | Some (tbl, key) -> Printf.sprintf " @refers_to(%s, %s)" tbl key)
        k.k_name)
    t.t_keys;
  Format.fprintf fmt "@]@,}@,";
  Format.fprintf fmt "actions = { %s }@," (String.concat "; " t.t_actions);
  (let dname, dargs = t.t_default_action in
   Format.fprintf fmt "const default_action = %s(%s);@," dname
     (String.concat ", " (List.map (Format.asprintf "%a" pp_const) dargs)));
  (if t.t_selector then Format.fprintf fmt "implementation = action_selector;@,");
  Format.fprintf fmt "size = %d;" t.t_size;
  ignore p;
  Format.fprintf fmt "@]@,}"

let rec pp_control fmt = function
  | C_nop -> ()
  | C_stmt s -> pp_stmt fmt s
  | C_seq (a, C_nop) -> pp_control fmt a
  | C_seq (a, b) ->
      pp_control fmt a;
      Format.pp_print_cut fmt ();
      pp_control fmt b
  | C_table name -> Format.fprintf fmt "%s.apply();" name
  | C_if (cond, a, C_nop) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,}" pp_bexpr cond pp_control a
  | C_if (cond, a, b) ->
      Format.fprintf fmt "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_bexpr
        cond pp_control a pp_control b

let pp_parser fmt parser =
  Format.fprintf fmt "@[<v 2>parser (start = %s) {@," parser.start;
  List.iter
    (fun s ->
      Format.fprintf fmt "@[<v 2>state %s {@," s.ps_name;
      (match s.ps_extract with
      | Some h -> Format.fprintf fmt "packet.extract(headers.%s);@," h
      | None -> ());
      (match s.ps_next with
      | T_accept -> Format.fprintf fmt "transition accept;"
      | T_select (e, cases, default) ->
          Format.fprintf fmt "@[<v 2>transition select(%a) {@," pp_expr e;
          List.iter
            (fun (c, target) ->
              Format.fprintf fmt "%a : %s;@," pp_const c target)
            cases;
          Format.fprintf fmt "default : %s;@]@,}" default);
      Format.fprintf fmt "@]@,}@,")
    parser.states;
  Format.fprintf fmt "@]@,}"

let pp_program fmt p =
  Format.fprintf fmt "@[<v>// P4 model: %s@,@," p.p_name;
  List.iter
    (fun h ->
      Format.fprintf fmt "@[<v 2>header %s_t {@," h.Switchv_packet.Header.name;
      List.iter
        (fun (f : Switchv_packet.Header.field) ->
          Format.fprintf fmt "bit<%d> %s;@," f.f_width f.f_name)
        h.Switchv_packet.Header.fields;
      Format.fprintf fmt "@]@,}@,")
    p.p_headers;
  Format.fprintf fmt "@[<v 2>struct metadata_t {@,";
  List.iter (fun (n, w) -> Format.fprintf fmt "bit<%d> %s;@," w n) p.p_metadata;
  Format.fprintf fmt "@]@,}@,@,";
  pp_parser fmt p.p_parser;
  Format.fprintf fmt "@,@,";
  List.iter (fun a -> Format.fprintf fmt "%a@,@," pp_action a) p.p_actions;
  List.iter (fun t -> Format.fprintf fmt "%a@,@," (pp_table p) t) p.p_tables;
  Format.fprintf fmt "@[<v 2>control ingress {@,%a@]@,}@,@," pp_control p.p_ingress;
  Format.fprintf fmt "@[<v 2>control egress {@,%a@]@,}@,@]" pp_control p.p_egress

let program_to_string p = Format.asprintf "%a" pp_program p
