open Ast
module Header = Switchv_packet.Header
module Constraint_lang = Switchv_p4constraints.Constraint_lang

let check program =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun msg -> errors := msg :: !errors) fmt in

  let check_unique what names =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun n ->
        if Hashtbl.mem tbl n then err "duplicate %s: %s" what n
        else Hashtbl.add tbl n ())
      names
  in

  check_unique "header" (List.map (fun h -> h.Header.name) program.p_headers);
  check_unique "metadata field" (List.map fst program.p_metadata);
  check_unique "action" (List.map (fun a -> a.a_name) program.p_actions);
  check_unique "table" (List.map (fun t -> t.t_name) program.p_tables);
  check_unique "table id"
    (List.map (fun t -> string_of_int t.t_id) program.p_tables);
  List.iter
    (fun h ->
      if String.equal h.Header.name "meta" || String.equal h.Header.name "std" then
        err "header name %s is reserved" h.Header.name)
    program.p_headers;

  let field_ok where fr =
    match field_width program fr with
    | _ -> true
    | exception Not_found ->
        err "%s: unknown field %s" where (field_ref_to_string fr);
        false
  in

  (* Expression checking: returns width when determinable. *)
  let rec check_expr where action e =
    match e with
    | E_const c -> Some (Switchv_bitvec.Bitvec.width c)
    | E_field fr -> if field_ok where fr then Some (field_width program fr) else None
    | E_param name -> (
        match action with
        | None ->
            err "%s: action parameter %s used outside an action" where name;
            None
        | Some a -> (
            match find_param a name with
            | Some p -> Some p.p_width
            | None ->
                err "%s: unknown action parameter %s" where name;
                None))
    | E_not a -> check_expr where action a
    | E_and (a, b) | E_or (a, b) | E_xor (a, b) | E_add (a, b) | E_sub (a, b) -> (
        let wa = check_expr where action a and wb = check_expr where action b in
        match (wa, wb) with
        | Some x, Some y when x <> y ->
            err "%s: width mismatch %d vs %d" where x y;
            None
        | Some x, Some _ -> Some x
        | _ -> None)
    | E_slice (hi, lo, a) -> (
        match check_expr where action a with
        | Some w ->
            if lo < 0 || hi >= w || hi < lo then begin
              err "%s: bad slice [%d:%d] of width %d" where hi lo w;
              None
            end
            else Some (hi - lo + 1)
        | None -> None)
    | E_concat (a, b) -> (
        match (check_expr where action a, check_expr where action b) with
        | Some x, Some y -> Some (x + y)
        | _ -> None)
    | E_hash (_, args) ->
        List.iter (fun a -> ignore (check_expr where action a)) args;
        Some 16
  in

  let rec check_bexpr where action b =
    match b with
    | B_true | B_false -> ()
    | B_is_valid h ->
        if find_header program h = None then err "%s: isValid on unknown header %s" where h
    | B_eq (a, b) | B_ne (a, b) | B_ult (a, b) | B_ule (a, b) -> (
        match (check_expr where action a, check_expr where action b) with
        | Some x, Some y when x <> y -> err "%s: comparison width mismatch %d vs %d" where x y
        | _ -> ())
    | B_not a -> check_bexpr where action a
    | B_and (a, b) | B_or (a, b) ->
        check_bexpr where action a;
        check_bexpr where action b
  in

  (* Actions *)
  List.iter
    (fun a ->
      let where = "action " ^ a.a_name in
      check_unique (where ^ " parameter")
        (List.map (fun (p : param) -> p.p_name) a.a_params);
      List.iter
        (fun (p : param) ->
          if p.p_width < 1 then
            err "%s: parameter %s has width %d" where p.p_name p.p_width;
          match p.p_refers_to with
          | None -> ()
          | Some (target_table, target_key) -> (
              match find_table program target_table with
              | None ->
                  err "%s: parameter %s @refers_to unknown table %s" where p.p_name
                    target_table
              | Some tt -> (
                  match find_key tt target_key with
                  | None ->
                      err "%s: parameter %s @refers_to %s.%s: no such key" where p.p_name
                        target_table target_key
                  | Some tk -> (
                      match check_expr ("table " ^ target_table) None tk.k_expr with
                      | Some w when w <> p.p_width ->
                          err "%s: parameter %s @refers_to %s.%s width mismatch (%d vs %d)"
                            where p.p_name target_table target_key p.p_width w
                      | _ -> ()))))
        a.a_params;
      List.iter
        (function
          | S_nop -> ()
          | S_set_valid (h, _) ->
              if find_header program h = None then
                err "%s: setValid on unknown header %s" where h
          | S_assign (fr, e) ->
              if field_ok where fr then begin
                let target_w = field_width program fr in
                match check_expr where (Some a) e with
                | Some w when w <> target_w ->
                    err "%s: assigning width %d to %s of width %d" where w
                      (field_ref_to_string fr) target_w
                | _ -> ()
              end
              else ignore (check_expr where (Some a) e))
        a.a_body)
    program.p_actions;

  (* Tables *)
  List.iter
    (fun t ->
      let where = "table " ^ t.t_name in
      check_unique (where ^ " key") (List.map (fun k -> k.k_name) t.t_keys);
      if t.t_size < 1 then err "%s: size %d < 1" where t.t_size;
      List.iter
        (fun k ->
          ignore (check_expr where None k.k_expr);
          (match k.k_refers_to with
          | None -> ()
          | Some (target_table, target_key) -> (
              match find_table program target_table with
              | None -> err "%s: @refers_to unknown table %s" where target_table
              | Some tt -> (
                  match find_key tt target_key with
                  | None ->
                      err "%s: @refers_to %s.%s: no such key" where target_table target_key
                  | Some tk -> (
                      match
                        ( check_expr where None k.k_expr,
                          check_expr ("table " ^ target_table) None tk.k_expr )
                      with
                      | Some w1, Some w2 when w1 <> w2 ->
                          err "%s: @refers_to %s.%s width mismatch (%d vs %d)" where
                            target_table target_key w1 w2
                      | _ -> ())))))
        t.t_keys;
      List.iter
        (fun aname ->
          if find_action program aname = None then err "%s: unknown action %s" where aname)
        t.t_actions;
      (let dname, dargs = t.t_default_action in
       match find_action program dname with
       | None -> err "%s: unknown default action %s" where dname
       | Some a ->
           if not (List.mem dname t.t_actions) then
             err "%s: default action %s not in the table's action list" where dname;
           if List.length dargs <> List.length a.a_params then
             err "%s: default action %s expects %d args, got %d" where dname
               (List.length a.a_params) (List.length dargs)
           else
             List.iter2
               (fun prm arg ->
                 if Switchv_bitvec.Bitvec.width arg <> prm.p_width then
                   err "%s: default arg for %s has width %d, expected %d" where prm.p_name
                     (Switchv_bitvec.Bitvec.width arg) prm.p_width)
               a.a_params dargs);
      (match t.t_entry_restriction with
      | None -> ()
      | Some c ->
          List.iter
            (fun kname ->
              if find_key t kname = None then
                err "%s: entry restriction references unknown key %s" where kname)
            (Constraint_lang.keys c)))
    program.p_tables;

  (* Parser *)
  let state_names = List.map (fun s -> s.ps_name) program.p_parser.states in
  check_unique "parser state" state_names;
  if not (List.mem program.p_parser.start state_names) then
    err "parser: unknown start state %s" program.p_parser.start;
  List.iter
    (fun s ->
      let where = "parser state " ^ s.ps_name in
      (match s.ps_extract with
      | Some h when find_header program h = None -> err "%s: extracts unknown header %s" where h
      | _ -> ());
      match s.ps_next with
      | T_accept -> ()
      | T_select (e, cases, default) ->
          ignore (check_expr where None e);
          List.iter
            (fun (_, target) ->
              if target <> "accept" && not (List.mem target state_names) then
                err "%s: transition to unknown state %s" where target)
            (cases @ [ (Switchv_bitvec.Bitvec.zero 1, default) ]))
    program.p_parser.states;

  (* Pipelines: references and the single-application restriction. *)
  let applied = tables_in_control program.p_ingress @ tables_in_control program.p_egress in
  List.iter
    (fun name ->
      if find_table program name = None then err "pipeline: unknown table %s" name)
    applied;
  check_unique "table application (tables cannot be revisited)" applied;
  let rec check_control where = function
    | C_nop | C_table _ -> ()
    | C_seq (a, b) ->
        check_control where a;
        check_control where b
    | C_if (cond, a, b) ->
        check_bexpr where None cond;
        check_control where a;
        check_control where b
    | C_stmt stmt -> (
        match stmt with
        | S_nop -> ()
        | S_set_valid (h, _) ->
            if find_header program h = None then
              err "%s: setValid on unknown header %s" where h
        | S_assign (fr, e) ->
            if field_ok where fr then begin
              let target_w = field_width program fr in
              match check_expr where None e with
              | Some w when w <> target_w ->
                  err "%s: assigning width %d to %s of width %d" where w
                    (field_ref_to_string fr) target_w
              | _ -> ()
            end
            else ignore (check_expr where None e))
  in
  check_control "ingress" program.p_ingress;
  check_control "egress" program.p_egress;

  (* The same defect can be reported from several walks (e.g. an unknown
     metadata field read in both pipelines); keep the first occurrence of
     each message so callers see each problem once, in discovery order. *)
  let seen = Hashtbl.create 16 in
  let msgs =
    List.filter
      (fun m ->
        if Hashtbl.mem seen m then false
        else begin
          Hashtbl.add seen m ();
          true
        end)
      (List.rev !errors)
  in
  match msgs with [] -> Ok () | msgs -> Error msgs

let check_exn program =
  match check program with
  | Ok () -> ()
  | Error msgs -> invalid_arg ("Typecheck: " ^ String.concat "; " msgs)
