module Constraint_lang = Switchv_p4constraints.Constraint_lang

type match_field = {
  mf_name : string;
  mf_kind : Ast.match_kind;
  mf_width : int;
  mf_refers_to : (string * string) option;
}

type action_ref = {
  ar_name : string;
  ar_params : Ast.param list;
}

type table = {
  ti_name : string;
  ti_id : int;
  ti_match_fields : match_field list;
  ti_actions : action_ref list;
  ti_default_action : string;
  ti_size : int;
  ti_restriction : Constraint_lang.t option;
  ti_selector : bool;
}

type t = {
  pi_program : string;
  pi_tables : table list;
}

let of_program (p : Ast.program) =
  let action_ref name =
    let a = Ast.find_action_exn p name in
    { ar_name = a.Ast.a_name; ar_params = a.Ast.a_params }
  in
  let table (t : Ast.table) =
    { ti_name = t.t_name;
      ti_id = t.t_id;
      ti_match_fields =
        List.map
          (fun (k : Ast.key) ->
            { mf_name = k.k_name;
              mf_kind = k.k_kind;
              mf_width = Ast.key_width p t k;
              mf_refers_to = k.k_refers_to })
          t.t_keys;
      ti_actions = List.map action_ref t.t_actions;
      ti_default_action = fst t.t_default_action;
      ti_size = t.t_size;
      ti_restriction = t.t_entry_restriction;
      ti_selector = t.t_selector }
  in
  { pi_program = p.p_name; pi_tables = List.map table p.p_tables }

let find_table t name = List.find_opt (fun ti -> String.equal ti.ti_name name) t.pi_tables
let find_table_by_id t id = List.find_opt (fun ti -> ti.ti_id = id) t.pi_tables

let find_match_field ti name =
  List.find_opt (fun mf -> String.equal mf.mf_name name) ti.ti_match_fields

let find_action ti name =
  List.find_opt (fun ar -> String.equal ar.ar_name name) ti.ti_actions

let requires_priority ti =
  List.exists
    (fun mf -> match mf.mf_kind with Ast.Ternary | Ast.Optional -> true | _ -> false)
    ti.ti_match_fields

(* No_sharing so the digest depends only on content, not on how the value
   was constructed in memory. *)
let digest t = Digest.to_hex (Digest.string (Marshal.to_string t [ Marshal.No_sharing ]))

let kind_to_string = function
  | Ast.Exact -> "exact"
  | Ast.Lpm -> "lpm"
  | Ast.Ternary -> "ternary"
  | Ast.Optional -> "optional"

let pp fmt t =
  Format.fprintf fmt "@[<v>P4Info for %s@," t.pi_program;
  List.iter
    (fun ti ->
      Format.fprintf fmt "@[<v 2>table %s (id %d, size %d%s)@," ti.ti_name ti.ti_id
        ti.ti_size (if ti.ti_selector then ", selector" else "");
      List.iter
        (fun mf ->
          Format.fprintf fmt "key %s : %s<%d>%s@," mf.mf_name (kind_to_string mf.mf_kind)
            mf.mf_width
            (match mf.mf_refers_to with
            | None -> ""
            | Some (tbl, k) -> Printf.sprintf " @refers_to(%s, %s)" tbl k))
        ti.ti_match_fields;
      List.iter
        (fun ar ->
          Format.fprintf fmt "action %s(%s)@," ar.ar_name
            (String.concat ", "
               (List.map
                  (fun (p : Ast.param) -> Printf.sprintf "%s:%d" p.p_name p.p_width)
                  ar.ar_params)))
        ti.ti_actions;
      (match ti.ti_restriction with
      | Some c -> Format.fprintf fmt "@entry_restriction(%s)@," (Constraint_lang.to_string c)
      | None -> ());
      Format.fprintf fmt "@]@,")
    t.pi_tables;
  Format.fprintf fmt "@]"
