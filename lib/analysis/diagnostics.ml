type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" | "warn" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type t = {
  d_code : string;
  d_severity : severity;
  d_loc : string;
  d_message : string;
}

let make d_code d_severity ~loc fmt =
  Printf.ksprintf
    (fun d_message -> { d_code; d_severity; d_loc = loc; d_message })
    fmt

let error code ~loc fmt = make code Error ~loc fmt
let warning code ~loc fmt = make code Warning ~loc fmt
let info code ~loc fmt = make code Info ~loc fmt

let filter ~min_severity ds =
  List.filter (fun d -> severity_rank d.d_severity >= severity_rank min_severity) ds

let has_errors ds = List.exists (fun d -> d.d_severity = Error) ds

let count sev ds = List.length (List.filter (fun d -> d.d_severity = sev) ds)

let dedup ds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let key = (d.d_code, d.d_loc, d.d_message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ds

(* Severity first (errors on top), then (loc, code, message): a total,
   input-order-independent key, so lint output is deterministic across
   OCaml versions and discovery orders. The sort is stable, but stability
   only matters for exact duplicates — which [dedup] removes. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank b.d_severity) (severity_rank a.d_severity) in
      if c <> 0 then c
      else
        let c = compare a.d_loc b.d_loc in
        if c <> 0 then c
        else
          let c = compare a.d_code b.d_code in
          if c <> 0 then c else compare a.d_message b.d_message)
    ds

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s"
    (severity_to_string d.d_severity)
    d.d_code d.d_loc d.d_message

let pp_summary fmt ds =
  let plural n = if n = 1 then "" else "s" in
  let e = count Error ds and w = count Warning ds and i = count Info ds in
  Format.fprintf fmt "%d error%s, %d warning%s, %d info" e (plural e) w (plural w) i
