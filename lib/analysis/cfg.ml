module Ast = Switchv_p4ir.Ast

type action_role = Hit | Miss

type node_kind =
  | N_entry
  | N_exit
  | N_parser_state of Ast.parser_state
  | N_parser_accept
  | N_stmt of Ast.stmt
  | N_cond of int * Ast.bexpr
  | N_table of Ast.table
  | N_action of Ast.table * string * action_role

type node = {
  n_id : int;
  n_kind : node_kind;
  n_where : string;
  mutable n_succ : int list;
  mutable n_pred : int list;
}

type t = {
  program : Ast.program;
  nodes : node array;
  entry : int;
  exit_ : int;
}

let rec count_ifs = function
  | Ast.C_nop | Ast.C_stmt _ | Ast.C_table _ -> 0
  | Ast.C_seq (a, b) -> count_ifs a + count_ifs b
  | Ast.C_if (_, a, b) -> 1 + count_ifs a + count_ifs b

let build (program : Ast.program) =
  let nodes = ref [] in
  let count = ref 0 in
  let mk where kind =
    let n =
      { n_id = !count; n_kind = kind; n_where = where; n_succ = []; n_pred = [] }
    in
    incr count;
    nodes := n :: !nodes;
    n
  in
  (* Successor lists are built in reverse (cons — appending one id at a
     time was quadratic in a node's out-degree) and reversed once in the
     finalization pass below, which restores connect-call order. *)
  let connect n id = n.n_succ <- id :: n.n_succ in
  let entry = mk "" N_entry in
  let exit_ = mk "" N_exit in
  let accept = mk "parser" N_parser_accept in
  (* Parser states and their transitions. *)
  let state_nodes =
    List.map (fun s -> (s.Ast.ps_name, mk "parser" (N_parser_state s)))
      program.p_parser.states
  in
  let state_node name =
    if String.equal name "accept" then Some accept
    else List.assoc_opt name state_nodes
  in
  (match state_node program.p_parser.start with
  | Some s -> connect entry s.n_id
  | None -> connect entry accept.n_id);
  List.iter
    (fun s ->
      let node = List.assoc s.Ast.ps_name state_nodes in
      match s.Ast.ps_next with
      | Ast.T_accept -> connect node accept.n_id
      | Ast.T_select (_, cases, default) ->
          let seen = Hashtbl.create 4 in
          List.iter
            (fun target ->
              if not (Hashtbl.mem seen target) then begin
                Hashtbl.add seen target ();
                match state_node target with
                | Some n -> connect node n.n_id
                | None -> ()
              end)
            (List.map snd cases @ [ default ]))
    program.p_parser.states;
  (* Pipelines. [build_control c succ next] wires every exit of [c] to
     node [succ] and returns the entry node id; [next] is the branch id of
     the first [C_if] in execution order, matching Symexec's pre-order
     counter (incremented at each [C_if], then-arm before else-arm). *)
  let rec build_control where c succ next =
    match c with
    | Ast.C_nop -> succ
    | Ast.C_stmt s ->
        let n = mk where (N_stmt s) in
        connect n succ;
        n.n_id
    | Ast.C_seq (a, b) ->
        let b_entry = build_control where b succ (next + count_ifs a) in
        build_control where a b_entry next
    | Ast.C_table name -> (
        match Ast.find_table program name with
        | None -> succ
        | Some t ->
            let tn = mk where (N_table t) in
            let add_action aname role =
              let an = mk where (N_action (t, aname, role)) in
              connect tn an.n_id;
              connect an succ
            in
            List.iter (fun a -> add_action a Hit) t.t_actions;
            add_action (fst t.t_default_action) Miss;
            tn.n_id)
    | Ast.C_if (cond, a, b) ->
        let then_entry = build_control where a succ (next + 1) in
        let else_entry = build_control where b succ (next + 1 + count_ifs a) in
        let n = mk where (N_cond (next, cond)) in
        (* Positional invariant: successor 0 is then, 1 is else — stored
           reversed here, like every in-construction successor list, so the
           finalization reversal below restores then-first. *)
        n.n_succ <- [ else_entry; then_entry ];
        n.n_id
  in
  let ingress_ifs = count_ifs program.p_ingress in
  let egress_entry = build_control "egress" program.p_egress exit_.n_id (1 + ingress_ifs) in
  let ingress_entry = build_control "ingress" program.p_ingress egress_entry 1 in
  connect accept ingress_entry;
  let arr = Array.make !count entry in
  List.iter (fun n -> arr.(n.n_id) <- n) !nodes;
  Array.iter (fun n -> n.n_succ <- List.rev n.n_succ) arr;
  Array.iter
    (fun n -> List.iter (fun s -> arr.(s).n_pred <- n.n_id :: arr.(s).n_pred) n.n_succ)
    arr;
  { program; nodes = arr; entry = entry.n_id; exit_ = exit_.n_id }

let node_loc n =
  match n.n_kind with
  | N_entry -> "entry"
  | N_exit -> "exit"
  | N_parser_state s -> "parser state " ^ s.Ast.ps_name
  | N_parser_accept -> "parser accept"
  | N_stmt _ -> n.n_where
  | N_cond _ -> n.n_where
  | N_table t -> "table " ^ t.Ast.t_name
  | N_action (t, a, _) -> Printf.sprintf "action %s (table %s)" a t.Ast.t_name

let iter f t = Array.iter f t.nodes
