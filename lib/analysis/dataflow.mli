(** A small forward-dataflow framework over {!Cfg}.

    Instantiate {!Forward} with a join-semilattice and run a worklist
    fixpoint. Facts flow along CFG edges; a node with no incoming fact is
    unreachable and its transfer never runs, so analyses get reachability
    pruning for free. The optional [edge] callback can refine the fact per
    outgoing edge (e.g. "the then-edge of [isValid(ipv4)] implies ipv4 is
    valid") or kill the edge entirely by returning [None] — which is how
    conditional constant propagation stops facts from flowing into
    statically-dead arms. *)

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound of facts arriving over different edges. *)

  val widen : t -> t -> t
  (** [widen old new_] accelerates convergence on cycles (parser loops).
      Called instead of [join] once a node has been revisited many times;
      a domain of finite height can make this [join]. *)
end

type 'a result = {
  before : 'a option array;
      (** fact at node entry, indexed by node id; [None] = unreachable *)
  after : 'a option array;  (** fact at node exit *)
}

module Forward (D : DOMAIN) : sig
  val run :
    ?edge:(Cfg.node -> int -> D.t -> D.t option) ->
    Cfg.t ->
    init:D.t ->
    transfer:(Cfg.node -> D.t -> D.t) ->
    D.t result
  (** [run ?edge cfg ~init ~transfer] seeds the CFG entry node with [init]
      and iterates to a fixpoint. [edge node i fact] refines the [after]
      fact of [node] for its [i]-th successor; returning [None] kills that
      edge. *)
end
