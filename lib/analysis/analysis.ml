module Ast = Switchv_p4ir.Ast
module Telemetry = Switchv_telemetry.Telemetry

type facts = {
  f_dead_tables : string list;
  f_unapplied_tables : string list;
  f_dead_branch_labels : string list;
  f_unsat_restriction_tables : string list;
  f_taint : Taint.summary;
}

let no_facts =
  { f_dead_tables = []; f_unapplied_tables = []; f_dead_branch_labels = [];
    f_unsat_restriction_tables = []; f_taint = Taint.empty }

type report = { r_diagnostics : Diagnostics.t list; r_facts : facts }

module SSet = Set.Make (String)

let run ?(check_restrictions = true) (program : Ast.program) =
  let tm = Telemetry.get () in
  Telemetry.with_span tm "analysis.run" (fun () ->
      Telemetry.incr tm "analysis.runs";
      let cfg = Cfg.build program in
      let validity = Validity.analyze cfg in
      let cp = Constprop.analyze cfg ~validity in
      let reach = Reachability.analyze cfg ~verdict:(Constprop.verdict cp) in
      let reachable = Reachability.reachable reach in
      let diags = ref [] in
      let add d = diags := d :: !diags in
      (* Header-validity reads (P4A001 / P4A002). *)
      List.iter add (Validity.check_reads ~reachable cfg validity);
      (* Table liveness: split defined tables into applied-and-reachable,
         applied-but-dead (P4A003), and never applied (P4A007). *)
      let applied = Hashtbl.create 16 and live = Hashtbl.create 16 in
      Cfg.iter
        (fun node ->
          match node.Cfg.n_kind with
          | Cfg.N_table t ->
              Hashtbl.replace applied t.Ast.t_name ();
              if reachable node.Cfg.n_id then
                Hashtbl.replace live t.Ast.t_name ()
          | _ -> ())
        cfg;
      let dead_tables = ref [] and unapplied = ref [] in
      List.iter
        (fun (t : Ast.table) ->
          let name = t.Ast.t_name in
          if not (Hashtbl.mem applied name) then begin
            unapplied := name :: !unapplied;
            add
              (Diagnostics.info "P4A007" ~loc:("table " ^ name)
                 "table is defined but never applied in any pipeline")
          end
          else if not (Hashtbl.mem live name) then begin
            dead_tables := name :: !dead_tables;
            add
              (Diagnostics.error "P4A003" ~loc:("table " ^ name)
                 "table is applied only on statically-unreachable paths")
          end)
        program.Ast.p_tables;
      let dead_tables = List.rev !dead_tables
      and unapplied = List.rev !unapplied in
      (* Unreachable parser states (P4A005). *)
      Cfg.iter
        (fun node ->
          match node.Cfg.n_kind with
          | Cfg.N_parser_state s when not (reachable node.Cfg.n_id) ->
              add
                (Diagnostics.warning "P4A005"
                   ~loc:("parser state " ^ s.Ast.ps_name)
                   "parser state is unreachable from the start state")
          | _ -> ())
        cfg;
      (* Statically-decided branches (P4A006) + dead symbolic branch
         labels. Unreachable conditionals contribute both arms to the
         dead-label set but no P4A006 (the enclosing dead path is already
         reported once, at its cause). *)
      let dead_labels = ref [] in
      let dead_label id arm = dead_labels := Printf.sprintf "branch.%d.%s" id arm :: !dead_labels in
      Cfg.iter
        (fun node ->
          match node.Cfg.n_kind with
          | Cfg.N_cond (id, _) ->
              if not (reachable node.Cfg.n_id) then begin
                dead_label id "then";
                dead_label id "else"
              end
              else (
                match Constprop.verdict cp id with
                | Some b ->
                    dead_label id (if b then "else" else "then");
                    add
                      (Diagnostics.warning "P4A006" ~loc:(Cfg.node_loc node)
                         "condition of branch %d is always %b; the %s arm \
                          never executes"
                         id b
                         (if b then "else" else "then"))
                | None -> ())
          | _ -> ())
        cfg;
      let dead_labels = List.rev !dead_labels in
      (* Actions referenced by no live table (P4A008). Never-applied
         tables still count — the control plane may exercise them. *)
      let referenced =
        List.fold_left
          (fun acc (t : Ast.table) ->
            if List.mem t.Ast.t_name dead_tables then acc
            else
              SSet.union acc
                (SSet.of_list (fst t.Ast.t_default_action :: t.Ast.t_actions)))
          SSet.empty program.Ast.p_tables
      in
      List.iter
        (fun (a : Ast.action) ->
          if not (SSet.mem a.Ast.a_name referenced) then
            add
              (Diagnostics.warning "P4A008" ~loc:("action " ^ a.Ast.a_name)
                 "action is referenced by no live table"))
        program.Ast.p_actions;
      (* Nondeterminism taint (P4A009 / P4A010). Warnings, not errors:
         matching on a hash-derived value is exactly what WCMP pipelines
         do on purpose — the findings tell the oracle (and the user) where
         deterministic prediction is impossible, not that the model is
         broken. *)
      let taint = Taint.analyze cfg in
      List.iter
        (fun (tname, keys) ->
          add
            (Diagnostics.warning "P4A009" ~loc:("table " ^ tname)
               "table matches on nondeterministic (hash/selector-tainted) \
                key%s %s"
               (if List.length keys = 1 then "" else "s")
               (String.concat ", " keys)))
        taint.Taint.s_tainted_keys;
      (match List.assoc_opt "std.egress_port" taint.Taint.s_exit_fields with
      | Some srcs ->
          add
            (Diagnostics.warning "P4A010" ~loc:"std.egress_port"
               "egress-port selection depends on nondeterministic sources \
                (%s); the oracle uses set-valued verdicts here"
               (String.concat ", " srcs))
      | None -> ());
      (* Entry-restriction satisfiability (P4A004). *)
      let unsat =
        if check_restrictions then Restriction.unsat_tables program else []
      in
      List.iter
        (fun name ->
          add
            (Diagnostics.error "P4A004" ~loc:("table " ^ name)
               "entry restriction is unsatisfiable: no entry can ever be \
                installed"))
        unsat;
      let diagnostics = Diagnostics.sort (Diagnostics.dedup (List.rev !diags)) in
      Telemetry.incr tm ~n:(Diagnostics.count Diagnostics.Error diagnostics)
        "analysis.diagnostics_error";
      Telemetry.incr tm ~n:(Diagnostics.count Diagnostics.Warning diagnostics)
        "analysis.diagnostics_warning";
      Telemetry.incr tm ~n:(Diagnostics.count Diagnostics.Info diagnostics)
        "analysis.diagnostics_info";
      { r_diagnostics = diagnostics;
        r_facts =
          { f_dead_tables = dead_tables; f_unapplied_tables = unapplied;
            f_dead_branch_labels = dead_labels;
            f_unsat_restriction_tables = unsat; f_taint = taint } })

let facts ?check_restrictions program =
  (run ?check_restrictions program).r_facts
