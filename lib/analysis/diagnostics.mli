(** Findings produced by the static analyses, with stable codes.

    Every pass reports through this module so consumers (the [switchv
    lint] subcommand, tests, telemetry) see one uniform shape. Codes are
    stable identifiers — tests and suppression lists key on them, so a
    code is never reused for a different defect class.

    The shipped codes:

    - [P4A001] {e error} — a header field is read at a point where the
      header is provably never valid (includes [setInvalid]-then-read).
    - [P4A002] {e warning} — a header field is read at a point where the
      header is not provably valid on every path to the read.
    - [P4A003] {e error} — a table is applied in a pipeline, but only on
      statically-unreachable paths (e.g. under a branch whose condition
      constant/range propagation decides is always false).
    - [P4A004] {e error} — a table's [@entry_restriction] is
      unsatisfiable: no entry can ever be installed, so the fuzzer would
      silently generate nothing and every coverage goal for it is dead.
    - [P4A005] {e warning} — a parser state is unreachable from the start
      state.
    - [P4A006] {e warning} — a pipeline conditional is statically decided
      (one arm can never execute).
    - [P4A007] {e info} — a table is defined but never applied in any
      pipeline. This is legitimate for control-plane-only resources (the
      SAI mirror-session table), hence info severity.
    - [P4A008] {e warning} — an action is referenced by no live table.
      Never-applied tables ([P4A007]) still count as referencing their
      actions (the control plane may exercise them); statically-dead
      tables ([P4A003]) do not.
    - [P4A009] {e warning} — a table matches on a value tainted by a
      nondeterminism source (an [E_hash] result or an action-selector
      member choice): which entry wins cannot be predicted
      deterministically.
    - [P4A010] {e warning} — taint reaches the egress specification
      ([std.egress_port] may hold a tainted value at pipeline exit): the
      oracle falls back to set-valued verdicts for affected packets. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_string : string -> severity option
(** Accepts ["error"], ["warning"] (or ["warn"]), ["info"]. *)

val severity_rank : severity -> int
(** [Error] > [Warning] > [Info]; for ordering and filtering. *)

type t = {
  d_code : string;      (** stable code, e.g. ["P4A003"] *)
  d_severity : severity;
  d_loc : string;       (** program location, e.g. ["table ipv4_table"] *)
  d_message : string;
}

val error : string -> loc:string -> ('a, unit, string, t) format4 -> 'a
(** [error code ~loc fmt ...] builds an error-severity finding. *)

val warning : string -> loc:string -> ('a, unit, string, t) format4 -> 'a
val info : string -> loc:string -> ('a, unit, string, t) format4 -> 'a

val filter : min_severity:severity -> t list -> t list
(** Keep findings at or above the given severity. *)

val has_errors : t list -> bool

val count : severity -> t list -> int

val dedup : t list -> t list
(** Drop exact duplicates (same code, location, and message), preserving
    first-occurrence order. *)

val sort : t list -> t list
(** Sort by (descending severity, location, code, message) — a total key,
    so the order is deterministic regardless of discovery order or OCaml
    version. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[P4A001] table t: message]. *)

val pp_summary : Format.formatter -> t list -> unit
(** One line of totals: [2 errors, 3 warnings, 1 info]. *)
