(** The analysis driver: build the {!Cfg}, run every pass, and collect
    both human-facing {!Diagnostics} and machine-facing {!facts}.

    The facts are what the rest of the pipeline consumes: the symbolic
    packet generator prunes coverage goals over dead tables and
    statically-decided branches ([Switchv_symbolic.Packetgen.prune_goals]),
    and the fuzzer skips tables whose entry restriction is unsatisfiable.
    Both savings are observable as [analysis.*] telemetry counters.

    Every [run] increments [analysis.runs] and the per-severity
    [analysis.diagnostics_error] / [_warning] / [_info] counters (created
    at 0 even when nothing fires), inside an [analysis.run] span. *)

module Ast = Switchv_p4ir.Ast

type facts = {
  f_dead_tables : string list;
      (** applied, but only on statically-unreachable paths ([P4A003]) *)
  f_unapplied_tables : string list;
      (** defined but never applied in any pipeline ([P4A007]) *)
  f_dead_branch_labels : string list;
      (** Symexec trace labels ([branch.N.then] / [branch.N.else]) of
          branch arms that can never execute — decided arms of reachable
          conditionals plus both arms of unreachable ones *)
  f_unsat_restriction_tables : string list;
      (** entry restriction provably unsatisfiable ([P4A004]) *)
  f_taint : Taint.summary;
      (** nondeterminism taint ([P4A009] / [P4A010]): tainted branches,
          output fields, keys and egress writers — consumed by
          [Packetgen.prune_tainted_goals] and the set-valued data-plane
          oracle *)
}

val no_facts : facts
(** All-empty: the identity for pruning (nothing is pruned). *)

type report = { r_diagnostics : Diagnostics.t list; r_facts : facts }
(** Diagnostics are deduplicated and sorted by descending severity. *)

val run : ?check_restrictions:bool -> Ast.program -> report
(** [check_restrictions] (default [true]) controls the BDD satisfiability
    pre-check — the one pass that is not linear in the program, so callers
    that only want reachability facts (e.g. goal pruning on a hot path)
    can turn it off. *)

val facts : ?check_restrictions:bool -> Ast.program -> facts
(** [r_facts] of {!run}, for consumers that ignore diagnostics. *)
