module Ast = Switchv_p4ir.Ast
module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module FMap = Map.Make (String)

type value = Top | Range of int * int

(* Ranges are plain OCaml ints; fields wider than this are not tracked.
   62 leaves headroom so [mask] and concatenation never overflow. *)
let max_width = 62

let mask w = (1 lsl w) - 1

(* A fact maps [field_ref_to_string] keys to abstract values; keys absent
   from the map are Top, so we normalise by never storing Top. *)
type fact = value FMap.t

let value_of fact fr =
  match FMap.find_opt (Ast.field_ref_to_string fr) fact with
  | Some v -> v
  | None -> Top

let set fact fr v =
  let key = Ast.field_ref_to_string fr in
  match v with Top -> FMap.remove key fact | Range _ -> FMap.add key v fact

module Domain = struct
  type t = fact

  let equal = FMap.equal ( = )

  let join a b =
    FMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some (Range (la, ha)), Some (Range (lb, hb)) ->
            Some (Range (min la lb, max ha hb))
        | _ -> None (* either side Top *))
      a b

  (* Keys changing value drop straight to Top: intervals over bounded
     widths would converge anyway, this just caps iteration on cycles. *)
  let widen a b =
    FMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some va, Some vb when va = vb -> Some va
        | _ -> None)
      a b
end

module F = Dataflow.Forward (Domain)

(* ---- expression evaluation ---- *)

let const_value c =
  if Bitvec.width c > max_width then Top
  else match Bitvec.to_int c with Some n -> Range (n, n) | None -> Top

let width_opt program aopt e =
  match Ast.expr_width program aopt e with
  | w -> if w > max_width then None else Some w
  | exception _ -> None

let rec eval program aopt env fact e =
  let width () = width_opt program aopt e in
  match e with
  | Ast.E_const c -> const_value c
  | Ast.E_field fr -> (
      match Ast.field_width program fr with
      | w when w > max_width -> Top
      | _ -> value_of fact fr
      | exception Not_found -> Top)
  | Ast.E_param p -> ( match FMap.find_opt p env with Some v -> v | None -> Top)
  | Ast.E_not a -> (
      match (width (), eval program aopt env fact a) with
      | Some w, Range (lo, hi) -> Range (mask w - hi, mask w - lo)
      | _ -> Top)
  | Ast.E_and (a, b) -> (
      match (eval program aopt env fact a, eval program aopt env fact b) with
      | Range (_, ha), Range (_, hb) -> Range (0, min ha hb)
      | Range (_, h), Top | Top, Range (_, h) -> Range (0, h)
      | Top, Top -> Top)
  | Ast.E_or (a, b) -> (
      match (width (), eval program aopt env fact a, eval program aopt env fact b)
      with
      | Some w, Range (la, _), Range (lb, _) -> Range (max la lb, mask w)
      | _ -> Top)
  | Ast.E_xor _ | Ast.E_hash _ -> Top
  | Ast.E_add (a, b) -> (
      match (width (), eval program aopt env fact a, eval program aopt env fact b)
      with
      | Some w, Range (la, ha), Range (lb, hb) when ha + hb <= mask w ->
          Range (la + lb, ha + hb)
      | _ -> Top (* may wrap *))
  | Ast.E_sub (a, b) -> (
      match (eval program aopt env fact a, eval program aopt env fact b) with
      | Range (la, ha), Range (lb, hb) when la >= hb ->
          Range (la - hb, ha - lb)
      | _ -> Top (* may wrap *))
  | Ast.E_slice (hi, lo, a) -> (
      match eval program aopt env fact a with
      | Range (l, h) when lo = 0 && hi - lo + 1 <= max_width && h <= mask (hi + 1)
        ->
          Range (l, h)
      | _ -> Top)
  | Ast.E_concat (a, b) -> (
      match
        (width (), width_opt program aopt b, eval program aopt env fact a,
         eval program aopt env fact b)
      with
      | Some _, Some wb, Range (la, ha), Range (lb, hb) ->
          Range ((la lsl wb) + lb, (ha lsl wb) + hb)
      | _ -> Top)

(* ---- condition evaluation (three-valued) ---- *)

let disjoint (la, ha) (lb, hb) = ha < lb || hb < la

let rec eval_bexpr program vfact env fact cond =
  let ev = eval program None env fact in
  match cond with
  | Ast.B_true -> Some true
  | Ast.B_false -> Some false
  | Ast.B_is_valid h -> (
      match Validity.valid_at vfact h with
      | Validity.Must_valid -> Some true
      | Validity.Must_invalid -> Some false
      | Validity.Maybe -> None)
  | Ast.B_eq (a, b) -> (
      match (ev a, ev b) with
      | Range (la, ha), Range (lb, hb) ->
          if la = ha && lb = hb && la = lb then Some true
          else if disjoint (la, ha) (lb, hb) then Some false
          else None
      | _ -> None)
  | Ast.B_ne (a, b) ->
      Option.map not (eval_bexpr program vfact env fact (Ast.B_eq (a, b)))
  | Ast.B_ult (a, b) -> (
      match (ev a, ev b) with
      | Range (_, ha), Range (lb, _) when ha < lb -> Some true
      | Range (la, _), Range (_, hb) when la >= hb -> Some false
      | _ -> None)
  | Ast.B_ule (a, b) -> (
      match (ev a, ev b) with
      | Range (_, ha), Range (lb, _) when ha <= lb -> Some true
      | Range (la, _), Range (_, hb) when la > hb -> Some false
      | _ -> None)
  | Ast.B_not c -> Option.map not (eval_bexpr program vfact env fact c)
  | Ast.B_and (a, b) -> (
      match
        (eval_bexpr program vfact env fact a, eval_bexpr program vfact env fact b)
      with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None)
  | Ast.B_or (a, b) -> (
      match
        (eval_bexpr program vfact env fact a, eval_bexpr program vfact env fact b)
      with
      | Some true, _ | _, Some true -> Some true
      | Some false, Some false -> Some false
      | _ -> None)

(* ---- edge refinement ---- *)

let meet fact fr (lo, hi) =
  match Ast.field_ref_to_string fr |> fun k -> FMap.find_opt k fact with
  | Some (Range (l, h)) ->
      let l' = max l lo and h' = min h hi in
      if l' > h' then fact (* contradiction; edge killing already handled *)
      else set fact fr (Range (l', h'))
  | _ -> if lo > hi then fact else set fact fr (Range (lo, hi))

let as_field_const program a b =
  let const c =
    if Bitvec.width c > max_width then None else Bitvec.to_int c
  in
  let wide fr =
    match Ast.field_width program fr with
    | w -> w > max_width
    | exception Not_found -> true
  in
  match (a, b) with
  | Ast.E_field fr, Ast.E_const c when not (wide fr) ->
      Option.map (fun n -> (`Field_const (fr, n), Bitvec.width c)) (const c)
  | Ast.E_const c, Ast.E_field fr when not (wide fr) ->
      Option.map (fun n -> (`Const_field (n, fr), Bitvec.width c)) (const c)
  | _ -> None

(* [refine pol cond fact]: intersect field intervals with what the chosen
   edge of the branch implies. *)
let rec refine program pol cond fact =
  match cond with
  | Ast.B_not c -> refine program (not pol) c fact
  | Ast.B_and (a, b) when pol ->
      refine program true b (refine program true a fact)
  | Ast.B_or (a, b) when not pol ->
      refine program false b (refine program false a fact)
  | Ast.B_eq (a, b) -> (
      match as_field_const program a b with
      | Some ((`Field_const (fr, n) | `Const_field (n, fr)), _) when pol ->
          meet fact fr (n, n)
      | _ -> fact)
  | Ast.B_ne (a, b) -> refine program (not pol) (Ast.B_eq (a, b)) fact
  | Ast.B_ult (a, b) -> (
      match as_field_const program a b with
      | Some (`Field_const (fr, n), w) ->
          if pol then meet fact fr (0, n - 1) else meet fact fr (n, mask w)
      | Some (`Const_field (n, fr), w) ->
          if pol then meet fact fr (n + 1, mask w) else meet fact fr (0, n)
      | None -> fact)
  | Ast.B_ule (a, b) -> (
      match as_field_const program a b with
      | Some (`Field_const (fr, n), w) ->
          if pol then meet fact fr (0, n) else meet fact fr (n + 1, mask w)
      | Some (`Const_field (n, fr), w) ->
          if pol then meet fact fr (n, mask w) else meet fact fr (0, n - 1)
      | None -> fact)
  | _ -> fact

(* ---- the pass ---- *)

type t = {
  res : fact Dataflow.result;
  verdicts : (int, bool option) Hashtbl.t;
}

let result t = t.res

let verdict t id =
  match Hashtbl.find_opt t.verdicts id with Some v -> v | None -> None

let header_fields program h =
  match Ast.find_header program h with
  | Some hdr -> List.map (fun f -> Ast.field h f) (Header.field_names hdr)
  | None -> []

let default_args_env program (table : Ast.table) name =
  let dname, dargs = table.Ast.t_default_action in
  if not (String.equal dname name) then FMap.empty
  else
    match Ast.find_action program name with
    | Some a when List.length a.Ast.a_params = List.length dargs ->
        List.fold_left2
          (fun env (p : Ast.param) arg ->
            FMap.add p.Ast.p_name (const_value arg) env)
          FMap.empty a.Ast.a_params dargs
    | _ -> FMap.empty

let transfer program (node : Cfg.node) fact =
  match node.Cfg.n_kind with
  | Cfg.N_parser_state { ps_extract = Some h; _ } ->
      (* freshly extracted fields hold arbitrary packet bytes *)
      List.fold_left (fun f fr -> set f fr Top) fact (header_fields program h)
  | Cfg.N_stmt (Ast.S_assign (fr, e)) ->
      set fact fr (eval program None FMap.empty fact e)
  | Cfg.N_stmt (Ast.S_set_valid (h, _)) ->
      List.fold_left (fun f fr -> set f fr Top) fact (header_fields program h)
  | Cfg.N_action (table, name, role) -> (
      match Ast.find_action program name with
      | None -> fact
      | Some a ->
          let env =
            match role with
            | Cfg.Hit -> FMap.empty (* entry-supplied arguments: unknown *)
            | Cfg.Miss -> default_args_env program table name
          in
          List.fold_left
            (fun fact stmt ->
              match stmt with
              | Ast.S_assign (fr, e) ->
                  set fact fr (eval program (Some a) env fact e)
              | Ast.S_set_valid (h, _) ->
                  List.fold_left
                    (fun f fr -> set f fr Top)
                    fact (header_fields program h)
              | Ast.S_nop -> fact)
            fact a.Ast.a_body)
  | _ -> fact

let initial_fact program =
  let zero = Range (0, 0) in
  let add fact fr v = set fact fr v in
  let fact =
    List.fold_left
      (fun fact (name, w) ->
        if w > max_width then fact else add fact (Ast.meta name) zero)
      FMap.empty program.Ast.p_metadata
  in
  List.fold_left
    (fun fact (name, w) ->
      if w > max_width || String.equal name "ingress_port" then fact
      else add fact (Ast.std name) zero)
    fact Ast.standard_metadata

let analyze (cfg : Cfg.t) ~(validity : Validity.fact Dataflow.result) =
  let program = cfg.Cfg.program in
  let vfact_at id =
    match validity.Dataflow.before.(id) with
    | Some f -> f
    | None -> Validity.SMap.empty
  in
  let edge (node : Cfg.node) i fact =
    match node.Cfg.n_kind with
    | Cfg.N_cond (_, cond) -> (
        let pol = i = 0 in
        match
          eval_bexpr program (vfact_at node.Cfg.n_id) FMap.empty fact cond
        with
        | Some b when b <> pol -> None (* statically-dead arm *)
        | _ -> Some (refine program pol cond fact))
    | _ -> Some fact
  in
  let res = F.run ~edge cfg ~init:(initial_fact program) ~transfer:(transfer program) in
  let verdicts = Hashtbl.create 16 in
  Cfg.iter
    (fun node ->
      match node.Cfg.n_kind with
      | Cfg.N_cond (id, cond) ->
          let v =
            match res.Dataflow.before.(node.Cfg.n_id) with
            | None -> None (* branch itself unreachable *)
            | Some fact ->
                eval_bexpr program (vfact_at node.Cfg.n_id) FMap.empty fact cond
          in
          Hashtbl.replace verdicts id v
      | _ -> ())
    cfg;
  { res; verdicts }
