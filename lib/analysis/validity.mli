(** Header-validity analysis (forward, over {!Cfg}).

    Tracks, for every header, whether it is provably valid, provably
    invalid, or only possibly valid at each program point. Headers start
    invalid; parser [extract]s and [S_set_valid] make them valid (or
    invalid again — decap); [isValid] guards refine the fact on each
    branch edge. [check_reads] then flags field reads of headers that are
    never valid at the read ([P4A001], includes [setInvalid]-then-read)
    or not provably valid on every path ([P4A002]). *)

module Ast = Switchv_p4ir.Ast
module SMap : Map.S with type key = string

type v = Must_valid | Must_invalid | Maybe

type fact = v SMap.t
(** Headers absent from the map are treated as [Must_invalid]. *)

val valid_at : fact -> string -> v

val analyze : Cfg.t -> fact Dataflow.result

val check_reads :
  ?reachable:(int -> bool) -> Cfg.t -> fact Dataflow.result -> Diagnostics.t list
(** Walks every reachable node's field reads ([reachable] — typically
    {!Reachability.reachable} — further excludes nodes the refined
    reachability analysis proved dead, so reads on statically-dead arms
    are not flagged) (statement right-hand sides,
    branch conditions, table keys, select expressions, action bodies —
    tracking validity changes within a body) and reports [P4A001]/[P4A002].
    Reads of ["meta"]/["std"] fields and of headers unknown to the program
    (a typecheck error) are ignored. *)
