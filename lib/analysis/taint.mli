(** Taint dataflow for nondeterminism.

    A forward dataflow over {!Cfg} (an instance of {!Dataflow.Forward})
    whose lattice maps header/metadata fields to sets of nondeterminism
    {e sources}:

    - ["hash:<name>"] — the value of an [E_hash] expression;
    - ["selector:<table>"] — the member choice of a one-shot
      action-selector (WCMP) table.

    Propagation covers direct assignment, table keys (the winning entry —
    and hence the action and its [E_param] arguments — depends on the key
    values, so every assignment in an applied action inherits the key
    taint), and implicit flow through conditionals whose condition is
    tainted (everything assigned inside either arm is control-dependent on
    the taint). A strong update from an untainted expression {e sanitizes}:
    assigning a constant kills the taint, exactly as in the concrete
    interpreter.

    The summary is keyed by the same Symexec-compatible branch ids the
    symbolic engine and the interpreter's coverage counters use, so
    consumers can classify symbolic goals
    ({!Switchv_symbolic.Packetgen.prune_tainted_goals}) and build
    set-valued oracle verdicts without re-running the encoder. *)

module Ast = Switchv_p4ir.Ast

type summary = {
  s_branches : (int * string list) list;
      (** conditionals whose condition reads a tainted value: branch id
          (Symexec numbering) -> sorted source labels *)
  s_branch_labels : string list;
      (** Symexec trace labels ([branch.N.then] / [branch.N.else]) of every
          arm whose path condition crosses taint: both arms of tainted
          conditionals plus both arms of conditionals nested inside a
          tainted region *)
  s_exit_fields : (string * string list) list;
      (** fields ("hdr.field") that may hold a tainted value at pipeline
          exit, with their sorted sources — the fields a byte-level output
          comparison must mask *)
  s_tainted_keys : (string * string list) list;
      (** tables matching on tainted values ([P4A009]): table name ->
          sorted offending key names *)
  s_egress_writers : (string * string) list;
      (** (table, action) pairs whose action assigns [std.egress_port]
          under taint — the oracle derives its egress-port candidate set
          from the installed entries of these tables *)
  s_valid_tainted : string list;
      (** headers whose validity is set or cleared under taint (encap
          chosen by a tainted key): the deparsed wire format itself is
          nondeterministic, so byte masking is not enough *)
}

val empty : summary
(** The all-empty summary: nothing is tainted (hash-free programs). *)

val taint_free : summary -> bool

val exit_tainted : summary -> string -> bool
(** [exit_tainted s "std.egress_port"] — is the field possibly tainted at
    pipeline exit? *)

val analyze : Cfg.t -> summary
(** Run the pass to fixpoint (an outer iteration feeds implicit-flow taint
    from tainted conditionals back into the dataflow until stable). *)
