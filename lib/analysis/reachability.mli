(** Reachability over {!Cfg}, refined by {!Constprop} branch verdicts.

    A trivial instantiation of the dataflow framework: the unit fact flows
    everywhere except across branch edges whose arm the constant
    propagation decided can never execute. A node is reachable iff a fact
    arrives at it. Downstream, unreachable table nodes become [P4A003],
    unreachable parser states [P4A005], and tables with no node at all
    (never applied) [P4A007]. *)

type t

val analyze : Cfg.t -> verdict:(int -> bool option) -> t
(** [verdict] is {!Constprop.verdict}: [Some true] kills the else edge of
    that branch, [Some false] the then edge. *)

val reachable : t -> int -> bool
(** By node id. *)
