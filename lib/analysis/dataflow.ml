module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

type 'a result = { before : 'a option array; after : 'a option array }

(* After this many arrivals at one node we switch from [join] to [widen];
   pipeline CFGs are DAGs so this only matters for cyclic parsers. *)
let widen_threshold = 16

module Forward (D : DOMAIN) = struct
  let run ?edge (cfg : Cfg.t) ~init ~transfer =
    let n = Array.length cfg.nodes in
    let before = Array.make n None in
    let after = Array.make n None in
    let visits = Array.make n 0 in
    let in_wl = Array.make n false in
    let wl = Queue.create () in
    let push id =
      if not in_wl.(id) then begin
        in_wl.(id) <- true;
        Queue.add id wl
      end
    in
    let arrive id fact =
      let combined, changed =
        match before.(id) with
        | None -> (fact, true)
        | Some old ->
            let combine =
              if visits.(id) >= widen_threshold then D.widen else D.join
            in
            let c = combine old fact in
            (c, not (D.equal c old))
      in
      if changed then begin
        before.(id) <- Some combined;
        visits.(id) <- visits.(id) + 1;
        push id
      end
    in
    arrive cfg.entry init;
    while not (Queue.is_empty wl) do
      let id = Queue.pop wl in
      in_wl.(id) <- false;
      match before.(id) with
      | None -> ()
      | Some fact ->
          let node = cfg.nodes.(id) in
          let out = transfer node fact in
          after.(id) <- Some out;
          List.iteri
            (fun i succ ->
              match edge with
              | None -> arrive succ out
              | Some f -> (
                  match f node i out with
                  | None -> ()
                  | Some refined -> arrive succ refined))
            node.Cfg.n_succ
    done;
    { before; after }
end
