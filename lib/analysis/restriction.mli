(** Entry-restriction satisfiability pre-check.

    For each table carrying an [@entry_restriction], compile the
    constraint to a BDD over the referenced keys (the same encoding the
    fuzzer uses for constraint-directed entry sampling) and model-count
    it. A count of zero means no entry can ever be installed: the table is
    effectively uninstallable, every coverage goal over its entries is
    dead, and fuzzing it is wasted work — reported as [P4A004].

    Restrictions the BDD engine cannot encode (LPM keys,
    [::prefix_length], keys missing from the table) are skipped, never
    reported. *)

val unsat_tables : Switchv_p4ir.Ast.program -> string list
(** Table names whose restriction is provably unsatisfiable, in program
    order. *)

val diagnose : Switchv_p4ir.Ast.program -> Diagnostics.t list
