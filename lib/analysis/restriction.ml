module Ast = Switchv_p4ir.Ast
module Constraint_lang = Switchv_p4constraints.Constraint_lang
module Bdd = Switchv_p4constraints.Bdd

(* Mirrors the fuzzer's table_bdd layout construction, but straight off
   the AST table: the analysis runs before any P4info/fuzzer exists. *)
let table_unsat program (t : Ast.table) =
  match t.Ast.t_entry_restriction with
  | None -> false
  | Some c -> (
      let names = Constraint_lang.keys c in
      let layouts =
        List.filter_map
          (fun name ->
            match Ast.find_key t name with
            | Some ({ Ast.k_kind = Ast.Exact; _ } as k) ->
                Some
                  { Bdd.kl_name = name; kl_kind = Bdd.Exact;
                    kl_width = Ast.key_width program t k }
            | Some ({ Ast.k_kind = Ast.Optional; _ } as k) ->
                Some
                  { Bdd.kl_name = name; kl_kind = Bdd.Optional;
                    kl_width = Ast.key_width program t k }
            | Some ({ Ast.k_kind = Ast.Ternary; _ } as k) ->
                Some
                  { Bdd.kl_name = name; kl_kind = Bdd.Ternary;
                    kl_width = Ast.key_width program t k }
            | Some { Ast.k_kind = Ast.Lpm; _ } | None -> None)
          names
      in
      if List.length layouts <> List.length names then false
      else
        match Bdd.compile layouts c with
        | Ok compiled -> Bdd.model_count compiled = 0.
        | Error _ -> false)

let unsat_tables program =
  List.filter_map
    (fun t -> if table_unsat program t then Some t.Ast.t_name else None)
    program.Ast.p_tables

let diagnose program =
  List.map
    (fun name ->
      Diagnostics.error "P4A004" ~loc:("table " ^ name)
        "entry restriction is unsatisfiable: no entry can ever be installed")
    (unsat_tables program)
