module Ast = Switchv_p4ir.Ast
module SMap = Map.Make (String)

type v = Must_valid | Must_invalid | Maybe
type fact = v SMap.t

let valid_at fact h =
  match SMap.find_opt h fact with Some x -> x | None -> Must_invalid

module Domain = struct
  type t = fact

  let equal = SMap.equal ( = )

  let join a b =
    SMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some a, Some b -> Some (if a = b then a else Maybe)
        | Some Must_invalid, None | None, Some Must_invalid -> Some Must_invalid
        | Some _, None | None, Some _ -> Some Maybe
        | None, None -> None)
      a b

  (* Finite height (3 per header), so joining converges without a real
     widening operator. *)
  let widen = join
end

module F = Dataflow.Forward (Domain)

let apply_stmt fact = function
  | Ast.S_set_valid (h, b) ->
      SMap.add h (if b then Must_valid else Must_invalid) fact
  | Ast.S_assign _ | Ast.S_nop -> fact

let action_body program name =
  match Ast.find_action program name with Some a -> a.Ast.a_body | None -> []

let transfer program (node : Cfg.node) fact =
  match node.Cfg.n_kind with
  | Cfg.N_parser_state { ps_extract = Some h; _ } -> SMap.add h Must_valid fact
  | Cfg.N_stmt s -> apply_stmt fact s
  | Cfg.N_action (_, name, _) ->
      List.fold_left apply_stmt fact (action_body program name)
  | _ -> fact

(* What a branch edge implies about header validity: [assume pol cond]
   under positive polarity strengthens headers guarded by [isValid]. Only
   implications that hold on the chosen edge are applied (conjuncts on the
   true edge, disjuncts on the false edge). *)
let rec assume pol cond fact =
  match cond with
  | Ast.B_is_valid h ->
      SMap.add h (if pol then Must_valid else Must_invalid) fact
  | Ast.B_not c -> assume (not pol) c fact
  | Ast.B_and (a, b) when pol -> assume true b (assume true a fact)
  | Ast.B_or (a, b) when not pol -> assume false b (assume false a fact)
  | _ -> fact

let edge (node : Cfg.node) i fact =
  match node.Cfg.n_kind with
  | Cfg.N_cond (_, cond) -> Some (assume (i = 0) cond fact)
  | _ -> Some fact

let analyze (cfg : Cfg.t) =
  F.run ~edge cfg ~init:SMap.empty ~transfer:(transfer cfg.Cfg.program)

(* ---- read checking ---- *)

let rec expr_reads acc = function
  | Ast.E_const _ | Ast.E_param _ -> acc
  | Ast.E_field fr -> fr :: acc
  | Ast.E_not a | Ast.E_slice (_, _, a) -> expr_reads acc a
  | Ast.E_and (a, b) | Ast.E_or (a, b) | Ast.E_xor (a, b) | Ast.E_add (a, b)
  | Ast.E_sub (a, b) | Ast.E_concat (a, b) ->
      expr_reads (expr_reads acc a) b
  | Ast.E_hash (_, es) -> List.fold_left expr_reads acc es

let rec bexpr_reads acc = function
  | Ast.B_true | Ast.B_false | Ast.B_is_valid _ -> acc
  | Ast.B_eq (a, b) | Ast.B_ne (a, b) | Ast.B_ult (a, b) | Ast.B_ule (a, b) ->
      expr_reads (expr_reads acc a) b
  | Ast.B_not c -> bexpr_reads acc c
  | Ast.B_and (a, b) | Ast.B_or (a, b) -> bexpr_reads (bexpr_reads acc a) b

let check_reads ?(reachable = fun _ -> true) (cfg : Cfg.t)
    (res : fact Dataflow.result) =
  let program = cfg.Cfg.program in
  let diags = ref [] in
  let check loc fact fr =
    let h = fr.Ast.fr_header in
    if
      (not (String.equal h "meta"))
      && (not (String.equal h "std"))
      && Ast.find_header program h <> None
    then
      let field = Ast.field_ref_to_string fr in
      match valid_at fact h with
      | Must_valid -> ()
      | Must_invalid ->
          diags :=
            Diagnostics.error "P4A001" ~loc
              "field %s is read but header %s is never valid here" field h
            :: !diags
      | Maybe ->
          diags :=
            Diagnostics.warning "P4A002" ~loc
              "field %s is read but header %s is not provably valid on every \
               path"
              field h
            :: !diags
  in
  let check_expr loc fact e = List.iter (check loc fact) (expr_reads [] e) in
  Cfg.iter
    (fun node ->
      match res.Dataflow.before.(node.Cfg.n_id) with
      | None -> () (* unreachable: no read ever happens here *)
      | Some _ when not (reachable node.Cfg.n_id) -> ()
      | Some fact -> (
          let loc = Cfg.node_loc node in
          match node.Cfg.n_kind with
          | Cfg.N_parser_state ({ ps_next = Ast.T_select (e, _, _); _ } as s) ->
              (* the select expression reads after the state's extract *)
              let fact =
                match s.Ast.ps_extract with
                | Some h -> SMap.add h Must_valid fact
                | None -> fact
              in
              check_expr loc fact e
          | Cfg.N_stmt (Ast.S_assign (_, e)) -> check_expr loc fact e
          | Cfg.N_cond (_, cond) ->
              List.iter (check loc fact) (bexpr_reads [] cond)
          | Cfg.N_table t ->
              List.iter (fun k -> check_expr loc fact k.Ast.k_expr) t.Ast.t_keys
          | Cfg.N_action (_, name, _) ->
              ignore
                (List.fold_left
                   (fun fact stmt ->
                     (match stmt with
                     | Ast.S_assign (_, e) -> check_expr loc fact e
                     | Ast.S_set_valid _ | Ast.S_nop -> ());
                     apply_stmt fact stmt)
                   fact
                   (action_body program name))
          | _ -> ()))
    cfg;
  List.rev !diags
