module Ast = Switchv_p4ir.Ast
module SMap = Map.Make (String)
module SSet = Set.Make (String)
module IMap = Map.Make (Int)

(* A fact maps a field ("hdr.field") to the set of nondeterminism sources
   that may influence its value: ["hash:<name>"] for [E_hash] expressions,
   ["selector:<table>"] for one-shot action-selector member choice. A field
   absent from the map is untainted; a strong update to an untainted value
   therefore sanitizes (constant-assignment kills taint). *)
type fact = SSet.t SMap.t

module Domain = struct
  type t = fact

  let equal = SMap.equal SSet.equal
  let join a b = SMap.union (fun _ x y -> Some (SSet.union x y)) a b

  (* The lattice is finite (fields x source labels), so joining
     converges without a real widening operator. *)
  let widen = join
end

module F = Dataflow.Forward (Domain)

let field_key (fr : Ast.field_ref) = Ast.field_ref_to_string fr

let lookup map key =
  match SMap.find_opt key map with Some s -> s | None -> SSet.empty

let rec expr_taint fact = function
  | Ast.E_const _ | Ast.E_param _ -> SSet.empty
  | Ast.E_field fr -> lookup fact (field_key fr)
  | Ast.E_not a | Ast.E_slice (_, _, a) -> expr_taint fact a
  | Ast.E_and (a, b) | Ast.E_or (a, b) | Ast.E_xor (a, b) | Ast.E_add (a, b)
  | Ast.E_sub (a, b) | Ast.E_concat (a, b) ->
      SSet.union (expr_taint fact a) (expr_taint fact b)
  | Ast.E_hash (name, args) ->
      List.fold_left
        (fun acc e -> SSet.union acc (expr_taint fact e))
        (SSet.singleton ("hash:" ^ name))
        args

(* [vmap] carries validity taint: headers whose valid bit is set or cleared
   under nondeterministic control (e.g. a GRE encap action selected by a
   tainted tunnel key), so [isValid] reads of them are tainted too. *)
let rec bexpr_taint ~vmap fact = function
  | Ast.B_true | Ast.B_false -> SSet.empty
  | Ast.B_is_valid h -> lookup vmap h
  | Ast.B_eq (a, b) | Ast.B_ne (a, b) | Ast.B_ult (a, b) | Ast.B_ule (a, b) ->
      SSet.union (expr_taint fact a) (expr_taint fact b)
  | Ast.B_not c -> bexpr_taint ~vmap fact c
  | Ast.B_and (a, b) | Ast.B_or (a, b) ->
      SSet.union (bexpr_taint ~vmap fact a) (bexpr_taint ~vmap fact b)

let key_taint fact (t : Ast.table) =
  List.fold_left
    (fun acc (k : Ast.key) -> SSet.union acc (expr_taint fact k.Ast.k_expr))
    SSet.empty t.Ast.t_keys

(* Which entry of a table wins — and hence which action runs and which
   entry arguments feed [E_param] reads — depends on the key values, so
   every assignment inside an applied action inherits the key taint as an
   ambient source set; selector tables additionally inject the member
   choice itself on the hit edge. *)
let action_ambient fact (t : Ast.table) (role : Cfg.action_role) =
  let kt = key_taint fact t in
  if t.Ast.t_selector && role = Cfg.Hit then
    SSet.add ("selector:" ^ t.Ast.t_name) kt
  else kt

let assign ~extra ambient fact fr e =
  let key = field_key fr in
  let t = SSet.union (expr_taint fact e) ambient in
  let t = SSet.union t (lookup extra key) in
  if SSet.is_empty t then SMap.remove key fact else SMap.add key t fact

let apply_stmt ~extra ambient fact = function
  | Ast.S_assign (fr, e) -> assign ~extra ambient fact fr e
  | Ast.S_set_valid _ | Ast.S_nop -> fact

let action_body program name =
  match Ast.find_action program name with Some a -> a.Ast.a_body | None -> []

let transfer program ~extra (node : Cfg.node) fact =
  match node.Cfg.n_kind with
  | Cfg.N_stmt s -> apply_stmt ~extra SSet.empty fact s
  | Cfg.N_action (t, name, role) ->
      let ambient = action_ambient fact t role in
      List.fold_left (apply_stmt ~extra ambient) fact (action_body program name)
  | _ -> fact

(* --- region scan (implicit flow) -----------------------------------------

   Assignments and validity flips that execute only inside an arm of a
   tainted conditional are control-dependent on the taint, so the scan
   force-taints them (the [extra] map merged into every assignment of the
   next dataflow round) and records conditionals nested inside tainted
   regions — their path conditions cross a tainted branch even when their
   own condition is clean. Branch ids follow the Symexec pre-order
   numbering (incremented at each [C_if], ingress before egress, then-arm
   before else-arm), matching {!Cfg} and the interpreter. *)

let rec count_ifs = function
  | Ast.C_nop | Ast.C_stmt _ | Ast.C_table _ -> 0
  | Ast.C_seq (a, b) -> count_ifs a + count_ifs b
  | Ast.C_if (_, a, b) -> 1 + count_ifs a + count_ifs b

type scan = {
  mutable sc_extra : fact;
  mutable sc_vmap : fact;  (* header name -> sources *)
  mutable sc_nested : SSet.t IMap.t;
}

let merge_into map key srcs =
  SMap.update key
    (function None -> Some srcs | Some s -> Some (SSet.union s srcs))
    map

let region_scan program tainted_conds =
  let sc = { sc_extra = SMap.empty; sc_vmap = SMap.empty; sc_nested = IMap.empty } in
  let stmt_in_region srcs = function
    | Ast.S_assign (fr, _) -> sc.sc_extra <- merge_into sc.sc_extra (field_key fr) srcs
    | Ast.S_set_valid (h, _) -> sc.sc_vmap <- merge_into sc.sc_vmap h srcs
    | Ast.S_nop -> ()
  in
  let table_in_region srcs tname =
    match Ast.find_table program tname with
    | None -> ()
    | Some t ->
        List.iter
          (fun a -> List.iter (stmt_in_region srcs) (action_body program a))
          (fst t.Ast.t_default_action :: t.Ast.t_actions)
  in
  let rec walk ambient next = function
    | Ast.C_nop -> ()
    | Ast.C_stmt s -> Option.iter (fun srcs -> stmt_in_region srcs s) ambient
    | Ast.C_table name -> Option.iter (fun srcs -> table_in_region srcs name) ambient
    | Ast.C_seq (a, b) ->
        walk ambient next a;
        walk ambient (next + count_ifs a) b
    | Ast.C_if (_, a, b) ->
        let here = IMap.find_opt next tainted_conds in
        let ambient' =
          match (ambient, here) with
          | None, x -> x
          | Some s, None ->
              sc.sc_nested <-
                IMap.update next
                  (function None -> Some s | Some t -> Some (SSet.union s t))
                  sc.sc_nested;
              Some s
          | Some s, Some t -> Some (SSet.union s t)
        in
        walk ambient' (next + 1) a;
        walk ambient' (next + 1 + count_ifs a) b
  in
  walk None 1 program.Ast.p_ingress;
  walk None (1 + count_ifs program.Ast.p_ingress) program.Ast.p_egress;
  sc

(* --- summary -------------------------------------------------------------- *)

type summary = {
  s_branches : (int * string list) list;
  s_branch_labels : string list;
  s_exit_fields : (string * string list) list;
  s_tainted_keys : (string * string list) list;
  s_egress_writers : (string * string) list;
  s_valid_tainted : string list;
}

let empty =
  { s_branches = []; s_branch_labels = []; s_exit_fields = [];
    s_tainted_keys = []; s_egress_writers = []; s_valid_tainted = [] }

let taint_free s =
  s.s_branches = [] && s.s_exit_fields = [] && s.s_tainted_keys = []
  && s.s_egress_writers = [] && s.s_valid_tainted = []

let exit_tainted s field = List.mem_assoc field s.s_exit_fields

let submap a b = SMap.for_all (fun k s -> SSet.subset s (lookup b k)) a

let analyze (cfg : Cfg.t) =
  let program = cfg.Cfg.program in
  let run extra = F.run cfg ~init:SMap.empty ~transfer:(transfer program ~extra) in
  (* Outer fixpoint over implicit flow: a dataflow round discovers tainted
     conditionals; the region scan converts their arms' effects into forced
     taint and validity taint for the next round. The state only grows and
     is bounded by fields x sources, so this terminates. *)
  let rec loop extra vmap =
    let res = run extra in
    let tainted_conds = ref IMap.empty in
    Cfg.iter
      (fun node ->
        match (node.Cfg.n_kind, res.Dataflow.before.(node.Cfg.n_id)) with
        | Cfg.N_cond (id, cond), Some fact ->
            let srcs = bexpr_taint ~vmap fact cond in
            if not (SSet.is_empty srcs) then
              tainted_conds := IMap.add id srcs !tainted_conds
        | _ -> ())
      cfg;
    let sc = region_scan program !tainted_conds in
    (* Validity flips reached under an ambient (key/selector) source are
       taint-dependent even outside tainted regions: the winning entry
       decides whether the encap action runs at all. *)
    Cfg.iter
      (fun node ->
        match (node.Cfg.n_kind, res.Dataflow.before.(node.Cfg.n_id)) with
        | Cfg.N_action (t, name, role), Some fact ->
            let ambient = action_ambient fact t role in
            if not (SSet.is_empty ambient) then
              List.iter
                (function
                  | Ast.S_set_valid (h, _) ->
                      sc.sc_vmap <- merge_into sc.sc_vmap h ambient
                  | Ast.S_assign _ | Ast.S_nop -> ())
                (action_body program name)
        | _ -> ())
      cfg;
    let extra' = SMap.union (fun _ a b -> Some (SSet.union a b)) extra sc.sc_extra in
    let vmap' = SMap.union (fun _ a b -> Some (SSet.union a b)) vmap sc.sc_vmap in
    if submap extra' extra && submap vmap' vmap then
      (res, !tainted_conds, sc.sc_nested, vmap, extra)
    else loop extra' vmap'
  in
  let res, tainted_conds, nested, vmap, extra = loop SMap.empty SMap.empty in
  let sources s = List.sort compare (SSet.elements s) in
  let s_branches =
    IMap.bindings tainted_conds |> List.map (fun (id, s) -> (id, sources s))
  in
  let all_cond_ids =
    IMap.union (fun _ a b -> Some (SSet.union a b)) tainted_conds nested
  in
  let s_branch_labels =
    IMap.bindings all_cond_ids
    |> List.concat_map (fun (id, _) ->
           [ Printf.sprintf "branch.%d.then" id; Printf.sprintf "branch.%d.else" id ])
  in
  (* Tables whose keys read tainted values, with the offending key names. *)
  let keys_by_table = Hashtbl.create 8 in
  let egress_writers = Hashtbl.create 8 in
  Cfg.iter
    (fun node ->
      match (node.Cfg.n_kind, res.Dataflow.before.(node.Cfg.n_id)) with
      | Cfg.N_table t, Some fact ->
          List.iter
            (fun (k : Ast.key) ->
              if not (SSet.is_empty (expr_taint fact k.Ast.k_expr)) then begin
                let prev =
                  Option.value ~default:SSet.empty
                    (Hashtbl.find_opt keys_by_table t.Ast.t_name)
                in
                Hashtbl.replace keys_by_table t.Ast.t_name
                  (SSet.add k.Ast.k_name prev)
              end)
            t.Ast.t_keys
      | Cfg.N_action (t, name, role), Some fact ->
          let ambient = action_ambient fact t role in
          ignore
            (List.fold_left
               (fun fact stmt ->
                 (match stmt with
                 | Ast.S_assign (fr, e)
                   when String.equal fr.Ast.fr_header "std"
                        && String.equal fr.Ast.fr_field "egress_port" ->
                     let t_srcs =
                       SSet.union (expr_taint fact e)
                         (SSet.union ambient (lookup extra (field_key fr)))
                     in
                     if not (SSet.is_empty t_srcs) then
                       Hashtbl.replace egress_writers (t.Ast.t_name, name) ()
                 | _ -> ());
                 apply_stmt ~extra ambient fact stmt)
               fact (action_body program name))
      | _ -> ())
    cfg;
  let s_tainted_keys =
    Hashtbl.fold
      (fun t ks acc -> (t, List.sort compare (SSet.elements ks)) :: acc)
      keys_by_table []
    |> List.sort compare
  in
  let s_egress_writers =
    Hashtbl.fold (fun k () acc -> k :: acc) egress_writers [] |> List.sort compare
  in
  let exit_fact =
    match res.Dataflow.before.(cfg.Cfg.exit_) with
    | Some f -> f
    | None -> SMap.empty
  in
  { s_branches;
    s_branch_labels;
    s_exit_fields =
      SMap.bindings exit_fact |> List.map (fun (f, s) -> (f, sources s));
    s_tainted_keys;
    s_egress_writers;
    s_valid_tainted = SMap.bindings vmap |> List.map fst }
