(** Constant/width-range propagation (forward, over {!Cfg}).

    Every field is tracked as an unsigned interval [Range (lo, hi)] or
    [Top]. Metadata starts at zero (the interpreter and symbolic engine
    both zero-initialise it), header fields and [std.ingress_port] start
    unknown. Assignments evaluate their right-hand side over the current
    fact; action parameters are unknown on hit edges and bound to the
    default action's constant arguments on miss edges. Branch edges refine
    the interval of fields compared against constants, and an edge whose
    condition is statically decided against it is killed during the
    fixpoint — so constancy and reachability reinforce each other
    (conditional constant propagation).

    The per-branch verdicts ([Some true]/[Some false] when one arm can
    never run) drive the [P4A006] diagnostic and {!Reachability}. *)

module Ast = Switchv_p4ir.Ast

type value = Top | Range of int * int  (** inclusive unsigned bounds *)

type fact

type t

val analyze : Cfg.t -> validity:Validity.fact Dataflow.result -> t

val result : t -> fact Dataflow.result

val verdict : t -> int -> bool option
(** [verdict t branch_id] is [Some b] when the condition of that branch
    (Symexec numbering) always evaluates to [b] — considering only
    reachable paths — and [None] when both arms can run (or the branch is
    itself unreachable). *)

val value_of : fact -> Ast.field_ref -> value
(** Fields never assigned and absent from the fact are [Top] (except at
    program entry, where [analyze] seeds metadata at zero). *)
