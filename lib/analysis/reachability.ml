module Domain = struct
  type t = unit

  let equal () () = true
  let join () () = ()
  let widen () () = ()
end

module F = Dataflow.Forward (Domain)

type t = { reach : bool array }

let analyze (cfg : Cfg.t) ~verdict =
  let edge (node : Cfg.node) i () =
    match node.Cfg.n_kind with
    | Cfg.N_cond (id, _) -> (
        match verdict id with
        | Some true when i = 1 -> None
        | Some false when i = 0 -> None
        | _ -> Some ())
    | _ -> Some ()
  in
  let res = F.run ~edge cfg ~init:() ~transfer:(fun _ () -> ()) in
  { reach = Array.map Option.is_some res.Dataflow.before }

let reachable t id = t.reach.(id)
