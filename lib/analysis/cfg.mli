(** An explicit control-flow graph over {!Switchv_p4ir.Ast.program}.

    The graph covers the whole per-packet path: parser states (with their
    select transitions), then the ingress pipeline, then the egress
    pipeline, then exit. Pipeline conditionals become two-successor
    condition nodes; a table application expands into a table node fanning
    out to one node per permitted action ({e hit} edges) plus one node for
    the default action ({e miss} edge), all rejoining at the table's
    successor — so per-action effects and reachability are first-class.

    Condition nodes carry a branch id assigned in the same pre-order the
    symbolic engine uses ({!Switchv_symbolic.Symexec} numbers its
    [branch.N.then]/[branch.N.else] trace labels by incrementing a counter
    at each [C_if], ingress before egress, then-arm before else-arm).
    Analyses can therefore name symbolic branch goals without re-running
    the encoder; {!Analysis} relies on this to translate dead branches
    into prunable goal labels. *)

module Ast = Switchv_p4ir.Ast

type action_role =
  | Hit   (** the table matched an entry invoking this action *)
  | Miss  (** no entry matched; the default action runs *)

type node_kind =
  | N_entry
  | N_exit
  | N_parser_state of Ast.parser_state
  | N_parser_accept  (** parsing finished; successor is the ingress entry *)
  | N_stmt of Ast.stmt
  | N_cond of int * Ast.bexpr
      (** branch id (Symexec numbering) and the condition. Successors are
          positional: index 0 is the then-arm, index 1 the else-arm. *)
  | N_table of Ast.table
  | N_action of Ast.table * string * action_role

type node = {
  n_id : int;
  n_kind : node_kind;
  n_where : string;  (** ["parser"], ["ingress"], ["egress"], or [""] *)
  mutable n_succ : int list;
  mutable n_pred : int list;
}

type t = {
  program : Ast.program;
  nodes : node array;  (** indexed by [n_id] *)
  entry : int;
  exit_ : int;
}

val build : Ast.program -> t
(** Unknown table names in a pipeline and transitions to unknown parser
    states (both typecheck errors) are skipped rather than represented. *)

val node_loc : node -> string
(** Human-readable location for diagnostics, e.g. ["table ipv4_table"],
    ["parser state parse_ipv4"], ["ingress"]. *)

val iter : (node -> unit) -> t -> unit
