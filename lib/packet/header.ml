type field = { f_name : string; f_width : int }

type t = { name : string; fields : field list }

let make name fields =
  if fields = [] then invalid_arg "Header.make: no fields";
  { name; fields = List.map (fun (f_name, f_width) -> { f_name; f_width }) fields }

let width t = List.fold_left (fun acc f -> acc + f.f_width) 0 t.fields

let field_width t name =
  match List.find_opt (fun f -> String.equal f.f_name name) t.fields with
  | Some f -> f.f_width
  | None -> raise Not_found

let field_names t = List.map (fun f -> f.f_name) t.fields

let has_field t name = List.exists (fun f -> String.equal f.f_name name) t.fields

let ethernet =
  make "ethernet" [ ("dst_addr", 48); ("src_addr", 48); ("ether_type", 16) ]

let vlan =
  make "vlan" [ ("pcp", 3); ("dei", 1); ("vlan_id", 12); ("ether_type", 16) ]

let ipv4 =
  make "ipv4"
    [ ("version", 4); ("ihl", 4); ("dscp", 6); ("ecn", 2); ("total_len", 16);
      ("identification", 16); ("flags", 3); ("frag_offset", 13); ("ttl", 8);
      ("protocol", 8); ("header_checksum", 16); ("src_addr", 32); ("dst_addr", 32) ]

let ipv6 =
  make "ipv6"
    [ ("version", 4); ("dscp", 6); ("ecn", 2); ("flow_label", 20);
      ("payload_length", 16); ("next_header", 8); ("hop_limit", 8);
      ("src_addr", 128); ("dst_addr", 128) ]

let tcp =
  make "tcp"
    [ ("src_port", 16); ("dst_port", 16); ("seq_no", 32); ("ack_no", 32);
      ("data_offset", 4); ("res", 4); ("flags", 8); ("window", 16);
      ("checksum", 16); ("urgent_ptr", 16) ]

let udp =
  make "udp" [ ("src_port", 16); ("dst_port", 16); ("hdr_length", 16); ("checksum", 16) ]

let icmp =
  make "icmp" [ ("type", 8); ("code", 8); ("checksum", 16); ("rest_of_header", 32) ]

let arp =
  make "arp"
    [ ("hw_type", 16); ("proto_type", 16); ("hw_addr_len", 8); ("proto_addr_len", 8);
      ("opcode", 16); ("sender_hw", 48); ("sender_proto", 32); ("target_hw", 48);
      ("target_proto", 32) ]

let gre = make "gre" [ ("flags", 4); ("reserved0", 9); ("version", 3); ("protocol", 16) ]

let standard = [ ethernet; vlan; ipv4; ipv6; tcp; udp; icmp; arp; gre ]

let find_standard name = List.find_opt (fun t -> String.equal t.name name) standard
