(** Concrete packets: an ordered stack of header instances plus an opaque
    payload. The order of [headers] is wire order (outermost first). *)

module Bitvec = Switchv_bitvec.Bitvec

type instance = { header : Header.t; values : (string * Bitvec.t) list }
(** One parsed header with a value for every field of its layout. *)

type t = { headers : instance list; payload : string }

val empty : t

val instance : Header.t -> (string * Bitvec.t) list -> instance
(** Checks that every field of the layout is assigned exactly once with the
    right width; raises [Invalid_argument] otherwise. *)

val push : t -> instance -> t
(** Append as the innermost header. *)

val has_header : t -> string -> bool
val find_header : t -> string -> instance option

val get : t -> header:string -> field:string -> Bitvec.t option
val get_exn : t -> header:string -> field:string -> Bitvec.t
val set : t -> header:string -> field:string -> Bitvec.t -> t
(** Raises [Invalid_argument] for an unknown header/field or width clash. *)

val remove_header : t -> string -> t
(** Drop the (outermost) instance of the named header, if present. *)

val serialize : instance -> Bitvec.t
(** Concatenate the fields in layout order. *)

val to_bytes : t -> string
(** Wire representation. Total header width must be a byte multiple. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Builders for common test packets} *)

val ethernet_frame :
  ?src:string -> ?dst:string -> ether_type:int -> unit -> instance
(** MACs as "aa:bb:cc:dd:ee:ff" strings. Defaults are fixed test MACs. *)

val ipv4_header :
  ?ttl:int -> ?protocol:int -> ?dscp:int -> src:string -> dst:string -> unit -> instance
(** IPs as dotted quads. Length/checksum fields are filled with plausible
    defaults (the validated pipelines do not verify checksums). *)

val ipv6_header :
  ?hop_limit:int -> ?next_header:int -> src:Bitvec.t -> dst:Bitvec.t -> unit -> instance

val udp_header : src_port:int -> dst_port:int -> unit -> instance
val tcp_header : src_port:int -> dst_port:int -> unit -> instance

val simple_ipv4 : ?ttl:int -> src:string -> dst:string -> unit -> t
(** Ethernet + IPv4 + UDP test packet. *)

val simple_ipv6 : ?hop_limit:int -> src:Bitvec.t -> dst:Bitvec.t -> unit -> t

val mac_of_string : string -> Bitvec.t
val ipv4_of_string : string -> Bitvec.t
val ipv6_of_string : string -> Bitvec.t
(** Parse an RFC-style IPv6 literal limited to full (non "::") or "::"-form
    addresses, e.g. "2001:db8::1". *)
