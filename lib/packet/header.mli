(** Header layouts: named, ordered lists of fixed-width fields.

    These are shared between the packet library (serialisation), the P4 IR
    (header declarations), the interpreter (parsing), and p4-symbolic
    (symbolic field variables), so that all components agree on field names
    and widths. *)

type field = { f_name : string; f_width : int }

type t = { name : string; fields : field list }

val make : string -> (string * int) list -> t

val width : t -> int
(** Total width in bits. *)

val field_width : t -> string -> int
(** Raises [Not_found] for an unknown field. *)

val field_names : t -> string list
val has_field : t -> string -> bool

(** {1 Standard headers}

    Field names follow SAI/P4 conventions used in the paper's Figure 2
    (e.g. [ipv4.dst_addr]). *)

(** [ethernet]: dst_addr:48 src_addr:48 ether_type:16.
    [vlan]: pcp:3 dei:1 vlan_id:12 ether_type:16.
    [ipv4]: version:4 ihl:4 dscp:6 ecn:2 total_len:16 identification:16
    flags:3 frag_offset:13 ttl:8 protocol:8 header_checksum:16 src_addr:32
    dst_addr:32.
    [ipv6]: version:4 dscp:6 ecn:2 flow_label:20 payload_length:16
    next_header:8 hop_limit:8 src_addr:128 dst_addr:128.
    [tcp]: src_port:16 dst_port:16 seq_no:32 ack_no:32 data_offset:4 res:4
    flags:8 window:16 checksum:16 urgent_ptr:16.
    [udp]: src_port:16 dst_port:16 hdr_length:16 checksum:16.
    [icmp]: type:8 code:8 checksum:16 rest_of_header:32.
    [arp]: hw_type:16 proto_type:16 hw_addr_len:8 proto_addr_len:8 opcode:16
    sender_hw:48 sender_proto:32 target_hw:48 target_proto:32.
    [gre]: flags:4 reserved0:9 version:3 protocol:16. *)

val ethernet : t
val vlan : t
val ipv4 : t
val ipv6 : t
val tcp : t
val udp : t
val icmp : t
val arp : t
val gre : t

val standard : t list
(** All of the above, for registry-style lookup. *)

val find_standard : string -> t option
