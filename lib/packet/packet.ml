module Bitvec = Switchv_bitvec.Bitvec

type instance = { header : Header.t; values : (string * Bitvec.t) list }

type t = { headers : instance list; payload : string }

let empty = { headers = []; payload = "" }

let instance header values =
  let layout = header.Header.fields in
  if List.length layout <> List.length values then
    invalid_arg
      (Printf.sprintf "Packet.instance: %s expects %d fields, got %d"
         header.Header.name (List.length layout) (List.length values));
  let ordered =
    List.map
      (fun (f : Header.field) ->
        match List.assoc_opt f.f_name values with
        | None ->
            invalid_arg
              (Printf.sprintf "Packet.instance: missing field %s.%s"
                 header.Header.name f.f_name)
        | Some v ->
            if Bitvec.width v <> f.f_width then
              invalid_arg
                (Printf.sprintf "Packet.instance: %s.%s expects width %d, got %d"
                   header.Header.name f.f_name f.f_width (Bitvec.width v));
            (f.f_name, v))
      layout
  in
  { header; values = ordered }

let push t inst = { t with headers = t.headers @ [ inst ] }

let has_header t name =
  List.exists (fun i -> String.equal i.header.Header.name name) t.headers

let find_header t name =
  List.find_opt (fun i -> String.equal i.header.Header.name name) t.headers

let get t ~header ~field =
  match find_header t header with
  | None -> None
  | Some i -> List.assoc_opt field i.values

let get_exn t ~header ~field =
  match get t ~header ~field with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Packet.get_exn: no %s.%s" header field)

let set t ~header ~field v =
  match find_header t header with
  | None -> invalid_arg (Printf.sprintf "Packet.set: no header %s" header)
  | Some inst ->
      if not (List.mem_assoc field inst.values) then
        invalid_arg (Printf.sprintf "Packet.set: no field %s.%s" header field);
      let expected = Header.field_width inst.header field in
      if Bitvec.width v <> expected then
        invalid_arg (Printf.sprintf "Packet.set: %s.%s width mismatch" header field);
      let values =
        List.map (fun (f, old) -> if String.equal f field then (f, v) else (f, old))
          inst.values
      in
      let headers =
        List.map
          (fun i ->
            if String.equal i.header.Header.name header then { i with values } else i)
          t.headers
      in
      { t with headers }

let remove_header t name =
  let rec drop = function
    | [] -> []
    | i :: rest when String.equal i.header.Header.name name -> rest
    | i :: rest -> i :: drop rest
  in
  { t with headers = drop t.headers }

let serialize inst =
  match inst.values with
  | [] -> invalid_arg "Packet.serialize: empty instance"
  | (_, first) :: rest ->
      List.fold_left (fun acc (_, v) -> Bitvec.concat acc v) first rest

let to_bytes t =
  let header_bytes =
    List.map (fun inst -> Bitvec.to_bytes_be (serialize inst)) t.headers
  in
  String.concat "" header_bytes ^ t.payload

let equal a b =
  String.equal a.payload b.payload
  && List.length a.headers = List.length b.headers
  && List.for_all2
       (fun x y ->
         String.equal x.header.Header.name y.header.Header.name
         && List.for_all2
              (fun (f1, v1) (f2, v2) -> String.equal f1 f2 && Bitvec.equal v1 v2)
              x.values y.values)
       a.headers b.headers

let compare a b =
  (* Compare via the canonical wire form plus header names (wire form alone
     cannot distinguish header boundaries). *)
  let key t =
    (List.map (fun i -> i.header.Header.name) t.headers, to_bytes t)
  in
  Stdlib.compare (key a) (key b)

let hash t = Hashtbl.hash (List.map (fun i -> i.header.Header.name) t.headers, to_bytes t)

let pp fmt t =
  let pp_inst fmt inst =
    Format.fprintf fmt "@[<hov 2>%s {" inst.header.Header.name;
    List.iter (fun (f, v) -> Format.fprintf fmt "@ %s=%a" f Bitvec.pp v) inst.values;
    Format.fprintf fmt "@ }@]"
  in
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_inst)
    t.headers;
  if t.payload <> "" then Format.fprintf fmt "@ payload(%d bytes)" (String.length t.payload)

(* --- address parsing --------------------------------------------------- *)

let mac_of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then invalid_arg "Packet.mac_of_string: need 6 octets";
  List.fold_left
    (fun acc p ->
      let b = int_of_string ("0x" ^ p) in
      Bitvec.logor (Bitvec.shift_left acc 8)
        (Bitvec.of_int ~width:48 b))
    (Bitvec.zero 48) parts

let ipv4_of_string s =
  let parts = String.split_on_char '.' s in
  if List.length parts <> 4 then invalid_arg "Packet.ipv4_of_string: need 4 octets";
  List.fold_left
    (fun acc p ->
      Bitvec.logor (Bitvec.shift_left acc 8) (Bitvec.of_int ~width:32 (int_of_string p)))
    (Bitvec.zero 32) parts

let ipv6_of_string s =
  let expand s =
    match String.index_opt s ':' with
    | None -> invalid_arg "Packet.ipv6_of_string: not an IPv6 literal"
    | Some _ ->
        (match String.split_on_char ':' s with
        | groups ->
            (* Handle "::" by locating the empty group. *)
            let n_empty = List.length (List.filter (fun g -> g = "") groups) in
            if n_empty = 0 then groups
            else begin
              let rec split_at acc = function
                | "" :: rest -> (List.rev acc, List.filter (fun g -> g <> "") rest)
                | g :: rest -> split_at (g :: acc) rest
                | [] -> (List.rev acc, [])
              in
              let before, after = split_at [] groups in
              let before = List.filter (fun g -> g <> "") before in
              let missing = 8 - List.length before - List.length after in
              before @ List.init (max 0 missing) (fun _ -> "0") @ after
            end)
  in
  let groups = expand s in
  if List.length groups <> 8 then invalid_arg "Packet.ipv6_of_string: bad group count";
  List.fold_left
    (fun acc g ->
      Bitvec.logor (Bitvec.shift_left acc 16)
        (Bitvec.of_int ~width:128 (int_of_string ("0x" ^ g))))
    (Bitvec.zero 128) groups

(* --- builders ----------------------------------------------------------- *)

let ethernet_frame ?(src = "02:00:00:00:00:01") ?(dst = "02:00:00:00:00:02")
    ~ether_type () =
  instance Header.ethernet
    [ ("dst_addr", mac_of_string dst);
      ("src_addr", mac_of_string src);
      ("ether_type", Bitvec.of_int ~width:16 ether_type) ]

let ipv4_header ?(ttl = 64) ?(protocol = 17) ?(dscp = 0) ~src ~dst () =
  instance Header.ipv4
    [ ("version", Bitvec.of_int ~width:4 4);
      ("ihl", Bitvec.of_int ~width:4 5);
      ("dscp", Bitvec.of_int ~width:6 dscp);
      ("ecn", Bitvec.zero 2);
      ("total_len", Bitvec.of_int ~width:16 46);
      ("identification", Bitvec.zero 16);
      ("flags", Bitvec.zero 3);
      ("frag_offset", Bitvec.zero 13);
      ("ttl", Bitvec.of_int ~width:8 ttl);
      ("protocol", Bitvec.of_int ~width:8 protocol);
      ("header_checksum", Bitvec.zero 16);
      ("src_addr", ipv4_of_string src);
      ("dst_addr", ipv4_of_string dst) ]

let ipv6_header ?(hop_limit = 64) ?(next_header = 17) ~src ~dst () =
  instance Header.ipv6
    [ ("version", Bitvec.of_int ~width:4 6);
      ("dscp", Bitvec.zero 6);
      ("ecn", Bitvec.zero 2);
      ("flow_label", Bitvec.zero 20);
      ("payload_length", Bitvec.of_int ~width:16 26);
      ("next_header", Bitvec.of_int ~width:8 next_header);
      ("hop_limit", Bitvec.of_int ~width:8 hop_limit);
      ("src_addr", src);
      ("dst_addr", dst) ]

let udp_header ~src_port ~dst_port () =
  instance Header.udp
    [ ("src_port", Bitvec.of_int ~width:16 src_port);
      ("dst_port", Bitvec.of_int ~width:16 dst_port);
      ("hdr_length", Bitvec.of_int ~width:16 26);
      ("checksum", Bitvec.zero 16) ]

let tcp_header ~src_port ~dst_port () =
  instance Header.tcp
    [ ("src_port", Bitvec.of_int ~width:16 src_port);
      ("dst_port", Bitvec.of_int ~width:16 dst_port);
      ("seq_no", Bitvec.zero 32);
      ("ack_no", Bitvec.zero 32);
      ("data_offset", Bitvec.of_int ~width:4 5);
      ("res", Bitvec.zero 4);
      ("flags", Bitvec.of_int ~width:8 0x02);
      ("window", Bitvec.of_int ~width:16 1024);
      ("checksum", Bitvec.zero 16);
      ("urgent_ptr", Bitvec.zero 16) ]

let simple_ipv4 ?(ttl = 64) ~src ~dst () =
  { headers =
      [ ethernet_frame ~ether_type:0x0800 ();
        ipv4_header ~ttl ~src ~dst ();
        udp_header ~src_port:10000 ~dst_port:20000 () ];
    payload = "switchv-test-payload" }

let simple_ipv6 ?(hop_limit = 64) ~src ~dst () =
  { headers =
      [ ethernet_frame ~ether_type:0x86DD ();
        ipv6_header ~hop_limit ~src ~dst ();
        udp_header ~src_port:10000 ~dst_port:20000 () ];
    payload = "switchv-test-payload" }
