module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | A_int of int
  | A_key of string
  | A_key_mask of string
  | A_key_prefix_length of string

type t =
  | C_true
  | C_false
  | C_cmp of cmp_op * atom * atom
  | C_atom_truthy of atom
  | C_not of t
  | C_and of t * t
  | C_or of t * t

(* --- lexer --------------------------------------------------------------- *)

type token =
  | T_int of int
  | T_ident of string       (* dotted path, possibly with ::suffix handled by parser *)
  | T_coloncolon
  | T_and | T_or | T_not
  | T_eq | T_ne | T_lt | T_le | T_gt | T_ge
  | T_lparen | T_rparen
  | T_eof

exception Lex_error of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' -> push T_lparen; incr i
    | ')' -> push T_rparen; incr i
    | '!' ->
        if !i + 1 < n && s.[!i + 1] = '=' then begin push T_ne; i := !i + 2 end
        else begin push T_not; incr i end
    | '=' ->
        if !i + 1 < n && s.[!i + 1] = '=' then begin push T_eq; i := !i + 2 end
        else raise (Lex_error (Printf.sprintf "stray '=' at offset %d" !i))
    | '<' ->
        if !i + 1 < n && s.[!i + 1] = '=' then begin push T_le; i := !i + 2 end
        else begin push T_lt; incr i end
    | '>' ->
        if !i + 1 < n && s.[!i + 1] = '=' then begin push T_ge; i := !i + 2 end
        else begin push T_gt; incr i end
    | '&' ->
        if !i + 1 < n && s.[!i + 1] = '&' then begin push T_and; i := !i + 2 end
        else raise (Lex_error (Printf.sprintf "stray '&' at offset %d" !i))
    | '|' ->
        if !i + 1 < n && s.[!i + 1] = '|' then begin push T_or; i := !i + 2 end
        else raise (Lex_error (Printf.sprintf "stray '|' at offset %d" !i))
    | ':' ->
        if !i + 1 < n && s.[!i + 1] = ':' then begin push T_coloncolon; i := !i + 2 end
        else raise (Lex_error (Printf.sprintf "stray ':' at offset %d" !i))
    | '0' .. '9' ->
        let start = !i in
        let base, digits_start =
          if c = '0' && !i + 1 < n && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X') then (16, !i + 2)
          else if c = '0' && !i + 1 < n && (s.[!i + 1] = 'b' || s.[!i + 1] = 'B') then (2, !i + 2)
          else (10, !i)
        in
        i := digits_start;
        let is_digit ch =
          match base with
          | 16 -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')
          | 2 -> ch = '0' || ch = '1'
          | _ -> ch >= '0' && ch <= '9'
        in
        while !i < n && is_digit s.[!i] do incr i done;
        if !i = digits_start then
          raise (Lex_error (Printf.sprintf "bad number at offset %d" start));
        let text = String.sub s start (!i - start) in
        push (T_int (int_of_string text))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        let is_ident ch =
          (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
          || (ch >= '0' && ch <= '9') || ch = '_' || ch = '.'
        in
        while !i < n && is_ident s.[!i] do incr i done;
        let text = String.sub s start (!i - start) in
        (match text with
        | "true" -> push (T_ident "true")
        | "false" -> push (T_ident "false")
        | _ -> push (T_ident text))
    | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C at offset %d" c !i)));
  done;
  List.rev (T_eof :: !toks)

(* --- parser -------------------------------------------------------------- *)

exception Parse_error of string

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> T_eof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t msg =
  if peek st = t then advance st else raise (Parse_error msg)

let parse_atom st =
  match peek st with
  | T_int n -> advance st; A_int n
  | T_ident id ->
      advance st;
      (match peek st with
      | T_coloncolon ->
          advance st;
          (match peek st with
          | T_ident "value" -> advance st; A_key id
          | T_ident "mask" -> advance st; A_key_mask id
          | T_ident "prefix_length" -> advance st; A_key_prefix_length id
          | _ -> raise (Parse_error ("unknown ::field after key " ^ id)))
      | _ -> A_key id)
  | _ -> raise (Parse_error "expected an atom (number or key)")

let cmp_of_token = function
  | T_eq -> Some Eq | T_ne -> Some Ne | T_lt -> Some Lt
  | T_le -> Some Le | T_gt -> Some Gt | T_ge -> Some Ge
  | _ -> None

let rec parse_disj st =
  let left = parse_conj st in
  if peek st = T_or then begin
    advance st;
    C_or (left, parse_disj st)
  end
  else left

and parse_conj st =
  let left = parse_unary st in
  if peek st = T_and then begin
    advance st;
    C_and (left, parse_conj st)
  end
  else left

and parse_unary st =
  match peek st with
  | T_not -> advance st; C_not (parse_unary st)
  | T_lparen ->
      advance st;
      let inner = parse_disj st in
      expect st T_rparen "expected ')'";
      (* A parenthesised constraint may be followed by a comparison only if
         it is an atom; we do not support comparing parenthesised boolean
         expressions, matching P4-constraints. *)
      inner
  | T_ident "true" -> advance st; C_true
  | T_ident "false" -> advance st; C_false
  | _ ->
      let a = parse_atom st in
      (match cmp_of_token (peek st) with
      | Some op ->
          advance st;
          let b = parse_atom st in
          C_cmp (op, a, b)
      | None -> C_atom_truthy a)

let parse s =
  match tokenize s with
  | exception Lex_error msg -> Error msg
  | toks ->
      let st = { toks } in
      (match parse_disj st with
      | exception Parse_error msg -> Error msg
      | c -> if peek st = T_eof then Ok c else Error "trailing tokens after constraint")

(* --- printing ------------------------------------------------------------ *)

let atom_to_string = function
  | A_int n -> string_of_int n
  | A_key k -> k
  | A_key_mask k -> k ^ "::mask"
  | A_key_prefix_length k -> k ^ "::prefix_length"

let cmp_to_string = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec to_string = function
  | C_true -> "true"
  | C_false -> "false"
  | C_cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (atom_to_string a) (cmp_to_string op) (atom_to_string b)
  | C_atom_truthy a -> atom_to_string a
  | C_not c -> Printf.sprintf "!(%s)" (to_string c)
  | C_and (a, b) -> Printf.sprintf "(%s && %s)" (to_string a) (to_string b)
  | C_or (a, b) -> Printf.sprintf "(%s || %s)" (to_string a) (to_string b)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- evaluation ---------------------------------------------------------- *)

type key_value =
  | K_exact of Bitvec.t
  | K_lpm of Prefix.t
  | K_ternary of Ternary.t
  | K_optional of Bitvec.t option

type lookup = string -> key_value option

type value = V_int of int | V_bv of Bitvec.t

let ( let* ) = Result.bind

let atom_value lookup = function
  | A_int n -> Ok (V_int n)
  | A_key k -> (
      match lookup k with
      | None -> Error (Printf.sprintf "unknown key %s" k)
      | Some (K_exact v) -> Ok (V_bv v)
      | Some (K_lpm p) -> Ok (V_bv (Prefix.value p))
      | Some (K_ternary t) -> Ok (V_bv (Ternary.value t))
      | Some (K_optional (Some v)) -> Ok (V_bv v)
      | Some (K_optional None) -> Error (Printf.sprintf "optional key %s is unset" k))
  | A_key_mask k -> (
      match lookup k with
      | None -> Error (Printf.sprintf "unknown key %s" k)
      | Some (K_exact v) -> Ok (V_bv (Bitvec.ones (Bitvec.width v)))
      | Some (K_lpm p) ->
          Ok (V_bv (Bitvec.prefix_mask ~width:(Prefix.width p) (Prefix.len p)))
      | Some (K_ternary t) -> Ok (V_bv (Ternary.mask t))
      | Some (K_optional (Some v)) -> Ok (V_bv (Bitvec.ones (Bitvec.width v)))
      | Some (K_optional None) -> Error (Printf.sprintf "optional key %s is unset" k))
  | A_key_prefix_length k -> (
      match lookup k with
      | Some (K_lpm p) -> Ok (V_int (Prefix.len p))
      | Some _ -> Error (Printf.sprintf "%s::prefix_length on a non-LPM key" k)
      | None -> Error (Printf.sprintf "unknown key %s" k))

(* Integer literals are unbounded (as in P4-constraints): a constant that
   does not fit the key's width is simply larger than every key value. *)
let exceeds_width x w = w <= 62 && x > (1 lsl w) - 1

let compare_values a b =
  match (a, b) with
  | V_int x, V_int y -> Ok (Int.compare x y)
  | V_bv x, V_bv y ->
      if Bitvec.width x <> Bitvec.width y then
        Error
          (Printf.sprintf "comparing bitvectors of widths %d and %d" (Bitvec.width x)
             (Bitvec.width y))
      else Ok (Bitvec.compare x y)
  | V_int x, V_bv y ->
      if x < 0 then Error "negative constant compared to a key"
      else if exceeds_width x (Bitvec.width y) then Ok 1
      else Ok (Bitvec.compare (Bitvec.of_int ~width:(Bitvec.width y) x) y)
  | V_bv x, V_int y ->
      if y < 0 then Error "negative constant compared to a key"
      else if exceeds_width y (Bitvec.width x) then Ok (-1)
      else Ok (Bitvec.compare x (Bitvec.of_int ~width:(Bitvec.width x) y))

let rec eval t lookup =
  match t with
  | C_true -> Ok true
  | C_false -> Ok false
  | C_not c ->
      let* b = eval c lookup in
      Ok (not b)
  | C_and (a, b) ->
      let* x = eval a lookup in
      if not x then Ok false else eval b lookup
  | C_or (a, b) ->
      let* x = eval a lookup in
      if x then Ok true else eval b lookup
  | C_atom_truthy a ->
      let* v = atom_value lookup a in
      (match v with
      | V_int n -> Ok (n <> 0)
      | V_bv bv -> Ok (not (Bitvec.is_zero bv)))
  | C_cmp (op, a, b) ->
      let* va = atom_value lookup a in
      let* vb = atom_value lookup b in
      let* c = compare_values va vb in
      Ok
        (match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0)

let keys t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let add k =
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out := k :: !out
    end
  in
  let atom = function
    | A_int _ -> ()
    | A_key k | A_key_mask k | A_key_prefix_length k -> add k
  in
  let rec go = function
    | C_true | C_false -> ()
    | C_cmp (_, a, b) -> atom a; atom b
    | C_atom_truthy a -> atom a
    | C_not c -> go c
    | C_and (a, b) | C_or (a, b) -> go a; go b
  in
  go t;
  List.rev !out
