(** Binary decision diagrams over table-entry bits, for constraint-aware
    fuzzing — the mechanism §7 of the paper describes as ongoing work:

    "transform every constraint in the P4 program into a BDD over the bits
    of the header and metadata fields referred to in that constraint. We
    can efficiently sample solutions to this BDD to ensure that our valid
    tests are constraint-compliant, and randomly mutate one of the nodes
    of the BDD to generate (otherwise valid) table entries that violate
    the corresponding constraint."

    [compile] turns an [@entry_restriction] into a reduced ordered BDD
    whose variables are the value bits of the table's keys (and, for
    ternary keys, their mask bits — a mask of zero means the key is
    omitted). Exact model counting over the BDD gives uniform sampling of
    compliant entries; a near-miss violation is a compliant sample with
    one variable flipped across the constraint boundary.

    Constraints mentioning [::prefix_length] (LPM structure is not a flat
    bit vector) are reported as unsupported; callers fall back to the
    heuristic mutation. *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng

type key_kind = Exact | Ternary | Optional

type key_layout = { kl_name : string; kl_kind : key_kind; kl_width : int }

type compiled

val compile : key_layout list -> Constraint_lang.t -> (compiled, string) result
(** [Error] reports an unsupported construct or an unknown key. *)

val size : compiled -> int
(** Number of BDD nodes (diagnostics). *)

val model_count : compiled -> float
(** Number of satisfying assignments over the key bits (exact up to float
    precision). 0. means the restriction is unsatisfiable. *)

type assignment = {
  values : (string * Bitvec.t) list;   (** per key: the match value *)
  masks : (string * Bitvec.t) list;    (** per ternary key: the mask *)
}

val sample_compliant : compiled -> Rng.t -> assignment option
(** Uniform over satisfying assignments; [None] if unsatisfiable. *)

val sample_violation : compiled -> Rng.t -> assignment option
(** Uniform over {e violating} assignments; [None] if the restriction is a
    tautology over the keys. *)

val sample_near_violation : compiled -> Rng.t -> assignment option
(** A compliant sample with one bit flipped so that it violates the
    restriction — the paper's "mutate one node" generation. Falls back to
    [sample_violation] when no single-bit flip crosses the boundary. *)

val satisfies : compiled -> assignment -> bool
(** Evaluate an assignment against the compiled restriction. *)
