(** The P4-constraints entry-restriction language.

    Mirrors the open-source P4-constraints extension the paper introduces
    (§3): boolean expressions over a table's match keys, attached to tables
    via [@entry_restriction], evaluated against candidate table entries at
    run time by the switch's P4Runtime layer, and used by SwitchV's oracle
    to classify fuzzed requests as valid or invalid.

    Grammar (precedence low to high: [||], [&&], [!], comparisons):
    {v
      constraint := disj
      disj   := conj ("||" conj)*
      conj   := unary ("&&" unary)*
      unary  := "!" unary | "(" constraint ")" | "true" | "false" | cmp
      cmp    := atom (("=="|"!="|"<"|"<="|">"|">=") atom)?
      atom   := INT | 0xHEX | 0bBIN | key | key "::" field
      key    := ident ("." ident)*
      field  := "value" | "mask" | "prefix_length"
    v}

    A bare [key] denotes the match value. [::mask] is the ternary mask (for
    LPM keys, the implied prefix mask). [::prefix_length] is the LPM prefix
    length. An omitted optional/ternary key behaves as a wildcard: its mask
    is zero and its value is zero. *)

module Bitvec = Switchv_bitvec.Bitvec

type cmp_op = Eq | Ne | Lt | Le | Gt | Ge

type atom =
  | A_int of int
  | A_key of string                (** bare key: match value *)
  | A_key_mask of string
  | A_key_prefix_length of string

type t =
  | C_true
  | C_false
  | C_cmp of cmp_op * atom * atom
  | C_atom_truthy of atom          (** a bare boolean key, nonzero = true *)
  | C_not of t
  | C_and of t * t
  | C_or of t * t

val parse : string -> (t, string) result
(** Parse the textual form. Errors carry a human-readable position. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Evaluation} *)

type key_value =
  | K_exact of Bitvec.t
  | K_lpm of Switchv_bitvec.Prefix.t
  | K_ternary of Switchv_bitvec.Ternary.t
  | K_optional of Bitvec.t option

type lookup = string -> key_value option
(** [None] means the key does not exist in the table (an evaluation
    error, as opposed to an omitted wildcard key which is represented by
    [K_ternary (wildcard)] or [K_optional None]). *)

val eval : t -> lookup -> (bool, string) result

val keys : t -> string list
(** Key names referenced, without duplicates, in first-use order. *)
