module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng

type key_kind = Exact | Ternary | Optional

type key_layout = { kl_name : string; kl_kind : key_kind; kl_width : int }

(* --- ROBDD core -------------------------------------------------------------- *)

(* Nodes are integers: 0 = false, 1 = true, >= 2 index into [nodes].
   Children always have a strictly larger variable index (or are
   terminals); the unique table enforces reduction. *)

type manager = {
  mutable vars : int;                           (* number of variables *)
  nodes : (int * int * int) array ref;           (* var, lo, hi *)
  mutable n_nodes : int;
  unique : (int * int * int, int) Hashtbl.t;
  apply_memo : (string * int * int, int) Hashtbl.t;
}

let fls = 0
let tru = 1

let manager nvars =
  { vars = nvars;
    nodes = ref (Array.make 1024 (0, 0, 0));
    n_nodes = 2; (* slots 0/1 reserved for terminals, never dereferenced *)
    unique = Hashtbl.create 1024;
    apply_memo = Hashtbl.create 4096 }

let node_of m u = !(m.nodes).(u)
let var_of m u = if u < 2 then max_int else let v, _, _ = node_of m u in v

let mk m v lo hi =
  if lo = hi then lo
  else begin
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some u -> u
    | None ->
        if m.n_nodes = Array.length !(m.nodes) then begin
          let bigger = Array.make (2 * m.n_nodes) (0, 0, 0) in
          Array.blit !(m.nodes) 0 bigger 0 m.n_nodes;
          m.nodes := bigger
        end;
        let u = m.n_nodes in
        !(m.nodes).(u) <- (v, lo, hi);
        m.n_nodes <- m.n_nodes + 1;
        Hashtbl.add m.unique (v, lo, hi) u;
        u
  end

let rec apply m op f a b =
  match op with
  | "and" when a = fls || b = fls -> fls
  | "and" when a = tru -> b
  | "and" when b = tru -> a
  | "or" when a = tru || b = tru -> tru
  | "or" when a = fls -> b
  | "or" when b = fls -> a
  | "xor" when a = fls -> b
  | "xor" when b = fls -> a
  | _ when a < 2 && b < 2 -> if f (a = tru) (b = tru) then tru else fls
  | _ -> (
      let key = (op, min a b, max a b) in
      (* and/or/xor are commutative, so normalise the memo key *)
      match Hashtbl.find_opt m.apply_memo key with
      | Some r -> r
      | None ->
          let va = var_of m a and vb = var_of m b in
          let v = min va vb in
          let a_lo, a_hi =
            if va = v then let _, lo, hi = node_of m a in (lo, hi) else (a, a)
          in
          let b_lo, b_hi =
            if vb = v then let _, lo, hi = node_of m b in (lo, hi) else (b, b)
          in
          let r = mk m v (apply m op f a_lo b_lo) (apply m op f a_hi b_hi) in
          Hashtbl.add m.apply_memo key r;
          r)

let band m a b = apply m "and" ( && ) a b
let bor m a b = apply m "or" ( || ) a b

let rec bnot m a =
  if a = fls then tru
  else if a = tru then fls
  else
    match Hashtbl.find_opt m.apply_memo ("not", a, a) with
    | Some r -> r
    | None ->
        let v, lo, hi = node_of m a in
        let r = mk m v (bnot m lo) (bnot m hi) in
        Hashtbl.add m.apply_memo ("not", a, a) r;
        r

let bvar m v = mk m v fls tru

(* --- compilation of constraints ----------------------------------------------- *)

(* Variable layout: for each key in order, MSB-first; for ternary keys the
   value and mask bits are INTERLEAVED (v_0 m_0 v_1 m_1 ...) — the
   canonicality constraint relates v_i and m_i, and separating the two
   runs would make its BDD exponential in the key width. *)

type slot = { s_key : string; s_value_vars : int array; s_mask_vars : int array option }

type compiled = {
  m : manager;
  root : int;       (* the restriction itself *)
  canon : int;      (* ternary canonicality side-condition *)
  slots : slot list;
  total_vars : int;
}

exception Unsupported of string

(* A "bit vector" during compilation: each bit is either a constant or a
   BDD variable index; MSB first. *)
type cbit = Const of bool | Var of int

let bits_of_int width n =
  List.init width (fun i -> Const (n lsr (width - 1 - i) land 1 = 1))

let eq_bits m a b =
  List.fold_left2
    (fun acc x y ->
      let bit_eq =
        match (x, y) with
        | Const p, Const q -> if p = q then tru else fls
        | Var v, Const true | Const true, Var v -> bvar m v
        | Var v, Const false | Const false, Var v -> bnot m (bvar m v)
        | Var v, Var w -> bnot m (apply m "xor" ( <> ) (bvar m v) (bvar m w))
      in
      band m acc bit_eq)
    tru a b

(* Unsigned a < b, MSB-first: lt = OR_i (prefix_eq(0..i-1) AND ~a_i AND b_i) *)
let lt_bits m a b =
  let to_bdd = function
    | Const true -> tru
    | Const false -> fls
    | Var v -> bvar m v
  in
  let rec go prefix_eq = function
    | [], [] -> fls
    | x :: xs, y :: ys ->
        let xa = to_bdd x and yb = to_bdd y in
        let here = band m prefix_eq (band m (bnot m xa) yb) in
        let eq_here = bnot m (apply m "xor" ( <> ) xa yb) in
        bor m here (go (band m prefix_eq eq_here) (xs, ys))
    | _ -> invalid_arg "lt_bits: width mismatch"
  in
  go tru (a, b)

let compile layouts constr =
  try
    (* Assign variable indices. *)
    let slots = ref [] in
    let next = ref 0 in
    List.iter
      (fun kl ->
        if kl.kl_kind = Ternary then begin
          let base = !next in
          next := !next + (2 * kl.kl_width);
          slots :=
            { s_key = kl.kl_name;
              s_value_vars = Array.init kl.kl_width (fun i -> base + (2 * i));
              s_mask_vars = Some (Array.init kl.kl_width (fun i -> base + (2 * i) + 1)) }
            :: !slots
        end
        else begin
          let base = !next in
          next := !next + kl.kl_width;
          slots :=
            { s_key = kl.kl_name;
              s_value_vars = Array.init kl.kl_width (fun i -> base + i);
              s_mask_vars = None }
            :: !slots
        end)
      layouts;
    let slots = List.rev !slots in
    let total_vars = !next in
    let m = manager total_vars in
    let slot name =
      match List.find_opt (fun s -> String.equal s.s_key name) slots with
      | Some s -> s
      | None -> raise (Unsupported (Printf.sprintf "unknown key %s" name))
    in
    let value_bits s = Array.to_list (Array.map (fun v -> Var v) s.s_value_vars) in
    let mask_bits s =
      match s.s_mask_vars with
      | Some vars -> Array.to_list (Array.map (fun v -> Var v) vars)
      | None -> List.init (Array.length s.s_value_vars) (fun _ -> Const true)
    in
    (* An atom yields (bits, width hint). Integers adapt to the other
       side's width; oversized constants are handled via comparison
       semantics on an extended width. *)
    let atom_bits width = function
      | Constraint_lang.A_int n ->
          if n < 0 then raise (Unsupported "negative constant");
          bits_of_int width n
      | Constraint_lang.A_key k -> value_bits (slot k)
      | Constraint_lang.A_key_mask k -> mask_bits (slot k)
      | Constraint_lang.A_key_prefix_length _ ->
          raise (Unsupported "::prefix_length is not a flat bit vector")
    in
    (* An integer constant wider than the key is simply larger than every
       key value (Constraint_lang's unbounded-literal semantics). *)
    let oversized width = function
      | Constraint_lang.A_int n -> width <= 62 && n > (1 lsl width) - 1
      | _ -> false
    in
    let atom_width = function
      | Constraint_lang.A_int _ -> None
      | Constraint_lang.A_key k | Constraint_lang.A_key_mask k ->
          Some (Array.length (slot k).s_value_vars)
      | Constraint_lang.A_key_prefix_length _ ->
          raise (Unsupported "::prefix_length is not a flat bit vector")
    in
    let cmp_bdd op a b =
      let width =
        match (atom_width a, atom_width b) with
        | Some w, Some w' when w <> w' -> raise (Unsupported "key width mismatch")
        | Some w, _ | _, Some w -> w
        | None, None -> 62 (* int vs int: constant-fold below *)
      in
      if oversized width a then
        (* constant > any key value: a OP b with huge a *)
        match op with
        | Constraint_lang.Eq | Constraint_lang.Lt | Constraint_lang.Le -> fls
        | Constraint_lang.Ne | Constraint_lang.Gt | Constraint_lang.Ge -> tru
      else if oversized width b then
        match op with
        | Constraint_lang.Eq | Constraint_lang.Gt | Constraint_lang.Ge -> fls
        | Constraint_lang.Ne | Constraint_lang.Lt | Constraint_lang.Le -> tru
      else begin
        let ba = atom_bits width a and bb = atom_bits width b in
        match op with
        | Constraint_lang.Eq -> eq_bits m ba bb
        | Constraint_lang.Ne -> bnot m (eq_bits m ba bb)
        | Constraint_lang.Lt -> lt_bits m ba bb
        | Constraint_lang.Le -> bnot m (lt_bits m bb ba)
        | Constraint_lang.Gt -> lt_bits m bb ba
        | Constraint_lang.Ge -> bnot m (lt_bits m ba bb)
      end
    in
    let rec go = function
      | Constraint_lang.C_true -> tru
      | Constraint_lang.C_false -> fls
      | Constraint_lang.C_not c -> bnot m (go c)
      | Constraint_lang.C_and (a, b) -> band m (go a) (go b)
      | Constraint_lang.C_or (a, b) -> bor m (go a) (go b)
      | Constraint_lang.C_atom_truthy a ->
          bnot m (eq_bits m (atom_bits (Option.value ~default:1 (atom_width a)) a)
                    (bits_of_int (Option.value ~default:1 (atom_width a)) 0))
      | Constraint_lang.C_cmp (op, a, b) -> cmp_bdd op a b
    in
    let root = go constr in
    (* Canonicality side-condition: a ternary value bit may be set only
       where the mask bit is set (Ternary.make canonicalises exactly so);
       samples must respect it or the constructed entry would evaluate
       differently from the sampled assignment. *)
    let canon =
      List.fold_left
        (fun acc s ->
          match s.s_mask_vars with
          | None -> acc
          | Some mvars ->
              let per_bit =
                List.init (Array.length s.s_value_vars) (fun i ->
                    bor m (bnot m (bvar m s.s_value_vars.(i))) (bvar m mvars.(i)))
              in
              List.fold_left (band m) acc per_bit)
        tru slots
    in
    Ok { m; root; canon; slots; total_vars }
  with
  | Unsupported msg -> Error msg
  | Invalid_argument msg -> Error msg

let size c = c.m.n_nodes

(* --- model counting and sampling ------------------------------------------------ *)

(* models(u, from_var): number of satisfying assignments of the variables
   from_var .. total_vars-1 under node u. *)
let count_table c =
  let memo : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let rec models u =
    if u = fls then 0.
    else if u = tru then 1.
    else
      match Hashtbl.find_opt memo u with
      | Some x -> x
      | None ->
          let v, lo, hi = node_of c.m u in
          let weight child =
            let skipped = (if child < 2 then c.total_vars else var_of c.m child) - v - 1 in
            models child *. (2. ** float_of_int skipped)
          in
          let x = weight lo +. weight hi in
          Hashtbl.add memo u x;
          x
  in
  let top =
    let skipped = if c.root < 2 then c.total_vars else var_of c.m c.root in
    models c.root *. (2. ** float_of_int skipped)
  in
  (top, fun u -> models u)

let model_count c = fst (count_table { c with root = band c.m c.root c.canon })

type assignment = {
  values : (string * Bitvec.t) list;
  masks : (string * Bitvec.t) list;
}

let assignment_of_bits c bits =
  let read vars =
    let width = Array.length vars in
    let v = ref (Bitvec.zero width) in
    Array.iteri
      (fun i var ->
        if bits.(var) then
          (* MSB-first layout: position i is value bit (width-1-i) *)
          v := Bitvec.logor !v (Bitvec.shift_left (Bitvec.of_int ~width 1) (width - 1 - i)))
      vars;
    !v
  in
  { values = List.map (fun s -> (s.s_key, read s.s_value_vars)) c.slots;
    masks =
      List.filter_map
        (fun s -> Option.map (fun vars -> (s.s_key, read vars)) s.s_mask_vars)
        c.slots }

(* Uniform sampling by walking the BDD weighted by model counts; variables
   skipped on an edge are uniform coin flips. *)
let sample_node c rng root =
  let _, models = count_table c in
  if root = fls || fst (count_table { c with root }) = 0. then None
  else begin
    let bits = Array.make c.total_vars false in
    let rec walk u v =
      if v >= c.total_vars then ()
      else if u = tru then begin
        (* all remaining variables free *)
        bits.(v) <- Rng.bool rng;
        walk u (v + 1)
      end
      else begin
        let uv = var_of c.m u in
        if v < uv then begin
          bits.(v) <- Rng.bool rng;
          walk u (v + 1)
        end
        else begin
          let _, lo, hi = node_of c.m u in
          let weight child =
            let next_v = if child < 2 then c.total_vars else var_of c.m child in
            (if child = fls then 0. else if child = tru then 1. else models child)
            *. (2. ** float_of_int (next_v - v - 1))
          in
          let wlo = weight lo and whi = weight hi in
          let go_hi =
            if wlo = 0. then true
            else if whi = 0. then false
            else begin
              (* Bernoulli(whi / (wlo + whi)) with integer rng *)
              let p = whi /. (wlo +. whi) in
              float_of_int (Rng.int rng 1_000_000) < p *. 1_000_000.
            end
          in
          bits.(v) <- go_hi;
          walk (if go_hi then hi else lo) (v + 1)
        end
      end
    in
    walk root 0;
    Some (assignment_of_bits c bits)
  end

let sample_compliant c rng = sample_node c rng (band c.m c.root c.canon)

let sample_violation c rng = sample_node c rng (band c.m (bnot c.m c.root) c.canon)

let eval_node c node bits =
  let rec walk u =
    if u = tru then true
    else if u = fls then false
    else begin
      let v, lo, hi = node_of c.m u in
      walk (if bits.(v) then hi else lo)
    end
  in
  walk node

let eval_bits c bits = eval_node c c.root bits

let bits_of_assignment c a =
  let bits = Array.make c.total_vars false in
  List.iter
    (fun s ->
      let write vars v =
        let width = Array.length vars in
        Array.iteri (fun i var -> bits.(var) <- Bitvec.bit v (width - 1 - i)) vars
      in
      (match List.assoc_opt s.s_key a.values with
      | Some v -> write s.s_value_vars v
      | None -> ());
      match (s.s_mask_vars, List.assoc_opt s.s_key a.masks) with
      | Some vars, Some v -> write vars v
      | _ -> ())
    c.slots;
  bits

let satisfies c a = eval_bits c (bits_of_assignment c a)

let sample_near_violation c rng =
  match sample_compliant c rng with
  | None -> None
  | Some a -> (
      let bits = bits_of_assignment c a in
      let order = Rng.shuffle rng (List.init c.total_vars Fun.id) in
      let rec try_flips = function
        | [] -> sample_violation c rng
        | v :: rest ->
            bits.(v) <- not bits.(v);
            if (not (eval_bits c bits)) && eval_node c c.canon bits then
              Some (assignment_of_bits c bits)
            else begin
              bits.(v) <- not bits.(v);
              try_flips rest
            end
      in
      try_flips order)
