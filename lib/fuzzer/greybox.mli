(** FP4-style coverage-guided greybox scheduling (feedback loop).

    One instance per campaign shard. After each execution (update batch's
    probe packets on the control side, each generated test packet on the
    data side) the campaign folds the [cov.branch.*]/[cov.action.*]
    counter delta into this shard's novelty map; executions that reached
    edges new to the shard enter a bounded corpus and assign energy to the
    tables they touched. The fuzzer then draws mutation targets through
    {!pick_table}/{!pick_seed_entry} — a power schedule favoring rare-edge
    reachers — and the campaign injects {!probe_packet}s derived from the
    corpus.

    Determinism: novelty is shard-local and fed only by deltas around this
    shard's own executions, so scheduling is a pure function of
    (config, shard) — byte-identical at any [--jobs]. All randomness comes
    from a private generator, so disabling the loop reproduces the blind
    fuzzer's stream exactly. *)

module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Telemetry = Switchv_telemetry.Telemetry

type seed_input =
  | Batch of Entry.t list   (** control-plane seed: an admitted batch *)
  | Packet of int * string  (** data-plane seed: (ingress port, bytes) *)

type t

val create :
  ?ports:int list -> program:Switchv_p4ir.Ast.program -> seed:int -> unit -> t
(** Fresh, empty feedback state over the program's full edge space
    ({!Coverage.edge_keys}). [seed] is decorrelated internally, so passing
    the campaign shard seed is fine. *)

type snapshot

val snapshot : t -> Telemetry.t -> snapshot
(** Current values of every coverage counter, to diff after an execution. *)

val observe :
  t -> Telemetry.t -> before:snapshot -> tables:string list ->
  ?seed:seed_input -> unit -> int
(** Fold the delta since [before] into the novelty map. Returns the number
    of shard-novel edges; when positive, [seed] (if any) is admitted to
    the corpus with that energy and each of [tables] gains that much
    energy. Bumps [fuzzer.greybox.novel_edges] / [corpus_admitted] /
    [energy_assigned]. *)

val admit : t -> seed_input -> energy:int -> unit
(** Admit an input directly (used to credit the batch whose probes found
    novelty). The corpus is bounded; the lowest-energy seed is evicted. *)

val pick_table : t -> P4info.table list -> P4info.table
(** Energy-weighted table choice (weight [1 + energy], one RNG draw). *)

val pick_seed_entry : t -> Entry.t option
(** A third of the time, an entry from an energy-weighted corpus batch to
    use as a mutation base; [None] otherwise or when the corpus has no
    control-plane seeds. *)

val probe_packet : t -> int * string
(** [(ingress_port, bytes)] to inject after a batch: a fresh random IPv4
    frame or a byte-mutated energy-weighted corpus packet. *)

val covered : t -> string -> bool
(** Has this shard concretely covered the given edge key ([cov.…])? *)

val novel_edges : t -> int
(** Distinct edges first observed by this shard. *)

val corpus_size : t -> int
