(** p4-fuzzer: control-plane request generation (§4).

    Given a P4Info schema, generates batched Write requests containing both
    valid updates and "interestingly invalid" ones produced by applying a
    single mutation to a valid update (§4.2). Generation is directed by the
    schema — field widths, permitted actions, reference annotations — and
    by a mirror of the entries installed so far, so that valid updates can
    reference previously installed objects, and deletions target existing
    (preferably unreferenced) entries.

    Batches are formed so that no update depends on another update in the
    same batch ([@refers_to]-derived ordering, §4.4): a switch may execute
    a batch in any order, so intra-batch dependencies would make validity
    order-dependent and unjudgeable. *)

module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module State = Switchv_p4runtime.State
module Rng = Switchv_bitvec.Rng

type config = {
  updates_per_batch : int;     (** ~50 in the paper's campaigns *)
  invalid_percent : int;       (** share of mutated (invalid) updates *)
  delete_percent : int;        (** share of valid updates that are deletes *)
  modify_percent : int;        (** share of valid updates that are modifies *)
  respect_dependencies : bool;
      (** When false, batches may contain internal dependencies (deletes of
          entries referenced by same-batch inserts) — the ablation of the
          paper's @refers_to-aware batching, expected to produce spurious
          oracle incidents. *)
}

val default_config : config

type t

val create : ?config:config -> ?greybox:Greybox.t -> P4info.t -> Rng.t -> t
(** [greybox] plugs in a coverage-feedback state ({!Greybox}): valid-insert
    table choice becomes energy-weighted and some mutation bases come from
    the corpus. Without it (or before any feedback arrives) generation is
    exactly the blind fuzzer — greybox draws use a private generator, so
    the [rng] stream is untouched. *)

val mirror : t -> State.t
(** The fuzzer's view of what should be installed, assuming the switch
    accepted every valid update. Used by campaigns for reporting only; the
    oracle keeps its own observed state. *)

type annotated_update = {
  update : Request.update;
  mutation : string option;
      (** The mutation applied, or [None] for an un-mutated update. The
          oracle classifies validity independently. *)
}

val next_batch : t -> annotated_update list
(** Generate the next batch. The fuzzer optimistically applies its own
    valid updates to [mirror] (the oracle reconciles against the switch's
    actual state). *)

val sweep : t -> annotated_update list list
(** Directed batches that systematically exercise the whole control
    surface: valid inserts into every table (in [@refers_to] dependency
    order, several per table), one valid modify and one valid delete per
    table where possible, then one instance of {e every applicable
    mutation against every table}. Campaigns run a sweep before the random
    phase so that table-specific handling is always covered at least
    once. *)

val mutations : string list
(** Names of all implemented mutations (§4.2). *)
