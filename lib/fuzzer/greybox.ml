module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module Entry = Switchv_p4runtime.Entry
module Packet = Switchv_packet.Packet
module Coverage = Switchv_obs.Coverage
module Telemetry = Switchv_telemetry.Telemetry

(* FP4-style greybox feedback state. One instance per campaign shard:
   the novelty map starts empty and is fed exclusively by before/after
   counter *deltas* around executions this shard performed, so its
   content — and every scheduling decision derived from it — depends
   only on (config, shard), never on which process the shard ran in or
   what the ambient registry accumulated before it. That is the whole
   determinism argument: shard-local novelty + delta capture makes
   greybox runs byte-identical at any --jobs, and the parent absorbing
   worker telemetry deltas additively is what "merges" the maps into
   the campaign-wide fuzzer.greybox.* totals. *)

type seed_input =
  | Batch of Entry.t list   (* control-plane: entries of an admitted batch *)
  | Packet of int * string  (* data-plane: (ingress port, wire bytes) *)

type seed = {
  sd_input : seed_input;
  mutable sd_energy : int;  (* novel edges credited to this input *)
}

type t = {
  rng : Rng.t;
      (* All greybox draws come from this generator, never the fuzzer's:
         with the loop disabled no greybox draw happens at all, so the
         blind fuzzer's stream — and output — is bit-identical to a build
         without the feature. *)
  edge_keys : string list;  (* memoized full edge space, Coverage order *)
  novelty : (string, int) Hashtbl.t;  (* edge key -> hits seen by this shard *)
  energy : (string, int) Hashtbl.t;   (* table name -> accumulated energy *)
  mutable seeds : seed list;          (* corpus, newest first, bounded *)
  mutable n_seeds : int;
  mutable n_novel : int;              (* distinct edges first seen here *)
  ports : int list;
}

let max_corpus = 256

let create ?(ports = [ 1; 2; 3; 4 ]) ~program ~seed () =
  { (* decorrelate from the fuzzer rng, which campaigns seed identically *)
    rng = Rng.create (seed lxor 0x67726579);
    edge_keys = Coverage.edge_keys program;
    novelty = Hashtbl.create 64;
    energy = Hashtbl.create 16;
    seeds = [];
    n_seeds = 0;
    n_novel = 0;
    ports }

let novel_edges t = t.n_novel
let corpus_size t = t.n_seeds

let covered t key = Hashtbl.mem t.novelty key

type snapshot = int array

let snapshot t tele =
  Array.of_list (List.map (Telemetry.counter tele) t.edge_keys)

let admit t input ~energy =
  Telemetry.incr (Telemetry.get ()) "fuzzer.greybox.corpus_admitted";
  t.seeds <- { sd_input = input; sd_energy = max 1 energy } :: t.seeds;
  t.n_seeds <- t.n_seeds + 1;
  if t.n_seeds > max_corpus then begin
    (* Drop the lowest-energy seed (oldest among ties): rare-edge
       discoverers stay schedulable for the whole campaign. *)
    let worst =
      List.fold_left (fun w s -> if s.sd_energy <= w.sd_energy then s else w)
        (List.hd t.seeds) t.seeds
    in
    let dropped = ref false in
    t.seeds <-
      List.filter
        (fun s ->
          if (not !dropped) && s == worst then begin
            dropped := true;
            false
          end
          else true)
        t.seeds;
    t.n_seeds <- t.n_seeds - 1
  end

(* Fold the counter delta since [before] into the novelty map; returns the
   number of edges that were new to this shard. When the execution found
   novelty, its input joins the corpus and the tables it touched gain
   energy — the power schedule below spends both. *)
let observe t tele ~before ~tables ?seed () =
  let after = snapshot t tele in
  let novel = ref 0 in
  List.iteri
    (fun i key ->
      let delta = after.(i) - before.(i) in
      if delta > 0 then begin
        if not (Hashtbl.mem t.novelty key) then begin
          incr novel;
          t.n_novel <- t.n_novel + 1
        end;
        Hashtbl.replace t.novelty key
          (delta + Option.value ~default:0 (Hashtbl.find_opt t.novelty key))
      end)
    t.edge_keys;
  if !novel > 0 then begin
    Telemetry.incr ~n:!novel tele "fuzzer.greybox.novel_edges";
    List.iter
      (fun table ->
        Hashtbl.replace t.energy table
          (!novel + Option.value ~default:0 (Hashtbl.find_opt t.energy table)))
      tables;
    if tables <> [] then
      Telemetry.incr ~n:(!novel * List.length tables) tele
        "fuzzer.greybox.energy_assigned";
    match seed with Some input -> admit t input ~energy:!novel | None -> ()
  end;
  !novel

(* --- power schedule ---------------------------------------------------------- *)

let table_energy t name =
  Option.value ~default:0 (Hashtbl.find_opt t.energy name)

(* Weighted table choice: 1 + energy per table, so tables that reached
   novel edges are favored without ever starving the rest. Exactly one
   draw either way, mirroring the uniform [Rng.choose] it replaces. *)
let pick_table t (tables : P4info.table list) =
  let weights =
    List.map (fun (ti : P4info.table) -> (ti, 1 + table_energy t ti.ti_name)) tables
  in
  if List.exists (fun (_, w) -> w > 1) weights then begin
    Telemetry.incr (Telemetry.get ()) "fuzzer.greybox.weighted_picks";
    Rng.choose_weighted t.rng weights
  end
  else Rng.choose t.rng tables

(* Occasionally hand the mutation engine a corpus entry as its base
   instead of a fresh one: a third of bases, energy-weighted across the
   control-plane seeds. *)
let pick_seed_entry t =
  let entries =
    List.concat_map
      (fun s ->
        match s.sd_input with
        | Batch ((_ :: _) as es) -> [ (es, s.sd_energy) ]
        | Batch [] | Packet _ -> [])
      t.seeds
  in
  match entries with
  | [] -> None
  | _ when Rng.int t.rng 3 <> 0 -> None
  | _ ->
      let es = Rng.choose_weighted t.rng entries in
      Telemetry.incr (Telemetry.get ()) "fuzzer.greybox.seeded_bases";
      Some (Rng.choose t.rng es)

(* --- probe packets ----------------------------------------------------------- *)

(* Boundary TTLs hit the punt/drop arms the routing tables guard on. *)
let interesting_ttls = [ 0; 1; 2; 64; 255 ]

let fresh_packet t =
  let octet bound = Rng.int t.rng bound in
  let dst = Printf.sprintf "10.%d.%d.%d" (octet 200) (octet 250) (1 + octet 250) in
  let p = Packet.simple_ipv4 ~src:"192.0.2.9" ~dst () in
  let ttl = List.nth interesting_ttls (Rng.int t.rng (List.length interesting_ttls)) in
  let p = Packet.set p ~header:"ipv4" ~field:"ttl" (Bitvec.of_int ~width:8 ttl) in
  let p =
    Packet.set p ~header:"ipv4" ~field:"dscp"
      (Bitvec.of_int ~width:6 (Rng.int t.rng 64))
  in
  Packet.to_bytes p

let mutate_bytes t bytes =
  let b = Bytes.of_string bytes in
  let flips = 1 + Rng.int t.rng 3 in
  for _ = 1 to flips do
    if Bytes.length b > 0 then
      Bytes.set b (Rng.int t.rng (Bytes.length b))
        (Char.chr (Rng.int t.rng 256))
  done;
  Bytes.to_string b

(* One probe: half the time a fresh random IPv4 frame, half a byte-level
   mutation of an energy-weighted corpus packet (which can flip ether_type
   or lengths into parser arms no well-formed IPv4 frame reaches). The
   stack maps unparseable bytes to a drop, so arbitrary mutations are
   safe. *)
let probe_packet t =
  let port = List.nth t.ports (Rng.int t.rng (List.length t.ports)) in
  let packets =
    List.concat_map
      (fun s ->
        match s.sd_input with
        | Packet (_, bytes) -> [ (bytes, s.sd_energy) ]
        | Batch _ -> [])
      t.seeds
  in
  let bytes =
    match packets with
    | [] -> fresh_packet t
    | _ when Rng.int t.rng 2 = 0 -> fresh_packet t
    | _ -> mutate_bytes t (Rng.choose_weighted t.rng packets)
  in
  (port, bytes)
