module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Rng = Switchv_bitvec.Rng
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module State = Switchv_p4runtime.State
module Validate = Switchv_p4runtime.Validate
module Constraint_lang = Switchv_p4constraints.Constraint_lang
module Bdd = Switchv_p4constraints.Bdd

type config = {
  updates_per_batch : int;
  invalid_percent : int;
  delete_percent : int;
  modify_percent : int;
  respect_dependencies : bool;
}

let default_config =
  { updates_per_batch = 50; invalid_percent = 30; delete_percent = 25;
    modify_percent = 10; respect_dependencies = true }

type t = {
  info : P4info.t;
  rng : Rng.t;
  config : config;
  mirror_ : State.t;
  bdds : (string, Bdd.compiled option) Hashtbl.t;
      (* per-table compiled entry restriction (None = unsupported), for the
         BDD-based constraint sampling of §7 *)
  dead : (string, bool) Hashtbl.t;
      (* tables whose restriction is unsatisfiable (analysis code P4A004):
         valid-insert generation skips them *)
  greybox : Greybox.t option;
      (* coverage feedback: energy-weighted table choice and corpus-seeded
         mutation bases. [None] draws uniformly from [rng] only, exactly
         the pre-greybox stream. *)
}

let create ?(config = default_config) ?greybox info rng =
  { info; rng; config; mirror_ = State.create (); bdds = Hashtbl.create 8;
    dead = Hashtbl.create 8; greybox }

(* Compile a table's entry restriction to a BDD over the bits of the keys
   it references (§7). Unsupported shapes (LPM keys, ::prefix_length)
   yield None and callers fall back to heuristics. *)
let table_bdd t (ti : P4info.table) =
  match Hashtbl.find_opt t.bdds ti.ti_name with
  | Some cached -> cached
  | None ->
      let compiled =
        match ti.ti_restriction with
        | None -> None
        | Some c -> (
            let layouts =
              List.filter_map
                (fun key ->
                  match P4info.find_match_field ti key with
                  | Some { mf_kind = Ast.Exact; mf_width; _ } ->
                      Some { Bdd.kl_name = key; kl_kind = Bdd.Exact; kl_width = mf_width }
                  | Some { mf_kind = Ast.Optional; mf_width; _ } ->
                      Some { Bdd.kl_name = key; kl_kind = Bdd.Optional; kl_width = mf_width }
                  | Some { mf_kind = Ast.Ternary; mf_width; _ } ->
                      Some { Bdd.kl_name = key; kl_kind = Bdd.Ternary; kl_width = mf_width }
                  | Some { mf_kind = Ast.Lpm; _ } | None -> None)
                (Constraint_lang.keys c)
            in
            if List.length layouts <> List.length (Constraint_lang.keys c) then None
            else
              match Bdd.compile layouts c with
              | Ok compiled -> Some compiled
              | Error _ -> None)
      in
      Hashtbl.replace t.bdds ti.ti_name compiled;
      compiled

(* A table whose entry restriction admits zero assignments can never
   accept a valid insert: every generation attempt would be rejected by
   validation. The static analysis reports these as P4A004; here the
   fuzzer independently reuses the compiled BDD to skip them. *)
let table_dead t (ti : P4info.table) =
  match Hashtbl.find_opt t.dead ti.ti_name with
  | Some d -> d
  | None ->
      let d =
        match table_bdd t ti with
        | Some c -> Bdd.model_count c = 0.
        | None -> false
      in
      Hashtbl.replace t.dead ti.ti_name d;
      d

(* Rewrite the entry's matches on the sampled keys. A zero ternary mask
   means the key is omitted. *)
let merge_assignment (ti : P4info.table) (e : Entry.t) (a : Bdd.assignment) =
  let sampled k = List.mem_assoc k a.values in
  let kept =
    List.filter (fun (fm : Entry.field_match) -> not (sampled fm.fm_field)) e.e_matches
  in
  let added =
    List.filter_map
      (fun (k, v) ->
        match P4info.find_match_field ti k with
        | Some { mf_kind = Ast.Exact; _ } ->
            Some { Entry.fm_field = k; fm_value = Entry.M_exact v }
        | Some { mf_kind = Ast.Optional; _ } ->
            Some { Entry.fm_field = k; fm_value = Entry.M_optional (Some v) }
        | Some { mf_kind = Ast.Ternary; _ } -> (
            match List.assoc_opt k a.masks with
            | Some mask when not (Bitvec.is_zero mask) ->
                Some
                  { Entry.fm_field = k;
                    fm_value = Entry.M_ternary (Ternary.make ~value:v ~mask) }
            | _ -> None (* wildcard: omit *))
        | _ -> None)
      a.values
  in
  { e with e_matches = kept @ added }

let mirror t = t.mirror_

type annotated_update = {
  update : Request.update;
  mutation : string option;
}

module Telemetry = Switchv_telemetry.Telemetry

(* Every batch handed to a campaign is accounted: how many updates were
   generated, and how many carried a mutation (the "interestingly invalid"
   share of §4.2). *)
let account_batch batch =
  let tele = Telemetry.get () in
  if Telemetry.enabled tele then begin
    Telemetry.incr tele "fuzzer.batches";
    Telemetry.incr ~n:(List.length batch) tele "fuzzer.updates";
    Telemetry.incr tele "fuzzer.mutated_updates"
      ~n:(List.length (List.filter (fun a -> a.mutation <> None) batch))
  end;
  batch

let mutations =
  [ "invalid_table_id"; "invalid_table_action"; "invalid_match_field_id";
    "invalid_match_type"; "duplicate_match_field"; "missing_mandatory_match_field";
    "wrong_action_arg_count"; "wrong_action_arg_width";
    "invalid_action_selector_weight"; "invalid_table_implementation";
    "invalid_reference"; "constraint_violation"; "bdd_constraint_violation";
    "duplicate_insert"; "delete_nonexistent"; "zero_priority" ]

(* --- batch-local context ----------------------------------------------------- *)

type batch_ctx = {
  taken : (string, unit) Hashtbl.t;           (* match keys claimed this batch *)
  tombstoned : (string, unit) Hashtbl.t;       (* match keys being deleted *)
  batch_refs : (string * string * Bitvec.t) list ref;
      (* (table, key, value) references made by updates pending in this
         batch: entries providing these values must not be deleted in the
         same batch, or validity would depend on execution order (§4.4) *)
  batch_provides : (string * string * Bitvec.t) list ref;
      (* values newly provided by pending inserts; Invalid Reference
         mutations must not collide with them *)
  batch_inserts : (string, int) Hashtbl.t;
      (* pending insert count per table, so one batch cannot overshoot a
         table's guaranteed capacity (which would make acceptance
         order-dependent) *)
  mutable ref_index : (table:string -> key:string -> Bitvec.t -> bool) option;
      (* memoised mirror reference index, valid for this batch *)
}

let fresh_ctx () =
  { taken = Hashtbl.create 64; tombstoned = Hashtbl.create 16;
    batch_refs = ref []; batch_provides = ref []; batch_inserts = Hashtbl.create 16;
    ref_index = None }

let pending_inserts ctx table =
  Option.value ~default:0 (Hashtbl.find_opt ctx.batch_inserts table)

let note_pending t ctx (e : Entry.t) =
  List.iter
    (fun (r : Validate.reference) ->
      ctx.batch_refs := (r.ref_table, r.ref_key, r.ref_value) :: !(ctx.batch_refs))
    (Validate.references t.info e);
  List.iter
    (fun (fm : Entry.field_match) ->
      match fm.fm_value with
      | Entry.M_exact v | Entry.M_optional (Some v) ->
          ctx.batch_provides := (e.e_table, fm.fm_field, v) :: !(ctx.batch_provides)
      | _ -> ())
    e.e_matches

let provides_batch_referenced ctx (e : Entry.t) =
  List.exists
    (fun (table, key, value) ->
      String.equal table e.e_table
      &&
      match Entry.find_match e key with
      | Some (Entry.M_exact v) | Some (Entry.M_optional (Some v)) -> Bitvec.equal v value
      | _ -> false)
    !(ctx.batch_refs)

let claim ctx e =
  let k = Entry.match_key e in
  if Hashtbl.mem ctx.taken k then false
  else begin
    Hashtbl.add ctx.taken k ();
    true
  end

(* Values usable to satisfy a @refers_to (table, key) reference, excluding
   entries being deleted in this batch. *)
let referable t ctx ~table ~key =
  State.entries_of t.mirror_ table
  |> List.filter (fun e ->
         (not t.config.respect_dependencies)
         || not (Hashtbl.mem ctx.tombstoned (Entry.match_key e)))
  |> List.filter_map (fun e ->
         match Entry.find_match e key with
         | Some (Entry.M_exact v) | Some (Entry.M_optional (Some v)) -> Some v
         | _ -> None)

(* A value guaranteed absent from the referable set (for Invalid Reference),
   including values pending insertion in this batch. *)
let unused_value t ctx ~table ~key ~width =
  let used = referable t ctx ~table ~key in
  let pending =
    List.filter_map
      (fun (tbl, k, v) ->
        if String.equal tbl table && String.equal k key then Some v else None)
      !(ctx.batch_provides)
  in
  let used = used @ pending in
  let rec find candidate attempts =
    let v = Bitvec.of_int ~width candidate in
    if attempts = 0 || not (List.exists (Bitvec.equal v) used) then v
    else find (candidate - 1) (attempts - 1)
  in
  find ((1 lsl min width 16) - 2) 64

(* --- valid generation --------------------------------------------------------- *)

let small_bv t width =
  (* Biased toward small values, which interact with references and
     restrictions more interestingly than uniform 128-bit noise. *)
  if Rng.int t.rng 2 = 0 then Bitvec.of_int ~width (1 + Rng.int t.rng (min 63 ((1 lsl min width 10) - 1)))
  else Rng.bitvec t.rng width

let gen_match_value t ctx (mf : P4info.match_field) =
  let refers v_gen =
    match mf.mf_refers_to with
    | Some (table, key) -> (
        match referable t ctx ~table ~key with
        | [] -> None
        | vs -> Some (Rng.choose t.rng vs))
    | None -> Some (v_gen ())
  in
  match mf.mf_kind with
  | Ast.Exact ->
      refers (fun () -> small_bv t mf.mf_width)
      |> Option.map (fun v -> Some (Entry.M_exact v))
  | Ast.Optional ->
      if Rng.int t.rng 2 = 0 then Some None
      else
        refers (fun () -> small_bv t mf.mf_width)
        |> Option.map (fun v -> Some (Entry.M_optional (Some v)))
  | Ast.Lpm ->
      let len = 1 + Rng.int t.rng mf.mf_width in
      let v = Rng.bitvec t.rng mf.mf_width in
      Some (Some (Entry.M_lpm (Prefix.make v len)))
  | Ast.Ternary ->
      if Rng.int t.rng 3 = 0 then Some None
      else begin
        let mask =
          let m = Rng.bitvec t.rng mf.mf_width in
          if Bitvec.is_zero m then Bitvec.ones mf.mf_width else m
        in
        let v = Rng.bitvec t.rng mf.mf_width in
        Some (Some (Entry.M_ternary (Ternary.make ~value:v ~mask)))
      end

let gen_invocation t ctx (ar : P4info.action_ref) =
  let args =
    List.map
      (fun (p : Ast.param) ->
        match p.p_refers_to with
        | Some (table, key) -> (
            match referable t ctx ~table ~key with
            | [] -> None
            | vs -> Some (Rng.choose t.rng vs))
        | None -> Some (small_bv t p.p_width))
      ar.ar_params
  in
  if List.exists Option.is_none args then None
  else Some { Entry.ai_name = ar.ar_name; ai_args = List.map Option.get args }

let gen_action t ctx (ti : P4info.table) =
  (* Avoid generating entries whose action is the bare default marker
     no_action in selector tables etc.; any permitted action is fine. *)
  let ar = Rng.choose t.rng ti.ti_actions in
  if ti.ti_selector then begin
    let members = 1 + Rng.int t.rng 3 in
    let invs =
      List.init members (fun _ ->
          gen_invocation t ctx (Rng.choose t.rng ti.ti_actions))
    in
    if List.exists Option.is_none invs then None
    else begin
      let invs = List.map Option.get invs in
      (* Sometimes duplicate a member: same-action buckets are valid per
         the P4Runtime spec and a known switch stumbling block (§6.1). *)
      let invs =
        match invs with
        | first :: _ when Rng.int t.rng 3 = 0 -> first :: invs
        | _ -> invs
      in
      Some (Entry.Weighted (List.map (fun i -> (i, 1 + Rng.int t.rng 4)) invs))
    end
  end
  else gen_invocation t ctx ar |> Option.map (fun i -> Entry.Single i)

let gen_entry t ctx (ti : P4info.table) =
  let matches =
    List.map
      (fun (mf : P4info.match_field) ->
        match gen_match_value t ctx mf with
        | None -> None (* unsatisfiable reference *)
        | Some None -> Some None (* omitted wildcard *)
        | Some (Some v) -> Some (Some { Entry.fm_field = mf.mf_name; fm_value = v }))
      ti.ti_match_fields
  in
  if List.exists Option.is_none matches then None
  else begin
    let matches = List.filter_map Fun.id (List.map Option.get matches) in
    let priority = if P4info.requires_priority ti then 1 + Rng.int t.rng 100 else 0 in
    match gen_action t ctx ti with
    | None -> None
    | Some action ->
        let entry = Entry.make ~priority ~table:ti.ti_name ~matches action in
        (* §7: with a compiled restriction BDD available, sample the
           constrained keys compliantly most of the time, so restricted
           tables also receive genuinely valid traffic. (Keys that carry
           @refers_to keep their reference-derived values.) *)
        let entry =
          match table_bdd t ti with
          | Some c when Rng.int t.rng 100 < 60 -> (
              match Bdd.sample_compliant c t.rng with
              | Some a ->
                  let unconstrained_by_refs (k, _) =
                    match P4info.find_match_field ti k with
                    | Some { mf_refers_to = Some _; _ } -> false
                    | _ -> true
                  in
                  merge_assignment ti entry
                    { a with values = List.filter unconstrained_by_refs a.values }
              | None -> entry)
          | _ -> entry
        in
        Some entry
  end

let skip_dead t ti =
  table_dead t ti
  && begin
       Telemetry.incr (Telemetry.get ()) "analysis.dead_tables_skipped";
       true
     end

let rec gen_valid_insert t ctx attempts =
  if attempts = 0 then None
  else begin
    let ti =
      match t.greybox with
      | Some gb -> Greybox.pick_table gb t.info.pi_tables
      | None -> Rng.choose t.rng t.info.pi_tables
    in
    if skip_dead t ti then gen_valid_insert t ctx (attempts - 1)
    else
      match gen_entry t ctx ti with
      | Some e
        when State.find t.mirror_ e = None
             && (not (Hashtbl.mem ctx.taken (Entry.match_key e)))
             && State.count t.mirror_ ti.ti_name + pending_inserts ctx ti.ti_name
                < ti.ti_size ->
          Some e
      | _ -> gen_valid_insert t ctx (attempts - 1)
  end

let mirror_ref_index t ctx =
  match ctx.ref_index with
  | Some idx -> idx
  | None ->
      let idx = State.reference_index t.mirror_ t.info in
      ctx.ref_index <- Some idx;
      idx

let gen_valid_delete t ctx =
  let index = mirror_ref_index t ctx in
  let candidates =
    State.all t.mirror_
    |> List.filter (fun e ->
           (not (Hashtbl.mem ctx.taken (Entry.match_key e)))
           && (not (State.is_referenced_by index e))
           && ((not t.config.respect_dependencies)
              || not (provides_batch_referenced ctx e)))
  in
  match candidates with
  | [] -> None
  | _ -> Some (Rng.choose t.rng candidates)

let gen_valid_modify t ctx =
  let candidates =
    State.all t.mirror_
    |> List.filter (fun e -> not (Hashtbl.mem ctx.taken (Entry.match_key e)))
  in
  match candidates with
  | [] -> None
  | _ ->
      let e = Rng.choose t.rng candidates in
      (match P4info.find_table t.info e.e_table with
      | None -> None
      | Some ti ->
          gen_action t ctx ti
          |> Option.map (fun action -> { e with Entry.e_action = action }))

(* --- mutations (§4.2) --------------------------------------------------------- *)

let all_actions info =
  List.concat_map (fun (ti : P4info.table) -> ti.ti_actions) info.P4info.pi_tables

let mutate t ctx (e : Entry.t) mutation : Entry.t option =
  let ti = P4info.find_table t.info e.e_table in
  match (mutation, ti) with
  | "invalid_table_id", _ ->
      Some { e with e_table = Printf.sprintf "ghost_table_%d" (Rng.int t.rng 1000) }
  | "invalid_table_action", Some ti -> (
      let foreign =
        all_actions t.info
        |> List.filter (fun (ar : P4info.action_ref) ->
               P4info.find_action ti ar.ar_name = None)
      in
      match foreign with
      | [] -> None
      | _ ->
          let ar = Rng.choose t.rng foreign in
          let args = List.map (fun (p : Ast.param) -> Rng.bitvec t.rng p.p_width) ar.ar_params in
          let inv = { Entry.ai_name = ar.ar_name; ai_args = args } in
          Some
            { e with
              e_action =
                (match e.e_action with
                | Entry.Single _ -> Entry.Single inv
                | Entry.Weighted ws -> Entry.Weighted ((inv, 1) :: List.tl ws)) })
  | "invalid_match_field_id", _ -> (
      match e.e_matches with
      | [] -> None
      | fm :: rest -> Some { e with e_matches = { fm with fm_field = "ghost_field" } :: rest })
  | "invalid_match_type", _ -> (
      let flip (fm : Entry.field_match) =
        match fm.fm_value with
        | Entry.M_exact v -> Some { fm with fm_value = Entry.M_lpm (Prefix.full v) }
        | Entry.M_lpm p -> Some { fm with fm_value = Entry.M_exact (Prefix.value p) }
        | Entry.M_ternary tn -> Some { fm with fm_value = Entry.M_exact (Ternary.value tn) }
        | Entry.M_optional (Some v) -> Some { fm with fm_value = Entry.M_ternary (Ternary.exact v) }
        | Entry.M_optional None -> None
      in
      let rec try_flip = function
        | [] -> None
        | fm :: rest -> (
            match flip fm with
            | Some fm' -> Some (fm' :: rest)
            | None -> Option.map (fun r -> fm :: r) (try_flip rest))
      in
      try_flip e.e_matches |> Option.map (fun ms -> { e with e_matches = ms }))
  | "duplicate_match_field", _ -> (
      match e.e_matches with
      | [] -> None
      | fm :: _ -> Some { e with e_matches = fm :: e.e_matches })
  | "missing_mandatory_match_field", Some ti -> (
      let mandatory =
        List.filter
          (fun (fm : Entry.field_match) ->
            match P4info.find_match_field ti fm.fm_field with
            | Some { mf_kind = Ast.Exact; _ } -> true
            | _ -> false)
          e.e_matches
      in
      match mandatory with
      | [] -> None
      | fm :: _ ->
          Some
            { e with
              e_matches =
                List.filter
                  (fun (m : Entry.field_match) -> not (String.equal m.fm_field fm.fm_field))
                  e.e_matches })
  | "wrong_action_arg_count", _ -> (
      let drop_arg (ai : Entry.action_invocation) =
        match ai.ai_args with
        | [] -> { ai with ai_args = [ Bitvec.of_int ~width:8 1 ] }
        | _ :: rest -> { ai with ai_args = rest }
      in
      match e.e_action with
      | Entry.Single ai -> Some { e with e_action = Entry.Single (drop_arg ai) }
      | Entry.Weighted ((ai, w) :: rest) ->
          Some { e with e_action = Entry.Weighted ((drop_arg ai, w) :: rest) }
      | Entry.Weighted [] -> None)
  | "wrong_action_arg_width", _ -> (
      let widen (ai : Entry.action_invocation) =
        match ai.ai_args with
        | [] -> None
        | a :: rest -> Some { ai with ai_args = Bitvec.zero_extend (Bitvec.width a + 8) a :: rest }
      in
      match e.e_action with
      | Entry.Single ai -> widen ai |> Option.map (fun ai -> { e with e_action = Entry.Single ai })
      | Entry.Weighted ((ai, w) :: rest) ->
          widen ai
          |> Option.map (fun ai -> { e with e_action = Entry.Weighted ((ai, w) :: rest) })
      | Entry.Weighted [] -> None)
  | "invalid_action_selector_weight", _ -> (
      match e.e_action with
      | Entry.Weighted ((ai, _) :: rest) ->
          (* Strictly negative: [-1 * Rng.int t.rng 2] yielded weight 0 half
             the time, a possibly-valid update mislabeled as this invalid
             mutation (flaky oracle verdicts). Same single draw, so the RNG
             stream is unchanged. *)
          Some { e with e_action = Entry.Weighted ((ai, -1 - Rng.int t.rng 2) :: rest) }
      | _ -> None)
  | "invalid_table_implementation", _ -> (
      match e.e_action with
      | Entry.Single ai -> Some { e with e_action = Entry.Weighted [ (ai, 1) ] }
      | Entry.Weighted ((ai, _) :: _) -> Some { e with e_action = Entry.Single ai }
      | Entry.Weighted [] -> None)
  | "invalid_reference", Some ti -> (
      (* Replace a reference (match or action arg) with a non-existent id. *)
      let try_match () =
        let rec go = function
          | [] -> None
          | (fm : Entry.field_match) :: rest -> (
              match P4info.find_match_field ti fm.fm_field with
              | Some { mf_refers_to = Some (table, key); mf_width; _ } -> (
                  match fm.fm_value with
                  | Entry.M_exact _ ->
                      let v = unused_value t ctx ~table ~key ~width:mf_width in
                      Some ({ fm with fm_value = Entry.M_exact v } :: rest)
                  | _ -> Option.map (fun r -> fm :: r) (go rest))
              | _ -> Option.map (fun r -> fm :: r) (go rest))
        in
        go e.e_matches |> Option.map (fun ms -> { e with e_matches = ms })
      in
      let try_args () =
        let fix (ai : Entry.action_invocation) =
          match P4info.find_action ti ai.ai_name with
          | None -> None
          | Some ar ->
              let changed = ref false in
              let args =
                List.map2
                  (fun (p : Ast.param) arg ->
                    match p.p_refers_to with
                    | Some (table, key) when not !changed ->
                        changed := true;
                        unused_value t ctx ~table ~key ~width:p.p_width
                    | _ -> arg)
                  ar.ar_params ai.ai_args
              in
              if !changed then Some { ai with ai_args = args } else None
        in
        match e.e_action with
        | Entry.Single ai -> fix ai |> Option.map (fun ai -> { e with e_action = Entry.Single ai })
        | Entry.Weighted ((ai, w) :: rest) ->
            fix ai |> Option.map (fun ai -> { e with e_action = Entry.Weighted ((ai, w) :: rest) })
        | Entry.Weighted [] -> None
      in
      match try_match () with Some e' -> Some e' | None -> try_args ())
  | "constraint_violation", Some ti -> (
      match ti.ti_restriction with
      | None -> None
      | Some _ ->
          (* Candidate perturbations, kept syntactically valid: zero each
             exact key; force every 1-bit ternary key to 1 (violates
             mutual-exclusion restrictions); add full-mask matches on
             omitted ternary keys (violates ::mask == 0 restrictions). *)
          let zero_key (fm : Entry.field_match) =
            match fm.fm_value with
            | Entry.M_exact v ->
                Some
                  { e with
                    e_matches =
                      List.map
                        (fun (m : Entry.field_match) ->
                          if String.equal m.fm_field fm.fm_field then
                            { m with
                              fm_value = Entry.M_exact (Bitvec.zero (Bitvec.width v)) }
                          else m)
                        e.e_matches }
            | _ -> None
          in
          let all_flags_on =
            let flags =
              List.filter
                (fun (mf : P4info.match_field) ->
                  mf.mf_kind = Ast.Ternary && mf.mf_width = 1)
                ti.ti_match_fields
            in
            if List.length flags < 2 then None
            else
              Some
                { e with
                  e_matches =
                    List.map (fun (mf : P4info.match_field) ->
                        { Entry.fm_field = mf.mf_name;
                          fm_value =
                            Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1)) })
                      flags
                    @ List.filter
                        (fun (m : Entry.field_match) ->
                          not
                            (List.exists
                               (fun (mf : P4info.match_field) ->
                                 String.equal mf.mf_name m.fm_field)
                               flags))
                        e.e_matches }
          in
          let fill_omitted =
            List.filter_map
              (fun (mf : P4info.match_field) ->
                if mf.mf_kind = Ast.Ternary && Entry.find_match e mf.mf_name = None then
                  Some
                    { e with
                      e_matches =
                        { Entry.fm_field = mf.mf_name;
                          fm_value =
                            Entry.M_ternary
                              (Ternary.exact (Rng.bitvec t.rng mf.mf_width)) }
                        :: e.e_matches }
                else None)
              ti.ti_match_fields
          in
          let candidates =
            List.filter_map zero_key e.e_matches
            @ (match all_flags_on with Some c -> [ c ] | None -> [])
            @ fill_omitted
          in
          List.find_opt
            (fun cand -> Validate.constraint_compliant ti cand = Ok false)
            candidates)
  | "bdd_constraint_violation", Some ti -> (
      match table_bdd t ti with
      | None -> None
      | Some c ->
          Bdd.sample_near_violation c t.rng
          |> Option.map (fun a -> merge_assignment ti e a))
  | "zero_priority", Some ti ->
      if P4info.requires_priority ti then Some { e with e_priority = 0 } else None
  | _, _ -> None

(* --- batch generation ---------------------------------------------------------- *)

let gen_base t ctx =
  (* Seed pool: with feedback enabled, some mutation bases come from
     corpus batches that reached novel edges — mutations of inputs the
     switch handled in an interesting way probe nearby behavior. *)
  let seeded =
    match t.greybox with
    | Some gb -> Greybox.pick_seed_entry gb
    | None -> None
  in
  match seeded with
  | Some e -> Some e
  | None -> (
      match gen_valid_insert t ctx 10 with
      | Some e -> Some e
      | None -> (
          match State.all t.mirror_ with
          | [] -> None
          | es -> Some (Rng.choose t.rng es)))

let try_mutation t ctx mutation =
  match mutation with
  | "duplicate_insert" -> (
      match State.all t.mirror_ with
      | [] -> None
      | es ->
          let victim = Rng.choose t.rng es in
          if Hashtbl.mem ctx.taken (Entry.match_key victim) then None
          else Some (Request.insert victim, "duplicate_insert"))
  | "delete_nonexistent" -> (
      match gen_valid_insert t ctx 10 with
      | Some ghost when State.find t.mirror_ ghost = None ->
          Some (Request.delete ghost, "delete_nonexistent")
      | _ -> None)
  | m -> (
      (* Several bases, since many mutations only apply to entries with a
         particular shape (restrictions, references, selectors, ...). *)
      let rec with_bases attempts =
        if attempts = 0 then None
        else
          match gen_base t ctx with
          | None -> None
          | Some base -> (
              match mutate t ctx base m with
              | Some e -> Some (Request.insert e, m)
              | None -> with_bases (attempts - 1))
      in
      with_bases 6)

let gen_invalid_update t ctx =
  (* Pick the mutation first (uniformly), so rarely-applicable but
     interesting mutations (constraint violations, selector weights) get a
     fair share; fall back to whatever applies. *)
  let preferred = Rng.choose t.rng mutations in
  match try_mutation t ctx preferred with
  | Some r -> Some r
  | None ->
      let rec fallback = function
        | [] -> None
        | m :: rest -> (
            match try_mutation t ctx m with Some r -> Some r | None -> fallback rest)
      in
      fallback (Rng.shuffle t.rng mutations)

(* Tables in @refers_to dependency order: referenced tables first. *)
let dependency_order (info : P4info.t) =
  let depends_on (ti : P4info.table) =
    let from_keys =
      List.filter_map (fun (mf : P4info.match_field) ->
          Option.map fst mf.mf_refers_to)
        ti.ti_match_fields
    in
    let from_params =
      List.concat_map
        (fun (ar : P4info.action_ref) ->
          List.filter_map (fun (p : Ast.param) -> Option.map fst p.p_refers_to)
            ar.ar_params)
        ti.ti_actions
    in
    List.sort_uniq String.compare
      (List.filter (fun n -> not (String.equal n ti.ti_name)) (from_keys @ from_params))
  in
  let placed = Hashtbl.create 16 in
  let order = ref [] in
  let rec place fuel (ti : P4info.table) =
    if fuel > 0 && not (Hashtbl.mem placed ti.ti_name) then begin
      List.iter
        (fun dep ->
          match P4info.find_table info dep with
          | Some dti -> place (fuel - 1) dti
          | None -> ())
        (depends_on ti);
      if not (Hashtbl.mem placed ti.ti_name) then begin
        Hashtbl.add placed ti.ti_name ();
        order := ti :: !order
      end
    end
  in
  List.iter (place 16) info.pi_tables;
  List.rev !order

let sweep t =
  let batches = ref [] in
  let tables = dependency_order t.info in
  let flush_batch updates pending =
    if updates <> [] then begin
      List.iter
        (fun (op, e) ->
          match op with
          | Request.Insert -> ignore (State.insert t.mirror_ e)
          | Request.Modify -> ignore (State.modify t.mirror_ e)
          | Request.Delete -> ignore (State.delete t.mirror_ e))
        (List.rev pending);
      batches := account_batch (List.rev updates) :: !batches
    end
  in
  (* Phase 1: valid inserts, a few per table, one batch per dependency
     rank (entries must not reference same-batch inserts). Tables whose
     restriction admits no entry are skipped outright. *)
  List.iter
    (fun (ti : P4info.table) ->
      if not (skip_dead t ti) then begin
      let ctx = fresh_ctx () in
      let updates = ref [] in
      let pending = ref [] in
      for _ = 1 to 3 do
        match gen_entry t ctx ti with
        | Some e
          when State.find t.mirror_ e = None
               && claim ctx e
               && State.count t.mirror_ ti.ti_name + pending_inserts ctx ti.ti_name
                  < ti.ti_size ->
            note_pending t ctx e;
            Hashtbl.replace ctx.batch_inserts ti.ti_name
              (pending_inserts ctx ti.ti_name + 1);
            updates := { update = Request.insert e; mutation = None } :: !updates;
            pending := (Request.Insert, e) :: !pending
        | _ -> ()
      done;
      flush_batch !updates !pending
      end)
    tables;
  (* Phase 2: one valid modify and one valid delete per table. *)
  List.iter
    (fun (ti : P4info.table) ->
      let ctx = fresh_ctx () in
      let updates = ref [] in
      let pending = ref [] in
      (let candidates =
         State.entries_of t.mirror_ ti.ti_name
         |> List.filter (fun e -> not (Hashtbl.mem ctx.taken (Entry.match_key e)))
       in
       match candidates with
       | e :: _ when claim ctx e -> (
           match gen_action t ctx ti with
           | Some action ->
               let e' = { e with Entry.e_action = action } in
               note_pending t ctx e';
               updates := { update = Request.modify e'; mutation = None } :: !updates;
               pending := (Request.Modify, e') :: !pending
           | None -> ())
       | _ -> ());
      (let index = mirror_ref_index t ctx in
       let deletable =
         State.entries_of t.mirror_ ti.ti_name
         |> List.filter (fun e ->
                (not (Hashtbl.mem ctx.taken (Entry.match_key e)))
                && (not (State.is_referenced_by index e))
                && not (provides_batch_referenced ctx e))
       in
       match deletable with
       | e :: _ when claim ctx e ->
           Hashtbl.add ctx.tombstoned (Entry.match_key e) ();
           updates := { update = Request.delete e; mutation = None } :: !updates;
           pending := (Request.Delete, e) :: !pending
       | _ -> ());
      flush_batch !updates !pending)
    tables;
  (* Phase 3: every applicable mutation against every table. Each batch
     also carries one valid insert, so batch-level misbehaviour (e.g.
     aborting a whole batch over one bad delete) is observable as a
     spurious rejection of the valid update. *)
  List.iter
    (fun (ti : P4info.table) ->
      let ctx = fresh_ctx () in
      let updates = ref [] in
      let pending = ref [] in
      (match gen_valid_insert t ctx 10 with
      | Some e when claim ctx e ->
          note_pending t ctx e;
          updates := { update = Request.insert e; mutation = None } :: !updates;
          pending := (Request.Insert, e) :: !pending
      | _ -> ());
      List.iter
        (fun m ->
          let attempt =
            match m with
            | "duplicate_insert" -> (
                match
                  State.entries_of t.mirror_ ti.ti_name
                  |> List.filter (fun e -> not (Hashtbl.mem ctx.taken (Entry.match_key e)))
                with
                | e :: _ -> Some (Request.insert e, m)
                | [] -> None)
            | "delete_nonexistent" -> (
                match gen_entry t ctx ti with
                | Some ghost when State.find t.mirror_ ghost = None ->
                    Some (Request.delete ghost, m)
                | _ -> None)
            | m ->
                (* Some mutations need a base of a particular shape (e.g.
                   at least one present match); retry with fresh bases. *)
                let rec with_bases k =
                  if k = 0 then None
                  else
                    match gen_entry t ctx ti with
                    | Some base -> (
                        match mutate t ctx base m with
                        | Some e -> Some (Request.insert e, m)
                        | None -> with_bases (k - 1))
                    | None -> with_bases (k - 1)
                in
                with_bases 6
          in
          match attempt with
          | Some (u, m) when claim ctx u.entry ->
              updates := { update = u; mutation = Some m } :: !updates
          | _ -> ())
        mutations;
      flush_batch !updates !pending)
    tables;
  List.rev !batches

let next_batch t =
  let ctx = fresh_ctx () in
  let updates = ref [] in
  let pending_valid = ref [] in
  let n = t.config.updates_per_batch in
  for _ = 1 to n do
    let r = Rng.int t.rng 100 in
    if r < t.config.invalid_percent then begin
      match gen_invalid_update t ctx with
      | Some (u, m) ->
          (match Hashtbl.mem ctx.taken (Entry.match_key u.entry) with
          | true -> ()
          | false ->
              ignore (claim ctx u.entry);
              updates := { update = u; mutation = Some m } :: !updates)
      | None -> ()
    end
    else begin
      let r' = Rng.int t.rng 100 in
      if r' < t.config.delete_percent then begin
        match gen_valid_delete t ctx with
        | Some e when claim ctx e ->
            Hashtbl.add ctx.tombstoned (Entry.match_key e) ();
            updates := { update = Request.delete e; mutation = None } :: !updates;
            pending_valid := (Request.Delete, e) :: !pending_valid
        | _ -> ()
      end
      else if r' < t.config.delete_percent + t.config.modify_percent then begin
        match gen_valid_modify t ctx with
        | Some e when claim ctx e ->
            note_pending t ctx e;
            updates := { update = Request.modify e; mutation = None } :: !updates;
            pending_valid := (Request.Modify, e) :: !pending_valid
        | _ -> ()
      end
      else begin
        match gen_valid_insert t ctx 10 with
        | Some e when claim ctx e ->
            note_pending t ctx e;
            Hashtbl.replace ctx.batch_inserts e.e_table (pending_inserts ctx e.e_table + 1);
            updates := { update = Request.insert e; mutation = None } :: !updates;
            pending_valid := (Request.Insert, e) :: !pending_valid
        | _ -> ()
      end
    end
  done;
  (* Optimistically apply valid updates to the mirror. *)
  List.iter
    (fun (op, e) ->
      match op with
      | Request.Insert -> ignore (State.insert t.mirror_ e)
      | Request.Modify -> ignore (State.modify t.mirror_ e)
      | Request.Delete -> ignore (State.delete t.mirror_ e))
    (List.rev !pending_valid);
  account_batch (List.rev !updates)
