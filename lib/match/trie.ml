(* Path-compressed binary trie over fixed-width keys, MSB first.

   Items live at prefix points: an item inserted under (value, len) is
   reachable from exactly the lookup keys whose top [len] bits equal the
   top [len] bits of [value]. A lookup therefore returns every item on the
   root-to-leaf path that matches the probe key — the caller ranks them —
   rather than only the deepest, because the interpreter's precedence
   order is not always "longest prefix" (an exact match on an LPM key
   carries specificity 0, see interp.ml's [lpm_specificity]).

   Edges carry compressed bit labels so a chain of single-child nodes
   costs one node: a million /24 routes under a handful of /8s stays a
   few million pointers wide instead of depth-24 chains per route. *)

module Bitvec = Switchv_bitvec.Bitvec

type 'a node = {
  mutable n_label : bool array; (* edge label leading into this node *)
  mutable n_items : 'a list;    (* items whose prefix ends exactly here *)
  mutable n_zero : 'a node option;
  mutable n_one : 'a node option;
}

type 'a t = { t_width : int; t_root : 'a node }

let make_node label = { n_label = label; n_items = []; n_zero = None; n_one = None }

let create width = { t_width = width; t_root = make_node [||] }

(* Bits of [v]'s top [len] positions, MSB first. *)
let prefix_bits v len =
  let w = Bitvec.width v in
  Array.init len (fun i -> Bitvec.bit v (w - 1 - i))

let child node b = if b then node.n_one else node.n_zero

let set_child node b c =
  if b then node.n_one <- Some c else node.n_zero <- Some c

let common_prefix_len label bits off =
  let n = min (Array.length label) (Array.length bits - off) in
  let rec go i = if i < n && label.(i) = bits.(off + i) then go (i + 1) else i in
  go 0

let insert t ~value ~len item =
  let bits = prefix_bits value len in
  let rec go node off =
    if off = len then node.n_items <- item :: node.n_items
    else begin
      let b = bits.(off) in
      match child node b with
      | None ->
          let leaf = make_node (Array.sub bits off (len - off)) in
          leaf.n_items <- [ item ];
          set_child node b leaf
      | Some c ->
          let m = common_prefix_len c.n_label bits off in
          if m = Array.length c.n_label then go c (off + m)
          else begin
            (* Split [c]'s edge at the divergence point. *)
            let mid = make_node (Array.sub c.n_label 0 m) in
            let rest = Array.sub c.n_label m (Array.length c.n_label - m) in
            set_child mid rest.(0) { c with n_label = rest };
            set_child node b mid;
            if off + m = len then mid.n_items <- [ item ]
            else begin
              let leaf = make_node (Array.sub bits (off + m) (len - off - m)) in
              leaf.n_items <- [ item ];
              set_child mid bits.(off + m) leaf
            end
          end
    end
  in
  go t.t_root 0

(* Remove items for which [drop] holds at prefix (value, len). Empty nodes
   are left in place: deletions are rare relative to the scale the trie
   exists for, and correctness does not depend on re-merging edges. *)
let remove t ~value ~len drop =
  let bits = prefix_bits value len in
  let rec go node off =
    if off = len then
      node.n_items <- List.filter (fun it -> not (drop it)) node.n_items
    else
      match child node bits.(off) with
      | None -> ()
      | Some c ->
          let m = common_prefix_len c.n_label bits off in
          if m = Array.length c.n_label then go c (off + m)
  in
  go t.t_root 0

(* Fold [f] over every item whose prefix matches the full-width [key],
   i.e. every item on the matching root-to-leaf path. *)
let fold_matches t key f init =
  let bits = prefix_bits key t.t_width in
  let rec go node off acc =
    let acc = List.fold_left f acc node.n_items in
    if off >= t.t_width then acc
    else
      match child node bits.(off) with
      | None -> acc
      | Some c ->
          let m = common_prefix_len c.n_label bits off in
          if m = Array.length c.n_label then go c (off + m) acc else acc
  in
  go t.t_root 0 init
