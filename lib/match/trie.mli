(** Path-compressed binary trie over fixed-width keys, MSB first.

    Items live at prefix points; a lookup visits every item on the
    matching root-to-leaf path (not only the deepest), because table
    precedence is ranked by the caller — an exact value on an LPM key
    ranks as specificity 0 in the interpreter's order. *)

module Bitvec = Switchv_bitvec.Bitvec

type 'a t

val create : int -> 'a t
(** [create width]: an empty trie over [width]-bit keys. *)

val insert : 'a t -> value:Bitvec.t -> len:int -> 'a -> unit
(** Add an item under the prefix formed by the top [len] bits of
    [value]. *)

val remove : 'a t -> value:Bitvec.t -> len:int -> ('a -> bool) -> unit
(** Remove the items at prefix [(value, len)] for which the predicate
    holds. Emptied nodes are left in place (deletions are rare at the
    scale the trie exists for). *)

val fold_matches : 'a t -> Bitvec.t -> ('b -> 'a -> 'b) -> 'b -> 'b
(** [fold_matches t key f init] folds [f] over every item whose prefix
    matches the full-width [key]. *)
