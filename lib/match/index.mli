(** Indexed table-entry lookup.

    Implements the interpreter's match precedence — the matching entry
    minimising the lexicographic pair (rank, seq), where rank is
    [-priority] for tables with ternary/optional keys and minus the LPM
    specificity otherwise, and seq is insertion order (the documented
    tie-break) — without scanning every entry:

    - priority tables: tuple-space search (entries grouped by mask
      signature, one hash probe per distinct mask shape);
    - one-LPM-key tables: hash on the exact part, a path-compressed
      binary {!Trie} over the LPM key;
    - all-exact tables: a single hash map.

    Entries that do not fit the fast structure fall back to a residual
    linear list with the interpreter's scan semantics, so lookup is
    equivalent to the reference for every entry shape. The module is
    independent of lib/p4runtime (which depends on it): match values are
    re-declared here, payloads are abstract. *)

module Bitvec = Switchv_bitvec.Bitvec

type kind = Exact | Lpm | Ternary | Optional

type mv =
  | Mexact of Bitvec.t
  | Mlpm of Bitvec.t * int            (** value, prefix length *)
  | Mternary of Bitvec.t * Bitvec.t   (** value, mask *)
  | Moptional of Bitvec.t option      (** [None] = wildcard *)

type key = { key_width : int; key_kind : kind }

type 'a t

val create : key array -> 'a t

val insert : 'a t -> mvs:mv option array -> priority:int -> seq:int -> 'a -> unit
(** Add an entry. [mvs] is per key, [None] meaning omitted (wildcard);
    values are canonicalised (masked) on the way in. [seq] must be unique
    per live entry; it is both the removal handle and the tie-break. *)

val remove : 'a t -> mvs:mv option array -> seq:int -> unit

val lookup : 'a t -> Bitvec.t array -> 'a option
(** The payload of the matching entry that minimises (rank, seq), i.e.
    the interpreter's winner, for probe key values in schema order. *)

val size : 'a t -> int

val mv_matches : Bitvec.t -> mv -> bool
(** Reference single-value match semantics (interp.ml's
    [match_value_ok]); exposed for differential tests. *)
