(* Indexed table-entry lookup.

   The interpreter's reference semantics (lib/bmv2/interp.ml) order a
   table's entries by an explicit precedence — (priority descending,
   insertion seq ascending) when any key is ternary/optional, otherwise
   (LPM specificity descending, insertion seq ascending) — and the first
   matching entry wins. Equivalently: the winner is the matching entry
   that minimises the lexicographic pair (rank, seq), with

     rank = -priority                     (priority tables)
     rank = -sum of LPM prefix lengths    (everything else)

   This module computes that minimum without scanning every entry:

   - priority tables use tuple-space search — entries grouped by their
     concatenated mask signature, each group a hash table from masked key
     bytes to candidates, so a probe costs one hash lookup per distinct
     mask shape instead of one compare per entry;
   - tables with one LPM key (plus exact keys) hash on the exact part and
     keep a path-compressed binary trie ({!Trie}) over the LPM key;
   - all-exact tables are a single hash map.

   Entries whose match values do not fit the fast structure (and whole
   tables with several LPM keys) fall back to a residual linear list that
   reproduces the interpreter's scan exactly; the fast-path winner and the
   residual winner are merged under the same (rank, seq) order, so lookup
   is equivalent to the reference for every entry shape.

   The module is deliberately independent of lib/p4runtime (which depends
   on it): match values are re-declared here and the payload type is
   abstract. Values are canonicalised (masked) on insert, so bucket
   equality coincides with match semantics. *)

module Bitvec = Switchv_bitvec.Bitvec

type kind = Exact | Lpm | Ternary | Optional

type mv =
  | Mexact of Bitvec.t
  | Mlpm of Bitvec.t * int            (* value, prefix length *)
  | Mternary of Bitvec.t * Bitvec.t   (* value, mask *)
  | Moptional of Bitvec.t option      (* None = wildcard *)

type key = { key_width : int; key_kind : kind }

type 'a entry = {
  e_mvs : mv option array;  (* per key; None = omitted = wildcard *)
  e_rank : int;
  e_seq : int;
  e_payload : 'a;
}

(* One mask-signature group of the tuple-space search. *)
type 'a group = {
  g_masks : Bitvec.t array;
  g_buckets : (string, 'a entry list ref) Hashtbl.t;
}

type 'a mode =
  | M_priority of (string, 'a group) Hashtbl.t    (* signature -> group *)
  | M_lpm of int * (string, 'a entry Trie.t) Hashtbl.t  (* lpm key pos; exact part -> trie *)
  | M_exact of (string, 'a entry list ref) Hashtbl.t
  | M_generic                                      (* residual only *)

type 'a t = {
  keys : key array;
  priority_mode : bool;
  mode : 'a mode;
  mutable residual : 'a entry list;
  mutable count : int;
}

let canonical_mv = function
  | Mexact v -> Mexact v
  | Moptional o -> Moptional o
  | Mlpm (v, len) when len >= 0 && len <= Bitvec.width v ->
      Mlpm (Bitvec.logand v (Bitvec.prefix_mask ~width:(Bitvec.width v) len), len)
  | Mlpm (v, len) -> Mlpm (v, len)
  | Mternary (v, m) when Bitvec.width v = Bitvec.width m ->
      Mternary (Bitvec.logand v m, m)
  | Mternary (v, m) -> Mternary (v, m)

let mv_width = function
  | Mexact v | Mlpm (v, _) | Mternary (v, _) | Moptional (Some v) -> Some (Bitvec.width v)
  | Moptional None -> None

(* Mirrors interp.ml's [match_value_ok] (omitted key = wildcard). *)
let mv_matches kv = function
  | Mexact v | Moptional (Some v) -> Bitvec.equal v kv
  | Moptional None -> true
  | Mlpm (v, len) ->
      Bitvec.width v = Bitvec.width kv
      && len >= 0 && len <= Bitvec.width kv
      && Bitvec.equal v (Bitvec.logand kv (Bitvec.prefix_mask ~width:(Bitvec.width kv) len))
  | Mternary (v, m) ->
      Bitvec.width m = Bitvec.width kv && Bitvec.equal v (Bitvec.logand kv m)

let entry_matches e values =
  let ok = ref true in
  Array.iteri
    (fun i mv ->
      match mv with
      | None -> ()
      | Some mv -> if not (mv_matches values.(i) mv) then ok := false)
    e.e_mvs;
  !ok

(* Mirrors interp.ml's [lpm_specificity]: only M_lpm values on LPM-kind
   keys contribute, so an exact value on an LPM key ranks as /0. *)
let specificity keys mvs =
  let acc = ref 0 in
  Array.iteri
    (fun i mv ->
      match (keys.(i).key_kind, mv) with
      | Lpm, Some (Mlpm (_, len)) -> acc := !acc + len
      | _ -> ())
    mvs;
  !acc

let create keys =
  let priority_mode =
    Array.exists (fun k -> k.key_kind = Ternary || k.key_kind = Optional) keys
  in
  let lpm_positions =
    Array.to_list keys
    |> List.mapi (fun i k -> (i, k))
    |> List.filter_map (fun (i, k) -> if k.key_kind = Lpm then Some i else None)
  in
  let mode =
    if priority_mode then M_priority (Hashtbl.create 16)
    else
      match lpm_positions with
      | [] -> M_exact (Hashtbl.create 1024)
      | [ pos ] -> M_lpm (pos, Hashtbl.create 64)
      | _ :: _ :: _ -> M_generic
  in
  { keys; priority_mode; mode; residual = []; count = 0 }

let size t = t.count

(* --- classification ------------------------------------------------------ *)

(* Every match value is a masked compare once canonicalised, so any entry
   of a priority table fits some tuple-space group. *)
let mask_of w = function
  | None | Some (Moptional None) -> Bitvec.zero w
  | Some (Mexact _) | Some (Moptional (Some _)) -> Bitvec.ones w
  | Some (Mlpm (_, len)) -> Bitvec.prefix_mask ~width:w len
  | Some (Mternary (_, m)) -> m

let masked_value w = function
  | None | Some (Moptional None) -> Bitvec.zero w
  | Some (Mexact v) | Some (Moptional (Some v)) -> v
  | Some (Mlpm (v, _)) | Some (Mternary (v, _)) -> v

let hex_concat vs =
  String.concat "," (Array.to_list (Array.map Bitvec.to_hex_string vs))

(* Widths must agree with the schema for bucket keys to be meaningful;
   anything off-schema is handled by the residual scan. *)
let widths_ok keys mvs =
  let ok = ref true in
  Array.iteri
    (fun i mv ->
      let w = keys.(i).key_width in
      (match Option.bind mv mv_width with
      | Some w' when w' <> w -> ok := false
      | _ -> ());
      match mv with
      | Some (Mternary (_, m)) when Bitvec.width m <> w -> ok := false
      | Some (Mlpm (_, len)) when len < 0 || len > w -> ok := false
      | _ -> ())
    mvs;
  !ok

(* The exact-part bucket key of an LPM-mode entry, if every non-LPM value
   pins its key exactly. *)
let exact_part_of keys mvs ~skip =
  let n = Array.length keys in
  let vals = Array.make n (Bitvec.zero 1) in
  let ok = ref true in
  Array.iteri
    (fun i mv ->
      if i <> skip then
        match mv with
        | Some (Mexact v) | Some (Moptional (Some v)) -> vals.(i) <- v
        | _ -> ok := false)
    mvs;
  if not !ok then None
  else
    Some
      (hex_concat
         (Array.of_list
            (List.filteri (fun i _ -> i <> skip) (Array.to_list vals))))

let probe_exact_part values ~skip =
  hex_concat
    (Array.of_list (List.filteri (fun i _ -> i <> skip) (Array.to_list values)))

(* The (value, len) the LPM key contributes to the trie, if prefix-shaped. *)
let lpm_part_of w = function
  | None | Some (Moptional None) -> Some (Bitvec.zero w, 0)
  | Some (Mlpm (v, len)) -> Some (v, len)
  | Some (Mexact v) -> Some (v, w)
  | Some (Moptional (Some _)) | Some (Mternary _) -> None

let all_exact mvs =
  Array.for_all
    (function Some (Mexact _) | Some (Moptional (Some _)) -> true | _ -> false)
    mvs

(* --- insert / remove ------------------------------------------------------ *)

let bucket_add tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := e :: !r
  | None -> Hashtbl.add tbl key (ref [ e ])

let bucket_remove tbl key seq =
  match Hashtbl.find_opt tbl key with
  | None -> ()
  | Some r -> r := List.filter (fun e -> e.e_seq <> seq) !r

let insert t ~mvs ~priority ~seq payload =
  let mvs = Array.map (Option.map canonical_mv) mvs in
  let rank = if t.priority_mode then -priority else -specificity t.keys mvs in
  let e = { e_mvs = mvs; e_rank = rank; e_seq = seq; e_payload = payload } in
  t.count <- t.count + 1;
  let to_residual () = t.residual <- e :: t.residual in
  if not (widths_ok t.keys mvs) then to_residual ()
  else
    match t.mode with
    | M_generic -> to_residual ()
    | M_priority groups ->
        let masks = Array.mapi (fun i mv -> mask_of t.keys.(i).key_width mv) mvs in
        let signature = hex_concat masks in
        let group =
          match Hashtbl.find_opt groups signature with
          | Some g -> g
          | None ->
              let g = { g_masks = masks; g_buckets = Hashtbl.create 64 } in
              Hashtbl.add groups signature g;
              g
        in
        let vals = Array.mapi (fun i mv -> masked_value t.keys.(i).key_width mv) mvs in
        bucket_add group.g_buckets (hex_concat vals) e
    | M_exact buckets ->
        if all_exact mvs then
          bucket_add buckets
            (hex_concat
               (Array.mapi (fun i mv -> masked_value t.keys.(i).key_width mv) mvs))
            e
        else to_residual ()
    | M_lpm (pos, groups) -> (
        match (exact_part_of t.keys mvs ~skip:pos, lpm_part_of t.keys.(pos).key_width mvs.(pos)) with
        | Some part, Some (v, len) ->
            let trie =
              match Hashtbl.find_opt groups part with
              | Some tr -> tr
              | None ->
                  let tr = Trie.create t.keys.(pos).key_width in
                  Hashtbl.add groups part tr;
                  tr
            in
            Trie.insert trie ~value:v ~len e
        | _ -> to_residual ())

let remove t ~mvs ~seq =
  let mvs = Array.map (Option.map canonical_mv) mvs in
  let from_residual () =
    t.residual <- List.filter (fun e -> e.e_seq <> seq) t.residual
  in
  t.count <- t.count - 1;
  if not (widths_ok t.keys mvs) then from_residual ()
  else
    match t.mode with
    | M_generic -> from_residual ()
    | M_priority groups -> (
        let masks = Array.mapi (fun i mv -> mask_of t.keys.(i).key_width mv) mvs in
        match Hashtbl.find_opt groups (hex_concat masks) with
        | None -> from_residual ()
        | Some g ->
            let vals =
              Array.mapi (fun i mv -> masked_value t.keys.(i).key_width mv) mvs
            in
            bucket_remove g.g_buckets (hex_concat vals) seq)
    | M_exact buckets ->
        if all_exact mvs then
          bucket_remove buckets
            (hex_concat
               (Array.mapi (fun i mv -> masked_value t.keys.(i).key_width mv) mvs))
            seq
        else from_residual ()
    | M_lpm (pos, groups) -> (
        match (exact_part_of t.keys mvs ~skip:pos, lpm_part_of t.keys.(pos).key_width mvs.(pos)) with
        | Some part, Some (v, len) -> (
            match Hashtbl.find_opt groups part with
            | None -> ()
            | Some trie -> Trie.remove trie ~value:v ~len (fun e -> e.e_seq = seq))
        | _ -> from_residual ())

(* --- lookup --------------------------------------------------------------- *)

let better best e =
  match best with
  | None -> Some e
  | Some b ->
      if e.e_rank < b.e_rank || (e.e_rank = b.e_rank && e.e_seq < b.e_seq) then Some e
      else best

let lookup t values =
  let best = ref None in
  (match t.mode with
  | M_generic -> ()
  | M_priority groups ->
      Hashtbl.iter
        (fun _ g ->
          let masked = Array.map2 Bitvec.logand values g.g_masks in
          match Hashtbl.find_opt g.g_buckets (hex_concat masked) with
          | None -> ()
          | Some r -> List.iter (fun e -> best := better !best e) !r)
        groups
  | M_exact buckets -> (
      match Hashtbl.find_opt buckets (hex_concat values) with
      | None -> ()
      | Some r -> List.iter (fun e -> best := better !best e) !r)
  | M_lpm (pos, groups) -> (
      match Hashtbl.find_opt groups (probe_exact_part values ~skip:pos) with
      | None -> ()
      | Some trie ->
          best :=
            Trie.fold_matches trie values.(pos) (fun acc e -> better acc e) !best));
  List.iter (fun e -> if entry_matches e values then best := better !best e) t.residual;
  Option.map (fun e -> e.e_payload) !best
