(** The Cerberus P4 model: a vendor stack with a more involved forwarding
    pipeline than PINS (§6) — GRE decapsulation at ingress, encapsulation
    after routing, plus the standard SAI routing core. *)

module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module C = Components
open Ast

let program =
  { p_name = "cerberus";
    p_headers = C.headers_with_gre;
    p_metadata = C.metadata;
    p_parser = C.parser_with_gre;
    p_actions = C.common_actions @ C.tunnel_actions;
    p_tables =
      [ C.acl_pre_ingress_table ~id:1;
        C.vrf_table ~id:2;
        C.l3_admit_table ~id:3;
        C.ipv4_table ~id:4 ~extra_actions:[ "set_tunnel_id" ] ();
        C.ipv6_table ~id:5 ~extra_actions:[ "set_tunnel_id" ] ();
        C.wcmp_group_table ~id:6;
        C.nexthop_table ~id:7;
        C.router_interface_table ~id:8;
        C.neighbor_table ~id:9;
        C.acl_ingress_table ~id:10 ~keys:C.ingress_acl_keys_middleblock
          ~restriction:"!(is_ipv4 == 1 && is_ipv6 == 1) && ttl::mask == 0" ();
        C.acl_egress_table ~id:11;
        C.mirror_session_table ~id:12;
        C.egress_router_interface_table ~id:13;
        C.tunnel_table ~id:14;
        C.decap_table ~id:15 ];
    p_ingress =
      seq
        [ C.classify_ip;
          C_if (B_is_valid "gre", C_table "decap_table", C_nop);
          C_table "acl_pre_ingress_table";
          C_table "vrf_table";
          C.routing_core;
          C_if
            ( B_eq (E_field (meta "tunnel_encap"), E_const (Bitvec.of_int ~width:1 1)),
              C_table "tunnel_table",
              C_nop );
          C.ttl_guard;
          C_table "acl_ingress_table" ];
    p_egress = seq [ C_table "egress_router_interface_table"; C_table "acl_egress_table" ] }

let info = P4info.of_program program

let () = Switchv_p4ir.Typecheck.check_exn program
