module Ast = Switchv_p4ir.Ast
module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Constraint_lang = Switchv_p4constraints.Constraint_lang
open Ast

let restriction s =
  match Constraint_lang.parse s with
  | Ok c -> c
  | Error msg -> invalid_arg (Printf.sprintf "bad entry restriction %S: %s" s msg)

let metadata =
  [ ("vrf_id", 16);
    ("l3_admit", 1);
    ("nexthop_id", 16);
    ("wcmp_group_id", 16);
    ("router_interface_id", 16);
    ("neighbor_id", 16);
    ("is_ipv4", 1);
    ("is_ipv6", 1);
    ("tunnel_id", 16);
    ("tunnel_encap", 1) ]

let c w n = E_const (Bitvec.of_int ~width:w n)

let standard_parser =
  { start = "start";
    states =
      [ { ps_name = "start";
          ps_extract = Some "ethernet";
          ps_next =
            T_select
              ( E_field (field "ethernet" "ether_type"),
                [ (Bitvec.of_int ~width:16 0x0800, "parse_ipv4");
                  (Bitvec.of_int ~width:16 0x86DD, "parse_ipv6");
                  (Bitvec.of_int ~width:16 0x0806, "parse_arp") ],
                "accept" ) };
        { ps_name = "parse_ipv4";
          ps_extract = Some "ipv4";
          ps_next =
            T_select
              ( E_field (field "ipv4" "protocol"),
                [ (Bitvec.of_int ~width:8 6, "parse_tcp");
                  (Bitvec.of_int ~width:8 17, "parse_udp");
                  (Bitvec.of_int ~width:8 1, "parse_icmp") ],
                "accept" ) };
        { ps_name = "parse_ipv6";
          ps_extract = Some "ipv6";
          ps_next =
            T_select
              ( E_field (field "ipv6" "next_header"),
                [ (Bitvec.of_int ~width:8 6, "parse_tcp");
                  (Bitvec.of_int ~width:8 17, "parse_udp");
                  (Bitvec.of_int ~width:8 58, "parse_icmp") ],
                "accept" ) };
        { ps_name = "parse_arp"; ps_extract = Some "arp"; ps_next = T_accept };
        { ps_name = "parse_tcp"; ps_extract = Some "tcp"; ps_next = T_accept };
        { ps_name = "parse_udp"; ps_extract = Some "udp"; ps_next = T_accept };
        { ps_name = "parse_icmp"; ps_extract = Some "icmp"; ps_next = T_accept } ] }

(* Variant of the standard parser that also recognises GRE (IP proto 47),
   for the roles that model tunnels. Built in one pass (fold over the
   standard states, consing the extra GRE leaf state first) rather than by
   appending single elements to list tails. *)
let parser_with_gre =
  let gre_leaf = { ps_name = "parse_gre"; ps_extract = Some "gre"; ps_next = T_accept } in
  let with_gre_arm s =
    if String.equal s.ps_name "parse_ipv4" then
      { s with
        ps_next =
          (match s.ps_next with
          | T_select (e, cases, default) ->
              (* The GRE arm follows the existing protocol arms, ahead of
                 the default. *)
              T_select
                ( e,
                  List.rev ((Bitvec.of_int ~width:8 47, "parse_gre") :: List.rev cases),
                  default )
          | t -> t) }
    else s
  in
  { standard_parser with
    states =
      List.fold_left
        (fun acc s -> with_gre_arm s :: acc)
        [ gre_leaf ] (List.rev standard_parser.states) }

let standard_headers =
  [ Header.ethernet; Header.ipv4; Header.ipv6; Header.arp; Header.tcp;
    Header.udp; Header.icmp ]

let headers_with_gre =
  List.rev (Header.gre :: List.rev standard_headers)

(* --- actions -------------------------------------------------------------- *)

let no_action = { a_name = "no_action"; a_params = []; a_body = [] }

let drop =
  { a_name = "drop"; a_params = []; a_body = [ S_assign (std "drop", c 1 1) ] }

let trap =
  { a_name = "acl_trap";
    a_params = [];
    a_body = [ S_assign (std "punt", c 1 1); S_assign (std "drop", c 1 1) ] }

let acl_copy =
  { a_name = "acl_copy"; a_params = []; a_body = [ S_assign (std "punt", c 1 1) ] }

let set_vrf =
  { a_name = "set_vrf";
    a_params = [ param ~refers_to:("vrf_table", "vrf_id") "vrf_id" 16 ];
    a_body = [ S_assign (meta "vrf_id", E_param "vrf_id") ] }

let l3_admit_action =
  { a_name = "l3_admit"; a_params = []; a_body = [ S_assign (meta "l3_admit", c 1 1) ] }

let set_nexthop_id =
  { a_name = "set_nexthop_id";
    a_params = [ param ~refers_to:("nexthop_table", "nexthop_id") "nexthop_id" 16 ];
    a_body = [ S_assign (meta "nexthop_id", E_param "nexthop_id") ] }

let set_wcmp_group_id =
  { a_name = "set_wcmp_group_id";
    a_params =
      [ param ~refers_to:("wcmp_group_table", "wcmp_group_id") "wcmp_group_id" 16 ];
    a_body = [ S_assign (meta "wcmp_group_id", E_param "wcmp_group_id") ] }

let set_ip_nexthop =
  { a_name = "set_ip_nexthop";
    a_params =
      [ param
          ~refers_to:("router_interface_table", "router_interface_id")
          "router_interface_id" 16;
        param ~refers_to:("neighbor_table", "neighbor_id") "neighbor_id" 16 ];
    a_body =
      [ S_assign (meta "router_interface_id", E_param "router_interface_id");
        S_assign (meta "neighbor_id", E_param "neighbor_id") ] }

let set_port_and_src_mac =
  { a_name = "set_port_and_src_mac";
    a_params = [ param "port" 16; param "src_mac" 48 ];
    a_body =
      [ S_assign (std "egress_port", E_param "port");
        S_assign (field "ethernet" "src_addr", E_param "src_mac") ] }

let set_dst_mac =
  { a_name = "set_dst_mac";
    a_params = [ param "dst_mac" 48 ];
    a_body = [ S_assign (field "ethernet" "dst_addr", E_param "dst_mac") ] }

let mirror =
  { a_name = "acl_mirror";
    a_params =
      [ param
          ~refers_to:("mirror_session_table", "mirror_session_id")
          "mirror_session_id" 16 ];
    a_body = [ S_assign (std "mirror_session", E_param "mirror_session_id") ] }

let egress_set_src_mac =
  { a_name = "egress_set_src_mac";
    a_params = [ param "src_mac" 48 ];
    a_body = [ S_assign (field "ethernet" "src_addr", E_param "src_mac") ] }

let set_gre_encap =
  { a_name = "set_gre_encap";
    a_params = [ param "encap_dst" 32 ];
    a_body =
      [ S_set_valid ("gre", true);
        S_assign (field "gre" "protocol", c 16 0x0800);
        S_assign (field "ipv4" "dst_addr", E_param "encap_dst") ] }

let gre_decap =
  { a_name = "gre_decap"; a_params = []; a_body = [ S_set_valid ("gre", false) ] }

let set_tunnel_id =
  (* A tunnel nexthop: encapsulate per the tunnel object, then resolve the
     underlay through a regular nexthop. *)
  { a_name = "set_tunnel_id";
    a_params =
      [ param ~refers_to:("tunnel_table", "tunnel_id") "tunnel_id" 16;
        param ~refers_to:("nexthop_table", "nexthop_id") "nexthop_id" 16 ];
    a_body =
      [ S_assign (meta "tunnel_id", E_param "tunnel_id");
        S_assign (meta "tunnel_encap", c 1 1);
        S_assign (meta "nexthop_id", E_param "nexthop_id") ] }

let common_actions =
  [ no_action; drop; trap; acl_copy; set_vrf; l3_admit_action; set_nexthop_id;
    set_wcmp_group_id; set_ip_nexthop; set_port_and_src_mac; set_dst_mac; mirror;
    egress_set_src_mac ]

let tunnel_actions = [ set_gre_encap; gre_decap; set_tunnel_id ]

(* --- tables --------------------------------------------------------------- *)

let key ?refers_to ~kind k_name k_expr =
  { k_name; k_expr; k_kind = kind; k_refers_to = refers_to }

let table ?(selector = false) ?restriction:r ~id ~keys ~actions
    ~default ~size t_name =
  { t_name;
    t_id = id;
    t_keys = keys;
    t_actions = actions;
    t_default_action = default;
    t_size = size;
    t_entry_restriction = Option.map restriction r;
    t_selector = selector }

let vrf_table ~id =
  table ~id "vrf_table"
    ~keys:[ key ~kind:Exact "vrf_id" (E_field (meta "vrf_id")) ]
    ~actions:[ "no_action" ]
    ~default:("no_action", [])
    ~size:64
    ~restriction:"vrf_id != 0"

let acl_pre_ingress_table ~id =
  table ~id "acl_pre_ingress_table"
    ~keys:
      [ key ~kind:Ternary "is_ipv4" (E_field (meta "is_ipv4"));
        key ~kind:Ternary "is_ipv6" (E_field (meta "is_ipv6"));
        key ~kind:Ternary "src_mac" (E_field (field "ethernet" "src_addr"));
        key ~kind:Ternary "dst_ip" (E_field (field "ipv4" "dst_addr"));
        key ~kind:Ternary "in_port" (E_field (std "ingress_port")) ]
    ~actions:[ "set_vrf"; "no_action" ]
    ~default:("no_action", [])
    ~size:128
    ~restriction:"!(is_ipv4 == 1 && is_ipv6 == 1) && (dst_ip::mask == 0 || is_ipv4 == 1)"

let l3_admit_table ~id =
  table ~id "l3_admit_table"
    ~keys:
      [ key ~kind:Ternary "dst_mac" (E_field (field "ethernet" "dst_addr"));
        key ~kind:Ternary "in_port" (E_field (std "ingress_port")) ]
    ~actions:[ "l3_admit"; "no_action" ]
    ~default:("no_action", [])
    ~size:64

let ipv4_table ?(extra_actions = []) ~id () =
  table ~id "ipv4_table"
    ~keys:
      [ key ~kind:Exact
          ~refers_to:("vrf_table", "vrf_id")
          "vrf_id" (E_field (meta "vrf_id"));
        key ~kind:Lpm "ipv4_dst" (E_field (field "ipv4" "dst_addr")) ]
    ~actions:([ "drop"; "set_nexthop_id"; "set_wcmp_group_id" ] @ extra_actions)
    ~default:("drop", [])
    ~size:1024

let ipv6_table ?(extra_actions = []) ~id () =
  table ~id "ipv6_table"
    ~keys:
      [ key ~kind:Exact
          ~refers_to:("vrf_table", "vrf_id")
          "vrf_id" (E_field (meta "vrf_id"));
        key ~kind:Lpm "ipv6_dst" (E_field (field "ipv6" "dst_addr")) ]
    ~actions:([ "drop"; "set_nexthop_id"; "set_wcmp_group_id" ] @ extra_actions)
    ~default:("drop", [])
    ~size:512

let wcmp_group_table ~id =
  table ~id "wcmp_group_table" ~selector:true
    ~keys:[ key ~kind:Exact "wcmp_group_id" (E_field (meta "wcmp_group_id")) ]
    ~actions:[ "set_nexthop_id" ]
    ~default:("set_nexthop_id", [ Bitvec.zero 16 ])
    ~size:128

let nexthop_table ~id =
  table ~id "nexthop_table"
    ~keys:[ key ~kind:Exact "nexthop_id" (E_field (meta "nexthop_id")) ]
    ~actions:[ "set_ip_nexthop" ]
    ~default:("set_ip_nexthop", [ Bitvec.zero 16; Bitvec.zero 16 ])
    ~size:256
    ~restriction:"nexthop_id != 0"

let router_interface_table ~id =
  table ~id "router_interface_table"
    ~keys:
      [ key ~kind:Exact "router_interface_id" (E_field (meta "router_interface_id")) ]
    ~actions:[ "set_port_and_src_mac" ]
    ~default:("set_port_and_src_mac", [ Bitvec.zero 16; Bitvec.zero 48 ])
    ~size:64
    ~restriction:"router_interface_id != 0"

let neighbor_table ~id =
  table ~id "neighbor_table"
    ~keys:
      [ key ~kind:Exact
          ~refers_to:("router_interface_table", "router_interface_id")
          "router_interface_id"
          (E_field (meta "router_interface_id"));
        key ~kind:Exact "neighbor_id" (E_field (meta "neighbor_id")) ]
    ~actions:[ "set_dst_mac" ]
    ~default:("set_dst_mac", [ Bitvec.zero 48 ])
    ~size:256
    ~restriction:"neighbor_id != 0"

let mirror_session_table ~id =
  table ~id "mirror_session_table"
    ~keys:[ key ~kind:Exact "mirror_session_id" (E_field (meta "tunnel_id")) ]
    (* The key expression is irrelevant: this logical table is never applied
       in the pipeline (§3 "Mirror Sessions"); it exists to model the SAI
       mirror-session resource on the control plane. *)
    ~actions:[ "set_port_and_src_mac" ]
    ~default:("set_port_and_src_mac", [ Bitvec.zero 16; Bitvec.zero 48 ])
    ~size:4
    ~restriction:"mirror_session_id != 0"

let ingress_acl_keys_middleblock =
  [ key ~kind:Ternary "is_ipv4" (E_field (meta "is_ipv4"));
    key ~kind:Ternary "is_ipv6" (E_field (meta "is_ipv6"));
    key ~kind:Ternary "ether_type" (E_field (field "ethernet" "ether_type"));
    key ~kind:Ternary "dst_ip" (E_field (field "ipv4" "dst_addr"));
    key ~kind:Ternary "ttl" (E_field (field "ipv4" "ttl"));
    key ~kind:Ternary "dscp" (E_field (field "ipv4" "dscp")) ]

let ingress_acl_keys_tor =
  [ key ~kind:Ternary "is_ipv4" (E_field (meta "is_ipv4"));
    key ~kind:Ternary "is_ipv6" (E_field (meta "is_ipv6"));
    key ~kind:Ternary "l4_dst_port" (E_field (field "udp" "dst_port"));
    key ~kind:Ternary "icmp_type" (E_field (field "icmp" "type"));
    key ~kind:Ternary "dst_mac" (E_field (field "ethernet" "dst_addr")) ]

let ingress_acl_keys_wan =
  [ key ~kind:Ternary "is_ipv4" (E_field (meta "is_ipv4"));
    key ~kind:Ternary "is_ipv6" (E_field (meta "is_ipv6"));
    key ~kind:Ternary "dscp" (E_field (field "ipv4" "dscp"));
    key ~kind:Ternary "src_ip" (E_field (field "ipv4" "src_addr"));
    key ~kind:Ternary "dst_ip" (E_field (field "ipv4" "dst_addr"));
    key ~kind:Ternary "in_port" (E_field (std "ingress_port")) ]

let acl_ingress_table ?(name = "acl_ingress_table") ~id ~keys ~restriction:r () =
  table ~id name ~keys
    ~actions:[ "drop"; "acl_trap"; "acl_copy"; "acl_mirror"; "no_action" ]
    ~default:("no_action", [])
    ~size:128
    ~restriction:r

let acl_egress_table ~id =
  table ~id "acl_egress_table"
    ~keys:
      [ key ~kind:Ternary "ether_type" (E_field (field "ethernet" "ether_type"));
        key ~kind:Ternary "out_port" (E_field (std "egress_port")) ]
    ~actions:[ "drop"; "no_action" ]
    ~default:("no_action", [])
    ~size:64

let egress_router_interface_table ~id =
  table ~id "egress_router_interface_table"
    ~keys:
      [ key ~kind:Exact
          ~refers_to:("router_interface_table", "router_interface_id")
          "router_interface_id"
          (E_field (meta "router_interface_id")) ]
    ~actions:[ "egress_set_src_mac"; "no_action" ]
    ~default:("no_action", [])
    ~size:64

let tunnel_table ~id =
  table ~id "tunnel_table"
    ~keys:[ key ~kind:Exact "tunnel_id" (E_field (meta "tunnel_id")) ]
    ~actions:[ "set_gre_encap" ]
    ~default:("set_gre_encap", [ Bitvec.zero 32 ])
    ~size:32
    ~restriction:"tunnel_id != 0"

let decap_table ~id =
  table ~id "decap_table"
    ~keys:
      [ key ~kind:Ternary "dst_ip" (E_field (field "ipv4" "dst_addr")) ]
    ~actions:[ "gre_decap"; "no_action" ]
    ~default:("no_action", [])
    ~size:32

(* --- pipeline fragments ---------------------------------------------------- *)

let classify_ip =
  seq
    [ C_if (B_is_valid "ipv4", C_stmt (S_assign (meta "is_ipv4", c 1 1)), C_nop);
      C_if (B_is_valid "ipv6", C_stmt (S_assign (meta "is_ipv6", c 1 1)), C_nop) ]

let ttl_guard =
  (* The fixed-function trap: TTL 0 or 1 punts to CPU and drops; otherwise
     the TTL is decremented on L3-forwarded packets. *)
  C_if
    ( B_and
        ( B_is_valid "ipv4",
          B_and
            ( B_eq (E_field (meta "l3_admit"), c 1 1),
              B_ule (E_field (field "ipv4" "ttl"), c 8 1) ) ),
      seq
        [ C_stmt (S_assign (std "punt", c 1 1));
          C_stmt (S_assign (std "drop", c 1 1)) ],
      C_if
        ( B_and (B_is_valid "ipv4", B_eq (E_field (meta "l3_admit"), c 1 1)),
          C_stmt
            (S_assign
               ( field "ipv4" "ttl",
                 E_sub (E_field (field "ipv4" "ttl"), c 8 1) )),
          C_nop ) )

let routing_core =
  seq
    [ C_table "l3_admit_table";
      C_if
        ( B_eq (E_field (meta "l3_admit"), c 1 1),
          seq
            [ C_if
                ( B_is_valid "ipv4",
                  C_table "ipv4_table",
                  C_if (B_is_valid "ipv6", C_table "ipv6_table", C_nop) );
              C_if
                ( B_ne (E_field (meta "wcmp_group_id"), c 16 0),
                  C_table "wcmp_group_table",
                  C_nop );
              C_if
                ( B_ne (E_field (meta "nexthop_id"), c 16 0),
                  seq
                    [ C_table "nexthop_table";
                      C_table "router_interface_table";
                      C_table "neighbor_table" ],
                  C_nop ) ],
          C_nop ) ]
