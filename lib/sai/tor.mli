(** The ToR role instantiation: the middleblock blueprint with a ToR-
    specific ingress-ACL key combination (L4 ports, ICMP type, dst MAC) —
    §3 "Role Specific Instantiations". *)

val program : Switchv_p4ir.Ast.program
val info : Switchv_p4ir.P4info.t
