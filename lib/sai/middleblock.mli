(** The middleblock role instantiation — the paper's "Inst1" production
    model (Table 3: 798 entries): 13 SAI-style tables covering VRF
    allocation, L3 admission, IPv4/IPv6 routing, WCMP, nexthop/RIF/
    neighbor resolution, role-specific ingress ACL, egress ACL, mirror
    sessions, and the egress RIF replica. *)

val program : Switchv_p4ir.Ast.program
val info : Switchv_p4ir.P4info.t
