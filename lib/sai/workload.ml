module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Rng = Switchv_bitvec.Rng
module Entry = Switchv_p4runtime.Entry

type profile = {
  vrfs : int;
  rifs : int;
  neighbors : int;
  nexthops : int;
  wcmp_groups : int;
  ipv4_routes : int;
  ipv6_routes : int;
  acl_pre : int;
  acl_ingress : int;
  acl_egress : int;
  mirror_sessions : int;
  l3_admits : int;
  tunnels : int;
  egress_rifs : int;
}

let total p =
  p.vrfs + p.rifs + p.neighbors + p.nexthops + p.wcmp_groups + p.ipv4_routes
  + p.ipv6_routes + p.acl_pre + p.acl_ingress + p.acl_egress + p.mirror_sessions
  + p.l3_admits + p.tunnels + p.egress_rifs

let inst1 =
  { vrfs = 4; rifs = 16; neighbors = 32; nexthops = 64; wcmp_groups = 16;
    ipv4_routes = 384; ipv6_routes = 200; acl_pre = 16; acl_ingress = 32;
    acl_egress = 8; mirror_sessions = 2; l3_admits = 8; tunnels = 0;
    egress_rifs = 16 }

let inst2 =
  { vrfs = 8; rifs = 24; neighbors = 48; nexthops = 96; wcmp_groups = 24;
    ipv4_routes = 576; ipv6_routes = 400; acl_pre = 24; acl_ingress = 48;
    acl_egress = 12; mirror_sessions = 4; l3_admits = 10; tunnels = 16;
    egress_rifs = 24 }

let small =
  { vrfs = 2; rifs = 3; neighbors = 4; nexthops = 6; wcmp_groups = 2;
    ipv4_routes = 20; ipv6_routes = 10; acl_pre = 3; acl_ingress = 4;
    acl_egress = 2; mirror_sessions = 1; l3_admits = 2; tunnels = 2;
    egress_rifs = 3 }

let scaled f p =
  let s n = if n = 0 then 0 else max 1 (int_of_float (float_of_int n *. f)) in
  { vrfs = s p.vrfs; rifs = s p.rifs; neighbors = s p.neighbors;
    nexthops = s p.nexthops; wcmp_groups = s p.wcmp_groups;
    ipv4_routes = s p.ipv4_routes; ipv6_routes = s p.ipv6_routes;
    acl_pre = s p.acl_pre; acl_ingress = s p.acl_ingress;
    acl_egress = s p.acl_egress; mirror_sessions = s p.mirror_sessions;
    l3_admits = s p.l3_admits; tunnels = s p.tunnels;
    egress_rifs = s p.egress_rifs }

let bv16 n = Bitvec.of_int ~width:16 n
let exact16 n = Entry.M_exact (bv16 n)

let single name args = Entry.Single { ai_name = name; ai_args = args }

let fm field value = { Entry.fm_field = field; fm_value = value }

let generate ?(seed = 1) (program : Ast.program) profile =
  let info = P4info.of_program program in
  let rng = Rng.create seed in
  let has table = P4info.find_table info table <> None in
  let out = ref [] in
  let emit e = out := e :: !out in

  (* ids are 1-based; 0 is reserved (matches the entry restrictions). *)
  let vrf_ids = List.init profile.vrfs (fun i -> i + 1) in
  let rif_ids = List.init profile.rifs (fun i -> i + 1) in
  let neighbor_ids = List.init profile.neighbors (fun i -> i + 1) in
  let nexthop_ids = List.init profile.nexthops (fun i -> i + 1) in
  let wcmp_ids = List.init profile.wcmp_groups (fun i -> i + 1) in
  let mirror_ids = List.init profile.mirror_sessions (fun i -> i + 1) in
  let tunnel_ids = List.init profile.tunnels (fun i -> i + 1) in

  let rand_mac () = Rng.bitvec rng 48 in
  let rand_port () = 1 + Rng.int rng 32 in

  (* Keep the last object of each kind unreferenced ("spare"), so that
     delete-path behaviour on deletable entries is exercisable. *)
  let referencable ids =
    match ids with [] -> [] | [ x ] -> [ x ] | _ -> List.filteri (fun i _ -> i < List.length ids - 1) ids
  in
  (* Routes live in the first ("default") VRF so that the pre-ingress ACL
     catch-all makes them reachable to generated packets; further VRFs
     exist to exercise allocation, references, and deletion. *)
  let route_vrfs = (match vrf_ids with [] -> [] | v :: _ -> [ v ]) in
  let other_vrfs = referencable vrf_ids in
  let usable_nexthops = referencable nexthop_ids in

  if has "vrf_table" then
    List.iter
      (fun id ->
        emit
          (Entry.make ~table:"vrf_table"
             ~matches:[ fm "vrf_id" (exact16 id) ]
             (single "no_action" [])))
      vrf_ids;

  let rif_ports = Hashtbl.create 16 in
  if has "router_interface_table" then
    List.iter
      (fun id ->
        let port = rand_port () in
        Hashtbl.replace rif_ports id port;
        emit
          (Entry.make ~table:"router_interface_table"
             ~matches:[ fm "router_interface_id" (exact16 id) ]
             (single "set_port_and_src_mac" [ bv16 port; rand_mac () ])))
      rif_ids;

  if has "neighbor_table" && rif_ids <> [] then
    List.iter
      (fun id ->
        let rif = List.nth rif_ids (Rng.int rng (List.length rif_ids)) in
        emit
          (Entry.make ~table:"neighbor_table"
             ~matches:[ fm "router_interface_id" (exact16 rif); fm "neighbor_id" (exact16 id) ]
             (single "set_dst_mac" [ rand_mac () ])))
      neighbor_ids;

  if has "nexthop_table" && rif_ids <> [] && neighbor_ids <> [] then
    List.iter
      (fun id ->
        let rif = Rng.choose rng rif_ids in
        let nb = Rng.choose rng neighbor_ids in
        emit
          (Entry.make ~table:"nexthop_table"
             ~matches:[ fm "nexthop_id" (exact16 id) ]
             (single "set_ip_nexthop" [ bv16 rif; bv16 nb ])))
      nexthop_ids;

  if has "wcmp_group_table" && nexthop_ids <> [] then
    List.iter
      (fun id ->
        let members = 2 + Rng.int rng 3 in
        let actions =
          List.init members (fun _ ->
              ( { Entry.ai_name = "set_nexthop_id";
                  ai_args = [ bv16 (Rng.choose rng (if usable_nexthops <> [] then usable_nexthops else nexthop_ids)) ] },
                1 + Rng.int rng 4 ))
        in
        emit
          (Entry.make ~table:"wcmp_group_table"
             ~matches:[ fm "wcmp_group_id" (exact16 id) ]
             (Entry.Weighted actions)))
      wcmp_ids;

  if has "mirror_session_table" then
    List.iter
      (fun id ->
        emit
          (Entry.make ~table:"mirror_session_table"
             ~matches:[ fm "mirror_session_id" (exact16 id) ]
             (single "set_port_and_src_mac" [ bv16 (rand_port ()); rand_mac () ])))
      mirror_ids;

  if has "tunnel_table" then
    List.iter
      (fun id ->
        emit
          (Entry.make ~table:"tunnel_table"
             ~matches:[ fm "tunnel_id" (exact16 id) ]
             (single "set_gre_encap" [ Rng.bitvec rng 32 ])))
      tunnel_ids;

  if has "decap_table" then
    (* Decap tunnels terminating inside routed space (10.0.<i>.0/24), so a
       decapped packet keeps forwarding and the GRE header's presence is
       observable on the wire. *)
    List.iter
      (fun id ->
        let dst =
          Ternary.of_prefix
            (Prefix.make
               (Bitvec.logor
                  (Bitvec.shift_left (Bitvec.of_int ~width:32 10) 24)
                  (Bitvec.shift_left (Bitvec.of_int ~width:32 id) 8))
               24)
        in
        emit
          (Entry.make ~table:"decap_table" ~priority:id
             ~matches:[ fm "dst_ip" (Entry.M_ternary dst) ]
             (single "gre_decap" [])))
      tunnel_ids;

  (* Route actions: mostly nexthops, some WCMP groups, a few drops, and (when
     available) a few tunnels. *)
  let route_action () =
    let r = Rng.int rng 100 in
    if r < 10 then single "drop" []
    else if r < 20 && wcmp_ids <> [] && has "wcmp_group_table" then
      single "set_wcmp_group_id" [ bv16 (Rng.choose rng wcmp_ids) ]
    else if r < 25 && tunnel_ids <> [] && usable_nexthops <> [] && has "tunnel_table" then
      single "set_tunnel_id"
        [ bv16 (Rng.choose rng tunnel_ids); bv16 (Rng.choose rng usable_nexthops) ]
    else if usable_nexthops <> [] then
      single "set_nexthop_id" [ bv16 (Rng.choose rng usable_nexthops) ]
    else single "drop" []
  in

  if has "ipv4_table" && route_vrfs <> [] then
    for i = 0 to profile.ipv4_routes - 1 do
      let vrf = List.nth route_vrfs (i mod List.length route_vrfs) in
      (* Unique prefixes: mostly /24 under 10.0.0.0/8 with the index encoded
         in octets 2-3; every 16th route is a shorter prefix under a
         distinct /8 to exercise LPM priority. *)
      let prefix =
        if i mod 16 = 15 then
          Prefix.make
            (Bitvec.shift_left (Bitvec.of_int ~width:32 (20 + (i / 16))) 24)
            8
        else
          let v =
            Bitvec.logor
              (Bitvec.shift_left (Bitvec.of_int ~width:32 10) 24)
              (Bitvec.shift_left (Bitvec.of_int ~width:32 (i land 0xFFFF)) 8)
          in
          Prefix.make v 24
      in
      emit
        (Entry.make ~table:"ipv4_table"
           ~matches:[ fm "vrf_id" (exact16 vrf); fm "ipv4_dst" (Entry.M_lpm prefix) ]
           (route_action ()))
    done;

  if has "ipv6_table" && route_vrfs <> [] then
    for i = 0 to profile.ipv6_routes - 1 do
      let vrf = List.nth route_vrfs (i mod List.length route_vrfs) in
      (* 2001:db8:<i>::/48 — unique per index. *)
      let v =
        Bitvec.logor
          (Bitvec.shift_left (Bitvec.of_hex_string ~width:128 "20010db8") 96)
          (Bitvec.shift_left (Bitvec.of_int ~width:128 i) 80)
      in
      emit
        (Entry.make ~table:"ipv6_table"
           ~matches:[ fm "vrf_id" (exact16 vrf); fm "ipv6_dst" (Entry.M_lpm (Prefix.make v 48)) ]
           (route_action ()))
    done;

  let tern1 v = Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 v)) in

  if has "acl_pre_ingress_table" && route_vrfs <> [] then begin
    (* Catch-alls route IPv4/IPv6 traffic into the default VRF (priorities
       1-2); the remaining entries steer specific /8s into other VRFs. *)
    let default_vrf = List.hd route_vrfs in
    emit
      (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
         ~matches:[ fm "is_ipv4" (tern1 1) ]
         (single "set_vrf" [ bv16 default_vrf ]));
    emit
      (Entry.make ~table:"acl_pre_ingress_table" ~priority:2
         ~matches:[ fm "is_ipv6" (tern1 1) ]
         (single "set_vrf" [ bv16 default_vrf ]));
    for i = 0 to profile.acl_pre - 3 do
      let dst =
        Ternary.of_prefix
          (Prefix.make
             (Bitvec.shift_left (Bitvec.of_int ~width:32 (100 + i)) 24)
             8)
      in
      let vrf =
        if other_vrfs = [] then default_vrf else Rng.choose rng other_vrfs
      in
      emit
        (Entry.make ~table:"acl_pre_ingress_table" ~priority:(i + 10)
           ~matches:[ fm "is_ipv4" (tern1 1); fm "dst_ip" (Entry.M_ternary dst) ]
           (single "set_vrf" [ bv16 vrf ]))
    done
  end;

  (* The ingress ACL's key set is role-specific; match only on keys every
     role has (is_ipv4) plus dst_ip when present, staying inside each
     role's entry restriction. *)
  (let gen_acl table count =
     match P4info.find_table info table with
     | None -> ()
     | Some ti ->
         for i = 0 to count - 1 do
           (* ACL targets live under 150.0.0.0/8 and up — disjoint from the
              routed space (10/8, 20-60/8), so ACL drops never blanket the
              route workload's forwarding behaviour. *)
           let matches =
             [ fm "is_ipv4" (tern1 1) ]
             @
             match P4info.find_match_field ti "dst_ip" with
             | Some _ ->
                 let dst =
                   Ternary.of_prefix
                     (Prefix.make
                        (Bitvec.shift_left (Bitvec.of_int ~width:32 (150 + (i mod 100))) 24)
                        8)
                 in
                 [ fm "dst_ip" (Entry.M_ternary dst) ]
             | None -> []
           in
           let action =
             match i mod 5 with
             | 0 -> single "drop" []
             | 1 -> single "acl_trap" []
             | 2 -> single "acl_copy" []
             | 3 when mirror_ids <> [] ->
                 single "acl_mirror" [ bv16 (Rng.choose rng mirror_ids) ]
             | _ -> single "no_action" []
           in
           emit (Entry.make ~table ~priority:(i + 1) ~matches action)
         done
   in
   gen_acl "acl_ingress_table" profile.acl_ingress;
   gen_acl "acl_ingress_qos_table" 0);

  (if has "acl_egress_table" then begin
     (* One entry drops IPv6 leaving a real RIF port (observable via the
        IPv6 routes without touching the IPv4 workload); the rest match
        exotic ether types. *)
     let ports = Hashtbl.fold (fun _ p acc -> p :: acc) rif_ports [] in
     for i = 0 to profile.acl_egress - 1 do
       let matches =
         if i = 0 && ports <> [] then
           [ fm "out_port"
               (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:16 (List.hd ports))));
             fm "ether_type"
               (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:16 0x86DD))) ]
         else
           [ fm "ether_type"
               (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:16 (0x9100 + i)))) ]
       in
       emit
         (Entry.make ~table:"acl_egress_table" ~priority:(i + 1) ~matches
            (single (if i = 0 then "drop" else "no_action") []))
     done
   end);

  if has "egress_router_interface_table" && rif_ids <> [] then
    (* Egress replicas of the first [egress_rifs] RIFs, rewriting the
       source MAC (observable on every forwarded packet through them). *)
    List.iteri
      (fun i id ->
        if i < profile.egress_rifs then
          emit
            (Entry.make ~table:"egress_router_interface_table"
               ~matches:[ fm "router_interface_id" (exact16 id) ]
               (single "egress_set_src_mac" [ rand_mac () ])))
      rif_ids;

  if has "l3_admit_table" then
    for i = 0 to profile.l3_admits - 1 do
      emit
        (Entry.make ~table:"l3_admit_table" ~priority:(i + 1)
           ~matches:
             [ fm "dst_mac"
                 (Entry.M_ternary
                    (Ternary.exact
                       (Bitvec.of_int64 ~width:48 (Int64.of_int (0x020000000000 + i))))) ]
           (single "l3_admit" []))
    done;

  List.rev !out

let mirror_map entries =
  List.filter_map
    (fun (e : Entry.t) ->
      if String.equal e.e_table "mirror_session_table" then
        match (Entry.find_match e "mirror_session_id", e.e_action) with
        | Some (Entry.M_exact id), Entry.Single { ai_name = "set_port_and_src_mac"; ai_args = port :: _ } ->
            Some (Bitvec.to_int_exn id, Bitvec.to_int_exn port)
        | _ -> None
      else None)
    entries

(* --- scale workloads -------------------------------------------------------

   Million-entry variants for the indexed-match / staged-evaluator bench:
   a referencable nexthop chain of fixed (small) size, then [n] unique
   routes or ACL entries. Kept separate from [generate] because the
   point is to stress one table's entry count, not the object-graph mix. *)

let scale_routes ?(seed = 7) ?(nexthops = 16) (program : Ast.program) n =
  let info = P4info.of_program program in
  let rng = Rng.create seed in
  let has table = P4info.find_table info table <> None in
  let out = ref [] in
  let emit e = out := e :: !out in
  let nh_ids = List.init (max 1 nexthops) (fun i -> i + 1) in
  if has "vrf_table" then
    emit
      (Entry.make ~table:"vrf_table"
         ~matches:[ fm "vrf_id" (exact16 1) ]
         (single "no_action" []));
  if has "router_interface_table" then
    List.iter
      (fun id ->
        emit
          (Entry.make ~table:"router_interface_table"
             ~matches:[ fm "router_interface_id" (exact16 id) ]
             (single "set_port_and_src_mac"
                [ bv16 (1 + (id mod 32)); Rng.bitvec rng 48 ])))
      nh_ids;
  if has "neighbor_table" then
    List.iter
      (fun id ->
        emit
          (Entry.make ~table:"neighbor_table"
             ~matches:
               [ fm "router_interface_id" (exact16 id);
                 fm "neighbor_id" (exact16 id) ]
             (single "set_dst_mac" [ Rng.bitvec rng 48 ])))
      nh_ids;
  if has "nexthop_table" then
    List.iter
      (fun id ->
        emit
          (Entry.make ~table:"nexthop_table"
             ~matches:[ fm "nexthop_id" (exact16 id) ]
             (single "set_ip_nexthop" [ bv16 id; bv16 id ])))
      nh_ids;
  (* Make the routes reachable: classify IPv4 into VRF 1 and L3-admit the
     bench's destination MAC, as [generate] does. *)
  if has "acl_pre_ingress_table" then
    emit
      (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
         ~matches:
           [ fm "is_ipv4"
               (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
         (single "set_vrf" [ bv16 1 ]));
  if has "l3_admit_table" then
    emit
      (Entry.make ~table:"l3_admit_table" ~priority:1
         ~matches:
           [ fm "dst_mac"
               (Entry.M_ternary
                  (Ternary.exact
                     (Bitvec.of_int64 ~width:48 (Int64.of_int 0x020000000A01)))) ]
         (single "l3_admit" []));
  (* Unique /24s: first octet 10 + (i lsr 16) — sixteen /8s cover 2^20
     routes — octets 2-3 carry the low 16 index bits. *)
  if has "ipv4_table" then
    for i = 0 to n - 1 do
      let v =
        Bitvec.logor
          (Bitvec.shift_left (Bitvec.of_int ~width:32 (10 + (i lsr 16))) 24)
          (Bitvec.shift_left (Bitvec.of_int ~width:32 (i land 0xFFFF)) 8)
      in
      emit
        (Entry.make ~table:"ipv4_table"
           ~matches:
             [ fm "vrf_id" (exact16 1);
               fm "ipv4_dst" (Entry.M_lpm (Prefix.make v 24)) ]
           (single "set_nexthop_id"
              [ bv16 (1 + (i mod List.length nh_ids)) ]))
    done;
  List.rev !out

let scale_acls ?(seed = 7) (program : Ast.program) n =
  let info = P4info.of_program program in
  ignore (Rng.create seed);
  let out = ref [] in
  (match P4info.find_table info "acl_ingress_table" with
  | None -> ()
  | Some ti ->
      let has_dst = P4info.find_match_field ti "dst_ip" <> None in
      for i = 0 to n - 1 do
        (* Unique fully-masked dst under 150.0.0.0/8; distinct priorities
           keep every entry observable regardless of overlap. *)
        let matches =
          [ fm "is_ipv4"
              (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
          @
          if has_dst then
            [ fm "dst_ip"
                (Entry.M_ternary
                   (Ternary.exact
                      (Bitvec.logor
                         (Bitvec.shift_left (Bitvec.of_int ~width:32 150) 24)
                         (Bitvec.of_int ~width:32 (i land 0xFFFFFF))))) ]
          else []
        in
        out :=
          Entry.make ~table:"acl_ingress_table" ~priority:(i + 1) ~matches
            (single (if i mod 2 = 0 then "no_action" else "drop") [])
          :: !out
      done);
  List.rev !out
