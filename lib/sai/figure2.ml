(** The exact routing pipeline of the paper's Figure 2, plus the table
    entries of Figure 3 — used by the quickstart example and by tests that
    mirror the paper's running example. *)

module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Header = Switchv_packet.Header
module Entry = Switchv_p4runtime.Entry
module C = Components
open Ast

let nexthop_port_action =
  (* A minimal nexthop semantics so Figure 2's set_nexthop_id has an
     observable effect: the nexthop id doubles as the egress port. *)
  { a_name = "set_nexthop_id";
    a_params = [ param "nexthop_id" 16 ];
    a_body =
      [ S_assign (meta "nexthop_id", E_param "nexthop_id");
        S_assign (std "egress_port", E_param "nexthop_id") ] }

let program =
  { p_name = "figure2_routing";
    p_headers = [ Header.ethernet; Header.ipv4; Header.ipv6 ];
    p_metadata = [ ("vrf_id", 16); ("nexthop_id", 16) ];
    p_parser =
      { start = "start";
        states =
          [ { ps_name = "start";
              ps_extract = Some "ethernet";
              ps_next =
                T_select
                  ( E_field (field "ethernet" "ether_type"),
                    [ (Bitvec.of_int ~width:16 0x0800, "parse_ipv4");
                      (Bitvec.of_int ~width:16 0x86DD, "parse_ipv6") ],
                    "accept" ) };
            { ps_name = "parse_ipv4"; ps_extract = Some "ipv4"; ps_next = T_accept };
            { ps_name = "parse_ipv6"; ps_extract = Some "ipv6"; ps_next = T_accept } ] };
    p_actions = [ C.no_action; C.drop; C.set_vrf; nexthop_port_action ];
    p_tables =
      [ { t_name = "acl_pre_ingress_table";
          t_id = 1;
          t_keys =
            [ { k_name = "dst_ip";
                k_expr = E_field (field "ipv4" "dst_addr");
                k_kind = Ternary;
                k_refers_to = None } ];
          t_actions = [ "set_vrf"; "no_action" ];
          t_default_action = ("no_action", []);
          t_size = 32;
          t_entry_restriction = None;
          t_selector = false };
        { t_name = "vrf_table";
          t_id = 2;
          t_keys =
            [ { k_name = "vrf_id";
                k_expr = E_field (meta "vrf_id");
                k_kind = Exact;
                k_refers_to = None } ];
          t_actions = [ "no_action" ];
          t_default_action = ("no_action", []);
          t_size = 64;
          t_entry_restriction = Some (C.restriction "vrf_id != 0");
          t_selector = false };
        { t_name = "ipv4_table";
          t_id = 3;
          t_keys =
            [ { k_name = "vrf_id";
                k_expr = E_field (meta "vrf_id");
                k_kind = Exact;
                k_refers_to = Some ("vrf_table", "vrf_id") };
              { k_name = "ipv4_dst";
                k_expr = E_field (field "ipv4" "dst_addr");
                k_kind = Lpm;
                k_refers_to = None } ];
          t_actions = [ "drop"; "set_nexthop_id" ];
          t_default_action = ("drop", []);
          t_size = 128;
          t_entry_restriction = None;
          t_selector = false } ];
    p_ingress =
      seq
        [ C_table "acl_pre_ingress_table";
          C_table "vrf_table";
          C_if (B_is_valid "ipv4", C_table "ipv4_table", C_nop) ];
    p_egress = C_nop }

let info = P4info.of_program program

let () = Switchv_p4ir.Typecheck.check_exn program

(* --- Figure 3 entries ------------------------------------------------------ *)

let vrf_entry n =
  Entry.make ~table:"vrf_table"
    ~matches:[ { fm_field = "vrf_id"; fm_value = M_exact (Bitvec.of_int ~width:16 n) } ]
    (Single { ai_name = "no_action"; ai_args = [] })

let ipv4_entry ~vrf ~prefix ~action =
  Entry.make ~table:"ipv4_table"
    ~matches:
      [ { fm_field = "vrf_id"; fm_value = M_exact (Bitvec.of_int ~width:16 vrf) };
        { fm_field = "ipv4_dst"; fm_value = M_lpm (Prefix.of_ipv4_string prefix) } ]
    action

(** The entries of Figure 3 with the paper's validity verdicts. [v1] and
    [i1]/[i5] are valid; the rest are invalid for the stated reason. *)
let v1 = vrf_entry 1

let v2 = vrf_entry 0
(** invalid: violates [vrf_id != 0] *)

let v3 =
  Entry.make ~table:"vrf_table"
    ~matches:[ { fm_field = "vrf_id"; fm_value = M_exact (Bitvec.of_int ~width:16 3) } ]
    (Single { ai_name = "set_nexthop_id"; ai_args = [ Bitvec.of_int ~width:16 1 ] })
(** invalid: action not permitted by vrf_table *)

let i1 =
  ipv4_entry ~vrf:1 ~prefix:"10.*.*.*"
    ~action:(Single { ai_name = "set_nexthop_id"; ai_args = [ Bitvec.of_int ~width:16 3 ] })

let i2 =
  ipv4_entry ~vrf:5 ~prefix:"10.*.*.*"
    ~action:(Single { ai_name = "drop"; ai_args = [] })
(** invalid at runtime: vrf 5 does not exist (dangling @refers_to) *)

let i3 =
  ipv4_entry ~vrf:1 ~prefix:"10.*.*.*"
    ~action:(Single { ai_name = "set_nexthop_id"; ai_args = [] })
(** invalid: missing action argument *)

let i4 =
  Entry.make ~table:"ipv4_table"
    ~matches:
      [ { fm_field = "vrf_id"; fm_value = M_exact (Bitvec.of_int ~width:16 1) };
        { fm_field = "ipv4_dst";
          fm_value =
            M_lpm (Prefix.make (Bitvec.of_hex_string ~width:128 "0DB8") 16) } ]
    (Single { ai_name = "set_nexthop_id"; ai_args = [ Bitvec.of_int ~width:16 1 ] })
(** invalid: an IPv6-width value in the IPv4 key *)

let i5 =
  ipv4_entry ~vrf:1 ~prefix:"10.0.*.*"
    ~action:(Single { ai_name = "set_nexthop_id"; ai_args = [ Bitvec.of_int ~width:16 10 ] })

let figure3_valid = [ v1; i1; i5 ]
let figure3_invalid = [ v2; v3; i2; i3; i4 ]
