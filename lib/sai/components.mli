(** Shared building blocks of the SAI-style P4 models (§3 "Role Specific
    Instantiations"): the common component library from which the
    role-specific programs ([Middleblock], [Wan], [Tor], [Cerberus]) are
    instantiated. Each function returns actions/tables/parser fragments in
    terms of the common metadata schema ({!metadata}).

    Table sizes encode the hardware's guaranteed minimums (§3 "Bounded
    Internal Resources"); [@refers_to] annotations encode SAI's allocation
    discipline (VRFs, nexthops, RIFs, neighbors, mirror sessions must exist
    before use). *)

module Ast = Switchv_p4ir.Ast

val restriction : string -> Switchv_p4constraints.Constraint_lang.t
(** Parse an entry-restriction; raises on syntax errors (model bug). *)

val metadata : (string * int) list
(** The common user-metadata schema: vrf_id, l3_admit, nexthop_id,
    wcmp_group_id, router_interface_id, neighbor_id, is_ipv4, is_ipv6,
    tunnel_id, tunnel_encap. *)

val standard_parser : Ast.parser
(** ethernet → (ipv4 | ipv6 | arp) → (tcp | udp | icmp). *)

val parser_with_gre : Ast.parser
(** [standard_parser] extended with an IPv4-protocol-47 → GRE branch, for
    the tunnel-modeling roles (WAN, Cerberus). *)

val standard_headers : Switchv_packet.Header.t list
val headers_with_gre : Switchv_packet.Header.t list

(** {1 Actions}

    [trap] = punt + drop; [acl_copy] = punt while forwarding; [set_vrf]
    writes meta.vrf_id; [set_ip_nexthop] takes RIF + neighbor parameters;
    [mirror] writes std.mirror_session; [set_gre_encap]/[gre_decap] are the
    Cerberus/WAN tunnel actions. *)

val no_action : Ast.action
val drop : Ast.action
val trap : Ast.action
val acl_copy : Ast.action
val set_vrf : Ast.action
val l3_admit_action : Ast.action
val set_nexthop_id : Ast.action
val set_wcmp_group_id : Ast.action
val set_ip_nexthop : Ast.action
val set_port_and_src_mac : Ast.action
val set_dst_mac : Ast.action
val mirror : Ast.action
val egress_set_src_mac : Ast.action
val set_gre_encap : Ast.action
val gre_decap : Ast.action
val set_tunnel_id : Ast.action

val common_actions : Ast.action list
(** All actions except the tunnel ones (usable by programs without a GRE
    header). *)

val tunnel_actions : Ast.action list
(** [set_gre_encap], [gre_decap], [set_tunnel_id] — for programs that
    declare the GRE header and a tunnel table (WAN, Cerberus). *)

(** {1 Tables}

    Each constructor takes the table id to use in this instantiation. *)

val vrf_table : id:int -> Ast.table
(** No-op allocation table, entry restriction [vrf_id != 0] (Figure 2). *)

val acl_pre_ingress_table : id:int -> Ast.table
(** Pre-ingress ACL assigning VRFs; set_vrf param [@refers_to] vrf_table. *)

val l3_admit_table : id:int -> Ast.table

val ipv4_table : ?extra_actions:string list -> id:int -> unit -> Ast.table
(** vrf_id exact [@refers_to vrf_table] + dst lpm; actions drop /
    set_nexthop_id / set_wcmp_group_id (Figure 2's ipv4_tbl), plus any
    [extra_actions] (e.g. [set_tunnel_id] in the WAN role). *)

val ipv6_table : ?extra_actions:string list -> id:int -> unit -> Ast.table

val wcmp_group_table : id:int -> Ast.table
(** One-shot action-selector table (WCMP). *)

val nexthop_table : id:int -> Ast.table
val router_interface_table : id:int -> Ast.table
val neighbor_table : id:int -> Ast.table
val mirror_session_table : id:int -> Ast.table
(** Logical table (§3 "Mirror Sessions"): programmed by the controller,
    never applied in the pipeline; the harness derives the interpreter's
    mirror map from its entries. *)

val acl_ingress_table :
  ?name:string -> id:int -> keys:Ast.key list -> restriction:string -> unit -> Ast.table
(** Role-specific ACL: the key set varies per role (§3). *)

val acl_egress_table : id:int -> Ast.table
val egress_router_interface_table : id:int -> Ast.table
(** Egress replica of the RIF table (§3 "P4 Language Features": components
    used at both ingress and egress must be modeled as replicated tables). *)

val tunnel_table : id:int -> Ast.table
val decap_table : id:int -> Ast.table

(** {1 Pipeline fragments} *)

val classify_ip : Ast.control
(** Set meta.is_ipv4 / is_ipv6 from header validity. *)

val ttl_guard : Ast.control
(** The fixed-function TTL 0/1 trap (§6.1 "new chip" bug site). *)

val routing_core : Ast.control
(** l3_admit → (ipv4|ipv6) route → wcmp → nexthop → rif → neighbor. *)

val ingress_acl_keys_middleblock : Ast.key list
val ingress_acl_keys_tor : Ast.key list
val ingress_acl_keys_wan : Ast.key list
