(** The WAN role instantiation ("Inst2"): the larger production model of
    the paper's Table 3 (1314 entries). Beyond the middleblock blueprint it
    adds GRE tunnel encapsulation (routes may resolve to tunnels) and a
    second, QoS-oriented ingress ACL stage. *)

module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module C = Components
open Ast

let program =
  { p_name = "sai_wan";
    p_headers = C.headers_with_gre;
    p_metadata = C.metadata;
    p_parser = C.parser_with_gre;
    p_actions = C.common_actions @ C.tunnel_actions;
    p_tables =
      [ C.acl_pre_ingress_table ~id:1;
        C.vrf_table ~id:2;
        C.l3_admit_table ~id:3;
        C.ipv4_table ~id:4 ~extra_actions:[ "set_tunnel_id" ] ();
        C.ipv6_table ~id:5 ~extra_actions:[ "set_tunnel_id" ] ();
        C.wcmp_group_table ~id:6;
        C.nexthop_table ~id:7;
        C.router_interface_table ~id:8;
        C.neighbor_table ~id:9;
        C.acl_ingress_table ~id:10 ~keys:C.ingress_acl_keys_wan
          ~restriction:"!(is_ipv4 == 1 && is_ipv6 == 1) && dscp < 64" ();
        C.acl_ingress_table ~name:"acl_ingress_qos_table" ~id:14
          ~keys:
            [ C.ingress_acl_keys_wan |> List.hd;
              { k_name = "dscp";
                k_expr = E_field (field "ipv4" "dscp");
                k_kind = Ternary;
                k_refers_to = None } ]
          ~restriction:"dscp < 64" ();
        C.acl_egress_table ~id:11;
        C.mirror_session_table ~id:12;
        C.egress_router_interface_table ~id:13;
        C.tunnel_table ~id:15 ];
    p_ingress =
      seq
        [ C.classify_ip;
          C_table "acl_pre_ingress_table";
          C_table "vrf_table";
          C.routing_core;
          C_if
            ( B_eq (E_field (meta "tunnel_encap"), E_const (Switchv_bitvec.Bitvec.of_int ~width:1 1)),
              C_table "tunnel_table",
              C_nop );
          C.ttl_guard;
          C_table "acl_ingress_table";
          C_table "acl_ingress_qos_table" ];
    p_egress = seq [ C_table "egress_router_interface_table"; C_table "acl_egress_table" ] }

let info = P4info.of_program program

let () = Switchv_p4ir.Typecheck.check_exn program
