(** Production-like table-entry workloads.

    The paper seeds p4-symbolic with "a replay of production table entries"
    (§2). We have no production fabric, so this module synthesises entry
    sets with the same structure: a referentially-coherent object graph
    (VRFs → RIFs → neighbors → nexthops → WCMP groups → routes → ACLs)
    at the paper's scales — 798 entries for Inst1 (middleblock) and 1314
    for Inst2 (WAN), per Table 3. Generation is deterministic in the
    seed. *)

module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry

type profile = {
  vrfs : int;
  rifs : int;
  neighbors : int;
  nexthops : int;
  wcmp_groups : int;
  ipv4_routes : int;
  ipv6_routes : int;
  acl_pre : int;
  acl_ingress : int;
  acl_egress : int;
  mirror_sessions : int;
  l3_admits : int;
  tunnels : int;
  egress_rifs : int;
}

val total : profile -> int

val inst1 : profile
(** Sums to 798 (Table 3, Inst1). *)

val inst2 : profile
(** Sums to 1314 (Table 3, Inst2). *)

val small : profile
(** A fast profile for unit tests (~60 entries). *)

val scaled : float -> profile -> profile
(** Scale every component count (at least 1 where the base is nonzero). *)

val generate : ?seed:int -> Ast.program -> profile -> Entry.t list
(** Entries in dependency order (references always precede referents), so
    installing them sequentially never dangles. Components whose table does
    not exist in the program are skipped. *)

val mirror_map : Entry.t list -> (int * int) list
(** Derive the interpreter's mirror-session → port map from the
    mirror_session_table entries. *)

val scale_routes : ?seed:int -> ?nexthops:int -> Ast.program -> int -> Entry.t list
(** A fixed small nexthop dependency chain followed by [n] unique-/24
    IPv4 routes (up to 2^20 before prefixes repeat), in dependency order.
    The scale workload for the indexed-match bench (`BENCH_scale.json`). *)

val scale_acls : ?seed:int -> Ast.program -> int -> Entry.t list
(** [n] ternary ACL ingress entries with unique fully-masked targets and
    distinct priorities. *)
