(** The paper's running example: the exact routing pipeline of Figure 2
    and the table entries of Figure 3 with their validity verdicts. *)

module Entry = Switchv_p4runtime.Entry

val program : Switchv_p4ir.Ast.program
val info : Switchv_p4ir.P4info.t

(** The Figure 3 entries. [v1], [i1], [i5] are valid; [v2] violates the
    [vrf_id != 0] restriction, [v3] uses a non-permitted action, [i2]
    references unallocated VRF 5, [i3] is missing its action argument,
    [i4] carries an IPv6-width value in the IPv4 key. *)

val v1 : Entry.t
val v2 : Entry.t
val v3 : Entry.t
val i1 : Entry.t
val i2 : Entry.t
val i3 : Entry.t
val i4 : Entry.t
val i5 : Entry.t

val figure3_valid : Entry.t list
val figure3_invalid : Entry.t list
