(** The Cerberus P4 model (§6): a vendor stack with a more involved
    pipeline than PINS — GRE decapsulation at ingress and encapsulation
    after routing on top of the SAI routing core. *)

val program : Switchv_p4ir.Ast.program
val info : Switchv_p4ir.P4info.t
