(** The WAN role instantiation — the paper's "Inst2" production model
    (Table 3: 1314 entries): the middleblock blueprint plus GRE tunnel
    encapsulation and a second, QoS-oriented ingress ACL stage. *)

val program : Switchv_p4ir.Ast.program
val info : Switchv_p4ir.P4info.t
