(** The middleblock role instantiation ("Inst1"): the PINS P4 model used in
    the paper's performance evaluation with 798 production entries. *)

module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module C = Components
open Ast

let program =
  { p_name = "sai_middleblock";
    p_headers = C.standard_headers;
    p_metadata = C.metadata;
    p_parser = C.standard_parser;
    p_actions = C.common_actions;
    p_tables =
      [ C.acl_pre_ingress_table ~id:1;
        C.vrf_table ~id:2;
        C.l3_admit_table ~id:3;
        C.ipv4_table ~id:4 ();
        C.ipv6_table ~id:5 ();
        C.wcmp_group_table ~id:6;
        C.nexthop_table ~id:7;
        C.router_interface_table ~id:8;
        C.neighbor_table ~id:9;
        C.acl_ingress_table ~id:10 ~keys:C.ingress_acl_keys_middleblock
          ~restriction:"!(is_ipv4 == 1 && is_ipv6 == 1)" ();
        C.acl_egress_table ~id:11;
        C.mirror_session_table ~id:12;
        C.egress_router_interface_table ~id:13 ];
    p_ingress =
      seq
        [ C.classify_ip;
          C_table "acl_pre_ingress_table";
          C_table "vrf_table";
          C.routing_core;
          C.ttl_guard;
          C_table "acl_ingress_table" ];
    p_egress = seq [ C_table "egress_router_interface_table"; C_table "acl_egress_table" ] }

let info = P4info.of_program program

let () = Switchv_p4ir.Typecheck.check_exn program
