(* Staged evaluator: a one-time compilation pass that turns each parser
   state, expression, action, table and pipeline of a P4 model into OCaml
   closures, replacing {!Interp}'s per-packet AST walk. The API mirrors
   [Interp] ([run] / [run_info] / [run_packet_out] / [enumerate_behaviors])
   and is behavior-identical by construction:

   - the per-packet runtime state is [Interp.rt] itself, built by
     [Interp.fresh_rt] and finished by [Interp.finish], so deparsing,
     drop/punt/mirror resolution and trace assembly share the reference
     code path;
   - coverage counters are emitted with the same keys — branch ids are
     baked at staging with the identical pre-order numbering
     [Interp.exec_control] / [Interp.count_ifs] use, and action-edge keys
     are memoized strings equal to [Interp.cov_action]'s — so greybox
     scheduling, taint accounting and the coverage map observe nothing
     different;
   - hash calls go through [Interp.hash_value] on the shared [rt], so
     [ri_hash_calls] and seeded/fixed hash semantics are unchanged;
   - table lookups are served by {!State.index_lookup} (the lib/match
     indexed structures), which implements the same (rank, seq) precedence
     as [Interp.ordered_entries] + first-match — see that comment for the
     tie-break contract.

   [Interp] stays the retained linear-scan reference: campaigns run with
   [--no-compile] must be byte-identical (cmp-gated by `make check-scale`),
   and test/test_match.ml drives both evaluators differentially. *)

module Bitvec = Switchv_bitvec.Bitvec
module Packet = Switchv_packet.Packet
module Header = Switchv_packet.Header
module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Match = Switchv_match.Index
module Telemetry = Switchv_telemetry.Telemetry

type ctx = { program : Ast.program; pnames : string array }

(* --- expressions ---------------------------------------------------------- *)

let rec cexpr ctx (e : Ast.expr) : Interp.rt -> Bitvec.t array -> Bitvec.t =
  match e with
  | E_const c -> fun _ _ -> c
  | E_field fr -> (
      let key = Interp.fkey fr.fr_header fr.fr_field in
      match Ast.field_width ctx.program fr with
      | w ->
          let zero = Bitvec.zero w in
          fun rt _ -> (
            match Hashtbl.find_opt rt.Interp.fields key with
            | Some v -> v
            | None -> zero)
      | exception _ ->
          (* Unknown field: defer to the reference reader so the failure
             surfaces at evaluation time, exactly like the interpreter. *)
          fun rt _ -> Interp.read_field rt fr)
  | E_param name -> (
      let rec find i =
        if i >= Array.length ctx.pnames then None
        else if String.equal ctx.pnames.(i) name then Some i
        else find (i + 1)
      in
      match find 0 with
      | Some i -> fun _ args -> args.(i)
      | None -> fun _ _ -> invalid_arg ("Interp: unbound action parameter " ^ name))
  | E_not a ->
      let ca = cexpr ctx a in
      fun rt args -> Bitvec.lognot (ca rt args)
  | E_and (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.logand (ca rt args) (cb rt args)
  | E_or (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.logor (ca rt args) (cb rt args)
  | E_xor (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.logxor (ca rt args) (cb rt args)
  | E_add (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.add (ca rt args) (cb rt args)
  | E_sub (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.sub (ca rt args) (cb rt args)
  | E_slice (hi, lo, a) ->
      let ca = cexpr ctx a in
      fun rt args -> Bitvec.extract ~hi ~lo (ca rt args)
  | E_concat (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.concat (ca rt args) (cb rt args)
  | E_hash (_, args) ->
      let cs = List.map (cexpr ctx) args in
      fun rt a ->
        Bitvec.of_int ~width:16 (Interp.hash_value rt (List.map (fun c -> c rt a) cs))

let rec cbexpr ctx (b : Ast.bexpr) : Interp.rt -> Bitvec.t array -> bool =
  match b with
  | B_true -> fun _ _ -> true
  | B_false -> fun _ _ -> false
  | B_is_valid h -> fun rt _ -> Interp.is_valid rt h
  | B_eq (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.equal (ca rt args) (cb rt args)
  | B_ne (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> not (Bitvec.equal (ca rt args) (cb rt args))
  | B_ult (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.ult (ca rt args) (cb rt args)
  | B_ule (a, b) ->
      let ca = cexpr ctx a and cb = cexpr ctx b in
      fun rt args -> Bitvec.ule (ca rt args) (cb rt args)
  | B_not a ->
      let ca = cbexpr ctx a in
      fun rt args -> not (ca rt args)
  | B_and (a, b) ->
      (* && / || keep the interpreter's short-circuiting, so hash-call
         counts behind an untaken arm stay identical. *)
      let ca = cbexpr ctx a and cb = cbexpr ctx b in
      fun rt args -> ca rt args && cb rt args
  | B_or (a, b) ->
      let ca = cbexpr ctx a and cb = cbexpr ctx b in
      fun rt args -> ca rt args || cb rt args

(* --- statements and actions ----------------------------------------------- *)

let cstmt ctx (s : Ast.stmt) : Interp.rt -> Bitvec.t array -> unit =
  match s with
  | S_nop -> fun _ _ -> ()
  | S_assign (fr, e) ->
      let key = Interp.fkey fr.fr_header fr.fr_field in
      let ce = cexpr ctx e in
      fun rt args -> Hashtbl.replace rt.Interp.fields key (ce rt args)
  | S_set_valid (h, b) ->
      let zeros =
        if not b then []
        else
          match Ast.find_header ctx.program h with
          | None -> []
          | Some hdr ->
              List.map
                (fun (f : Header.field) ->
                  (Interp.fkey h f.f_name, Bitvec.zero f.f_width))
                hdr.Header.fields
      in
      fun rt _ ->
        Hashtbl.replace rt.Interp.valid h b;
        if b then
          List.iter
            (fun (k, z) ->
              if not (Hashtbl.mem rt.Interp.fields k) then
                Hashtbl.replace rt.Interp.fields k z)
            zeros

type caction = { ca_params : int; ca_body : (Interp.rt -> Bitvec.t array -> unit) list }

let caction ctx (a : Ast.action) =
  let pnames = Array.of_list (List.map (fun (p : Ast.param) -> p.p_name) a.a_params) in
  let ctx = { ctx with pnames } in
  { ca_params = Array.length pnames; ca_body = List.map (cstmt ctx) a.a_body }

let run_caction ca rt args =
  (* Arity mismatches fail exactly where [Interp.exec_action]'s
     [List.map2] would. *)
  if Array.length args <> ca.ca_params then invalid_arg "List.map2";
  List.iter (fun s -> s rt args) ca.ca_body

(* --- tables ---------------------------------------------------------------- *)

let kind_of = function
  | Ast.Exact -> Match.Exact
  | Ast.Lpm -> Match.Lpm
  | Ast.Ternary -> Match.Ternary
  | Ast.Optional -> Match.Optional

type ctable = {
  ct_name : string;
  ct_keys : (Interp.rt -> Bitvec.t) array;
  ct_specs : State.key_spec array;
  ct_default : caction * Bitvec.t array * string;  (* action, args, name *)
  ct_default_cov : string;                          (* cov.action.<t>.miss.<d> *)
  ct_hit_cov : (string, string) Hashtbl.t;          (* action -> memoized key *)
}

type staged = {
  st_parse : Interp.rt -> string -> unit;
  st_ingress : Interp.rt -> unit;
  st_egress : Interp.rt -> unit;
}

let hit_cov ct aname =
  match Hashtbl.find_opt ct.ct_hit_cov aname with
  | Some k -> k
  | None ->
      let k = "cov.action." ^ ct.ct_name ^ ".hit." ^ aname in
      Hashtbl.add ct.ct_hit_cov aname k;
      k

(* Flow-dependent WCMP selector inputs, mirroring
   [Interp.selector_hash_inputs]: every field of every currently valid
   header, in program header order. Field keys and default zeros are
   precomputed at staging. *)
let cselector_inputs program =
  let headers =
    List.map
      (fun (h : Header.t) ->
        ( h.Header.name,
          List.map
            (fun (f : Header.field) ->
              (Interp.fkey h.Header.name f.f_name, Bitvec.zero f.f_width))
            h.Header.fields ))
      program.Ast.p_headers
  in
  fun rt ->
    List.concat_map
      (fun (hname, fields) ->
        if Interp.is_valid rt hname then
          List.map
            (fun (key, zero) ->
              match Hashtbl.find_opt rt.Interp.fields key with
              | Some v -> v
              | None -> zero)
            fields
        else [])
      headers

let ctable ctx (table : Ast.table) =
  let specs =
    Array.of_list
      (List.map
         (fun (k : Ast.key) ->
           { State.ks_name = k.k_name;
             ks_width = Ast.key_width ctx.program table k;
             ks_kind = kind_of k.k_kind })
         table.t_keys)
  in
  let keys =
    Array.of_list
      (List.map
         (fun (k : Ast.key) ->
           let ce = cexpr ctx k.k_expr in
           fun rt -> ce rt [||])
         table.t_keys)
  in
  let dname, dargs = table.t_default_action in
  let daction = caction ctx (Ast.find_action_exn ctx.program dname) in
  { ct_name = table.t_name;
    ct_keys = keys;
    ct_specs = specs;
    ct_default = (daction, Array.of_list dargs, dname);
    ct_default_cov = "cov.action." ^ table.t_name ^ ".miss." ^ dname;
    ct_hit_cov = Hashtbl.create 8 }

let apply_ctable ctx actions selector_inputs ct rt =
  let n = Array.length ct.ct_keys in
  let values = Array.init n (fun i -> ct.ct_keys.(i) rt) in
  let invoke label (ai : Entry.action_invocation) =
    let ca =
      match Hashtbl.find_opt actions ai.Entry.ai_name with
      | Some ca -> ca
      | None ->
          (* Raises [Invalid_argument] with the interpreter's message. *)
          ignore (Ast.find_action_exn ctx.program ai.Entry.ai_name);
          assert false
    in
    rt.Interp.trace <- (ct.ct_name, label ^ ai.Entry.ai_name) :: rt.Interp.trace;
    Telemetry.incr (Telemetry.get ()) (hit_cov ct ai.Entry.ai_name);
    run_caction ca rt (Array.of_list ai.Entry.ai_args)
  in
  match
    State.index_lookup rt.Interp.cfg.Interp.state ~table:ct.ct_name ~keys:ct.ct_specs
      values
  with
  | Some e -> (
      match e.Entry.e_action with
      | Entry.Single ai -> invoke "" ai
      | Entry.Weighted members ->
          let total = List.fold_left (fun acc (_, w) -> acc + w) 0 members in
          let h = Interp.hash_value rt (selector_inputs rt) mod total in
          let rec pick h = function
            | [] -> assert false
            | (ai, w) :: rest -> if h < w then ai else pick (h - w) rest
          in
          invoke "wcmp:" (pick h members))
  | None ->
      let daction, dargs, dname = ct.ct_default in
      rt.Interp.trace <- (ct.ct_name, "<default>" ^ dname) :: rt.Interp.trace;
      Telemetry.incr (Telemetry.get ()) ct.ct_default_cov;
      run_caction daction rt dargs

(* --- controls -------------------------------------------------------------- *)

(* Branch ids are baked at staging with the pre-order numbering of
   [Interp.exec_control] (incremented at each C_if, then-arm before
   else-arm), so cov.branch.N.* counters line up with Symexec goals. *)
let rec ccontrol ctx actions tables selector_inputs next (c : Ast.control) :
    Interp.rt -> unit =
  match c with
  | C_nop -> fun _ -> ()
  | C_stmt s ->
      let cs = cstmt ctx s in
      fun rt -> cs rt [||]
  | C_seq (a, b) ->
      let ca = ccontrol ctx actions tables selector_inputs next a in
      let cb =
        ccontrol ctx actions tables selector_inputs (next + Interp.count_ifs a) b
      in
      fun rt ->
        ca rt;
        cb rt
  | C_table name -> (
      match Hashtbl.find_opt tables name with
      | Some ct -> fun rt -> apply_ctable ctx actions selector_inputs ct rt
      | None ->
          (* Unknown table: fail at application time like the interpreter. *)
          fun rt -> Interp.apply_table rt name)
  | C_if (cond, a, b) ->
      let cc = cbexpr ctx cond in
      let kt = "cov.branch." ^ string_of_int next ^ ".then" in
      let ke = "cov.branch." ^ string_of_int next ^ ".else" in
      let ca = ccontrol ctx actions tables selector_inputs (next + 1) a in
      let cb =
        ccontrol ctx actions tables selector_inputs (next + 1 + Interp.count_ifs a) b
      in
      fun rt ->
        let taken = cc rt [||] in
        Telemetry.incr (Telemetry.get ()) (if taken then kt else ke);
        if taken then ca rt else cb rt

(* --- parser ---------------------------------------------------------------- *)

type ctrans =
  | CT_accept
  | CT_select of (Interp.rt -> Bitvec.t) * (Bitvec.t * string) list * string

type cstate = {
  cs_extract : (Interp.rt -> Bitvec.t option -> int -> int ref -> unit) option;
  cs_next : ctrans;
}

let cextract ctx hdr_name =
  match Ast.find_header ctx.program hdr_name with
  | None -> fun _ _ _ _ -> raise (Interp.Parse_failure ("unknown header " ^ hdr_name))
  | Some hdr ->
      let w = Header.width hdr in
      let fields =
        List.map
          (fun (f : Header.field) -> (Interp.fkey hdr_name f.f_name, f.f_width))
          hdr.Header.fields
      in
      fun rt all total_bits offset ->
        if !offset + w > total_bits then
          raise
            (Interp.Parse_failure
               (Printf.sprintf "truncated packet: need %d bits for %s" w hdr_name));
        let all = Option.get all in
        List.iter
          (fun (key, fw) ->
            let hi = total_bits - 1 - !offset in
            let lo = hi - fw + 1 in
            Hashtbl.replace rt.Interp.fields key (Bitvec.extract ~hi ~lo all);
            offset := !offset + fw)
          fields;
        Hashtbl.replace rt.Interp.valid hdr_name true

let cparse ctx =
  let states = Hashtbl.create 16 in
  List.iter
    (fun (s : Ast.parser_state) ->
      (* First definition wins, like the interpreter's [List.find_opt]. *)
      if not (Hashtbl.mem states s.ps_name) then
        Hashtbl.add states s.ps_name
          { cs_extract = Option.map (cextract ctx) s.ps_extract;
            cs_next =
              (match s.ps_next with
              | T_accept -> CT_accept
              | T_select (e, cases, default) ->
                  let ce = cexpr ctx e in
                  CT_select ((fun rt -> ce rt [||]), cases, default)) })
    ctx.program.p_parser.states;
  let start = ctx.program.p_parser.start in
  fun rt bytes ->
    let total_bits = 8 * String.length bytes in
    let all = if bytes = "" then None else Some (Bitvec.of_bytes_be bytes) in
    let offset = ref 0 in
    let rec step name fuel =
      if fuel = 0 then raise (Interp.Parse_failure "parser did not terminate")
      else begin
        match Hashtbl.find_opt states name with
        | None -> raise (Interp.Parse_failure ("unknown parser state " ^ name))
        | Some st -> (
            Option.iter (fun ex -> ex rt all total_bits offset) st.cs_extract;
            match st.cs_next with
            | CT_accept -> ()
            | CT_select (ce, cases, default) ->
                let v = ce rt in
                let target =
                  match List.find_opt (fun (c, _) -> Bitvec.equal c v) cases with
                  | Some (_, t) -> t
                  | None -> default
                in
                if String.equal target "accept" then () else step target (fuel - 1))
      end
    in
    step start 64;
    if !offset mod 8 <> 0 then
      raise (Interp.Parse_failure "parsed headers not byte-aligned");
    rt.Interp.payload <-
      String.sub bytes (!offset / 8) (String.length bytes - (!offset / 8))

(* --- staging --------------------------------------------------------------- *)

let build program =
  let ctx = { program; pnames = [||] } in
  let actions = Hashtbl.create 32 in
  List.iter
    (fun (a : Ast.action) ->
      if not (Hashtbl.mem actions a.a_name) then
        Hashtbl.add actions a.a_name (caction ctx a))
    program.p_actions;
  let tables = Hashtbl.create 16 in
  List.iter
    (fun (t : Ast.table) ->
      if not (Hashtbl.mem tables t.t_name) then Hashtbl.add tables t.t_name (ctable ctx t))
    program.p_tables;
  let selector_inputs = cselector_inputs program in
  { st_parse = cparse ctx;
    st_ingress = ccontrol ctx actions tables selector_inputs 1 program.p_ingress;
    st_egress =
      ccontrol ctx actions tables selector_inputs
        (1 + Interp.count_ifs program.p_ingress)
        program.p_egress }

(* Staged pipelines are memoized per program by physical equality with a
   small bound, like [Coverage.edge_keys]: campaigns reuse a handful of
   long-lived program values, so the cache is effectively a per-program
   one-time cost. *)
let cache : (Ast.program * staged) list ref = ref []
let cache_bound = 8

let stage program =
  match List.find_opt (fun (p, _) -> p == program) !cache with
  | Some (_, s) -> s
  | None ->
      let s = build program in
      cache := (program, s) :: List.filteri (fun i _ -> i < cache_bound - 1) !cache;
      s

(* --- top level -------------------------------------------------------------- *)

let run_rt (cfg : Interp.config) ~ingress_port bytes =
  let s = stage cfg.Interp.program in
  let rt = Interp.fresh_rt cfg in
  Interp.write_field rt (Ast.std "ingress_port") (Bitvec.of_int ~width:16 ingress_port);
  s.st_parse rt bytes;
  s.st_ingress rt;
  s.st_egress rt;
  rt

let run cfg ~ingress_port bytes = Interp.finish (run_rt cfg ~ingress_port bytes)

let run_info cfg ~ingress_port bytes =
  let rt = run_rt cfg ~ingress_port bytes in
  { Interp.ri_behavior = Interp.finish rt;
    ri_hash_calls = rt.Interp.hash_calls;
    ri_valid =
      List.filter_map
        (fun (h : Header.t) ->
          if Interp.is_valid rt h.Header.name then Some h.Header.name else None)
        cfg.Interp.program.p_headers }

let run_packet cfg ~ingress_port packet = run cfg ~ingress_port (Packet.to_bytes packet)

let run_packet_out (cfg : Interp.config) ~egress_port packet =
  match egress_port with
  | Some port ->
      { Interp.b_egress = Some port;
        b_punted = false;
        b_mirrors = [];
        b_packet = Packet.to_bytes packet;
        b_trace = [ ("<packet-out>", "direct") ] }
  | None ->
      let s = stage cfg.Interp.program in
      let rt = Interp.fresh_rt cfg in
      Interp.write_field rt (Ast.std "submit_to_ingress") (Bitvec.of_int ~width:1 1);
      s.st_parse rt (Packet.to_bytes packet);
      s.st_ingress rt;
      s.st_egress rt;
      Interp.finish rt

let enumerate_behaviors ?(max_rounds = 32) cfg ~ingress_port bytes =
  let rounds = min max_rounds (Interp.hash_rounds cfg) in
  let rec go round acc =
    if round >= rounds then List.rev acc
    else begin
      let b = run { cfg with Interp.hash_mode = Interp.Fixed round } ~ingress_port bytes in
      if List.exists (Interp.behavior_equal b) acc then go (round + 1) acc
      else go (round + 1) (b :: acc)
    end
  in
  go 0 []
