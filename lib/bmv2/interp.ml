module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Packet = Switchv_packet.Packet
module Header = Switchv_packet.Header
module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Telemetry = Switchv_telemetry.Telemetry

type hash_mode = Seeded of int | Fixed of int

type config = {
  program : Ast.program;
  state : State.t;
  hash_mode : hash_mode;
  mirror_map : (int * int) list;
}

type behavior = {
  b_egress : int option;
  b_punted : bool;
  b_mirrors : (int * string) list;
  b_packet : string;
  b_trace : (string * string) list;
}

let behavior_equal a b =
  a.b_egress = b.b_egress && a.b_punted = b.b_punted && a.b_mirrors = b.b_mirrors
  && (a.b_egress = None || String.equal a.b_packet b.b_packet)

let pp_behavior fmt b =
  (match b.b_egress with
  | Some p ->
      Format.fprintf fmt "forward(port=%d, %d bytes, %s)" p (String.length b.b_packet)
        (String.sub (Digest.to_hex (Digest.string b.b_packet)) 0 8)
  | None -> Format.fprintf fmt "drop");
  if b.b_punted then Format.fprintf fmt " + punt";
  List.iter (fun (p, _) -> Format.fprintf fmt " + mirror(port=%d)" p) b.b_mirrors

exception Parse_failure of string

(* Mutable per-packet execution state. *)
type rt = {
  cfg : config;
  fields : (string, Bitvec.t) Hashtbl.t;    (* "hdr.field" -> value *)
  valid : (string, bool) Hashtbl.t;         (* header name -> validity *)
  mutable payload : string;
  mutable trace : (string * string) list;
  mutable hash_calls : int;
}

let fkey hdr field = hdr ^ "." ^ field

let field_width rt (fr : Ast.field_ref) = Ast.field_width rt.cfg.program fr

let read_field rt (fr : Ast.field_ref) =
  match Hashtbl.find_opt rt.fields (fkey fr.fr_header fr.fr_field) with
  | Some v -> v
  | None -> Bitvec.zero (field_width rt fr)

let write_field rt (fr : Ast.field_ref) v =
  Hashtbl.replace rt.fields (fkey fr.fr_header fr.fr_field) v

let is_valid rt hdr = Option.value ~default:false (Hashtbl.find_opt rt.valid hdr)

(* FNV-1a over the big-endian bytes of the argument values, plus seed. *)
let concrete_hash seed values =
  let h = ref (0x811C9DC5 lxor seed) in
  List.iter
    (fun v ->
      let padded = Bitvec.zero_extend (((Bitvec.width v + 7) / 8) * 8) v in
      String.iter
        (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
        (Bitvec.to_bytes_be padded))
    values;
  !h land 0xFFFF

let hash_value rt values =
  rt.hash_calls <- rt.hash_calls + 1;
  match rt.cfg.hash_mode with
  | Seeded seed -> concrete_hash seed values
  | Fixed n -> n

let rec eval_expr rt params (e : Ast.expr) : Bitvec.t =
  match e with
  | E_const c -> c
  | E_field fr -> read_field rt fr
  | E_param name -> (
      match List.assoc_opt name params with
      | Some v -> v
      | None -> invalid_arg ("Interp: unbound action parameter " ^ name))
  | E_not a -> Bitvec.lognot (eval_expr rt params a)
  | E_and (a, b) -> Bitvec.logand (eval_expr rt params a) (eval_expr rt params b)
  | E_or (a, b) -> Bitvec.logor (eval_expr rt params a) (eval_expr rt params b)
  | E_xor (a, b) -> Bitvec.logxor (eval_expr rt params a) (eval_expr rt params b)
  | E_add (a, b) -> Bitvec.add (eval_expr rt params a) (eval_expr rt params b)
  | E_sub (a, b) -> Bitvec.sub (eval_expr rt params a) (eval_expr rt params b)
  | E_slice (hi, lo, a) -> Bitvec.extract ~hi ~lo (eval_expr rt params a)
  | E_concat (a, b) -> Bitvec.concat (eval_expr rt params a) (eval_expr rt params b)
  | E_hash (_, args) ->
      Bitvec.of_int ~width:16 (hash_value rt (List.map (eval_expr rt params) args))

let rec eval_bexpr rt params (b : Ast.bexpr) : bool =
  match b with
  | B_true -> true
  | B_false -> false
  | B_is_valid h -> is_valid rt h
  | B_eq (a, b) -> Bitvec.equal (eval_expr rt params a) (eval_expr rt params b)
  | B_ne (a, b) -> not (Bitvec.equal (eval_expr rt params a) (eval_expr rt params b))
  | B_ult (a, b) -> Bitvec.ult (eval_expr rt params a) (eval_expr rt params b)
  | B_ule (a, b) -> Bitvec.ule (eval_expr rt params a) (eval_expr rt params b)
  | B_not a -> not (eval_bexpr rt params a)
  | B_and (a, b) -> eval_bexpr rt params a && eval_bexpr rt params b
  | B_or (a, b) -> eval_bexpr rt params a || eval_bexpr rt params b

(* --- parsing ------------------------------------------------------------- *)

let parse_packet rt bytes =
  let total_bits = 8 * String.length bytes in
  let all = if bytes = "" then None else Some (Bitvec.of_bytes_be bytes) in
  let offset = ref 0 in
  let extract_header hdr_name =
    let hdr =
      match Ast.find_header rt.cfg.program hdr_name with
      | Some h -> h
      | None -> raise (Parse_failure ("unknown header " ^ hdr_name))
    in
    let w = Header.width hdr in
    if !offset + w > total_bits then
      raise (Parse_failure (Printf.sprintf "truncated packet: need %d bits for %s" w hdr_name));
    let all = Option.get all in
    List.iter
      (fun (f : Header.field) ->
        let hi = total_bits - 1 - !offset in
        let lo = hi - f.f_width + 1 in
        Hashtbl.replace rt.fields (fkey hdr_name f.f_name) (Bitvec.extract ~hi ~lo all);
        offset := !offset + f.f_width)
      hdr.Header.fields;
    Hashtbl.replace rt.valid hdr_name true
  in
  let find_state name =
    match
      List.find_opt
        (fun (s : Ast.parser_state) -> String.equal s.ps_name name)
        rt.cfg.program.p_parser.states
    with
    | Some s -> s
    | None -> raise (Parse_failure ("unknown parser state " ^ name))
  in
  let rec step state_name fuel =
    if fuel = 0 then raise (Parse_failure "parser did not terminate")
    else begin
      let state = find_state state_name in
      Option.iter extract_header state.ps_extract;
      match state.ps_next with
      | T_accept -> ()
      | T_select (e, cases, default) ->
          let v = eval_expr rt [] e in
          let target =
            match List.find_opt (fun (c, _) -> Bitvec.equal c v) cases with
            | Some (_, t) -> t
            | None -> default
          in
          if String.equal target "accept" then () else step target (fuel - 1)
    end
  in
  step rt.cfg.program.p_parser.start 64;
  if !offset mod 8 <> 0 then
    raise (Parse_failure "parsed headers not byte-aligned");
  rt.payload <- String.sub bytes (!offset / 8) (String.length bytes - (!offset / 8))

(* --- deparsing ----------------------------------------------------------- *)

let deparse rt =
  let bufs =
    List.filter_map
      (fun (h : Header.t) ->
        if is_valid rt h.name then begin
          let bits =
            List.fold_left
              (fun acc (f : Header.field) ->
                let v =
                  match Hashtbl.find_opt rt.fields (fkey h.name f.f_name) with
                  | Some v -> v
                  | None -> Bitvec.zero f.f_width
                in
                match acc with None -> Some v | Some acc -> Some (Bitvec.concat acc v))
              None h.fields
          in
          Option.map Bitvec.to_bytes_be bits
        end
        else None)
      rt.cfg.program.p_headers
  in
  String.concat "" bufs ^ rt.payload

(* --- table application --------------------------------------------------- *)

let match_value_ok key_value = function
  | Entry.M_exact v -> Bitvec.equal v key_value
  | Entry.M_lpm p -> Prefix.matches p key_value
  | Entry.M_ternary t -> Ternary.matches t key_value
  | Entry.M_optional (Some v) -> Bitvec.equal v key_value
  | Entry.M_optional None -> true

let entry_matches (table : Ast.table) key_values (e : Entry.t) =
  List.for_all
    (fun (k : Ast.key) ->
      let kv = List.assoc k.k_name key_values in
      match Entry.find_match e k.k_name with
      | None -> true (* omitted = wildcard *)
      | Some mv -> match_value_ok kv mv)
    table.t_keys

let lpm_specificity (table : Ast.table) (e : Entry.t) =
  List.fold_left
    (fun acc (k : Ast.key) ->
      match (k.k_kind, Entry.find_match e k.k_name) with
      | Ast.Lpm, Some (Entry.M_lpm p) -> acc + Prefix.len p
      | _ -> acc)
    0 table.t_keys

let requires_priority (table : Ast.table) =
  List.exists
    (fun (k : Ast.key) -> match k.k_kind with Ast.Ternary | Ast.Optional -> true | _ -> false)
    table.t_keys

(* Entries in match-precedence order: the first matching entry wins.
   Precedence is an explicit lexicographic order — (priority descending,
   insertion order ascending) for tables with ternary/optional keys,
   (LPM specificity descending, insertion order ascending) otherwise — so
   equal-priority entries resolve to the earliest-inserted one by
   contract, not as an accident of scan position. [State.entries_of]
   returns entries in insertion-seq order, which supplies the tie-break
   index here; [Switchv_match.Index] implements the same (rank, seq)
   order for the compiled evaluator's indexed lookup. *)
let ordered_entries (table : Ast.table) entries =
  let rank : Entry.t -> int =
    if requires_priority table then fun e -> -e.e_priority
    else fun e -> -lpm_specificity table e
  in
  List.mapi (fun i e -> (rank e, i, e)) entries
  |> List.sort (fun (ra, ia, _) (rb, ib, _) ->
         let c = Int.compare ra rb in
         if c <> 0 then c else Int.compare ia ib)
  |> List.map (fun (_, _, e) -> e)

let select_winner rt (table : Ast.table) key_values =
  let entries = ordered_entries table (State.entries_of rt.cfg.state table.t_name) in
  List.find_opt (entry_matches table key_values) entries

let exec_stmt rt params = function
  | Ast.S_nop -> ()
  | Ast.S_assign (fr, e) -> write_field rt fr (eval_expr rt params e)
  | Ast.S_set_valid (h, b) ->
      Hashtbl.replace rt.valid h b;
      if b then
        (* Newly added headers start zero-filled unless assigned. *)
        Option.iter
          (fun (hdr : Header.t) ->
            List.iter
              (fun (f : Header.field) ->
                if not (Hashtbl.mem rt.fields (fkey h f.f_name)) then
                  Hashtbl.replace rt.fields (fkey h f.f_name) (Bitvec.zero f.f_width))
              hdr.fields)
          (Ast.find_header rt.cfg.program h)

let exec_action rt (action : Ast.action) args =
  let params =
    List.map2 (fun (p : Ast.param) arg -> (p.p_name, arg)) action.a_params args
  in
  List.iter (exec_stmt rt params) action.a_body

let selector_hash_inputs rt =
  (* Flow-dependent inputs: every field of every currently valid header. *)
  List.concat_map
    (fun (h : Header.t) ->
      if is_valid rt h.name then
        List.map
          (fun (f : Header.field) ->
            match Hashtbl.find_opt rt.fields (fkey h.name f.f_name) with
            | Some v -> v
            | None -> Bitvec.zero f.f_width)
          h.fields
      else [])
    rt.cfg.program.p_headers

let pick_weighted rt members =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 members in
  let h = hash_value rt (selector_hash_inputs rt) mod total in
  let rec pick h = function
    | [] -> assert false
    | (ai, w) :: rest -> if h < w then ai else pick (h - w) rest
  in
  pick h members

(* Edge-coverage accounting. Keys live in the ambient telemetry registry as
   plain counters so they merge across forked shards like every other
   counter; lib/obs turns them into the coverage map. Action keys name the
   CFG edge taken through a table ({!Switchv_analysis.Cfg.N_action}); branch
   keys use the same pre-order ids as [Symexec]'s [branch.N.*] goal labels. *)
let cov_action table_name ~hit aname =
  Telemetry.incr (Telemetry.get ())
    ("cov.action." ^ table_name ^ (if hit then ".hit." else ".miss.") ^ aname)

let cov_branch id taken =
  Telemetry.incr (Telemetry.get ())
    ("cov.branch." ^ string_of_int id ^ if taken then ".then" else ".else")

let apply_table rt table_name =
  let table = Ast.find_table_exn rt.cfg.program table_name in
  let key_values =
    List.map (fun (k : Ast.key) -> (k.k_name, eval_expr rt [] k.k_expr)) table.t_keys
  in
  let invoke label (ai : Entry.action_invocation) =
    let action = Ast.find_action_exn rt.cfg.program ai.ai_name in
    rt.trace <- (table_name, label ^ ai.ai_name) :: rt.trace;
    cov_action table_name ~hit:true ai.ai_name;
    exec_action rt action ai.ai_args
  in
  match select_winner rt table key_values with
  | Some e -> (
      match e.Entry.e_action with
      | Entry.Single ai -> invoke "" ai
      | Entry.Weighted members -> invoke "wcmp:" (pick_weighted rt members))
  | None ->
      let dname, dargs = table.t_default_action in
      let action = Ast.find_action_exn rt.cfg.program dname in
      rt.trace <- (table_name, "<default>" ^ dname) :: rt.trace;
      cov_action table_name ~hit:false dname;
      exec_action rt action dargs

let rec count_ifs = function
  | Ast.C_nop | Ast.C_stmt _ | Ast.C_table _ -> 0
  | Ast.C_seq (a, b) -> count_ifs a + count_ifs b
  | Ast.C_if (_, a, b) -> 1 + count_ifs a + count_ifs b

(* [next] is the branch id of the first [C_if] in execution order — the
   same pre-order numbering [Symexec.exec_control] and [Cfg.build] use
   (incremented at each [C_if], then-arm before else-arm, ingress before
   egress), so coverage counters line up with symbolic branch goals. *)
let rec exec_control rt next = function
  | Ast.C_nop -> ()
  | Ast.C_stmt s -> exec_stmt rt [] s
  | Ast.C_seq (a, b) ->
      exec_control rt next a;
      exec_control rt (next + count_ifs a) b
  | Ast.C_table name -> apply_table rt name
  | Ast.C_if (cond, a, b) ->
      let taken = eval_bexpr rt [] cond in
      cov_branch next taken;
      if taken then exec_control rt (next + 1) a
      else exec_control rt (next + 1 + count_ifs a) b

(* --- top level ------------------------------------------------------------ *)

let fresh_rt cfg =
  let rt =
    { cfg;
      fields = Hashtbl.create 64;
      valid = Hashtbl.create 8;
      payload = "";
      trace = [];
      hash_calls = 0 }
  in
  (* Standard and user metadata start zeroed. *)
  List.iter
    (fun (n, w) -> Hashtbl.replace rt.fields (fkey "std" n) (Bitvec.zero w))
    Ast.standard_metadata;
  List.iter
    (fun (n, w) -> Hashtbl.replace rt.fields (fkey "meta" n) (Bitvec.zero w))
    cfg.program.p_metadata;
  rt

let finish rt =
  let std name = read_field rt (Ast.std name) in
  let out_bytes = deparse rt in
  let dropped =
    (not (Bitvec.is_zero (std "drop"))) || Bitvec.is_zero (std "egress_port")
  in
  let punted = not (Bitvec.is_zero (std "punt")) in
  let mirrors =
    let session = Bitvec.to_int_exn (std "mirror_session") in
    if session = 0 then []
    else
      match List.assoc_opt session rt.cfg.mirror_map with
      | Some port -> [ (port, out_bytes) ]
      | None -> []
  in
  { b_egress = (if dropped then None else Some (Bitvec.to_int_exn (std "egress_port")));
    b_punted = punted;
    b_mirrors = mirrors;
    b_packet = out_bytes;
    b_trace = List.rev rt.trace }

let run_rt cfg ~ingress_port bytes =
  let rt = fresh_rt cfg in
  write_field rt (Ast.std "ingress_port") (Bitvec.of_int ~width:16 ingress_port);
  parse_packet rt bytes;
  exec_control rt 1 cfg.program.p_ingress;
  exec_control rt (1 + count_ifs cfg.program.p_ingress) cfg.program.p_egress;
  rt

let run cfg ~ingress_port bytes = finish (run_rt cfg ~ingress_port bytes)

type run_info = {
  ri_behavior : behavior;
  ri_hash_calls : int;
  ri_valid : string list;
}

let run_info cfg ~ingress_port bytes =
  let rt = run_rt cfg ~ingress_port bytes in
  { ri_behavior = finish rt;
    ri_hash_calls = rt.hash_calls;
    ri_valid =
      List.filter_map
        (fun (h : Header.t) -> if is_valid rt h.name then Some h.name else None)
        cfg.program.p_headers }

let run_packet cfg ~ingress_port packet = run cfg ~ingress_port (Packet.to_bytes packet)

let run_packet_out cfg ~egress_port packet =
  match egress_port with
  | Some port ->
      { b_egress = Some port;
        b_punted = false;
        b_mirrors = [];
        b_packet = Packet.to_bytes packet;
        b_trace = [ ("<packet-out>", "direct") ] }
  | None ->
      let rt = fresh_rt cfg in
      write_field rt (Ast.std "submit_to_ingress") (Bitvec.of_int ~width:1 1);
      parse_packet rt (Packet.to_bytes packet);
      exec_control rt 1 cfg.program.p_ingress;
      exec_control rt (1 + count_ifs cfg.program.p_ingress) cfg.program.p_egress;
      finish rt

(* Hash outcomes worth distinguishing: Fixed h selects WCMP bucket
   [h mod total_weight], so rounds 0 .. max_total_weight - 1 reach every
   member of every group. *)
let hash_rounds cfg =
  let max_total =
    List.fold_left
      (fun acc (t : Ast.table) ->
        if not t.t_selector then acc
        else
          List.fold_left
            (fun acc (e : Entry.t) ->
              match e.e_action with
              | Entry.Weighted members ->
                  max acc (List.fold_left (fun s (_, w) -> s + w) 0 members)
              | Entry.Single _ -> acc)
            acc
            (State.entries_of cfg.state t.t_name))
      1 cfg.program.p_tables
  in
  max_total

let enumerate_behaviors ?(max_rounds = 32) cfg ~ingress_port bytes =
  let rounds = min max_rounds (hash_rounds cfg) in
  let rec go round acc =
    if round >= rounds then List.rev acc
    else begin
      let b = run { cfg with hash_mode = Fixed round } ~ingress_port bytes in
      if List.exists (behavior_equal b) acc then go (round + 1) acc
      else go (round + 1) (b :: acc)
    end
  in
  go 0 []
