(** The reference P4 interpreter ("our BMv2").

    Executes a P4 model program concretely: byte-level parsing per the
    program's parser, match-action pipeline evaluation against installed
    table entries, action execution, and deparsing. SwitchV runs generated
    test packets through this interpreter and through the switch under
    test, and compares behaviours (§5).

    {b Hashing.} Black-box hashes ([E_hash], and the implicit selector hash
    of one-shot WCMP tables) are pluggable. [Seeded] mode computes a real
    (FNV-based) hash — what a switch might do. [Fixed n] makes every hash
    evaluate to [n] — the building block for round-robin behaviour-set
    enumeration (§5 "Hashing"): run with [Fixed 0], [Fixed 1], ... until
    the behaviour set stops growing. *)

module Bitvec = Switchv_bitvec.Bitvec
module Packet = Switchv_packet.Packet
module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State

type hash_mode =
  | Seeded of int       (** deterministic concrete hash with given seed *)
  | Fixed of int        (** every hash application evaluates to this value *)

type config = {
  program : Ast.program;
  state : State.t;
  hash_mode : hash_mode;
  mirror_map : (int * int) list;
      (** mirror session id -> destination port (the paper's logical
          mirror-session table, §3 "Mirror Sessions") *)
}

(** The externally observable outcome of processing one packet. *)
type behavior = {
  b_egress : int option;          (** [None] = dropped *)
  b_punted : bool;                (** a copy went to the controller *)
  b_mirrors : (int * string) list;(** mirror copies: port, wire bytes *)
  b_packet : string;              (** wire bytes of the forwarded packet *)
  b_trace : (string * string) list;
      (** debug: table name -> action taken (["<default>"] markers kept
          human-readable; not part of behaviour equality) *)
}

val behavior_equal : behavior -> behavior -> bool
(** Equality of observable outcome (egress, punt, mirrors, bytes if
    forwarded); ignores the trace. *)

val pp_behavior : Format.formatter -> behavior -> unit

exception Parse_failure of string
(** Raised when the input bytes cannot be parsed by the program's parser
    (truncated packet, or no transition matches and the default leads
    nowhere). *)

val run : config -> ingress_port:int -> string -> behavior
(** Process raw wire bytes arriving on [ingress_port]. *)

(** {!run} plus the execution facts a set-valued oracle needs: whether the
    run consulted a hash at all (if not, the behaviour is deterministic
    and needs no enumeration), and which headers were valid at deparse
    (the wire-format layout, for masked byte comparison). *)
type run_info = {
  ri_behavior : behavior;
  ri_hash_calls : int;    (** hash applications during the run *)
  ri_valid : string list; (** valid headers at deparse, in wire order *)
}

val run_info : config -> ingress_port:int -> string -> run_info

val run_packet : config -> ingress_port:int -> Packet.t -> behavior
(** Convenience: serialises the packet first. *)

val run_packet_out :
  config -> egress_port:int option -> Packet.t -> behavior
(** Controller packet-out: [Some port] bypasses the pipeline and emits
    directly; [None] submits to ingress (sets [std.submit_to_ingress]). *)

val enumerate_behaviors :
  ?max_rounds:int -> config -> ingress_port:int -> string -> behavior list
(** Round-robin over hash outcomes until the behaviour set stops growing
    (or [max_rounds], default 32): the set of possible behaviours of a
    non-deterministic program on this packet. *)

val ordered_entries : Ast.table -> Entry.t list -> Entry.t list
(** The table's entries in match-precedence order (priority descending for
    ternary/optional tables, LPM specificity descending otherwise, with
    insertion order breaking ties): the first entry in this list whose
    matches hold wins. Shared with p4-symbolic so that the reference
    interpreter and the symbolic encoding agree on tie-breaking. *)

val hash_rounds : config -> int
(** The number of distinct [Fixed] hash rounds needed to reach every WCMP
    member of every installed group (the maximum total weight). *)

(** {2 Evaluator internals}

    Shared with the staged evaluator ({!Compile}), which reuses the
    interpreter's per-packet runtime state, finishing logic and coverage
    emission so the two are behavior-identical by construction; also used
    by differential tests as the linear-scan reference. *)

(** Mutable per-packet execution state. *)
type rt = {
  cfg : config;
  fields : (string, Bitvec.t) Hashtbl.t;    (** "hdr.field" -> value *)
  valid : (string, bool) Hashtbl.t;         (** header name -> validity *)
  mutable payload : string;
  mutable trace : (string * string) list;
  mutable hash_calls : int;
}

val fkey : string -> string -> string
(** [fkey hdr field] is the [fields] key ["hdr.field"]. *)

val read_field : rt -> Ast.field_ref -> Bitvec.t
val write_field : rt -> Ast.field_ref -> Bitvec.t -> unit
val is_valid : rt -> string -> bool

val hash_value : rt -> Bitvec.t list -> int
(** Apply the configured hash, counting the call in [hash_calls]. *)

val fresh_rt : config -> rt
(** A runtime with standard and user metadata zeroed. *)

val finish : rt -> behavior
(** Deparse and resolve drop/punt/mirror into a behavior. *)

val count_ifs : Ast.control -> int

val apply_table : rt -> string -> unit
(** Reference table application (linear scan), including trace and
    coverage-counter emission. *)

val entry_matches : Ast.table -> (string * Bitvec.t) list -> Entry.t -> bool
(** Do the entry's field matches hold for the given key values? Omitted
    keys are wildcards. *)
