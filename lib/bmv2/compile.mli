(** The staged evaluator: compiles a P4 model once into OCaml closures
    (parser states, expressions, actions, tables, pipelines) and serves
    table lookups from indexed match structures
    ({!Switchv_match.Index} via {!State.index_lookup}), replacing the
    interpreter's per-packet AST walk and O(entries) scans.

    The API mirrors {!Interp} and is behavior-identical: same [behavior]
    (trace included), same coverage-counter keys (branch ids baked with
    the interpreter's pre-order numbering), same hash-call accounting,
    same [Parse_failure] messages. [Interp] remains the retained
    linear-scan reference — campaigns run with [--no-compile] must be
    byte-identical (see `make check-scale`), and test/test_match.ml
    drives both differentially.

    Staged pipelines are memoized per program value (physical equality,
    bounded), so staging is a one-time cost per long-lived program. *)

module Packet = Switchv_packet.Packet

val run : Interp.config -> ingress_port:int -> string -> Interp.behavior
val run_info : Interp.config -> ingress_port:int -> string -> Interp.run_info
val run_packet : Interp.config -> ingress_port:int -> Packet.t -> Interp.behavior

val run_packet_out :
  Interp.config -> egress_port:int option -> Packet.t -> Interp.behavior

val enumerate_behaviors :
  ?max_rounds:int -> Interp.config -> ingress_port:int -> string -> Interp.behavior list
