module Fabric = Switchv_topo.Fabric

type expectation =
  | Deliver_at of { x_switch : int; x_port : int; x_bytes : string }
  | Deliver_nowhere

let of_trace (t : Fabric.trace) =
  match t.Fabric.t_disposition with
  | Fabric.Delivered { d_switch; d_port; d_bytes } ->
      Deliver_at { x_switch = d_switch; x_port = d_port; x_bytes = d_bytes }
  | Fabric.Dropped _ | Fabric.Dead_hop _ | Fabric.Budget_exhausted _ ->
      Deliver_nowhere

let pp ppf = function
  | Deliver_at { x_switch; x_port; x_bytes } ->
      Format.fprintf ppf "deliver at sw%d port %d (%d bytes)" x_switch x_port
        (String.length x_bytes)
  | Deliver_nowhere -> Format.fprintf ppf "deliver nowhere"

let check ~bytes_equal expectation (trace : Fabric.trace) =
  let observed = trace.Fabric.t_disposition in
  let mismatch () =
    Error
      (Format.asprintf "expected %a, observed %a" pp expectation
         Fabric.pp_disposition observed)
  in
  match (expectation, observed) with
  | Deliver_at x, Fabric.Delivered { d_switch; d_port; d_bytes } ->
      if x.x_switch = d_switch && x.x_port = d_port && bytes_equal d_bytes x.x_bytes
      then Ok ()
      else if x.x_switch = d_switch && x.x_port = d_port then
        Error
          (Format.asprintf "delivered at sw%d port %d with wrong bytes"
             x.x_switch x.x_port)
      else mismatch ()
  | Deliver_at _, (Fabric.Dropped _ | Fabric.Dead_hop _ | Fabric.Budget_exhausted _)
  | Deliver_nowhere, Fabric.Delivered _ ->
      mismatch ()
  | Deliver_nowhere, (Fabric.Dropped _ | Fabric.Dead_hop _ | Fabric.Budget_exhausted _)
    ->
      Ok ()
