(** Set-valued data-plane oracle verdicts for nondeterministic models.

    The paper's oracle handles hashing/WCMP by round-robin enumeration of
    [Fixed] hash rounds and set membership. That is sound but expensive
    (one model execution per round, for every packet) and it is the only
    verdict available even for fully deterministic packets. This module
    consumes the static {!Switchv_analysis.Taint} summary to decide
    cheaply:

    - a single [Fixed 0] model run that matches the switch exactly is
      accepted outright (and, if the run consulted no hash, it is the
      complete behaviour set — no enumeration can add anything);
    - a differing switch behaviour is accepted without enumeration when it
      agrees with the model on every untainted observable: egress port
      inside the statically-computed candidate set (the ports reachable
      through tainted egress-writer tables' installed entries), punt and
      mirror flags equal, and forwarded bytes equal on every bit outside
      taint-reaching output fields;
    - anything else {e escalates} to the classic enumeration, whose
      verdict is authoritative — so the fast paths can only save work,
      never change an incident into a false positive or vice versa. In
      particular a [Seeded] switch run outside the candidate set is
      reported as a real incident, not noise.

    On hash-free programs (empty taint summary, one hash round) verdicts,
    model execution counts, and divergence behaviour sets are identical to
    plain enumeration, byte for byte.

    Telemetry: [oracle.dataplane_fast], [oracle.dataplane_set_admits],
    [oracle.dataplane_escalations], [oracle.enum_rounds_saved]. *)

module Interp = Switchv_bmv2.Interp
module Taint = Switchv_analysis.Taint

type t

val create : ?compile:bool -> Interp.config -> taint:Taint.summary -> t
(** [create cfg ~taint] precomputes the candidate egress-port set and the
    output byte mask. The config's hash mode is forced to [Fixed 0] (the
    reference round); pass {!Taint.empty} to disable set-valued verdicts
    (pure enumeration semantics). *)

val candidate_ports : t -> int list
(** The statically-computed egress candidate set, sorted: every port an
    installed entry or default action of a tainted egress-writer table can
    select. *)

type verdict =
  | Admitted
  | Diverged of Interp.behavior list
      (** the behaviours the model admits (the enumeration set, or the
          singleton [Fixed 0] behaviour for hash-free programs) — for
          incident messages *)

val judge :
  t -> ingress_port:int -> bytes:string -> switch:Interp.behavior -> verdict
(** Compare one switch behaviour against the model. Raises
    {!Interp.Parse_failure} like the underlying interpreter when [bytes]
    does not parse. *)

val judge_info :
  t -> ingress_port:int -> bytes:string -> switch:Interp.behavior ->
  verdict * Interp.run_info
(** Like {!judge}, also returning the reference [Fixed 0] run's info —
    fabric campaigns use [ri_hash_calls] to tell deterministic hops from
    hash-consulting ones and [ri_valid] to drive {!masked_bytes_equal} on
    end-to-end byte comparisons. *)

val masked_bytes_equal : t -> Interp.run_info -> string -> string -> bool
(** Taint-masked byte equality: walk the run's valid headers in wire
    order, ignore the bits of exit-tainted fields, compare everything else
    (including the payload) exactly. *)
