module Ast = Switchv_p4ir.Ast
module Bitvec = Switchv_bitvec.Bitvec
module Header = Switchv_packet.Header
module Entry = Switchv_p4runtime.Entry
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module Taint = Switchv_analysis.Taint
module Telemetry = Switchv_telemetry.Telemetry
module SSet = Set.Make (String)

type t = {
  dp_cfg : Interp.config;
  dp_compile : bool;
  dp_taint : Taint.summary;
  dp_rounds : int;
  dp_candidates : int list;
  dp_masked : SSet.t;
}

type verdict = Admitted | Diverged of Interp.behavior list

(* The static egress-port candidate set: every port an installed entry (or
   the default action) of a tainted egress-writer table can select. An
   over-approximation of the per-packet member set — any port outside it is
   definitely a fault; a port inside it that this packet could not reach is
   caught by enumeration only, which is the precision the paper's
   round-robin stub had. Unresolvable writes (egress computed from another
   field) simply contribute nothing: a missing candidate can only cause
   escalation, never a wrong acceptance. *)
let candidates (cfg : Interp.config) (taint : Taint.summary) =
  let program = cfg.Interp.program in
  let ports = ref [] in
  let add_port v =
    match Bitvec.to_int_exn v with 0 -> () | p -> ports := p :: !ports
  in
  List.iter
    (fun (tname, aname) ->
      match (Ast.find_table program tname, Ast.find_action program aname) with
      | Some table, Some action ->
          let egress_exprs =
            List.filter_map
              (function
                | Ast.S_assign (fr, e)
                  when String.equal fr.Ast.fr_header "std"
                       && String.equal fr.Ast.fr_field "egress_port" ->
                    Some e
                | _ -> None)
              action.Ast.a_body
          in
          let param_index p =
            let rec go i = function
              | [] -> None
              | (q : Ast.param) :: rest ->
                  if String.equal q.Ast.p_name p then Some i else go (i + 1) rest
            in
            go 0 action.Ast.a_params
          in
          List.iter
            (function
              | Ast.E_const c -> add_port c
              | Ast.E_param p -> (
                  match param_index p with
                  | None -> ()
                  | Some idx ->
                      List.iter
                        (fun (entry : Entry.t) ->
                          let invocations =
                            match entry.Entry.e_action with
                            | Entry.Single ai -> [ ai ]
                            | Entry.Weighted ms -> List.map fst ms
                          in
                          List.iter
                            (fun (ai : Entry.action_invocation) ->
                              if String.equal ai.Entry.ai_name aname then
                                Option.iter add_port
                                  (List.nth_opt ai.Entry.ai_args idx))
                            invocations)
                        (State.entries_of cfg.Interp.state tname);
                      let dname, dargs = table.Ast.t_default_action in
                      if String.equal dname aname then
                        Option.iter add_port (List.nth_opt dargs idx))
              | _ -> ())
            egress_exprs
      | _ -> ())
    taint.Taint.s_egress_writers;
  List.sort_uniq compare !ports

let create ?(compile = true) (cfg : Interp.config) ~taint =
  let cfg = { cfg with Interp.hash_mode = Interp.Fixed 0 } in
  { dp_cfg = cfg;
    dp_compile = compile;
    dp_taint = taint;
    dp_rounds = Interp.hash_rounds cfg;
    dp_candidates = candidates cfg taint;
    dp_masked =
      SSet.of_list (List.map fst taint.Taint.s_exit_fields) }

let candidate_ports t = t.dp_candidates

(* Byte comparison with taint-masked bits: walk the model's valid headers
   in wire order, skip the bits of exit-tainted fields, compare everything
   else (including the payload) exactly. *)
let masked_equal t (info : Interp.run_info) a b =
  String.length a = String.length b
  && begin
       let n = String.length a in
       let mask = Bytes.make n '\xff' in
       let bit = ref 0 in
       List.iter
         (fun hname ->
           match Ast.find_header t.dp_cfg.Interp.program hname with
           | None -> ()
           | Some h ->
               List.iter
                 (fun (f : Header.field) ->
                   if SSet.mem (hname ^ "." ^ f.Header.f_name) t.dp_masked then
                     for k = !bit to !bit + f.Header.f_width - 1 do
                       let byte = k / 8 and b_in = 7 - (k mod 8) in
                       if byte < n then
                         Bytes.set mask byte
                           (Char.chr
                              (Char.code (Bytes.get mask byte)
                              land (lnot (1 lsl b_in) land 0xff)))
                     done;
                   bit := !bit + f.Header.f_width)
                 h.Header.fields)
         info.Interp.ri_valid;
       let ok = ref true in
       for i = 0 to n - 1 do
         let m = Char.code (Bytes.get mask i) in
         if Char.code a.[i] land m <> Char.code b.[i] land m then ok := false
       done;
       !ok
     end

(* The set-valued acceptance test for a switch behaviour that differs from
   the [Fixed 0] model run: both sides forwarded, the egress port is either
   deterministic-and-equal or inside the static candidate set, punt and
   mirror observables agree exactly, and the forwarded bytes agree on every
   untainted bit. Validity-tainted headers make the wire layout itself
   nondeterministic, so their presence disables the fast test entirely. *)
let set_admits t (info : Interp.run_info) (switch : Interp.behavior) =
  let model = info.Interp.ri_behavior in
  info.Interp.ri_hash_calls > 0
  && t.dp_taint.Taint.s_valid_tainted = []
  && (match (switch.Interp.b_egress, model.Interp.b_egress) with
     | Some p, Some q ->
         (if SSet.mem "std.egress_port" t.dp_masked then
            p = q || List.mem p t.dp_candidates
          else p = q)
         && switch.Interp.b_punted = model.Interp.b_punted
         && switch.Interp.b_mirrors = model.Interp.b_mirrors
         && masked_equal t info switch.Interp.b_packet model.Interp.b_packet
     | _ -> false)

let judge_info t ~ingress_port ~bytes ~switch =
  let tele = Telemetry.get () in
  let info =
    (if t.dp_compile then Compile.run_info else Interp.run_info)
      t.dp_cfg ~ingress_port bytes
  in
  let verdict =
    if Interp.behavior_equal switch info.Interp.ri_behavior then begin
      Telemetry.incr tele "oracle.dataplane_fast";
      if t.dp_rounds > 1 then
        Telemetry.incr tele ~n:(t.dp_rounds - 1) "oracle.enum_rounds_saved";
      Admitted
    end
    else if t.dp_rounds <= 1 then
      (* Enumeration would run exactly one [Fixed 0] round — reuse it, so
         hash-free campaigns execute the model the same number of times and
         produce byte-identical incidents with the pass on or off. *)
      Diverged [ info.Interp.ri_behavior ]
    else if set_admits t info switch then begin
      Telemetry.incr tele "oracle.dataplane_set_admits";
      Telemetry.incr tele ~n:(t.dp_rounds - 1) "oracle.enum_rounds_saved";
      Admitted
    end
    else begin
      (* Escalate: the full round-robin enumeration is the authoritative
         verdict, so a fast-path refusal can never create a new false
         positive — only spend the rounds the fast path tried to save. *)
      Telemetry.incr tele "oracle.dataplane_escalations";
      let bs =
        (if t.dp_compile then Compile.enumerate_behaviors
         else Interp.enumerate_behaviors)
          t.dp_cfg ~ingress_port bytes
      in
      if List.exists (Interp.behavior_equal switch) bs then Admitted
      else Diverged bs
    end
  in
  (verdict, info)

let judge t ~ingress_port ~bytes ~switch =
  fst (judge_info t ~ingress_port ~bytes ~switch)

let masked_bytes_equal = masked_equal
