(** PTF-style end-to-end fabric assertions.

    A fabric expectation is derived from the reference model's trace and
    checked against the switch-side trace — the analogue of PTF's
    [verify_packet] / [verify_no_packet] pair: either the packet must come
    out of a specific (switch, port) edge with specific bytes, or it must
    not come out anywhere. Byte comparison is pluggable so the caller can
    pass {!Dataplane.masked_bytes_equal} and admit taint-masked
    differences on delivered bytes. *)

module Fabric = Switchv_topo.Fabric

type expectation =
  | Deliver_at of { x_switch : int; x_port : int; x_bytes : string }
      (** the packet must leave the fabric here, with these bytes *)
  | Deliver_nowhere
      (** the packet must not leave the fabric (drop, punt, dead hop,
          loop cut by the hop budget) *)

val of_trace : Fabric.trace -> expectation
(** The expectation a reference trace encodes: [Delivered] maps to
    {!Deliver_at}; every other disposition maps to {!Deliver_nowhere}. *)

val check :
  bytes_equal:(string -> string -> bool) ->
  expectation -> Fabric.trace -> (unit, string) result
(** [Error detail] describes the mismatch (expected vs observed
    disposition) for incident messages. *)

val pp : Format.formatter -> expectation -> unit
