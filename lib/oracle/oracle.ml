module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Validate = Switchv_p4runtime.Validate
module Telemetry = Switchv_telemetry.Telemetry

type t = {
  info : P4info.t;
  mutable state : State.t;
}

let create info = { info; state = State.create () }

let observed t = t.state

type expectation = Must_accept | Must_reject of string | May_either of string

type incident = {
  inc_kind :
    [ `Status_violation | `State_divergence | `Unresponsive | `P4info_rejected ];
  inc_detail : string;
}

let pp_incident fmt i =
  let kind =
    match i.inc_kind with
    | `Status_violation -> "status violation"
    | `State_divergence -> "state divergence"
    | `Unresponsive -> "unresponsive"
    | `P4info_rejected -> "p4info rejected"
  in
  Format.fprintf fmt "[%s] %s" kind i.inc_detail

let classify_with t index (u : Request.update) =
  let e = u.entry in
  match Validate.check_entry t.info e with
  | Error s -> Must_reject (Format.asprintf "invalid request: %a" Status.pp s)
  | Ok () -> (
      let exists = State.find t.state e <> None in
      match u.op with
      | Request.Insert -> (
          if exists then Must_reject "duplicate insert"
          else
            match
              Validate.check_references t.info e ~exists:(fun ~table ~key value ->
                  State.exists_value t.state ~table ~key value)
            with
            | Error s -> Must_reject (Format.asprintf "dangling reference: %a" Status.pp s)
            | Ok () -> (
                match P4info.find_table t.info e.e_table with
                | Some ti when State.count t.state e.e_table >= ti.ti_size ->
                    May_either "table at guaranteed capacity"
                | _ -> Must_accept))
      | Request.Modify -> (
          if not exists then Must_reject "modify of non-existent entry"
          else
            match
              Validate.check_references t.info e ~exists:(fun ~table ~key value ->
                  State.exists_value t.state ~table ~key value)
            with
            | Error s -> Must_reject (Format.asprintf "dangling reference: %a" Status.pp s)
            | Ok () -> Must_accept)
      | Request.Delete ->
          if not exists then Must_reject "delete of non-existent entry"
          else if State.is_referenced_by index (Option.get (State.find t.state e)) then
            Must_reject "delete of a referenced entry"
          else Must_accept)

let classify t u = classify_with t (State.reference_index t.state t.info) u

type detailed = {
  incidents : incident list;
  per_update_ok : bool list;
}

let incident_counter = function
  | `Status_violation -> "oracle.incidents.status_violation"
  | `State_divergence -> "oracle.incidents.state_divergence"
  | `Unresponsive -> "oracle.incidents.unresponsive"
  | `P4info_rejected -> "oracle.incidents.p4info_rejected"

let judge_batch_detailed t updates (resp : Request.write_response) ~read_back =
  let tele = Telemetry.get () in
  Telemetry.incr tele "oracle.batches_judged";
  Telemetry.incr ~n:(List.length updates) tele "oracle.updates_judged";
  let incidents = ref [] in
  let verdicts = ref [] in
  let add kind detail =
    Telemetry.incr tele (incident_counter kind);
    incidents := { inc_kind = kind; inc_detail = detail } :: !incidents
  in
  if List.length resp.statuses <> List.length updates then
    add `Status_violation
      (Printf.sprintf "response has %d statuses for %d updates"
         (List.length resp.statuses) (List.length updates));
  let n_unavailable =
    List.length
      (List.filter (fun (s : Status.t) -> s.code = Status.Unavailable) resp.statuses)
  in
  if n_unavailable > 0 && n_unavailable = List.length resp.statuses then
    add `Unresponsive "switch returned UNAVAILABLE for the entire batch";
  (* Status vector vs expectations, and the implied state. Capacity is
     judged against the whole batch: if the batch's inserts could take a
     table past its guaranteed size mid-batch, rejection of any insert to
     that table is admissible (the execution order is unspecified). *)
  let batch_inserts = Hashtbl.create 8 in
  List.iter
    (fun (u : Request.update) ->
      if u.op = Request.Insert then
        Hashtbl.replace batch_inserts u.entry.e_table
          (1 + Option.value ~default:0 (Hashtbl.find_opt batch_inserts u.entry.e_table)))
    updates;
  let implied = State.copy t.state in
  let ref_index = State.reference_index t.state t.info in
  if List.length resp.statuses = List.length updates then
    List.iter2
      (fun (u : Request.update) (s : Status.t) ->
        let expectation =
          match classify_with t ref_index u with
          | Must_accept
            when u.op = Request.Insert
                 && (match P4info.find_table t.info u.entry.e_table with
                    | Some ti ->
                        State.count t.state u.entry.e_table
                        + Option.value ~default:0
                            (Hashtbl.find_opt batch_inserts u.entry.e_table)
                        > ti.ti_size
                    | None -> false) ->
              May_either "batch may exceed guaranteed capacity"
          | e -> e
        in
        (match (expectation, Status.is_ok s) with
        | Must_accept, false ->
            verdicts := false :: !verdicts;
            add `Status_violation
              (Format.asprintf "valid update rejected (%a): %a" Status.pp s
                 Request.pp_update u)
        | Must_reject why, true ->
            verdicts := false :: !verdicts;
            add `Status_violation
              (Format.asprintf "invalid update accepted (%s): %a" why Request.pp_update u)
        | Must_accept, true | Must_reject _, false | May_either _, _ ->
            verdicts := true :: !verdicts);
        (* Build the state implied by the switch's own statuses. Apply only
           updates that make sense; contradictory accepts were already
           reported above. *)
        if Status.is_ok s then begin
          match u.op with
          | Request.Insert -> ignore (State.insert implied u.entry)
          | Request.Modify -> ignore (State.modify implied u.entry)
          | Request.Delete -> ignore (State.delete implied u.entry)
        end)
      updates resp.statuses;
  (* Read-back must equal the implied state. *)
  let actual = State.create () in
  List.iter
    (fun e -> ignore (State.insert actual e))
    read_back.Request.entries;
  if not (State.equal implied actual) then begin
    let diffs = State.diff implied actual in
    let shown = List.filteri (fun i _ -> i < 5) diffs in
    add `State_divergence
      (Printf.sprintf "switch state does not match reported statuses (%d differences): %s"
         (List.length diffs) (String.concat " | " shown))
  end;
  (* Adopt the switch's claimed state as the new baseline (§4.3: forget the
     prior state). *)
  t.state <- actual;
  { incidents = List.rev !incidents; per_update_ok = List.rev !verdicts }

let judge_batch t updates resp ~read_back =
  (judge_batch_detailed t updates resp ~read_back).incidents
