(** The P4Runtime oracle (§4.3).

    Judges whether a switch's responses to control-plane requests comply
    with the P4Runtime specification instantiated for the given P4 program.
    Because the specification under-specifies some behaviours (batch
    ordering, resource rejection beyond the guaranteed size), the oracle
    never predicts a single outcome: it classifies each update as
    must-accept, must-reject, or may-either, checks the response vector
    against that, and then reads the switch's state back to verify it is
    exactly the state implied by the statuses the switch itself reported.
    On success it {e forgets} the prior state and proceeds from the newly
    observed one, avoiding state-set explosion. *)

module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State

type t

val create : P4info.t -> t

val observed : t -> State.t
(** The oracle's current model of the switch state (updated after every
    judged batch). *)

type expectation = Must_accept | Must_reject of string | May_either of string

val classify : t -> Request.update -> expectation
(** State-independent validity (§4 "Valid and Invalid Requests") combined
    with the oracle's current state: invalid requests must be rejected;
    valid requests must be accepted unless the specification allows
    rejection in this state (duplicate insert, missing entry, dangling or
    still-referenced target, table beyond its guaranteed size). *)

type incident = {
  inc_kind :
    [ `Status_violation | `State_divergence | `Unresponsive | `P4info_rejected ];
  inc_detail : string;
}

val pp_incident : Format.formatter -> incident -> unit

val judge_batch :
  t ->
  Request.update list ->
  Request.write_response ->
  read_back:Request.read_response ->
  incident list
(** Judge one batch: response statuses against expectations, then the
    read-back state against the state implied by the reported statuses.
    Afterwards the oracle adopts the read-back state as its new baseline
    (even on incidents, so later batches are judged relative to what the
    switch actually claims). *)

type detailed = {
  incidents : incident list;
  per_update_ok : bool list;
      (** For each update, whether the switch's status was admissible —
          the raw signal behind the paper's §7 OKR metric "percentage of
          fuzzed table entries correctly handled by the switch". *)
}

val judge_batch_detailed :
  t ->
  Request.update list ->
  Request.write_response ->
  read_back:Request.read_response ->
  detailed
