(** The simulated switch-under-test.

    Mirrors the layering of a PINS switch (Figure 4): a P4Runtime server
    that validates and caches control-plane state, sync layers
    (orchestration agent + SyncD) that propagate it to the ASIC, and an
    ASIC data plane (driven by our reference interpreter over the ASIC's
    own copy of the state, with an internal, vendor-private hash seed).

    An unseeded stack is {e correct by construction} with respect to its P4
    model — SwitchV campaigns against it must report zero incidents (this
    is itself a test of SwitchV). Seeding {!Fault.t} values perturbs
    specific layers: server faults corrupt validation/read behaviour, sync
    faults desynchronise the ASIC state from the server's view, data-plane
    faults perturb packet behaviour. *)

module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp

type t

val create :
  ?faults:Fault.t list -> ?hash_seed:int -> ?compile:bool -> Ast.program -> t
(** [compile] (default [true]) selects the staged evaluator
    ({!Switchv_bmv2.Compile}) for the ASIC data plane; [false] falls back
    to the reference interpreter — behaviour is identical either way (the
    [--no-compile] escape hatch, cmp-gated by `make check-scale`). *)

val faults : t -> Fault.t list
val program : t -> Ast.program
val info : t -> P4info.t

val push_p4info : t -> Status.t
(** The "Set P4Info" step; must succeed before writes are accepted. *)

val write : t -> Request.write_request -> Request.write_response
val read : t -> Request.read_response

val inject : t -> ingress_port:int -> string -> Interp.behavior
(** Send wire bytes into the data plane. On a {!crashed} stack the packet
    is silently dropped (no egress, no punt) — a dead switch is link-dead,
    which fabric forwarding reports as a drop at the dead hop. *)

val packet_out : t -> Request.packet_out -> Interp.behavior
(** Same crashed-stack contract as {!inject}. *)

val crashed : t -> bool
(** True once a fault has driven the switch into an unresponsive state;
    subsequent RPCs return [Unavailable]. *)

val server_state : t -> State.t
(** The P4Runtime server's view (what [read] reflects); exposed for
    white-box tests. *)

val asic_state : t -> State.t
(** The ASIC's view; differs from [server_state] under sync faults. *)
