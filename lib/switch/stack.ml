module Ast = Switchv_p4ir.Ast
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Validate = Switchv_p4runtime.Validate
module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module Workload = Switchv_sai.Workload
module Telemetry = Switchv_telemetry.Telemetry

type t = {
  s_program : Ast.program;          (* the contract (what SwitchV validates against) *)
  asic_program : Ast.program;       (* the ASIC's actual behaviour (may be perturbed) *)
  s_info : P4info.t;
  s_faults : Fault.t list;
  server : State.t;
  asic : State.t;
  hash_seed : int;
  compile : bool;                   (* staged evaluator for the ASIC data plane *)
  mutable p4info_ok : bool;
  mutable is_crashed : bool;
}

(* --- fault lookup helpers -------------------------------------------------- *)

let fault_kinds t = List.map (fun (f : Fault.t) -> f.kind) t.s_faults

let has t pred = List.exists pred (fault_kinds t)

(* Record that a seeded fault actually changed observable behaviour.
   Counted per catalogue id ("fault.PINS-042"), so campaigns can see which
   seeded bugs fired — and how often — independent of detection. *)
let fire t pred =
  List.iter
    (fun (f : Fault.t) ->
      if pred f.Fault.kind then Telemetry.incr (Telemetry.get ()) ("fault." ^ f.id))
    t.s_faults

(* --- data-plane program perturbations -------------------------------------- *)

let reverse_bytes_expr e width =
  (* Byte-swap a value: the Cerberus endianness bug. *)
  let nbytes = width / 8 in
  let byte i = Ast.E_slice (((i + 1) * 8) - 1, i * 8, e) in
  let rec build i acc = if i >= nbytes then acc else build (i + 1) (Ast.E_concat (acc, byte i)) in
  build 1 (byte 0)

let perturb_program faults program =
  List.fold_left
    (fun (p : Ast.program) (f : Fault.t) ->
      match f.Fault.kind with
      | Fault.Encap_reversed_dst ->
          let actions =
            List.map
              (fun (a : Ast.action) ->
                if String.equal a.a_name "set_gre_encap" then
                  { a with
                    a_body =
                      List.map
                        (function
                          | Ast.S_assign (fr, Ast.E_param "encap_dst")
                            when String.equal fr.fr_field "dst_addr" ->
                              Ast.S_assign
                                (fr, reverse_bytes_expr (Ast.E_param "encap_dst") 32)
                          | s -> s)
                        a.a_body }
                else a)
              p.p_actions
          in
          { p with p_actions = actions }
      | _ -> p)
    program faults

let create ?(faults = []) ?(hash_seed = 0x5EED) ?(compile = true) program =
  { s_program = program;
    asic_program = perturb_program faults program;
    s_info = P4info.of_program program;
    s_faults = faults;
    server = State.create ();
    asic = State.create ();
    hash_seed;
    compile;
    p4info_ok = false;
    is_crashed = false }

let faults t = t.s_faults
let program t = t.s_program
let info t = t.s_info
let server_state t = t.server
let asic_state t = t.asic
let crashed t = t.is_crashed

let push_p4info t =
  if t.is_crashed then Status.make Status.Unavailable "switch is unresponsive"
  else if has t (function Fault.P4info_push_fails -> true | _ -> false) then begin
    fire t (function Fault.P4info_push_fails -> true | _ -> false);
    Status.make Status.Internal "failed to apply forwarding-pipeline config"
  end
  else begin
    t.p4info_ok <- true;
    Status.ok
  end

(* --- control plane ---------------------------------------------------------- *)

let unavailable = Status.make Status.Unavailable "switch is unresponsive"

(* Validation as the (possibly buggy) server performs it. *)
let server_validate t (e : Entry.t) =
  let skip_constraints =
    has t (function
      | Fault.Accept_constraint_violation tbl -> String.equal tbl e.e_table
      | _ -> false)
  in
  let accept_bad_weight =
    has t (function Fault.Accept_invalid_weight -> true | _ -> false)
  in
  let syntactic_result = Validate.syntactic t.s_info e in
  let syntactic_result =
    match syntactic_result with
    | Error s
      when accept_bad_weight
           && String.length s.Status.message >= 19
           && String.sub s.Status.message 0 19 = "non-positive weight" ->
        Ok ()
    | r -> r
  in
  match syntactic_result with
  | Error s -> Error s
  | Ok () ->
      if skip_constraints then Ok ()
      else begin
        match P4info.find_table t.s_info e.e_table with
        | None -> Ok ()
        | Some ti -> (
            match Validate.constraint_compliant ti e with
            | Ok true -> Ok ()
            | Ok false ->
                Error
                  (Status.makef Status.Invalid_argument
                     "entry violates @entry_restriction of table %s" ti.ti_name)
            | Error msg ->
                Error
                  (Status.makef Status.Invalid_argument
                     "entry restriction evaluation failed: %s" msg))
      end

let server_check_references t (e : Entry.t) =
  let skip =
    has t (function
      | Fault.Accept_dangling_reference tbl -> String.equal tbl e.e_table
      | _ -> false)
  in
  if skip then Ok ()
  else
    Validate.check_references t.s_info e ~exists:(fun ~table ~key value ->
        State.exists_value t.server ~table ~key value)

(* Capacity the server enforces: the guaranteed size, or an (incorrectly)
   smaller limit under a Resource_exhausted_early fault. *)
let capacity t table_name =
  match P4info.find_table t.s_info table_name with
  | None -> max_int
  | Some ti ->
      List.fold_left
        (fun cap k ->
          match k with
          | Fault.Resource_exhausted_early (tbl, limit) when String.equal tbl table_name ->
              min cap limit
          | _ -> cap)
        ti.ti_size (fault_kinds t)

(* Apply a server-accepted update to the ASIC, modulo sync-layer faults. *)
let sync_to_asic t (u : Request.update) =
  Telemetry.with_span (Telemetry.get ()) "switch.syncd.sync" @@ fun () ->
  let e = u.entry in
  let dropped =
    has t (function
      | Fault.Syncd_drops_table tbl -> String.equal tbl e.e_table
      | _ -> false)
  in
  if dropped then
    fire t (function
      | Fault.Syncd_drops_table tbl -> String.equal tbl e.e_table
      | _ -> false)
  else begin
    let e =
      if
        has t (function
          | Fault.Syncd_offsets_port_arg tbl -> String.equal tbl e.e_table
          | _ -> false)
      then begin
        fire t (function
          | Fault.Syncd_offsets_port_arg tbl -> String.equal tbl e.e_table
          | _ -> false);
        (* The ASIC receives port arguments off by one. *)
        let fix (ai : Entry.action_invocation) =
          if String.equal ai.ai_name "set_port_and_src_mac" then
            match ai.ai_args with
            | port :: rest ->
                { ai with ai_args = Bitvec.add port (Bitvec.of_int ~width:16 1) :: rest }
            | [] -> ai
          else ai
        in
        { e with
          e_action =
            (match e.e_action with
            | Entry.Single ai -> Entry.Single (fix ai)
            | Entry.Weighted ais -> Entry.Weighted (List.map (fun (ai, w) -> (fix ai, w)) ais)) }
      end
      else e
    in
    (* Buggy WCMP group handling: groups never make it to the ASIC, so
       packets resolving through them fall to the default (drop). *)
    let wcmp_lost =
      has t (function Fault.Wcmp_update_removes_member -> true | _ -> false)
      && (match e.e_action with Entry.Weighted _ -> true | Entry.Single _ -> false)
    in
    if wcmp_lost then
      fire t (function Fault.Wcmp_update_removes_member -> true | _ -> false)
    else
    match u.op with
    | Request.Insert -> ignore (State.insert t.asic e)
    | Request.Modify -> ignore (State.modify t.asic e)
    | Request.Delete -> ignore (State.delete t.asic e)
  end

let process_update t (u : Request.update) =
  let e = u.entry in
  match
    Telemetry.with_span (Telemetry.get ()) "switch.server.validate" (fun () ->
        server_validate t e)
  with
  | Error s -> s
  | Ok () -> (
      let spurious_reject =
        u.op = Request.Insert
        && has t (function
             | Fault.Reject_valid_insert tbl -> String.equal tbl e.e_table
             | _ -> false)
      in
      let reject_dup_wcmp =
        has t (function Fault.Reject_duplicate_wcmp_actions -> true | _ -> false)
        &&
        match e.e_action with
        | Entry.Weighted ais ->
            let names =
              List.map
                (fun ((ai : Entry.action_invocation), _) ->
                  Format.asprintf "%s(%s)" ai.ai_name
                    (String.concat "," (List.map Bitvec.to_hex_string ai.ai_args)))
                ais
            in
            List.length names <> List.length (List.sort_uniq String.compare names)
        | Entry.Single _ -> false
      in
      if spurious_reject then begin
        fire t (function
          | Fault.Reject_valid_insert tbl -> String.equal tbl e.e_table
          | _ -> false);
        Status.makef Status.Invalid_argument "internal: unsupported key format in table %s"
          e.e_table
      end
      else if reject_dup_wcmp then begin
        fire t (function Fault.Reject_duplicate_wcmp_actions -> true | _ -> false);
        Status.make Status.Invalid_argument "duplicate action in WCMP group"
      end
      else
        match u.op with
        | Request.Insert -> (
            match server_check_references t e with
            | Error s -> s
            | Ok () ->
                if State.count t.server e.e_table >= capacity t e.e_table then
                  Status.makef Status.Resource_exhausted "table %s is full" e.e_table
                else begin
                  match State.insert t.server e with
                  | Ok () ->
                      sync_to_asic t u;
                      Status.ok
                  | Error s ->
                      if
                        s.Status.code = Status.Already_exists
                        && has t (function
                             | Fault.Accept_duplicate_insert tbl ->
                                 String.equal tbl e.e_table
                             | _ -> false)
                      then begin
                        fire t (function
                          | Fault.Accept_duplicate_insert tbl ->
                              String.equal tbl e.e_table
                          | _ -> false);
                        Status.ok (* pretends to accept; keeps the original *)
                      end
                      else s
                end)
        | Request.Modify -> (
            match server_check_references t e with
            | Error s -> s
            | Ok () ->
                let keep_old =
                  has t (function
                    | Fault.Modify_keeps_old_args tbl -> String.equal tbl e.e_table
                    | _ -> false)
                in
                if keep_old then begin
                  fire t (function
                    | Fault.Modify_keeps_old_args tbl -> String.equal tbl e.e_table
                    | _ -> false);
                  if State.find t.server e <> None then Status.ok
                  else Status.makef Status.Not_found "no such entry in %s" e.e_table
                end
                else begin
                  match State.modify t.server e with
                  | Ok () ->
                      sync_to_asic t u;
                      Status.ok
                  | Error s -> s
                end)
        | Request.Delete -> (
            let leave =
              has t (function
                | Fault.Delete_leaves_entry tbl -> String.equal tbl e.e_table
                | _ -> false)
            in
            let spurious_vrf_refuse =
              String.equal e.e_table "vrf_table"
              && has t (function
                   | Fault.Reject_vrf_delete_with_any_routes -> true
                   | _ -> false)
              && (State.count t.server "ipv4_table" > 0
                 || State.count t.server "ipv6_table" > 0)
            in
            match State.find t.server e with
            | None -> Status.makef Status.Not_found "no such entry in %s" e.e_table
            | Some installed ->
                if spurious_vrf_refuse then begin
                  fire t (function
                    | Fault.Reject_vrf_delete_with_any_routes -> true
                    | _ -> false);
                  Status.make Status.Failed_precondition
                    "cannot delete VRF while routes exist"
                end
                else if State.is_referenced t.server t.s_info installed then
                  Status.make Status.Failed_precondition
                    "entry is referenced by other entries"
                else if leave then begin
                  fire t (function
                    | Fault.Delete_leaves_entry tbl -> String.equal tbl e.e_table
                    | _ -> false);
                  Status.ok
                end
                else begin
                  match State.delete t.server e with
                  | Ok () ->
                      sync_to_asic t u;
                      Status.ok
                  | Error s -> s
                end))

let write t (req : Request.write_request) =
  Telemetry.with_span (Telemetry.get ()) "switch.write"
    ~attrs:[ ("updates", string_of_int (List.length req.updates)) ]
  @@ fun () ->
  if t.is_crashed then
    { Request.statuses = List.map (fun _ -> unavailable) req.updates }
  else if not t.p4info_ok then
    { Request.statuses =
        List.map
          (fun _ -> Status.make Status.Failed_precondition "no forwarding pipeline config")
          req.updates }
  else begin
    (* Crash fault: too many deletes in one batch wedges the switch. *)
    let n_deletes =
      List.length (List.filter (fun (u : Request.update) -> u.op = Request.Delete) req.updates)
    in
    let crash_limit =
      List.fold_left
        (fun acc k ->
          match k with Fault.Crash_on_delete_sequence n -> min acc n | _ -> acc)
        max_int (fault_kinds t)
    in
    if n_deletes >= crash_limit then begin
      fire t (function Fault.Crash_on_delete_sequence _ -> true | _ -> false);
      t.is_crashed <- true;
      { Request.statuses = List.map (fun _ -> unavailable) req.updates }
    end
    else begin
      let fail_batch_on_missing_delete =
        has t (function Fault.Delete_nonexistent_fails_batch -> true | _ -> false)
        && List.exists
             (fun (u : Request.update) ->
               u.op = Request.Delete && State.find t.server u.entry = None)
             req.updates
      in
      if fail_batch_on_missing_delete then begin
        fire t (function Fault.Delete_nonexistent_fails_batch -> true | _ -> false);
        { Request.statuses =
            List.map
              (fun _ ->
                Status.make Status.Unknown "batch aborted: delete of non-existent entry")
              req.updates }
      end
      else
        { Request.statuses = List.map (process_update t) req.updates }
    end
  end

let read t =
  if t.is_crashed then { Request.entries = [] }
  else begin
    let entries = State.all t.server in
    let kept =
      List.filter
        (fun (e : Entry.t) ->
          not
            (has t (function
               | Fault.Read_drops_table tbl -> String.equal tbl e.e_table
               | _ -> false)))
        entries
    in
    if List.length kept <> List.length entries then
      fire t (function Fault.Read_drops_table _ -> true | _ -> false);
    let entries =
      if kept <> [] && has t (function Fault.Read_zeroes_priority -> true | _ -> false)
      then begin
        fire t (function Fault.Read_zeroes_priority -> true | _ -> false);
        List.map (fun (e : Entry.t) -> { e with e_priority = 0 }) kept
      end
      else kept
    in
    { Request.entries }
  end

(* --- data plane -------------------------------------------------------------- *)

let interp_config t =
  { Interp.program = t.asic_program;
    state = t.asic;
    hash_mode = Interp.Seeded t.hash_seed;
    mirror_map = Workload.mirror_map (State.all t.asic) }

(* Byte-level packet inspection for data-plane faults (models with a plain
   ethernet + ipv4 layout; offsets per the standard headers). *)
let ether_type bytes =
  if String.length bytes >= 14 then
    Some ((Char.code bytes.[12] lsl 8) lor Char.code bytes.[13])
  else None

let ipv4_field bytes offset len =
  match ether_type bytes with
  | Some 0x0800 when String.length bytes >= 14 + offset + len ->
      let v = ref 0 in
      for i = 0 to len - 1 do
        v := (!v lsl 8) lor Char.code bytes.[14 + offset + i]
      done;
      Some !v
  | _ -> None

let perturb_behavior t ~ingress_port in_bytes (b : Interp.behavior) =
  List.fold_left
    (fun (b : Interp.behavior) (f : Fault.t) ->
      (* Each arm returns [Some b'] when the fault's trigger condition held
         (a firing, counted by catalogue id) and [None] when it did not. *)
      let fired =
        match f.Fault.kind with
        | Fault.Drop_on_port p when ingress_port = p -> Some { b with b_egress = None }
        | Fault.Ttl_trap_always -> (
            match ipv4_field in_bytes 8 1 with
            | Some ttl when ttl <= 1 -> Some { b with b_egress = None; b_punted = true }
            | _ -> None)
        | Fault.Ttl_trap_threshold n -> (
            (* Trap threshold misprogrammed: the chip punts IPv4 arrivals
               with TTL <= n. Invisible to edge traffic injected above the
               threshold; bites once a path has decremented into it. *)
            match ipv4_field in_bytes 8 1 with
            | Some ttl when ttl <= n -> Some { b with b_egress = None; b_punted = true }
            | _ -> None)
        | Fault.Drop_dst_ip ip -> (
            (* Drops the whole /24 the address identifies (a route's worth of
               traffic), matching how such hardware bugs manifest. *)
            match ipv4_field in_bytes 16 4 with
            | Some dst
              when Bitvec.equal
                     (Bitvec.shift_right (Bitvec.of_int ~width:32 dst) 8)
                     (Bitvec.shift_right ip 8) ->
                Some { b with b_egress = None }
            | _ -> None)
        | Fault.Punt_ether_type et -> (
            match ether_type in_bytes with
            | Some t' when t' = et -> Some { b with b_punted = true }
            | _ -> None)
        | Fault.Dscp_remark_zero d -> (
            (* Re-marks any DSCP >= d to 0 on forwarded packets. *)
            match (b.b_egress, ipv4_field b.b_packet 1 1) with
            | Some _, Some tos when d > 0 && tos lsr 2 >= d ->
                let bytes = Bytes.of_string b.b_packet in
                Bytes.set bytes 15 (Char.chr (tos land 0x03));
                Some { b with b_packet = Bytes.to_string bytes }
            | _ -> None)
        | Fault.Mirror_ignored when b.b_mirrors <> [] -> Some { b with b_mirrors = [] }
        | Fault.Punt_lost when b.b_punted -> Some { b with b_punted = false }
        | Fault.Forward_wrong_port_for_port p -> (
            match b.b_egress with
            | Some p' when p' = p -> Some { b with b_egress = Some (p + 1) }
            | _ -> None)
        | _ -> None
      in
      match fired with
      | Some b' ->
          Telemetry.incr (Telemetry.get ()) ("fault." ^ f.id);
          b'
      | None -> b)
    b t.s_faults

let drop_behavior bytes =
  { Interp.b_egress = None;
    b_punted = false;
    b_mirrors = [];
    b_packet = bytes;
    b_trace = [ ("<fault>", "dropped") ] }

let crashed_behavior bytes =
  { Interp.b_egress = None;
    b_punted = false;
    b_mirrors = [];
    b_packet = bytes;
    b_trace = [ ("<crashed>", "dropped") ] }

let inject t ~ingress_port bytes =
  Telemetry.with_span (Telemetry.get ()) "switch.inject" @@ fun () ->
  Telemetry.incr (Telemetry.get ()) "switch.packets_injected";
  (* A crashed stack is link-dead: everything arriving at it vanishes.
     Matters for fabrics, where a crashed mid-path switch must read as a
     drop at the dead hop rather than as a live pipeline. *)
  if t.is_crashed then crashed_behavior bytes
  else
    match
      (if t.compile then Compile.run else Interp.run)
        (interp_config t) ~ingress_port bytes
    with
    | b -> perturb_behavior t ~ingress_port bytes b
    | exception Interp.Parse_failure _ -> drop_behavior bytes

let packet_out t (po : Request.packet_out) =
  Telemetry.with_span (Telemetry.get ()) "switch.packet_out" @@ fun () ->
  if t.is_crashed then
    crashed_behavior (Switchv_packet.Packet.to_bytes po.po_payload)
  else
  let submit_dropped =
    has t (function Fault.Submit_to_ingress_dropped -> true | _ -> false)
  in
  let punt_back =
    has t (function Fault.Packet_out_punted_back -> true | _ -> false)
  in
  match po.po_egress_port with
  | Some _ ->
      let b =
        (if t.compile then Compile.run_packet_out else Interp.run_packet_out)
          (interp_config t) ~egress_port:po.po_egress_port po.po_payload
      in
      if punt_back then begin
        fire t (function Fault.Packet_out_punted_back -> true | _ -> false);
        { b with b_punted = true }
      end
      else b
  | None ->
      if submit_dropped then begin
        fire t (function Fault.Submit_to_ingress_dropped -> true | _ -> false);
        drop_behavior (Switchv_packet.Packet.to_bytes po.po_payload)
      end
      else begin
        let b =
          (if t.compile then Compile.run_packet_out else Interp.run_packet_out)
            (interp_config t) ~egress_port:None po.po_payload
        in
        let bytes = Switchv_packet.Packet.to_bytes po.po_payload in
        perturb_behavior t ~ingress_port:0 bytes b
      end
