(** The seeded-bug catalogues for the two validated stacks.

    Modeled on the paper's Table 1 and Appendix A: 122 fault instances for
    the PINS stack and 32 for Cerberus, each with a component attribution,
    an expected detector, resolution-time metadata following the Figure 7
    distribution, and (where applicable) the first trivial test of §6.2
    that would catch it.

    Fault parameters (addresses, ports, tables) are derived from the
    program and the workload entries so that a SwitchV campaign over that
    workload actually exercises them. *)

module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry

val pins : Ast.program -> Entry.t list -> Fault.t list
(** 122 faults across the eight PINS components of Table 1. *)

val cerberus : Ast.program -> Entry.t list -> Fault.t list
(** 32 faults across the four Cerberus categories of Table 1. *)

val topo : Ast.program -> Entry.t list -> Fault.t list
(** Fabric-specific fault instances (TOPO-xxx ids) for multi-switch
    campaigns — e.g. a TTL trap threshold bug that is invisible to
    single-hop edge traffic. Kept separate so the PINS/Cerberus
    populations stay pinned to the paper's counts. *)

val expected_detector : Fault.t -> [ `Fuzzer | `Symbolic ]
(** Which SwitchV component the catalogue expects to find this fault
    (control-plane kinds → fuzzer, data-plane/sync kinds → symbolic). *)
