(** Fault injection: the catalogue schema for seeded switch bugs.

    The paper validates physical switch stacks whose bugs are unknown ahead
    of time; our substitute is a simulated stack seeded with faults drawn
    from a catalogue modeled on the paper's Appendix A and Table 1. Each
    fault names the {e component} it lives in (for Table 1 attribution),
    the detector expected to find it, resolution metadata (for Figure 7),
    and which trivial integration test would catch it (for Table 2). *)

module Bitvec = Switchv_bitvec.Bitvec

(** Switch-stack components, following Table 1. *)
type component =
  | P4runtime_server
  | Gnmi
  | Orchestration_agent
  | Syncd
  | Switch_linux
  | Hardware
  | P4_toolchain
  | Input_p4_program
  | Vendor_software      (** Cerberus's coarse "switch software" bucket *)
  | Bmv2_simulator

val component_to_string : component -> string

(** The six trivial integration tests of §6.2, in their fixed order. *)
type trivial_test =
  | Set_p4info
  | Table_entry_programming
  | Read_all_tables
  | Packet_in
  | Packet_out
  | Packet_forwarding

val trivial_test_to_string : trivial_test -> string
val trivial_tests : trivial_test list

(** Injected behaviours. Control-plane kinds perturb the P4Runtime server's
    handling of writes/reads; sync kinds desynchronise the ASIC state from
    the server's view; data-plane kinds perturb packet processing. *)
type kind =
  (* control plane (P4Runtime server layer) *)
  | Reject_valid_insert of string             (** spurious error on a table *)
  | Accept_constraint_violation of string     (** skips @entry_restriction *)
  | Accept_dangling_reference of string       (** skips @refers_to check *)
  | Accept_duplicate_insert of string
  | Delete_nonexistent_fails_batch
  | Modify_keeps_old_args of string
  | Accept_invalid_weight
  | Reject_duplicate_wcmp_actions             (** valid same-action buckets refused *)
  | Read_drops_table of string                (** read omits a table's entries *)
  | Read_zeroes_priority
  | Resource_exhausted_early of string * int  (** rejects beyond a fraction of size *)
  | Delete_leaves_entry of string             (** OK status but entry stays *)
  | Reject_vrf_delete_with_any_routes
  | P4info_push_fails
  | Crash_on_delete_sequence of int           (** unresponsive after n deletes in one batch *)
  (* sync layers (orchestration agent / SyncD): ASIC diverges from server *)
  | Syncd_drops_table of string               (** entries never reach the ASIC *)
  | Syncd_offsets_port_arg of string          (** port argument off by one in ASIC *)
  | Wcmp_update_removes_member
  (* data plane (ASIC / Switch Linux / chip contract / model bugs) *)
  | Ttl_trap_always                           (** chip punts TTL<=1 even when admitted *)
  | Ttl_trap_threshold of int                 (** chip traps IPv4 with TTL<=n — invisible
                                                  to edge traffic, bites at hop >= 2 *)
  | Drop_dst_ip of Bitvec.t                   (** drops packets to an address *)
  | Punt_ether_type of int                    (** spurious punt (e.g. LLDP 0x88CC) *)
  | Packet_out_punted_back
  | Dscp_remark_zero of int                   (** re-marks a specific DSCP to 0 *)
  | Drop_on_port of int                       (** electric-interference port drop *)
  | Mirror_ignored
  | Submit_to_ingress_dropped
  | Punt_lost                         (** punted copies silently vanish *)
  | Encap_reversed_dst                        (** Cerberus endianness bug *)
  | Forward_wrong_port_for_port of int        (** rewrites one egress port to another *)

type t = {
  id : string;
  kind : kind;
  component : component;
  description : string;
  days_to_resolution : int option;   (** [None] = unresolved *)
  trivial_test : trivial_test option;
      (** first trivial test of §6.2 that would catch it, if any *)
}

val make :
  ?days:int ->
  ?trivial:trivial_test ->
  id:string ->
  component:component ->
  kind ->
  string ->
  t

val is_control_plane : kind -> bool
(** Kinds whose primary observable is the control-plane API (the fuzzer's
    hunting ground); the rest surface in packet behaviour. *)

val pp : Format.formatter -> t -> unit
