module Ast = Switchv_p4ir.Ast
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Entry = Switchv_p4runtime.Entry
open Fault

(* Resolution-day representatives per Figure 7 bucket, with the bucket
   population for the PINS catalogue (113 resolved + 9 unresolved = 122).
   The shape matches the paper: majority <= 14 days, ~33% <= 5 days, a
   long tail past 150 days, 9 unresolved. *)
let pins_days_pool =
  let bucket rep n = List.init n (fun _ -> Some rep) in
  List.concat
    [ bucket 1 30; bucket 4 18; bucket 8 14; bucket 13 12; bucket 16 9;
      bucket 22 7; bucket 26 5; bucket 47 9; bucket 66 4; bucket 110 2;
      bucket 128 2; bucket 157 1;
      List.init 9 (fun _ -> None) ]

(* Parameters derived from the workload so a campaign over those entries
   actually exercises each fault. *)
type workload_params = {
  route_dsts : (Bitvec.t * int) list;   (* (covered dst ip, /len) of ipv4 routes *)
  rif_ports : int list;                 (* distinct egress ports programmed *)
}

let params_of_entries entries =
  let route_dsts =
    List.filter_map
      (fun (e : Entry.t) ->
        let forwards =
          match e.e_action with
          | Entry.Single { ai_name = "set_nexthop_id" | "set_wcmp_group_id"; _ } -> true
          | _ -> false
        in
        if String.equal e.e_table "ipv4_table" && forwards then
          match Entry.find_match e "ipv4_dst" with
          | Some (Entry.M_lpm p) when Prefix.len p = 24 ->
              Some (Prefix.value p, Prefix.len p)
          | _ -> None
        else None)
      entries
  in
  let rif_ports =
    List.filter_map
      (fun (e : Entry.t) ->
        if String.equal e.e_table "router_interface_table" then
          match e.e_action with
          | Entry.Single { ai_name = "set_port_and_src_mac"; ai_args = port :: _ } ->
              Bitvec.to_int port
          | _ -> None
        else None)
      entries
    |> List.sort_uniq Int.compare
  in
  { route_dsts; rif_ports }

(* Deal out workload-derived parameters cyclically; when the workload has
   fewer distinct targets than fault instances, later instances re-use
   targets with a host offset (less likely to be exercised — reported as
   undetected, which is realistic). *)
let nth_route_dst params i =
  match params.route_dsts with
  | [] -> Bitvec.of_int64 ~width:32 0x0A000100L
  | dsts ->
      let n = List.length dsts in
      let base, _len = List.nth dsts (i mod n) in
      Bitvec.add base (Bitvec.of_int ~width:32 (i / n))

let nth_port params i =
  match params.rif_ports with
  | [] -> 1 + i
  | ports -> List.nth ports (i mod List.length ports) + (8 * (i / List.length ports))

(* --- PINS ------------------------------------------------------------------ *)

let pins _program entries =
  let params = params_of_entries entries in
  let faults = ref [] in
  let n = ref 0 in
  let add ?trivial ~component kind description =
    incr n;
    let id = Printf.sprintf "PINS-%03d" !n in
    faults :=
      { id; kind; component; description; days_to_resolution = None;
        trivial_test = trivial }
      :: !faults
  in

  (* --- fuzzer-territory faults (37) --- *)
  let push_components =
    [ (P4runtime_server, 5); (Orchestration_agent, 5); (Syncd, 4);
      (P4_toolchain, 1); (Input_p4_program, 1) ]
  in
  List.iter
    (fun (component, count) ->
      for i = 1 to count do
        add ~trivial:Set_p4info ~component P4info_push_fails
          (Printf.sprintf "P4Info push fails (%s variant %d)"
             (component_to_string component) i)
      done)
    push_components;

  add ~trivial:Table_entry_programming ~component:P4runtime_server
    (Reject_valid_insert "acl_pre_ingress_table")
    "rejects all ACL pre-ingress entries (key encoding)";
  add ~trivial:Table_entry_programming ~component:Orchestration_agent
    (Reject_valid_insert "acl_ingress_table")
    "OA API does not support the space character in keys; all ACL entries rejected";
  add ~trivial:Table_entry_programming ~component:Orchestration_agent
    (Reject_valid_insert "l3_admit_table")
    "does not capitalize table names; l3 admit entries rejected";
  add ~trivial:Table_entry_programming ~component:Orchestration_agent
    (Reject_valid_insert "neighbor_table")
    "neighbor entries rejected due to key canonicalisation";
  add ~trivial:Table_entry_programming ~component:Syncd
    (Reject_valid_insert "acl_egress_table")
    "egress ACL entries rejected by SAI adapter";
  add ~trivial:Table_entry_programming ~component:Syncd
    (Reject_valid_insert "mirror_session_table")
    "mirror sessions cannot be created";

  add ~component:P4runtime_server (Accept_constraint_violation "vrf_table")
    "accepts reserved VRF 0 (entry restriction not enforced)";
  add ~component:P4runtime_server (Accept_dangling_reference "ipv4_table")
    "accepts routes whose VRF/nexthop does not exist";
  add ~component:Syncd (Accept_duplicate_insert "ipv4_table")
    "duplicate route insert reports OK (incorrect error message for duplicates)";
  add ~component:Orchestration_agent Accept_invalid_weight
    "accepts non-positive WCMP weights";
  add ~component:Orchestration_agent Reject_duplicate_wcmp_actions
    "rejects WCMP groups with same-action buckets, violating the P4RT spec";
  add ~component:P4runtime_server Delete_nonexistent_fails_batch
    "deleting non-existing entry causes entire batch to fail";
  add ~component:Orchestration_agent (Modify_keeps_old_args "ipv4_table")
    "MODIFY leaves old action parameters unchanged";
  add ~trivial:Read_all_tables ~component:P4runtime_server
    (Read_drops_table "acl_ingress_table")
    "does not support reading ternary fields";
  add ~trivial:Read_all_tables ~component:Syncd Read_zeroes_priority
    "read-back loses entry priorities";
  add ~component:Syncd (Resource_exhausted_early ("acl_ingress_table", 3))
    "does not clean up invalid ACL entries; RESOURCE_EXHAUSTED early";
  add ~component:Input_p4_program (Resource_exhausted_early ("router_interface_table", 2))
    "resource guarantees for router_interface_table unrealistically high for new chip";
  add ~component:Hardware (Resource_exhausted_early ("ipv4_table", 8))
    "ALPM capacity below the guaranteed route count";
  add ~component:Orchestration_agent (Delete_leaves_entry "nexthop_table")
    "nexthop delete acknowledged but entry remains";
  add ~component:Syncd Reject_vrf_delete_with_any_routes
    "VRF deletion fails due to incorrect ALPM flag usage while routes exist";
  add ~component:P4runtime_server (Crash_on_delete_sequence 8)
    "inconsistent state after certain sequences of L3 table entry deletions";

  (* --- symbolic-territory faults (85) --- *)
  let drops =
    [ ("acl_pre_ingress_table", P4runtime_server);
      ("acl_ingress_table", P4runtime_server);
      ("l3_admit_table", Orchestration_agent);
      ("wcmp_group_table", Orchestration_agent);
      ("neighbor_table", Orchestration_agent);
      ("egress_router_interface_table", Orchestration_agent);
      ("ipv4_table", Syncd);
      ("ipv6_table", Syncd);
      ("nexthop_table", Syncd);
      ("router_interface_table", Syncd);
      ("mirror_session_table", Syncd);
      ("acl_egress_table", P4_toolchain) ]
  in
  List.iter
    (fun (tbl, component) ->
      let trivial =
        match tbl with
        | "acl_ingress_table" -> Some Packet_in
        | "ipv4_table" | "l3_admit_table" | "acl_pre_ingress_table" ->
            Some Packet_forwarding
        | _ -> None
      in
      add ?trivial ~component (Syncd_drops_table tbl)
        (Printf.sprintf "entries of %s never reach the ASIC" tbl))
    drops;
  add ~component:Syncd (Syncd_offsets_port_arg "router_interface_table")
    "router interface port attribute translated off by one";
  add ~component:Orchestration_agent Wcmp_update_removes_member
    "WCMP group update logic removes unchanged group members";

  add ~trivial:Packet_in ~component:Switch_linux (Punt_ether_type 0x88CC)
    "runs LLDP causing packets to be punted to controller";
  add ~component:Switch_linux (Punt_ether_type 0x8809)
    "LACP daemon intercepts slow-protocol frames";
  add ~component:Switch_linux (Punt_ether_type 0x0806)
    "kernel ARP responder races the SDN controller's ARP application";
  add ~component:Switch_linux (Punt_ether_type 0x8100)
    "VLAN frames leak to the CPU";
  add ~component:P4runtime_server (Punt_ether_type 0x0800)
    "application punts certain IPv4 packets back to the controller";
  add ~component:P4runtime_server (Punt_ether_type 0x86DD)
    "switch sends IPv6 router solicitation packets unexpectedly";
  add ~trivial:Packet_in ~component:Switch_linux Punt_lost
    "a port sync daemon restarts unexpectedly, breaking all packet IO";
  add ~trivial:Packet_in ~component:Switch_linux Punt_lost
    "daemons crash when network interface goes down; punted packets lost";

  add ~component:Syncd Ttl_trap_always
    "new chip has a built-in trap that punts TTL 0/1 packets regardless of configuration";
  add ~component:Syncd (Dscp_remark_zero 1)
    "switch occasionally re-marks DSCP to 0 in forwarded packets";
  add ~component:Syncd Mirror_ignored "mirror sessions silently not applied to the ASIC";
  add ~trivial:Packet_out ~component:P4runtime_server Packet_out_punted_back
    "PacketOut packets incorrectly get punted back to controller";
  add ~trivial:Packet_out ~component:Syncd Submit_to_ingress_dropped
    "L3 forwarding not enabled for submit-to-ingress packets; dropped on new chip";
  add ~component:Gnmi (Drop_on_port 1) "port 1 config leaves the interface down";
  add ~component:Gnmi (Drop_on_port 2) "port 2 speed mismatch drops all traffic";

  (* Forward-to-wrong-port instances over ports the workload programs. *)
  let wrong_port_components =
    [ Orchestration_agent; Orchestration_agent; Syncd; Syncd ]
  in
  List.iteri
    (fun i component ->
      let p = nth_port params i in
      add ~component (Forward_wrong_port_for_port p)
        (Printf.sprintf "packets for port %d egress on the wrong port" p))
    wrong_port_components;

  (* Destination-specific forwarding bugs over covered route prefixes. *)
  let drop_components =
    List.concat
      [ List.init 31 (fun _ -> P4runtime_server);
        List.init 4 (fun _ -> Orchestration_agent);
        List.init 1 (fun _ -> Syncd);
        List.init 3 (fun _ -> Switch_linux);
        List.init 13 (fun _ -> Input_p4_program) ]
  in
  List.iteri
    (fun i component ->
      let dst = nth_route_dst params i in
      let desc =
        if component = Input_p4_program then
          Printf.sprintf
            "model forwards packets to %s but the switch (correctly) drops them"
            (Bitvec.to_hex_string dst)
        else
          Printf.sprintf "packets to %s are dropped in hardware" (Bitvec.to_hex_string dst)
      in
      add ~component (Drop_dst_ip dst) desc)
    drop_components;

  (* Attach resolution metadata per the Figure 7 distribution. The pool is
     dealt out with a fixed stride so fuzzer- and symbolic-found bugs both
     span the whole histogram. *)
  let faults = List.rev !faults in
  let n = List.length faults in
  let pool = Array.of_list pins_days_pool in
  List.mapi
    (fun i f ->
      { f with days_to_resolution = pool.(i * 53 mod Array.length pool) })
    (List.filteri (fun i _ -> i < n) faults)

(* --- Cerberus ---------------------------------------------------------------- *)

let cerberus _program entries =
  let params = params_of_entries entries in
  let faults = ref [] in
  let n = ref 0 in
  let add ?days ?trivial ~component kind description =
    incr n;
    let id = Printf.sprintf "CERB-%03d" !n in
    faults :=
      { id; kind; component; description; days_to_resolution = days;
        trivial_test = trivial }
      :: !faults
  in

  (* fuzzer-territory: 14 vendor software + 4 BMv2 simulator. The vendor
     pre-tested the stack with traditional means (§6.2), so trivially
     findable faults (config pushes, blanket rejections) are rare; what is
     left is subtle state handling. *)
  add ~days:7 ~trivial:Set_p4info ~component:Vendor_software P4info_push_fails
    "pipeline config rejected on the lab unit";
  add ~days:12 ~trivial:Table_entry_programming ~component:Vendor_software
    (Reject_valid_insert "tunnel_table") "tunnel creation rejected";
  add ~days:3 ~component:Vendor_software (Accept_constraint_violation "vrf_table")
    "reserved VRF programmable";
  add ~days:21 ~component:Vendor_software (Accept_dangling_reference "ipv4_table")
    "routes with missing nexthops accepted";
  add ~days:5 ~component:Vendor_software (Accept_duplicate_insert "ipv4_table")
    "duplicate inserts acknowledged";
  add ~days:16 ~component:Vendor_software Accept_invalid_weight
    "zero WCMP weights accepted";
  add ~days:40 ~component:Vendor_software Delete_nonexistent_fails_batch
    "batch aborted on missing delete";
  add ~days:11 ~component:Vendor_software (Modify_keeps_old_args "ipv4_table")
    "IPv4 route modify ignored";
  add ~days:9 ~component:Vendor_software (Modify_keeps_old_args "ipv6_table")
    "IPv6 route modify ignored";
  add ~days:2 ~component:Vendor_software (Resource_exhausted_early ("acl_ingress_table", 3))
    "ACL capacity below guarantee";
  add ~days:30 ~component:Vendor_software (Delete_leaves_entry "nexthop_table")
    "nexthop delete acknowledged but ignored";
  add ~days:24 ~component:Vendor_software Reject_vrf_delete_with_any_routes
    "VRF deletion refused while any routes exist";
  add ~days:18 ~component:Vendor_software (Accept_duplicate_insert "ipv6_table")
    "duplicate IPv6 inserts acknowledged";
  add ~days:44 ~component:Vendor_software (Crash_on_delete_sequence 8)
    "switch wedges on delete-heavy batches";

  add ~days:6 ~trivial:Read_all_tables ~component:Bmv2_simulator Read_zeroes_priority
    "simulator read-back loses priorities";
  add ~days:14 ~component:Bmv2_simulator (Delete_leaves_entry "tunnel_table")
    "simulator keeps deleted tunnels";
  add ~days:27 ~component:Bmv2_simulator (Crash_on_delete_sequence 10)
    "simulator crashes on delete-heavy batches";
  add ~days:19 ~component:Bmv2_simulator (Accept_duplicate_insert "acl_egress_table")
    "simulator accepts duplicate egress ACL entries";

  (* symbolic-territory: 10 vendor software + 1 hardware + 3 model bugs *)
  add ~days:13 ~component:Vendor_software Encap_reversed_dst
    "switch software reverses the destination IP used for packet encapsulation (endianness)";
  add ~days:8 ~component:Vendor_software (Syncd_drops_table "tunnel_table")
    "tunnels never programmed into the ASIC";
  add ~days:33 ~component:Vendor_software (Syncd_drops_table "decap_table")
    "decap rules not applied";
  add ~days:4 ~trivial:Packet_forwarding ~component:Vendor_software
    (Syncd_drops_table "ipv4_table") "routes silently missing from the ASIC";
  add ~days:17 ~trivial:Packet_in ~component:Vendor_software
    (Syncd_drops_table "acl_ingress_table") "ACL stage bypassed";
  add ~days:23 ~component:Vendor_software Ttl_trap_always "TTL trap not configurable";
  add ~days:10 ~component:Vendor_software Mirror_ignored "mirroring not implemented";
  add ~days:55 ~trivial:Packet_in ~component:Vendor_software (Punt_ether_type 0x0800)
    "spurious CPU copies of IPv4 traffic";
  add ~days:7 ~trivial:Packet_in ~component:Vendor_software Punt_lost
    "punt path broken after port flap";
  add ~days:61 ~trivial:Packet_out ~component:Vendor_software Packet_out_punted_back
    "packet-out loops back to CPU";

  ignore (nth_port params 0);
  add ~days:26 ~component:Hardware (Drop_on_port 2)
    "hardware drops packets on a port with a certain port speed (electric interference)";

  List.iteri
    (fun i days ->
      let dst = nth_route_dst params i in
      add ~days ~component:Input_p4_program (Drop_dst_ip dst)
        (Printf.sprintf
           "P4 model forwards %s but the switch correctly drops it"
           (Bitvec.to_hex_string dst)))
    [ 36; 13; 2 ];

  List.rev !faults

(* Fabric-specific instances (TOPO ids), seedable onto one switch of a
   multi-switch campaign. Kept out of the PINS/Cerberus lists so their
   paper-pinned populations (122/32) stay intact. *)
let topo _program _entries =
  [ Fault.make ~id:"TOPO-001" ~component:Syncd (Ttl_trap_threshold 63)
      "TTL trap threshold misprogrammed: chip punts admitted IPv4 arriving \
       with TTL <= 63 — invisible to TTL-64 edge traffic, bites at hop >= 2";
    Fault.make ~id:"TOPO-002" ~component:Hardware (Drop_on_port 1)
      "fabric link port 1 drops all arriving traffic (cut link)";
    Fault.make ~id:"TOPO-003" ~component:Syncd (Forward_wrong_port_for_port 1)
      "fabric egress on link port 1 rewritten to the next port" ]

let expected_detector (f : Fault.t) =
  if Fault.is_control_plane f.kind then `Fuzzer else `Symbolic
