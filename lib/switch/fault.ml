module Bitvec = Switchv_bitvec.Bitvec

type component =
  | P4runtime_server
  | Gnmi
  | Orchestration_agent
  | Syncd
  | Switch_linux
  | Hardware
  | P4_toolchain
  | Input_p4_program
  | Vendor_software
  | Bmv2_simulator

let component_to_string = function
  | P4runtime_server -> "P4Runtime Server"
  | Gnmi -> "gNMI"
  | Orchestration_agent -> "Orchestration Agent"
  | Syncd -> "SyncD Binary"
  | Switch_linux -> "Switch Linux"
  | Hardware -> "Hardware"
  | P4_toolchain -> "P4 Toolchain"
  | Input_p4_program -> "Input P4 Program"
  | Vendor_software -> "Switch software"
  | Bmv2_simulator -> "BMv2 P4 Simulator"

type trivial_test =
  | Set_p4info
  | Table_entry_programming
  | Read_all_tables
  | Packet_in
  | Packet_out
  | Packet_forwarding

let trivial_test_to_string = function
  | Set_p4info -> "Set P4Info"
  | Table_entry_programming -> "Table entry programming"
  | Read_all_tables -> "Read all tables"
  | Packet_in -> "Packet-in"
  | Packet_out -> "Packet-out"
  | Packet_forwarding -> "Packet forwarding"

let trivial_tests =
  [ Set_p4info; Table_entry_programming; Read_all_tables; Packet_in; Packet_out;
    Packet_forwarding ]

type kind =
  | Reject_valid_insert of string
  | Accept_constraint_violation of string
  | Accept_dangling_reference of string
  | Accept_duplicate_insert of string
  | Delete_nonexistent_fails_batch
  | Modify_keeps_old_args of string
  | Accept_invalid_weight
  | Reject_duplicate_wcmp_actions
  | Read_drops_table of string
  | Read_zeroes_priority
  | Resource_exhausted_early of string * int
  | Delete_leaves_entry of string
  | Reject_vrf_delete_with_any_routes
  | P4info_push_fails
  | Crash_on_delete_sequence of int
  | Syncd_drops_table of string
  | Syncd_offsets_port_arg of string
  | Wcmp_update_removes_member
  | Ttl_trap_always
  | Ttl_trap_threshold of int
  | Drop_dst_ip of Bitvec.t
  | Punt_ether_type of int
  | Packet_out_punted_back
  | Dscp_remark_zero of int
  | Drop_on_port of int
  | Mirror_ignored
  | Submit_to_ingress_dropped
  | Punt_lost
  | Encap_reversed_dst
  | Forward_wrong_port_for_port of int

type t = {
  id : string;
  kind : kind;
  component : component;
  description : string;
  days_to_resolution : int option;
  trivial_test : trivial_test option;
}

let make ?days ?trivial ~id ~component kind description =
  { id; kind; component; description; days_to_resolution = days;
    trivial_test = trivial }

let is_control_plane = function
  | Reject_valid_insert _ | Accept_constraint_violation _
  | Accept_dangling_reference _ | Accept_duplicate_insert _
  | Delete_nonexistent_fails_batch | Modify_keeps_old_args _
  | Accept_invalid_weight | Reject_duplicate_wcmp_actions | Read_drops_table _
  | Read_zeroes_priority | Resource_exhausted_early _ | Delete_leaves_entry _
  | Reject_vrf_delete_with_any_routes | P4info_push_fails
  | Crash_on_delete_sequence _ -> true
  | Syncd_drops_table _ | Syncd_offsets_port_arg _ | Wcmp_update_removes_member
  | Ttl_trap_always | Ttl_trap_threshold _ | Drop_dst_ip _ | Punt_ether_type _
  | Packet_out_punted_back
  | Dscp_remark_zero _ | Drop_on_port _ | Mirror_ignored
  | Submit_to_ingress_dropped | Punt_lost | Encap_reversed_dst
  | Forward_wrong_port_for_port _ -> false

let pp fmt t =
  Format.fprintf fmt "[%s] %s (%s%s)" t.id t.description
    (component_to_string t.component)
    (match t.days_to_resolution with
    | Some d -> Printf.sprintf ", fixed in %d days" d
    | None -> ", unresolved")
