module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Entry = Switchv_p4runtime.Entry
module Cache = Switchv_symbolic.Cache
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro
module Ddmin = Switchv_triage.Ddmin
module Fingerprint = Switchv_triage.Fingerprint
module Corpus = Switchv_triage.Corpus

type triage = {
  dedup : bool;
  minimize : bool;
  ddmin_probes : int;
}

let default_triage = { dedup = true; minimize = false; ddmin_probes = 256 }

type config = {
  control : Control_campaign.config;
  data_entries : Entry.t list;
  cache : Cache.t option;
  exploratory : bool;
  fuzzed_data_pass : bool;
  max_incidents : int;
  triage : triage option;
  jobs : int;
  data_shards : int;
  incremental : bool;
  taint : bool;
  greybox : bool;
  compile : bool;
}

(* Entries readable from a switch come back in insertion order of the
   switch's own store; re-order so references precede referents. *)
let sort_by_dependencies info entries =
  let placed = Hashtbl.create 64 in
  let out = ref [] in
  let state = Switchv_p4runtime.State.create () in
  let refs_ok e =
    Switchv_p4runtime.Validate.check_references info e
      ~exists:(fun ~table ~key value ->
        Switchv_p4runtime.State.exists_value state ~table ~key value)
    = Ok ()
  in
  let rec pass remaining fuel =
    if remaining = [] || fuel = 0 then remaining
    else begin
      let still =
        List.filter
          (fun e ->
            let key = Entry.match_key e in
            if (not (Hashtbl.mem placed key)) && refs_ok e then begin
              Hashtbl.add placed key ();
              ignore (Switchv_p4runtime.State.insert state e);
              out := e :: !out;
              false
            end
            else true)
          remaining
      in
      pass still (fuel - 1)
    end
  in
  ignore (pass entries 16);
  List.rev !out

let default_config entries =
  { control = Control_campaign.default_config;
    data_entries = entries;
    cache = None;
    exploratory = true;
    fuzzed_data_pass = false;
    max_incidents = 25;
    triage = Some default_triage;
    jobs = 1;
    data_shards = 1;
    incremental = true;
    taint = true;
    greybox = true;
    compile = true }

(* Shrink a reproducer to a 1-minimal input: each ddmin probe replays a
   candidate against a freshly provisioned stack. Sound because a clean
   stack replays incident-free, so any candidate that still reproduces is
   a genuine divergence. *)
let minimize_repro mk_stack ~max_probes repro =
  let reproduces r = (Corpus.replay_repro (mk_stack ()) r).Corpus.o_reproduced in
  let minimized =
    match repro with
  | Repro.Control (c : Repro.control) ->
      (* Batch first (usually where the signal is), then the prefix
         relative to the already-minimized batch. *)
      let batch =
        Ddmin.run ~max_probes
          ~check:(fun b -> reproduces (Repro.Control { c with cr_batch = b }))
          c.cr_batch
      in
      let c = { c with Repro.cr_batch = batch } in
      let prefix =
        Ddmin.run ~max_probes
          ~check:(fun p -> reproduces (Repro.Control { c with cr_prefix = p }))
          c.cr_prefix
      in
      Repro.Control { c with cr_prefix = prefix }
  | Repro.Data (d : Repro.data) ->
      let entries =
        Ddmin.run ~max_probes
          ~check:(fun es -> reproduces (Repro.Data { d with dr_entries = es }))
          d.dr_entries
      in
      Repro.Data { d with dr_entries = entries }
  in
  Telemetry.incr (Telemetry.get ()) "triage.updates_removed"
    ~n:(Repro.size repro - Repro.size minimized);
  minimized

let run_triage mk_stack (cfg : triage) control data =
  let tele = Telemetry.get () in
  Telemetry.incr ~n:0 tele "triage.duplicates_collapsed";
  Telemetry.incr ~n:0 tele "triage.updates_removed";
  let tagged =
    List.map (fun i -> (`Control, i)) control @ List.map (fun i -> (`Data, i)) data
  in
  let groups =
    if cfg.dedup then Fingerprint.cluster (fun (_, i) -> Report.fingerprint i) tagged
    else List.map (fun x -> (x, Report.fingerprint (snd x), 1)) tagged
  in
  if cfg.dedup then
    Telemetry.incr tele "triage.duplicates_collapsed"
      ~n:(List.length tagged - List.length groups);
  let groups =
    if not cfg.minimize then groups
    else
      List.map
        (fun ((tag, (i : Report.incident)), fp, count) ->
          match i.repro with
          | None -> ((tag, i), fp, count)
          | Some r ->
              Telemetry.with_span tele "triage.minimize" (fun () ->
                  let r' = minimize_repro mk_stack ~max_probes:cfg.ddmin_probes r in
                  ((tag, { i with Report.repro = Some r' }), fp, count)))
        groups
  in
  let keep tag' =
    List.filter_map
      (fun ((tag, i), _, _) -> if tag = tag' then Some i else None)
      groups
  in
  let clusters =
    if cfg.dedup then
      Some
        (List.map
           (fun ((_, i), fp, count) ->
             { Report.cl_fingerprint = fp; cl_count = count; cl_example = i })
           groups)
    else None
  in
  (keep `Control, keep `Data, clusters)

let validate mk_stack config =
  let tele = Telemetry.get () in
  Telemetry.with_span tele "harness.validate" @@ fun () ->
  (* Shard 0 of the control campaign always runs in this process on
     [control_stack], so the fuzzed-entry harvest below sees the switch
     state it left behind even when the other shards ran in workers. *)
  let control_stack = mk_stack () in
  (* Snapshot the coverage counters before the control campaign: the delta
     afterwards is the edge set that campaign drove concretely, which the
     data campaign uses to skip already-covered branch goals. Worker shard
     deltas are absorbed into this registry before [run_sharded] returns,
     so the delta — hence the data campaign's goal list — is the same at
     any [jobs]. *)
  let cov_keys =
    if config.greybox then
      Switchv_obs.Coverage.edge_keys (Stack.program control_stack)
    else []
  in
  let cov_before = List.map (fun k -> Telemetry.counter tele k) cov_keys in
  let control_incidents, control_stats =
    Control_campaign.run_sharded ~jobs:config.jobs ~stack0:control_stack mk_stack
      { config.control with
        max_incidents = config.max_incidents;
        greybox = config.greybox }
  in
  let covered_edges =
    List.filter_map
      (fun (k, before) ->
        if Telemetry.counter tele k > before then Some k else None)
      (List.combine cov_keys cov_before)
  in
  (* §7 extension: harvest the entries the fuzzing campaign left on the
     switch (filtered to ones valid for the model — a buggy switch may
     claim to hold invalid state) and use them as a second data-plane
     workload. *)
  let fuzzed_entries =
    if not config.fuzzed_data_pass then []
    else begin
      let info = Stack.info control_stack in
      let claimed = (Stack.read control_stack).entries in
      let state = Switchv_p4runtime.State.create () in
      List.filter
        (fun e ->
          Switchv_p4runtime.Validate.check_entry info e = Ok ()
          && Switchv_p4runtime.Validate.check_references info e
               ~exists:(fun ~table ~key value ->
                 Switchv_p4runtime.State.exists_value state ~table ~key value)
             = Ok ()
          && Switchv_p4runtime.State.insert state e = Ok ())
        (sort_by_dependencies info claimed)
    end
  in
  let data_stack = mk_stack () in
  let data_config =
    { (Data_campaign.default_config config.data_entries) with
      cache = config.cache;
      max_incidents = config.max_incidents;
      shards = config.data_shards;
      incremental = config.incremental;
      taint = config.taint;
      greybox = config.greybox;
      compile = config.compile;
      covered_edges;
      extra_goals =
        (if config.exploratory then Data_campaign.exploratory_goals else fun _ -> []) }
  in
  let data_incidents, data_stats =
    Data_campaign.run ~jobs:config.jobs data_stack data_config
  in
  let fuzzed_incidents =
    if fuzzed_entries = [] then []
    else begin
      let stack = mk_stack () in
      let cfg =
        { (Data_campaign.default_config fuzzed_entries) with
          max_incidents = config.max_incidents;
          test_packet_io = false;
          incremental = config.incremental;
          taint = config.taint;
          greybox = config.greybox;
          compile = config.compile;
          covered_edges }
      in
      let incidents, _ = Data_campaign.run stack cfg in
      List.map
        (fun (i : Report.incident) ->
          { i with Report.kind = "fuzzed-entry pass: " ^ i.kind })
        incidents
    end
  in
  let control_incidents, data_incidents, clusters =
    match config.triage with
    | None -> (control_incidents, data_incidents @ fuzzed_incidents, None)
    | Some t ->
        run_triage mk_stack t control_incidents (data_incidents @ fuzzed_incidents)
  in
  { Report.program_name = (Stack.program data_stack).p_name;
    control_incidents;
    data_incidents;
    fabric_incidents = [];
    control_stats = Some control_stats;
    data_stats = Some data_stats;
    fabric_stats = None;
    clusters;
    telemetry = Some (Telemetry.snapshot tele);
    coverage =
      Some (Switchv_obs.Coverage.of_registry tele (Stack.program data_stack)) }

let detect mk_stack config = Report.detected_by (validate mk_stack config)
