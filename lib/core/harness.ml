module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Entry = Switchv_p4runtime.Entry
module Cache = Switchv_symbolic.Cache
module Telemetry = Switchv_telemetry.Telemetry

type config = {
  control : Control_campaign.config;
  data_entries : Entry.t list;
  cache : Cache.t option;
  exploratory : bool;
  fuzzed_data_pass : bool;
  max_incidents : int;
}

(* Entries readable from a switch come back in insertion order of the
   switch's own store; re-order so references precede referents. *)
let sort_by_dependencies info entries =
  let placed = Hashtbl.create 64 in
  let out = ref [] in
  let state = Switchv_p4runtime.State.create () in
  let refs_ok e =
    Switchv_p4runtime.Validate.check_references info e
      ~exists:(fun ~table ~key value ->
        Switchv_p4runtime.State.exists_value state ~table ~key value)
    = Ok ()
  in
  let rec pass remaining fuel =
    if remaining = [] || fuel = 0 then remaining
    else begin
      let still =
        List.filter
          (fun e ->
            let key = Entry.match_key e in
            if (not (Hashtbl.mem placed key)) && refs_ok e then begin
              Hashtbl.add placed key ();
              ignore (Switchv_p4runtime.State.insert state e);
              out := e :: !out;
              false
            end
            else true)
          remaining
      in
      pass still (fuel - 1)
    end
  in
  ignore (pass entries 16);
  List.rev !out

let default_config entries =
  { control = Control_campaign.default_config;
    data_entries = entries;
    cache = None;
    exploratory = true;
    fuzzed_data_pass = false;
    max_incidents = 25 }

let validate mk_stack config =
  let tele = Telemetry.get () in
  Telemetry.with_span tele "harness.validate" @@ fun () ->
  let control_stack = mk_stack () in
  let control_incidents, control_stats =
    Control_campaign.run control_stack
      { config.control with max_incidents = config.max_incidents }
  in
  (* §7 extension: harvest the entries the fuzzing campaign left on the
     switch (filtered to ones valid for the model — a buggy switch may
     claim to hold invalid state) and use them as a second data-plane
     workload. *)
  let fuzzed_entries =
    if not config.fuzzed_data_pass then []
    else begin
      let info = Stack.info control_stack in
      let claimed = (Stack.read control_stack).entries in
      let state = Switchv_p4runtime.State.create () in
      List.filter
        (fun e ->
          Switchv_p4runtime.Validate.check_entry info e = Ok ()
          && Switchv_p4runtime.Validate.check_references info e
               ~exists:(fun ~table ~key value ->
                 Switchv_p4runtime.State.exists_value state ~table ~key value)
             = Ok ()
          && Switchv_p4runtime.State.insert state e = Ok ())
        (sort_by_dependencies info claimed)
    end
  in
  let data_stack = mk_stack () in
  let data_config =
    { (Data_campaign.default_config config.data_entries) with
      cache = config.cache;
      max_incidents = config.max_incidents;
      extra_goals =
        (if config.exploratory then Data_campaign.exploratory_goals else fun _ -> []) }
  in
  let data_incidents, data_stats = Data_campaign.run data_stack data_config in
  let fuzzed_incidents =
    if fuzzed_entries = [] then []
    else begin
      let stack = mk_stack () in
      let cfg =
        { (Data_campaign.default_config fuzzed_entries) with
          max_incidents = config.max_incidents;
          test_packet_io = false }
      in
      let incidents, _ = Data_campaign.run stack cfg in
      List.map
        (fun (i : Report.incident) ->
          { i with Report.kind = "fuzzed-entry pass: " ^ i.kind })
        incidents
    end
  in
  { Report.program_name = (Stack.program data_stack).p_name;
    control_incidents;
    data_incidents = data_incidents @ fuzzed_incidents;
    control_stats = Some control_stats;
    data_stats = Some data_stats;
    telemetry = Some (Telemetry.snapshot tele) }

let detect mk_stack config = Report.detected_by (validate mk_stack config)
