(** OKR-style progress metrics (§7 "Development Processes Using SwitchV").

    The paper tracks feature milestones with two measurements derived from
    SwitchV runs: the percentage of fuzzed table entries related to a
    feature that the switch handles correctly, and the percentage of table
    entries related to the feature whose test packets behave correctly.
    Here a "feature" is a table (the natural granularity of our models);
    [feature] aggregates several tables into one line. *)

module Stack = Switchv_switch.Stack
module Entry = Switchv_p4runtime.Entry

type table_metric = {
  tm_table : string;
  tm_fuzzed : int;        (** fuzzed updates that targeted this table *)
  tm_fuzz_ok : int;       (** of those, handled admissibly by the switch *)
  tm_entries : int;       (** entries installed for data-plane testing *)
  tm_covered : int;       (** entries hit by a generated test packet *)
  tm_behaved : int;       (** of those, with behaviour inside the model's set *)
}

type t = table_metric list

val collect :
  ?batches:int ->
  ?seed:int ->
  (unit -> Stack.t) ->
  Entry.t list ->
  t
(** Run an instrumented control-plane campaign and an instrumented
    data-plane campaign against fresh switches and tally per-table
    results. *)

val feature : t -> name:string -> tables:string list -> table_metric
(** Aggregate several tables into one named feature row. *)

val fuzz_score : table_metric -> float option
(** tm_fuzz_ok / tm_fuzzed, or [None] when nothing targeted the table. *)

val behave_score : table_metric -> float option

val pp : Format.formatter -> t -> unit
