module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Ast = Switchv_p4ir.Ast
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module Workload = Switchv_sai.Workload
module Packet = Switchv_packet.Packet
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro
module Fingerprint = Switchv_triage.Fingerprint
module Jsonp = Switchv_triage.Jsonp
module Dataplane = Switchv_oracle.Dataplane
module Endtoend = Switchv_oracle.Endtoend
module Topo = Switchv_topo.Topo
module Fabric = Switchv_topo.Fabric
module Routes = Switchv_topo.Routes
module Shard = Switchv_parallel.Shard
module Pool = Switchv_parallel.Pool
module Coverage = Switchv_obs.Coverage

let sp = Printf.sprintf

type config = {
  shape : Topo.shape;
  switches : int;
  spines : int option;
  seed : int;
  budget : int option;
  max_incidents : int;
  shards : int;
  packet_out : bool;
  faults : (int * Fault.t list) list;
  minimize : bool;
  ddmin_probes : int;
  compile : bool;
      (* staged evaluator for every stack ASIC and model node; [false] is
         the interpreted --no-compile reference path, byte-identical *)
}

let default_config shape switches =
  { shape; switches; spines = None; seed = 0; budget = None;
    max_incidents = 25; shards = 1; packet_out = true; faults = [];
    minimize = false; ddmin_probes = 256; compile = true }

(* --- the flow suite --------------------------------------------------------

   A fixed, enumerable set of end-to-end flows, a pure function of
   (topology, config). Per reachable ordered pair (i, j) over the h-switch
   shortest path: "std" (TTL 64), "ttlmin" (TTL h+1 — delivers with TTL 1;
   one less would die en route), "ttlexp" (TTL h — must punt+drop at the
   last hop, never escape), and "dscp" (TTL 64, DSCP 46 — exercises the
   per-hop mirror sessions). Per switch: an unadmitted TTL-1 probe (host
   MAC, so L3-admit misses and the model must drop it *unpunted* — a
   TTL-trap chip bug punts it) and an LLDP frame (no trap entries are
   installed, so a spurious-punt bug diverges). Per switch, when enabled:
   a submit-to-ingress packet-out and a directed packet-out across the
   first fabric link. *)

type inject =
  | Edge of { in_switch : int; in_bytes : string }
  | Po of { in_switch : int; in_po : Request.packet_out }

type flow = { fl_id : string; fl_inject : inject }

let flow_packet ?(dscp = 0) ~entry ~src ~dst ~ttl () =
  let p = Packet.empty in
  let p =
    Packet.push p
      (Packet.ethernet_frame ~src:(Routes.host_mac_string src)
         ~dst:(Routes.router_mac_string entry) ~ether_type:0x0800 ())
  in
  let p =
    Packet.push p
      (Packet.ipv4_header ~ttl ~dscp ~src:(Routes.host_ip src)
         ~dst:(Routes.host_ip dst) ())
  in
  let p = Packet.push p (Packet.udp_header ~src_port:49152 ~dst_port:443 ()) in
  { p with Packet.payload = "switchv-fabric-payload" }

let flows topo cfg =
  let n = Topo.switches topo in
  let acc = ref [] in
  let add id inj = acc := { fl_id = id; fl_inject = inj } :: !acc in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      match Topo.path topo ~src:i ~dst:j with
      | None -> ()
      | Some p ->
          let h = List.length p in
          let edge ?dscp name ttl =
            add
              (sp "fabric:%s:%d->%d" name i j)
              (Edge
                 { in_switch = i;
                   in_bytes =
                     Packet.to_bytes
                       (flow_packet ?dscp ~entry:i ~src:i ~dst:j ~ttl ()) })
          in
          edge "std" 64;
          edge "ttlmin" (h + 1);
          edge "ttlexp" h;
          edge ~dscp:Routes.mirror_dscp "dscp" 64
    done
  done;
  for k = 0 to n - 1 do
    let unadmitted =
      let p = flow_packet ~entry:k ~src:k ~dst:((k + 1) mod n) ~ttl:1 () in
      Packet.set p ~header:"ethernet" ~field:"dst_addr" (Routes.host_mac k)
    in
    add (sp "fabric:unadmitted:sw%d" k)
      (Edge { in_switch = k; in_bytes = Packet.to_bytes unadmitted });
    let lldp =
      let p =
        Packet.push Packet.empty
          (Packet.ethernet_frame ~src:(Routes.host_mac_string k)
             ~ether_type:0x88CC ())
      in
      { p with Packet.payload = "switchv-lldp" }
    in
    add (sp "fabric:lldp:sw%d" k)
      (Edge { in_switch = k; in_bytes = Packet.to_bytes lldp })
  done;
  if cfg.packet_out then
    for k = 0 to n - 1 do
      let payload = flow_packet ~entry:k ~src:k ~dst:((k + 1) mod n) ~ttl:64 () in
      add (sp "fabric:po:submit:sw%d" k)
        (Po
           { in_switch = k;
             in_po = { Request.po_payload = payload; po_egress_port = None } });
      match Topo.neighbors topo k with
      | [] -> ()
      | nb :: _ ->
          let port =
            match Topo.link_port topo ~src:k ~dst:nb with
            | Some p -> p
            | None -> assert false
          in
          let payload = flow_packet ~entry:nb ~src:k ~dst:nb ~ttl:64 () in
          add (sp "fabric:po:port:sw%d" k)
            (Po
               { in_switch = k;
                 in_po =
                   { Request.po_payload = payload; po_egress_port = Some port } })
    done;
  List.rev !acc

(* --- setup -----------------------------------------------------------------

   Same per-table batching as the data campaign (no batch contains
   internal @refers_to dependencies); rejections become incidents carrying
   the switch as their hop — there is no single-switch replay path for a
   fabric setup failure, so no reproducer. *)

let install stack entries add_reject =
  let batches =
    List.fold_left
      (fun acc (e : Entry.t) ->
        match acc with
        | (table, batch) :: rest when String.equal table e.e_table ->
            (table, e :: batch) :: rest
        | _ -> (e.e_table, [ e ]) :: acc)
      [] entries
    |> List.rev_map (fun (_, batch) -> List.rev batch)
  in
  List.iter
    (fun batch ->
      let updates = List.map Request.insert batch in
      let resp = Stack.write stack { Request.updates } in
      List.iter2
        (fun (u : Request.update) (s : Status.t) ->
          if not (Status.is_ok s) then
            add_reject ~entry:u.entry
              (Format.asprintf "%a: %a" Status.pp s Entry.pp u.entry))
        updates resp.statuses)
    batches

type env = {
  e_topo : Topo.t;
  e_cfg : config;
  e_stacks : Stack.t array;
  e_stack_nodes : Fabric.node array;
  e_model_nodes : Fabric.node array;
  e_model_cfgs : Interp.config array;
  e_oracles : Dataplane.t array;
  e_entries_for : Entry.t list array;
  e_budget : int;
  e_mk_stack : int -> unit -> Stack.t;
}

let pp_behavior_set fmt bs =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Interp.pp_behavior)
    bs

(* One flow, both fabrics, both checks. [add] enforces the incident
   budget; at most one incident per flow (a localized hop divergence
   preempts the end-to-end verdict — it is the same mismatch, better
   attributed). *)
let test_flow env ~tele
    ~(add : ?context:Report.context -> ?repro:Repro.t -> string -> string -> unit)
    ~want_more ~delivered ~dropped ~hops ~localized fl =
  Telemetry.incr tele "topo.flows";
  let budget = env.e_budget in
  let model_trace, switch_trace, po_ref =
    match fl.fl_inject with
    | Edge { in_switch; in_bytes } ->
        ( Fabric.forward ~budget env.e_topo env.e_model_nodes ~switch:in_switch
            ~port:Topo.edge_port in_bytes,
          Fabric.forward ~budget env.e_topo env.e_stack_nodes ~switch:in_switch
            ~port:Topo.edge_port in_bytes,
          None )
    | Po { in_switch; in_po } ->
        let bytes = Packet.to_bytes in_po.Request.po_payload in
        let model_b =
          (if env.e_cfg.compile then Compile.run_packet_out
           else Interp.run_packet_out)
            env.e_model_cfgs.(in_switch)
            ~egress_port:in_po.Request.po_egress_port in_po.Request.po_payload
        in
        let switch_b = Stack.packet_out env.e_stacks.(in_switch) in_po in
        ( Fabric.forward_from ~budget env.e_topo env.e_model_nodes
            ~switch:in_switch ~ingress_port:0 ~bytes model_b,
          Fabric.forward_from ~budget env.e_topo env.e_stack_nodes
            ~switch:in_switch ~ingress_port:0 ~bytes switch_b,
          Some model_b )
  in
  let hop_list = switch_trace.Fabric.t_hops in
  Telemetry.incr ~n:(List.length hop_list) tele "topo.hops";
  hops := !hops + List.length hop_list;
  (match switch_trace.Fabric.t_disposition with
  | Fabric.Delivered _ ->
      incr delivered;
      Telemetry.incr tele "topo.delivered"
  | Fabric.Dropped _ ->
      incr dropped;
      Telemetry.incr tele "topo.dropped"
  | Fabric.Dead_hop _ ->
      incr dropped;
      Telemetry.incr tele "topo.dropped";
      Telemetry.incr tele "topo.crashed_hops"
  | Fabric.Budget_exhausted _ ->
      incr dropped;
      Telemetry.incr tele "topo.dropped";
      Telemetry.incr tele "topo.loops_detected");
  (* Per-hop judgment: the oracle re-runs the model on each hop's own
     input bytes, so a hop downstream of a perturbation is judged against
     what the model would do with the perturbed packet — only the
     introducing switch diverges. The first hop of a packet-out is
     processed by [run_packet_out], not ingress, so it is excluded here
     and compared against the precomputed reference behaviour instead. *)
  let judged =
    List.mapi
      (fun idx (h : Fabric.hop) ->
        if idx = 0 && po_ref <> None then None
        else
          match
            Dataplane.judge_info
              env.e_oracles.(h.Fabric.h_switch)
              ~ingress_port:h.Fabric.h_ingress ~bytes:h.Fabric.h_bytes_in
              ~switch:h.Fabric.h_behavior
          with
          | v -> Some (h, v)
          (* A fault that corrupts bytes into unparseability shows up in
             the end-to-end check; the hop itself cannot be judged. *)
          | exception Interp.Parse_failure _ -> None)
      hop_list
  in
  let po_div =
    match (po_ref, hop_list) with
    | Some model_b, h0 :: _
      when not (Interp.behavior_equal h0.Fabric.h_behavior model_b) ->
        Some (h0, [ model_b ])
    | _ -> None
  in
  let hop_div =
    List.find_map
      (function
        | Some (h, (Dataplane.Diverged bs, _)) -> Some (h, bs) | _ -> None)
      judged
  in
  match (if po_div <> None then po_div else hop_div) with
  | Some (h, model_bs) ->
      if want_more () then begin
        incr localized;
        Telemetry.incr tele "topo.localized";
        let hop = sp "sw%d" h.Fabric.h_switch in
        let repro =
          if po_div <> None then
            (* Packet-out payloads are structured values with no byte-level
               replay path (same limitation as the data campaign). *)
            None
          else begin
            let r =
              Repro.Data
                { dr_entries = env.e_entries_for.(h.Fabric.h_switch);
                  dr_port = h.Fabric.h_ingress;
                  dr_bytes = h.Fabric.h_bytes_in }
            in
            Some
              (if env.e_cfg.minimize then
                 Telemetry.with_span tele "triage.minimize" (fun () ->
                     Harness.minimize_repro
                       (env.e_mk_stack h.Fabric.h_switch)
                       ~max_probes:env.e_cfg.ddmin_probes r)
               else r)
          end
        in
        add ?repro
          ~context:(Report.context ~goal:fl.fl_id ~hop ())
          "fabric behavior divergence"
          (Format.asprintf
             "flow %s hop sw%d (ingress %d): switch behaved %a, model admits %a"
             fl.fl_id h.Fabric.h_switch h.Fabric.h_ingress Interp.pp_behavior
             h.Fabric.h_behavior pp_behavior_set model_bs)
      end
  | None -> (
      let expectation = Endtoend.of_trace model_trace in
      let last_judged =
        List.fold_left
          (fun acc j -> match j with Some x -> Some x | None -> acc)
          None judged
      in
      let bytes_equal a b =
        String.equal a b
        ||
        match last_judged with
        | Some (h, (_, info)) ->
            Dataplane.masked_bytes_equal
              env.e_oracles.(h.Fabric.h_switch)
              info a b
        | None -> false
      in
      match Endtoend.check ~bytes_equal expectation switch_trace with
      | Ok () -> ()
      | Error detail ->
          let hash_consulted =
            List.exists
              (function
                | Some (_, (_, info)) -> info.Interp.ri_hash_calls > 0
                | None -> false)
              judged
          in
          if hash_consulted then
            (* Every hop matched the model up to taint, and at least one
               consulted a hash: the end-to-end path itself may legally
               differ from the Fixed-0 reference trace. *)
            Telemetry.incr tele "topo.nondet_admits"
          else if want_more () then begin
            match switch_trace.Fabric.t_disposition with
            | Fabric.Dead_hop k ->
                incr localized;
                Telemetry.incr tele "topo.localized";
                add
                  ~context:(Report.context ~goal:fl.fl_id ~hop:(sp "sw%d" k) ())
                  "fabric dead switch"
                  (sp "flow %s: %s" fl.fl_id detail)
            | Fabric.Budget_exhausted _ ->
                add
                  ~context:(Report.context ~goal:fl.fl_id ())
                  "fabric forwarding loop"
                  (sp "flow %s: %s" fl.fl_id detail)
            | _ ->
                add
                  ~context:(Report.context ~goal:fl.fl_id ())
                  "fabric delivery divergence"
                  (sp "flow %s: %s" fl.fl_id detail)
          end)

(* --- flow slices -----------------------------------------------------------

   Same decomposition discipline as the data campaign: contiguous slices
   of the deterministic flow list, each a pure function of (env, slice) —
   packet processing never mutates switch state — with the incident
   budget counted from the parent's post-setup base and the merge
   truncating the in-order concatenation. *)

type slice_result = {
  fc_incidents : Report.incident list;
  fc_flows : int;
  fc_delivered : int;
  fc_dropped : int;
  fc_hops : int;
  fc_localized : int;
}

let run_slice env ~base_incidents (_offset, slice_flows) =
  let tele = Telemetry.get () in
  let incidents = ref [] in
  let n_incidents = ref base_incidents in
  let flows = ref 0 in
  let delivered = ref 0 in
  let dropped = ref 0 in
  let hops = ref 0 in
  let localized = ref 0 in
  let want_more () = !n_incidents < env.e_cfg.max_incidents in
  let add ?context ?repro kind detail =
    if want_more () then begin
      incr n_incidents;
      Telemetry.incr tele "campaign.incidents";
      incidents :=
        Report.incident ?context ?repro Report.Fabric ~kind ~detail
        :: !incidents
    end
  in
  List.iter
    (fun fl ->
      incr flows;
      test_flow env ~tele ~add ~want_more ~delivered ~dropped ~hops ~localized
        fl)
    slice_flows;
  { fc_incidents = List.rev !incidents;
    fc_flows = !flows;
    fc_delivered = !delivered;
    fc_dropped = !dropped;
    fc_hops = !hops;
    fc_localized = !localized }

module Json = Telemetry.Json

let serialize_slice r =
  Json.obj
    [ ("incidents", Json.arr (List.map Report.incident_ipc_to_json r.fc_incidents));
      ("flows", Json.int r.fc_flows);
      ("delivered", Json.int r.fc_delivered);
      ("dropped", Json.int r.fc_dropped);
      ("hops", Json.int r.fc_hops);
      ("localized", Json.int r.fc_localized) ]

let deserialize_slice payload =
  let ( let* ) = Result.bind in
  let* j = Jsonp.parse payload in
  let int name =
    match Option.bind (Jsonp.member name j) Jsonp.to_int with
    | Some n -> Ok n
    | None -> Error (sp "fabric slice payload: missing field %S" name)
  in
  let* fc_incidents =
    match Jsonp.member "incidents" j with
    | Some (Jsonp.Arr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* i = Report.incident_of_ipc_json x in
            Ok (i :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "fabric slice payload: missing incidents"
  in
  let* fc_flows = int "flows" in
  let* fc_delivered = int "delivered" in
  let* fc_dropped = int "dropped" in
  let* fc_hops = int "hops" in
  let* fc_localized = int "localized" in
  Ok { fc_incidents; fc_flows; fc_delivered; fc_dropped; fc_hops; fc_localized }

let truncate n xs =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n xs

let run ?(jobs = 1) program cfg =
  let tele = Telemetry.get () in
  Telemetry.with_span tele "topo.campaign" @@ fun () ->
  let start = Telemetry.Clock.now () in
  let topo = Topo.build ?spines:cfg.spines cfg.shape cfg.switches in
  let n = Topo.switches topo in
  let entries_for =
    Array.init n (fun s -> Routes.entries topo program ~switch:s)
  in
  let incidents = ref [] in
  let n_incidents = ref 0 in
  let add ?context ?repro kind detail =
    if !n_incidents < cfg.max_incidents then begin
      incr n_incidents;
      Telemetry.incr tele "campaign.incidents";
      incidents :=
        Report.incident ?context ?repro Report.Fabric ~kind ~detail
        :: !incidents
    end
  in
  let faults_for s =
    match List.assoc_opt s cfg.faults with Some fs -> fs | None -> []
  in
  let mk_stack s () =
    Stack.create ~faults:(faults_for s) ~hash_seed:(0x5EED + cfg.seed + s)
      ~compile:cfg.compile program
  in
  (* Setup runs once in the parent; forked slice workers inherit the
     programmed stacks and model states copy-on-write. *)
  let stacks =
    Array.init n (fun s ->
        let st = mk_stack s () in
        let status = Stack.push_p4info st in
        if not (Status.is_ok status) then
          add "p4info rejected"
            ~context:(Report.context ~hop:(sp "sw%d" s) ())
            (Format.asprintf "sw%d: Set P4Info failed: %a" s Status.pp status);
        install st entries_for.(s) (fun ~entry detail ->
            add "entry rejected during fabric setup"
              ~context:
                (Report.context ~table:entry.Entry.e_table ~hop:(sp "sw%d" s)
                   ())
              (sp "sw%d: %s" s detail));
        st)
  in
  (* The reference fabric runs over the intended entry sets regardless of
     what each switch accepted — a rejection is already an incident. *)
  let model_cfgs =
    Array.init n (fun s ->
        let state = State.create () in
        List.iter (fun e -> ignore (State.insert state e)) entries_for.(s);
        { Interp.program;
          state;
          hash_mode = Interp.Fixed 0;
          mirror_map = Workload.mirror_map entries_for.(s) })
  in
  let taint =
    (Switchv_analysis.Analysis.facts ~check_restrictions:false program)
      .Switchv_analysis.Analysis.f_taint
  in
  let oracles =
    Array.map (fun c -> Dataplane.create ~compile:cfg.compile c ~taint)
      model_cfgs
  in
  let env =
    { e_topo = topo;
      e_cfg = cfg;
      e_stacks = stacks;
      e_stack_nodes = Array.init n (fun s -> Fabric.stack_node s stacks.(s));
      e_model_nodes =
        Array.init n (fun s ->
            Fabric.model_node ~compile:cfg.compile s model_cfgs.(s));
      e_model_cfgs = model_cfgs;
      e_oracles = oracles;
      e_entries_for = entries_for;
      e_budget =
        (match cfg.budget with
        | Some b -> b
        | None -> Fabric.default_budget topo);
      e_mk_stack = mk_stack }
  in
  let all_flows = flows topo cfg in
  let shards = max 1 cfg.shards in
  let slices = Shard.partition ~shards all_flows in
  let base_incidents = !n_incidents in
  let slice_results =
    if jobs <= 1 || shards = 1 then
      Array.to_list (Array.map (run_slice env ~base_incidents) slices)
    else begin
      let task s = serialize_slice (run_slice env ~base_incidents slices.(s)) in
      let pool = Pool.run ~jobs ~shards task in
      List.filter_map
        (function
          | Pool.Done payload -> (
              match deserialize_slice payload with
              | Ok r -> Some r
              | Error e ->
                  Telemetry.incr tele "parallel.workers_failed";
                  Printf.eprintf
                    "switchv: dropping undecodable fabric slice: %s\n%!" e;
                  None)
          | Pool.Lost _ -> None)
        (Array.to_list pool.Pool.outcomes)
    end
  in
  let merged =
    truncate
      (cfg.max_incidents - base_incidents)
      (List.concat_map (fun r -> r.fc_incidents) slice_results)
  in
  n_incidents := base_incidents + List.length merged;
  incidents := List.rev_append merged !incidents;
  let sum f = List.fold_left (fun a r -> a + f r) 0 slice_results in
  let switch_coverage =
    List.init n (fun s ->
        let c =
          Coverage.of_registry ~prefix:(sp "topo.sw.%d." s) tele program
        in
        (s, c.Coverage.covered, c.Coverage.total))
  in
  let stats =
    { Report.fs_shape = Topo.shape_to_string cfg.shape;
      fs_switches = n;
      fs_links = Topo.link_count topo;
      fs_flows = sum (fun r -> r.fc_flows);
      fs_delivered = sum (fun r -> r.fc_delivered);
      fs_dropped = sum (fun r -> r.fc_dropped);
      fs_hops = sum (fun r -> r.fc_hops);
      fs_localized = sum (fun r -> r.fc_localized);
      fs_duration = Telemetry.Clock.duration ~since:start;
      fs_switch_coverage = switch_coverage }
  in
  (List.rev !incidents, stats)

let cluster incidents =
  let tele = Telemetry.get () in
  Telemetry.incr ~n:0 tele "triage.duplicates_collapsed";
  let groups = Fingerprint.cluster Report.fingerprint incidents in
  Telemetry.incr tele "triage.duplicates_collapsed"
    ~n:(List.length incidents - List.length groups);
  let reps = List.map (fun (i, _, _) -> i) groups in
  let clusters =
    List.map
      (fun (i, fp, count) ->
        { Report.cl_fingerprint = fp; cl_count = count; cl_example = i })
      groups
  in
  (reps, clusters)
