(** The SwitchV harness: the end-to-end nightly validation run (§2).

    A full run performs control-plane validation (p4-fuzzer + oracle)
    followed by data-plane validation (p4-symbolic + reference interpreter
    differential testing), each against a freshly provisioned switch — as
    a nightly job would re-provision the device under test. *)

module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Entry = Switchv_p4runtime.Entry
module Cache = Switchv_symbolic.Cache

type triage = {
  dedup : bool;
      (** Collapse incidents with identical fingerprints into clusters;
          the report keeps one representative per cluster plus a
          {!Report.cluster} summary. *)
  minimize : bool;
      (** Delta-debug each kept reproducer down to a 1-minimal input.
          Expensive — every ddmin probe provisions a fresh stack via
          [mk_stack] and replays — so off by default; the triage bench and
          [switchv replay] turn it on deliberately. *)
  ddmin_probes : int;  (** probe budget per ddmin invocation *)
}

val default_triage : triage
(** [dedup = true; minimize = false; ddmin_probes = 256]. *)

type config = {
  control : Control_campaign.config;
  data_entries : Entry.t list;
  cache : Cache.t option;
  exploratory : bool;   (** include the canned exploratory coverage goals *)
  fuzzed_data_pass : bool;
      (** §7's proposed extension: after the control-plane campaign, replay
          the (valid) entries the fuzzer left installed into a fresh switch
          and run a second data-plane pass over them — fuzzed entries
          exercise control paths the production replay does not. *)
  max_incidents : int;
  triage : triage option;
      (** Post-campaign triage pass ({!default_triage} by default);
          [None] reports raw miscompares untriaged. *)
  jobs : int;
      (** Worker processes for sharded campaign execution (default 1 =
          fully sequential, no forking). The shard decompositions are
          fixed by [control.shards] / [data_shards], so the report's
          incidents, clusters, and corpus records are identical at any
          [jobs] value. *)
  data_shards : int;
      (** Coverage-goal slices for the data campaign (see
          {!Data_campaign.config}[.shards]). *)
  incremental : bool;
      (** Incremental SMT pipeline for packet generation (on by default;
          see {!Data_campaign.config}[.incremental]). Results are
          identical either way. *)
  taint : bool;
      (** Taint-aware goal classification and set-valued data-plane
          verdicts (on by default; see {!Data_campaign.config}[.taint]).
          Applies to the main and the fuzzed-entry data passes. *)
  greybox : bool;
      (** Coverage-guided feedback across both campaigns (on by default):
          the control fuzzer runs its probe/corpus/power-schedule loop
          (overrides [control.greybox]), and the data campaigns observe
          per-packet deltas and skip branch goals the control phase
          already covered concretely ([covered_edges] computed here from
          the registry delta, jobs-invariant). [false] reproduces the
          blind pre-feedback pipeline byte-identically. *)
  compile : bool;
      (** Staged-evaluator model execution in the data campaigns (on by
          default; see {!Data_campaign.config}[.compile]). The caller's
          stacks carry their own flag ({!Switchv_switch.Stack.create}).
          [false] — the [--no-compile] escape hatch — is byte-identical. *)
}

val default_config : Entry.t list -> config

val minimize_repro :
  (unit -> Stack.t) ->
  max_probes:int ->
  Switchv_triage.Repro.t ->
  Switchv_triage.Repro.t
(** Delta-debug one reproducer to a 1-minimal input (control: triggering
    batch first, then the prefix; data: the entry set). Each probe replays
    against a fresh [mk_stack ()]. Exposed for the triage bench and
    targeted shrinking outside a full {!validate} run. *)

val validate : (unit -> Stack.t) -> config -> Report.t
(** [validate mk_stack config]: runs both campaigns; [mk_stack] must build
    a fresh switch (same faults, clean state) for each campaign. *)

val detect : (unit -> Stack.t) -> config -> Report.detector option
(** Convenience: which SwitchV component (if any) finds an incident. *)
