(** The data-plane validation campaign (§5): install a replayed entry set
    on the switch, generate test packets with p4-symbolic, run each packet
    through the switch and through the reference P4 interpreter, and check
    that the switch's behaviour lies in the set of behaviours the model
    admits. WCMP/hash non-determinism is handled by the set-valued
    {!Switchv_oracle.Dataplane} oracle (taint-masked comparison with
    candidate egress sets, escalating to round-robin hash enumeration
    when the fast checks cannot decide).

    Also exercises the controller packet-I/O contract: packet-out to every
    port, and submit-to-ingress processing. *)

module Stack = Switchv_switch.Stack
module Entry = Switchv_p4runtime.Entry
module Packetgen = Switchv_symbolic.Packetgen
module Cache = Switchv_symbolic.Cache

type config = {
  entries : Entry.t list;
      (** the replayed forwarding state, in dependency order *)
  ports : int list;                  (** ingress ports packets may use *)
  extra_goals : Switchv_symbolic.Symexec.encoding -> Packetgen.goal list;
      (** tester-provided coverage assertions, built once the encoding exists *)
  include_branch_goals : bool;
  prune_dead_goals : bool;
      (** drop goals static analysis proves uncoverable (dead tables,
          statically-decided branches) before the SMT stage; on by
          default. Sound: pruned goals would be classified uncoverable by
          the solver anyway, so divergence results are unchanged — the
          saving shows up in the [analysis.goals_pruned] counter. *)
  cache : Cache.t option;
  max_incidents : int;
  test_packet_io : bool;
  shards : int;
      (** Number of coverage-goal slices the generation + testing stages
          split into ([1] = the historical single-pass campaign). The
          slicing is a function of the goal list alone, so results at a
          given shard count are identical at any [jobs] count; shards
          share the on-disk packet cache. *)
  incremental : bool;
      (** Use the incremental SMT pipeline for packet generation (on by
          default). Canonical model extraction makes the generated packets
          identical either way — see {!Packetgen.generate} — so this knob
          only trades solver work, never results. *)
  taint : bool;
      (** Use the static taint summary (on by default): branch goals whose
          path condition crosses a hash/selector-tainted branch are
          classified [Tainted] and skipped ([analysis.tainted_goals],
          [ds_tainted_goals]), and the packet verdict goes through the
          set-valued {!Switchv_oracle.Dataplane} oracle instead of always
          enumerating hash rounds. Escalation makes the verdicts
          fault-equivalent; on hash-free programs, incidents and corpus
          output are byte-identical either way. *)
  greybox : bool;
      (** Capture the coverage-counter delta of every injected test packet
          into a slice-local {!Switchv_fuzzer.Greybox} novelty map and
          admit coverage-novel packets to its corpus (on by default).
          Observation only — it never alters which packets are generated
          or injected — and slice-local, so results stay byte-identical at
          any [jobs]. *)
  compile : bool;
      (** Run every model execution through the staged evaluator
          ({!Switchv_bmv2.Compile}: one-time closure compilation + indexed
          table lookups) instead of the tree-walking interpreter (on by
          default). Behaviour-identical by contract — incidents, clusters
          and corpus are byte-identical either way (the [--no-compile]
          escape hatch, cmp-gated by `make check-scale`). *)
  covered_edges : string list;
      (** Coverage edges ([cov.…] keys) the caller's earlier campaign
          already drove concretely; branch goals over them skip the SMT
          stage ({!Packetgen.prune_concretely_covered},
          [analysis.concretely_covered_skipped]). Threaded explicitly by
          the harness (the control campaign's counter delta) rather than
          read from the ambient registry, so a campaign's goal list is a
          pure function of its config. Empty by default — no filtering. *)
}

val default_config : Entry.t list -> config

val run :
  ?push_p4info:bool ->
  ?jobs:int ->
  Stack.t ->
  config ->
  Report.incident list * Report.data_stats
(** Install the entries, then generate + test each goal slice —
    sequentially when [jobs <= 1] (the default), else over a forked
    {!Switchv_parallel.Pool} whose workers inherit the installed stack
    and symbolic encoding copy-on-write. Slice results merge in slice
    order with the incident list truncated to [max_incidents]; the
    packet-I/O contract runs in the parent after the merge. A lost
    worker drops its slices (logged, [parallel.workers_failed]) without
    aborting the campaign. *)

val exploratory_goals : Switchv_symbolic.Symexec.encoding -> Packetgen.goal list
(** Canned tester assertions beyond entry coverage: unusual ether types
    (LLDP, LACP, ARP, VLAN), TTL boundary values, punt/drop outcomes —
    the kind of hand-written coverage constraints §5 describes testers
    adding on top of the built-in metrics. *)
