(** The trivial traditional integration-test suite of §6.2, used to assess
    which SwitchV-found bugs simpler testing would also have caught
    (Table 2). Six tests run in sequence against a fresh switch:

    + Set P4Info
    + Table entry programming (one rule per table, incl. an ACL punt rule
      and an IPv4 route)
    + Read all tables (compare with what was installed)
    + Packet-in (the punt rule punts)
    + Packet-out (each port emits)
    + Packet forwarding (the IPv4 route forwards) *)

module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault

val run : Stack.t -> Fault.trivial_test option
(** The first test that fails, or [None] when all six pass. *)

val run_all : Stack.t -> (Fault.trivial_test * bool) list
(** Pass/fail for every test in sequence (later tests still run, using the
    state the earlier tests left behind). *)
