module Telemetry = Switchv_telemetry.Telemetry

type detector = Fuzzer | Symbolic

let detector_to_string = function Fuzzer -> "p4-fuzzer" | Symbolic -> "p4-symbolic"

type incident = {
  detector : detector;
  kind : string;
  detail : string;
}

let incident detector ~kind ~detail = { detector; kind; detail }

let pp_incident fmt i =
  Format.fprintf fmt "%s [%s] %s" (detector_to_string i.detector) i.kind i.detail

type control_stats = {
  cs_batches : int;
  cs_updates : int;
  cs_valid_updates : int;
  cs_invalid_updates : int;
  cs_duration : float;
}

type data_stats = {
  ds_entries_installed : int;
  ds_goals : int;
  ds_covered : int;
  ds_uncoverable : int;
  ds_packets_tested : int;
  ds_generation_time : float;
  ds_testing_time : float;
  ds_cache_hits : int;
  ds_cache_misses : int;
}

type t = {
  program_name : string;
  control_incidents : incident list;
  data_incidents : incident list;
  control_stats : control_stats option;
  data_stats : data_stats option;
  telemetry : Telemetry.snapshot option;
}

let empty program_name =
  { program_name; control_incidents = []; data_incidents = [];
    control_stats = None; data_stats = None; telemetry = None }

let incidents t = t.control_incidents @ t.data_incidents

let clean t = incidents t = []

let detected_by t =
  if t.control_incidents <> [] then Some Fuzzer
  else if t.data_incidents <> [] then Some Symbolic
  else None

let pp fmt t =
  Format.fprintf fmt "@[<v>SwitchV report for %s@," t.program_name;
  (match t.control_stats with
  | Some s ->
      Format.fprintf fmt
        "control plane: %d batches, %d updates (%d valid / %d invalid) in %.2fs@,"
        s.cs_batches s.cs_updates s.cs_valid_updates s.cs_invalid_updates s.cs_duration
  | None -> ());
  (match t.data_stats with
  | Some s ->
      Format.fprintf fmt
        "data plane: %d entries, %d/%d goals covered (%d uncoverable), %d packets, gen %.2fs, test %.2fs, cache %d hit / %d miss@,"
        s.ds_entries_installed s.ds_covered s.ds_goals s.ds_uncoverable
        s.ds_packets_tested s.ds_generation_time s.ds_testing_time
        s.ds_cache_hits s.ds_cache_misses
  | None -> ());
  let all = incidents t in
  if all = [] then Format.fprintf fmt "no incidents@,"
  else begin
    Format.fprintf fmt "%d incident(s):@," (List.length all);
    List.iter (fun i -> Format.fprintf fmt "  %a@," pp_incident i) all
  end;
  (match t.telemetry with
  | Some snap -> Format.fprintf fmt "%a" Telemetry.pp_snapshot snap
  | None -> ());
  Format.fprintf fmt "@]"

(* --- JSON ----------------------------------------------------------------- *)

module Json = Telemetry.Json

let control_stats_to_json s =
  Json.obj
    [ ("batches", Json.int s.cs_batches); ("updates", Json.int s.cs_updates);
      ("valid_updates", Json.int s.cs_valid_updates);
      ("invalid_updates", Json.int s.cs_invalid_updates);
      ("duration_s", Json.num s.cs_duration) ]

let data_stats_to_json s =
  Json.obj
    [ ("entries_installed", Json.int s.ds_entries_installed);
      ("goals", Json.int s.ds_goals); ("covered", Json.int s.ds_covered);
      ("uncoverable", Json.int s.ds_uncoverable);
      ("packets_tested", Json.int s.ds_packets_tested);
      ("generation_time_s", Json.num s.ds_generation_time);
      ("testing_time_s", Json.num s.ds_testing_time);
      ("cache_hits", Json.int s.ds_cache_hits);
      ("cache_misses", Json.int s.ds_cache_misses) ]

let to_json t =
  let opt f = function Some v -> f v | None -> "null" in
  Json.obj
    [ ("program", Json.str t.program_name);
      ("clean", Json.bool (clean t));
      ("control_stats", opt control_stats_to_json t.control_stats);
      ("data_stats", opt data_stats_to_json t.data_stats);
      ( "incidents",
        Json.arr
          (List.map
             (fun (origin, i) ->
               (* Tag the campaign each incident came from; detector alone
                  is ambiguous once fuzzed-entry passes re-use kinds. *)
               Json.obj
                 [ ("campaign", Json.str origin);
                   ("detector", Json.str (detector_to_string i.detector));
                   ("kind", Json.str i.kind); ("detail", Json.str i.detail) ])
             (List.map (fun i -> ("control", i)) t.control_incidents
             @ List.map (fun i -> ("data", i)) t.data_incidents)) );
      ("telemetry", opt Telemetry.snapshot_to_json t.telemetry) ]
