module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro
module Fingerprint = Switchv_triage.Fingerprint
module Coverage = Switchv_obs.Coverage

type detector = Fuzzer | Symbolic | Fabric

let detector_to_string = function
  | Fuzzer -> "p4-fuzzer"
  | Symbolic -> "p4-symbolic"
  | Fabric -> "p4-fabric"

type context = {
  ctx_table : string option;
  ctx_goal : string option;
  ctx_mutation : string option;
  ctx_batch : int option;
  ctx_hop : string option;
}

let context ?table ?goal ?mutation ?batch ?hop () =
  { ctx_table = table; ctx_goal = goal; ctx_mutation = mutation;
    ctx_batch = batch; ctx_hop = hop }

type incident = {
  detector : detector;
  kind : string;
  detail : string;
  context : context option;
  repro : Repro.t option;
}

let incident ?context ?repro detector ~kind ~detail =
  { detector; kind; detail; context; repro }

let pp_context fmt c =
  let parts =
    List.filter_map Fun.id
      [ Option.map (fun t -> "table=" ^ t) c.ctx_table;
        Option.map (fun g -> "goal=" ^ g) c.ctx_goal;
        Option.map (fun m -> "mutation=" ^ m) c.ctx_mutation;
        Option.map (fun b -> Printf.sprintf "batch=%d" b) c.ctx_batch;
        Option.map (fun h -> "hop=" ^ h) c.ctx_hop ]
  in
  if parts <> [] then Format.fprintf fmt " {%s}" (String.concat ", " parts)

let pp_incident fmt i =
  Format.fprintf fmt "%s [%s] %s" (detector_to_string i.detector) i.kind i.detail;
  Option.iter (pp_context fmt) i.context

let fingerprint i =
  let get f = Option.bind i.context f in
  Fingerprint.make
    ~detector:(detector_to_string i.detector)
    ~kind:i.kind
    ?table:(get (fun c -> c.ctx_table))
    ?goal:(get (fun c -> c.ctx_goal))
    ?mutation:(get (fun c -> c.ctx_mutation))
    ?hop:(get (fun c -> c.ctx_hop))
    ~detail:i.detail ()

type cluster = {
  cl_fingerprint : Fingerprint.t;
  cl_count : int;
  cl_example : incident;
}

type control_stats = {
  cs_batches : int;
  cs_updates : int;
  cs_valid_updates : int;
  cs_invalid_updates : int;
  cs_novel_edges : int;
  cs_corpus_seeds : int;
  cs_duration : float;
}

type data_stats = {
  ds_entries_installed : int;
  ds_goals : int;
  ds_covered : int;
  ds_uncoverable : int;
  ds_tainted_goals : int;
  ds_packets_tested : int;
  ds_generation_time : float;
  ds_testing_time : float;
  ds_cache_hits : int;
  ds_cache_misses : int;
}

type fabric_stats = {
  fs_shape : string;
  fs_switches : int;
  fs_links : int;
  fs_flows : int;
  fs_delivered : int;
  fs_dropped : int;
  fs_hops : int;
  fs_localized : int;
  fs_duration : float;
  fs_switch_coverage : (int * int * int) list;
}

type t = {
  program_name : string;
  control_incidents : incident list;
  data_incidents : incident list;
  fabric_incidents : incident list;
  control_stats : control_stats option;
  data_stats : data_stats option;
  fabric_stats : fabric_stats option;
  clusters : cluster list option;
  telemetry : Telemetry.snapshot option;
  coverage : Coverage.t option;
}

let empty program_name =
  { program_name; control_incidents = []; data_incidents = [];
    fabric_incidents = []; control_stats = None; data_stats = None;
    fabric_stats = None; clusters = None; telemetry = None; coverage = None }

let incidents t = t.control_incidents @ t.data_incidents @ t.fabric_incidents

let clean t = incidents t = []

let detected_by t =
  if t.control_incidents <> [] then Some Fuzzer
  else if t.data_incidents <> [] then Some Symbolic
  else if t.fabric_incidents <> [] then Some Fabric
  else None

let pp fmt t =
  Format.fprintf fmt "@[<v>SwitchV report for %s@," t.program_name;
  (match t.control_stats with
  | Some s ->
      Format.fprintf fmt
        "control plane: %d batches, %d updates (%d valid / %d invalid) in %.2fs@,"
        s.cs_batches s.cs_updates s.cs_valid_updates s.cs_invalid_updates s.cs_duration;
      (* Only with the feedback loop on: --no-greybox reports stay
         byte-identical to the pre-greybox format. *)
      if s.cs_novel_edges > 0 || s.cs_corpus_seeds > 0 then
        Format.fprintf fmt "greybox: %d novel edges, %d corpus seeds@,"
          s.cs_novel_edges s.cs_corpus_seeds
  | None -> ());
  (match t.data_stats with
  | Some s ->
      Format.fprintf fmt
        "data plane: %d entries, %d/%d goals covered (%d uncoverable, %d tainted), %d packets, gen %.2fs, test %.2fs, cache %d hit / %d miss@,"
        s.ds_entries_installed s.ds_covered s.ds_goals s.ds_uncoverable
        s.ds_tainted_goals s.ds_packets_tested s.ds_generation_time
        s.ds_testing_time s.ds_cache_hits s.ds_cache_misses
  | None -> ());
  (match t.fabric_stats with
  | Some s ->
      Format.fprintf fmt
        "fabric: %s topology, %d switches, %d links; %d flows (%d delivered / %d dropped), %d hops, %d localized, %.2fs@,"
        s.fs_shape s.fs_switches s.fs_links s.fs_flows s.fs_delivered
        s.fs_dropped s.fs_hops s.fs_localized s.fs_duration;
      List.iter
        (fun (sw, covered, total) ->
          Format.fprintf fmt "  sw%d coverage: %d/%d edges (%.1f%%)@," sw
            covered total
            (if total = 0 then 0. else 100. *. float_of_int covered /. float_of_int total))
        s.fs_switch_coverage
  | None -> ());
  let all = incidents t in
  if all = [] then Format.fprintf fmt "no incidents@,"
  else begin
    Format.fprintf fmt "%d incident(s):@," (List.length all);
    List.iter (fun i -> Format.fprintf fmt "  %a@," pp_incident i) all
  end;
  (match t.clusters with
  | Some clusters ->
      let miscompares =
        List.fold_left (fun acc c -> acc + c.cl_count) 0 clusters
      in
      Format.fprintf fmt "triage: %d miscompare(s) in %d cluster(s)@,"
        miscompares (List.length clusters);
      List.iter
        (fun c ->
          Format.fprintf fmt "  x%-4d %s" c.cl_count c.cl_fingerprint;
          (match c.cl_example.repro with
          | Some r -> Format.fprintf fmt "  [%a]" Repro.pp r
          | None -> ());
          Format.fprintf fmt "@,")
        clusters
  | None -> ());
  (match t.coverage with
  | Some cov -> Format.fprintf fmt "%a@," Coverage.pp cov
  | None -> ());
  (match t.telemetry with
  | Some snap -> Format.fprintf fmt "%a" Telemetry.pp_snapshot snap
  | None -> ());
  Format.fprintf fmt "@]"

(* --- JSON ----------------------------------------------------------------- *)

module Json = Telemetry.Json

let control_stats_to_json s =
  Json.obj
    [ ("batches", Json.int s.cs_batches); ("updates", Json.int s.cs_updates);
      ("valid_updates", Json.int s.cs_valid_updates);
      ("invalid_updates", Json.int s.cs_invalid_updates);
      ("novel_edges", Json.int s.cs_novel_edges);
      ("corpus_seeds", Json.int s.cs_corpus_seeds);
      ("duration_s", Json.num s.cs_duration) ]

let data_stats_to_json s =
  Json.obj
    [ ("entries_installed", Json.int s.ds_entries_installed);
      ("goals", Json.int s.ds_goals); ("covered", Json.int s.ds_covered);
      ("uncoverable", Json.int s.ds_uncoverable);
      ("tainted_goals", Json.int s.ds_tainted_goals);
      ("packets_tested", Json.int s.ds_packets_tested);
      ("generation_time_s", Json.num s.ds_generation_time);
      ("testing_time_s", Json.num s.ds_testing_time);
      ("cache_hits", Json.int s.ds_cache_hits);
      ("cache_misses", Json.int s.ds_cache_misses) ]

let opt f = function Some v -> f v | None -> "null"

let fabric_stats_to_json s =
  Json.obj
    [ ("shape", Json.str s.fs_shape);
      ("switches", Json.int s.fs_switches);
      ("links", Json.int s.fs_links);
      ("flows", Json.int s.fs_flows);
      ("delivered", Json.int s.fs_delivered);
      ("dropped", Json.int s.fs_dropped);
      ("hops", Json.int s.fs_hops);
      ("localized", Json.int s.fs_localized);
      ("duration_s", Json.num s.fs_duration);
      ( "switch_coverage",
        Json.arr
          (List.map
             (fun (sw, covered, total) ->
               Json.obj
                 [ ("switch", Json.int sw); ("covered", Json.int covered);
                   ("total", Json.int total) ])
             s.fs_switch_coverage) ) ]

let context_to_json c =
  let field name = function Some v -> [ (name, Json.str v) ] | None -> [] in
  Json.obj
    (field "table" c.ctx_table @ field "goal" c.ctx_goal
    @ field "mutation" c.ctx_mutation
    @ (match c.ctx_batch with Some b -> [ ("batch", Json.int b) ] | None -> [])
    @ field "hop" c.ctx_hop)

let incident_to_json (origin, i) =
  (* Tag the campaign each incident came from; detector alone is ambiguous
     once fuzzed-entry passes re-use kinds. *)
  Json.obj
    [ ("campaign", Json.str origin);
      ("detector", Json.str (detector_to_string i.detector));
      ("kind", Json.str i.kind); ("detail", Json.str i.detail);
      ("context", opt context_to_json i.context);
      ("fingerprint", Json.str (fingerprint i));
      ("repro", opt Repro.to_json i.repro) ]

(* --- IPC (de)serialization -------------------------------------------------

   Sharded campaigns run in forked workers and stream incidents + stats back
   to the parent as JSON. These converters are exact inverses over every
   value the campaigns produce, which is what makes a merged parallel report
   identical to the sequential one. *)

module Jsonp = Switchv_triage.Jsonp

let detector_of_string = function
  | "p4-fuzzer" -> Some Fuzzer
  | "p4-symbolic" -> Some Symbolic
  | "p4-fabric" -> Some Fabric
  | _ -> None

let context_of_json j =
  let str name = Option.bind (Jsonp.member name j) Jsonp.to_str in
  { ctx_table = str "table";
    ctx_goal = str "goal";
    ctx_mutation = str "mutation";
    ctx_batch = Option.bind (Jsonp.member "batch" j) Jsonp.to_int;
    ctx_hop = str "hop" }

let incident_ipc_to_json i =
  Json.obj
    [ ("detector", Json.str (detector_to_string i.detector));
      ("kind", Json.str i.kind); ("detail", Json.str i.detail);
      ("context", opt context_to_json i.context);
      ("repro", opt Repro.to_json i.repro) ]

let incident_of_ipc_json j =
  let ( let* ) = Result.bind in
  let str name =
    match Option.bind (Jsonp.member name j) Jsonp.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "incident: missing field %S" name)
  in
  let* det = str "detector" in
  let* detector =
    match detector_of_string det with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "incident: unknown detector %S" det)
  in
  let* kind = str "kind" in
  let* detail = str "detail" in
  let context =
    match Jsonp.member "context" j with
    | Some (Jsonp.Obj _ as cj) -> Some (context_of_json cj)
    | _ -> None
  in
  let* repro =
    match Jsonp.member "repro" j with
    | None | Some Jsonp.Null -> Ok None
    | Some rj -> Result.map Option.some (Repro.of_json rj)
  in
  Ok { detector; kind; detail; context; repro }

let control_stats_of_json j =
  let ( let* ) = Result.bind in
  let int name =
    match Option.bind (Jsonp.member name j) Jsonp.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "control_stats: missing field %S" name)
  in
  let num name =
    match Option.bind (Jsonp.member name j) Jsonp.to_num with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "control_stats: missing field %S" name)
  in
  let* cs_batches = int "batches" in
  let* cs_updates = int "updates" in
  let* cs_valid_updates = int "valid_updates" in
  let* cs_invalid_updates = int "invalid_updates" in
  let* cs_novel_edges = int "novel_edges" in
  let* cs_corpus_seeds = int "corpus_seeds" in
  let* cs_duration = num "duration_s" in
  Ok { cs_batches; cs_updates; cs_valid_updates; cs_invalid_updates;
       cs_novel_edges; cs_corpus_seeds; cs_duration }

let empty_control_stats =
  { cs_batches = 0; cs_updates = 0; cs_valid_updates = 0; cs_invalid_updates = 0;
    cs_novel_edges = 0; cs_corpus_seeds = 0; cs_duration = 0. }

let merge_control_stats ss =
  (* Durations are clamped at zero per shard: a worker whose clock stepped
     backwards must not subtract time from the merged total. *)
  List.fold_left
    (fun acc s ->
      { cs_batches = acc.cs_batches + s.cs_batches;
        cs_updates = acc.cs_updates + s.cs_updates;
        cs_valid_updates = acc.cs_valid_updates + s.cs_valid_updates;
        cs_invalid_updates = acc.cs_invalid_updates + s.cs_invalid_updates;
        (* Shard-local novelty counts: the sum can double-count an edge two
           shards each discovered independently — reported as the total
           feedback signal observed, not a global distinct-edge count. *)
        cs_novel_edges = acc.cs_novel_edges + s.cs_novel_edges;
        cs_corpus_seeds = acc.cs_corpus_seeds + s.cs_corpus_seeds;
        cs_duration = acc.cs_duration +. Float.max 0. s.cs_duration })
    empty_control_stats ss

let to_json t =
  Json.obj
    [ ("program", Json.str t.program_name);
      ("clean", Json.bool (clean t));
      ("control_stats", opt control_stats_to_json t.control_stats);
      ("data_stats", opt data_stats_to_json t.data_stats);
      ("fabric_stats", opt fabric_stats_to_json t.fabric_stats);
      ( "incidents",
        Json.arr
          (List.map incident_to_json
             (List.map (fun i -> ("control", i)) t.control_incidents
             @ List.map (fun i -> ("data", i)) t.data_incidents
             @ List.map (fun i -> ("fabric", i)) t.fabric_incidents)) );
      ( "clusters",
        opt
          (fun clusters ->
            Json.arr
              (List.map
                 (fun c ->
                   Json.obj
                     [ ("fingerprint", Json.str c.cl_fingerprint);
                       ("count", Json.int c.cl_count) ])
                 clusters))
          t.clusters );
      ("telemetry", opt Telemetry.snapshot_to_json t.telemetry);
      ("coverage", opt Coverage.to_json t.coverage) ]
