type detector = Fuzzer | Symbolic

let detector_to_string = function Fuzzer -> "p4-fuzzer" | Symbolic -> "p4-symbolic"

type incident = {
  detector : detector;
  kind : string;
  detail : string;
}

let incident detector ~kind ~detail = { detector; kind; detail }

let pp_incident fmt i =
  Format.fprintf fmt "%s [%s] %s" (detector_to_string i.detector) i.kind i.detail

type control_stats = {
  cs_batches : int;
  cs_updates : int;
  cs_valid_updates : int;
  cs_invalid_updates : int;
  cs_duration : float;
}

type data_stats = {
  ds_entries_installed : int;
  ds_goals : int;
  ds_covered : int;
  ds_uncoverable : int;
  ds_packets_tested : int;
  ds_generation_time : float;
  ds_testing_time : float;
  ds_from_cache : bool;
}

type t = {
  program_name : string;
  control_incidents : incident list;
  data_incidents : incident list;
  control_stats : control_stats option;
  data_stats : data_stats option;
}

let empty program_name =
  { program_name; control_incidents = []; data_incidents = [];
    control_stats = None; data_stats = None }

let incidents t = t.control_incidents @ t.data_incidents

let clean t = incidents t = []

let detected_by t =
  if t.control_incidents <> [] then Some Fuzzer
  else if t.data_incidents <> [] then Some Symbolic
  else None

let pp fmt t =
  Format.fprintf fmt "@[<v>SwitchV report for %s@," t.program_name;
  (match t.control_stats with
  | Some s ->
      Format.fprintf fmt
        "control plane: %d batches, %d updates (%d valid / %d invalid) in %.2fs@,"
        s.cs_batches s.cs_updates s.cs_valid_updates s.cs_invalid_updates s.cs_duration
  | None -> ());
  (match t.data_stats with
  | Some s ->
      Format.fprintf fmt
        "data plane: %d entries, %d/%d goals covered (%d uncoverable), %d packets, gen %.2fs%s, test %.2fs@,"
        s.ds_entries_installed s.ds_covered s.ds_goals s.ds_uncoverable
        s.ds_packets_tested s.ds_generation_time
        (if s.ds_from_cache then " (cached)" else "")
        s.ds_testing_time
  | None -> ());
  let all = incidents t in
  if all = [] then Format.fprintf fmt "no incidents@,"
  else begin
    Format.fprintf fmt "%d incident(s):@," (List.length all);
    List.iter (fun i -> Format.fprintf fmt "  %a@," pp_incident i) all
  end;
  Format.fprintf fmt "@]"
