(** Multi-switch fabric campaigns: PTF-style end-to-end differential
    testing with hop-localized triage.

    A fabric campaign wires [switches] simulated stacks into a
    {!Switchv_topo.Topo} shape, programs every switch with the
    deterministic {!Switchv_topo.Routes} plan, and drives a fixed suite of
    end-to-end flows (host-to-host traffic at TTL boundaries, DSCP-marked
    mirror traffic, unadmitted/LLDP probes, and controller packet-outs)
    through both the stack fabric and an identically-wired reference-model
    fabric. Each flow is checked two ways:

    - {e per hop}: every switch-side hop is judged by the set-valued
      {!Switchv_oracle.Dataplane} oracle against the model run on that
      hop's {e own} input bytes. The first divergent hop localizes the
      fault to the switch that introduced it ("hop-differential triage"):
      downstream hops are self-consistent given their perturbed input, so
      only the faulty switch diverges. Localized incidents carry the hop
      in their context (["sw<k>"]) and fingerprint, plus a data reproducer
      (that switch's entries + the bytes as they arrived there) which
      delta-debugs like any single-switch repro;
    - {e end to end}: the model trace's {!Switchv_oracle.Endtoend}
      expectation (deliver at a specific edge, or nowhere) is asserted on
      the switch trace, with delivered bytes compared under the oracle's
      taint mask. Mismatches with no divergent hop are reported
      unlocalized — unless some hop consulted a hash, in which case the
      mismatch is admitted ([topo.nondet_admits]) like any set-valued
      verdict.

    Determinism: topology, routes, and the flow suite are pure functions
    of the config; flows are partitioned by {!Switchv_parallel.Shard} and
    judged independently, so incidents (and corpus output) are
    byte-identical at any [jobs] value for a fixed shard count. *)

module Topo = Switchv_topo.Topo
module Fault = Switchv_switch.Fault
module Ast = Switchv_p4ir.Ast

type config = {
  shape : Topo.shape;
  switches : int;
  spines : int option;          (** leaf-spine only; [None] = default *)
  seed : int;                   (** perturbs every switch's hash seed *)
  budget : int option;          (** hop budget; [None] = {!Switchv_topo.Fabric.default_budget} *)
  max_incidents : int;
  shards : int;                 (** flow slices (fixed decomposition) *)
  packet_out : bool;            (** include packet-out injection flows *)
  faults : (int * Fault.t list) list;
      (** per-switch seeded faults, keyed by switch index; absent switches
          run clean *)
  minimize : bool;              (** ddmin localized reproducers in-slice *)
  ddmin_probes : int;
  compile : bool;
      (** staged evaluator for every stack ASIC and model node (default
          [true]); [false] is the interpreted [--no-compile] reference
          path — incidents and clusters are byte-identical either way *)
}

val default_config : Topo.shape -> int -> config
(** Seedless, unsharded, packet-out on, 25-incident budget, no
    minimization. *)

val run :
  ?jobs:int -> Ast.program -> config ->
  Report.incident list * Report.fabric_stats
(** Build the fabric, program it, run the flow suite. Setup failures
    (P4Info push, entry rejections) become incidents with the switch as
    their hop. Per-switch model-edge coverage (from the
    [topo.sw.<i>.cov.*] re-emission) lands in
    [fs_switch_coverage]. *)

val cluster :
  Report.incident list -> Report.incident list * Report.cluster list
(** Fingerprint-dedup (hop included): representatives plus cluster
    summary, bumping [triage.duplicates_collapsed] like the harness
    triage pass. *)
