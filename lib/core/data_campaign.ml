module Stack = Switchv_switch.Stack
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Cache = Switchv_symbolic.Cache
module Workload = Switchv_sai.Workload
module Packet = Switchv_packet.Packet
module Term = Switchv_smt.Term
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro

type config = {
  entries : Entry.t list;
  ports : int list;
  extra_goals : Symexec.encoding -> Packetgen.goal list;
  include_branch_goals : bool;
  prune_dead_goals : bool;
  cache : Cache.t option;
  max_incidents : int;
  test_packet_io : bool;
}

let default_config entries =
  { entries; ports = [ 1; 2; 3; 4 ]; extra_goals = (fun _ -> []);
    include_branch_goals = true; prune_dead_goals = true;
    cache = None; max_incidents = 25; test_packet_io = true }

let exploratory_goals (enc : Symexec.encoding) =
  let ether_type = Term.var (Symexec.field_var ~header:"ethernet" ~field:"ether_type") 16 in
  let ether_goal et name =
    Packetgen.custom_goal
      ~id:(Printf.sprintf "explore:ether:%s" name)
      ~desc:(Printf.sprintf "a packet with ether_type %s reaches the switch" name)
      (Term.eq ether_type (Term.of_int ~width:16 et))
  in
  let has_ipv4 =
    List.exists
      (fun (h : Switchv_packet.Header.t) -> String.equal h.name "ipv4")
      enc.enc_program.p_headers
  in
  let ipv4_goals =
    if not has_ipv4 then []
    else begin
      let valid = Term.bvar (Symexec.validity_var ~header:"ipv4") in
      let ttl = Term.var (Symexec.field_var ~header:"ipv4" ~field:"ttl") 8 in
      let dscp = Term.var (Symexec.field_var ~header:"ipv4" ~field:"dscp") 6 in
      [ Packetgen.custom_goal ~id:"explore:ttl:0" ~desc:"IPv4 packet with TTL 0"
          (Term.and_ valid (Term.eq ttl (Term.of_int ~width:8 0)));
        Packetgen.custom_goal ~id:"explore:ttl:1" ~desc:"IPv4 packet with TTL 1"
          (Term.and_ valid (Term.eq ttl (Term.of_int ~width:8 1)));
        Packetgen.custom_goal ~id:"explore:ttl:2" ~desc:"IPv4 packet with TTL 2"
          (Term.and_ valid (Term.eq ttl (Term.of_int ~width:8 2)));
        Packetgen.custom_goal ~id:"explore:ttl:expired-unpunted"
          ~desc:"an expired-TTL packet the model does not punt"
          (Term.and_ valid
             (Term.and_
                (Term.ule ttl (Term.of_int ~width:8 1))
                (Term.not_ enc.enc_punted)));
        Packetgen.custom_goal ~id:"explore:dscp:nonzero-forwarded"
          ~desc:"a forwarded IPv4 packet with nonzero DSCP"
          (Term.and_ valid
             (Term.and_
                (Term.neq dscp (Term.of_int ~width:6 0))
                (Term.not_ enc.enc_dropped)));
        Packetgen.custom_goal ~id:"explore:forwarded" ~desc:"any forwarded packet"
          (Term.not_ enc.enc_dropped);
        Packetgen.custom_goal ~id:"explore:punted" ~desc:"any punted packet"
          enc.enc_punted ]
    end
  in
  [ ether_goal 0x88CC "lldp"; ether_goal 0x8809 "lacp"; ether_goal 0x0806 "arp";
    ether_goal 0x8100 "vlan"; ether_goal 0x86DD "ipv6"; ether_goal 0x0800 "ipv4" ]
  @ ipv4_goals

(* Install the (dependency-ordered) entries, batched by table so no batch
   contains internal @refers_to dependencies (§4.4 / "Batching Table
   Entries"). *)
let install stack entries add_incident =
  let batches =
    List.fold_left
      (fun acc (e : Entry.t) ->
        match acc with
        | (table, batch) :: rest when String.equal table e.e_table ->
            (table, e :: batch) :: rest
        | _ -> (e.e_table, [ e ]) :: acc)
      [] entries
    |> List.rev_map (fun (_, batch) -> List.rev batch)
  in
  let installed = ref 0 in
  let accepted = ref [] in
  List.iter
    (fun batch ->
      (* Entries the switch already accepted: the reproducer prefix for
         rejections in this batch. *)
      let prior = List.rev !accepted in
      let updates = List.map Request.insert batch in
      let resp = Stack.write stack { Request.updates } in
      List.iter2
        (fun (u : Request.update) (s : Status.t) ->
          if Status.is_ok s then begin
            incr installed;
            accepted := u.entry :: !accepted
          end
          else
            add_incident ~entry:u.entry ~prior
              (Format.asprintf "%a: %a" Status.pp s Entry.pp u.entry))
        updates resp.statuses)
    batches;
  !installed

let behavior_set_packet_out model_cfg po =
  (* Enumerate hash outcomes for submit-to-ingress processing. *)
  let rounds = min 32 (Interp.hash_rounds model_cfg) in
  let rec go round acc =
    if round >= rounds then List.rev acc
    else begin
      let b =
        Interp.run_packet_out { model_cfg with Interp.hash_mode = Interp.Fixed round }
          ~egress_port:po.Request.po_egress_port po.Request.po_payload
      in
      if List.exists (Interp.behavior_equal b) acc then go (round + 1) acc
      else go (round + 1) (b :: acc)
    end
  in
  go 0 []

let pp_behavior_set fmt bs =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Interp.pp_behavior)
    bs

let run ?(push_p4info = true) stack config =
  let incidents = ref [] in
  (* Counted separately: [List.length !incidents] per packet made the cutoff
     check quadratic in max_incidents. *)
  let n_incidents = ref 0 in
  let add ?context ?repro kind detail =
    if !n_incidents < config.max_incidents then begin
      incr n_incidents;
      incidents :=
        Report.incident ?context ?repro Report.Symbolic ~kind ~detail :: !incidents
    end
  in
  (if push_p4info then begin
     let s = Stack.push_p4info stack in
     if not (Status.is_ok s) then
       add "p4info rejected"
         ~repro:(Repro.Control { cr_seed = 0; cr_prefix = []; cr_batch = [] })
         (Format.asprintf "Set P4Info failed: %a" Status.pp s)
   end);
  let installed =
    install stack config.entries (fun ~entry ~prior detail ->
        add "entry rejected during test setup"
          ~context:(Report.context ~table:entry.Entry.e_table ())
          ~repro:(Repro.Control
                    { cr_seed = 0; cr_prefix = prior;
                      cr_batch = [ Request.insert entry ] })
          detail)
  in
  (* The reference model runs over the intended entry set regardless of
     what the switch accepted: a rejected entry is already an incident, and
     the paper's simulator is configured with the full replay. *)
  let model_state = State.create () in
  List.iter (fun e -> ignore (State.insert model_state e)) config.entries;
  let model_cfg =
    { Interp.program = Stack.program stack;
      state = model_state;
      hash_mode = Interp.Fixed 0;
      mirror_map = Workload.mirror_map config.entries }
  in
  let cache_hits_before = match config.cache with Some c -> Cache.hits c | None -> 0 in
  let cache_misses_before = match config.cache with Some c -> Cache.misses c | None -> 0 in
  (* Generation stage (timed separately, as in Table 3). *)
  let gen_start = Unix.gettimeofday () in
  let goals, generated =
    Telemetry.with_span (Telemetry.get ()) "campaign.generation" (fun () ->
        let encoding = Symexec.encode (Stack.program stack) config.entries in
        (* Prefer forwarded packets: a goal packet that both sides drop (e.g.
           TTL 0) exercises the entry but observes nothing. The preference is
           soft; uncoverable-when-forwarding goals fall back automatically. *)
        let prefer = Term.not_ encoding.enc_dropped in
        let goals =
          Packetgen.entry_coverage_goals ~prefer encoding
          @ (if config.include_branch_goals then
               Packetgen.branch_coverage_goals ~prefer encoding
             else [])
          @ config.extra_goals encoding
        in
        (* Static analysis proves some goals uncoverable (dead tables,
           statically-decided branches); dropping them saves the SMT
           queries without changing any divergence result. The BDD
           restriction check is skipped: it finds uninstallable tables,
           which cannot affect goals over *installed* entries. *)
        let goals =
          if config.prune_dead_goals then
            Packetgen.prune_goals
              (Switchv_analysis.Analysis.facts ~check_restrictions:false
                 (Stack.program stack))
              goals
          else goals
        in
        let generated =
          Packetgen.generate ~ports:config.ports ?cache:config.cache encoding goals
        in
        (goals, generated))
  in
  let gen_time = Unix.gettimeofday () -. gen_start in
  (* Testing stage. *)
  let test_start = Unix.gettimeofday () in
  let tested = ref 0 in
  Telemetry.with_span (Telemetry.get ()) "campaign.testing" (fun () ->
  List.iter
    (fun (tp : Packetgen.test_packet) ->
      match tp.tp_bytes with
      | None -> ()
      | Some bytes when !n_incidents < config.max_incidents -> (
          incr tested;
          let context =
            let table =
              match tp.tp_kind with
              | Packetgen.G_entry { ge_table; _ } -> Some ge_table
              | _ -> None
            in
            Report.context ?table ~goal:tp.tp_goal ()
          in
          let repro =
            Repro.Data
              { dr_entries = config.entries; dr_port = tp.tp_port; dr_bytes = bytes }
          in
          let switch_b = Stack.inject stack ~ingress_port:tp.tp_port bytes in
          match Interp.enumerate_behaviors model_cfg ~ingress_port:tp.tp_port bytes with
          | exception Interp.Parse_failure msg ->
              add "model parse failure" ~context ~repro
                (Printf.sprintf "goal %s generated an unparseable packet: %s" tp.tp_goal msg)
          | model_bs ->
              if not (List.exists (Interp.behavior_equal switch_b) model_bs) then
                add "behavior divergence" ~context ~repro
                  (Format.asprintf
                     "goal %s (port %d): switch behaved %a, model admits %a" tp.tp_goal
                     tp.tp_port Interp.pp_behavior switch_b pp_behavior_set model_bs))
      | Some _ -> ())
    generated.packets;
  (* Packet I/O contract. The submit-to-ingress payload is crafted to be
     routable under the installed entries (admitted MAC + covered dst), so
     that broken submit-to-ingress processing is observable. *)
  if config.test_packet_io && !n_incidents < config.max_incidents then begin
    let payload =
      let admit_mac =
        List.find_map
          (fun (e : Entry.t) ->
            if String.equal e.e_table "l3_admit_table" then
              match Entry.find_match e "dst_mac" with
              | Some (Entry.M_ternary t) ->
                  Some (Switchv_bitvec.Ternary.value t)
              | _ -> None
            else None)
          config.entries
      in
      let route_dst =
        List.find_map
          (fun (e : Entry.t) ->
            let forwards =
              match e.e_action with
              | Entry.Single { ai_name = "set_nexthop_id" | "set_wcmp_group_id"; _ } ->
                  true
              | _ -> false
            in
            if String.equal e.e_table "ipv4_table" && forwards then
              match Entry.find_match e "ipv4_dst" with
              | Some (Entry.M_lpm p) -> Some (Switchv_bitvec.Prefix.value p)
              | _ -> None
            else None)
          config.entries
      in
      let base = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.1" () in
      let base =
        match admit_mac with
        | Some mac -> Packet.set base ~header:"ethernet" ~field:"dst_addr" mac
        | None -> base
      in
      match route_dst with
      | Some dst -> Packet.set base ~header:"ipv4" ~field:"dst_addr" dst
      | None -> base
    in
    List.iter
      (fun port ->
        let po = { Request.po_payload = payload; po_egress_port = Some port } in
        let b = Stack.packet_out stack po in
        if b.Interp.b_egress <> Some port || b.Interp.b_punted then
          (* No reproducer: packet-out payloads are structured [Packet.t]
             values with no byte-level parser to rebuild them from. *)
          add "packet-out divergence"
            ~context:(Report.context ~goal:(Printf.sprintf "packet-out:port:%d" port) ())
            (Format.asprintf "packet-out to port %d behaved %a" port Interp.pp_behavior b))
      config.ports;
    let po = { Request.po_payload = payload; po_egress_port = None } in
    let switch_b = Stack.packet_out stack po in
    let model_bs = behavior_set_packet_out model_cfg po in
    if not (List.exists (Interp.behavior_equal switch_b) model_bs) then
      add "submit-to-ingress divergence"
        ~context:(Report.context ~goal:"packet-out:submit" ())
        (Format.asprintf "switch behaved %a, model admits %a" Interp.pp_behavior switch_b
           pp_behavior_set model_bs)
  end);
  let test_time = Unix.gettimeofday () -. test_start in
  let stats =
    { Report.ds_entries_installed = installed;
      ds_goals = List.length goals;
      ds_covered = generated.covered;
      ds_uncoverable = generated.uncoverable;
      ds_packets_tested = !tested;
      ds_generation_time = gen_time;
      ds_testing_time = test_time;
      ds_cache_hits =
        (match config.cache with Some c -> Cache.hits c - cache_hits_before | None -> 0);
      ds_cache_misses =
        (match config.cache with
        | Some c -> Cache.misses c - cache_misses_before
        | None -> 0) }
  in
  (List.rev !incidents, stats)
