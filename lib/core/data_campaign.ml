module Stack = Switchv_switch.Stack
module Greybox = Switchv_fuzzer.Greybox
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Compile = Switchv_bmv2.Compile
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Cache = Switchv_symbolic.Cache
module Workload = Switchv_sai.Workload
module Packet = Switchv_packet.Packet
module Term = Switchv_smt.Term
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro
module Dataplane = Switchv_oracle.Dataplane
module Taint = Switchv_analysis.Taint
module Shard = Switchv_parallel.Shard
module Pool = Switchv_parallel.Pool
module Jsonp = Switchv_triage.Jsonp

type config = {
  entries : Entry.t list;
  ports : int list;
  extra_goals : Symexec.encoding -> Packetgen.goal list;
  include_branch_goals : bool;
  prune_dead_goals : bool;
  cache : Cache.t option;
  max_incidents : int;
  test_packet_io : bool;
  shards : int;
  incremental : bool;
  taint : bool;
  greybox : bool;
      (* per-packet coverage-delta capture + corpus admission (slice-local,
         jobs-deterministic); feeds the fuzzer.greybox.* totals *)
  compile : bool;
      (* staged evaluator for every model execution (table lookups served
         from indexed match structures); [false] is the linear-scan
         reference path ([--no-compile]), byte-identical by contract *)
  covered_edges : string list;
      (* edges the caller already covered concretely (the harness passes
         the control campaign's delta): branch goals over them skip SMT.
         Threaded explicitly — never read from the ambient registry — so a
         campaign's goal list is a pure function of its config, not of
         whatever ran earlier in the process. *)
}

let default_config entries =
  { entries; ports = [ 1; 2; 3; 4 ]; extra_goals = (fun _ -> []);
    include_branch_goals = true; prune_dead_goals = true;
    cache = None; max_incidents = 25; test_packet_io = true; shards = 1;
    incremental = true; taint = true; greybox = true; compile = true;
    covered_edges = [] }

let exploratory_goals (enc : Symexec.encoding) =
  let ether_type = Term.var (Symexec.field_var ~header:"ethernet" ~field:"ether_type") 16 in
  let ether_goal et name =
    Packetgen.custom_goal
      ~id:(Printf.sprintf "explore:ether:%s" name)
      ~desc:(Printf.sprintf "a packet with ether_type %s reaches the switch" name)
      (Term.eq ether_type (Term.of_int ~width:16 et))
  in
  let has_ipv4 =
    List.exists
      (fun (h : Switchv_packet.Header.t) -> String.equal h.name "ipv4")
      enc.enc_program.p_headers
  in
  let ipv4_goals =
    if not has_ipv4 then []
    else begin
      let valid = Term.bvar (Symexec.validity_var ~header:"ipv4") in
      let ttl = Term.var (Symexec.field_var ~header:"ipv4" ~field:"ttl") 8 in
      let dscp = Term.var (Symexec.field_var ~header:"ipv4" ~field:"dscp") 6 in
      [ Packetgen.custom_goal ~id:"explore:ttl:0" ~desc:"IPv4 packet with TTL 0"
          (Term.and_ valid (Term.eq ttl (Term.of_int ~width:8 0)));
        Packetgen.custom_goal ~id:"explore:ttl:1" ~desc:"IPv4 packet with TTL 1"
          (Term.and_ valid (Term.eq ttl (Term.of_int ~width:8 1)));
        Packetgen.custom_goal ~id:"explore:ttl:2" ~desc:"IPv4 packet with TTL 2"
          (Term.and_ valid (Term.eq ttl (Term.of_int ~width:8 2)));
        Packetgen.custom_goal ~id:"explore:ttl:expired-unpunted"
          ~desc:"an expired-TTL packet the model does not punt"
          (Term.and_ valid
             (Term.and_
                (Term.ule ttl (Term.of_int ~width:8 1))
                (Term.not_ enc.enc_punted)));
        Packetgen.custom_goal ~id:"explore:dscp:nonzero-forwarded"
          ~desc:"a forwarded IPv4 packet with nonzero DSCP"
          (Term.and_ valid
             (Term.and_
                (Term.neq dscp (Term.of_int ~width:6 0))
                (Term.not_ enc.enc_dropped)));
        Packetgen.custom_goal ~id:"explore:forwarded" ~desc:"any forwarded packet"
          (Term.not_ enc.enc_dropped);
        Packetgen.custom_goal ~id:"explore:punted" ~desc:"any punted packet"
          enc.enc_punted ]
    end
  in
  [ ether_goal 0x88CC "lldp"; ether_goal 0x8809 "lacp"; ether_goal 0x0806 "arp";
    ether_goal 0x8100 "vlan"; ether_goal 0x86DD "ipv6"; ether_goal 0x0800 "ipv4" ]
  @ ipv4_goals

(* Install the (dependency-ordered) entries, batched by table so no batch
   contains internal @refers_to dependencies (§4.4 / "Batching Table
   Entries"). *)
let install stack entries add_incident =
  let batches =
    List.fold_left
      (fun acc (e : Entry.t) ->
        match acc with
        | (table, batch) :: rest when String.equal table e.e_table ->
            (table, e :: batch) :: rest
        | _ -> (e.e_table, [ e ]) :: acc)
      [] entries
    |> List.rev_map (fun (_, batch) -> List.rev batch)
  in
  let installed = ref 0 in
  let accepted = ref [] in
  List.iter
    (fun batch ->
      (* Entries the switch already accepted: the reproducer prefix for
         rejections in this batch. *)
      let prior = List.rev !accepted in
      let updates = List.map Request.insert batch in
      let resp = Stack.write stack { Request.updates } in
      List.iter2
        (fun (u : Request.update) (s : Status.t) ->
          if Status.is_ok s then begin
            incr installed;
            accepted := u.entry :: !accepted
          end
          else
            add_incident ~entry:u.entry ~prior
              (Format.asprintf "%a: %a" Status.pp s Entry.pp u.entry))
        updates resp.statuses)
    batches;
  !installed

let behavior_set_packet_out ?(compile = true) model_cfg po =
  (* Enumerate hash outcomes for submit-to-ingress processing. *)
  let rounds = min 32 (Interp.hash_rounds model_cfg) in
  let runner = if compile then Compile.run_packet_out else Interp.run_packet_out in
  let rec go round acc =
    if round >= rounds then List.rev acc
    else begin
      let b =
        runner { model_cfg with Interp.hash_mode = Interp.Fixed round }
          ~egress_port:po.Request.po_egress_port po.Request.po_payload
      in
      if List.exists (Interp.behavior_equal b) acc then go (round + 1) acc
      else go (round + 1) (b :: acc)
    end
  in
  go 0 []

let pp_behavior_set fmt bs =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Interp.pp_behavior)
    bs

(* --- goal slices -----------------------------------------------------------

   The campaign shards by coverage-goal partition: contiguous slices of the
   (deterministically ordered) goal list, each generated and tested
   independently against the already-installed stack. A slice's result is a
   pure function of [(config, encoding, slice)] — [Packetgen.generate] runs
   a fresh solver per call and [index_offset] keeps the port-preference
   cycle aligned with the goal's global index — so merged results are
   independent of whether slices ran sequentially or in forked workers. *)

type slice_result = {
  sl_incidents : Report.incident list;
  sl_covered : int;
  sl_uncoverable : int;
  sl_tested : int;
  sl_gen_s : float;
  sl_test_s : float;
  sl_hits : int;
  sl_misses : int;
}

(* Incident-budget rule that makes the cap exact under sharding: every
   slice counts from the parent's post-install incident count and may use
   the full budget; the merge truncates the in-order concatenation to
   [max_incidents]. Since each slice keeps at least as many incidents as
   any merged prefix can demand of it, truncation yields exactly the
   sequential campaign's list. *)
let run_slice stack config ~oracle ~encoding ~base_incidents (offset, goals) =
  let tele = Telemetry.get () in
  (* Slice-local feedback state (empty novelty map, seed derived from the
     slice's global offset): what a packet's execution contributes depends
     only on (config, slice), never on which process ran it. *)
  let greybox =
    if config.greybox then
      Some (Greybox.create ~program:(Stack.program stack) ~seed:(0x5eed + offset) ())
    else None
  in
  let sl_incidents = ref [] in
  let n_incidents = ref base_incidents in
  let add ?context ?repro kind detail =
    if !n_incidents < config.max_incidents then begin
      incr n_incidents;
      Telemetry.incr tele "campaign.incidents";
      sl_incidents :=
        Report.incident ?context ?repro Report.Symbolic ~kind ~detail
        :: !sl_incidents
    end
  in
  let hits_before = match config.cache with Some c -> Cache.hits c | None -> 0 in
  let misses_before = match config.cache with Some c -> Cache.misses c | None -> 0 in
  let gen_start = Telemetry.Clock.now () in
  let generated =
    Telemetry.with_span tele "campaign.generation" (fun () ->
        Packetgen.generate ~ports:config.ports ~index_offset:offset
          ?cache:config.cache ~incremental:config.incremental encoding goals)
  in
  let sl_gen_s = Telemetry.Clock.duration ~since:gen_start in
  let test_start = Telemetry.Clock.now () in
  let tested = ref 0 in
  Telemetry.with_span tele "campaign.testing" (fun () ->
      List.iter
        (fun (tp : Packetgen.test_packet) ->
          match tp.tp_bytes with
          | None -> ()
          | Some bytes when !n_incidents < config.max_incidents -> (
              incr tested;
              let context =
                let table =
                  match tp.tp_kind with
                  | Packetgen.G_entry { ge_table; _ } -> Some ge_table
                  | _ -> None
                in
                Report.context ?table ~goal:tp.tp_goal ()
              in
              let repro =
                Repro.Data
                  { dr_entries = config.entries; dr_port = tp.tp_port;
                    dr_bytes = bytes }
              in
              let before =
                Option.map (fun gb -> Greybox.snapshot gb tele) greybox
              in
              let switch_b = Stack.inject stack ~ingress_port:tp.tp_port bytes in
              (* Delta capture before the oracle runs, so the model's own
                 counter bumps don't pollute the switch-side observation. *)
              (match (greybox, before) with
              | Some gb, Some before ->
                  let tables =
                    match tp.tp_kind with
                    | Packetgen.G_entry { ge_table; _ } -> [ ge_table ]
                    | _ -> []
                  in
                  ignore
                    (Greybox.observe gb tele ~before ~tables
                       ~seed:(Greybox.Packet (tp.tp_port, bytes)) ())
              | _ -> ());
              match
                Dataplane.judge oracle ~ingress_port:tp.tp_port ~bytes
                  ~switch:switch_b
              with
              | exception Interp.Parse_failure msg ->
                  add "model parse failure" ~context ~repro
                    (Printf.sprintf "goal %s generated an unparseable packet: %s"
                       tp.tp_goal msg)
              | Dataplane.Admitted -> ()
              | Dataplane.Diverged model_bs ->
                  add "behavior divergence" ~context ~repro
                    (Format.asprintf
                       "goal %s (port %d): switch behaved %a, model admits %a"
                       tp.tp_goal tp.tp_port Interp.pp_behavior switch_b
                       pp_behavior_set model_bs))
          | Some _ -> ())
        generated.packets);
  let sl_test_s = Telemetry.Clock.duration ~since:test_start in
  { sl_incidents = List.rev !sl_incidents;
    sl_covered = generated.covered;
    sl_uncoverable = generated.uncoverable;
    sl_tested = !tested;
    sl_gen_s;
    sl_test_s;
    sl_hits =
      (match config.cache with Some c -> Cache.hits c - hits_before | None -> 0);
    sl_misses =
      (match config.cache with Some c -> Cache.misses c - misses_before | None -> 0) }

module Json = Telemetry.Json

let serialize_slice r =
  Json.obj
    [ ("incidents", Json.arr (List.map Report.incident_ipc_to_json r.sl_incidents));
      ("covered", Json.int r.sl_covered);
      ("uncoverable", Json.int r.sl_uncoverable);
      ("tested", Json.int r.sl_tested);
      ("gen_s", Json.num r.sl_gen_s); ("test_s", Json.num r.sl_test_s);
      ("cache_hits", Json.int r.sl_hits); ("cache_misses", Json.int r.sl_misses) ]

let deserialize_slice payload =
  let ( let* ) = Result.bind in
  let* j = Jsonp.parse payload in
  let int name =
    match Option.bind (Jsonp.member name j) Jsonp.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "data slice payload: missing field %S" name)
  in
  let num name =
    match Option.bind (Jsonp.member name j) Jsonp.to_num with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "data slice payload: missing field %S" name)
  in
  let* sl_incidents =
    match Jsonp.member "incidents" j with
    | Some (Jsonp.Arr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* i = Report.incident_of_ipc_json x in
            Ok (i :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "data slice payload: missing incidents"
  in
  let* sl_covered = int "covered" in
  let* sl_uncoverable = int "uncoverable" in
  let* sl_tested = int "tested" in
  let* sl_gen_s = num "gen_s" in
  let* sl_test_s = num "test_s" in
  let* sl_hits = int "cache_hits" in
  let* sl_misses = int "cache_misses" in
  Ok
    { sl_incidents; sl_covered; sl_uncoverable; sl_tested; sl_gen_s; sl_test_s;
      sl_hits; sl_misses }

let truncate n xs =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n xs

let run ?(push_p4info = true) ?(jobs = 1) stack config =
  let tele = Telemetry.get () in
  let incidents = ref [] in
  (* Counted separately: [List.length !incidents] per packet made the cutoff
     check quadratic in max_incidents. *)
  let n_incidents = ref 0 in
  let add ?context ?repro kind detail =
    if !n_incidents < config.max_incidents then begin
      incr n_incidents;
      Telemetry.incr tele "campaign.incidents";
      incidents :=
        Report.incident ?context ?repro Report.Symbolic ~kind ~detail :: !incidents
    end
  in
  (if push_p4info then begin
     let s = Stack.push_p4info stack in
     if not (Status.is_ok s) then
       add "p4info rejected"
         ~repro:(Repro.Control { cr_seed = 0; cr_prefix = []; cr_batch = [] })
         (Format.asprintf "Set P4Info failed: %a" Status.pp s)
   end);
  let installed =
    install stack config.entries (fun ~entry ~prior detail ->
        add "entry rejected during test setup"
          ~context:(Report.context ~table:entry.Entry.e_table ())
          ~repro:(Repro.Control
                    { cr_seed = 0; cr_prefix = prior;
                      cr_batch = [ Request.insert entry ] })
          detail)
  in
  (* The reference model runs over the intended entry set regardless of
     what the switch accepted: a rejected entry is already an incident, and
     the paper's simulator is configured with the full replay. *)
  let model_state = State.create () in
  List.iter (fun e -> ignore (State.insert model_state e)) config.entries;
  let model_cfg =
    { Interp.program = Stack.program stack;
      state = model_state;
      hash_mode = Interp.Fixed 0;
      mirror_map = Workload.mirror_map config.entries }
  in
  (* Generation prelude — encoding, goal construction, static pruning — runs
     once in the parent; forked workers inherit the result copy-on-write. *)
  let prep_start = Telemetry.Clock.now () in
  let encoding, goals, tainted_goals, taint_summary =
    Telemetry.with_span tele "campaign.generation" (fun () ->
        let encoding = Symexec.encode (Stack.program stack) config.entries in
        (* Prefer forwarded packets: a goal packet that both sides drop (e.g.
           TTL 0) exercises the entry but observes nothing. The preference is
           soft; uncoverable-when-forwarding goals fall back automatically. *)
        let prefer = Term.not_ encoding.enc_dropped in
        let goals =
          Packetgen.entry_coverage_goals ~prefer encoding
          @ (if config.include_branch_goals then
               Packetgen.branch_coverage_goals ~prefer encoding
             else [])
          @ config.extra_goals encoding
        in
        (* Static analysis proves some goals uncoverable (dead tables,
           statically-decided branches); dropping them saves the SMT
           queries without changing any divergence result. The BDD
           restriction check is skipped: it finds uninstallable tables,
           which cannot affect goals over *installed* entries. *)
        let facts =
          if config.prune_dead_goals || config.taint then
            Switchv_analysis.Analysis.facts ~check_restrictions:false
              (Stack.program stack)
          else Switchv_analysis.Analysis.no_facts
        in
        let goals =
          if config.prune_dead_goals then Packetgen.prune_goals facts goals
          else goals
        in
        (* Taint classification: goals whose path condition crosses a
           hash/selector-tainted branch would pin a hash outcome the
           concrete run is free to ignore; drop them before the solver.
           The same summary powers the set-valued oracle below. *)
        let taint_summary =
          if config.taint then facts.Switchv_analysis.Analysis.f_taint
          else Taint.empty
        in
        let before_taint = List.length goals in
        let goals =
          if config.taint then Packetgen.prune_tainted_goals taint_summary goals
          else goals
        in
        let tainted = before_taint - List.length goals in
        (* Greybox shortcut: branch goals whose edge the caller's campaign
           already covered concretely skip the solver. [covered_edges] is a
           config input computed once by the caller (jobs-invariant), so
           the slice decomposition below still depends only on config. *)
        let goals =
          match config.covered_edges with
          | [] -> goals
          | covered ->
              let set = Hashtbl.create 64 in
              List.iter (fun k -> Hashtbl.replace set k ()) covered;
              Packetgen.prune_concretely_covered ~covered:(Hashtbl.mem set)
                goals
        in
        (encoding, goals, tainted, taint_summary))
  in
  let oracle =
    Dataplane.create ~compile:config.compile model_cfg ~taint:taint_summary
  in
  let prep_s = Telemetry.Clock.duration ~since:prep_start in
  (* Denominator for live progress/ETA; counted in the parent before any
     fork so the gauge is visible immediately and never double-counted. *)
  Telemetry.incr ~n:(List.length goals) tele "goals.total";
  let shards = max 1 config.shards in
  let slices = Shard.partition ~shards goals in
  let base_incidents = !n_incidents in
  let slice_results =
    if jobs <= 1 || shards = 1 then
      (* Sequential path: the identical decomposition, run in shard order
         in-process (no serialization round-trip). *)
      Array.to_list
        (Array.map (run_slice stack config ~oracle ~encoding ~base_incidents)
           slices)
    else begin
      let task s =
        serialize_slice
          (run_slice stack config ~oracle ~encoding ~base_incidents slices.(s))
      in
      let pool = Pool.run ~jobs ~shards task in
      List.filter_map
        (function
          | Pool.Done payload -> (
              match deserialize_slice payload with
              | Ok r -> Some r
              | Error e ->
                  (* Same degradation contract as a crashed worker: drop the
                     slice, keep the campaign. *)
                  Telemetry.incr tele "parallel.workers_failed";
                  Printf.eprintf
                    "switchv: dropping undecodable data slice: %s\n%!" e;
                  None)
          | Pool.Lost _ -> None)
        (Array.to_list pool.Pool.outcomes)
    end
  in
  (* Merge in slice order; see the budget rule above [run_slice]. *)
  let merged_incidents =
    truncate (config.max_incidents - base_incidents)
      (List.concat_map (fun r -> r.sl_incidents) slice_results)
  in
  n_incidents := base_incidents + List.length merged_incidents;
  incidents := List.rev_append merged_incidents !incidents;
  let covered = List.fold_left (fun a r -> a + r.sl_covered) 0 slice_results in
  let uncoverable = List.fold_left (fun a r -> a + r.sl_uncoverable) 0 slice_results in
  let tested = List.fold_left (fun a r -> a + r.sl_tested) 0 slice_results in
  let gen_time =
    List.fold_left (fun a r -> a +. Float.max 0. r.sl_gen_s) prep_s slice_results
  in
  let slice_test_time =
    List.fold_left (fun a r -> a +. Float.max 0. r.sl_test_s) 0. slice_results
  in
  let cache_hits = List.fold_left (fun a r -> a + r.sl_hits) 0 slice_results in
  let cache_misses = List.fold_left (fun a r -> a + r.sl_misses) 0 slice_results in
  (* Packet I/O contract, in the parent, after the merge (so the incident
     cap applies to the merged list). The submit-to-ingress payload is
     crafted to be routable under the installed entries (admitted MAC +
     covered dst), so that broken submit-to-ingress processing is
     observable. *)
  let io_start = Telemetry.Clock.now () in
  (if config.test_packet_io && !n_incidents < config.max_incidents then begin
    let payload =
      let admit_mac =
        List.find_map
          (fun (e : Entry.t) ->
            if String.equal e.e_table "l3_admit_table" then
              match Entry.find_match e "dst_mac" with
              | Some (Entry.M_ternary t) ->
                  Some (Switchv_bitvec.Ternary.value t)
              | _ -> None
            else None)
          config.entries
      in
      let route_dst =
        List.find_map
          (fun (e : Entry.t) ->
            let forwards =
              match e.e_action with
              | Entry.Single { ai_name = "set_nexthop_id" | "set_wcmp_group_id"; _ } ->
                  true
              | _ -> false
            in
            if String.equal e.e_table "ipv4_table" && forwards then
              match Entry.find_match e "ipv4_dst" with
              | Some (Entry.M_lpm p) -> Some (Switchv_bitvec.Prefix.value p)
              | _ -> None
            else None)
          config.entries
      in
      let base = Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"198.51.100.1" () in
      let base =
        match admit_mac with
        | Some mac -> Packet.set base ~header:"ethernet" ~field:"dst_addr" mac
        | None -> base
      in
      match route_dst with
      | Some dst -> Packet.set base ~header:"ipv4" ~field:"dst_addr" dst
      | None -> base
    in
    List.iter
      (fun port ->
        let po = { Request.po_payload = payload; po_egress_port = Some port } in
        let b = Stack.packet_out stack po in
        if b.Interp.b_egress <> Some port || b.Interp.b_punted then
          (* No reproducer: packet-out payloads are structured [Packet.t]
             values with no byte-level parser to rebuild them from. *)
          add "packet-out divergence"
            ~context:(Report.context ~goal:(Printf.sprintf "packet-out:port:%d" port) ())
            (Format.asprintf "packet-out to port %d behaved %a" port Interp.pp_behavior b))
      config.ports;
    let po = { Request.po_payload = payload; po_egress_port = None } in
    let switch_b = Stack.packet_out stack po in
    let model_bs = behavior_set_packet_out ~compile:config.compile model_cfg po in
    if not (List.exists (Interp.behavior_equal switch_b) model_bs) then
      add "submit-to-ingress divergence"
        ~context:(Report.context ~goal:"packet-out:submit" ())
        (Format.asprintf "switch behaved %a, model admits %a" Interp.pp_behavior switch_b
           pp_behavior_set model_bs)
  end);
  let test_time = slice_test_time +. Telemetry.Clock.duration ~since:io_start in
  let stats =
    { Report.ds_entries_installed = installed;
      ds_goals = List.length goals;
      ds_covered = covered;
      ds_uncoverable = uncoverable;
      ds_tainted_goals = tainted_goals;
      ds_packets_tested = tested;
      ds_generation_time = gen_time;
      ds_testing_time = test_time;
      ds_cache_hits = cache_hits;
      ds_cache_misses = cache_misses }
  in
  (List.rev !incidents, stats)
