(** Incident reports: what SwitchV hands to the human tester (§2).

    SwitchV does not diagnose root causes; it reports that the switch's
    observed behaviour is outside the set admitted by the P4 model, with
    enough context for a human to investigate. *)

module Telemetry = Switchv_telemetry.Telemetry

type detector = Fuzzer | Symbolic

val detector_to_string : detector -> string

type incident = {
  detector : detector;
  kind : string;       (** short category, e.g. "status violation" *)
  detail : string;
}

val incident : detector -> kind:string -> detail:string -> incident
val pp_incident : Format.formatter -> incident -> unit

type control_stats = {
  cs_batches : int;
  cs_updates : int;
  cs_valid_updates : int;
  cs_invalid_updates : int;
  cs_duration : float;
}

type data_stats = {
  ds_entries_installed : int;
  ds_goals : int;
  ds_covered : int;
  ds_uncoverable : int;
  ds_packets_tested : int;
  ds_generation_time : float;   (** encode + SMT, the paper's "Generation" *)
  ds_testing_time : float;      (** run + compare, the paper's "Testing" *)
  ds_cache_hits : int;          (** packet-cache hits during this campaign *)
  ds_cache_misses : int;
}

type t = {
  program_name : string;
  control_incidents : incident list;
  data_incidents : incident list;
  control_stats : control_stats option;
  data_stats : data_stats option;
  telemetry : Telemetry.snapshot option;
      (** Counters and latency quantiles accumulated over the run, captured
          by {!Harness.validate} when it finishes. *)
}

val empty : string -> t

val incidents : t -> incident list
val clean : t -> bool
(** No incidents at all. *)

val detected_by : t -> detector option
(** The detector that found the first incident: control-plane incidents
    attribute to [Fuzzer], data-plane ones to [Symbolic]; when both fired,
    the fuzzer (which runs first) wins — mirroring "discovered by" in the
    paper's Table 1. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Machine-readable one-line JSON rendering (hand-rolled, no
    dependencies) for archiving nightly reports. Schema:
    [{"program":…,"clean":…,"control_stats":{…}|null,
      "data_stats":{…}|null,"incidents":[{"detector":…,"kind":…,
      "detail":…},…],"telemetry":{…}|null}]. *)
