(** Incident reports: what SwitchV hands to the human tester (§2).

    SwitchV does not diagnose root causes; it reports that the switch's
    observed behaviour is outside the set admitted by the P4 model, with
    enough context for a human to investigate. Since the triage subsystem
    landed, "enough context" is structured: incidents carry an optional
    {!context} record (what the campaign was exercising) and an optional
    {!Switchv_triage.Repro.t} (exactly how to re-trigger the divergence),
    and a report can carry a fingerprint-dedup summary mirroring the
    paper's miscompares-vs-bugs distinction (Table 1). *)

module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro
module Fingerprint = Switchv_triage.Fingerprint

type detector = Fuzzer | Symbolic | Fabric

val detector_to_string : detector -> string

type context = {
  ctx_table : string option;     (** table being exercised *)
  ctx_goal : string option;      (** coverage-goal id (data plane) *)
  ctx_mutation : string option;  (** fuzzer mutation in the batch *)
  ctx_batch : int option;        (** 1-based batch index (control plane) *)
  ctx_hop : string option;
      (** fabric hop the incident was localized to (["sw<k>"]); feeds the
          fingerprint's hop dimension *)
}

val context :
  ?table:string -> ?goal:string -> ?mutation:string -> ?batch:int ->
  ?hop:string -> unit -> context

type incident = {
  detector : detector;
  kind : string;       (** short category, e.g. "status violation" *)
  detail : string;
  context : context option;
      (** Structured incident context, so fingerprinting (and humans) need
          not parse [detail]. *)
  repro : Repro.t option;
      (** Reproducer captured at the incident site; [None] only for
          incident shapes with no replay path (packet-out divergences). *)
}

val incident :
  ?context:context -> ?repro:Repro.t -> detector -> kind:string -> detail:string ->
  incident

val pp_incident : Format.formatter -> incident -> unit

val fingerprint : incident -> Fingerprint.t
(** Stable signature over detector, kind, and structured context (with
    normalized fallbacks); see {!Switchv_triage.Fingerprint}. *)

type cluster = {
  cl_fingerprint : Fingerprint.t;
  cl_count : int;          (** miscompares collapsed into this cluster *)
  cl_example : incident;   (** first-seen representative *)
}

type control_stats = {
  cs_batches : int;
  cs_updates : int;
  cs_valid_updates : int;
  cs_invalid_updates : int;
  cs_novel_edges : int;
      (** greybox: edges first covered by this campaign's probes (summed
          over shards, so an edge two shards discovered counts twice) *)
  cs_corpus_seeds : int;  (** greybox: coverage-novel inputs kept *)
  cs_duration : float;
}

type data_stats = {
  ds_entries_installed : int;
  ds_goals : int;
  ds_covered : int;
  ds_uncoverable : int;
  ds_tainted_goals : int;
      (** goals classified [Tainted] (path condition crosses a
          hash/selector-tainted branch) and excluded from SMT solving *)
  ds_packets_tested : int;
  ds_generation_time : float;   (** encode + SMT, the paper's "Generation" *)
  ds_testing_time : float;      (** run + compare, the paper's "Testing" *)
  ds_cache_hits : int;          (** packet-cache hits during this campaign *)
  ds_cache_misses : int;
}

type fabric_stats = {
  fs_shape : string;            (** topology shape name *)
  fs_switches : int;
  fs_links : int;
  fs_flows : int;               (** end-to-end flows executed *)
  fs_delivered : int;           (** switch-side deliveries at edge ports *)
  fs_dropped : int;             (** switch-side drops/punts/dead hops/loops *)
  fs_hops : int;                (** switch-side hops traversed *)
  fs_localized : int;           (** incidents attributed to a hop *)
  fs_duration : float;
  fs_switch_coverage : (int * int * int) list;
      (** per-switch model-edge coverage as (switch, covered, total),
          from the [topo.sw.<i>.cov.*] counters *)
}

type t = {
  program_name : string;
  control_incidents : incident list;
  data_incidents : incident list;
  fabric_incidents : incident list;
  control_stats : control_stats option;
  data_stats : data_stats option;
  fabric_stats : fabric_stats option;
  clusters : cluster list option;
      (** Fingerprint-dedup summary, present when the harness ran with
          triage dedup: one cluster per distinct fingerprint, counting the
          raw miscompares it absorbed. When present, the incident lists
          hold one representative per cluster. *)
  telemetry : Telemetry.snapshot option;
      (** Counters and latency quantiles accumulated over the run, captured
          by {!Harness.validate} when it finishes. *)
  coverage : Switchv_obs.Coverage.t option;
      (** Model-edge coverage map (which pipeline branches and table
          actions the injected packets actually executed), built by
          {!Harness.validate} from the interpreter's coverage counters.
          Deterministic across [--jobs] settings. *)
}

val empty : string -> t

val incidents : t -> incident list
val clean : t -> bool
(** No incidents at all. *)

val detected_by : t -> detector option
(** The detector that found the first incident: control-plane incidents
    attribute to [Fuzzer], data-plane ones to [Symbolic], fabric ones to
    [Fabric]; when several fired, the earlier campaign wins — mirroring
    "discovered by" in the paper's Table 1. *)

val pp : Format.formatter -> t -> unit

(** {1 IPC (de)serialization}

    Sharded campaigns ({!Control_campaign.run_sharded}, sharded
    {!Data_campaign.run}) serialize per-shard results in forked workers and
    deserialize them in the parent. The converters are exact inverses over
    every value the campaigns produce — the merged parallel report is
    byte-identical to the sequential one because nothing is lost in the
    round-trip. *)

val detector_of_string : string -> detector option

val context_of_json : Switchv_triage.Jsonp.t -> context
(** Total: absent or ill-typed fields become [None]. *)

val incident_ipc_to_json : incident -> string
(** Full-fidelity incident (including the reproducer), unlike the
    report-archive rendering in {!to_json} which adds campaign tags and
    fingerprints. *)

val incident_of_ipc_json :
  Switchv_triage.Jsonp.t -> (incident, string) result

val control_stats_to_json : control_stats -> string

val control_stats_of_json :
  Switchv_triage.Jsonp.t -> (control_stats, string) result
(** Inverse of {!control_stats_to_json}. *)

val merge_control_stats : control_stats list -> control_stats
(** Field-wise sums; each shard's duration is clamped at [>= 0] before
    summing, so a worker with a stepping clock cannot subtract time. *)

val fabric_stats_to_json : fabric_stats -> string

val to_json : t -> string
(** Machine-readable one-line JSON rendering (hand-rolled, no
    dependencies) for archiving nightly reports. Schema:
    [{"program":…,"clean":…,"control_stats":{…}|null,
      "data_stats":{…}|null,"incidents":[{"detector":…,"kind":…,
      "detail":…,"context":{…}|null,"fingerprint":…,"repro":{…}|null},…],
      "clusters":[{"fingerprint":…,"count":…},…]|null,
      "telemetry":{…}|null}]. *)
