module Stack = Switchv_switch.Stack
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Fuzzer = Switchv_fuzzer.Fuzzer
module Oracle = Switchv_oracle.Oracle
module Interp = Switchv_bmv2.Interp
module Symexec = Switchv_symbolic.Symexec
module Packetgen = Switchv_symbolic.Packetgen
module Workload = Switchv_sai.Workload
module Rng = Switchv_bitvec.Rng
module Term = Switchv_smt.Term

type table_metric = {
  tm_table : string;
  tm_fuzzed : int;
  tm_fuzz_ok : int;
  tm_entries : int;
  tm_covered : int;
  tm_behaved : int;
}

type t = table_metric list

let empty_metric table =
  { tm_table = table; tm_fuzzed = 0; tm_fuzz_ok = 0; tm_entries = 0; tm_covered = 0;
    tm_behaved = 0 }

let collect ?(batches = 10) ?(seed = 3) mk_stack entries =
  let tallies : (string, table_metric) Hashtbl.t = Hashtbl.create 16 in
  let get table =
    match Hashtbl.find_opt tallies table with
    | Some m -> m
    | None ->
        let m = empty_metric table in
        Hashtbl.replace tallies table m;
        m
  in
  let update table f = Hashtbl.replace tallies table (f (get table)) in

  (* --- control plane: per-update oracle verdicts --- *)
  let stack = mk_stack () in
  ignore (Stack.push_p4info stack);
  let fuzzer = Fuzzer.create (Stack.info stack) (Rng.create seed) in
  let oracle = Oracle.create (Stack.info stack) in
  let judge annotated =
    let updates = List.map (fun (a : Fuzzer.annotated_update) -> a.update) annotated in
    let resp = Stack.write stack { Request.updates } in
    let read_back = Stack.read stack in
    let detailed = Oracle.judge_batch_detailed oracle updates resp ~read_back in
    if List.length detailed.per_update_ok = List.length updates then
      List.iter2
        (fun (u : Request.update) ok ->
          if Switchv_p4ir.P4info.find_table (Stack.info stack) u.entry.e_table = None
          then () (* mutations with invented table ids are not a feature *)
          else
          update u.entry.e_table (fun m ->
              { m with
                tm_fuzzed = m.tm_fuzzed + 1;
                tm_fuzz_ok = (m.tm_fuzz_ok + if ok then 1 else 0) }))
        updates detailed.per_update_ok
  in
  List.iter judge (Fuzzer.sweep fuzzer);
  for _ = 1 to batches do
    judge (Fuzzer.next_batch fuzzer)
  done;

  (* --- data plane: per-entry coverage and behaviour --- *)
  let stack = mk_stack () in
  ignore (Stack.push_p4info stack);
  List.iter
    (fun e ->
      update e.Entry.e_table (fun m -> { m with tm_entries = m.tm_entries + 1 });
      ignore (Stack.write stack { Request.updates = [ Request.insert e ] }))
    entries;
  let model_state = State.create () in
  List.iter (fun e -> ignore (State.insert model_state e)) entries;
  let model_cfg =
    { Interp.program = Stack.program stack;
      state = model_state;
      hash_mode = Interp.Fixed 0;
      mirror_map = Workload.mirror_map entries }
  in
  let encoding = Symexec.encode (Stack.program stack) entries in
  let prefer = Term.not_ encoding.enc_dropped in
  let goals =
    (* Entry goals only (not defaults/branches): the metric is per entry. *)
    List.filter
      (fun (g : Packetgen.goal) ->
        match g.goal_kind with
        | Packetgen.G_entry { ge_label; _ } -> ge_label <> "<default>"
        | _ -> false)
      (Packetgen.entry_coverage_goals ~prefer encoding)
  in
  let result = Packetgen.generate encoding goals in
  List.iter
    (fun (tp : Packetgen.test_packet) ->
      match tp.tp_kind with
      | Packetgen.G_entry { ge_table = table; _ } -> (
          match tp.tp_bytes with
          | None -> ()
          | Some bytes ->
              let behaved =
                let switch_b = Stack.inject stack ~ingress_port:tp.tp_port bytes in
                match Interp.enumerate_behaviors model_cfg ~ingress_port:tp.tp_port bytes with
                | model_bs -> List.exists (Interp.behavior_equal switch_b) model_bs
                | exception Interp.Parse_failure _ -> false
              in
              update table (fun m ->
                  { m with
                    tm_covered = m.tm_covered + 1;
                    tm_behaved = (m.tm_behaved + if behaved then 1 else 0) }))
      | _ -> ())
    result.packets;
  Hashtbl.fold (fun _ m acc -> m :: acc) tallies []
  |> List.sort (fun a b -> String.compare a.tm_table b.tm_table)

let feature t ~name ~tables =
  List.fold_left
    (fun acc m ->
      if List.mem m.tm_table tables then
        { acc with
          tm_fuzzed = acc.tm_fuzzed + m.tm_fuzzed;
          tm_fuzz_ok = acc.tm_fuzz_ok + m.tm_fuzz_ok;
          tm_entries = acc.tm_entries + m.tm_entries;
          tm_covered = acc.tm_covered + m.tm_covered;
          tm_behaved = acc.tm_behaved + m.tm_behaved }
      else acc)
    (empty_metric name) t

let ratio num den = if den = 0 then None else Some (float_of_int num /. float_of_int den)

let fuzz_score m = ratio m.tm_fuzz_ok m.tm_fuzzed
let behave_score m = ratio m.tm_behaved m.tm_covered

let pp fmt t =
  let pct = function
    | Some r -> Printf.sprintf "%3.0f%%" (100. *. r)
    | None -> "  - "
  in
  Format.fprintf fmt "@[<v>%-32s %14s %20s@,"
    "table" "fuzz handled" "packets behave";
  List.iter
    (fun m ->
      Format.fprintf fmt "%-32s %s (%4d/%-4d) %s (%4d/%-4d)@," m.tm_table
        (pct (fuzz_score m)) m.tm_fuzz_ok m.tm_fuzzed
        (pct (behave_score m)) m.tm_behaved m.tm_covered)
    t;
  Format.fprintf fmt "@]"
