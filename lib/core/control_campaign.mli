(** The control-plane validation campaign: p4-fuzzer driving the switch
    under the oracle's judgment (§4). Pushes the P4Info, then streams
    fuzzed Write batches, reading the switch state back after each batch
    and judging statuses + state against the P4Runtime specification.

    The campaign shards by seed range: shard [i] fuzzes a fresh stack with
    seed [config.seed + i] and its contiguous slice of the batch budget
    (the directed sweep runs in shard 0 only). The decomposition is a
    function of [config] alone — never of how many workers execute it —
    so merged results are identical at any [jobs] count, and
    [shards = 1] is exactly the historical sequential campaign. *)

module Stack = Switchv_switch.Stack

type config = {
  batches : int;
  fuzzer_config : Switchv_fuzzer.Fuzzer.config;
  seed : int;
  max_incidents : int;
      (** Stop early once this many incidents have been collected (a real
          nightly run pages a human long before). *)
  shards : int;
      (** Number of independent seed-range shards ([1] = the historical
          single-stack campaign). Changing it changes which batches are
          fuzzed; changing [jobs] never does. *)
  greybox : bool;
      (** Coverage-guided feedback ({!Switchv_fuzzer.Greybox}): probe
          packets after every batch, a corpus of coverage-novel inputs,
          and energy-weighted mutation scheduling. Shard-local state keeps
          the campaign byte-identical at any [jobs]. [false] reproduces
          the blind (pre-feedback) fuzzer exactly. On by default. *)
}

val default_config : config

val run :
  ?push_p4info:bool ->
  Stack.t ->
  config ->
  Report.incident list * Report.control_stats
(** The single-stack sequential campaign ([config.shards] is ignored and
    treated as 1). [push_p4info] defaults to true; pass false when the
    caller already configured the switch. *)

val run_shard :
  ?push_p4info:bool ->
  Stack.t ->
  config ->
  shard:int ->
  Report.incident list * Report.control_stats
(** One shard of the decomposition ([0 <= shard < config.shards]) against
    a fresh stack. Deterministic per [(config, shard)]. *)

val run_sharded :
  ?push_p4info:bool ->
  ?jobs:int ->
  ?stack0:Stack.t ->
  (unit -> Stack.t) ->
  config ->
  Report.incident list * Report.control_stats
(** Run every shard and merge in shard order (incident list truncated to
    [max_incidents]; stats summed). [jobs <= 1] runs shards sequentially
    in-process; [jobs > 1] fans the remaining shards out over a
    {!Switchv_parallel.Pool}, streaming results back as JSON. When
    [stack0] is given, shard 0 runs on it {e in this process} (parallel
    runs included), so the caller can harvest the fuzzed switch state
    afterwards. A lost worker drops its shards with a logged warning and
    a [parallel.workers_failed] bump; the merge simply has less input. *)
