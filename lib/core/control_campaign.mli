(** The control-plane validation campaign: p4-fuzzer driving the switch
    under the oracle's judgment (§4). Pushes the P4Info, then streams
    fuzzed Write batches, reading the switch state back after each batch
    and judging statuses + state against the P4Runtime specification. *)

module Stack = Switchv_switch.Stack

type config = {
  batches : int;
  fuzzer_config : Switchv_fuzzer.Fuzzer.config;
  seed : int;
  max_incidents : int;
      (** Stop early once this many incidents have been collected (a real
          nightly run pages a human long before). *)
}

val default_config : config

val run :
  ?push_p4info:bool ->
  Stack.t ->
  config ->
  Report.incident list * Report.control_stats
(** [push_p4info] defaults to true; pass false when the caller already
    configured the switch. *)
