module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module P4info = Switchv_p4ir.P4info
module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module State = Switchv_p4runtime.State
module Interp = Switchv_bmv2.Interp
module Packet = Switchv_packet.Packet

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let exact16 n = Entry.M_exact (bv16 n)
let single name args = Entry.Single { ai_name = name; ai_args = args }

let admit_mac = Packet.mac_of_string "02:00:00:00:aa:01"
let rif_port = 3
let punt_dst = Packet.ipv4_of_string "10.99.0.1"

(* One coherent rule per table present in the program (§6.2 test 2). The
   order respects @refers_to dependencies. *)
let entries info =
  let has name = P4info.find_table info name <> None in
  let has_key table key =
    match P4info.find_table info table with
    | Some ti -> P4info.find_match_field ti key <> None
    | None -> false
  in
  let e = ref [] in
  let add x = e := x :: !e in
  if has "vrf_table" then
    add (Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (exact16 1) ]
           (single "no_action" []));
  if has "router_interface_table" then
    add (Entry.make ~table:"router_interface_table"
           ~matches:[ fm "router_interface_id" (exact16 1) ]
           (single "set_port_and_src_mac"
              [ bv16 rif_port; Packet.mac_of_string "02:00:00:00:bb:01" ]));
  if has "neighbor_table" then
    add (Entry.make ~table:"neighbor_table"
           ~matches:[ fm "router_interface_id" (exact16 1); fm "neighbor_id" (exact16 1) ]
           (single "set_dst_mac" [ Packet.mac_of_string "02:00:00:00:cc:01" ]));
  if has "nexthop_table" then
    add (Entry.make ~table:"nexthop_table" ~matches:[ fm "nexthop_id" (exact16 1) ]
           (single "set_ip_nexthop" [ bv16 1; bv16 1 ]));
  if has "wcmp_group_table" then
    add (Entry.make ~table:"wcmp_group_table" ~matches:[ fm "wcmp_group_id" (exact16 1) ]
           (Entry.Weighted
              [ ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 1);
                ({ ai_name = "set_nexthop_id"; ai_args = [ bv16 1 ] }, 2) ]));
  if has "mirror_session_table" then
    add (Entry.make ~table:"mirror_session_table"
           ~matches:[ fm "mirror_session_id" (exact16 1) ]
           (single "set_port_and_src_mac"
              [ bv16 4; Packet.mac_of_string "02:00:00:00:dd:01" ]));
  if has "tunnel_table" then
    add (Entry.make ~table:"tunnel_table" ~matches:[ fm "tunnel_id" (exact16 1) ]
           (single "set_gre_encap" [ Packet.ipv4_of_string "172.16.5.5" ]));
  if has "ipv4_table" then
    add (Entry.make ~table:"ipv4_table"
           ~matches:
             [ fm "vrf_id" (exact16 1);
               fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.50.1.0/24")) ]
           (single "set_nexthop_id" [ bv16 1 ]));
  if has "ipv6_table" then
    add (Entry.make ~table:"ipv6_table"
           ~matches:
             [ fm "vrf_id" (exact16 1);
               fm "ipv6_dst"
                 (Entry.M_lpm (Prefix.make (Packet.ipv6_of_string "2001:db8::") 48)) ]
           (single "set_nexthop_id" [ bv16 1 ]));
  if has "acl_pre_ingress_table" then
    add (Entry.make ~table:"acl_pre_ingress_table" ~priority:1
           ~matches:[ fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1))) ]
           (single "set_vrf" [ bv16 1 ]));
  if has "l3_admit_table" then
    add (Entry.make ~table:"l3_admit_table" ~priority:1
           ~matches:[ fm "dst_mac" (Entry.M_ternary (Ternary.exact admit_mac)) ]
           (single "l3_admit" []));
  if has "acl_ingress_table" then begin
    let matches =
      fm "is_ipv4" (Entry.M_ternary (Ternary.exact (Bitvec.of_int ~width:1 1)))
      ::
      (if has_key "acl_ingress_table" "dst_ip" then
         [ fm "dst_ip" (Entry.M_ternary (Ternary.exact punt_dst)) ]
       else if has_key "acl_ingress_table" "l4_dst_port" then
         [ fm "l4_dst_port" (Entry.M_ternary (Ternary.exact (bv16 9999))) ]
       else [])
    in
    add (Entry.make ~table:"acl_ingress_table" ~priority:10 ~matches
           (single "acl_trap" []))
  end;
  if has "acl_egress_table" then
    add (Entry.make ~table:"acl_egress_table" ~priority:1
           ~matches:[ fm "ether_type" (Entry.M_ternary (Ternary.exact (bv16 0x0801))) ]
           (single "drop" []));
  if has "egress_router_interface_table" then
    add (Entry.make ~table:"egress_router_interface_table"
           ~matches:[ fm "router_interface_id" (exact16 1) ]
           (single "egress_set_src_mac" [ Packet.mac_of_string "02:00:00:00:bb:01" ]));
  if has "decap_table" then
    add (Entry.make ~table:"decap_table" ~priority:1
           ~matches:
             [ fm "dst_ip"
                 (Entry.M_ternary (Ternary.exact (Packet.ipv4_of_string "172.16.0.1"))) ]
           (single "gre_decap" []));
  List.rev !e

let punt_test_packet info =
  let has_key table key =
    match P4info.find_table info table with
    | Some ti -> P4info.find_match_field ti key <> None
    | None -> false
  in
  let dst_port = if has_key "acl_ingress_table" "dst_ip" then 20000 else 9999 in
  { Packet.headers =
      [ Packet.ethernet_frame ~dst:"02:00:00:00:00:02" ~ether_type:0x0800 ();
        Packet.ipv4_header ~src:"192.0.2.7" ~dst:"10.99.0.1" ();
        Packet.udp_header ~src_port:1234 ~dst_port () ];
    payload = "" }

let forward_test_packet =
  { Packet.headers =
      [ Packet.ethernet_frame ~dst:"02:00:00:00:aa:01" ~ether_type:0x0800 ();
        Packet.ipv4_header ~src:"192.0.2.7" ~dst:"10.50.1.9" ();
        Packet.udp_header ~src_port:1234 ~dst_port:20000 () ];
    payload = "" }

let run_all stack =
  let info = Stack.info stack in
  let installed = entries info in
  let results = ref [] in
  let record test ok = results := (test, ok) :: !results in

  (* 1. Set P4Info *)
  let p4info_ok = Status.is_ok (Stack.push_p4info stack) in
  record Fault.Set_p4info p4info_ok;

  (* 2. Table entry programming: one batch per table, in order. *)
  let programming_ok =
    List.for_all
      (fun e ->
        let resp = Stack.write stack { Request.updates = [ Request.insert e ] } in
        Request.write_ok resp)
      installed
  in
  record Fault.Table_entry_programming (p4info_ok && programming_ok);

  (* 3. Read all tables and compare. *)
  let read_ok =
    let expected = State.create () in
    List.iter (fun e -> ignore (State.insert expected e)) installed;
    let actual = State.create () in
    List.iter (fun e -> ignore (State.insert actual e)) (Stack.read stack).entries;
    State.equal expected actual
  in
  record Fault.Read_all_tables (p4info_ok && programming_ok && read_ok);

  (* 4. Packet-in: the ACL trap rule punts. *)
  let packet_in_ok =
    let b =
      Stack.inject stack ~ingress_port:1 (Packet.to_bytes (punt_test_packet info))
    in
    b.Interp.b_punted
  in
  record Fault.Packet_in (p4info_ok && packet_in_ok);

  (* 5. Packet-out on each port. *)
  let packet_out_ok =
    List.for_all
      (fun port ->
        let po =
          { Request.po_payload = forward_test_packet; po_egress_port = Some port }
        in
        let b = Stack.packet_out stack po in
        b.Interp.b_egress = Some port && not b.Interp.b_punted)
      [ 1; 2; 3; 4 ]
  in
  record Fault.Packet_out (p4info_ok && packet_out_ok);

  (* 6. Packet forwarding along the installed route. *)
  let forwarding_ok =
    let b = Stack.inject stack ~ingress_port:1 (Packet.to_bytes forward_test_packet) in
    b.Interp.b_egress = Some rif_port && not b.Interp.b_punted
  in
  record Fault.Packet_forwarding (p4info_ok && programming_ok && forwarding_ok);

  List.rev !results

let run stack =
  let results = run_all stack in
  List.find_opt (fun (_, ok) -> not ok) results |> Option.map fst
