module Stack = Switchv_switch.Stack
module Fuzzer = Switchv_fuzzer.Fuzzer
module Oracle = Switchv_oracle.Oracle
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module Rng = Switchv_bitvec.Rng
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro

type config = {
  batches : int;
  fuzzer_config : Fuzzer.config;
  seed : int;
  max_incidents : int;
}

let default_config =
  { batches = 20; fuzzer_config = Fuzzer.default_config; seed = 7; max_incidents = 25 }

let run ?(push_p4info = true) stack config =
  let start = Unix.gettimeofday () in
  let incidents = ref [] in
  (* Counted separately: [List.length !incidents] per batch made the cutoff
     check quadratic in max_incidents. *)
  let n_incidents = ref 0 in
  let n_updates = ref 0 in
  let n_valid = ref 0 in
  let n_invalid = ref 0 in
  let n_batches = ref 0 in
  (* Entries installed before the current batch, per the switch's own
     read-back: the reproducer prefix for incidents in that batch. *)
  let prefix = ref [] in
  let add ?context ?repro detector kind detail =
    incr n_incidents;
    incidents := Report.incident ?context ?repro detector ~kind ~detail :: !incidents
  in
  (if push_p4info then begin
     let s = Stack.push_p4info stack in
     if not (Status.is_ok s) then
       add Report.Fuzzer "p4info rejected"
         ~repro:(Repro.Control { cr_seed = config.seed; cr_prefix = []; cr_batch = [] })
         (Format.asprintf "Set P4Info failed: %a" Status.pp s)
   end);
  if !incidents = [] then
    Telemetry.with_span (Telemetry.get ()) "campaign.control" (fun () ->
    let fuzzer = Fuzzer.create ~config:config.fuzzer_config (Stack.info stack) (Rng.create config.seed) in
    let oracle = Oracle.create (Stack.info stack) in
    let process annotated =
      incr n_batches;
      let updates = List.map (fun (a : Fuzzer.annotated_update) -> a.update) annotated in
         n_updates := !n_updates + List.length updates;
         List.iter
           (fun (a : Fuzzer.annotated_update) ->
             match a.mutation with
             | Some _ -> incr n_invalid
             | None -> incr n_valid)
           annotated;
         let resp = Stack.write stack { Request.updates } in
         let read_back = Stack.read stack in
         let batch_incidents = Oracle.judge_batch oracle updates resp ~read_back in
         (if batch_incidents <> [] then begin
            (* One reproducer and one context per batch; the oracle judges
               the batch as a unit, so its incidents share both. *)
            let mutated =
              List.find_opt
                (fun (a : Fuzzer.annotated_update) -> a.mutation <> None)
                annotated
            in
            let table =
              match mutated with
              | Some a -> Some a.update.entry.e_table
              | None -> (
                  (* Directed-sweep batches target a single table; use it
                     when the whole batch agrees. *)
                  match updates with
                  | (u : Request.update) :: rest
                    when List.for_all
                           (fun (v : Request.update) ->
                             String.equal v.entry.e_table u.entry.e_table)
                           rest ->
                      Some u.entry.e_table
                  | _ -> None)
            in
            let context =
              Report.context ?table
                ?mutation:(Option.bind mutated
                             (fun (a : Fuzzer.annotated_update) -> a.mutation))
                ~batch:!n_batches ()
            in
            let repro =
              Repro.Control
                { cr_seed = config.seed; cr_prefix = !prefix; cr_batch = updates }
            in
            List.iter
              (fun (i : Oracle.incident) ->
                let kind =
                  match i.inc_kind with
                  | `Status_violation -> "status violation"
                  | `State_divergence -> "state divergence"
                  | `Unresponsive -> "unresponsive"
                  | `P4info_rejected -> "p4info rejected"
                in
                add ~context ~repro Report.Fuzzer kind i.inc_detail)
              batch_incidents
          end);
      prefix := read_back.entries;
      (* A wedged switch cannot produce more signal; stop the campaign. *)
      if Stack.crashed stack then raise Exit
    in
    (try
       (* Directed sweep first (every table, every mutation), then the
          random phase. *)
       List.iter
         (fun batch ->
           if !n_incidents >= config.max_incidents then raise Exit;
           process batch)
         (Fuzzer.sweep fuzzer);
       for _ = 1 to config.batches do
         if !n_incidents >= config.max_incidents then raise Exit;
         process (Fuzzer.next_batch fuzzer)
       done
     with Exit -> ()));
  let stats =
    { Report.cs_batches = !n_batches;
      cs_updates = !n_updates;
      cs_valid_updates = !n_valid;
      cs_invalid_updates = !n_invalid;
      cs_duration = Unix.gettimeofday () -. start }
  in
  (List.rev !incidents, stats)
