module Stack = Switchv_switch.Stack
module Fuzzer = Switchv_fuzzer.Fuzzer
module Greybox = Switchv_fuzzer.Greybox
module Oracle = Switchv_oracle.Oracle
module Request = Switchv_p4runtime.Request
module Status = Switchv_p4runtime.Status
module Rng = Switchv_bitvec.Rng
module Telemetry = Switchv_telemetry.Telemetry
module Repro = Switchv_triage.Repro
module Shard = Switchv_parallel.Shard
module Pool = Switchv_parallel.Pool
module Jsonp = Switchv_triage.Jsonp

type config = {
  batches : int;
  fuzzer_config : Fuzzer.config;
  seed : int;
  max_incidents : int;
  shards : int;
  greybox : bool;
}

let default_config =
  { batches = 20; fuzzer_config = Fuzzer.default_config; seed = 7;
    max_incidents = 25; shards = 1; greybox = true }

(* Probe packets injected after each batch with the feedback loop on:
   control batches execute no packets themselves, so the probes are what
   turn installed state into coverage deltas the scheduler can learn
   from. *)
let probes_per_batch = 2

(* One shard of the campaign: a fresh stack, a fresh fuzzer seeded with
   [seed + shard], and this shard's slice of the batch budget. The
   decomposition depends only on [config] (never on worker count), so the
   same shard always produces the same incidents. The directed sweep runs
   in shard 0 only — it is deterministic per-program, so running it once
   preserves the sequential campaign's output at [shards = 1]. *)
let run_shard ?(push_p4info = true) stack config ~shard =
  let shards = max 1 config.shards in
  let seed = config.seed + shard in
  let batches = (Shard.counts ~total:config.batches ~shards).(shard) in
  let start = Telemetry.Clock.now () in
  let incidents = ref [] in
  (* Counted separately: [List.length !incidents] per batch made the cutoff
     check quadratic in max_incidents. *)
  let n_incidents = ref 0 in
  let n_updates = ref 0 in
  let n_valid = ref 0 in
  let n_invalid = ref 0 in
  let n_batches = ref 0 in
  (* Entries installed before the current batch, per the switch's own
     read-back: the reproducer prefix for incidents in that batch. *)
  let prefix = ref [] in
  let add ?context ?repro detector kind detail =
    incr n_incidents;
    Telemetry.incr (Telemetry.get ()) "campaign.incidents";
    incidents := Report.incident ?context ?repro detector ~kind ~detail :: !incidents
  in
  (if push_p4info then begin
     let s = Stack.push_p4info stack in
     if not (Status.is_ok s) then
       add Report.Fuzzer "p4info rejected"
         ~repro:(Repro.Control { cr_seed = seed; cr_prefix = []; cr_batch = [] })
         (Format.asprintf "Set P4Info failed: %a" Status.pp s)
   end);
  (* Shard-local feedback state: starts empty and sees only this shard's
     own execution deltas, so scheduling is a pure function of
     (config, shard) — see the determinism note in [Greybox]. *)
  let greybox =
    if config.greybox then
      Some (Greybox.create ~program:(Stack.program stack) ~seed ())
    else None
  in
  if !incidents = [] then
    Telemetry.with_span (Telemetry.get ()) "campaign.control" (fun () ->
    let fuzzer =
      Fuzzer.create ~config:config.fuzzer_config ?greybox (Stack.info stack)
        (Rng.create seed)
    in
    let oracle = Oracle.create (Stack.info stack) in
    let process annotated =
      incr n_batches;
      let updates = List.map (fun (a : Fuzzer.annotated_update) -> a.update) annotated in
         n_updates := !n_updates + List.length updates;
         List.iter
           (fun (a : Fuzzer.annotated_update) ->
             match a.mutation with
             | Some _ -> incr n_invalid
             | None -> incr n_valid)
           annotated;
         let resp = Stack.write stack { Request.updates } in
         let read_back = Stack.read stack in
         let batch_incidents = Oracle.judge_batch oracle updates resp ~read_back in
         (if batch_incidents <> [] then begin
            (* One reproducer and one context per batch; the oracle judges
               the batch as a unit, so its incidents share both. *)
            let mutated =
              List.find_opt
                (fun (a : Fuzzer.annotated_update) -> a.mutation <> None)
                annotated
            in
            let table =
              match mutated with
              | Some a -> Some a.update.entry.e_table
              | None -> (
                  (* Directed-sweep batches target a single table; use it
                     when the whole batch agrees. *)
                  match updates with
                  | (u : Request.update) :: rest
                    when List.for_all
                           (fun (v : Request.update) ->
                             String.equal v.entry.e_table u.entry.e_table)
                           rest ->
                      Some u.entry.e_table
                  | _ -> None)
            in
            let context =
              Report.context ?table
                ?mutation:(Option.bind mutated
                             (fun (a : Fuzzer.annotated_update) -> a.mutation))
                ~batch:!n_batches ()
            in
            let repro =
              Repro.Control
                { cr_seed = seed; cr_prefix = !prefix; cr_batch = updates }
            in
            List.iter
              (fun (i : Oracle.incident) ->
                let kind =
                  match i.inc_kind with
                  | `Status_violation -> "status violation"
                  | `State_divergence -> "state divergence"
                  | `Unresponsive -> "unresponsive"
                  | `P4info_rejected -> "p4info rejected"
                in
                add ~context ~repro Report.Fuzzer kind i.inc_detail)
              batch_incidents
          end);
      prefix := read_back.entries;
      (* Feedback: inject a few probe packets through the state this batch
         left behind and fold the coverage delta into the novelty map.
         Probes that reached shard-novel edges enter the corpus themselves,
         and the batch that set up the state is credited alongside them. *)
      (match greybox with
      | Some gb when not (Stack.crashed stack) ->
          let tele = Telemetry.get () in
          let tables =
            List.sort_uniq String.compare
              (List.map (fun (u : Request.update) -> u.entry.e_table) updates)
          in
          let novel = ref 0 in
          for _ = 1 to probes_per_batch do
            let before = Greybox.snapshot gb tele in
            let port, bytes = Greybox.probe_packet gb in
            Telemetry.incr tele "fuzzer.greybox.probes";
            ignore (Stack.inject stack ~ingress_port:port bytes);
            novel :=
              !novel
              + Greybox.observe gb tele ~before ~tables
                  ~seed:(Greybox.Packet (port, bytes)) ()
          done;
          if !novel > 0 then
            Greybox.admit gb
              (Greybox.Batch
                 (List.map (fun (u : Request.update) -> u.entry) updates))
              ~energy:!novel
      | _ -> ());
      (* A wedged switch cannot produce more signal; stop the campaign. *)
      if Stack.crashed stack then raise Exit
    in
    (try
       (* Directed sweep first (every table, every mutation), then the
          random phase. *)
       if shard = 0 then
         List.iter
           (fun batch ->
             if !n_incidents >= config.max_incidents then raise Exit;
             process batch)
           (Fuzzer.sweep fuzzer);
       for _ = 1 to batches do
         if !n_incidents >= config.max_incidents then raise Exit;
         process (Fuzzer.next_batch fuzzer)
       done
     with Exit -> ()));
  let stats =
    { Report.cs_batches = !n_batches;
      cs_updates = !n_updates;
      cs_valid_updates = !n_valid;
      cs_invalid_updates = !n_invalid;
      cs_novel_edges =
        (match greybox with Some gb -> Greybox.novel_edges gb | None -> 0);
      cs_corpus_seeds =
        (match greybox with Some gb -> Greybox.corpus_size gb | None -> 0);
      cs_duration = Telemetry.Clock.duration ~since:start }
  in
  (List.rev !incidents, stats)

let run ?push_p4info stack config =
  run_shard ?push_p4info stack { config with shards = 1 } ~shard:0

(* --- sharded execution ---------------------------------------------------- *)

module Json = Telemetry.Json

let serialize_shard (incidents, stats) =
  Json.obj
    [ ("incidents", Json.arr (List.map Report.incident_ipc_to_json incidents));
      ("stats", Report.control_stats_to_json stats) ]

let deserialize_shard payload =
  let ( let* ) = Result.bind in
  let* j = Jsonp.parse payload in
  let* incidents =
    match Jsonp.member "incidents" j with
    | Some (Jsonp.Arr xs) ->
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            let* i = Report.incident_of_ipc_json x in
            Ok (i :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | _ -> Error "control shard payload: missing incidents"
  in
  let* stats =
    match Jsonp.member "stats" j with
    | Some sj -> Report.control_stats_of_json sj
    | None -> Error "control shard payload: missing stats"
  in
  Ok (incidents, stats)

let truncate n xs =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n xs

let run_sharded ?(push_p4info = true) ?(jobs = 1) ?stack0 mk_stack config =
  let shards = max 1 config.shards in
  let stack_for shard =
    match stack0 with Some s when shard = 0 -> s | _ -> mk_stack ()
  in
  (* Merge in shard order: each shard ran with the full incident budget, so
     truncating the concatenation to [max_incidents] yields the same prefix
     whether shards ran sequentially or in any parallel interleaving. *)
  let merge results =
    let incidents = truncate config.max_incidents (List.concat_map fst results) in
    (incidents, Report.merge_control_stats (List.map snd results))
  in
  if shards = 1 && jobs <= 1 then run ~push_p4info (stack_for 0) config
  else if jobs <= 1 then
    merge
      (List.init shards (fun shard ->
           run_shard ~push_p4info (stack_for shard) config ~shard))
  else begin
    let parent_shards = if stack0 <> None then [ 0 ] else [] in
    let task shard =
      serialize_shard (run_shard ~push_p4info (stack_for shard) config ~shard)
    in
    let pool = Pool.run ~jobs ~shards ~parent_shards task in
    let results =
      List.filter_map
        (function
          | Pool.Done payload -> (
              match deserialize_shard payload with
              | Ok r -> Some r
              | Error e ->
                  (* Same degradation contract as a crashed worker: drop the
                     shard, keep the campaign. *)
                  Telemetry.incr (Telemetry.get ()) "parallel.workers_failed";
                  Printf.eprintf
                    "switchv: dropping undecodable control shard: %s\n%!" e;
                  None)
          | Pool.Lost _ -> None)
        (Array.to_list pool.Pool.outcomes)
    in
    merge results
  end
