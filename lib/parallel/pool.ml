(* Fork-based worker pool.

   The parent forks one worker per [Shard.assignment] slot *after* all
   expensive setup (parsed program, installed reference stack, symbolic
   encoding) so children inherit it copy-on-write for free. Each worker
   runs its assigned shards in order and streams one frame per shard back
   over a pipe; the parent multiplexes the pipes with [select] and
   reassembles results *by shard id*, so the merged array is independent
   of scheduling.

   Failure policy: a worker that crashes or goes silent past the deadline
   loses its remaining shards. Lost shards degrade coverage — they are
   logged and counted under [parallel.workers_failed] — but never abort
   the run. SIGINT tears the whole pool down. *)

type outcome = Done of string | Lost of string

type result = {
  outcomes : outcome array;
  workers_failed : int;
}

type worker = {
  pid : int;
  rfd : Unix.file_descr;
  dec : Ipc.decoder;
  shards : int list;            (* shards this worker owns, ascending *)
  mutable delivered : int;      (* frames received so far *)
  mutable last_activity : float;
  mutable open_ : bool;
}

(* Worker-side envelope: shard id, payload or error, and a telemetry
   export so counters/histograms bumped inside the child survive the
   process boundary. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let telemetry_export_json (ex : Switchv_telemetry.Telemetry.export) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    ex.Switchv_telemetry.Telemetry.ex_counters;
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i (name, (hd : Switchv_telemetry.Telemetry.histogram_dump)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":{\"buckets\":[" (json_escape name));
      Array.iteri
        (fun j n ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int n))
        hd.hd_buckets;
      Buffer.add_string b
        (Printf.sprintf "],\"count\":%d,\"sum\":%.17g,\"max\":%.17g}" hd.hd_count
           hd.hd_sum hd.hd_max))
    ex.Switchv_telemetry.Telemetry.ex_histograms;
  Buffer.add_string b "}}";
  Buffer.contents b

let envelope_json ~shard ~payload ~error ~telemetry =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "{\"shard\":%d," shard);
  (match payload with
  | Some p -> Buffer.add_string b (Printf.sprintf "\"payload\":\"%s\"," (json_escape p))
  | None -> ());
  (match error with
  | Some e -> Buffer.add_string b (Printf.sprintf "\"error\":\"%s\"," (json_escape e))
  | None -> ());
  Buffer.add_string b (Printf.sprintf "\"telemetry\":%s}" telemetry);
  Buffer.contents b

(* Mid-shard frames: a telemetry heartbeat (delta since the previous
   heartbeat — absorbing the stream reproduces the full export exactly)
   and a batch of raw trace-event lines the parent re-emits into its own
   sink. Both are distinguished from result envelopes by their key. *)
let heartbeat_json ~telemetry = Printf.sprintf "{\"hb\":1,\"telemetry\":%s}" telemetry

let trace_json lines =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"trace\":[";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (json_escape line);
      Buffer.add_char b '"')
    lines;
  Buffer.add_string b "]}";
  Buffer.contents b

let absorb_telemetry_json tele j =
  let module T = Switchv_telemetry.Telemetry in
  let module J = Switchv_triage.Jsonp in
  let counters =
    match J.member "counters" j with
    | Some (J.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            match J.to_int v with Some n -> Some (k, n) | None -> None)
          kvs
    | _ -> []
  in
  let histograms =
    match J.member "histograms" j with
    | Some (J.Obj kvs) ->
        List.filter_map
          (fun (k, v) ->
            let buckets =
              match J.member "buckets" v with
              | Some (J.Arr xs) ->
                  Some
                    (Array.of_list
                       (List.map (fun x -> Option.value ~default:0 (J.to_int x)) xs))
              | _ -> None
            in
            match (buckets, J.member "count" v, J.member "sum" v, J.member "max" v)
            with
            | Some hd_buckets, Some c, Some s, Some m -> (
                match (J.to_int c, J.to_num s, J.to_num m) with
                | Some hd_count, Some hd_sum, Some hd_max ->
                    Some (k, { T.hd_buckets; hd_count; hd_sum; hd_max })
                | _ -> None)
            | _ -> None)
          kvs
    | _ -> []
  in
  T.absorb tele { T.ex_counters = counters; ex_histograms = histograms }

(* --- child --------------------------------------------------------------- *)

let heartbeat_s = 0.5

let run_child ~sid_base ~root_psid ~trace wfd shards task =
  (* One fresh registry per worker, seeded with its own span-id block so
     every span id in the campaign is globally unique, and with the
     parent's span open at fork time as the parent of its depth-0 spans.
     Telemetry leaves the worker only as deltas — periodic heartbeats plus
     a final delta on each result envelope — so the parent can absorb
     every frame additively and the merged totals are exactly the full
     export, independent of flush cadence and of --jobs. *)
  let module T = Switchv_telemetry.Telemetry in
  let reg = T.create () in
  T.seed_spans reg ~sid_base ~root_psid;
  let pending = ref [] in
  if trace then
    T.set_sink reg (Some (fun line -> pending := line :: !pending));
  let flush_trace () =
    if !pending <> [] then begin
      let lines = List.rev !pending in
      pending := [];
      Ipc.write_frame wfd (trace_json lines)
    end
  in
  let absorbed = ref { T.ex_counters = []; ex_histograms = [] } in
  let take_delta () =
    let delta = T.diff_export reg ~base:!absorbed in
    absorbed := T.export reg;
    delta
  in
  let last_flush = ref (Unix.gettimeofday ()) in
  (* Piggy-back on span finishes (packet injections, solver checks, ...):
     no timers, and a worker wedged inside one long computation simply
     stops heartbeating, which is what the parent's deadline is for. *)
  T.set_tick reg
    (Some
       (fun () ->
         let now = Unix.gettimeofday () in
         if now -. !last_flush >= heartbeat_s then begin
           last_flush := now;
           flush_trace ();
           let delta = take_delta () in
           if delta.T.ex_counters <> [] || delta.T.ex_histograms <> [] then
             Ipc.write_frame wfd
               (heartbeat_json ~telemetry:(telemetry_export_json delta))
         end));
  List.iter
    (fun shard ->
      let payload, error =
        match
          T.with_registry reg (fun () ->
              T.with_span reg "parallel.shard"
                ~attrs:[ ("shard", string_of_int shard) ] (fun () -> task shard))
        with
        | p -> (Some p, None)
        | exception e -> (None, Some (Printexc.to_string e))
      in
      flush_trace ();
      let telemetry = telemetry_export_json (take_delta ()) in
      Ipc.write_frame wfd (envelope_json ~shard ~payload ~error ~telemetry))
    shards

(* --- parent -------------------------------------------------------------- *)

let tick_s = 0.25

let reap pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let kill_quietly pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let run ?(deadline_s = 300.) ?(parent_shards = []) ~jobs ~shards task =
  let module T = Switchv_telemetry.Telemetry in
  let module J = Switchv_triage.Jsonp in
  let tele = T.get () in
  (* The pool span is the stitching anchor: it is open when the workers
     fork, so every worker's [parallel.shard] root hangs off it in the
     campaign trace. *)
  T.with_span tele "parallel.pool" @@ fun () ->
  let outcomes =
    Array.init shards (fun s -> Lost (Printf.sprintf "shard %d not executed" s))
  in
  let remote =
    List.filter (fun s -> not (List.mem s parent_shards)) (List.init shards Fun.id)
  in
  let plan =
    Shard.assignment ~jobs ~shards:(List.length remote)
    |> Array.map (List.map (List.nth remote))
  in
  let plan = Array.to_list plan |> List.filter (fun l -> l <> []) in
  (* Fork the workers. stdout/stderr are flushed first so buffered output
     is not emitted twice; each write end is closed in the parent before
     the next fork, so no child holds a copy of another worker's write end
     and EOF on a pipe reliably means its worker is gone. *)
  flush stdout;
  flush stderr;
  let root_psid = T.current_sid tele in
  let trace = T.tracing tele in
  let workers =
    List.map
      (fun shard_list ->
        let rfd, wfd = Unix.pipe ~cloexec:false () in
        let sid_base = T.alloc_sid_block tele in
        match Unix.fork () with
        | 0 ->
            Unix.close rfd;
            (match run_child ~sid_base ~root_psid ~trace wfd shard_list task with
            | () -> ()
            | exception _ -> ());
            (try Unix.close wfd with Unix.Unix_error _ -> ());
            Unix._exit 0
        | pid ->
            Unix.close wfd;
            {
              pid;
              rfd;
              dec = Ipc.decoder ();
              shards = shard_list;
              delivered = 0;
              last_activity = Unix.gettimeofday ();
              open_ = true;
            })
      plan
  in
  let failed = ref 0 in
  let lose w reason =
    (* Any shard this worker had not yet delivered is gone; record why. *)
    let missing = ref [] in
    List.iteri
      (fun i s ->
        if i >= w.delivered then begin
          outcomes.(s) <- Lost reason;
          missing := s :: !missing
        end)
      w.shards;
    if !missing <> [] then begin
      incr failed;
      T.incr tele "parallel.workers_failed";
      Printf.eprintf "switchv: worker %d lost shard(s) %s: %s\n%!" w.pid
        (String.concat ", " (List.rev_map string_of_int !missing))
        reason
    end
  in
  let teardown () =
    List.iter
      (fun w ->
        kill_quietly w.pid Sys.sigkill;
        if w.open_ then begin
          (try Unix.close w.rfd with Unix.Unix_error _ -> ());
          w.open_ <- false
        end)
      workers;
    List.iter (fun w -> reap w.pid) workers
  in
  let prev_int =
    (* On Ctrl-C: kill and reap every worker, restore the old handler, and
       re-raise so the caller's cleanup still runs. *)
    try
      Some
        (Sys.signal Sys.sigint
           (Sys.Signal_handle
              (fun _ ->
                teardown ();
                raise Sys.Break)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_int () =
    match prev_int with
    | Some h -> ( try Sys.set_signal Sys.sigint h with _ -> ())
    | None -> ()
  in
  let handle_result w j =
    let shard = Option.bind (J.member "shard" j) J.to_int in
    let payload = Option.bind (J.member "payload" j) J.to_str in
    let error = Option.bind (J.member "error" j) J.to_str in
    (match J.member "telemetry" j with
    | Some tj -> absorb_telemetry_json tele tj
    | None -> ());
    w.delivered <- w.delivered + 1;
    match shard with
    | Some s when s >= 0 && s < shards -> (
        match (payload, error) with
        | Some p, _ -> outcomes.(s) <- Done p
        | None, Some e -> outcomes.(s) <- Lost (Printf.sprintf "worker error: %s" e)
        | None, None -> outcomes.(s) <- Lost "worker sent empty frame")
    | _ -> Printf.eprintf "switchv: worker %d sent frame with bad shard id\n%!" w.pid
  in
  let handle_frame w frame =
    (* Three frame kinds share the pipe: trace-line batches and telemetry
       heartbeats stream mid-shard; a result envelope ends a shard. Only
       result envelopes count towards [delivered]. *)
    match J.parse frame with
    | Ok j when J.member "trace" j <> None ->
        if T.tracing tele then (
          match J.member "trace" j with
          | Some (J.Arr lines) ->
              List.iter
                (fun l ->
                  match J.to_str l with
                  | Some line -> T.emit_raw tele line
                  | None -> ())
                lines
          | _ -> ())
    | Ok j when J.member "hb" j <> None -> (
        match J.member "telemetry" j with
        | Some tj -> absorb_telemetry_json tele tj
        | None -> ())
    | Ok j -> handle_result w j
    | Error _ ->
        w.delivered <- w.delivered + 1;
        Printf.eprintf "switchv: worker %d sent an unparseable frame\n%!" w.pid
  in
  let buf = Bytes.create 65536 in
  let finish () =
    let rec drain w =
      (* Parent shards run in-process, after the forks, so workers compute
         concurrently with them. *)
      match Ipc.next w.dec with
      | Some frame ->
          handle_frame w frame;
          drain w
      | None -> ()
      | exception Ipc.Corrupt msg ->
          (try Unix.close w.rfd with Unix.Unix_error _ -> ());
          w.open_ <- false;
          kill_quietly w.pid Sys.sigkill;
          lose w (Printf.sprintf "corrupt stream: %s" msg)
    in
    List.iter
      (fun s ->
        match task s with
        | p -> outcomes.(s) <- Done p
        | exception e ->
            outcomes.(s) <- Lost (Printexc.to_string e);
            incr failed;
            T.incr tele "parallel.workers_failed";
            Printf.eprintf "switchv: parent shard %d failed: %s\n%!" s
              (Printexc.to_string e))
      parent_shards;
    let live () = List.filter (fun w -> w.open_) workers in
    let rec loop () =
      match live () with
      | [] -> ()
      | ws ->
          let fds = List.map (fun w -> w.rfd) ws in
          let readable =
            match Unix.select fds [] [] tick_s with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          let now = Unix.gettimeofday () in
          List.iter
            (fun w ->
              if List.mem w.rfd readable then begin
                match Unix.read w.rfd buf 0 (Bytes.length buf) with
                | 0 ->
                    (* EOF: worker finished (all frames delivered) or died. *)
                    (try Unix.close w.rfd with Unix.Unix_error _ -> ());
                    w.open_ <- false;
                    reap w.pid;
                    if Ipc.pending w.dec then
                      lose w "exited mid-frame"
                    else if w.delivered < List.length w.shards then
                      lose w "worker exited early (crash?)"
                | n ->
                    w.last_activity <- now;
                    Ipc.feed w.dec buf n;
                    drain w
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error (e, _, _) ->
                    (try Unix.close w.rfd with Unix.Unix_error _ -> ());
                    w.open_ <- false;
                    kill_quietly w.pid Sys.sigkill;
                    reap w.pid;
                    lose w (Printf.sprintf "read error: %s" (Unix.error_message e))
              end
              else if w.open_ && now -. w.last_activity > deadline_s then begin
                (* Silent past the deadline: assume wedged and reclaim. *)
                kill_quietly w.pid Sys.sigkill;
                (try Unix.close w.rfd with Unix.Unix_error _ -> ());
                w.open_ <- false;
                reap w.pid;
                lose w
                  (Printf.sprintf "no output for %.0fs, killed" deadline_s)
              end)
            ws;
          loop ()
    in
    loop ()
  in
  (match finish () with
  | () -> restore_int ()
  | exception e ->
      teardown ();
      restore_int ();
      raise e);
  { outcomes; workers_failed = !failed }
