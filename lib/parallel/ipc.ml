(* Length-prefixed frames over raw file descriptors.

   Workers write whole frames with [Unix.write] (no stdlib channels: a
   forked child sharing a buffered channel with its parent would flush the
   parent's buffered bytes a second time), and the parent decodes
   incrementally — it multiplexes many pipes with [select], so it must
   accept partial reads and frames split across reads. *)

exception Corrupt of string

(* 4-byte big-endian length, then the payload. *)
let header_len = 4

(* A frame larger than this is corruption (a campaign shard's serialized
   results are a few MB at the very worst), not data. *)
let max_frame_len = 1 lsl 28

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n = Unix.write fd bytes off len in
    write_all fd bytes (off + n) (len - n)
  end

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame_len then invalid_arg "Ipc.write_frame: frame too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b header_len n;
  write_all fd b 0 (header_len + n)

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;   (* first unconsumed byte *)
  mutable len : int;     (* valid bytes from [start] *)
}

let decoder () = { buf = Bytes.create 65536; start = 0; len = 0 }

let feed d src n =
  (* Compact consumed space, then grow if the appended bytes still do not
     fit; amortized linear in total bytes fed. *)
  if d.start > 0 then begin
    Bytes.blit d.buf d.start d.buf 0 d.len;
    d.start <- 0
  end;
  let needed = d.len + n in
  if needed > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf) in
    while needed > !cap do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  Bytes.blit src 0 d.buf d.len n;
  d.len <- d.len + n

let next d =
  if d.len < header_len then None
  else begin
    let byte i = Char.code (Bytes.get d.buf (d.start + i)) in
    let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if n < 0 || n > max_frame_len then
      raise (Corrupt (Printf.sprintf "frame length %d out of range" n));
    if d.len < header_len + n then None
    else begin
      let payload = Bytes.sub_string d.buf (d.start + header_len) n in
      d.start <- d.start + header_len + n;
      d.len <- d.len - header_len - n;
      Some payload
    end
  end

let pending d = d.len > 0
