(** Length-prefixed framing over raw Unix file descriptors.

    The worker side writes complete frames; the parent side feeds whatever
    [Unix.read] returned into a {!decoder} and pops complete frames as
    they materialize, so a select loop can interleave many workers without
    ever blocking on a half-written frame. *)

exception Corrupt of string
(** A length prefix that cannot be a real frame (negative or absurdly
    large) — the stream is unusable from here on. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one [4-byte big-endian length + payload] frame, retrying short
    writes. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> Bytes.t -> int -> unit
(** [feed d src n] appends the first [n] bytes of [src]. *)

val next : decoder -> string option
(** Pop the next complete frame, if one is buffered.
    @raise Corrupt on an invalid length prefix. *)

val pending : decoder -> bool
(** Undecoded bytes remain (diagnostic: true at EOF means a torn tail). *)
