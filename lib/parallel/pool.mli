(** Fork-based worker pool for campaign sharding.

    [run ~jobs ~shards task] executes [task s] for every shard id
    [0 .. shards-1] and returns the results indexed by shard, regardless
    of which worker ran what or in what order frames arrived. Workers are
    forked {e after} the caller's setup, so they inherit the parsed
    program, installed stack, and symbolic encoding copy-on-write.

    Each worker runs under a fresh registry seeded with its own span-id
    block and streams length-prefixed JSON frames back: batches of raw
    trace-event lines (spliced into the parent's trace sink, so a
    campaign trace is one stitched causal tree), periodic telemetry
    heartbeats, and one result envelope per shard carrying the payload
    (or an error). Telemetry always crosses the pipe as {e deltas}
    (heartbeats, then a final delta on the envelope), so the parent
    absorbs every frame additively — including full histogram bucket
    contents, which is why sharded quantiles match single-process runs —
    and the merged totals are independent of flush cadence and of
    [jobs]. The pool itself runs inside a [parallel.pool] span; worker
    [parallel.shard] root spans carry it as their parent id.

    Failure is containment, not abort: a crashed, erroring, or
    deadline-silent worker forfeits its undelivered shards, which come
    back as {!Lost}; the [parallel.workers_failed] counter is bumped and
    the loss logged to stderr. SIGINT kills and reaps every worker, then
    re-raises [Sys.Break]. *)

type outcome =
  | Done of string  (** the payload [task] returned for this shard *)
  | Lost of string  (** shard not executed; the reason *)

type result = {
  outcomes : outcome array;  (** indexed by shard id *)
  workers_failed : int;
}

val run :
  ?deadline_s:float ->
  ?parent_shards:int list ->
  jobs:int ->
  shards:int ->
  (int -> string) ->
  result
(** @param deadline_s kill a worker with no output for this long
      (default 300).
    @param parent_shards shards to run in this process after forking the
      workers — used when a shard's side effects (e.g. a populated stack
      to harvest entries from) are needed in the parent. *)
