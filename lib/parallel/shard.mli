(** Deterministic work decomposition for parallel campaigns.

    The cardinal rule: a decomposition is a function of the {e work} and
    the {e shard count} only, never of the worker count. That is what
    makes a sharded campaign's merged output independent of [--jobs] —
    workers merely race to execute a plan that is fixed up front. *)

val counts : total:int -> shards:int -> int array
(** Even contiguous split of [total] items into [shards] parts; earlier
    shards absorb the remainder. [shards] is clamped to [>= 1]. *)

val offsets : total:int -> shards:int -> (int * int) array
(** Per-shard [(offset, length)] for the same split. *)

val partition : shards:int -> 'a list -> (int * 'a list) array
(** Contiguous slices of the list, each with its global start offset.
    Concatenating the slices in shard order rebuilds the input exactly. *)

val assignment : jobs:int -> shards:int -> int list array
(** Round-robin shard-to-worker plan: entry [w] lists the shard ids worker
    [w] executes, in increasing order. Length is
    [max 1 (min jobs shards)]. *)
