(* Deterministic work decomposition. Everything here depends only on
   (total, shards) — never on the number of workers — so the same campaign
   splits into the same shards whether it runs on one core or sixteen. *)

let counts ~total ~shards =
  let shards = max 1 shards in
  let base = total / shards and extra = total mod shards in
  Array.init shards (fun i -> base + if i < extra then 1 else 0)

let offsets ~total ~shards =
  let c = counts ~total ~shards in
  let off = ref 0 in
  Array.map
    (fun n ->
      let o = !off in
      off := o + n;
      (o, n))
    c

let partition ~shards xs =
  let slices = offsets ~total:(List.length xs) ~shards in
  let remaining = ref xs in
  Array.map
    (fun (off, len) ->
      let rec take n acc rest =
        if n = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: tl -> take (n - 1) (x :: acc) tl
      in
      let slice, rest = take len [] !remaining in
      remaining := rest;
      (off, slice))
    slices

let assignment ~jobs ~shards =
  let jobs = max 1 (min jobs (max 1 shards)) in
  let plan = Array.make jobs [] in
  for s = shards - 1 downto 0 do
    plan.(s mod jobs) <- s :: plan.(s mod jobs)
  done;
  plan
