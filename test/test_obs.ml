(* Tests for lib/obs: coverage accounting against the interpreter's edge
   counters, Prometheus rendering + linting, metric-documentation hygiene,
   trace-file atomicity, cross-fork trace stitching + the Chrome
   converter, the HTTP exposition endpoint, and the progress line. *)

module Telemetry = Switchv_telemetry.Telemetry
module Jsonp = Switchv_telemetry.Jsonp
module Coverage = Switchv_obs.Coverage
module Prom = Switchv_obs.Prom
module Docs = Switchv_obs.Docs
module Trace = Switchv_obs.Trace
module Serve = Switchv_obs.Serve
module Progress = Switchv_obs.Progress
module Pool = Switchv_parallel.Pool
module Middleblock = Switchv_sai.Middleblock
module Workload = Switchv_sai.Workload
module Stack = Switchv_switch.Stack
module Data_campaign = Switchv_core.Data_campaign

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let entries = Workload.generate ~seed:3 Middleblock.program Workload.small

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "swv_obs_%d_%s" (Unix.getpid ()) name)

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- coverage --------------------------------------------------------------- *)

let test_edge_keys_shape () =
  let keys = Coverage.edge_keys Middleblock.program in
  check_bool "edge space is non-empty" true (keys <> []);
  check_bool "sorted and deduplicated" true
    (List.sort_uniq String.compare keys = keys);
  List.iter
    (fun k ->
      check_bool ("coverage key namespace: " ^ k) true
        (has_prefix ~prefix:"cov.branch." k || has_prefix ~prefix:"cov.action." k))
    keys;
  (* A fresh registry covers nothing but still enumerates every edge. *)
  let cov = Coverage.of_registry (Telemetry.create ()) Middleblock.program in
  check_int "nothing covered" 0 cov.Coverage.covered;
  check_int "total = edge space" (List.length keys) cov.Coverage.total

let test_edge_keys_memoized () =
  (* The greybox loop snapshots the key list around every injection;
     repeated calls on the same program value must not rebuild the CFG. *)
  let a = Coverage.edge_keys Middleblock.program in
  let b = Coverage.edge_keys Middleblock.program in
  check_bool "same program value returns the cached list" true (a == b);
  (* A structurally-equal-but-distinct program value recomputes — and the
     recomputation must agree exactly with the cached result. *)
  let copy =
    { Middleblock.program with
      Switchv_p4ir.Ast.p_name = Middleblock.program.Switchv_p4ir.Ast.p_name }
  in
  let c = Coverage.edge_keys copy in
  check_bool "distinct value recomputes" true (not (c == a));
  check_bool "recomputation identical" true (c = a);
  (* The copy is now cached too. *)
  check_bool "copy cached on second call" true (Coverage.edge_keys copy == c)

let test_coverage_write_pid_unique_tmp () =
  (* Regression: the temp file used to be the fixed [path ^ ".tmp"], so
     two processes writing the same --coverage-out could clobber each
     other's half-written temp. The pid-suffixed temp must leave a
     stranger's ".tmp" sibling untouched. *)
  let path = tmp_path "cov_pid.txt" in
  let stale = path ^ ".tmp" in
  let oc = open_out stale in
  output_string oc "sentinel-from-another-process";
  close_out oc;
  let cov = Coverage.of_registry (Telemetry.create ()) Middleblock.program in
  Coverage.write_file cov path;
  check_bool "output published" true (Sys.file_exists path);
  check_string "foreign .tmp sibling untouched" "sentinel-from-another-process"
    (read_all stale);
  check_bool "pid temp cleaned up" false
    (Sys.file_exists (Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())));
  Sys.remove stale;
  Sys.remove path

let campaign_registry =
  (* One campaign run, shared by the coverage and hygiene tests. *)
  lazy
    (let tele = Telemetry.create () in
     Telemetry.with_registry tele (fun () ->
         let stack = Stack.create Middleblock.program in
         let config =
           { (Data_campaign.default_config entries) with test_packet_io = false }
         in
         ignore (Data_campaign.run stack config));
     tele)

let test_interp_counters_within_edge_space () =
  let tele = Lazy.force campaign_registry in
  let keys = Coverage.edge_keys Middleblock.program in
  let snap = Telemetry.snapshot tele in
  List.iter
    (fun (name, _) ->
      if has_prefix ~prefix:"cov." name then
        check_bool ("interpreter key in edge space: " ^ name) true
          (List.mem name keys))
    snap.Telemetry.snap_counters;
  let cov = Coverage.of_registry tele Middleblock.program in
  check_bool "campaign covered some edges" true (cov.Coverage.covered > 0);
  check_bool "covered within total" true (cov.Coverage.covered <= cov.Coverage.total);
  let pct = Coverage.percent cov in
  check_bool "percent in range" true (pct > 0. && pct <= 100.)

let test_coverage_text_and_json () =
  let tele = Lazy.force campaign_registry in
  let cov = Coverage.of_registry tele Middleblock.program in
  let text = Coverage.to_string cov in
  check_bool "header line" true (has_prefix ~prefix:"# switchv coverage map v1\n" text);
  check_bool "trailing newline" true (text.[String.length text - 1] = '\n');
  (* Rendering is a pure function of the registry. *)
  check_string "stable rendering"
    text
    (Coverage.to_string (Coverage.of_registry tele Middleblock.program));
  check_bool "JSON well-formed" true
    (Telemetry.Json.check (Coverage.to_json cov) = Ok ());
  let tmp =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "swv_cov_%d.txt" (Unix.getpid ()))
  in
  Coverage.write_file cov tmp;
  let ic = open_in_bin tmp in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  Sys.remove tmp;
  check_string "file round-trips" text body

(* --- documentation hygiene --------------------------------------------------- *)

let test_campaign_metrics_documented () =
  let tele = Lazy.force campaign_registry in
  match Docs.undocumented (Telemetry.snapshot tele) with
  | [] -> ()
  | names ->
      Alcotest.failf
        "undocumented metrics (add to Docs.catalog): %s"
        (String.concat ", " names)

(* --- Prometheus exposition --------------------------------------------------- *)

let test_metric_name_mapping () =
  check_string "dots become underscores" "switchv_smt_checks"
    (Prom.metric_name "smt.checks");
  check_string "hostile characters sanitized" "switchv_cov_branch_3_then"
    (Prom.metric_name "cov.branch.3.then")

let test_render_and_lint () =
  let tele = Lazy.force campaign_registry in
  let gauges =
    [ { Prom.g_name = "switchv_edges_covered"; g_help = "Edges covered."; g_value = 3. };
      { Prom.g_name = "switchv_edges_total"; g_help = "Edge space size."; g_value = 9. } ]
  in
  let text = Prom.render ~gauges tele in
  check_bool "gauges rendered" true (contains ~needle:"switchv_edges_covered 3" text);
  check_bool "help rendered" true (contains ~needle:"# HELP" text);
  check_bool "histogram buckets rendered" true (contains ~needle:"_bucket{le=\"" text);
  check_bool "+Inf bucket rendered" true (contains ~needle:"le=\"+Inf\"" text);
  (match Prom.lint text with
  | [] -> ()
  | errs -> Alcotest.failf "lint errors: %s" (String.concat " | " errs));
  (* The linter is not a rubber stamp. *)
  check_bool "lint catches missing TYPE" true
    (Prom.lint "switchv_x 1\n" <> []);
  check_bool "lint catches bad name" true
    (Prom.lint "# TYPE 9bad counter\n9bad 1\n" <> []);
  check_bool "lint catches missing trailing newline" true
    (Prom.lint "# TYPE switchv_x counter\nswitchv_x 1" <> [])

let test_undocumented_render_marker () =
  let tele = Telemetry.create () in
  Telemetry.incr tele "made.up.metric";
  let text = Prom.render tele in
  check_bool "undocumented metric flagged in HELP" true
    (contains ~needle:"(undocumented)" text)

(* --- trace file plumbing ------------------------------------------------------ *)

let test_truncate_to_last_newline () =
  let path = tmp_path "torn.jsonl" in
  let oc = open_out_bin path in
  output_string oc "{\"a\":1}\n{\"b\":2}\n{\"tor";
  close_out oc;
  Trace.truncate_to_last_newline path;
  check_string "torn tail dropped" "{\"a\":1}\n{\"b\":2}\n" (read_all path);
  (* Idempotent on a clean file; total on a missing one. *)
  Trace.truncate_to_last_newline path;
  check_string "clean file untouched" "{\"a\":1}\n{\"b\":2}\n" (read_all path);
  Sys.remove path;
  Trace.truncate_to_last_newline path

let test_file_sink_atomic () =
  let path = tmp_path "trace.jsonl" in
  if Sys.file_exists path then Sys.remove path;
  (* A stale fixed-name ".tmp" left by another process must survive: the
     sink writes to a pid-suffixed temp, not [path ^ ".tmp"]. *)
  let stale = path ^ ".tmp" in
  let oc = open_out stale in
  output_string oc "foreign";
  close_out oc;
  let tele = Telemetry.create () in
  (* Normal completion publishes the file and removes the temp. *)
  Trace.with_file_sink tele path (fun () ->
      Telemetry.with_span tele "outer" (fun () ->
          Telemetry.event tele "tick"));
  check_bool "trace file published" true (Sys.file_exists path);
  check_bool "pid temp removed" false
    (Sys.file_exists (Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())));
  check_string "foreign .tmp sibling untouched" "foreign" (read_all stale);
  Sys.remove stale;
  let events, skipped = Trace.read_file path in
  check_int "no unparseable lines" 0 skipped;
  check_int "begin + instant + end" 3 (List.length events);
  Sys.remove path;
  (* An exception mid-campaign (Sys.Break included) still publishes. *)
  (try
     Trace.with_file_sink tele path (fun () ->
         Telemetry.with_span tele "outer" (fun () -> ());
         raise Sys.Break)
   with Sys.Break -> ());
  check_bool "published on exception" true (Sys.file_exists path);
  let _, skipped = Trace.read_file path in
  check_int "no torn line after exception" 0 skipped;
  Sys.remove path

(* --- cross-fork stitching ------------------------------------------------------ *)

let test_pool_trace_stitches () =
  let tele = Telemetry.create () in
  let buf = Buffer.create 4096 in
  Telemetry.set_sink tele (Some (fun line -> Buffer.add_string buf (line ^ "\n")));
  let result =
    Telemetry.with_registry tele (fun () ->
        Pool.run ~jobs:2 ~shards:4 (fun s ->
            Telemetry.with_span (Telemetry.get ()) "work"
              ~attrs:[ ("shard", string_of_int s) ]
              (fun () -> ());
            Printf.sprintf "ok-%d" s))
  in
  Telemetry.set_sink tele None;
  check_int "no failures" 0 result.Pool.workers_failed;
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  let events = List.filter_map Trace.parse_line lines in
  check_bool "events captured" true (events <> []);
  let st = Trace.stitch events in
  check_int "one causal root (parallel.pool)" 1 st.Trace.st_roots;
  check_int "no orphan spans" 0 st.Trace.st_orphans;
  check_int "parent block + one per worker" 3 st.Trace.st_blocks;
  (* Every worker span must hang (transitively) under the campaign root. *)
  let begins =
    List.filter_map
      (fun (e : Trace.event) ->
        match (e.e_ev, e.e_sid) with
        | "b", Some sid -> Some (sid, e.e_psid)
        | _ -> None)
      events
  in
  let root_sid =
    match
      List.filter_map
        (fun (sid, psid) -> if psid = None then Some sid else None)
        begins
    with
    | [ sid ] -> sid
    | other -> Alcotest.failf "expected 1 root, found %d" (List.length other)
  in
  check_int "root lives in the parent block" 0 (Telemetry.sid_block root_sid);
  let rec reaches_root sid =
    sid = root_sid
    || match List.assoc_opt sid begins with
       | Some (Some psid) -> reaches_root psid
       | _ -> false
  in
  List.iter
    (fun (sid, _) ->
      if Telemetry.sid_block sid > 0 then
        check_bool
          (Printf.sprintf "worker span %d parented under root" sid)
          true (reaches_root sid))
    begins;
  (* Chrome conversion: valid JSON, one thread lane per block. *)
  let chrome = Trace.to_chrome events in
  check_bool "chrome JSON well-formed" true (Telemetry.Json.check chrome = Ok ());
  check_bool "worker lane present" true (contains ~needle:"\"tid\":1" chrome);
  check_bool "parent lane present" true (contains ~needle:"\"tid\":0" chrome)

(* --- HTTP exposition ----------------------------------------------------------- *)

let test_serve_and_fetch () =
  let tele = Lazy.force campaign_registry in
  let srv =
    Serve.start ~port:0
      [ ("/metrics", fun () -> ("text/plain; version=0.0.4", Prom.render tele));
        ("/healthz", fun () -> ("text/plain", "ok\n"));
        ("/boom", fun () -> failwith "handler crash") ]
  in
  let port = Serve.port srv in
  check_bool "ephemeral port bound" true (port > 0);
  (match Serve.fetch ~port "/metrics" with
  | Ok body ->
      check_bool "live metrics parse clean" true (Prom.lint body = []);
      check_bool "campaign counters exposed" true
        (contains ~needle:"switchv_" body)
  | Error e -> Alcotest.failf "/metrics fetch failed: %s" e);
  (match Serve.fetch ~port "/healthz" with
  | Ok body -> check_string "healthz body" "ok\n" body
  | Error e -> Alcotest.failf "/healthz fetch failed: %s" e);
  check_bool "unknown path is an error" true
    (Result.is_error (Serve.fetch ~port "/nope"));
  check_bool "handler crash is a 500, not a hang" true
    (Result.is_error (Serve.fetch ~port "/boom"));
  Serve.stop srv;
  check_bool "fetch after stop fails" true
    (Result.is_error (Serve.fetch ~port "/metrics"))

(* --- progress line -------------------------------------------------------------- *)

let test_progress_render () =
  let tele = Telemetry.create () in
  Telemetry.incr tele "goals.total" ~n:10;
  Telemetry.incr tele "symbolic.goals_covered" ~n:4;
  Telemetry.incr tele "symbolic.goals_uncoverable" ~n:1;
  Telemetry.incr tele "switch.packets_injected" ~n:42;
  Telemetry.incr tele "campaign.incidents" ~n:3;
  Telemetry.incr tele "oracle.incidents.status_violation" ~n:2;
  let line =
    Progress.render tele ~coverage:(fun () -> Some (5, 20)) ~elapsed:10.
  in
  check_bool "goals" true (contains ~needle:"goals 5/10" line);
  check_bool "packets" true (contains ~needle:"packets 42" line);
  (* campaign.incidents already includes oracle-flagged ones — no
     double count. *)
  check_bool "incidents" true (contains ~needle:"incidents 3" line);
  check_bool "coverage" true (contains ~needle:"coverage 5/20 (25.0%)" line);
  check_bool "eta extrapolated" true (contains ~needle:"eta 10s" line)

(* --- Jsonp serializer ------------------------------------------------------------ *)

let test_jsonp_to_string_round_trip () =
  let src =
    "{\"a\":[1,2.5,null,true],\"s\":\"q\\\"uote\\n\",\"o\":{\"n\":-3}}"
  in
  match Jsonp.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v -> (
      let printed = Jsonp.to_string v in
      check_bool "printed form is valid JSON" true
        (Telemetry.Json.check printed = Ok ());
      match Jsonp.parse printed with
      | Error e -> Alcotest.failf "reparse: %s" e
      | Ok v2 -> check_bool "round-trips structurally" true (v = v2))

let () =
  Alcotest.run "obs"
    [ ( "coverage",
        [ Alcotest.test_case "edge key space" `Quick test_edge_keys_shape;
          Alcotest.test_case "edge keys memoized" `Quick test_edge_keys_memoized;
          Alcotest.test_case "pid-unique write temp" `Quick
            test_coverage_write_pid_unique_tmp;
          Alcotest.test_case "interpreter counters within edge space" `Quick
            test_interp_counters_within_edge_space;
          Alcotest.test_case "text + json rendering" `Quick
            test_coverage_text_and_json ] );
      ( "docs",
        [ Alcotest.test_case "campaign metrics documented" `Quick
            test_campaign_metrics_documented ] );
      ( "prometheus",
        [ Alcotest.test_case "name mapping" `Quick test_metric_name_mapping;
          Alcotest.test_case "render + lint" `Quick test_render_and_lint;
          Alcotest.test_case "undocumented marker" `Quick
            test_undocumented_render_marker ] );
      ( "trace",
        [ Alcotest.test_case "torn-line truncation" `Quick
            test_truncate_to_last_newline;
          Alcotest.test_case "atomic file sink" `Quick test_file_sink_atomic;
          Alcotest.test_case "cross-fork stitching + chrome" `Quick
            test_pool_trace_stitches ] );
      ( "serve",
        [ Alcotest.test_case "endpoint + client" `Quick test_serve_and_fetch ] );
      ( "progress",
        [ Alcotest.test_case "render" `Quick test_progress_render ] );
      ( "jsonp",
        [ Alcotest.test_case "to_string round-trip" `Quick
            test_jsonp_to_string_round_trip ] ) ]
