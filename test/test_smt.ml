(* Tests for the SAT core, the term language, and the bit-blasting solver.
   The key property: [Solver.check] agrees with brute-force/reference
   evaluation of the same formula. *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module Sat = Switchv_smt.Sat
module Term = Switchv_smt.Term
module Solver = Switchv_smt.Solver

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

(* --- SAT core ----------------------------------------------------------- *)

let lit s v sign = ignore s; Sat.Lit.make v sign

let test_sat_trivial () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ lit s v true ];
  check_bool "unit sat" true (Sat.solve s = Sat.Sat);
  check_bool "model" true (Sat.value s v)

let test_sat_conflict () =
  let s = Sat.create () in
  let v = Sat.new_var s in
  Sat.add_clause s [ lit s v true ];
  Sat.add_clause s [ lit s v false ];
  check_bool "x and not x unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_three_coloring_like () =
  (* (a | b) & (~a | b) & (a | ~b) is satisfied only by a=b=true. *)
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ lit s a true; lit s b true ];
  Sat.add_clause s [ lit s a false; lit s b true ];
  Sat.add_clause s [ lit s a true; lit s b false ];
  check_bool "sat" true (Sat.solve s = Sat.Sat);
  check_bool "a" true (Sat.value s a);
  check_bool "b" true (Sat.value s b)

let test_sat_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: unsat. Variables p_{i,h}. *)
  let s = Sat.create () in
  let v = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Sat.new_var s)) in
  for i = 0 to 2 do
    Sat.add_clause s [ lit s v.(i).(0) true; lit s v.(i).(1) true ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Sat.add_clause s [ lit s v.(i).(h) false; lit s v.(j).(h) false ]
      done
    done
  done;
  check_bool "pigeonhole unsat" true (Sat.solve s = Sat.Unsat)

let test_sat_assumptions () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [ lit s a false; lit s b true ];
  (* a -> b *)
  check_bool "sat under a" true
    (Sat.solve ~assumptions:[ lit s a true ] s = Sat.Sat);
  check_bool "b forced" true (Sat.value s b);
  check_bool "sat under a & ~b fails" true
    (Sat.solve ~assumptions:[ lit s a true; lit s b false ] s = Sat.Unsat);
  (* Solver still usable after assumption failure. *)
  check_bool "still sat without assumptions" true (Sat.solve s = Sat.Sat)

let test_sat_random_3sat_vs_bruteforce () =
  (* Cross-check on many small random 3-SAT instances. *)
  let rng = Rng.create 2022 in
  for _ = 1 to 100 do
    let nvars = 4 + Rng.int rng 5 in
    let nclauses = 3 + Rng.int rng 25 in
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ -> (Rng.int rng nvars, Rng.bool rng)))
    in
    let brute_sat =
      let rec try_assign i assign =
        if i = nvars then
          List.for_all
            (fun cl -> List.exists (fun (v, sign) -> assign.(v) = sign) cl)
            clauses
        else begin
          assign.(i) <- true;
          try_assign (i + 1) assign
          ||
          (assign.(i) <- false;
           try_assign (i + 1) assign)
        end
      in
      try_assign 0 (Array.make nvars false)
    in
    let s = Sat.create () in
    let vars = Array.init nvars (fun _ -> Sat.new_var s) in
    List.iter
      (fun cl -> Sat.add_clause s (List.map (fun (v, sign) -> lit s vars.(v) sign) cl))
      clauses;
    let solver_sat = Sat.solve s = Sat.Sat in
    check_bool "solver agrees with brute force" brute_sat solver_sat;
    (* If sat, the model must satisfy every clause. *)
    if solver_sat then
      List.iter
        (fun cl ->
          check_bool "model satisfies clause" true
            (List.exists (fun (v, sign) -> Sat.value s vars.(v) = sign) cl))
        clauses
  done

(* --- term evaluation ---------------------------------------------------- *)

let c8 n = Term.of_int ~width:8 n

let test_term_const_fold () =
  (* Smart constructors fold constants away. *)
  (match Term.bvadd (c8 1) (c8 2) with
  | Term.Bv_const c -> check_int "1+2" 3 (Bitvec.to_int_exn c)
  | _ -> Alcotest.fail "expected constant");
  check_bool "eq folds true" true (Term.eq (c8 5) (c8 5) = Term.B_true);
  check_bool "eq folds false" true (Term.eq (c8 5) (c8 6) = Term.B_false);
  check_bool "and true elides" true (Term.and_ Term.tru (Term.bvar "x") = Term.bvar "x");
  check_bool "or true absorbs" true (Term.or_ Term.tru (Term.bvar "x") = Term.B_true);
  let x = Term.var "x" 8 in
  check_bool "x & 0 = 0" true (Term.bvand x (c8 0) = c8 0);
  check_bool "x + 0 = x" true (Term.bvadd x (c8 0) == x)

let test_term_eval () =
  let x = Term.var "x" 8 and y = Term.var "y" 8 in
  let env =
    { Term.bv_of =
        (function
        | "x" -> Bitvec.of_int ~width:8 12
        | "y" -> Bitvec.of_int ~width:8 30
        | _ -> assert false);
      bool_of = (fun _ -> assert false) }
  in
  check_int "x+y" 42 (Bitvec.to_int_exn (Term.eval_bv env (Term.bvadd x y)));
  check_bool "x < y" true (Term.eval_bool env (Term.ult x y));
  check_bool "ite" true
    (Bitvec.to_int_exn
       (Term.eval_bv env (Term.ite (Term.ult x y) x y))
    = 12)

let test_term_vars () =
  let x = Term.var "x" 8 and y = Term.var "y" 16 in
  let f = Term.and_ (Term.eq x (c8 1)) (Term.eq y (Term.of_int ~width:16 2)) in
  let vars = Term.bv_vars f in
  check_int "two vars" 2 (List.length vars);
  check_bool "x present" true (List.mem ("x", 8) vars);
  check_bool "y present" true (List.mem ("y", 16) vars)

(* --- solver end-to-end --------------------------------------------------- *)

let solve_one formula =
  let s = Solver.create () in
  Solver.assert_formula s formula;
  Solver.check s

let test_solver_simple_eq () =
  let x = Term.var "x" 8 in
  match solve_one (Term.eq x (c8 42)) with
  | Solver.Sat m ->
      (match m.Solver.bv "x" with
      | Some v -> check_int "x = 42" 42 (Bitvec.to_int_exn v)
      | None -> Alcotest.fail "no model for x")
  | Solver.Unsat -> Alcotest.fail "expected sat"

let test_solver_unsat () =
  let x = Term.var "x" 8 in
  check_bool "x=1 & x=2 unsat" true
    (solve_one (Term.and_ (Term.eq x (c8 1)) (Term.eq x (c8 2))) = Solver.Unsat)

let test_solver_add () =
  (* x + y = 10 & x = 3 ==> y = 7 *)
  let x = Term.var "x" 8 and y = Term.var "y" 8 in
  let f = Term.and_ (Term.eq (Term.bvadd x y) (c8 10)) (Term.eq x (c8 3)) in
  match solve_one f with
  | Solver.Sat m ->
      check_int "y" 7 (Bitvec.to_int_exn (Option.get (m.Solver.bv "y")))
  | Solver.Unsat -> Alcotest.fail "expected sat"

let test_solver_ult_bounds () =
  (* x < 1 means x = 0 *)
  let x = Term.var "x" 4 in
  (match solve_one (Term.ult x (Term.of_int ~width:4 1)) with
  | Solver.Sat m ->
      check_int "x = 0" 0 (Bitvec.to_int_exn (Option.get (m.Solver.bv "x")))
  | Solver.Unsat -> Alcotest.fail "expected sat");
  (* nothing is < 0 *)
  check_bool "x < 0 unsat" true
    (solve_one (Term.ult x (Term.of_int ~width:4 0)) = Solver.Unsat)

let test_solver_mul () =
  (* x * 3 = 15 over 8 bits: x = 5 or x = 91 or x = 177 (mod 256 solutions). *)
  let x = Term.var "x" 8 in
  match solve_one (Term.eq (Term.bvmul x (c8 3)) (c8 15)) with
  | Solver.Sat m ->
      let v = Bitvec.to_int_exn (Option.get (m.Solver.bv "x")) in
      check_int "x*3 mod 256" 15 (v * 3 mod 256)
  | Solver.Unsat -> Alcotest.fail "expected sat"

let test_solver_assumptions_incremental () =
  (* Program-once, goals-as-assumptions: the p4-symbolic usage pattern. *)
  let s = Solver.create () in
  let x = Term.var "x" 8 in
  Solver.assert_formula s (Term.ult x (c8 100));
  let goal1 = Term.eq x (c8 50) in
  let goal2 = Term.eq x (c8 150) in
  (match Solver.check ~assumptions:[ goal1 ] s with
  | Solver.Sat m -> check_int "goal1" 50 (Bitvec.to_int_exn (Option.get (m.Solver.bv "x")))
  | Solver.Unsat -> Alcotest.fail "goal1 should be sat");
  check_bool "goal2 unsat" true (Solver.check ~assumptions:[ goal2 ] s = Solver.Unsat);
  (* And after a failed assumption, other goals still work. *)
  (match Solver.check ~assumptions:[ Term.eq x (c8 99) ] s with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "99 < 100 should be sat")

let test_solver_ternary_match () =
  let key = Term.var "key" 32 in
  let value = Bitvec.of_int64 ~width:32 0x0A000000L in
  let mask = Bitvec.prefix_mask ~width:32 8 in
  match solve_one (Term.matches_ternary key ~value ~mask) with
  | Solver.Sat m ->
      let v = Option.get (m.Solver.bv "key") in
      check_bool "model matches the prefix" true
        (Bitvec.equal (Bitvec.logand v mask) value)
  | Solver.Unsat -> Alcotest.fail "expected sat"

(* Property: the solver's model satisfies the formula per reference
   evaluation, on randomly generated formulas. *)

let gen_formula rng =
  (* Random terms over variables x,y,z of width 8. *)
  let vars = [| Term.var "x" 8; Term.var "y" 8; Term.var "z" 8 |] in
  let rec gen_bv depth =
    if depth = 0 then
      if Rng.bool rng then vars.(Rng.int rng 3)
      else Term.of_int ~width:8 (Rng.int rng 256)
    else
      match Rng.int rng 8 with
      | 0 -> Term.bvadd (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | 1 -> Term.bvsub (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | 2 -> Term.bvand (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | 3 -> Term.bvor (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | 4 -> Term.bvxor (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | 5 -> Term.bvnot (gen_bv (depth - 1))
      | 6 -> Term.ite (gen_bool (depth - 1)) (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | _ -> Term.bvneg (gen_bv (depth - 1))
  and gen_bool depth =
    if depth = 0 then
      match Rng.int rng 3 with
      | 0 -> Term.eq (gen_bv 0) (gen_bv 0)
      | 1 -> Term.ult (gen_bv 0) (gen_bv 0)
      | _ -> Term.ule (gen_bv 0) (gen_bv 0)
    else
      match Rng.int rng 6 with
      | 0 -> Term.and_ (gen_bool (depth - 1)) (gen_bool (depth - 1))
      | 1 -> Term.or_ (gen_bool (depth - 1)) (gen_bool (depth - 1))
      | 2 -> Term.not_ (gen_bool (depth - 1))
      | 3 -> Term.eq (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | 4 -> Term.ult (gen_bv (depth - 1)) (gen_bv (depth - 1))
      | _ -> Term.ule (gen_bv (depth - 1)) (gen_bv (depth - 1))
  in
  gen_bool (1 + Rng.int rng 3)

let test_solver_model_soundness () =
  let rng = Rng.create 77 in
  let n_sat = ref 0 in
  for _ = 1 to 60 do
    let f = gen_formula rng in
    match solve_one f with
    | Solver.Sat m ->
        incr n_sat;
        let env =
          { Term.bv_of =
              (fun name ->
                match m.Solver.bv name with
                | Some v -> v
                | None -> Bitvec.zero 8);
            bool_of =
              (fun name ->
                match m.Solver.bool name with Some b -> b | None -> false) }
        in
        check_bool "model satisfies formula" true (Term.eval_bool env f)
    | Solver.Unsat -> ()
  done;
  check_bool "at least some formulas were sat" true (!n_sat > 5)

let test_solver_completeness_small () =
  (* On width-3 single-variable formulas, UNSAT answers are cross-checked
     against exhaustive enumeration. *)
  let rng = Rng.create 99 in
  for _ = 1 to 60 do
    let x = Term.var "x" 3 in
    let k1 = Term.of_int ~width:3 (Rng.int rng 8) in
    let k2 = Term.of_int ~width:3 (Rng.int rng 8) in
    let f =
      Term.and_
        (Term.ult (Term.bvadd x k1) k2)
        (Term.not_ (Term.eq x k1))
    in
    let brute =
      List.exists
        (fun n ->
          let env =
            { Term.bv_of = (fun _ -> Bitvec.of_int ~width:3 n);
              bool_of = (fun _ -> false) }
          in
          Term.eval_bool env f)
        [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    in
    let solver = solve_one f <> Solver.Unsat in
    check_bool "solver agrees with enumeration" brute solver
  done

let () =
  Alcotest.run "smt"
    [ ("sat",
       [ Alcotest.test_case "trivial" `Quick test_sat_trivial;
         Alcotest.test_case "conflict" `Quick test_sat_conflict;
         Alcotest.test_case "forced assignment" `Quick test_sat_three_coloring_like;
         Alcotest.test_case "pigeonhole unsat" `Quick test_sat_pigeonhole_3_2;
         Alcotest.test_case "assumptions" `Quick test_sat_assumptions;
         Alcotest.test_case "random vs brute force" `Slow test_sat_random_3sat_vs_bruteforce ]);
      ("term",
       [ Alcotest.test_case "constant folding" `Quick test_term_const_fold;
         Alcotest.test_case "evaluation" `Quick test_term_eval;
         Alcotest.test_case "variable collection" `Quick test_term_vars ]);
      ("solver",
       [ Alcotest.test_case "simple eq" `Quick test_solver_simple_eq;
         Alcotest.test_case "unsat" `Quick test_solver_unsat;
         Alcotest.test_case "addition" `Quick test_solver_add;
         Alcotest.test_case "ult bounds" `Quick test_solver_ult_bounds;
         Alcotest.test_case "multiplication" `Quick test_solver_mul;
         Alcotest.test_case "incremental assumptions" `Quick test_solver_assumptions_incremental;
         Alcotest.test_case "ternary match" `Quick test_solver_ternary_match;
         Alcotest.test_case "model soundness (random)" `Slow test_solver_model_soundness;
         Alcotest.test_case "completeness (small)" `Slow test_solver_completeness_small ]) ]
