(* Tests for the simulated switch stack: correct-by-construction behaviour
   when unseeded, layered state (server vs ASIC), and the observable effect
   of each fault family. Also sanity-checks the bug catalogues against the
   paper's Table 1 population. *)

module Bitvec = Switchv_bitvec.Bitvec
module Prefix = Switchv_bitvec.Prefix
module Ternary = Switchv_bitvec.Ternary
module Packet = Switchv_packet.Packet
module Entry = Switchv_p4runtime.Entry
module Request = Switchv_p4runtime.Request
module State = Switchv_p4runtime.State
module Status = Switchv_p4runtime.Status
module Stack = Switchv_switch.Stack
module Fault = Switchv_switch.Fault
module Catalogue = Switchv_switch.Catalogue
module Middleblock = Switchv_sai.Middleblock
module Cerberus = Switchv_sai.Cerberus
module Workload = Switchv_sai.Workload

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let bv16 = Bitvec.of_int ~width:16
let fm field value = { Entry.fm_field = field; fm_value = value }
let single name args = Entry.Single { ai_name = name; ai_args = args }

let vrf n =
  Entry.make ~table:"vrf_table" ~matches:[ fm "vrf_id" (Entry.M_exact (bv16 n)) ]
    (single "no_action" [])

let fault kind = Fault.make ~id:"T" ~component:Fault.P4runtime_server kind "test fault"

let ready ?faults () =
  let s = Stack.create ?faults Middleblock.program in
  ignore (Stack.push_p4info s);
  s

let write1 s e = Stack.write s { Request.updates = [ Request.insert e ] }

let first_status (r : Request.write_response) = List.hd r.statuses

(* --- clean behaviour ----------------------------------------------------------- *)

let test_requires_p4info () =
  let s = Stack.create Middleblock.program in
  let r = write1 s (vrf 1) in
  check_bool "writes refused before Set P4Info" true
    ((first_status r).code = Status.Failed_precondition);
  ignore (Stack.push_p4info s);
  check_bool "accepted after" true (Request.write_ok (write1 s (vrf 1)))

let test_clean_validation () =
  let s = ready () in
  check_bool "valid accepted" true (Request.write_ok (write1 s (vrf 1)));
  check_bool "constraint violation rejected" false (Request.write_ok (write1 s (vrf 0)));
  check_bool "duplicate rejected" true
    ((first_status (write1 s (vrf 1))).code = Status.Already_exists);
  let r = Stack.write s { Request.updates = [ Request.delete (vrf 2) ] } in
  check_bool "missing delete NOT_FOUND" true ((first_status r).code = Status.Not_found)

let test_server_asic_in_sync () =
  let s = ready () in
  ignore (write1 s (vrf 1));
  check_bool "states equal when clean" true
    (State.equal (Stack.server_state s) (Stack.asic_state s))

let test_referenced_delete_refused () =
  let s = ready () in
  ignore (write1 s (vrf 1));
  let route =
    Entry.make ~table:"ipv4_table"
      ~matches:
        [ fm "vrf_id" (Entry.M_exact (bv16 1));
          fm "ipv4_dst" (Entry.M_lpm (Prefix.of_ipv4_string "10.0.0.0/8")) ]
      (single "drop" [])
  in
  ignore (write1 s route);
  let r = Stack.write s { Request.updates = [ Request.delete (vrf 1) ] } in
  check_bool "referenced vrf delete refused" true
    ((first_status r).code = Status.Failed_precondition);
  ignore (Stack.write s { Request.updates = [ Request.delete route ] });
  let r2 = Stack.write s { Request.updates = [ Request.delete (vrf 1) ] } in
  check_bool "deletable once unreferenced" true (Request.write_ok r2)

(* --- fault observability -------------------------------------------------------- *)

let test_p4info_fault () =
  let s = Stack.create ~faults:[ fault Fault.P4info_push_fails ] Middleblock.program in
  check_bool "push fails" false (Status.is_ok (Stack.push_p4info s))

let test_reject_valid_fault () =
  let s = ready ~faults:[ fault (Fault.Reject_valid_insert "vrf_table") ] () in
  check_bool "valid vrf rejected" false (Request.write_ok (write1 s (vrf 1)))

let test_accept_constraint_fault () =
  let s = ready ~faults:[ fault (Fault.Accept_constraint_violation "vrf_table") ] () in
  check_bool "vrf 0 accepted" true (Request.write_ok (write1 s (vrf 0)))

let test_read_drops_fault () =
  let s = ready ~faults:[ fault (Fault.Read_drops_table "vrf_table") ] () in
  ignore (write1 s (vrf 1));
  check_int "read hides the table" 0 (List.length (Stack.read s).entries)

let test_delete_leaves_fault () =
  let s = ready ~faults:[ fault (Fault.Delete_leaves_entry "vrf_table") ] () in
  ignore (write1 s (vrf 1));
  let r = Stack.write s { Request.updates = [ Request.delete (vrf 1) ] } in
  check_bool "delete reports OK" true (Request.write_ok r);
  check_int "but the entry remains" 1 (List.length (Stack.read s).entries)

let test_crash_fault () =
  let s = ready ~faults:[ fault (Fault.Crash_on_delete_sequence 2) ] () in
  ignore (write1 s (vrf 1));
  ignore (write1 s (vrf 2));
  let r =
    Stack.write s { Request.updates = [ Request.delete (vrf 1); Request.delete (vrf 2) ] }
  in
  check_bool "batch unavailable" true
    (List.for_all (fun (st : Status.t) -> st.code = Status.Unavailable) r.statuses);
  check_bool "switch crashed" true (Stack.crashed s);
  check_bool "subsequent writes fail" false (Request.write_ok (write1 s (vrf 3)))

let test_syncd_drops_fault () =
  let s = ready ~faults:[ fault (Fault.Syncd_drops_table "vrf_table") ] () in
  ignore (write1 s (vrf 1));
  check_int "server has it" 1 (State.total (Stack.server_state s));
  check_int "asic does not" 0 (State.total (Stack.asic_state s))

let test_batch_fails_fault () =
  let s = ready ~faults:[ fault Fault.Delete_nonexistent_fails_batch ] () in
  let r =
    Stack.write s
      { Request.updates = [ Request.insert (vrf 1); Request.delete (vrf 9) ] }
  in
  check_bool "entire batch failed" true
    (List.for_all (fun (st : Status.t) -> not (Status.is_ok st)) r.statuses);
  check_int "nothing installed" 0 (State.total (Stack.server_state s))

let test_drop_dst_fault () =
  (* The data-plane perturbation drops the target's /24. *)
  let ip = Packet.ipv4_of_string "10.7.7.0" in
  let s = ready ~faults:[ fault (Fault.Drop_dst_ip ip) ] () in
  let mk dst = Packet.to_bytes (Packet.simple_ipv4 ~src:"192.0.2.1" ~dst ()) in
  let b = Stack.inject s ~ingress_port:1 (mk "10.7.7.42") in
  check_bool "in-prefix packet dropped" true (b.b_egress = None);
  ignore (Stack.inject s ~ingress_port:1 (mk "10.7.8.42"))

let test_punt_ether_fault () =
  let s = ready ~faults:[ fault (Fault.Punt_ether_type 0x0800) ] () in
  let b =
    Stack.inject s ~ingress_port:1
      (Packet.to_bytes (Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"10.0.0.1" ()))
  in
  check_bool "spurious punt" true b.b_punted

let test_encap_reversed_fault () =
  let f = Fault.make ~id:"T" ~component:Fault.Vendor_software Fault.Encap_reversed_dst "x" in
  let s = Stack.create ~faults:[ f ] Cerberus.program in
  ignore (Stack.push_p4info s);
  (* Install the full chain so encap happens, then check the dst bytes. *)
  let entries = Workload.generate ~seed:3 Cerberus.program Workload.small in
  List.iter (fun e -> ignore (write1 s e)) entries;
  let clean = Stack.create Cerberus.program in
  ignore (Stack.push_p4info clean);
  List.iter (fun e -> ignore (write1 clean e)) entries;
  (* Find a tunnel route and send a packet into it. *)
  let tunnel_dst =
    List.find_map
      (fun (e : Entry.t) ->
        match (e.e_table, e.e_action) with
        | "ipv4_table", Entry.Single { ai_name = "set_tunnel_id"; _ } -> (
            match Entry.find_match e "ipv4_dst" with
            | Some (Entry.M_lpm p) -> Some (Prefix.value p)
            | _ -> None)
        | _ -> None)
      entries
  in
  match tunnel_dst with
  | None -> Alcotest.fail "workload has no tunnel route"
  | Some dst ->
      let pkt =
        Packet.simple_ipv4 ~src:"192.0.2.1" ~dst:"10.0.0.1" ()
        |> fun p ->
        Packet.set p ~header:"ipv4" ~field:"dst_addr" dst
        |> fun p ->
        Packet.set p ~header:"ethernet" ~field:"dst_addr"
          (Packet.mac_of_string "02:00:00:00:00:00")
      in
      let bytes = Packet.to_bytes pkt in
      let buggy = Stack.inject s ~ingress_port:1 bytes in
      let good = Stack.inject clean ~ingress_port:1 bytes in
      (match (buggy.b_egress, good.b_egress) with
      | Some _, Some _ ->
          check_bool "encap output differs (reversed dst)" false
            (String.equal buggy.b_packet good.b_packet)
      | _ -> Alcotest.fail "tunnel packet not forwarded")

(* --- catalogue sanity ------------------------------------------------------------- *)

let pins_catalogue () =
  let entries = Workload.generate ~seed:1 Middleblock.program Workload.small in
  Catalogue.pins Middleblock.program entries

let cerb_catalogue () =
  let entries = Workload.generate ~seed:1 Cerberus.program Workload.small in
  Catalogue.cerberus Cerberus.program entries

let test_catalogue_sizes () =
  check_int "122 PINS faults (Table 1)" 122 (List.length (pins_catalogue ()));
  check_int "32 Cerberus faults (Table 1)" 32 (List.length (cerb_catalogue ()))

let test_catalogue_detector_split () =
  let pins = pins_catalogue () in
  let fuzzer =
    List.length (List.filter (fun f -> Catalogue.expected_detector f = `Fuzzer) pins)
  in
  check_int "37 fuzzer-territory (Table 1)" 37 fuzzer;
  check_int "85 symbolic-territory (Table 1)" 85 (List.length pins - fuzzer);
  let cerb = cerb_catalogue () in
  let cf =
    List.length (List.filter (fun f -> Catalogue.expected_detector f = `Fuzzer) cerb)
  in
  check_int "18 Cerberus fuzzer-territory" 18 cf

let test_catalogue_components () =
  let count component =
    List.length
      (List.filter (fun (f : Fault.t) -> f.component = component) (pins_catalogue ()))
  in
  check_int "P4RT 47" 47 (count Fault.P4runtime_server);
  check_int "gNMI 2" 2 (count Fault.Gnmi);
  check_int "OA 23" 23 (count Fault.Orchestration_agent);
  check_int "SyncD 23" 23 (count Fault.Syncd);
  check_int "Linux 9" 9 (count Fault.Switch_linux);
  check_int "HW 1" 1 (count Fault.Hardware);
  check_int "toolchain 2" 2 (count Fault.P4_toolchain);
  check_int "P4 program 15" 15 (count Fault.Input_p4_program)

let test_catalogue_resolution_distribution () =
  let pins = pins_catalogue () in
  let unresolved =
    List.length (List.filter (fun (f : Fault.t) -> f.days_to_resolution = None) pins)
  in
  check_int "9 unresolved (Figure 7)" 9 unresolved;
  let resolved = List.filter_map (fun (f : Fault.t) -> f.days_to_resolution) pins in
  let within n = List.length (List.filter (fun d -> d <= n) resolved) in
  check_bool "majority within 14 days" true (2 * within 14 > List.length pins);
  check_bool "roughly a third within 5 days" true
    (let pct = 100 * within 5 / List.length pins in
     pct >= 25 && pct <= 45)

let test_catalogue_ids_unique () =
  let ids = List.map (fun (f : Fault.t) -> f.id) (pins_catalogue () @ cerb_catalogue ()) in
  check_int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let () =
  Alcotest.run "switch"
    [ ("clean stack",
       [ Alcotest.test_case "requires p4info" `Quick test_requires_p4info;
         Alcotest.test_case "validation" `Quick test_clean_validation;
         Alcotest.test_case "server/asic sync" `Quick test_server_asic_in_sync;
         Alcotest.test_case "referenced delete refused" `Quick test_referenced_delete_refused ]);
      ("faults",
       [ Alcotest.test_case "p4info push" `Quick test_p4info_fault;
         Alcotest.test_case "reject valid" `Quick test_reject_valid_fault;
         Alcotest.test_case "accept constraint violation" `Quick test_accept_constraint_fault;
         Alcotest.test_case "read drops table" `Quick test_read_drops_fault;
         Alcotest.test_case "delete leaves entry" `Quick test_delete_leaves_fault;
         Alcotest.test_case "crash" `Quick test_crash_fault;
         Alcotest.test_case "syncd drops" `Quick test_syncd_drops_fault;
         Alcotest.test_case "batch fails" `Quick test_batch_fails_fault;
         Alcotest.test_case "drop dst" `Quick test_drop_dst_fault;
         Alcotest.test_case "spurious punt" `Quick test_punt_ether_fault;
         Alcotest.test_case "encap endianness" `Quick test_encap_reversed_fault ]);
      ("catalogue",
       [ Alcotest.test_case "sizes" `Quick test_catalogue_sizes;
         Alcotest.test_case "detector split" `Quick test_catalogue_detector_split;
         Alcotest.test_case "components" `Quick test_catalogue_components;
         Alcotest.test_case "resolution distribution" `Quick
           test_catalogue_resolution_distribution;
         Alcotest.test_case "unique ids" `Quick test_catalogue_ids_unique ]) ]
