(* Seeded property-based generator for QF_BV formulas, with an exhaustive
   reference evaluator and structural shrinking.

   No external PBT dependency: entropy comes from Switchv_bitvec.Rng
   (splitmix64), so a failing term is reproducible from its seed alone.
   The variable universe is deliberately tiny — x:4, y:4, z:3 plus one
   boolean — so the full assignment space is 2^12 and brute-force
   enumeration is the ground truth the solver is judged against. *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module Term = Switchv_smt.Term

let bv_universe = [ ("x", 4); ("y", 4); ("z", 3) ]
let bool_universe = [ "b" ]

(* --- generation --------------------------------------------------------- *)

(* Generated terms go through the smart constructors, like every real
   client of the term language: the generator exercises the folder too. *)

let gen_const rng width = Term.const (Rng.bitvec rng width)

let gen_var rng width =
  match List.filter (fun (_, w) -> w = width) bv_universe with
  | [] -> gen_const rng width
  | candidates ->
      let name, w = Rng.choose rng candidates in
      Term.var name w

let rec gen_bv rng ~depth width =
  if depth = 0 || width > 8 then
    if Rng.bool rng then gen_var rng width else gen_const rng width
  else
    let sub w = gen_bv rng ~depth:(depth - 1) w in
    match Rng.int rng 14 with
    | 0 -> gen_var rng width
    | 1 -> gen_const rng width
    | 2 -> Term.bvnot (sub width)
    | 3 -> Term.bvneg (sub width)
    | 4 -> Term.bvand (sub width) (sub width)
    | 5 -> Term.bvor (sub width) (sub width)
    | 6 -> Term.bvxor (sub width) (sub width)
    | 7 -> Term.bvadd (sub width) (sub width)
    | 8 -> Term.bvsub (sub width) (sub width)
    | 9 -> Term.bvmul (sub width) (sub width)
    | 10 when width >= 2 ->
        let lo_w = 1 + Rng.int rng (width - 1) in
        Term.concat (sub (width - lo_w)) (sub lo_w)
    | 11 ->
        (* Extract [width] bits out of a wider term. *)
        let outer = width + Rng.int rng (max 1 (9 - width)) in
        let lo = Rng.int rng (outer - width + 1) in
        Term.extract ~hi:(lo + width - 1) ~lo (sub outer)
    | 12 when width >= 2 ->
        let inner = 1 + Rng.int rng (width - 1) in
        Term.zero_ext width (sub inner)
    | 13 -> Term.ite (gen_bool rng ~depth:(depth - 1)) (sub width) (sub width)
    | _ -> gen_var rng width

and gen_bool rng ~depth =
  if depth = 0 then
    match Rng.int rng 3 with
    | 0 -> Term.bvar (Rng.choose rng bool_universe)
    | 1 -> Term.tru
    | _ -> Term.fls
  else
    let sub () = gen_bool rng ~depth:(depth - 1) in
    let w = Rng.choose rng [ 1; 3; 4; 8 ] in
    let bv () = gen_bv rng ~depth:(depth - 1) w in
    match Rng.int rng 10 with
    | 0 -> Term.bvar (Rng.choose rng bool_universe)
    | 1 -> Term.eq (bv ()) (bv ())
    | 2 -> Term.ult (bv ()) (bv ())
    | 3 -> Term.ule (bv ()) (bv ())
    | 4 -> Term.not_ (sub ())
    | 5 -> Term.and_ (sub ()) (sub ())
    | 6 -> Term.or_ (sub ()) (sub ())
    | 7 -> Term.bite (sub ()) (sub ()) (sub ())
    | 8 ->
        (* A top-level-style conjunction with an equality against a
           constant, to exercise the preprocessor's binding collector. *)
        let name, w = Rng.choose rng bv_universe in
        Term.and_ (Term.eq (Term.var name w) (gen_const rng w)) (sub ())
    | _ -> Term.tru

let gen_formula rng = gen_bool rng ~depth:(2 + Rng.int rng 3)

(* --- exhaustive reference evaluation ------------------------------------ *)

type assignment = { a_bv : (string * Bitvec.t) list; a_bool : (string * bool) list }

let env_of a =
  { Term.bv_of = (fun n -> List.assoc n a.a_bv);
    bool_of = (fun n -> List.assoc n a.a_bool) }

let all_assignments () =
  let rec bvs acc = function
    | [] -> [ acc ]
    | (name, w) :: rest ->
        List.concat_map
          (fun v -> bvs ((name, Bitvec.of_int ~width:w v) :: acc) rest)
          (List.init (1 lsl w) Fun.id)
  in
  let rec bools acc = function
    | [] -> [ acc ]
    | name :: rest ->
        List.concat_map (fun v -> bools ((name, v) :: acc) rest) [ false; true ]
  in
  (* [bvs]/[bools] build their lists back-to-front, so seed them with the
     reversed universe: assignments come out in lexicographic order with
     the FIRST universe entry most significant. *)
  List.concat_map
    (fun a_bool -> List.map (fun a_bv -> { a_bv; a_bool }) (bvs [] (List.rev bv_universe)))
    (bools [] (List.rev bool_universe))

(* Memoised: 4096 assignments, built once. *)
let assignments = lazy (all_assignments ())

let sat_assignments formula =
  List.filter
    (fun a -> Term.eval_bool (env_of a) formula)
    (Lazy.force assignments)

let brute_sat formula =
  List.exists (fun a -> Term.eval_bool (env_of a) formula) (Lazy.force assignments)

(* The lexicographically minimal satisfying assignment under the canonical
   order booleans-then-bitvectors in universe order, booleans false-first,
   bitvectors numerically minimal — the same order the solver's canonical
   model extraction uses. *)
let brute_canonical formula =
  let key a =
    List.map (fun n -> if List.assoc n a.a_bool then 1 else 0) bool_universe
    @ List.map
        (fun (n, _) -> Bitvec.to_int_exn (List.assoc n a.a_bv))
        bv_universe
  in
  match sat_assignments formula with
  | [] -> None
  | sats ->
      Some
        (List.fold_left
           (fun best a -> if compare (key a) (key best) < 0 then a else best)
           (List.hd sats) (List.tl sats))

(* --- shrinking ----------------------------------------------------------- *)

(* One-step shrink candidates: replace a node by a same-width subterm or a
   trivial leaf. Greedy outer loop in [shrink] keeps any candidate that
   still fails the property, so the reported term is locally minimal. *)

let rec shrink_bv (t : Term.bv) : Term.bv list =
  let w = Term.bv_width t in
  let zero = Term.const (Bitvec.zero w) in
  match t with
  | Term.Bv_const _ -> []
  | Term.Bv_var _ -> [ zero ]
  | Term.Bv_not a | Term.Bv_neg a | Term.Bv_zero_ext (_, a) when Term.bv_width a = w
    ->
      (a :: List.map (fun a' -> rebuild1 t a') (shrink_bv a)) @ [ zero ]
  | Term.Bv_not a | Term.Bv_neg a ->
      List.map (fun a' -> rebuild1 t a') (shrink_bv a) @ [ zero ]
  | Term.Bv_zero_ext (tw, a) ->
      List.map (fun a' -> Term.zero_ext tw a') (shrink_bv a) @ [ zero ]
  | Term.Bv_extract (hi, lo, a) ->
      List.map (fun a' -> Term.extract ~hi ~lo a') (shrink_bv a) @ [ zero ]
  | Term.Bv_and (a, b) | Term.Bv_or (a, b) | Term.Bv_xor (a, b)
  | Term.Bv_add (a, b) | Term.Bv_sub (a, b) | Term.Bv_mul (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> rebuild2 t a' b) (shrink_bv a)
      @ List.map (fun b' -> rebuild2 t a b') (shrink_bv b)
      @ [ zero ]
  | Term.Bv_concat (a, b) ->
      List.map (fun a' -> Term.concat a' b) (shrink_bv a)
      @ List.map (fun b' -> Term.concat a b') (shrink_bv b)
      @ [ zero ]
  | Term.Bv_ite (c, a, b) ->
      [ a; b ]
      @ List.map (fun c' -> Term.ite c' a b) (shrink_bool c)
      @ List.map (fun a' -> Term.ite c a' b) (shrink_bv a)
      @ List.map (fun b' -> Term.ite c a b') (shrink_bv b)
      @ [ zero ]

and rebuild1 t a =
  match t with
  | Term.Bv_not _ -> Term.bvnot a
  | Term.Bv_neg _ -> Term.bvneg a
  | _ -> a

and rebuild2 t a b =
  match t with
  | Term.Bv_and _ -> Term.bvand a b
  | Term.Bv_or _ -> Term.bvor a b
  | Term.Bv_xor _ -> Term.bvxor a b
  | Term.Bv_add _ -> Term.bvadd a b
  | Term.Bv_sub _ -> Term.bvsub a b
  | Term.Bv_mul _ -> Term.bvmul a b
  | _ -> a

and shrink_bool (f : Term.boolean) : Term.boolean list =
  match f with
  | Term.B_true | Term.B_false -> []
  | Term.B_var _ -> [ Term.tru; Term.fls ]
  | Term.B_eq (a, b) ->
      List.map (fun a' -> Term.eq a' b) (shrink_bv a)
      @ List.map (fun b' -> Term.eq a b') (shrink_bv b)
      @ [ Term.tru; Term.fls ]
  | Term.B_ult (a, b) ->
      List.map (fun a' -> Term.ult a' b) (shrink_bv a)
      @ List.map (fun b' -> Term.ult a b') (shrink_bv b)
      @ [ Term.tru; Term.fls ]
  | Term.B_ule (a, b) ->
      List.map (fun a' -> Term.ule a' b) (shrink_bv a)
      @ List.map (fun b' -> Term.ule a b') (shrink_bv b)
      @ [ Term.tru; Term.fls ]
  | Term.B_not a ->
      (a :: List.map Term.not_ (shrink_bool a)) @ [ Term.tru; Term.fls ]
  | Term.B_and (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> Term.and_ a' b) (shrink_bool a)
      @ List.map (fun b' -> Term.and_ a b') (shrink_bool b)
      @ [ Term.tru; Term.fls ]
  | Term.B_or (a, b) ->
      [ a; b ]
      @ List.map (fun a' -> Term.or_ a' b) (shrink_bool a)
      @ List.map (fun b' -> Term.or_ a b') (shrink_bool b)
      @ [ Term.tru; Term.fls ]
  | Term.B_ite (c, a, b) ->
      [ a; b ]
      @ List.map (fun c' -> Term.bite c' a b) (shrink_bool c)
      @ List.map (fun a' -> Term.bite c a' b) (shrink_bool a)
      @ List.map (fun b' -> Term.bite c a b') (shrink_bool b)
      @ [ Term.tru; Term.fls ]

(* Greedily shrink [formula] while [still_fails] holds: try each one-step
   candidate in order, restart from the first that still fails, stop at a
   local minimum. Candidate evaluation is capped so a pathological property
   (e.g. one that crashes the solver slowly) cannot hang the suite. *)
let shrink ~still_fails formula =
  let budget = ref 2000 in
  let rec go current =
    let next =
      List.find_opt
        (fun candidate ->
          decr budget;
          !budget > 0
          && (try still_fails candidate with _ -> true))
        (shrink_bool current)
    in
    match next with Some smaller -> go smaller | None -> current
  in
  go formula

let to_string formula = Format.asprintf "%a" Term.pp_bool formula
