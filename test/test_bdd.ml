(* Tests for the BDD-based constraint engine (§7 "ongoing work"):
   compilation of entry restrictions, model counting, uniform compliant
   sampling, violation sampling, and near-miss single-bit mutations. *)

module Bitvec = Switchv_bitvec.Bitvec
module Rng = Switchv_bitvec.Rng
module C = Switchv_p4constraints.Constraint_lang
module Bdd = Switchv_p4constraints.Bdd

let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let parse s = Result.get_ok (C.parse s)

let compile_exn layouts s =
  match Bdd.compile layouts (parse s) with
  | Ok c -> c
  | Error msg -> Alcotest.failf "compile %S failed: %s" s msg

let exact name width = { Bdd.kl_name = name; kl_kind = Bdd.Exact; kl_width = width }
let ternary name width = { Bdd.kl_name = name; kl_kind = Bdd.Ternary; kl_width = width }

(* Evaluate an assignment with Constraint_lang's reference semantics, to
   check BDD/evaluator agreement end to end. *)
let eval_reference layouts constr (a : Bdd.assignment) =
  let lookup key =
    List.find_map
      (fun (kl : Bdd.key_layout) ->
        if kl.kl_name <> key then None
        else
          let v = List.assoc key a.values in
          match kl.kl_kind with
          | Bdd.Exact -> Some (C.K_exact v)
          | Bdd.Optional -> Some (C.K_optional (Some v))
          | Bdd.Ternary ->
              let mask = List.assoc key a.masks in
              Some (C.K_ternary (Switchv_bitvec.Ternary.make ~value:v ~mask)))
      layouts
  in
  Result.get_ok (C.eval constr lookup)

(* --- model counting ----------------------------------------------------------- *)

let test_count_simple () =
  (* vrf_id != 0 over 4 bits: 15 of 16 values. *)
  let c = compile_exn [ exact "vrf_id" 4 ] "vrf_id != 0" in
  check_bool "15 models" true (Bdd.model_count c = 15.);
  let taut = compile_exn [ exact "x" 4 ] "true" in
  check_bool "tautology: 16" true (Bdd.model_count taut = 16.);
  let unsat = compile_exn [ exact "x" 4 ] "x == 1 && x == 2" in
  check_bool "unsat: 0" true (Bdd.model_count unsat = 0.)

let test_count_comparisons () =
  let c = compile_exn [ exact "x" 6 ] "x < 10" in
  check_bool "x<10 has 10 models" true (Bdd.model_count c = 10.);
  let c2 = compile_exn [ exact "x" 6 ] "x >= 10" in
  check_bool "complement has 54" true (Bdd.model_count c2 = 54.);
  (* Key-to-key comparison. *)
  let c3 = compile_exn [ exact "a" 3; exact "b" 3 ] "a < b" in
  check_bool "a<b over 3 bits: 28 pairs" true (Bdd.model_count c3 = 28.)

let test_count_ternary_canonical () =
  (* One 2-bit ternary key, tautological restriction: canonical (value,
     mask) pairs are those with value & ~mask = 0: sum over masks of
     2^popcount(mask) = 1+2+2+4 = 9. *)
  let c = compile_exn [ ternary "k" 2 ] "true" in
  check_bool "9 canonical pairs" true (Bdd.model_count c = 9.)

let test_oversized_constant () =
  (* dscp < 64 over 6 bits is a tautology (unbounded-int semantics). *)
  let c = compile_exn [ exact "dscp" 6 ] "dscp < 64" in
  check_bool "tautology" true (Bdd.model_count c = 64.);
  let c2 = compile_exn [ exact "dscp" 6 ] "dscp == 64" in
  check_bool "unsat" true (Bdd.model_count c2 = 0.)

let test_unsupported () =
  check_bool "prefix_length unsupported" true
    (Bdd.compile [ exact "k" 8 ] (parse "k::prefix_length >= 8") |> Result.is_error);
  check_bool "unknown key unsupported" true
    (Bdd.compile [ exact "k" 8 ] (parse "ghost == 1") |> Result.is_error)

(* --- sampling -------------------------------------------------------------------- *)

let pins_acl_layouts = [ ternary "is_ipv4" 1; ternary "is_ipv6" 1; ternary "dst_ip" 32 ]
let pins_acl_restriction = "!(is_ipv4 == 1 && is_ipv6 == 1) && (dst_ip::mask == 0 || is_ipv4 == 1)"

let test_sample_compliant () =
  let constr = parse pins_acl_restriction in
  let c = Result.get_ok (Bdd.compile pins_acl_layouts constr) in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    match Bdd.sample_compliant c rng with
    | None -> Alcotest.fail "restriction should be satisfiable"
    | Some a ->
        check_bool "sample satisfies (bdd)" true (Bdd.satisfies c a);
        check_bool "sample satisfies (reference evaluator)" true
          (eval_reference pins_acl_layouts constr a)
  done

let test_sample_violation () =
  let constr = parse pins_acl_restriction in
  let c = Result.get_ok (Bdd.compile pins_acl_layouts constr) in
  let rng = Rng.create 6 in
  for _ = 1 to 200 do
    match Bdd.sample_violation c rng with
    | None -> Alcotest.fail "violations exist"
    | Some a ->
        check_bool "violates (bdd)" false (Bdd.satisfies c a);
        check_bool "violates (reference evaluator)" false
          (eval_reference pins_acl_layouts constr a)
  done

let test_sample_near_violation () =
  let constr = parse pins_acl_restriction in
  let c = Result.get_ok (Bdd.compile pins_acl_layouts constr) in
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    match Bdd.sample_near_violation c rng with
    | None -> Alcotest.fail "near violations exist"
    | Some a -> check_bool "violates" false (Bdd.satisfies c a)
  done

let test_sample_unsat_none () =
  let c = compile_exn [ exact "x" 4 ] "x == 1 && x == 2" in
  check_bool "no compliant sample" true (Bdd.sample_compliant c (Rng.create 1) = None);
  let taut = compile_exn [ exact "x" 4 ] "true" in
  check_bool "no violation of a tautology" true
    (Bdd.sample_violation taut (Rng.create 1) = None)

let test_sampling_uniformity () =
  (* vrf_id != 0 over 3 bits: each of the 7 values should appear roughly
     uniformly. *)
  let c = compile_exn [ exact "vrf_id" 3 ] "vrf_id != 0" in
  let rng = Rng.create 11 in
  let counts = Array.make 8 0 in
  let n = 7000 in
  for _ = 1 to n do
    match Bdd.sample_compliant c rng with
    | Some a ->
        let v = Bitvec.to_int_exn (List.assoc "vrf_id" a.values) in
        counts.(v) <- counts.(v) + 1
    | None -> Alcotest.fail "satisfiable"
  done;
  check_int "0 never sampled" 0 counts.(0);
  for v = 1 to 7 do
    check_bool
      (Printf.sprintf "value %d within 30%% of uniform (%d)" v counts.(v))
      true
      (counts.(v) > n / 7 * 7 / 10 && counts.(v) < n / 7 * 13 / 10)
  done

(* Property: on random small constraints, BDD model counts agree with
   brute-force enumeration under the reference evaluator. *)
let prop_count_agrees_bruteforce =
  QCheck.Test.make ~name:"model count agrees with brute force" ~count:60
    (QCheck.make QCheck.Gen.(int_bound 0xFFFFF) ~print:string_of_int)
    (fun seed ->
      let rng = Rng.create seed in
      let w = 3 in
      let layouts = [ exact "a" w; exact "b" w ] in
      let atom () =
        match Rng.int rng 3 with
        | 0 -> "a"
        | 1 -> "b"
        | _ -> string_of_int (Rng.int rng (1 lsl w))
      in
      let op () = Rng.choose rng [ "=="; "!="; "<"; "<="; ">"; ">=" ] in
      let leaf () = Printf.sprintf "%s %s %s" (atom ()) (op ()) (atom ()) in
      let text =
        Printf.sprintf "(%s %s %s)" (leaf ())
          (Rng.choose rng [ "&&"; "||" ])
          (leaf ())
      in
      let constr = parse text in
      match Bdd.compile layouts constr with
      | Error _ -> QCheck.assume_fail ()
      | Ok c ->
          let brute = ref 0 in
          for a = 0 to (1 lsl w) - 1 do
            for b = 0 to (1 lsl w) - 1 do
              let lookup = function
                | "a" -> Some (C.K_exact (Bitvec.of_int ~width:w a))
                | "b" -> Some (C.K_exact (Bitvec.of_int ~width:w b))
                | _ -> None
              in
              if Result.get_ok (C.eval constr lookup) then incr brute
            done
          done;
          Bdd.model_count c = float_of_int !brute)

let () =
  Alcotest.run "bdd"
    [ ("counting",
       [ Alcotest.test_case "simple" `Quick test_count_simple;
         Alcotest.test_case "comparisons" `Quick test_count_comparisons;
         Alcotest.test_case "ternary canonicality" `Quick test_count_ternary_canonical;
         Alcotest.test_case "oversized constants" `Quick test_oversized_constant;
         Alcotest.test_case "unsupported shapes" `Quick test_unsupported ]);
      ("sampling",
       [ Alcotest.test_case "compliant" `Quick test_sample_compliant;
         Alcotest.test_case "violation" `Quick test_sample_violation;
         Alcotest.test_case "near violation" `Quick test_sample_near_violation;
         Alcotest.test_case "unsat/tautology" `Quick test_sample_unsat_none;
         Alcotest.test_case "uniformity" `Quick test_sampling_uniformity ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_count_agrees_bruteforce ]) ]
